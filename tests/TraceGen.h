//===- tests/TraceGen.h - Shared randomized trace generator -----*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The randomized trace generator shared by the property and equivalence
/// suites: it builds a random — but well-formed and value-consistent —
/// execution by actually running a random program on the simulated runtime.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_TESTS_TRACEGEN_H
#define CRD_TESTS_TRACEGEN_H

#include "runtime/InstrumentedMap.h"
#include "trace/Trace.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace crd {
namespace testgen {

/// Generates a random well-formed execution trace over \p Maps instrumented
/// maps: \p Workers forked threads issue \p OpsPerWorker mixed put/get/size
/// operations on a \p Keys-sized key space, with occasional lock-protected
/// regions varying the happens-before, while the main thread polls size and
/// finally joins everyone.
inline Trace randomTrace(uint64_t Seed, unsigned Workers,
                         unsigned OpsPerWorker, unsigned Keys,
                         unsigned Maps = 2) {
  SimRuntime RT(Seed);
  std::vector<std::unique_ptr<InstrumentedMap>> MapList;
  for (unsigned I = 0; I != Maps; ++I)
    MapList.push_back(std::make_unique<InstrumentedMap>(RT));
  LockId Lock = RT.newLock();

  ThreadId Main = RT.addInitialThread();
  auto WorkerIds = std::make_shared<std::vector<ThreadId>>();
  RT.schedule(Main, [&, WorkerIds](SimThread &T) {
    for (unsigned W = 0; W != Workers; ++W) {
      ThreadId Tid = T.fork([](SimThread &) {});
      WorkerIds->push_back(Tid);
      for (unsigned Q = 0; Q != OpsPerWorker; ++Q)
        RT.schedule(Tid, [&MapList, Keys, Lock](SimThread &T2) {
          InstrumentedMap &M = *MapList[T2.random(MapList.size())];
          Value Key = Value::integer(
              static_cast<int64_t>(T2.random(Keys)));
          switch (T2.random(6)) {
          case 0:
          case 1:
            M.put(T2, Key, Value::integer(static_cast<int64_t>(
                              T2.random(3)))); // Note: value 0..2.
            break;
          case 2:
            M.put(T2, Key, Value::nil()); // Removal.
            break;
          case 3:
            M.get(T2, Key);
            break;
          case 4:
            M.size(T2);
            break;
          case 5:
            // A lock-protected no-op region, to vary the happens-before.
            T2.acquire(Lock);
            M.get(T2, Key);
            T2.release(Lock);
            break;
          }
        });
    }
  });
  // Poll size concurrently, then join everyone and read once more.
  for (unsigned P = 0; P != 3; ++P)
    RT.schedule(Main, [&MapList](SimThread &T) { MapList[0]->size(T); });
  for (unsigned W = 0; W != Workers; ++W)
    RT.schedule(Main,
                [WorkerIds, W](SimThread &T) { T.join((*WorkerIds)[W]); });
  RT.schedule(Main, [&MapList](SimThread &T) { MapList[0]->size(T); });

  TraceRecorder Recorder;
  RT.run(Recorder);
  DiagnosticEngine Diags;
  EXPECT_TRUE(Recorder.trace().validate(Diags)) << Diags.toString();
  return Recorder.take();
}

} // namespace testgen
} // namespace crd

#endif // CRD_TESTS_TRACEGEN_H
