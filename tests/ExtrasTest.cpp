//===- tests/ExtrasTest.cpp - scalar objects / DOT export / trace stats -------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "access/DictionaryRep.h"
#include "detect/AtomicityChecker.h"
#include "detect/CommutativityDetector.h"
#include "runtime/InstrumentedMap.h"
#include "runtime/InstrumentedScalar.h"
#include "spec/Builtins.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceStats.h"
#include "translate/DotExport.h"
#include "translate/Translator.h"

#include <gtest/gtest.h>

using namespace crd;

//===----------------------------------------------------------------------===//
// InstrumentedCounter / InstrumentedRegister
//===----------------------------------------------------------------------===//

TEST(InstrumentedScalarTest, CounterFunctional) {
  SimRuntime RT(1);
  InstrumentedCounter Counter(RT, 5);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&Counter](SimThread &T) {
    Counter.inc(T);
    Counter.inc(T);
    Counter.dec(T);
    EXPECT_EQ(Counter.read(T), 6);
  });
  NullSink Sink;
  RT.run(Sink);
  EXPECT_EQ(Counter.uninstrumentedValue(), 6);
}

TEST(InstrumentedScalarTest, RegisterFunctional) {
  SimRuntime RT(1);
  InstrumentedRegister Reg(RT);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&Reg](SimThread &T) {
    EXPECT_EQ(Reg.read(T), Value::nil());
    EXPECT_EQ(Reg.write(T, Value::integer(42)), Value::nil());
    EXPECT_EQ(Reg.write(T, Value::integer(43)), Value::integer(42));
    EXPECT_EQ(Reg.read(T), Value::integer(43));
  });
  NullSink Sink;
  RT.run(Sink);
}

TEST(InstrumentedScalarTest, CounterRacesMatchCounterSpec) {
  // Concurrent incs commute; a concurrent read races with them.
  SimRuntime RT(4);
  InstrumentedCounter Counter(RT);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&Counter](SimThread &T) {
    T.fork([&Counter](SimThread &T2) { Counter.inc(T2); });
    T.fork([&Counter](SimThread &T2) { Counter.inc(T2); });
  });
  RT.schedule(Main, [&Counter](SimThread &T) { Counter.read(T); });

  DiagnosticEngine Diags;
  auto Rep = translateSpec(counterSpec(), Diags);
  ASSERT_TRUE(Rep);
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(Rep.get());
  DetectorSink<CommutativityRaceDetector> Sink(Detector);
  RT.run(Sink);
  // inc/inc never race; at least one inc is concurrent with the read in
  // every schedule (no join before the read).
  EXPECT_GE(Detector.races().size(), 1u);
  for (const CommutativityRace &R : Detector.races())
    EXPECT_TRUE(R.Current.method() == symbol("read") ||
                R.Current.method() == symbol("inc"));
}

TEST(InstrumentedScalarTest, RegisterWritesRace) {
  SimRuntime RT(4);
  InstrumentedRegister Reg(RT);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&Reg](SimThread &T) {
    T.fork([&Reg](SimThread &T2) { Reg.write(T2, Value::integer(1)); });
    T.fork([&Reg](SimThread &T2) { Reg.write(T2, Value::integer(2)); });
  });

  DiagnosticEngine Diags;
  auto Rep = translateSpec(registerSpec(), Diags);
  ASSERT_TRUE(Rep);
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(Rep.get());
  DetectorSink<CommutativityRaceDetector> Sink(Detector);
  RT.run(Sink);
  EXPECT_EQ(Detector.races().size(), 1u);
}

//===----------------------------------------------------------------------===//
// DOT export
//===----------------------------------------------------------------------===//

TEST(DotExportTest, Fig7GraphShape) {
  DictionaryRep Rep;
  std::string Dot = conflictGraphToDot(Rep, "dictionary");
  // Header and all four nodes.
  EXPECT_NE(Dot.find("graph \"dictionary\" {"), std::string::npos);
  EXPECT_NE(Dot.find("label=\"o:r:k\", shape=box"), std::string::npos);
  EXPECT_NE(Dot.find("label=\"o:w:k\", shape=box"), std::string::npos);
  EXPECT_NE(Dot.find("label=\"o:size\", shape=ellipse"), std::string::npos);
  EXPECT_NE(Dot.find("label=\"o:resize\", shape=ellipse"), std::string::npos);
  // Edges: r--w (value), w--w self-loop (value), size--resize.
  EXPECT_NE(Dot.find("c0 -- c1 [label=\"= value\"];"), std::string::npos);
  EXPECT_NE(Dot.find("c1 -- c1 [label=\"= value\"];"), std::string::npos);
  EXPECT_NE(Dot.find("c2 -- c3;"), std::string::npos);
  // Each undirected edge appears exactly once.
  EXPECT_EQ(Dot.find("c3 -- c2"), std::string::npos);
}

TEST(DotExportTest, EscapesQuotes) {
  DictionaryRep Rep;
  std::string Dot = conflictGraphToDot(Rep, "na\"me");
  EXPECT_NE(Dot.find("graph \"na\\\"me\""), std::string::npos);
}

TEST(DotExportTest, TranslatedRepExports) {
  DiagnosticEngine Diags;
  auto Rep = translateSpec(setSpec(), Diags);
  ASSERT_TRUE(Rep);
  std::string Dot = conflictGraphToDot(*Rep, "set");
  EXPECT_NE(Dot.find("graph \"set\""), std::string::npos);
  // A graph with at least one edge and one boxed (keyed) node.
  EXPECT_NE(Dot.find(" -- "), std::string::npos);
  EXPECT_NE(Dot.find("shape=box"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// TraceStats
//===----------------------------------------------------------------------===//

TEST(TraceStatsTest, CountsEverything) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .acquire(1, 3)
                .write(1, 9)
                .release(1, 3)
                .txBegin(0)
                .invoke(0, 5, "put", {Value::integer(1), Value::integer(2)},
                        Value::nil())
                .invoke(0, 5, "get", {Value::integer(1)}, Value::integer(2))
                .invoke(0, 6, "size", {}, Value::integer(0))
                .txEnd(0)
                .read(0, 9)
                .join(0, 1)
                .take();
  TraceStats Stats = TraceStats::compute(T);
  EXPECT_EQ(Stats.Events, 11u);
  EXPECT_EQ(Stats.Actions, 3u);
  EXPECT_EQ(Stats.MemoryAccesses, 2u);
  EXPECT_EQ(Stats.SyncEvents, 4u);
  EXPECT_EQ(Stats.TxEvents, 2u);
  EXPECT_EQ(Stats.Threads, 2u);
  EXPECT_EQ(Stats.Locks, 1u);
  EXPECT_EQ(Stats.MemoryLocations, 1u);
  EXPECT_EQ(Stats.Objects, 2u);
  EXPECT_EQ(Stats.ActionsPerObject.at(ObjectId(5)), 2u);
  EXPECT_EQ(Stats.ActionsPerMethod.at(symbol("put")), 1u);

  std::string Rendered = Stats.toString();
  EXPECT_NE(Rendered.find("11 events"), std::string::npos);
  EXPECT_NE(Rendered.find("put x1"), std::string::npos);
}

TEST(TraceStatsTest, EmptyTrace) {
  TraceStats Stats = TraceStats::compute(Trace());
  EXPECT_EQ(Stats.Events, 0u);
  EXPECT_EQ(Stats.Threads, 0u);
  EXPECT_EQ(Stats.toString().find("0 events"), 0u);
}

//===----------------------------------------------------------------------===//
// Atomicity monotonicity: memory-conflict mode only adds edges, so every
// commutativity-level violation is also found with memory conflicts on.
//===----------------------------------------------------------------------===//

TEST(AtomicityMonotonicityTest, MemoryModeIsSuperset) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    SimRuntime RT(Seed);
    InstrumentedMap Map(RT);
    ThreadId Main = RT.addInitialThread();
    RT.schedule(Main, [&RT, &Map](SimThread &T) {
      for (unsigned W = 0; W != 3; ++W) {
        ThreadId Tid = T.fork([](SimThread &) {});
        for (unsigned Q = 0; Q != 8; ++Q)
          RT.schedule(Tid, [&Map](SimThread &T2) {
            Value Key = Value::integer(static_cast<int64_t>(T2.random(3)));
            if (T2.random(2)) {
              // An intended-atomic read-modify-write.
              T2.txBegin();
              Value Cur = Map.get(T2, Key);
              int64_t N = Cur.isNil() ? 0 : Cur.asInt();
              T2.defer([&Map, Key, N](SimThread &T3) {
                Map.put(T3, Key, Value::integer(N + 1));
                T3.txEnd();
              });
            } else {
              Map.size(T2);
            }
          });
      }
    });
    TraceRecorder Recorder;
    RT.run(Recorder);

    DictionaryRep Rep;
    AtomicityChecker Commutative, Velodrome;
    Commutative.setDefaultProvider(&Rep);
    Velodrome.setDefaultProvider(&Rep);
    Velodrome.setIncludeMemoryConflicts(true);

    auto A = Commutative.check(Recorder.trace());
    auto B = Velodrome.check(Recorder.trace());
    // Same blocks or more get flagged with the extra edges.
    EXPECT_GE(B.size(), A.size()) << "seed " << Seed;
    // Every commutativity-flagged block is also memory-flagged.
    for (const AtomicityViolation &V : A) {
      bool Found = false;
      for (const AtomicityViolation &W : B)
        Found |= W.BeginEvent == V.BeginEvent && W.Thread == V.Thread;
      EXPECT_TRUE(Found) << "seed " << Seed << " block at " << V.BeginEvent;
    }
  }
}
