//===- tests/TranslateTest.cpp - §6.2 translator tests ------------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "access/DictionaryRep.h"
#include "spec/Builtins.h"
#include "translate/Translator.h"

#include <gtest/gtest.h>

using namespace crd;

namespace {

Action put(std::string_view K, Value V, Value P) {
  return Action(ObjectId(1), symbol("put"), {Value::string(K), V}, P);
}
Action get(std::string_view K, Value V) {
  return Action(ObjectId(1), symbol("get"), {Value::string(K)}, V);
}
Action size(int64_t R) {
  return Action(ObjectId(1), symbol("size"), {}, Value::integer(R));
}

std::unique_ptr<TranslatedRep> translateDict(TranslationOptions Options = {},
                                             TranslationStats *Stats = nullptr) {
  DiagnosticEngine Diags;
  auto Rep = translateSpec(dictionarySpec(), Diags, Options, Stats);
  EXPECT_TRUE(Rep) << Diags.toString();
  return Rep;
}

std::vector<AccessPoint> touch(const AccessPointProvider &P, const Action &A) {
  std::vector<AccessPoint> Out;
  P.touches(A, Out);
  return Out;
}

} // namespace

TEST(TranslatorTest, DictionaryAtomsMatchThePaper) {
  auto Rep = translateDict();
  // B(Φ, put) = {v = p, v = nil, p = nil} (paper §6.2 example).
  EXPECT_EQ(Rep->methodAtoms(0).size(), 3u);
  // get and size have no LB atoms.
  EXPECT_EQ(Rep->methodAtoms(1).size(), 0u);
  EXPECT_EQ(Rep->methodAtoms(2).size(), 0u);
}

TEST(TranslatorTest, BetaVectorWorkedExample) {
  // Paper §6.2: for put(5,6)/nil the vector is
  //   {(v = p) -> false, (v = nil) -> false, (p = nil) -> true}.
  auto Rep = translateDict();
  std::vector<Value> Values = {Value::integer(5), Value::integer(6),
                               Value::nil()};
  uint32_t Mask = Rep->betaMask(0, Values);
  const std::vector<CanonAtom> &Atoms = Rep->methodAtoms(0);
  ASSERT_EQ(Atoms.size(), 3u);
  // Identify each atom by evaluating it on distinguishing inputs rather
  // than relying on atom order.
  int TrueCount = 0;
  for (uint32_t T = 0; T != 3; ++T)
    if ((Mask >> T) & 1)
      ++TrueCount;
  EXPECT_EQ(TrueCount, 1); // Only p = nil holds.

  // put(5,6)/6 (no-op overwrite): v = p true, v = nil false, p = nil false.
  std::vector<Value> Noop = {Value::integer(5), Value::integer(6),
                             Value::integer(6)};
  uint32_t NoopMask = Rep->betaMask(0, Noop);
  int NoopTrue = 0;
  for (uint32_t T = 0; T != 3; ++T)
    if ((NoopMask >> T) & 1)
      ++NoopTrue;
  EXPECT_EQ(NoopTrue, 1);
  EXPECT_NE(Mask, NoopMask);
}

TEST(TranslatorTest, OptimizedDictionaryHasFig7Shape) {
  TranslationStats Stats;
  auto Rep = translateDict({}, &Stats);
  // The appendix-optimized dictionary representation has exactly the four
  // Fig 7 classes: o:r:k, o:w:k, o:size, o:resize.
  EXPECT_EQ(Rep->numClasses(), 4u);
  EXPECT_GT(Stats.RawSlots, Stats.FinalActiveClasses);
  EXPECT_LE(Stats.MaxConflictsPerClass, 2u);

  // Two carrying classes (r/w families) and two plain ones (size/resize).
  unsigned Carrying = 0;
  for (uint32_t C = 0; C != 4; ++C)
    if (Rep->classCarriesValue(C))
      ++Carrying;
  EXPECT_EQ(Carrying, 2u);
}

TEST(TranslatorTest, OptimizedDictionaryConflictStructure) {
  auto Rep = translateDict();
  // Find the write class: the carrying class that conflicts with itself.
  std::optional<uint32_t> WriteClass, ReadClass, SizeClass, ResizeClass;
  for (uint32_t C = 0; C != Rep->numClasses(); ++C) {
    const std::vector<uint32_t> &Row = Rep->conflictsOf(C);
    bool SelfConflict =
        std::find(Row.begin(), Row.end(), C) != Row.end();
    if (Rep->classCarriesValue(C)) {
      if (SelfConflict)
        WriteClass = C;
      else
        ReadClass = C;
    } else {
      EXPECT_FALSE(SelfConflict);
      ASSERT_EQ(Row.size(), 1u);
      // size and resize point at each other; disambiguate below.
      if (!SizeClass)
        SizeClass = C;
      else
        ResizeClass = C;
    }
  }
  ASSERT_TRUE(WriteClass && ReadClass && SizeClass && ResizeClass);
  // w conflicts with both r and w; r conflicts only with w.
  EXPECT_EQ(Rep->conflictsOf(*WriteClass).size(), 2u);
  EXPECT_EQ(Rep->conflictsOf(*ReadClass),
            std::vector<uint32_t>{*WriteClass});
  EXPECT_EQ(Rep->conflictsOf(*SizeClass),
            std::vector<uint32_t>{*ResizeClass});
  EXPECT_EQ(Rep->conflictsOf(*ResizeClass),
            std::vector<uint32_t>{*SizeClass});
}

TEST(TranslatorTest, TouchesMirrorFig7b) {
  auto Rep = translateDict();
  // Fresh insert touches two points (w:k and resize).
  EXPECT_EQ(touch(*Rep, put("a", Value::integer(1), Value::nil())).size(), 2u);
  // Overwrite touches only w:k.
  EXPECT_EQ(
      touch(*Rep, put("a", Value::integer(2), Value::integer(1))).size(), 1u);
  // No-op put touches only r:k.
  EXPECT_EQ(
      touch(*Rep, put("a", Value::integer(1), Value::integer(1))).size(), 1u);
  // get touches r:k; size touches size.
  EXPECT_EQ(touch(*Rep, get("a", Value::nil())).size(), 1u);
  EXPECT_EQ(touch(*Rep, size(0)).size(), 1u);
}

TEST(TranslatorTest, GetAndNoopPutShareTheReadClass) {
  // The appendix "replacement" transformation: o.get:∅:1:v is congruent to
  // o:r:v and merges with it.
  auto Rep = translateDict();
  auto GetPoints = touch(*Rep, get("a", Value::integer(1)));
  auto NoopPut = touch(*Rep, put("a", Value::integer(1), Value::integer(1)));
  ASSERT_EQ(GetPoints.size(), 1u);
  ASSERT_EQ(NoopPut.size(), 1u);
  EXPECT_EQ(GetPoints[0].ClassId, NoopPut[0].ClassId);
  EXPECT_EQ(GetPoints[0].Val, Value::string("a"));
}

TEST(TranslatorTest, EquivalentToHandWrittenFig7) {
  // Definition 4.5 equivalence of the generated representation with the
  // hand-written Fig 7 one: both must call exactly the same action pairs
  // conflicting. Sweep a structured action zoo.
  auto Translated = translateDict();
  DictionaryRep Hand;

  std::vector<Action> Zoo;
  std::vector<Value> Vals = {Value::nil(), Value::integer(1),
                             Value::integer(2)};
  for (std::string_view K : {"a", "b"})
    for (const Value &V : Vals)
      for (const Value &P : Vals)
        Zoo.push_back(put(K, V, P));
  for (std::string_view K : {"a", "b"})
    for (const Value &V : Vals)
      Zoo.push_back(get(K, V));
  Zoo.push_back(size(0));
  Zoo.push_back(size(2));

  for (const Action &A : Zoo)
    for (const Action &B : Zoo)
      EXPECT_EQ(actionsConflict(*Translated, A, B),
                actionsConflict(Hand, A, B))
          << A << " vs " << B;
}

TEST(TranslatorTest, RepresentsTheSpecification) {
  // Definition 4.5 against the logical specification itself:
  // conflict(a, b) iff ¬ϕ(a, b).
  auto Rep = translateDict();
  const ObjectSpec &Spec = dictionarySpec();

  std::vector<Action> Zoo;
  std::vector<Value> Vals = {Value::nil(), Value::integer(1),
                             Value::integer(2)};
  for (std::string_view K : {"a", "b", "c"})
    for (const Value &V : Vals)
      for (const Value &P : Vals)
        Zoo.push_back(put(K, V, P));
  for (std::string_view K : {"a", "b", "c"})
    for (const Value &V : Vals)
      Zoo.push_back(get(K, V));
  Zoo.push_back(size(0));

  for (const Action &A : Zoo)
    for (const Action &B : Zoo)
      EXPECT_EQ(actionsConflict(*Rep, A, B), !Spec.commute(A, B))
          << A << " vs " << B;
}

TEST(TranslatorTest, UnoptimizedStillRepresentsTheSpecification) {
  TranslationOptions Off;
  Off.DropIrrelevantAtoms = false;
  Off.MergeCongruentSlots = false;
  Off.RemoveConflictFree = false;
  DiagnosticEngine Diags;
  auto Rep = translateSpec(dictionarySpec(), Diags, Off);
  ASSERT_TRUE(Rep) << Diags.toString();
  const ObjectSpec &Spec = dictionarySpec();

  std::vector<Value> Vals = {Value::nil(), Value::integer(1)};
  std::vector<Action> Zoo;
  for (std::string_view K : {"a", "b"})
    for (const Value &V : Vals)
      for (const Value &P : Vals)
        Zoo.push_back(put(K, V, P));
  Zoo.push_back(get("a", Value::integer(1)));
  Zoo.push_back(size(0));

  for (const Action &A : Zoo)
    for (const Action &B : Zoo)
      EXPECT_EQ(actionsConflict(*Rep, A, B), !Spec.commute(A, B))
          << A << " vs " << B;
}

TEST(TranslatorTest, PassesOnlyShrinkTheRepresentation) {
  TranslationStats Raw, Dropped, Full;
  TranslationOptions NoOpt;
  NoOpt.DropIrrelevantAtoms = false;
  NoOpt.MergeCongruentSlots = false;
  NoOpt.RemoveConflictFree = false;
  TranslationOptions DropOnly = NoOpt;
  DropOnly.DropIrrelevantAtoms = true;

  DiagnosticEngine D1, D2, D3;
  auto R1 = translateSpec(dictionarySpec(), D1, NoOpt, &Raw);
  auto R2 = translateSpec(dictionarySpec(), D2, DropOnly, &Dropped);
  auto R3 = translateSpec(dictionarySpec(), D3, {}, &Full);
  ASSERT_TRUE(R1 && R2 && R3);

  EXPECT_EQ(Raw.RawSlots, Dropped.RawSlots);
  EXPECT_LT(Dropped.SlotsAfterDropping, Raw.SlotsAfterDropping);
  EXPECT_LT(Full.FinalActiveClasses, Dropped.SlotsAfterDropping);
  EXPECT_EQ(Full.FinalActiveClasses, 4u);
}

TEST(TranslatorTest, BoundedConflictsTheorem66) {
  // Theorem 6.6: each access point conflicts with a bounded number of
  // others — in the class representation, every row is finite and small.
  for (const ObjectSpec *Spec :
       {&dictionarySpec(), &setSpec(), &counterSpec(), &registerSpec()}) {
    DiagnosticEngine Diags;
    TranslationStats Stats;
    auto Rep = translateSpec(*Spec, Diags, {}, &Stats);
    ASSERT_TRUE(Rep) << Spec->name() << ": " << Diags.toString();
    EXPECT_LE(Stats.MaxConflictsPerClass, 8u) << Spec->name();
  }
}

TEST(TranslatorTest, SetSpecRepresentation) {
  DiagnosticEngine Diags;
  auto Rep = translateSpec(setSpec(), Diags);
  ASSERT_TRUE(Rep) << Diags.toString();
  const ObjectSpec &Spec = setSpec();

  auto Add = [](std::string_view K, bool C) {
    return Action(ObjectId(0), symbol("add"), {Value::string(K)},
                  Value::boolean(C));
  };
  auto Remove = [](std::string_view K, bool C) {
    return Action(ObjectId(0), symbol("remove"), {Value::string(K)},
                  Value::boolean(C));
  };
  auto Contains = [](std::string_view K, bool R) {
    return Action(ObjectId(0), symbol("contains"), {Value::string(K)},
                  Value::boolean(R));
  };
  auto SizeA = [](int64_t N) {
    return Action(ObjectId(0), symbol("size"), {}, Value::integer(N));
  };

  std::vector<Action> Zoo;
  for (std::string_view K : {"x", "y"})
    for (bool C : {true, false}) {
      Zoo.push_back(Add(K, C));
      Zoo.push_back(Remove(K, C));
      Zoo.push_back(Contains(K, C));
    }
  Zoo.push_back(SizeA(0));
  Zoo.push_back(SizeA(5));

  for (const Action &A : Zoo)
    for (const Action &B : Zoo)
      EXPECT_EQ(actionsConflict(*Rep, A, B), !Spec.commute(A, B))
          << A << " vs " << B;
}

TEST(TranslatorTest, CounterAndRegisterRepresentations) {
  for (const ObjectSpec *Spec : {&counterSpec(), &registerSpec()}) {
    DiagnosticEngine Diags;
    auto Rep = translateSpec(*Spec, Diags);
    ASSERT_TRUE(Rep) << Diags.toString();
  }
  // Counter: inc/read conflict, inc/inc do not.
  DiagnosticEngine Diags;
  auto Rep = translateSpec(counterSpec(), Diags);
  Action Inc(ObjectId(0), symbol("inc"), {}, std::vector<Value>{});
  Action Read(ObjectId(0), symbol("read"), {}, Value::integer(3));
  EXPECT_TRUE(actionsConflict(*Rep, Inc, Read));
  EXPECT_TRUE(actionsConflict(*Rep, Read, Inc));
  EXPECT_FALSE(actionsConflict(*Rep, Inc, Inc));
  EXPECT_FALSE(actionsConflict(*Rep, Read, Read));
}

TEST(TranslatorTest, RejectsNonECL) {
  ObjectSpec Spec("bad");
  uint32_t W = Spec.addMethod({symbol("w"), 1, 0});
  // v1 == v2 is a cross-side equality: not in ECL.
  Spec.setCommutes(W, W,
                   Formula::atom(PredKind::Eq, Term::var(Side::First, 0),
                                 Term::var(Side::Second, 0)));
  DiagnosticEngine Diags;
  EXPECT_FALSE(translateSpec(Spec, Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(TranslatorTest, UnspecifiedPairsConflictViaDs) {
  ObjectSpec Spec("partial");
  uint32_t A = Spec.addMethod({symbol("a"), 0, 0});
  uint32_t B = Spec.addMethod({symbol("b"), 0, 0});
  Spec.setCommutes(A, A, Formula::truth(true));
  Spec.setCommutes(B, B, Formula::truth(true));
  // (a, b) left unspecified.
  DiagnosticEngine Diags;
  auto Rep = translateSpec(Spec, Diags);
  ASSERT_TRUE(Rep) << Diags.toString();
  Action ActA(ObjectId(0), symbol("a"), {}, std::vector<Value>{});
  Action ActB(ObjectId(0), symbol("b"), {}, std::vector<Value>{});
  EXPECT_TRUE(actionsConflict(*Rep, ActA, ActB));
  EXPECT_FALSE(actionsConflict(*Rep, ActA, ActA));
}
