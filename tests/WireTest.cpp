//===- tests/WireTest.cpp - binary wire format round-trip tests ---------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// Properties of the chunked binary trace encoding:
///
///   * text→binary→text round-trips are identical event-for-event (string
///     escapes, multi-return values, nil/bool values, negative integers),
///     over hand-built and randomized traces and across chunk sizes;
///   * WireReader rejects truncated chunks, corrupted payloads (bad CRC),
///     bad magic and unknown versions with a diagnostic, never a crash;
///   * scanWire reports the chunk shape without decoding events;
///   * WireSink records a live SimRuntime execution bit-equal to the
///     TraceRecorder + writeTrace path.
///
//===----------------------------------------------------------------------===//

#include "runtime/InstrumentedMap.h"
#include "runtime/SimRuntime.h"
#include "runtime/Sink.h"
#include "trace/TraceIO.h"
#include "wire/EventSource.h"
#include "wire/Varint.h"
#include "wire/WireReader.h"
#include "wire/WireWriter.h"
#include "TraceGen.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace crd;
using namespace crd::wire;

namespace {

/// Events carry no operator==; field-compare via the per-kind accessors.
void expectEventEq(const Event &A, const Event &B, size_t Index) {
  ASSERT_EQ(A.kind(), B.kind()) << "event " << Index;
  EXPECT_EQ(A.thread(), B.thread()) << "event " << Index;
  switch (A.kind()) {
  case EventKind::Fork:
  case EventKind::Join:
    EXPECT_EQ(A.other(), B.other()) << "event " << Index;
    break;
  case EventKind::Acquire:
  case EventKind::Release:
    EXPECT_EQ(A.lock(), B.lock()) << "event " << Index;
    break;
  case EventKind::Read:
  case EventKind::Write:
    EXPECT_EQ(A.var(), B.var()) << "event " << Index;
    break;
  case EventKind::Invoke:
    EXPECT_EQ(A.action(), B.action()) << "event " << Index;
    break;
  case EventKind::TxBegin:
  case EventKind::TxEnd:
    break;
  }
}

std::string encode(const Trace &T, size_t EventsPerChunk) {
  std::ostringstream OS;
  WireWriter Writer(OS, EventsPerChunk);
  Writer.writeTrace(T);
  Writer.finish();
  return OS.str();
}

Trace decode(const std::string &Bytes) {
  std::istringstream In(Bytes);
  DiagnosticEngine Diags;
  WireReader Reader(In, Diags);
  Trace T;
  Event E = Event::txBegin(ThreadId(0));
  while (Reader.next(E))
    T.append(E);
  EXPECT_FALSE(Reader.failed()) << Diags.toString();
  return T;
}

void expectRoundTrip(const Trace &T, size_t EventsPerChunk) {
  Trace Decoded = decode(encode(T, EventsPerChunk));
  ASSERT_EQ(Decoded.size(), T.size());
  for (size_t I = 0; I != T.size(); ++I)
    expectEventEq(T[I], Decoded[I], I);
}

/// A trace exercising every event kind and every value shape: escapes,
/// multi-return values, nil/bool, negative ints, id jumps (delta stress).
Trace awkwardTrace() {
  Trace T;
  T.append(Event::fork(ThreadId(0), ThreadId(7)));
  T.append(Event::invoke(
      ThreadId(7), Action(ObjectId(3), symbol("put"),
                          {Value::string("a\"b\\c\nd\te"), Value::integer(-42)},
                          Value::nil())));
  T.append(Event::invoke(
      ThreadId(0),
      Action(ObjectId(900000), symbol("deq"), {},
             std::vector<Value>{Value::integer(7), Value::boolean(true)})));
  T.append(Event::invoke(
      ThreadId(7), Action(ObjectId(0), symbol("weird_m3"),
                          {Value::boolean(false), Value::nil(),
                           Value::string(""), Value::string("a\"b\\c\nd\te")},
                          std::vector<Value>{})));
  T.append(Event::acquire(ThreadId(7), LockId(5)));
  T.append(Event::read(ThreadId(7), VarId(123456)));
  T.append(Event::write(ThreadId(7), VarId(0)));
  T.append(Event::release(ThreadId(7), LockId(5)));
  T.append(Event::txBegin(ThreadId(0)));
  T.append(Event::invoke(ThreadId(0),
                         Action(ObjectId(2), symbol("get"),
                                {Value::integer(INT64_MIN)},
                                Value::integer(INT64_MAX))));
  T.append(Event::txEnd(ThreadId(0)));
  T.append(Event::join(ThreadId(0), ThreadId(7)));
  return T;
}

} // namespace

//===----------------------------------------------------------------------===//
// Varint codec
//===----------------------------------------------------------------------===//

TEST(VarintTest, RoundTripBoundaries) {
  for (uint64_t V : {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                     0xFFFFFFFFull, ~0ull}) {
    std::string Buf;
    putVarint(Buf, V);
    ByteReader R(reinterpret_cast<const uint8_t *>(Buf.data()), Buf.size());
    auto Back = R.varint();
    ASSERT_TRUE(Back.has_value());
    EXPECT_EQ(*Back, V);
    EXPECT_TRUE(R.atEnd());
  }
}

TEST(VarintTest, ZigzagRoundTrip) {
  for (int64_t V : {int64_t(0), int64_t(-1), int64_t(1), int64_t(-64),
                    int64_t(64), INT64_MIN, INT64_MAX}) {
    std::string Buf;
    putSVarint(Buf, V);
    ByteReader R(reinterpret_cast<const uint8_t *>(Buf.data()), Buf.size());
    auto Back = R.svarint();
    ASSERT_TRUE(Back.has_value());
    EXPECT_EQ(*Back, V);
  }
  EXPECT_EQ(zigzag(0), 0u);
  EXPECT_EQ(zigzag(-1), 1u);
  EXPECT_EQ(zigzag(1), 2u);
}

TEST(VarintTest, RejectsTruncatedAndOverlong) {
  // Truncated: continuation bit set, no next byte.
  uint8_t Trunc[] = {0x80};
  ByteReader R1(Trunc, 1);
  EXPECT_FALSE(R1.varint().has_value());
  // Overlong: 11 continuation bytes exceed 64 payload bits.
  uint8_t Over[11];
  for (auto &B : Over)
    B = 0xFF;
  ByteReader R2(Over, 11);
  EXPECT_FALSE(R2.varint().has_value());
}

//===----------------------------------------------------------------------===//
// Round-trips
//===----------------------------------------------------------------------===//

TEST(WireRoundTripTest, AwkwardTraceAllChunkSizes) {
  Trace T = awkwardTrace();
  for (size_t Chunk : {size_t(1), size_t(2), size_t(3), size_t(5),
                       size_t(100), DefaultEventsPerChunk})
    expectRoundTrip(T, Chunk);
}

TEST(WireRoundTripTest, TextBinaryTextIsIdentical) {
  // The full loop of `crd convert`: text → binary → text. The rendered
  // text (with escapes re-emitted) must be byte-identical.
  Trace T = awkwardTrace();
  std::string Text = traceToString(T);
  DiagnosticEngine Diags;
  auto Parsed = parseTrace(Text, Diags);
  ASSERT_TRUE(Parsed.has_value()) << Diags.toString();
  ASSERT_EQ(Parsed->size(), T.size());
  Trace Decoded = decode(encode(*Parsed, 3));
  EXPECT_EQ(traceToString(Decoded), Text);
}

TEST(WireRoundTripTest, RandomizedTraces) {
  for (uint64_t Seed : {1u, 7u, 42u, 1234u}) {
    Trace T = testgen::randomTrace(Seed, /*Workers=*/4, /*OpsPerWorker=*/30,
                                   /*Keys=*/8);
    expectRoundTrip(T, 64);
    expectRoundTrip(T, DefaultEventsPerChunk);
  }
}

TEST(WireRoundTripTest, EmptyTrace) {
  std::string Bytes = encode(Trace(), 16);
  EXPECT_EQ(Bytes.size(), FileHeaderSize); // Header only, no chunks.
  Trace Decoded = decode(Bytes);
  EXPECT_EQ(Decoded.size(), 0u);
}

TEST(WireRoundTripTest, ChunkingIsExact) {
  Trace T = testgen::randomTrace(3, 2, 20, 4);
  std::string Bytes = encode(T, 10);
  std::istringstream In(Bytes);
  DiagnosticEngine Diags;
  WireReader Reader(In, Diags);
  Event E = Event::txBegin(ThreadId(0));
  while (Reader.next(E))
    ;
  EXPECT_FALSE(Reader.failed());
  EXPECT_EQ(Reader.eventsRead(), T.size());
  EXPECT_EQ(Reader.chunksRead(), (T.size() + 9) / 10);
}

//===----------------------------------------------------------------------===//
// Structural error handling
//===----------------------------------------------------------------------===//

TEST(WireErrorTest, RejectsBadMagic) {
  std::string Bytes = "NOPE";
  std::istringstream In(Bytes);
  DiagnosticEngine Diags;
  WireReader Reader(In, Diags);
  Event E = Event::txBegin(ThreadId(0));
  EXPECT_FALSE(Reader.next(E));
  EXPECT_TRUE(Reader.failed());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(WireErrorTest, RejectsUnknownVersion) {
  std::string Bytes = encode(awkwardTrace(), 4);
  Bytes[4] = 99; // Version byte.
  std::istringstream In(Bytes);
  DiagnosticEngine Diags;
  WireReader Reader(In, Diags);
  EXPECT_TRUE(Reader.failed());
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.toString().find("version"), std::string::npos);
}

TEST(WireErrorTest, RejectsEveryTruncationPoint) {
  std::string Bytes = encode(awkwardTrace(), 3);
  for (size_t Cut = 0; Cut != Bytes.size(); ++Cut) {
    std::istringstream In(Bytes.substr(0, Cut));
    DiagnosticEngine Diags;
    WireReader Reader(In, Diags);
    Event E = Event::txBegin(ThreadId(0));
    size_t Decoded = 0;
    while (Reader.next(E))
      ++Decoded;
    // A truncation can only look clean at a chunk boundary; anywhere else
    // the reader must diagnose (header, payload or CRC failure).
    if (Reader.failed()) {
      EXPECT_TRUE(Diags.hasErrors()) << "cut at " << Cut;
    }
    EXPECT_LE(Decoded, 12u) << "cut at " << Cut;
  }
}

TEST(WireErrorTest, RejectsCorruptedPayloadByCrc) {
  std::string Bytes = encode(awkwardTrace(), 100);
  // Flip one byte inside the payload (past file header + the digest-bearing
  // chunk header). CRC is verified before the content digest, so payload
  // corruption is always reported as a CRC failure.
  Bytes[FileHeaderSize + DigestChunkHeaderSize + 3] ^= 0x40;
  std::istringstream In(Bytes);
  DiagnosticEngine Diags;
  WireReader Reader(In, Diags);
  Event E = Event::txBegin(ThreadId(0));
  EXPECT_FALSE(Reader.next(E));
  EXPECT_TRUE(Reader.failed());
  EXPECT_NE(Diags.toString().find("CRC"), std::string::npos);
}

TEST(WireErrorTest, RejectsOversizedChunkClaim) {
  std::string Bytes = encode(awkwardTrace(), 100);
  // Rewrite the payload-size field to something absurd.
  uint32_t Huge = MaxChunkPayload + 1;
  for (int I = 0; I != 4; ++I)
    Bytes[FileHeaderSize + I] = static_cast<char>((Huge >> (8 * I)) & 0xFF);
  std::istringstream In(Bytes);
  DiagnosticEngine Diags;
  WireReader Reader(In, Diags);
  Event E = Event::txBegin(ThreadId(0));
  EXPECT_FALSE(Reader.next(E));
  EXPECT_TRUE(Reader.failed());
  EXPECT_NE(Diags.toString().find("exceeds limit"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// scanWire
//===----------------------------------------------------------------------===//

TEST(ScanWireTest, ReportsChunkShape) {
  Trace T = awkwardTrace();
  std::string Bytes = encode(T, 5);
  std::istringstream In(Bytes);
  DiagnosticEngine Diags;
  auto Info = scanWire(In, Diags);
  ASSERT_TRUE(Info.has_value()) << Diags.toString();
  EXPECT_EQ(Info->TotalEvents, T.size());
  EXPECT_EQ(Info->TotalBytes, Bytes.size());
  ASSERT_EQ(Info->Chunks.size(), (T.size() + 4) / 5);
  EXPECT_EQ(Info->Chunks[0].Events, 5u);
  EXPECT_GT(Info->Chunks[0].Symbols, 0u);
  EXPECT_GT(Info->bytesPerEvent(), 0.0);
}

TEST(ScanWireTest, DiagnosesCorruption) {
  std::string Bytes = encode(awkwardTrace(), 5);
  Bytes[Bytes.size() - 1] ^= 0xFF;
  std::istringstream In(Bytes);
  DiagnosticEngine Diags;
  EXPECT_FALSE(scanWire(In, Diags).has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Sources and sinks
//===----------------------------------------------------------------------===//

TEST(EventSourceTest, TextStreamMatchesBatchParse) {
  Trace T = testgen::randomTrace(11, 3, 25, 6);
  std::string Text = "# header comment\n\n" + traceToString(T);
  std::istringstream In(Text);
  DiagnosticEngine Diags;
  TextStreamSource Source(In, Diags);
  Trace Streamed;
  Event E = Event::txBegin(ThreadId(0));
  while (Source.next(E))
    Streamed.append(E);
  EXPECT_FALSE(Source.failed()) << Diags.toString();
  ASSERT_EQ(Streamed.size(), T.size());
  for (size_t I = 0; I != T.size(); ++I)
    expectEventEq(T[I], Streamed[I], I);
}

TEST(EventSourceTest, TextStreamReportsLineNumbers) {
  std::istringstream In("T0: fork T1\n\nthis is not a trace line\n");
  DiagnosticEngine Diags;
  TextStreamSource Source(In, Diags);
  Event E = Event::txBegin(ThreadId(0));
  EXPECT_TRUE(Source.next(E));
  EXPECT_EQ(E.kind(), EventKind::Fork);
  EXPECT_FALSE(Source.next(E));
  EXPECT_TRUE(Source.failed());
  ASSERT_FALSE(Diags.all().empty());
  EXPECT_EQ(Diags.all()[0].Loc.Line, 3u);
}

TEST(EventSourceTest, WireSinkMatchesRecorder) {
  // Record the same deterministic execution twice: once through the
  // classic TraceRecorder, once straight to wire bytes.
  auto runInto = [](EventSink &Sink) {
    SimRuntime RT(99);
    InstrumentedMap Map(RT);
    ThreadId Main = RT.addInitialThread();
    RT.schedule(Main, [&](SimThread &T) {
      ThreadId W = T.fork([&Map](SimThread &T2) {
        Map.put(T2, Value::integer(1), Value::integer(10));
      });
      T.defer([W, &Map](SimThread &T3) {
        Map.put(T3, Value::integer(1), Value::integer(20));
        T3.join(W);
      });
    });
    RT.run(Sink);
  };

  TraceRecorder Recorder;
  runInto(Recorder);

  std::ostringstream OS;
  WireWriter Writer(OS, 4);
  WireSink Sink(Writer);
  runInto(Sink);
  Writer.finish();

  Trace Decoded = decode(OS.str());
  ASSERT_EQ(Decoded.size(), Recorder.trace().size());
  for (size_t I = 0; I != Decoded.size(); ++I)
    expectEventEq(Recorder.trace()[I], Decoded[I], I);
}

//===----------------------------------------------------------------------===//
// parseTraceLine
//===----------------------------------------------------------------------===//

TEST(ParseTraceLineTest, SkipsBlankAndComments) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseTraceLine("", 1, Diags).has_value());
  EXPECT_FALSE(parseTraceLine("  # comment", 2, Diags).has_value());
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(ParseTraceLineTest, ParsesOneEvent) {
  DiagnosticEngine Diags;
  auto E = parseTraceLine("T3: o1.put(\"k\", 7)/nil", 5, Diags);
  ASSERT_TRUE(E.has_value()) << Diags.toString();
  EXPECT_EQ(E->thread(), ThreadId(3));
  EXPECT_EQ(E->action().method(), symbol("put"));
}

TEST(ParseTraceLineTest, RemapsDiagnosticLine) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseTraceLine("T3: garbage!", 41, Diags).has_value());
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.all()[0].Loc.Line, 41u);
}

//===----------------------------------------------------------------------===//
// Value escaping (the text side of the round-trip)
//===----------------------------------------------------------------------===//

TEST(ValueEscapeTest, PrintedStringsReparse) {
  Value V = Value::string("a\"b\\c\nd\te");
  std::string Printed = V.toString();
  EXPECT_EQ(Printed, "\"a\\\"b\\\\c\\nd\\te\"");
  DiagnosticEngine Diags;
  auto E = parseTraceLine("T0: o0.put(" + Printed + ", 1)/nil", 1, Diags);
  ASSERT_TRUE(E.has_value()) << Diags.toString();
  EXPECT_EQ(E->action().args()[0], V);
}
