//===- tests/KindScanTest.cpp - SIMD vs scalar kind-scan ---------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential test for the sync-event kind scan: the dispatched
/// appendKindPositions (SSE2 on hosts that have it) must produce
/// byte-identical output to the always-compiled scalar reference, across
/// randomized kind arrays, every tail length mod 16, threshold extremes,
/// and non-zero base offsets. The parallel pipeline's pre-pass trusts this
/// index blindly — a single missed or spurious sync position would
/// desynchronize the clock machine from the trace.
///
//===----------------------------------------------------------------------===//

#include "support/KindScan.h"
#include "trace/EventBatch.h"

#include "gtest/gtest.h"

#include <cstdint>
#include <random>
#include <vector>

using namespace crd;

namespace {

std::vector<uint32_t> scalarScan(const std::vector<uint8_t> &Kinds,
                                 uint8_t Below, uint32_t Base) {
  std::vector<uint32_t> Out;
  appendKindPositionsScalar(Kinds.data(), Kinds.size(), Below, Base, Out);
  return Out;
}

std::vector<uint32_t> dispatchedScan(const std::vector<uint8_t> &Kinds,
                                     uint8_t Below, uint32_t Base) {
  std::vector<uint32_t> Out;
  appendKindPositions(Kinds.data(), Kinds.size(), Below, Base, Out);
  return Out;
}

TEST(KindScanTest, EmptyInput) {
  std::vector<uint8_t> Kinds;
  EXPECT_TRUE(dispatchedScan(Kinds, SyncKindBound, 0).empty());
  EXPECT_TRUE(scalarScan(Kinds, SyncKindBound, 0).empty());
}

// Every length mod 16 matters: 15 (pure scalar tail), 16 (one full SIMD
// group, empty tail), 17 (group + 1), and so on. Sweep 0..64 so each
// residue appears with 0-4 full groups in front of it.
TEST(KindScanTest, EveryTailLengthMatchesScalar) {
  std::mt19937 Rng(2014);
  std::uniform_int_distribution<int> KindDist(0, 8); // All wire kinds.
  for (size_t Len = 0; Len <= 64; ++Len) {
    std::vector<uint8_t> Kinds(Len);
    for (uint8_t &K : Kinds)
      K = static_cast<uint8_t>(KindDist(Rng));
    EXPECT_EQ(dispatchedScan(Kinds, SyncKindBound, 0),
              scalarScan(Kinds, SyncKindBound, 0))
        << "length " << Len;
  }
}

TEST(KindScanTest, RandomizedLargeArraysMatchScalar) {
  std::mt19937 Rng(7);
  std::uniform_int_distribution<int> KindDist(0, 8);
  std::uniform_int_distribution<size_t> LenDist(1, 5000);
  std::uniform_int_distribution<uint32_t> BaseDist(0, 1u << 30);
  for (int Trial = 0; Trial != 50; ++Trial) {
    std::vector<uint8_t> Kinds(LenDist(Rng));
    for (uint8_t &K : Kinds)
      K = static_cast<uint8_t>(KindDist(Rng));
    uint32_t Base = BaseDist(Rng);
    auto Got = dispatchedScan(Kinds, SyncKindBound, Base);
    auto Want = scalarScan(Kinds, SyncKindBound, Base);
    ASSERT_EQ(Got, Want) << "trial " << Trial << " length " << Kinds.size();
    // Cross-check the reference itself against first principles.
    size_t Expected = 0;
    for (size_t I = 0; I != Kinds.size(); ++I)
      if (Kinds[I] < SyncKindBound) {
        ASSERT_LT(Expected, Want.size());
        EXPECT_EQ(Want[Expected], Base + static_cast<uint32_t>(I));
        ++Expected;
      }
    EXPECT_EQ(Want.size(), Expected);
  }
}

// Threshold extremes: Below=0 selects nothing, a threshold above every
// kind byte selects everything (in order, with the base applied).
TEST(KindScanTest, ThresholdExtremes) {
  std::mt19937 Rng(99);
  std::uniform_int_distribution<int> KindDist(0, 8);
  std::vector<uint8_t> Kinds(333);
  for (uint8_t &K : Kinds)
    K = static_cast<uint8_t>(KindDist(Rng));

  EXPECT_TRUE(dispatchedScan(Kinds, 0, 0).empty());

  auto All = dispatchedScan(Kinds, 9, 1000);
  ASSERT_EQ(All.size(), Kinds.size());
  for (size_t I = 0; I != All.size(); ++I)
    EXPECT_EQ(All[I], 1000 + static_cast<uint32_t>(I));
}

// All-sync and no-sync inputs — the degenerate traces the pipeline also
// exercises end-to-end (StreamPipelineTest).
TEST(KindScanTest, UniformInputs) {
  for (size_t Len : {size_t(1), size_t(15), size_t(16), size_t(17),
                     size_t(256)}) {
    std::vector<uint8_t> Sync(Len, 2);   // Acquire: below the bound.
    std::vector<uint8_t> Invoke(Len, 4); // Invoke: at the bound.
    EXPECT_EQ(dispatchedScan(Sync, SyncKindBound, 0).size(), Len);
    EXPECT_TRUE(dispatchedScan(Invoke, SyncKindBound, 0).empty());
    EXPECT_EQ(dispatchedScan(Sync, SyncKindBound, 0),
              scalarScan(Sync, SyncKindBound, 0));
  }
}

// The scan appends — existing output must survive, and the base lets a
// caller build one global index from per-chunk scans.
TEST(KindScanTest, AppendsAfterExistingPositions) {
  std::vector<uint8_t> ChunkA = {0, 4, 4, 1}; // Syncs at 0, 3.
  std::vector<uint8_t> ChunkB = {4, 3, 4};    // Sync at 1.
  std::vector<uint32_t> Out;
  appendKindPositions(ChunkA.data(), ChunkA.size(), SyncKindBound, 0, Out);
  appendKindPositions(ChunkB.data(), ChunkB.size(), SyncKindBound,
                      static_cast<uint32_t>(ChunkA.size()), Out);
  EXPECT_EQ(Out, (std::vector<uint32_t>{0, 3, 5}));
}

} // namespace
