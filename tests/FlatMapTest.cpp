//===- tests/FlatMapTest.cpp - FlatMap and SpscRing properties ----------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// Property suite for the hot-path support structures: the robin-hood
/// FlatMap (model-checked against std::unordered_map through randomized
/// insert/find/erase interleavings, collision chains, backward-shift
/// erase, rehash behavior) and the bounded SPSC ring that carries shard
/// batches (FIFO order, blocking backpressure, close semantics).
///
//===----------------------------------------------------------------------===//

#include "support/FlatMap.h"
#include "support/SpscRing.h"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

using namespace crd;

namespace {

TEST(FlatMapTest, BasicInsertFindErase) {
  FlatMap<int, std::string> M;
  EXPECT_TRUE(M.empty());
  EXPECT_EQ(M.find(1), nullptr);

  M[1] = "one";
  M[2] = "two";
  EXPECT_EQ(M.size(), 2u);
  ASSERT_NE(M.find(1), nullptr);
  EXPECT_EQ(*M.find(1), "one");
  EXPECT_TRUE(M.contains(2));
  EXPECT_FALSE(M.contains(3));

  auto [Slot, Inserted] = M.tryEmplace(1);
  EXPECT_FALSE(Inserted);
  EXPECT_EQ(*Slot, "one");

  EXPECT_TRUE(M.erase(1));
  EXPECT_FALSE(M.erase(1));
  EXPECT_EQ(M.find(1), nullptr);
  EXPECT_EQ(M.size(), 1u);
}

TEST(FlatMapTest, MatchesUnorderedMapUnderRandomInterleavings) {
  std::mt19937_64 Rng(2014);
  FlatMap<uint32_t, uint64_t> M;
  std::unordered_map<uint32_t, uint64_t> Model;
  for (unsigned Step = 0; Step != 200000; ++Step) {
    uint32_t Key = static_cast<uint32_t>(Rng() % 512);
    switch (Rng() % 4) {
    case 0:
    case 1: { // Insert-or-assign.
      uint64_t V = Rng();
      M[Key] = V;
      Model[Key] = V;
      break;
    }
    case 2: { // Lookup.
      uint64_t *Found = M.find(Key);
      auto It = Model.find(Key);
      ASSERT_EQ(Found != nullptr, It != Model.end()) << "key " << Key;
      if (Found) {
        ASSERT_EQ(*Found, It->second) << "key " << Key;
      }
      break;
    }
    case 3: // Erase.
      ASSERT_EQ(M.erase(Key), Model.erase(Key) != 0) << "key " << Key;
      break;
    }
    ASSERT_EQ(M.size(), Model.size());
  }
  // Full-content check via iteration.
  size_t Visited = 0;
  for (const auto &[K, V] : M) {
    auto It = Model.find(K);
    ASSERT_NE(It, Model.end());
    EXPECT_EQ(V, It->second);
    ++Visited;
  }
  EXPECT_EQ(Visited, Model.size());
}

/// Forces every key into the same home slot, turning the table into one
/// long probe chain — the worst case for displacement and backward shift.
struct CollidingHash {
  size_t operator()(uint32_t) const { return 42; }
};

TEST(FlatMapTest, CollidingKeysStillBehave) {
  FlatMap<uint32_t, uint32_t, CollidingHash> M;
  for (uint32_t K = 0; K != 64; ++K)
    M[K] = K * 10;
  EXPECT_EQ(M.size(), 64u);
  for (uint32_t K = 0; K != 64; ++K) {
    ASSERT_NE(M.find(K), nullptr) << "key " << K;
    EXPECT_EQ(*M.find(K), K * 10);
  }
  // Erase from the middle of the chain: backward shift must keep every
  // remaining key reachable.
  for (uint32_t K = 0; K != 64; K += 2)
    EXPECT_TRUE(M.erase(K));
  for (uint32_t K = 0; K != 64; ++K)
    EXPECT_EQ(M.find(K) != nullptr, K % 2 == 1) << "key " << K;
}

TEST(FlatMapTest, EraseIsTombstoneFree) {
  // Insert/erase cycling at a fixed live size must not grow the table:
  // backward-shift erase leaves no tombstones behind, so the load factor
  // the growth policy sees stays at the live count.
  FlatMap<uint64_t, uint64_t> M;
  for (uint64_t K = 0; K != 8; ++K)
    M[K] = K;
  size_t CapAfterWarmup = M.capacity();
  for (uint64_t Round = 0; Round != 10000; ++Round) {
    uint64_t Key = 8 + Round;
    M[Key] = Round;
    EXPECT_TRUE(M.erase(Key));
  }
  EXPECT_EQ(M.size(), 8u);
  EXPECT_EQ(M.capacity(), CapAfterWarmup)
      << "erase left tombstones that forced growth";
}

TEST(FlatMapTest, RehashPreservesContents) {
  FlatMap<uint32_t, uint32_t> M;
  size_t Rehashes = 0;
  size_t LastCap = M.capacity();
  for (uint32_t K = 0; K != 10000; ++K) {
    M[K] = ~K;
    if (M.capacity() != LastCap) {
      ++Rehashes;
      LastCap = M.capacity();
    }
  }
  EXPECT_GE(Rehashes, 8u); // 16 → ≥4096 takes ≥8 doublings.
  for (uint32_t K = 0; K != 10000; ++K) {
    ASSERT_NE(M.find(K), nullptr) << "key " << K << " lost in rehash";
    EXPECT_EQ(*M.find(K), ~K);
  }
}

TEST(FlatMapTest, ReserveAvoidsRehash) {
  // reserve() pre-sizes so the insertion run never rehashes. (Values may
  // still move slots individually — robin-hood displacement — which is why
  // the engine holds pointer-stable state behind unique_ptr.)
  FlatMap<uint32_t, uint32_t> M;
  M.reserve(1000);
  size_t Cap = M.capacity();
  for (uint32_t K = 0; K != 1000; ++K)
    M[K] = K;
  EXPECT_EQ(M.capacity(), Cap) << "reserve(1000) did not pre-size";
  for (uint32_t K = 0; K != 1000; ++K) {
    ASSERT_NE(M.find(K), nullptr);
    EXPECT_EQ(*M.find(K), K);
  }
}

TEST(FlatMapTest, IteratorSurvivesEraseOfVisitedKeys) {
  // The engine pattern: iterate, then erase what was visited. Collect
  // first (iteration order is unspecified), erase after.
  FlatMap<uint32_t, uint32_t> M;
  for (uint32_t K = 0; K != 100; ++K)
    M[K] = K;
  std::vector<uint32_t> Keys;
  for (const auto &[K, V] : M)
    Keys.push_back(K);
  EXPECT_EQ(Keys.size(), 100u);
  for (uint32_t K : Keys)
    EXPECT_TRUE(M.erase(K));
  EXPECT_TRUE(M.empty());
  EXPECT_EQ(M.begin(), M.end());
}

TEST(FlatMapTest, MoveOnlyValues) {
  FlatMap<uint32_t, std::unique_ptr<uint32_t>> M;
  for (uint32_t K = 0; K != 100; ++K)
    M[K] = std::make_unique<uint32_t>(K);
  EXPECT_EQ(M.size(), 100u);
  for (uint32_t K = 0; K != 100; ++K) {
    ASSERT_NE(M.find(K), nullptr);
    EXPECT_EQ(**M.find(K), K);
  }
  EXPECT_TRUE(M.erase(50));
  EXPECT_EQ(M.find(50), nullptr);
  M.clear();
  EXPECT_TRUE(M.empty());
}

TEST(FlatMapTest, ClearRetainsCapacity) {
  FlatMap<uint32_t, uint32_t> M;
  for (uint32_t K = 0; K != 1000; ++K)
    M[K] = K;
  size_t Cap = M.capacity();
  M.clear();
  EXPECT_TRUE(M.empty());
  EXPECT_EQ(M.capacity(), Cap);
  M[7] = 7;
  EXPECT_EQ(M.size(), 1u);
}

TEST(SpscRingTest, InlinePushPopFifo) {
  SpscRing<int> Ring(4);
  Ring.push(1);
  Ring.push(2);
  Ring.push(3);
  int V = 0;
  EXPECT_TRUE(Ring.pop(V));
  EXPECT_EQ(V, 1);
  EXPECT_TRUE(Ring.tryPop(V));
  EXPECT_EQ(V, 2);
  EXPECT_TRUE(Ring.pop(V));
  EXPECT_EQ(V, 3);
  EXPECT_FALSE(Ring.tryPop(V));
}

TEST(SpscRingTest, CloseWakesAndDrains) {
  SpscRing<int> Ring(4);
  Ring.push(7);
  Ring.close();
  int V = 0;
  EXPECT_TRUE(Ring.pop(V)); // Closed but not drained yet.
  EXPECT_EQ(V, 7);
  EXPECT_FALSE(Ring.pop(V)); // Drained: pop reports end-of-stream.
  EXPECT_TRUE(Ring.closed());
}

TEST(SpscRingTest, CrossThreadTransferWithBackpressure) {
  // Capacity 2 with 10000 items forces the producer to block on a full
  // ring and the consumer on an empty one, exercising both wait paths.
  SpscRing<uint64_t> Ring(2);
  constexpr uint64_t N = 10000;
  std::jthread Producer([&Ring] {
    for (uint64_t I = 0; I != N; ++I)
      Ring.push(uint64_t(I));
    Ring.close();
  });
  uint64_t Expected = 0, V = 0;
  while (Ring.pop(V)) {
    ASSERT_EQ(V, Expected);
    ++Expected;
  }
  EXPECT_EQ(Expected, N);
}

TEST(SpscRingTest, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> Ring(2);
  Ring.push(std::make_unique<int>(5));
  std::unique_ptr<int> P;
  EXPECT_TRUE(Ring.pop(P));
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(*P, 5);
}

} // namespace
