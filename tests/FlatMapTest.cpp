//===- tests/FlatMapTest.cpp - FlatMap and SpscRing properties ----------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// Property suite for the hot-path support structures: the swiss-table
/// FlatMap (model-checked against std::unordered_map through randomized
/// insert/find/erase interleavings, collision chains, tombstone-avoiding
/// erase, rehash behavior, control-byte invariants, group wraparound, and
/// a SIMD-vs-scalar probe differential) and the bounded SPSC ring that
/// carries shard batches (FIFO order, blocking backpressure, close
/// semantics).
///
//===----------------------------------------------------------------------===//

#include "support/FlatMap.h"
#include "support/SpscRing.h"

#include <gtest/gtest.h>

#include <iterator>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

using namespace crd;

namespace {

TEST(FlatMapTest, BasicInsertFindErase) {
  FlatMap<int, std::string> M;
  EXPECT_TRUE(M.empty());
  EXPECT_EQ(M.find(1), nullptr);

  M[1] = "one";
  M[2] = "two";
  EXPECT_EQ(M.size(), 2u);
  ASSERT_NE(M.find(1), nullptr);
  EXPECT_EQ(*M.find(1), "one");
  EXPECT_TRUE(M.contains(2));
  EXPECT_FALSE(M.contains(3));

  auto [Slot, Inserted] = M.tryEmplace(1);
  EXPECT_FALSE(Inserted);
  EXPECT_EQ(*Slot, "one");

  EXPECT_TRUE(M.erase(1));
  EXPECT_FALSE(M.erase(1));
  EXPECT_EQ(M.find(1), nullptr);
  EXPECT_EQ(M.size(), 1u);
}

TEST(FlatMapTest, MatchesUnorderedMapUnderRandomInterleavings) {
  std::mt19937_64 Rng(2014);
  FlatMap<uint32_t, uint64_t> M;
  std::unordered_map<uint32_t, uint64_t> Model;
  for (unsigned Step = 0; Step != 200000; ++Step) {
    uint32_t Key = static_cast<uint32_t>(Rng() % 512);
    switch (Rng() % 4) {
    case 0:
    case 1: { // Insert-or-assign.
      uint64_t V = Rng();
      M[Key] = V;
      Model[Key] = V;
      break;
    }
    case 2: { // Lookup.
      uint64_t *Found = M.find(Key);
      auto It = Model.find(Key);
      ASSERT_EQ(Found != nullptr, It != Model.end()) << "key " << Key;
      if (Found) {
        ASSERT_EQ(*Found, It->second) << "key " << Key;
      }
      break;
    }
    case 3: // Erase.
      ASSERT_EQ(M.erase(Key), Model.erase(Key) != 0) << "key " << Key;
      break;
    }
    ASSERT_EQ(M.size(), Model.size());
  }
  // Full-content check via iteration.
  size_t Visited = 0;
  for (const auto &[K, V] : M) {
    auto It = Model.find(K);
    ASSERT_NE(It, Model.end());
    EXPECT_EQ(V, It->second);
    ++Visited;
  }
  EXPECT_EQ(Visited, Model.size());
}

/// Forces every key into the same home slot AND the same 7-bit control
/// fragment, turning the table into one long probe chain where every
/// group match is a false positive — the worst case for the control-byte
/// filter.
struct CollidingHash {
  size_t operator()(uint32_t) const { return 42; }
};

TEST(FlatMapTest, CollidingKeysStillBehave) {
  FlatMap<uint32_t, uint32_t, CollidingHash> M;
  for (uint32_t K = 0; K != 64; ++K)
    M[K] = K * 10;
  EXPECT_EQ(M.size(), 64u);
  for (uint32_t K = 0; K != 64; ++K) {
    ASSERT_NE(M.find(K), nullptr) << "key " << K;
    EXPECT_EQ(*M.find(K), K * 10);
  }
  // Erase from the middle of the chain: whether a slot becomes a
  // tombstone or re-empties, every remaining key must stay reachable.
  for (uint32_t K = 0; K != 64; K += 2)
    EXPECT_TRUE(M.erase(K));
  for (uint32_t K = 0; K != 64; ++K)
    EXPECT_EQ(M.find(K) != nullptr, K % 2 == 1) << "key " << K;
}

TEST(FlatMapTest, EraseIsTombstoneFree) {
  // Insert/erase cycling at a fixed live size must not grow the table:
  // the "was never full" erase re-empties slots whose probe window still
  // has empties, so churn at moderate load never accretes tombstones and
  // the load factor the growth policy sees stays at the live count.
  FlatMap<uint64_t, uint64_t> M;
  for (uint64_t K = 0; K != 8; ++K)
    M[K] = K;
  size_t CapAfterWarmup = M.capacity();
  for (uint64_t Round = 0; Round != 10000; ++Round) {
    uint64_t Key = 8 + Round;
    M[Key] = Round;
    EXPECT_TRUE(M.erase(Key));
  }
  EXPECT_EQ(M.size(), 8u);
  EXPECT_EQ(M.capacity(), CapAfterWarmup)
      << "erase left tombstones that forced growth";
}

TEST(FlatMapTest, RehashPreservesContents) {
  FlatMap<uint32_t, uint32_t> M;
  size_t Rehashes = 0;
  size_t LastCap = M.capacity();
  for (uint32_t K = 0; K != 10000; ++K) {
    M[K] = ~K;
    if (M.capacity() != LastCap) {
      ++Rehashes;
      LastCap = M.capacity();
    }
  }
  EXPECT_GE(Rehashes, 8u); // 16 → ≥4096 takes ≥8 doublings.
  for (uint32_t K = 0; K != 10000; ++K) {
    ASSERT_NE(M.find(K), nullptr) << "key " << K << " lost in rehash";
    EXPECT_EQ(*M.find(K), ~K);
  }
}

TEST(FlatMapTest, ReserveAvoidsRehash) {
  // reserve() pre-sizes so the insertion run never rehashes. (Entries only
  // move on rehash in the swiss layout, but any unreserved insertion may
  // rehash, which is why the engine holds pointer-stable state behind
  // unique_ptr.)
  FlatMap<uint32_t, uint32_t> M;
  M.reserve(1000);
  size_t Cap = M.capacity();
  for (uint32_t K = 0; K != 1000; ++K)
    M[K] = K;
  EXPECT_EQ(M.capacity(), Cap) << "reserve(1000) did not pre-size";
  for (uint32_t K = 0; K != 1000; ++K) {
    ASSERT_NE(M.find(K), nullptr);
    EXPECT_EQ(*M.find(K), K);
  }
}

TEST(FlatMapTest, IteratorSurvivesEraseOfVisitedKeys) {
  // The engine pattern: iterate, then erase what was visited. Collect
  // first (iteration order is unspecified), erase after.
  FlatMap<uint32_t, uint32_t> M;
  for (uint32_t K = 0; K != 100; ++K)
    M[K] = K;
  std::vector<uint32_t> Keys;
  for (const auto &[K, V] : M)
    Keys.push_back(K);
  EXPECT_EQ(Keys.size(), 100u);
  for (uint32_t K : Keys)
    EXPECT_TRUE(M.erase(K));
  EXPECT_TRUE(M.empty());
  EXPECT_EQ(M.begin(), M.end());
}

TEST(FlatMapTest, MoveOnlyValues) {
  FlatMap<uint32_t, std::unique_ptr<uint32_t>> M;
  for (uint32_t K = 0; K != 100; ++K)
    M[K] = std::make_unique<uint32_t>(K);
  EXPECT_EQ(M.size(), 100u);
  for (uint32_t K = 0; K != 100; ++K) {
    ASSERT_NE(M.find(K), nullptr);
    EXPECT_EQ(**M.find(K), K);
  }
  EXPECT_TRUE(M.erase(50));
  EXPECT_EQ(M.find(50), nullptr);
  M.clear();
  EXPECT_TRUE(M.empty());
}

TEST(FlatMapTest, ClearRetainsCapacity) {
  FlatMap<uint32_t, uint32_t> M;
  for (uint32_t K = 0; K != 1000; ++K)
    M[K] = K;
  size_t Cap = M.capacity();
  M.clear();
  EXPECT_TRUE(M.empty());
  EXPECT_EQ(M.capacity(), Cap);
  M[7] = 7;
  EXPECT_EQ(M.size(), 1u);
}

TEST(FlatMapTest, ControlBytesMatchFragmentsAfterRehash) {
  // Drive the table through every rehash trigger — growth doublings, the
  // in-place tombstone purge, and clear-then-refill — and verify the
  // swiss-table invariants each time: every occupied control byte holds
  // its key's 7-bit fragment, the cloned tail mirrors the head, and every
  // key is reachable through both the SIMD and scalar probe paths.
  FlatMap<uint32_t, uint32_t> M;
  ASSERT_TRUE(M.verifyControlInvariants());
  size_t LastCap = M.capacity();
  for (uint32_t K = 0; K != 5000; ++K) {
    M[K] = K ^ 0xabcd;
    if (M.capacity() != LastCap) {
      LastCap = M.capacity();
      ASSERT_TRUE(M.verifyControlInvariants()) << "after growth to " << LastCap;
    }
  }
  ASSERT_TRUE(M.verifyControlInvariants());
  // Erase most keys, then churn until a tombstone purge rehashes in place.
  for (uint32_t K = 0; K != 5000; ++K) {
    if (K % 8 != 0) {
      ASSERT_TRUE(M.erase(K));
    }
  }
  for (uint32_t K = 5000; K != 30000; ++K) {
    M[K] = K;
    ASSERT_TRUE(M.erase(K));
  }
  EXPECT_TRUE(M.verifyControlInvariants());
  M.clear();
  EXPECT_TRUE(M.verifyControlInvariants());
  M[3] = 9;
  EXPECT_TRUE(M.verifyControlInvariants());
}

/// Identity hash: the key IS the pre-mix hash, so tests can pick keys
/// whose post-mix home slot lands anywhere they like.
struct IdentityHash {
  size_t operator()(uint64_t K) const { return K; }
};

TEST(FlatMapTest, GroupBoundaryWraparoundProbing) {
  // Pin the capacity at 16 (one group covers the whole table) and insert
  // only keys whose home slot is in the last group-width bytes, so every
  // probe window runs off the end of the control array and reads the
  // cloned tail. Finds, erases, and reinserts must all agree across the
  // wraparound.
  FlatMap<uint64_t, uint32_t, IdentityHash> M;
  M.reserve(8);
  ASSERT_EQ(M.capacity(), 16u);
  std::vector<uint64_t> Keys;
  for (uint64_t Seed = 0; Keys.size() != 10; ++Seed)
    if ((hashMix64(Seed) & 15) >= 12) // Home slot in the last 4 bytes.
      Keys.push_back(Seed);
  for (size_t I = 0; I != Keys.size(); ++I)
    M[Keys[I]] = static_cast<uint32_t>(I);
  ASSERT_EQ(M.capacity(), 16u) << "10 keys must fit the 7/8 load of 16";
  ASSERT_TRUE(M.verifyControlInvariants());
  for (size_t I = 0; I != Keys.size(); ++I) {
    ASSERT_NE(M.find(Keys[I]), nullptr) << "key " << Keys[I];
    EXPECT_EQ(*M.find(Keys[I]), I);
    ASSERT_EQ(M.findScalar(Keys[I]), M.find(Keys[I]));
  }
  // Erase every other key across the boundary, then verify the rest are
  // still reachable and the erased ones are not.
  for (size_t I = 0; I < Keys.size(); I += 2)
    EXPECT_TRUE(M.erase(Keys[I]));
  for (size_t I = 0; I != Keys.size(); ++I)
    EXPECT_EQ(M.find(Keys[I]) != nullptr, I % 2 == 1) << "key " << Keys[I];
  EXPECT_TRUE(M.verifyControlInvariants());
  for (size_t I = 0; I < Keys.size(); I += 2)
    M[Keys[I]] = static_cast<uint32_t>(I + 100);
  for (size_t I = 0; I != Keys.size(); ++I)
    ASSERT_NE(M.find(Keys[I]), nullptr) << "key " << Keys[I];
  EXPECT_TRUE(M.verifyControlInvariants());
}

TEST(FlatMapTest, EraseReinsertChurnAtHighLoadFactor) {
  // Hold the table within a few slots of max load and churn erase/insert
  // pairs. At this load most erases must leave tombstones (their probe
  // windows are full), so the churn exercises tombstone reuse on insert
  // and the in-place purge rehash when the growth budget runs out —
  // without the capacity running away.
  FlatMap<uint32_t, uint32_t> M;
  std::unordered_map<uint32_t, uint32_t> Model;
  M.reserve(110);
  ASSERT_EQ(M.capacity(), 128u);
  for (uint32_t K = 0; K != 110; ++K) { // maxLoad(128) = 112.
    M[K] = K;
    Model[K] = K;
  }
  ASSERT_EQ(M.capacity(), 128u);
  std::mt19937_64 Rng(4242);
  for (uint32_t Round = 0; Round != 20000; ++Round) {
    uint32_t Victim = static_cast<uint32_t>(Rng() % Model.size());
    auto It = Model.begin();
    std::advance(It, Victim);
    uint32_t Key = It->first;
    ASSERT_TRUE(M.erase(Key));
    Model.erase(It);
    uint32_t Fresh = 110 + Round;
    M[Fresh] = Fresh;
    Model[Fresh] = Fresh;
    ASSERT_EQ(M.size(), Model.size());
  }
  // Live count never exceeded 110, so growth rehashes at most double once
  // before the purge policy (live*2 <= capacity) takes over.
  EXPECT_LE(M.capacity(), 256u) << "tombstone churn grew the table unboundedly";
  EXPECT_TRUE(M.verifyControlInvariants());
  for (const auto &[K, V] : Model) {
    ASSERT_NE(M.find(K), nullptr) << "key " << K;
    EXPECT_EQ(*M.find(K), V);
  }
}

TEST(FlatMapTest, SimdAndScalarProbePathsAgree) {
  // Differential check: on the same table state, find() (SIMD when the
  // build has SSE2) and findScalar() must return the same slot for hits
  // and the same nullptr for misses — across normal keys, a fully
  // colliding table, and a churned table with tombstones.
  std::mt19937_64 Rng(77);
  FlatMap<uint64_t, uint64_t> M;
  std::vector<uint64_t> Inserted;
  for (unsigned Step = 0; Step != 30000; ++Step) {
    uint64_t K = Rng() % 4096;
    switch (Rng() % 3) {
    case 0:
      M[K] = Step;
      Inserted.push_back(K);
      break;
    case 1:
      M.erase(K);
      break;
    case 2: {
      const uint64_t *Simd = M.find(K);
      ASSERT_EQ(Simd, M.findScalar(K)) << "key " << K;
      break;
    }
    }
  }
  for (uint64_t K = 0; K != 4096; ++K)
    ASSERT_EQ(M.find(K), M.findScalar(K)) << "key " << K;

  FlatMap<uint32_t, uint32_t, CollidingHash> C;
  for (uint32_t K = 0; K != 48; ++K)
    C[K] = K;
  for (uint32_t K = 0; K != 48; K += 3)
    C.erase(K);
  for (uint32_t K = 0; K != 96; ++K)
    ASSERT_EQ(C.find(K), C.findScalar(K)) << "colliding key " << K;
}

TEST(SpscRingTest, InlinePushPopFifo) {
  SpscRing<int> Ring(4);
  Ring.push(1);
  Ring.push(2);
  Ring.push(3);
  int V = 0;
  EXPECT_TRUE(Ring.pop(V));
  EXPECT_EQ(V, 1);
  EXPECT_TRUE(Ring.tryPop(V));
  EXPECT_EQ(V, 2);
  EXPECT_TRUE(Ring.pop(V));
  EXPECT_EQ(V, 3);
  EXPECT_FALSE(Ring.tryPop(V));
}

TEST(SpscRingTest, CloseWakesAndDrains) {
  SpscRing<int> Ring(4);
  Ring.push(7);
  Ring.close();
  int V = 0;
  EXPECT_TRUE(Ring.pop(V)); // Closed but not drained yet.
  EXPECT_EQ(V, 7);
  EXPECT_FALSE(Ring.pop(V)); // Drained: pop reports end-of-stream.
  EXPECT_TRUE(Ring.closed());
}

TEST(SpscRingTest, CrossThreadTransferWithBackpressure) {
  // Capacity 2 with 10000 items forces the producer to block on a full
  // ring and the consumer on an empty one, exercising both wait paths.
  SpscRing<uint64_t> Ring(2);
  constexpr uint64_t N = 10000;
  std::jthread Producer([&Ring] {
    for (uint64_t I = 0; I != N; ++I)
      Ring.push(uint64_t(I));
    Ring.close();
  });
  uint64_t Expected = 0, V = 0;
  while (Ring.pop(V)) {
    ASSERT_EQ(V, Expected);
    ++Expected;
  }
  EXPECT_EQ(Expected, N);
}

TEST(SpscRingTest, TryPopNBatchedDrain) {
  SpscRing<int> Ring(8);
  for (int I = 0; I != 5; ++I)
    Ring.push(int(I));
  int Out[8] = {};
  // A batch smaller than the backlog drains exactly Max, in FIFO order.
  EXPECT_EQ(Ring.tryPopN(Out, 3), 3u);
  EXPECT_EQ(Out[0], 0);
  EXPECT_EQ(Out[1], 1);
  EXPECT_EQ(Out[2], 2);
  // A batch larger than the backlog drains what is there.
  EXPECT_EQ(Ring.tryPopN(Out, 8), 2u);
  EXPECT_EQ(Out[0], 3);
  EXPECT_EQ(Out[1], 4);
  EXPECT_EQ(Ring.tryPopN(Out, 8), 0u);
  // Max = 0 is a no-op even with items queued.
  Ring.push(9);
  EXPECT_EQ(Ring.tryPopN(Out, 0), 0u);
  EXPECT_EQ(Ring.approxSize(), 1u);
}

TEST(SpscRingTest, TryPopNWrapsAroundCapacity) {
  // Drive the indices past the wrap point so one tryPopN spans the
  // physical end of the slot array.
  SpscRing<int> Ring(4);
  int Out[4] = {};
  for (int Round = 0; Round != 8; ++Round) {
    Ring.push(Round * 2);
    Ring.push(Round * 2 + 1);
    EXPECT_EQ(Ring.tryPopN(Out, 4), 2u);
    EXPECT_EQ(Out[0], Round * 2);
    EXPECT_EQ(Out[1], Round * 2 + 1);
  }
}

TEST(SpscRingTest, ApproxSizeExactFromConsumer) {
  SpscRing<int> Ring(8);
  EXPECT_EQ(Ring.approxSize(), 0u);
  for (int I = 0; I != 6; ++I) {
    Ring.push(int(I));
    EXPECT_EQ(Ring.approxSize(), static_cast<size_t>(I + 1));
  }
  int V = 0;
  Ring.pop(V);
  EXPECT_EQ(Ring.approxSize(), 5u);
  Ring.close(); // The ClosedBit must not leak into the size.
  EXPECT_EQ(Ring.approxSize(), 5u);
}

// Differential check: a consumer draining with tryPopN must see exactly
// the sequence a pop()-at-a-time consumer would, under a producer that
// hits the full-ring wait path. Batch sizes vary per round to cover
// partial, exact, and over-sized batches.
TEST(SpscRingTest, TryPopNDifferentialAgainstPop) {
  SpscRing<uint64_t> Ring(4);
  constexpr uint64_t N = 20000;
  std::jthread Producer([&Ring] {
    for (uint64_t I = 0; I != N; ++I)
      Ring.push(uint64_t(I));
    Ring.close();
  });
  uint64_t Expected = 0;
  uint64_t Out[7];
  size_t Batch = 1;
  for (;;) {
    size_t Got = Ring.tryPopN(Out, Batch);
    if (Got == 0) {
      if (Ring.closed() && Ring.approxSize() == 0)
        break;
      continue;
    }
    ASSERT_LE(Got, Batch);
    for (size_t I = 0; I != Got; ++I, ++Expected)
      ASSERT_EQ(Out[I], Expected);
    Batch = Batch % 7 + 1;
  }
  EXPECT_EQ(Expected, N);
}

TEST(SpscRingTest, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> Ring(2);
  Ring.push(std::make_unique<int>(5));
  std::unique_ptr<int> P;
  EXPECT_TRUE(Ring.pop(P));
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(*P, 5);
}

} // namespace
