//===- tests/ParallelDetectorTest.cpp - sequential/parallel equivalence -------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// Equivalence suite for the object-sharded parallel pipeline: on random
/// traces (the PropertyTest generator) and hand-built scenarios, the
/// ParallelDetector must report bit-identical races to the sequential
/// CommutativityRaceDetector at every shard count — same race records in
/// the same order, same conflict-check totals, same distinct-object and
/// active-point counts.
///
//===----------------------------------------------------------------------===//

#include "access/DictionaryRep.h"
#include "detect/CommutativityDetector.h"
#include "detect/ParallelDetector.h"
#include "spec/Builtins.h"
#include "trace/TraceBuilder.h"
#include "translate/Translator.h"
#include "TraceGen.h"

#include <gtest/gtest.h>

using namespace crd;

namespace {

using testgen::randomTrace;

const DictionaryRep &dictRep() {
  static DictionaryRep Rep;
  return Rep;
}

const TranslatedRep &translatedDict() {
  static std::unique_ptr<TranslatedRep> Rep = [] {
    DiagnosticEngine Diags;
    auto R = translateSpec(dictionarySpec(), Diags);
    EXPECT_TRUE(R) << Diags.toString();
    return R;
  }();
  return *Rep;
}

/// Asserts full observable equivalence of the two detectors on \p T.
void expectEquivalent(const Trace &T, const AccessPointProvider &Provider,
                      unsigned Shards) {
  CommutativityRaceDetector Sequential;
  Sequential.setDefaultProvider(&Provider);
  Sequential.processTrace(T);

  ParallelDetector Parallel(Shards);
  Parallel.setDefaultProvider(&Provider);
  Parallel.processTrace(T);

  ASSERT_EQ(Parallel.shards(), Shards);
  ASSERT_EQ(Parallel.races().size(), Sequential.races().size())
      << "shards=" << Shards;
  for (size_t I = 0; I != Sequential.races().size(); ++I)
    EXPECT_EQ(Parallel.races()[I], Sequential.races()[I])
        << "race " << I << " diverges at shards=" << Shards << ":\n  seq "
        << Sequential.races()[I] << "\n  par " << Parallel.races()[I];
  EXPECT_EQ(Parallel.distinctRacyObjects(), Sequential.distinctRacyObjects());
  EXPECT_EQ(Parallel.conflictChecks(), Sequential.conflictChecks());
  EXPECT_EQ(Parallel.activePointCount(), Sequential.activePointCount());
  EXPECT_EQ(Parallel.eventsProcessed(), Sequential.eventsProcessed());
}

class ParallelEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelEquivalenceTest, RandomTracesAllShardCounts) {
  // Maps=4 spreads the actions over four objects so every shard count up
  // to 4 actually distributes work.
  Trace T = randomTrace(GetParam(), /*Workers=*/4, /*OpsPerWorker=*/40,
                        /*Keys=*/4, /*Maps=*/4);
  for (unsigned Shards : {1u, 2u, 4u, 8u}) {
    expectEquivalent(T, dictRep(), Shards);
    expectEquivalent(T, translatedDict(), Shards);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelEquivalenceTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

TEST(ParallelDetectorTest, Fig3ScenarioMatchesSequential) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .fork(0, 2)
                .invoke(2, 1, "put", {Value::string("a.com"), Value::integer(10)},
                        Value::nil())
                .invoke(1, 1, "put", {Value::string("a.com"), Value::integer(20)},
                        Value::integer(10))
                .join(0, 1)
                .join(0, 2)
                .invoke(0, 1, "size", {}, Value::integer(1))
                .take();
  for (unsigned Shards : {1u, 2u, 4u})
    expectEquivalent(T, dictRep(), Shards);
}

TEST(ParallelDetectorTest, ManyObjectsSpreadAcrossShards) {
  // 64 objects, one concurrent put pair each: every object races once, and
  // the races must come back ordered by event index regardless of which
  // shard found them.
  TraceBuilder TB;
  TB.fork(0, 1);
  const unsigned Objects = 64;
  for (unsigned O = 0; O != Objects; ++O) {
    TB.invoke(0, O, "put", {Value::integer(1), Value::integer(1)},
              Value::nil());
    TB.invoke(1, O, "put", {Value::integer(1), Value::integer(2)},
              Value::integer(1));
  }
  Trace T = TB.take();
  for (unsigned Shards : {1u, 2u, 4u, 8u})
    expectEquivalent(T, dictRep(), Shards);

  ParallelDetector Parallel(4);
  Parallel.setDefaultProvider(&dictRep());
  Parallel.processTrace(T);
  EXPECT_EQ(Parallel.races().size(), Objects);
  EXPECT_EQ(Parallel.distinctRacyObjects(), Objects);
  for (size_t I = 1; I != Parallel.races().size(); ++I)
    EXPECT_LT(Parallel.races()[I - 1].EventIndex,
              Parallel.races()[I].EventIndex);
}

TEST(ParallelDetectorTest, PerObjectBindingsAreHonored) {
  ParallelDetector Parallel(4);
  Parallel.bind(ObjectId(0), &dictRep());
  Parallel.bind(ObjectId(1), &translatedDict());
  Trace T = TraceBuilder()
                .fork(0, 1)
                .invoke(0, 0, "put", {Value::integer(1), Value::integer(1)},
                        Value::nil())
                .invoke(1, 0, "put", {Value::integer(1), Value::integer(2)},
                        Value::integer(1))
                .invoke(0, 1, "put", {Value::integer(1), Value::integer(1)},
                        Value::nil())
                .invoke(1, 1, "put", {Value::integer(1), Value::integer(2)},
                        Value::integer(1))
                .take();
  Parallel.processTrace(T);
  EXPECT_EQ(Parallel.races().size(), 2u);
  EXPECT_EQ(Parallel.distinctRacyObjects(), 2u);
}

TEST(ParallelDetectorTest, IncrementalTraceFeedingAccumulates) {
  // Splitting a trace into two processTrace calls must behave like one
  // call: carried-over per-object state still races against later events.
  TraceBuilder TB1, TB2;
  TB1.fork(0, 1);
  TB1.invoke(0, 0, "put", {Value::integer(1), Value::integer(1)},
             Value::nil());
  TB2.invoke(1, 0, "put", {Value::integer(1), Value::integer(2)},
             Value::integer(1));

  ParallelDetector Parallel(2);
  Parallel.setDefaultProvider(&dictRep());
  Parallel.processTrace(TB1.take());
  EXPECT_TRUE(Parallel.races().empty());
  Parallel.processTrace(TB2.take());
  ASSERT_EQ(Parallel.races().size(), 1u);
  EXPECT_EQ(Parallel.races()[0].EventIndex, 2u); // Global event numbering.
  EXPECT_EQ(Parallel.eventsProcessed(), 3u);
}

TEST(ParallelDetectorTest, ObjectDiedReclaimsShardState) {
  ParallelDetector Parallel(4);
  Parallel.setDefaultProvider(&dictRep());
  TraceBuilder TB;
  TB.fork(0, 1);
  for (unsigned O = 0; O != 8; ++O)
    TB.invoke(0, O, "put", {Value::integer(1), Value::integer(1)},
              Value::nil());
  Parallel.processTrace(TB.take());
  size_t Before = Parallel.activePointCount();
  EXPECT_GE(Before, 8u);
  for (unsigned O = 0; O != 8; O += 2)
    Parallel.objectDied(ObjectId(O));
  EXPECT_LE(Parallel.activePointCount(), Before / 2);
  // A concurrent access to a dead object afterwards reports nothing.
  Parallel.processTrace(
      TraceBuilder()
          .invoke(1, 0, "put", {Value::integer(1), Value::integer(2)},
                  Value::integer(1))
          .take());
  EXPECT_TRUE(Parallel.races().empty());
}

TEST(ParallelDetectorTest, MoreShardsThanObjectsIsFine) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .invoke(0, 0, "put", {Value::integer(1), Value::integer(1)},
                        Value::nil())
                .invoke(1, 0, "put", {Value::integer(1), Value::integer(2)},
                        Value::integer(1))
                .take();
  expectEquivalent(T, dictRep(), 16);
}

TEST(ParallelDetectorTest, EmptyAndActionFreeTraces) {
  ParallelDetector Parallel(4);
  Parallel.setDefaultProvider(&dictRep());
  Parallel.processTrace(Trace());
  EXPECT_TRUE(Parallel.races().empty());
  Parallel.processTrace(TraceBuilder().fork(0, 1).join(0, 1).take());
  EXPECT_TRUE(Parallel.races().empty());
  EXPECT_EQ(Parallel.eventsProcessed(), 2u);
  EXPECT_EQ(Parallel.activePointCount(), 0u);
}

} // namespace
