//===- tests/ParallelDetectorTest.cpp - sequential/parallel equivalence -------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// Equivalence suite for the object-sharded parallel pipeline: on random
/// traces (the PropertyTest generator) and hand-built scenarios, the
/// ParallelDetector must report bit-identical races to the sequential
/// CommutativityRaceDetector at every shard count — same race records in
/// the same order, same conflict-check totals, same distinct-object and
/// active-point counts.
///
//===----------------------------------------------------------------------===//

#include "access/DictionaryRep.h"
#include "detect/CommutativityDetector.h"
#include "detect/ParallelDetector.h"
#include "spec/Builtins.h"
#include "trace/TraceBuilder.h"
#include "translate/Translator.h"
#include "TraceGen.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace crd;

namespace {

using testgen::randomTrace;

const DictionaryRep &dictRep() {
  static DictionaryRep Rep;
  return Rep;
}

const TranslatedRep &translatedDict() {
  static std::unique_ptr<TranslatedRep> Rep = [] {
    DiagnosticEngine Diags;
    auto R = translateSpec(dictionarySpec(), Diags);
    EXPECT_TRUE(R) << Diags.toString();
    return R;
  }();
  return *Rep;
}

/// Asserts the parallel detector's observable state matches \p Sequential.
void expectMatchesSequential(const CommutativityRaceDetector &Sequential,
                             ParallelDetector &Parallel, unsigned Shards) {
  ASSERT_EQ(Parallel.shards(), Shards);
  ASSERT_EQ(Parallel.races().size(), Sequential.races().size())
      << "shards=" << Shards << " batch=" << Parallel.batchSize();
  for (size_t I = 0; I != Sequential.races().size(); ++I)
    EXPECT_EQ(Parallel.races()[I], Sequential.races()[I])
        << "race " << I << " diverges at shards=" << Shards
        << " batch=" << Parallel.batchSize() << ":\n  seq "
        << Sequential.races()[I] << "\n  par " << Parallel.races()[I];
  EXPECT_EQ(Parallel.distinctRacyObjects(), Sequential.distinctRacyObjects());
  EXPECT_EQ(Parallel.conflictChecks(), Sequential.conflictChecks());
  EXPECT_EQ(Parallel.activePointCount(), Sequential.activePointCount());
  EXPECT_EQ(Parallel.eventsProcessed(), Sequential.eventsProcessed());
}

/// Asserts full observable equivalence of the two detectors on \p T.
void expectEquivalent(const Trace &T, const AccessPointProvider &Provider,
                      unsigned Shards,
                      size_t Batch = ParallelDetector::DefaultBatchSize) {
  CommutativityRaceDetector Sequential;
  Sequential.setDefaultProvider(&Provider);
  Sequential.processTrace(T);

  ParallelDetector Parallel(Shards, Batch);
  Parallel.setDefaultProvider(&Provider);
  Parallel.processTrace(T);
  expectMatchesSequential(Sequential, Parallel, Shards);

  // The streaming feed (event-at-a-time, payloads copied into the
  // pipeline) must be indistinguishable from whole-trace processing.
  ParallelDetector Streaming(Shards, Batch);
  Streaming.setDefaultProvider(&Provider);
  for (const Event &E : T)
    Streaming.processEvent(E);
  Streaming.flush();
  expectMatchesSequential(Sequential, Streaming, Shards);
}

class ParallelEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelEquivalenceTest, RandomTracesAllShardCounts) {
  // Maps=4 spreads the actions over four objects so every shard count up
  // to 4 actually distributes work.
  Trace T = randomTrace(GetParam(), /*Workers=*/4, /*OpsPerWorker=*/40,
                        /*Keys=*/4, /*Maps=*/4);
  for (unsigned Shards : {1u, 2u, 4u, 8u}) {
    expectEquivalent(T, dictRep(), Shards);
    expectEquivalent(T, translatedDict(), Shards);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelEquivalenceTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

TEST(ParallelDetectorTest, Fig3ScenarioMatchesSequential) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .fork(0, 2)
                .invoke(2, 1, "put", {Value::string("a.com"), Value::integer(10)},
                        Value::nil())
                .invoke(1, 1, "put", {Value::string("a.com"), Value::integer(20)},
                        Value::integer(10))
                .join(0, 1)
                .join(0, 2)
                .invoke(0, 1, "size", {}, Value::integer(1))
                .take();
  for (unsigned Shards : {1u, 2u, 4u})
    expectEquivalent(T, dictRep(), Shards);
}

TEST(ParallelDetectorTest, ManyObjectsSpreadAcrossShards) {
  // 64 objects, one concurrent put pair each: every object races once, and
  // the races must come back ordered by event index regardless of which
  // shard found them.
  TraceBuilder TB;
  TB.fork(0, 1);
  const unsigned Objects = 64;
  for (unsigned O = 0; O != Objects; ++O) {
    TB.invoke(0, O, "put", {Value::integer(1), Value::integer(1)},
              Value::nil());
    TB.invoke(1, O, "put", {Value::integer(1), Value::integer(2)},
              Value::integer(1));
  }
  Trace T = TB.take();
  for (unsigned Shards : {1u, 2u, 4u, 8u})
    expectEquivalent(T, dictRep(), Shards);

  ParallelDetector Parallel(4);
  Parallel.setDefaultProvider(&dictRep());
  Parallel.processTrace(T);
  EXPECT_EQ(Parallel.races().size(), Objects);
  EXPECT_EQ(Parallel.distinctRacyObjects(), Objects);
  for (size_t I = 1; I != Parallel.races().size(); ++I)
    EXPECT_LT(Parallel.races()[I - 1].EventIndex,
              Parallel.races()[I].EventIndex);
}

TEST(ParallelDetectorTest, PerObjectBindingsAreHonored) {
  ParallelDetector Parallel(4);
  Parallel.bind(ObjectId(0), &dictRep());
  Parallel.bind(ObjectId(1), &translatedDict());
  Trace T = TraceBuilder()
                .fork(0, 1)
                .invoke(0, 0, "put", {Value::integer(1), Value::integer(1)},
                        Value::nil())
                .invoke(1, 0, "put", {Value::integer(1), Value::integer(2)},
                        Value::integer(1))
                .invoke(0, 1, "put", {Value::integer(1), Value::integer(1)},
                        Value::nil())
                .invoke(1, 1, "put", {Value::integer(1), Value::integer(2)},
                        Value::integer(1))
                .take();
  Parallel.processTrace(T);
  EXPECT_EQ(Parallel.races().size(), 2u);
  EXPECT_EQ(Parallel.distinctRacyObjects(), 2u);
}

TEST(ParallelDetectorTest, IncrementalTraceFeedingAccumulates) {
  // Splitting a trace into two processTrace calls must behave like one
  // call: carried-over per-object state still races against later events.
  TraceBuilder TB1, TB2;
  TB1.fork(0, 1);
  TB1.invoke(0, 0, "put", {Value::integer(1), Value::integer(1)},
             Value::nil());
  TB2.invoke(1, 0, "put", {Value::integer(1), Value::integer(2)},
             Value::integer(1));

  ParallelDetector Parallel(2);
  Parallel.setDefaultProvider(&dictRep());
  Parallel.processTrace(TB1.take());
  EXPECT_TRUE(Parallel.races().empty());
  Parallel.processTrace(TB2.take());
  ASSERT_EQ(Parallel.races().size(), 1u);
  EXPECT_EQ(Parallel.races()[0].EventIndex, 2u); // Global event numbering.
  EXPECT_EQ(Parallel.eventsProcessed(), 3u);
}

TEST(ParallelDetectorTest, ObjectDiedReclaimsShardState) {
  ParallelDetector Parallel(4);
  Parallel.setDefaultProvider(&dictRep());
  TraceBuilder TB;
  TB.fork(0, 1);
  for (unsigned O = 0; O != 8; ++O)
    TB.invoke(0, O, "put", {Value::integer(1), Value::integer(1)},
              Value::nil());
  Parallel.processTrace(TB.take());
  size_t Before = Parallel.activePointCount();
  EXPECT_GE(Before, 8u);
  for (unsigned O = 0; O != 8; O += 2)
    Parallel.objectDied(ObjectId(O));
  EXPECT_LE(Parallel.activePointCount(), Before / 2);
  // A concurrent access to a dead object afterwards reports nothing.
  Parallel.processTrace(
      TraceBuilder()
          .invoke(1, 0, "put", {Value::integer(1), Value::integer(2)},
                  Value::integer(1))
          .take());
  EXPECT_TRUE(Parallel.races().empty());
}

TEST(ParallelDetectorTest, TinyBatchesMatchSequentialAllShardCounts) {
  // Batch size 1 dispatches every action immediately; odd sizes leave
  // partial batches for flush() to sweep. All must stay bit-identical.
  Trace T = randomTrace(/*Seed=*/7, /*Workers=*/4, /*OpsPerWorker=*/40,
                        /*Keys=*/4, /*Maps=*/4);
  for (unsigned Shards : {1u, 2u, 4u})
    for (size_t Batch : {size_t(1), size_t(3), size_t(17), size_t(4096)})
      expectEquivalent(T, dictRep(), Shards, Batch);
}

TEST(ParallelDetectorTest, StridedObjectIdsSpreadAcrossShards) {
  // Object ids 0, 4, 8, ... — with raw modulo sharding all of them land on
  // shard 0 of 4; the mixed shard hash must keep the load spread out.
  constexpr unsigned Objects = 64;
  TraceBuilder TB;
  TB.fork(0, 1);
  for (unsigned O = 0; O != Objects; ++O)
    TB.invoke(0, O * 4, "put", {Value::integer(1), Value::integer(1)},
              Value::nil());
  Trace T = TB.take();
  expectEquivalent(T, dictRep(), 4);

  ParallelDetector Parallel(4);
  Parallel.setDefaultProvider(&dictRep());
  Parallel.processTrace(T);
  std::vector<size_t> Loads = Parallel.shardLoads();
  ASSERT_EQ(Loads.size(), 4u);
  size_t Total = 0, Max = 0, NonEmpty = 0;
  for (size_t L : Loads) {
    Total += L;
    Max = std::max(Max, L);
    NonEmpty += L != 0;
  }
  EXPECT_EQ(Total, size_t(Objects));
  EXPECT_LT(Max, Total) << "all strided objects landed on one shard";
  EXPECT_GE(NonEmpty, 3u) << "strided ids use too few shards";
}

TEST(ParallelDetectorTest, ObjectDiedMidStreamDrainsInFlightEvents) {
  // objectDied between streamed events must land *after* every earlier
  // event on the object (they may still be queued in the shard pipeline)
  // and reclaim the state before later events arrive.
  ParallelDetector Parallel(4, /*BatchSize=*/2);
  Parallel.setDefaultProvider(&dictRep());
  Trace Prefix = TraceBuilder()
                     .fork(0, 1)
                     .invoke(0, 0, "put",
                             {Value::integer(1), Value::integer(1)},
                             Value::nil())
                     .take();
  for (const Event &E : Prefix)
    Parallel.processEvent(E);
  Parallel.objectDied(ObjectId(0));
  // The concurrent partner arrives after the death: no prior state, no race.
  Trace Suffix = TraceBuilder()
                     .invoke(1, 0, "put",
                             {Value::integer(1), Value::integer(2)},
                             Value::integer(1))
                     .take();
  for (const Event &E : Suffix)
    Parallel.processEvent(E);
  Parallel.flush();
  EXPECT_TRUE(Parallel.races().empty());
  EXPECT_EQ(Parallel.eventsProcessed(), 3u);
}

TEST(ParallelDetectorTest, CrossCallCarryOverAllBatchAndShardCombos) {
  // Splitting one trace into per-call chunks must be invisible: carried
  // per-object state races against later chunks, with global numbering,
  // at every shard × batch combination.
  Trace Whole = randomTrace(/*Seed=*/21, /*Workers=*/4, /*OpsPerWorker=*/30,
                            /*Keys=*/4, /*Maps=*/4);
  CommutativityRaceDetector Sequential;
  Sequential.setDefaultProvider(&dictRep());
  Sequential.processTrace(Whole);

  for (unsigned Shards : {1u, 2u, 4u})
    for (size_t Batch : {size_t(1), size_t(5), size_t(64), size_t(4096)}) {
      ParallelDetector Parallel(Shards, Batch);
      Parallel.setDefaultProvider(&dictRep());
      constexpr size_t Chunk = 37;
      for (size_t Begin = 0; Begin < Whole.size(); Begin += Chunk) {
        Trace Part;
        for (size_t I = Begin; I != std::min(Begin + Chunk, Whole.size());
             ++I)
          Part.append(Whole[I]);
        Parallel.processTrace(Part);
      }
      expectMatchesSequential(Sequential, Parallel, Shards);
    }
}

TEST(ParallelDetectorTest, MoreShardsThanObjectsIsFine) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .invoke(0, 0, "put", {Value::integer(1), Value::integer(1)},
                        Value::nil())
                .invoke(1, 0, "put", {Value::integer(1), Value::integer(2)},
                        Value::integer(1))
                .take();
  expectEquivalent(T, dictRep(), 16);
}

TEST(ParallelDetectorTest, EmptyAndActionFreeTraces) {
  ParallelDetector Parallel(4);
  Parallel.setDefaultProvider(&dictRep());
  Parallel.processTrace(Trace());
  EXPECT_TRUE(Parallel.races().empty());
  Parallel.processTrace(TraceBuilder().fork(0, 1).join(0, 1).take());
  EXPECT_TRUE(Parallel.races().empty());
  EXPECT_EQ(Parallel.eventsProcessed(), 2u);
  EXPECT_EQ(Parallel.activePointCount(), 0u);
}

} // namespace
