//===- tests/SpecParserTest.cpp - ECL spec language parser tests --------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "spec/Builtins.h"
#include "spec/Fragment.h"
#include "spec/SpecParser.h"
#include "translate/Translator.h"

#include <gtest/gtest.h>

using namespace crd;

namespace {

const char *DictionarySource = R"(
// Fig 6 of the paper.
object dictionary {
  method put(k, v) / p;
  method get(k) / v;
  method size() / r;

  commute put(k1, v1)/p1, put(k2, v2)/p2 :
      k1 != k2 || (v1 == p1 && v2 == p2);
  commute put(k1, v1)/p1, get(k2)/v2 : k1 != k2 || v1 == p1;
  commute put(k1, v1)/p1, size()/r :
      (v1 == nil && p1 == nil) || (v1 != nil && p1 != nil);
  commute get(k1)/v1, get(k2)/v2 : true;
  commute get(k1)/v1, size()/r : true;
  commute size()/r1, size()/r2 : true;
}
)";

ObjectSpec parseOk(std::string_view Text) {
  DiagnosticEngine Diags;
  auto Spec = parseObjectSpec(Text, Diags);
  EXPECT_TRUE(Spec) << Diags.toString();
  return Spec ? std::move(*Spec) : ObjectSpec("parse-failed");
}

void expectParseError(std::string_view Text, std::string_view Needle) {
  DiagnosticEngine Diags;
  auto Spec = parseObjectSpec(Text, Diags);
  EXPECT_FALSE(Spec) << "input unexpectedly parsed";
  EXPECT_NE(Diags.toString().find(Needle), std::string::npos)
      << "diagnostics were:\n"
      << Diags.toString();
}

} // namespace

TEST(SpecParserTest, ParsesFig6Dictionary) {
  ObjectSpec Spec = parseOk(DictionarySource);
  EXPECT_EQ(Spec.name(), "dictionary");
  ASSERT_EQ(Spec.numMethods(), 3u);
  EXPECT_EQ(Spec.method(0).Name, symbol("put"));
  EXPECT_EQ(Spec.method(0).NumArgs, 2u);
  EXPECT_EQ(Spec.method(0).NumRets, 1u);
  DiagnosticEngine Diags;
  EXPECT_TRUE(Spec.validate(Diags)) << Diags.toString();
}

TEST(SpecParserTest, ParsedDictionaryMatchesBuiltin) {
  ObjectSpec Parsed = parseOk(DictionarySource);
  const ObjectSpec &Builtin = dictionarySpec();
  // Every pair formula must be propositionally identical to the builtin.
  for (uint32_t I = 0; I != 3; ++I)
    for (uint32_t J = I; J != 3; ++J) {
      FormulaPtr A = Parsed.commutesFormula(I, J);
      FormulaPtr B = Builtin.commutesFormula(I, J);
      ASSERT_TRUE(A && B) << I << "," << J;
      EXPECT_EQ(equivalentUnderBooleanAbstraction(*A, *B),
                std::optional(true))
          << "pair (" << I << "," << J << "): " << A->toString() << " vs "
          << B->toString();
    }
}

TEST(SpecParserTest, UnderscoreBindsNothing) {
  ObjectSpec Spec = parseOk(R"(
    object counter {
      method inc();
      method read() / v;
      commute inc(), inc() : true;
      commute inc(), read()/_ : false;
      commute read()/_, read()/_ : true;
    }
  )");
  EXPECT_EQ(Spec.numMethods(), 2u);
  Action Inc(ObjectId(0), symbol("inc"), {}, std::vector<Value>{});
  Action Read(ObjectId(0), symbol("read"), {}, Value::integer(0));
  EXPECT_TRUE(Spec.commute(Inc, Inc));
  EXPECT_FALSE(Spec.commute(Inc, Read));
}

TEST(SpecParserTest, ParsesAllLiteralKindsAndOperators) {
  ObjectSpec Spec = parseOk(R"(
    object mixed {
      method m(a, b) / r;
      commute m(a1, b1)/r1, m(a2, b2)/r2 :
        a1 != a2 || (b1 >= 0 && b2 >= 0 && !(r1 == "err") && r2 != false
                     && b1 <= 100 && b2 < 100 && b1 > -5);
    }
  )");
  FormulaPtr F = Spec.commutesFormula(0, 0);
  ASSERT_TRUE(F);
  EXPECT_TRUE(isECL(*F));
}

TEST(SpecParserTest, MultipleObjects) {
  DiagnosticEngine Diags;
  auto Specs = parseSpecs(R"(
    object a { method m(); commute m(), m() : true; }
    object b { method n() / r; commute n()/_, n()/_ : true; }
  )",
                          Diags);
  ASSERT_TRUE(Specs) << Diags.toString();
  ASSERT_EQ(Specs->size(), 2u);
  EXPECT_EQ((*Specs)[0].name(), "a");
  EXPECT_EQ((*Specs)[1].name(), "b");
}

TEST(SpecParserTest, HashAndSlashSlashComments) {
  parseOk("# hash comment\n"
          "object c { // slash comment\n"
          "  method m();\n"
          "  commute m(), m() : true; # trailing\n"
          "}\n");
}

TEST(SpecParserTest, CommuteDefaultClause) {
  ObjectSpec Spec = parseOk(R"(
    object sparse {
      method a();
      method b();
      method observe() / v;
      commute default : true;
      commute a(), observe()/_ : false;
      commute b(), observe()/_ : false;
    }
  )");
  ASSERT_EQ(Spec.defaultCommutes(), std::optional(true));

  Action A(ObjectId(0), symbol("a"), {}, std::vector<Value>{});
  Action B(ObjectId(0), symbol("b"), {}, std::vector<Value>{});
  Action Obs(ObjectId(0), symbol("observe"), {}, Value::integer(0));
  EXPECT_TRUE(Spec.commute(A, B));    // Falls back to the default.
  EXPECT_TRUE(Spec.commute(A, A));    // Also unspecified.
  EXPECT_FALSE(Spec.commute(A, Obs)); // Explicit clause wins.

  // With a default set, validate() emits no missing-pair warnings.
  DiagnosticEngine Diags;
  EXPECT_TRUE(Spec.validate(Diags));
  EXPECT_TRUE(Diags.empty()) << Diags.toString();

  // The translator honors the default too.
  DiagnosticEngine TransDiags;
  auto Rep = translateSpec(Spec, TransDiags);
  ASSERT_TRUE(Rep) << TransDiags.toString();
  EXPECT_FALSE(actionsConflict(*Rep, A, B));
  EXPECT_TRUE(actionsConflict(*Rep, A, Obs));
}

TEST(SpecParserTest, CommuteDefaultFalseMatchesImplicitBehavior) {
  ObjectSpec Spec = parseOk(R"(
    object d {
      method a();
      method b();
      commute default : false;
      commute a(), a() : true;
      commute b(), b() : true;
    }
  )");
  Action A(ObjectId(0), symbol("a"), {}, std::vector<Value>{});
  Action B(ObjectId(0), symbol("b"), {}, std::vector<Value>{});
  EXPECT_FALSE(Spec.commute(A, B));
  EXPECT_TRUE(Spec.commute(A, A));
}

TEST(SpecParserErrorTest, DuplicateDefault) {
  expectParseError(R"(
    object d {
      method m();
      commute default : true;
      commute default : false;
    }
  )",
                   "specified twice");
}

TEST(SpecParserErrorTest, DefaultNeedsBooleanConstant) {
  expectParseError(R"(
    object d {
      method m(a);
      commute default : 42;
    }
  )",
                   "expected 'true' or 'false'");
}

//===----------------------------------------------------------------------===//
// Error reporting
//===----------------------------------------------------------------------===//

TEST(SpecParserErrorTest, UnknownVariable) {
  expectParseError(R"(
    object d {
      method put(k, v) / p;
      commute put(k1, v1)/p1, put(k2, v2)/p2 : k1 != kX;
    }
  )",
                   "unknown variable 'kX'");
}

TEST(SpecParserErrorTest, DuplicateVariable) {
  expectParseError(R"(
    object d {
      method put(k, v) / p;
      commute put(k1, v1)/p1, put(k1, v2)/p2 : true;
    }
  )",
                   "bound twice");
}

TEST(SpecParserErrorTest, UnknownMethodInCommute) {
  expectParseError(R"(
    object d {
      method put(k, v) / p;
      commute remove(k1)/r1, put(k2, v2)/p2 : true;
    }
  )",
                   "unknown method 'remove'");
}

TEST(SpecParserErrorTest, ArityMismatch) {
  expectParseError(R"(
    object d {
      method put(k, v) / p;
      commute put(k1)/p1, put(k2, v2)/p2 : true;
    }
  )",
                   "takes 2 argument(s)");
}

TEST(SpecParserErrorTest, ReturnArityMismatch) {
  expectParseError(R"(
    object d {
      method put(k, v) / p;
      commute put(k1, v1), put(k2, v2)/p2 : true;
    }
  )",
                   "has 1 return value(s)");
}

TEST(SpecParserErrorTest, DuplicateMethod) {
  expectParseError("object d { method m(); method m(); }",
                   "declared twice");
}

TEST(SpecParserErrorTest, DuplicateCommuteClause) {
  expectParseError(R"(
    object d {
      method m();
      commute m(), m() : true;
      commute m(), m() : false;
    }
  )",
                   "specified twice");
}

TEST(SpecParserErrorTest, SingleAmpersand) {
  expectParseError(R"(
    object d {
      method m(a);
      commute m(a1), m(a2) : a1 != a2 & true;
    }
  )",
                   "expected '&&'");
}

TEST(SpecParserErrorTest, AssignmentInsteadOfComparison) {
  expectParseError(R"(
    object d {
      method m(a);
      commute m(a1), m(a2) : a1 = a2;
    }
  )",
                   "no assignment");
}

TEST(SpecParserErrorTest, MissingSemicolonAfterCommute) {
  expectParseError(R"(
    object d {
      method m(a);
      commute m(a1), m(a2) : a1 != a2
    }
  )",
                   "expected ';'");
}

TEST(SpecParserErrorTest, BareTermIsNotAFormula) {
  expectParseError(R"(
    object d {
      method m(a);
      commute m(a1), m(a2) : a1;
    }
  )",
                   "expected comparison operator");
}

TEST(SpecParserErrorTest, LocationsPointAtTheProblem) {
  DiagnosticEngine Diags;
  parseObjectSpec("object d {\n"
                  "  method m(a);\n"
                  "  commute m(a1), m(a2) : a1 != aX;\n"
                  "}\n",
                  Diags);
  ASSERT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.all().front().Loc.Line, 3u);
}

TEST(SpecParserErrorTest, MultipleObjectsRejectedBySingleObjectWrapper) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseObjectSpec(
      "object a { method m(); commute m(), m() : true; } object b {}", Diags));
}
