//===- tests/SpecFilesTest.cpp - on-disk spec and trace file tests ------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// Validates the shipped specs/*.spec and traces/*.trace files: every spec
/// parses, validates, matches its builtin counterpart, and translates;
/// every trace parses, validates and produces the documented analysis
/// result. The repo root is passed in via the CRD_REPO_DIR compile
/// definition.
///
//===----------------------------------------------------------------------===//

#include "detect/AtomicityChecker.h"
#include "detect/CommutativityDetector.h"
#include "detect/FastTrack.h"
#include "spec/Builtins.h"
#include "spec/Fragment.h"
#include "spec/SpecParser.h"
#include "trace/TraceIO.h"
#include "translate/Translator.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace crd;

namespace {

std::string readFileOrDie(const std::string &RelPath) {
  std::string Path = std::string(CRD_REPO_DIR) + "/" + RelPath;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

ObjectSpec parseSpecFile(const std::string &RelPath) {
  DiagnosticEngine Diags;
  auto Spec = parseObjectSpec(readFileOrDie(RelPath), Diags);
  EXPECT_TRUE(Spec) << RelPath << ":\n" << Diags.toString();
  return Spec ? std::move(*Spec) : ObjectSpec("parse-failed");
}

void expectSpecMatchesBuiltin(const ObjectSpec &Parsed,
                              const ObjectSpec &Builtin) {
  ASSERT_EQ(Parsed.numMethods(), Builtin.numMethods());
  for (uint32_t I = 0; I != Parsed.numMethods(); ++I)
    for (uint32_t J = I; J != Parsed.numMethods(); ++J) {
      FormulaPtr A = Parsed.commutesFormula(I, J);
      FormulaPtr B = Builtin.commutesFormula(I, J);
      ASSERT_TRUE(A && B);
      EXPECT_EQ(equivalentUnderBooleanAbstraction(*A, *B),
                std::optional(true))
          << Builtin.name() << " pair (" << I << ", " << J << ")";
    }
}

} // namespace

TEST(SpecFilesTest, DictionarySpecFile) {
  ObjectSpec Spec = parseSpecFile("specs/dictionary.spec");
  DiagnosticEngine Diags;
  EXPECT_TRUE(Spec.validate(Diags)) << Diags.toString();
  expectSpecMatchesBuiltin(Spec, dictionarySpec());
  EXPECT_TRUE(translateSpec(Spec, Diags)) << Diags.toString();
}

TEST(SpecFilesTest, SetSpecFile) {
  ObjectSpec Spec = parseSpecFile("specs/set.spec");
  DiagnosticEngine Diags;
  EXPECT_TRUE(Spec.validate(Diags)) << Diags.toString();
  expectSpecMatchesBuiltin(Spec, setSpec());
  EXPECT_TRUE(translateSpec(Spec, Diags)) << Diags.toString();
}

TEST(SpecFilesTest, CounterSpecFile) {
  ObjectSpec Spec = parseSpecFile("specs/counter.spec");
  DiagnosticEngine Diags;
  EXPECT_TRUE(Spec.validate(Diags)) << Diags.toString();
  expectSpecMatchesBuiltin(Spec, counterSpec());
  EXPECT_TRUE(translateSpec(Spec, Diags)) << Diags.toString();
}

TEST(SpecFilesTest, RegisterSpecFile) {
  ObjectSpec Spec = parseSpecFile("specs/register.spec");
  DiagnosticEngine Diags;
  EXPECT_TRUE(Spec.validate(Diags)) << Diags.toString();
  expectSpecMatchesBuiltin(Spec, registerSpec());
  EXPECT_TRUE(translateSpec(Spec, Diags)) << Diags.toString();
}

TEST(SpecFilesTest, QueueSpecFile) {
  ObjectSpec Spec = parseSpecFile("specs/queue.spec");
  DiagnosticEngine Diags;
  EXPECT_TRUE(Spec.validate(Diags)) << Diags.toString();
  expectSpecMatchesBuiltin(Spec, queueSpec());
  EXPECT_TRUE(translateSpec(Spec, Diags)) << Diags.toString();
}

TEST(TraceFilesTest, Fig3TraceHasThePutPutRace) {
  DiagnosticEngine Diags;
  auto T = parseTrace(readFileOrDie("traces/fig3.trace"), Diags);
  ASSERT_TRUE(T) << Diags.toString();
  EXPECT_TRUE(T->validate(Diags)) << Diags.toString();

  auto Rep = translateSpec(dictionarySpec(), Diags);
  ASSERT_TRUE(Rep);
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(Rep.get());
  Detector.processTrace(*T);
  ASSERT_EQ(Detector.races().size(), 1u);
  EXPECT_EQ(Detector.races()[0].Current.method(), symbol("put"));
}

TEST(TraceFilesTest, TornCommitTraceHasAtomicityViolation) {
  DiagnosticEngine Diags;
  auto T = parseTrace(readFileOrDie("traces/torn_commit.trace"), Diags);
  ASSERT_TRUE(T) << Diags.toString();
  EXPECT_TRUE(T->validate(Diags)) << Diags.toString();

  auto Rep = translateSpec(dictionarySpec(), Diags);
  ASSERT_TRUE(Rep);
  AtomicityChecker Checker;
  Checker.setDefaultProvider(Rep.get());
  auto Violations = Checker.check(*T);
  ASSERT_EQ(Violations.size(), 1u);
  EXPECT_EQ(Violations[0].Thread, ThreadId(0));
}

TEST(TraceFilesTest, LockProtectedTraceIsRaceFree) {
  DiagnosticEngine Diags;
  auto T = parseTrace(readFileOrDie("traces/lock_protected.trace"), Diags);
  ASSERT_TRUE(T) << Diags.toString();
  EXPECT_TRUE(T->validate(Diags)) << Diags.toString();

  auto Rep = translateSpec(dictionarySpec(), Diags);
  ASSERT_TRUE(Rep);
  CommutativityRaceDetector RD2;
  RD2.setDefaultProvider(Rep.get());
  RD2.processTrace(*T);
  EXPECT_TRUE(RD2.races().empty());

  FastTrackDetector FT;
  FT.processTrace(*T);
  EXPECT_TRUE(FT.races().empty());
}
