//===- tests/MetricsTest.cpp - Observability layer unit tests ----------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for support/Metrics.h (counters, histograms, JSON emission)
/// plus end-to-end snapshot properties of the pipeline instrumentation:
/// counter exactness under one-writer-per-counter concurrency (the padding
/// contract), histogram bucketing and merging, JsonWriter escaping, and
/// determinism of the JSON snapshot across identical runs (modulo `_ns`
/// timing fields). The suite passes in CRD_METRICS=ON and OFF builds; the
/// instrumentation-dependent assertions are gated on metrics::Enabled.
///
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"
#include "wire/StreamPipeline.h"
#include "wire/WireWriter.h"
#include "access/DictionaryRep.h"
#include "TraceGen.h"

#include <gtest/gtest.h>

#include <regex>
#include <sstream>
#include <thread>
#include <vector>

using namespace crd;
using namespace crd::metrics;

//===----------------------------------------------------------------------===//
// Counter
//===----------------------------------------------------------------------===//

TEST(MetricsCounterTest, BasicOperations) {
  Counter C;
  EXPECT_EQ(C.get(), 0u);
  C.inc();
  C.inc();
  C.add(40);
  if (Enabled)
    EXPECT_EQ(C.get(), 42u);
  else
    EXPECT_EQ(C.get(), 0u);
  C.reset();
  EXPECT_EQ(C.get(), 0u);
}

TEST(MetricsCounterTest, PaddedToCacheLine) {
  if (!Enabled)
    GTEST_SKIP() << "counters are empty shells in a CRD_METRICS=OFF build";
  // The concurrency model relies on placement: counters laid out in arrays
  // and written by different threads must never share a cache line.
  EXPECT_GE(alignof(Counter), CacheLineBytes);
  EXPECT_GE(sizeof(Counter), CacheLineBytes);
}

TEST(MetricsCounterTest, ExactUnderOneWriterPerCounter) {
  if (!Enabled)
    GTEST_SKIP() << "counters are empty shells in a CRD_METRICS=OFF build";
  // One writer per counter, counters adjacent in an array — exactly the
  // per-shard layout. Non-atomic increments must still be exact because
  // no two threads touch the same counter (and padding keeps the writes
  // on distinct lines; a shared line would be slow, not wrong, so the
  // real assertion is exactness of plain increments under concurrency).
  constexpr size_t NumThreads = 4;
  constexpr uint64_t PerThread = 200000;
  std::vector<Counter> Counters(NumThreads);
  {
    std::vector<std::thread> Threads;
    for (size_t T = 0; T != NumThreads; ++T)
      Threads.emplace_back([&Counters, T] {
        for (uint64_t I = 0; I != PerThread; ++I)
          Counters[T].inc();
      });
    for (std::thread &T : Threads)
      T.join();
  }
  for (size_t T = 0; T != NumThreads; ++T)
    EXPECT_EQ(Counters[T].get(), PerThread) << "counter " << T;
}

//===----------------------------------------------------------------------===//
// Histograms
//===----------------------------------------------------------------------===//

TEST(MetricsHistogramTest, LinearBucketingAndTail) {
  LinearHistogram<4> H;
  H.record(0);
  H.record(1);
  H.record(2);
  H.record(3);  // Tail bucket.
  H.record(99); // Clamped into the tail bucket.
  if (!Enabled) {
    EXPECT_EQ(H.count(), 0u);
    return;
  }
  EXPECT_EQ(H.bucket(0), 1u);
  EXPECT_EQ(H.bucket(1), 1u);
  EXPECT_EQ(H.bucket(2), 1u);
  EXPECT_EQ(H.bucket(3), 2u);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sum(), 0u + 1 + 2 + 3 + 99);
  EXPECT_EQ(H.max(), 99u);
}

TEST(MetricsHistogramTest, LinearMerge) {
  LinearHistogram<4> A, B;
  A.record(1);
  A.record(7);
  B.record(1);
  B.record(2);
  A.merge(B);
  if (!Enabled) {
    EXPECT_EQ(A.count(), 0u);
    return;
  }
  EXPECT_EQ(A.bucket(1), 2u);
  EXPECT_EQ(A.bucket(2), 1u);
  EXPECT_EQ(A.bucket(3), 1u);
  EXPECT_EQ(A.count(), 4u);
  EXPECT_EQ(A.sum(), 11u);
  EXPECT_EQ(A.max(), 7u);
}

TEST(MetricsHistogramTest, Pow2BucketBoundaries) {
  if (!Enabled)
    GTEST_SKIP() << "bucketOf is a constant in a CRD_METRICS=OFF build";
  using H = Pow2Histogram<8>;
  EXPECT_EQ(H::bucketOf(0), 0u);
  EXPECT_EQ(H::bucketOf(1), 1u);
  EXPECT_EQ(H::bucketOf(2), 2u);
  EXPECT_EQ(H::bucketOf(3), 2u);
  EXPECT_EQ(H::bucketOf(4), 3u);
  EXPECT_EQ(H::bucketOf(63), 6u);
  EXPECT_EQ(H::bucketOf(64), 7u);
  // Tail absorbs everything wider than the bucket range.
  EXPECT_EQ(H::bucketOf(1u << 20), 7u);
  EXPECT_EQ(H::bucketOf(~uint64_t(0)), 7u);
}

//===----------------------------------------------------------------------===//
// JsonWriter (always compiled, even in OFF builds)
//===----------------------------------------------------------------------===//

TEST(MetricsJsonTest, NestedObjectsAndArrays) {
  std::ostringstream OS;
  JsonWriter W(OS);
  W.beginObject();
  W.field("a", uint64_t(1));
  W.key("nested");
  W.beginObject();
  W.field("b", true);
  W.endObject();
  W.fieldArray("c", std::vector<uint64_t>{1, 2, 3});
  W.endObject();
  EXPECT_EQ(OS.str(), "{\n"
                      "  \"a\": 1,\n"
                      "  \"nested\": {\n"
                      "    \"b\": true\n"
                      "  },\n"
                      "  \"c\": [\n"
                      "    1,\n"
                      "    2,\n"
                      "    3\n"
                      "  ]\n"
                      "}");
}

TEST(MetricsJsonTest, EmptyContainersStayOnOneLine) {
  std::ostringstream OS;
  JsonWriter W(OS);
  W.beginObject();
  W.key("empty_obj");
  W.beginObject();
  W.endObject();
  W.key("empty_arr");
  W.beginArray();
  W.endArray();
  W.endObject();
  EXPECT_EQ(OS.str(), "{\n"
                      "  \"empty_obj\": {},\n"
                      "  \"empty_arr\": []\n"
                      "}");
}

TEST(MetricsJsonTest, StringEscaping) {
  std::ostringstream OS;
  JsonWriter W(OS);
  W.beginObject();
  // Split the literal: "\x01f" would parse as the single char 0x1f.
  W.field("k", std::string_view("a\"b\\c\nd\te\x01"
                                "f"));
  W.endObject();
  EXPECT_EQ(OS.str(), "{\n  \"k\": \"a\\\"b\\\\c\\nd\\te\\u0001f\"\n}");
}

//===----------------------------------------------------------------------===//
// Pipeline snapshot
//===----------------------------------------------------------------------===//

namespace {

const DictionaryRep &dictRep() {
  static DictionaryRep Rep;
  return Rep;
}

/// Runs \p T through a pipeline with \p Opts and returns the JSON snapshot.
std::string snapshotOf(const Trace &T, wire::PipelineOptions Opts) {
  std::ostringstream Encoded;
  wire::WireWriter Writer(Encoded, /*EventsPerChunk=*/32);
  Writer.writeTrace(T);
  Writer.finish();
  std::istringstream In(Encoded.str());
  DiagnosticEngine Diags;
  wire::BinaryStreamSource Source(In, Diags);
  wire::StreamPipeline P(Opts);
  P.setDefaultProvider(&dictRep());
  P.run(Source);
  EXPECT_FALSE(Source.failed()) << Diags.toString();
  std::ostringstream OS;
  P.writeMetricsJson(OS, &Source);
  return OS.str();
}

/// Zeroes every `"*_ns": <digits>` field and the queue-depth observations
/// (`occupancy[]`, `occupancy_max`, `ring_full_stalls`): wall-clock times
/// and how far the workers had drained their rings at each dispatch vary
/// between identical runs — the run-based pre-pass races genuinely ahead
/// of the shard workers — but everything else must not.
std::string stripTimes(const std::string &Json) {
  static const std::regex TimeField("(\"[a-z_]*_ns\": )[0-9]+");
  static const std::regex QueueDepth(
      "(\"(?:occupancy_max|ring_full_stalls)\": )[0-9]+");
  static const std::regex OccupancyArray("\"occupancy\": \\[[^\\]]*\\]");
  std::string S = std::regex_replace(Json, TimeField, "$10");
  S = std::regex_replace(S, QueueDepth, "$10");
  return std::regex_replace(S, OccupancyArray, "\"occupancy\": [stripped]");
}

} // namespace

TEST(MetricsSnapshotTest, DeterministicAcrossIdenticalRuns) {
  Trace T = testgen::randomTrace(7, 4, 60, 6);
  for (wire::Backend B :
       {wire::Backend::Sequential, wire::Backend::Parallel,
        wire::Backend::FastTrack}) {
    wire::PipelineOptions Opts;
    Opts.TheBackend = B;
    Opts.Shards = 2;
    Opts.BatchSize = 16;
    std::string First = stripTimes(snapshotOf(T, Opts));
    std::string Second = stripTimes(snapshotOf(T, Opts));
    EXPECT_EQ(First, Second) << "backend " << static_cast<int>(B);
  }
}

TEST(MetricsSnapshotTest, SnapshotIsWellFormedAndCarriesSchema) {
  Trace T = testgen::randomTrace(3, 3, 40, 5);
  wire::PipelineOptions Opts;
  Opts.TheBackend = wire::Backend::Parallel;
  Opts.Shards = 3;
  Opts.BatchSize = 8;
  std::string Json = snapshotOf(T, Opts);
  // Structural keys every snapshot must carry (schema in
  // docs/observability.md); full JSON parsing is the docs checker's job.
  for (const char *Key :
       {"\"metrics_enabled\"", "\"backend\"", "\"events\"",
        "\"events_by_kind\"", "\"summary\"", "\"source\"", "\"detector\"",
        "\"per_shard\"", "\"routed_events\"", "\"occupancy\"",
        "\"fill_deciles\""})
    EXPECT_NE(Json.find(Key), std::string::npos) << "missing " << Key;
  EXPECT_NE(Json.find(Enabled ? "\"metrics_enabled\": true"
                              : "\"metrics_enabled\": false"),
            std::string::npos);
}

TEST(MetricsSnapshotTest, OffBuildSnapshotStillStructurallyLive) {
  // Counts that stay live regardless of CRD_METRICS: total events and the
  // per-shard routed-event balance.
  Trace T = testgen::randomTrace(11, 3, 30, 4);
  wire::PipelineOptions Opts;
  Opts.TheBackend = wire::Backend::Parallel;
  Opts.Shards = 2;
  std::string Json = snapshotOf(T, Opts);
  std::ostringstream Expect;
  Expect << "\"events\": " << T.size();
  EXPECT_NE(Json.find(Expect.str()), std::string::npos) << Json;
}
