//===- tests/TranslateEdgeTest.cpp - translator edge cases --------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// Edge cases of the §6.2 translation: ordered LB predicates, multiple
/// return values, constant formulas, nullary methods, negations, deeper
/// ECL nesting — each checked against Definition 4.5 with the logical
/// specification as the oracle, across every optimizer configuration.
///
//===----------------------------------------------------------------------===//

#include "spec/SpecParser.h"
#include "translate/Translator.h"

#include <gtest/gtest.h>

using namespace crd;

namespace {

/// Every combination of optimizer passes.
std::vector<TranslationOptions> allOptionCombos() {
  std::vector<TranslationOptions> Out;
  for (int Bits = 0; Bits != 8; ++Bits) {
    TranslationOptions O;
    O.DropIrrelevantAtoms = Bits & 1;
    O.MergeCongruentSlots = Bits & 2;
    O.RemoveConflictFree = Bits & 4;
    Out.push_back(O);
  }
  return Out;
}

/// Asserts Def 4.5 over an action zoo for every optimizer configuration.
void expectRepresents(const ObjectSpec &Spec,
                      const std::vector<Action> &Zoo) {
  for (const TranslationOptions &Options : allOptionCombos()) {
    DiagnosticEngine Diags;
    auto Rep = translateSpec(Spec, Diags, Options);
    ASSERT_TRUE(Rep) << Spec.name() << ": " << Diags.toString();
    for (const Action &A : Zoo)
      for (const Action &B : Zoo)
        EXPECT_EQ(actionsConflict(*Rep, A, B), !Spec.commute(A, B))
            << Spec.name() << ": " << A << " vs " << B << " (drop="
            << Options.DropIrrelevantAtoms
            << " merge=" << Options.MergeCongruentSlots
            << " cleanup=" << Options.RemoveConflictFree << ")";
  }
}

ObjectSpec parse(const char *Source) {
  DiagnosticEngine Diags;
  auto Spec = parseObjectSpec(Source, Diags);
  EXPECT_TRUE(Spec) << Diags.toString();
  return Spec ? std::move(*Spec) : ObjectSpec("parse-failed");
}

} // namespace

TEST(TranslateEdgeTest, OrderedPredicatesInLB) {
  // A bounded queue where small offers commute with polls; the LB atoms
  // use ordered comparisons.
  ObjectSpec Spec = parse(R"(
    object quota {
      method use(n) / granted;
      method check() / free;
      commute use(n1)/g1, use(n2)/g2 :
          (n1 <= 0 && n2 <= 0) || (g1 == false && g2 == false);
      commute use(n1)/g1, check()/f2 : n1 <= 0 || g1 == false;
      commute check()/f1, check()/f2 : true;
    }
  )");
  DiagnosticEngine Diags;
  ASSERT_TRUE(Spec.validate(Diags)) << Diags.toString();

  std::vector<Action> Zoo;
  for (int64_t N : {-1, 0, 3})
    for (bool G : {true, false})
      Zoo.push_back(Action(ObjectId(0), symbol("use"), {Value::integer(N)},
                           Value::boolean(G)));
  Zoo.push_back(Action(ObjectId(0), symbol("check"), {}, Value::integer(5)));
  expectRepresents(Spec, Zoo);
}

TEST(TranslateEdgeTest, MultipleReturnValues) {
  // A method with two returns: pop()/value/ok.
  ObjectSpec Spec = parse(R"(
    object stack {
      method push(v);
      method pop() / v / ok;
      commute push(v1), push(v2) : false;
      commute push(v1), pop()/v2/ok2 : false;
      commute pop()/v1/ok1, pop()/v2/ok2 : ok1 == false && ok2 == false;
    }
  )");
  DiagnosticEngine Diags;
  ASSERT_TRUE(Spec.validate(Diags)) << Diags.toString();

  std::vector<Action> Zoo;
  Zoo.push_back(Action(ObjectId(0), symbol("push"), {Value::integer(1)},
                       std::vector<Value>{}));
  for (bool Ok : {true, false})
    Zoo.push_back(Action(ObjectId(0), symbol("pop"), {},
                         std::vector<Value>{Value::integer(7),
                                            Value::boolean(Ok)}));
  expectRepresents(Spec, Zoo);
}

TEST(TranslateEdgeTest, NullaryMethodsAndConstantFormulas) {
  ObjectSpec Spec = parse(R"(
    object barrier {
      method arrive();
      method reset();
      commute arrive(), arrive() : true;
      commute arrive(), reset() : false;
      commute reset(), reset() : false;
    }
  )");
  std::vector<Action> Zoo = {
      Action(ObjectId(0), symbol("arrive"), {}, std::vector<Value>{}),
      Action(ObjectId(0), symbol("reset"), {}, std::vector<Value>{}),
  };
  expectRepresents(Spec, Zoo);

  // reset self-conflicts through its ds point; arrive is conflict-free
  // with itself.
  DiagnosticEngine Diags;
  auto Rep = translateSpec(Spec, Diags);
  ASSERT_TRUE(Rep);
  EXPECT_TRUE(actionsConflict(*Rep, Zoo[1], Zoo[1]));
  EXPECT_FALSE(actionsConflict(*Rep, Zoo[0], Zoo[0]));
}

TEST(TranslateEdgeTest, NegationsInsideLB) {
  ObjectSpec Spec = parse(R"(
    object gauge {
      method set(v) / old;
      method watch() / v;
      commute set(v1)/o1, set(v2)/o2 : !(v1 != o1) && !(v2 != o2);
      commute set(v1)/o1, watch()/v2 : !(v1 != o1);
      commute watch()/v1, watch()/v2 : true;
    }
  )");
  DiagnosticEngine Diags;
  ASSERT_TRUE(Spec.validate(Diags)) << Diags.toString();

  std::vector<Action> Zoo;
  for (int64_t V : {1, 2})
    for (int64_t O : {1, 2})
      Zoo.push_back(Action(ObjectId(0), symbol("set"), {Value::integer(V)},
                           Value::integer(O)));
  Zoo.push_back(Action(ObjectId(0), symbol("watch"), {}, Value::integer(1)));
  expectRepresents(Spec, Zoo);
}

TEST(TranslateEdgeTest, DeepECLNesting) {
  // (S ∨ B) ∧ (S ∨ B) ∧ B — conjunction of ECL formulas.
  ObjectSpec Spec = parse(R"(
    object grid {
      method mark(row, col, v) / prev;
      commute mark(r1, c1, v1)/p1, mark(r2, c2, v2)/p2 :
          (r1 != r2 || v1 == p1 && v2 == p2)
          && (c1 != c2 || v1 == p1 && v2 == p2);
    }
  )");
  DiagnosticEngine Diags;
  ASSERT_TRUE(Spec.validate(Diags)) << Diags.toString();

  std::vector<Action> Zoo;
  for (int64_t R : {0, 1})
    for (int64_t C : {0, 1})
      for (int64_t V : {5, 6})
        for (Value P : {Value::integer(5), Value::nil()})
          Zoo.push_back(Action(ObjectId(0), symbol("mark"),
                               {Value::integer(R), Value::integer(C),
                                Value::integer(V)},
                               P));
  expectRepresents(Spec, Zoo);
}

TEST(TranslateEdgeTest, MultipleDisequalitiesYieldMultipleConjuncts) {
  // The residual can contain several x_i != y_j conjuncts at once.
  ObjectSpec Spec = parse(R"(
    object matrix {
      method touch(row, col);
      commute touch(r1, c1), touch(r2, c2) : r1 != r2 && c1 != c2;
    }
  )");
  std::vector<Action> Zoo;
  for (int64_t R : {0, 1})
    for (int64_t C : {0, 1})
      Zoo.push_back(Action(ObjectId(0), symbol("touch"),
                           {Value::integer(R), Value::integer(C)},
                           std::vector<Value>{}));
  expectRepresents(Spec, Zoo);

  // touch(0,0) vs touch(0,1): rows equal -> conflict; vs touch(1,1): both
  // differ -> commute.
  DiagnosticEngine Diags;
  auto Rep = translateSpec(Spec, Diags);
  ASSERT_TRUE(Rep);
  EXPECT_TRUE(actionsConflict(*Rep, Zoo[0], Zoo[1]));
  EXPECT_FALSE(actionsConflict(*Rep, Zoo[0], Zoo[3]));
}

TEST(TranslateEdgeTest, StringAndMixedValueAtoms) {
  ObjectSpec Spec = parse(R"(
    object router {
      method route(host, target) / prev;
      commute route(h1, t1)/p1, route(h2, t2)/p2 :
          h1 != h2 || (t1 == p1 && t2 == p2) || (h1 == "localhost" && h2 == "localhost");
    }
  )");
  DiagnosticEngine Diags;
  ASSERT_TRUE(Spec.validate(Diags)) << Diags.toString();

  std::vector<Action> Zoo;
  for (std::string_view H : {"localhost", "a.com"})
    for (int64_t TgtV : {1, 2})
      for (Value P : {Value::integer(1), Value::nil()})
        Zoo.push_back(Action(ObjectId(0), symbol("route"),
                             {Value::string(H), Value::integer(TgtV)}, P));
  expectRepresents(Spec, Zoo);
}

TEST(TranslateEdgeTest, AtomCapProducesDiagnostic) {
  // 11 distinct LB atoms on one method exceed the per-method cap.
  ObjectSpec Spec("huge");
  uint32_t M = Spec.addMethod({symbol("m"), 11, 0});
  std::vector<FormulaPtr> Parts;
  for (uint32_t I = 0; I != 11; ++I)
    Parts.push_back(Formula::atom(PredKind::Eq, Term::var(Side::First, I),
                                  Term::constant(Value::integer(I))));
  // Keep it ECL: a conjunction of single-side atoms is LB; symmetric via
  // both sides.
  FormulaPtr B1 = Formula::andOf(Parts);
  Spec.setCommutes(M, M, Formula::andOf(B1, B1->swapSides()));
  DiagnosticEngine Diags;
  EXPECT_FALSE(translateSpec(Spec, Diags));
  EXPECT_NE(Diags.toString().find("more than"), std::string::npos);
}

TEST(TranslateEdgeTest, SharedFormulaAcrossPairsNormalizesAtomsOnce) {
  // v == p appears in two different pair formulas of put; B(Φ, put) must
  // contain it once.
  ObjectSpec Spec = parse(R"(
    object d {
      method put(k, v) / p;
      method get(k) / v;
      method has(k) / b;
      commute put(k1, v1)/p1, put(k2, v2)/p2 : k1 != k2 || (v1 == p1 && v2 == p2);
      commute put(k1, v1)/p1, get(k2)/v2 : k1 != k2 || v1 == p1;
      commute put(k1, v1)/p1, has(k2)/b2 : k1 != k2 || v1 == p1;
      commute get(k1)/v1, get(k2)/v2 : true;
      commute get(k1)/v1, has(k2)/b2 : true;
      commute has(k1)/b1, has(k2)/b2 : true;
    }
  )");
  DiagnosticEngine Diags;
  auto Rep = translateSpec(Spec, Diags);
  ASSERT_TRUE(Rep) << Diags.toString();
  EXPECT_EQ(Rep->methodAtoms(0).size(), 1u); // Just v == p.
}
