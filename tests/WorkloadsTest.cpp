//===- tests/WorkloadsTest.cpp - H2/Cassandra workload tests ------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include "detect/CommutativityDetector.h"
#include "detect/Summary.h"
#include "spec/Builtins.h"
#include "translate/Translator.h"
#include "workloads/QueueWorkload.h"
#include "workloads/SetWorkload.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace crd;

namespace {

CircuitConfig smallCircuit() {
  CircuitConfig Config;
  Config.WorkerThreads = 3;
  Config.QueriesPerWorker = 60;
  Config.Seed = 11;
  return Config;
}

SnitchConfig smallSnitch() {
  SnitchConfig Config;
  Config.Hosts = 6;
  Config.UpdaterThreads = 3;
  Config.TimingsPerUpdater = 40;
  Config.ScoreRecalcs = 15;
  Config.Seed = 11;
  return Config;
}

} // namespace

TEST(MVStoreTest, BasicStoreSemantics) {
  SimRuntime RT(1);
  MVStore Store(RT);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&Store](SimThread &T) {
    Store.put(T, Value::string("k"), Value::integer(1));
    EXPECT_EQ(Store.get(T, Value::string("k")), Value::integer(1));
    EXPECT_EQ(Store.count(T), 1);
  });
  // Commits finish in a deferred step, so issue them as separate steps.
  RT.schedule(Main, [&Store](SimThread &T) { Store.commit(T); });
  RT.schedule(Main, [&Store](SimThread &T) { Store.commit(T); });
  NullSink Sink;
  RT.run(Sink);
  // Sequential commits for the same chunk must not duplicate metadata.
  EXPECT_EQ(Store.chunksMap().uninstrumentedSize(), 1u);
  // freedPageSpace accumulated both commits.
  EXPECT_EQ(Store.freedPageSpaceMap().uninstrumentedGet(Value::integer(0)),
            Value::integer(128));
}

TEST(CircuitTest, AllCircuitsRunToCompletion) {
  for (Circuit C : AllCircuits) {
    SimRuntime RT(3);
    MVStore Store(RT);
    CircuitConfig Config = smallCircuit();
    size_t Queries = buildCircuit(C, RT, Store, Config);
    EXPECT_GT(Queries, 0u) << circuitName(C);
    TraceRecorder Recorder;
    RT.run(Recorder);
    DiagnosticEngine Diags;
    EXPECT_TRUE(Recorder.trace().validate(Diags))
        << circuitName(C) << ": " << Diags.toString();
    EXPECT_GT(Recorder.trace().size(), Queries) << circuitName(C);
  }
}

TEST(CircuitTest, ConcurrentCircuitsHaveCommutativityRaces) {
  for (Circuit C : {Circuit::ComplexConcurrency, Circuit::ComplexConcurrencyAlt,
                    Circuit::InsertCentricConcurrency}) {
    RunResult R = runH2Circuit(C, AnalysisMode::RD2, smallCircuit());
    EXPECT_GT(R.RacesTotal, 0u) << circuitName(C);
    EXPECT_GT(R.RacesDistinct, 0u) << circuitName(C);
  }
}

TEST(CircuitTest, QueryCentricAndSequentialCircuitsAreRaceFreeForRD2) {
  // Table 2: QueryCentricConcurrency, Complex and NestedLists report 0
  // commutativity races.
  for (Circuit C : {Circuit::QueryCentricConcurrency, Circuit::Complex,
                    Circuit::NestedLists}) {
    RunResult R = runH2Circuit(C, AnalysisMode::RD2, smallCircuit());
    EXPECT_EQ(R.RacesTotal, 0u) << circuitName(C);
  }
}

TEST(CircuitTest, FastTrackFindsLowLevelRacesEverywhere) {
  // Table 2: FASTTRACK reports races on every benchmark (racy statistics
  // fields and unlocked map internals).
  for (Circuit C : AllCircuits) {
    RunResult R = runH2Circuit(C, AnalysisMode::FastTrack, smallCircuit());
    EXPECT_GT(R.RacesTotal, 0u) << circuitName(C);
  }
}

TEST(CircuitTest, FastTrackRedundancyExceedsRD2Distinct) {
  // "Most races are highly redundant": totals dwarf the distinct counts.
  RunResult FT = runH2Circuit(Circuit::ComplexConcurrency,
                              AnalysisMode::FastTrack, smallCircuit());
  EXPECT_GT(FT.RacesTotal, FT.RacesDistinct);
  RunResult RD2 = runH2Circuit(Circuit::ComplexConcurrency, AnalysisMode::RD2,
                               smallCircuit());
  EXPECT_GT(RD2.RacesTotal, RD2.RacesDistinct);
  EXPECT_LE(RD2.RacesDistinct, 4u); // A handful of racy objects.
}

TEST(CircuitTest, DeterministicRaceCountsGivenSeed) {
  RunResult A = runH2Circuit(Circuit::ComplexConcurrency, AnalysisMode::RD2,
                             smallCircuit());
  RunResult B = runH2Circuit(Circuit::ComplexConcurrency, AnalysisMode::RD2,
                             smallCircuit());
  EXPECT_EQ(A.RacesTotal, B.RacesTotal);
  EXPECT_EQ(A.RacesDistinct, B.RacesDistinct);
}

TEST(SnitchTest, FunctionalBehavior) {
  SimRuntime RT(1);
  DynamicEndpointSnitch Snitch(RT, 4);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&Snitch](SimThread &T) {
    Snitch.receiveTiming(T, 0, 100);
    Snitch.receiveTiming(T, 0, 200);
    Snitch.receiveTiming(T, 1, 300);
    EXPECT_EQ(Snitch.samplesMap().uninstrumentedSize(), 2u);
    // Decaying average: (100*3 + 200)/4 = 125.
    Snitch.updateScores(T);
  });
  NullSink Sink;
  RT.run(Sink);
  EXPECT_EQ(Snitch.samplesMap().uninstrumentedGet(Value::string("10.0.0.0")),
            Value::integer(125));
}

TEST(SnitchTest, ReproducesTheSamplesSizeRace) {
  // §7 harmful race #3: new entries added while size() is used as a hint.
  RunResult R = runSnitchTest(AnalysisMode::RD2, smallSnitch());
  EXPECT_GT(R.RacesTotal, 0u);
  EXPECT_GE(R.RacesDistinct, 1u);
  EXPECT_LE(R.RacesDistinct, 2u);
}

TEST(SnitchTest, FastTrackSeesTheUnlockedReads) {
  RunResult R = runSnitchTest(AnalysisMode::FastTrack, smallSnitch());
  EXPECT_GT(R.RacesTotal, 0u);
}

TEST(HarnessTest, UninstrumentedReportsNoRaces) {
  RunResult R = runH2Circuit(Circuit::ComplexConcurrency,
                             AnalysisMode::Uninstrumented, smallCircuit());
  EXPECT_EQ(R.RacesTotal, 0u);
  EXPECT_GT(R.Queries, 0u);
  EXPECT_GT(R.Qps, 0.0);
}

TEST(SetWorkloadTest, UniqueVisitorsHasDuplicateAddRaces) {
  SimRuntime RT(5);
  InstrumentedSet Visitors(RT);
  SetWorkloadConfig Config;
  Config.WriterThreads = 3;
  Config.AddsPerWriter = 50;
  Config.VisitorRange = 8; // Small range forces duplicate adds.
  Config.Seed = 5;
  size_t Ops = buildUniqueVisitors(RT, Visitors, Config);
  EXPECT_GT(Ops, 150u);

  DiagnosticEngine Diags;
  auto Rep = translateSpec(setSpec(), Diags);
  ASSERT_TRUE(Rep) << Diags.toString();

  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(Rep.get());
  DetectorSink<CommutativityRaceDetector> Sink(Detector);
  RT.run(Sink);

  // Duplicate adds across threads and add-vs-size races must appear.
  EXPECT_GT(Detector.races().size(), 0u);
  EXPECT_EQ(Detector.distinctRacyObjects(), 1u);
  EXPECT_LE(Visitors.uninstrumentedSize(), 8u);
}

TEST(SetWorkloadTest, WideVisitorRangeStillRacesOnSize) {
  // With a huge id range duplicates are rare, but every successful add
  // still conflicts with the concurrent size() polls.
  SimRuntime RT(6);
  InstrumentedSet Visitors(RT);
  SetWorkloadConfig Config;
  Config.WriterThreads = 2;
  Config.AddsPerWriter = 40;
  Config.VisitorRange = 100000;
  Config.ReportEvery = 10;
  Config.Seed = 6;
  buildUniqueVisitors(RT, Visitors, Config);

  DiagnosticEngine Diags;
  auto Rep = translateSpec(setSpec(), Diags);
  ASSERT_TRUE(Rep);
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(Rep.get());
  DetectorSink<CommutativityRaceDetector> Sink(Detector);
  RT.run(Sink);
  EXPECT_GT(Detector.races().size(), 0u);
}

TEST(QueueWorkloadTest, TaskQueueRunsAndRaces) {
  SimRuntime RT(8);
  InstrumentedQueue Jobs(RT);
  QueueWorkloadConfig Config;
  Config.Producers = 2;
  Config.Consumers = 2;
  Config.JobsPerProducer = 30;
  Config.MonitorPeeks = 6;
  Config.Seed = 8;
  size_t Ops = buildTaskQueue(RT, Jobs, Config);
  EXPECT_GT(Ops, 120u);

  DiagnosticEngine Diags;
  auto Rep = translateSpec(queueSpec(), Diags);
  ASSERT_TRUE(Rep) << Diags.toString();
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(Rep.get());
  TraceRecorder Recorder;
  DetectorSink<CommutativityRaceDetector> DetectorSide(Detector);
  TeeSink Tee(Recorder, DetectorSide);
  RT.run(Tee);

  DiagnosticEngine ValDiags;
  EXPECT_TRUE(Recorder.trace().validate(ValDiags)) << ValDiags.toString();
  // Queues barely commute: concurrent producers alone guarantee races.
  EXPECT_GT(Detector.races().size(), 0u);
  EXPECT_EQ(Detector.distinctRacyObjects(), 1u);
  // Consumers drained at most what was produced.
  EXPECT_LE(Jobs.uninstrumentedSize(),
            size_t(Config.Producers) * Config.JobsPerProducer);
}

TEST(QueueWorkloadTest, SingleProducerSingleConsumerOrdered) {
  // One producer, consumers run after a join: race-free.
  SimRuntime RT(9);
  InstrumentedQueue Jobs(RT);
  ThreadId Main = RT.addInitialThread();
  auto Producer = std::make_shared<ThreadId>();
  RT.schedule(Main, [&RT, &Jobs, Producer](SimThread &T) {
    *Producer = T.fork([](SimThread &) {});
    for (int J = 0; J != 20; ++J)
      RT.schedule(*Producer, [&Jobs, J](SimThread &T2) {
        Jobs.enq(T2, Value::integer(J));
      });
  });
  RT.schedule(Main, [Producer](SimThread &T) { T.join(*Producer); });
  for (int J = 0; J != 20; ++J)
    RT.schedule(Main, [&Jobs](SimThread &T) { Jobs.deq(T); });

  DiagnosticEngine Diags;
  auto Rep = translateSpec(queueSpec(), Diags);
  ASSERT_TRUE(Rep);
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(Rep.get());
  DetectorSink<CommutativityRaceDetector> Sink(Detector);
  RT.run(Sink);
  EXPECT_TRUE(Detector.races().empty());
  EXPECT_EQ(Jobs.uninstrumentedSize(), 0u);
}

TEST(SummaryTest, GroupsAndSorts) {
  std::vector<CommutativityRace> Races;
  auto MakeRace = [](uint32_t Obj, size_t Event, const char *Point,
                     const char *Method) {
    CommutativityRace R;
    R.EventIndex = Event;
    R.Thread = ThreadId(1);
    R.Current = Action(ObjectId(Obj), symbol(Method),
                       {Value::integer(1)}, Value::nil());
    R.PointName = Point;
    return R;
  };
  Races.push_back(MakeRace(7, 10, "o:w:k", "put"));
  Races.push_back(MakeRace(3, 5, "o:w:k", "put"));
  Races.push_back(MakeRace(3, 9, "o:size", "size"));
  Races.push_back(MakeRace(3, 2, "o:w:k", "put"));

  RaceSummary Summary = RaceSummary::build(Races);
  EXPECT_EQ(Summary.total(), 4u);
  ASSERT_EQ(Summary.objects().size(), 2u);
  // Object 3 has more reports and sorts first; its earliest event is 2.
  EXPECT_EQ(Summary.objects()[0].Obj, ObjectId(3));
  EXPECT_EQ(Summary.objects()[0].Count, 3u);
  EXPECT_EQ(Summary.objects()[0].FirstEvent, 2u);
  EXPECT_EQ(Summary.objects()[0].ByPoint.at("o:w:k"), 2u);
  EXPECT_EQ(Summary.objects()[0].ByMethod.at("size"), 1u);

  std::string Rendered = Summary.toString();
  EXPECT_NE(Rendered.find("4 commutativity race report(s) on 2 object(s)"),
            std::string::npos);
  EXPECT_NE(Rendered.find("o3:"), std::string::npos);
}

TEST(SummaryTest, EmptyInput) {
  RaceSummary Summary = RaceSummary::build({});
  EXPECT_EQ(Summary.total(), 0u);
  EXPECT_TRUE(Summary.objects().empty());
  EXPECT_NE(Summary.toString().find("0 commutativity race report(s)"),
            std::string::npos);
}

TEST(HarnessTest, Table2Printer) {
  std::vector<RunResult> Results;
  for (AnalysisMode M : {AnalysisMode::Uninstrumented, AnalysisMode::FastTrack,
                         AnalysisMode::RD2})
    Results.push_back(
        runH2Circuit(Circuit::QueryCentricConcurrency, M, smallCircuit()));
  std::ostringstream OS;
  printTable2(OS, Results);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("QueryCentricConcurrency"), std::string::npos);
  EXPECT_NE(Out.find("FASTTRACK"), std::string::npos);
  EXPECT_NE(Out.find("RD2"), std::string::npos);
}
