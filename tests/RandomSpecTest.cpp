//===- tests/RandomSpecTest.cpp - randomized ECL translation property ---------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// Generates random formulas following the ECL grammar (Def 6.3), builds
/// random specifications from them, and checks Definition 4.5 — the
/// translated representation conflicts exactly where the specification
/// denies commutativity — over random action pairs, for every optimizer
/// pass combination. This is the translator's strongest correctness test.
///
//===----------------------------------------------------------------------===//

#include "spec/Fragment.h"
#include "translate/Translator.h"

#include <gtest/gtest.h>

#include <random>

using namespace crd;

namespace {

/// Random formula factory driven by one PRNG.
class RandomFormulaGen {
public:
  RandomFormulaGen(std::mt19937_64 &Rng, uint32_t NumValuesFirst,
                   uint32_t NumValuesSecond)
      : Rng(Rng), NumValues{NumValuesFirst, NumValuesSecond} {}

  /// A random ECL formula: X ::= S | B | X ∧ X | X ∨ B.
  FormulaPtr ecl(unsigned Depth) {
    switch (Depth == 0 ? Rng() % 2 : Rng() % 4) {
    case 0:
      return simple();
    case 1:
      return lb(1);
    case 2:
      return Formula::andOf(ecl(Depth - 1), ecl(Depth - 1));
    default:
      return Rng() % 2 ? Formula::orOf(ecl(Depth - 1), lb(1))
                       : Formula::orOf(lb(1), ecl(Depth - 1));
    }
  }

  /// A random LS formula: conjunction of cross-side disequalities.
  FormulaPtr simple() {
    switch (Rng() % 5) {
    case 0:
      return Formula::truth(true);
    case 1:
      return Formula::truth(false);
    case 2:
      return lsAtom();
    default:
      return Formula::andOf(lsAtom(), lsAtom());
    }
  }

  /// A random LB formula: boolean combination of single-side atoms.
  FormulaPtr lb(unsigned Depth) {
    if (Depth == 0 || Rng() % 3 == 0)
      return lbAtom(Rng() % 2 == 0 ? Side::First : Side::Second);
    switch (Rng() % 3) {
    case 0:
      return Formula::notOf(lb(Depth - 1));
    case 1:
      return Formula::andOf(lb(Depth - 1), lb(Depth - 1));
    default:
      return Formula::orOf(lb(Depth - 1), lb(Depth - 1));
    }
  }

  FormulaPtr lsAtom() {
    return Formula::atom(PredKind::Ne, randomVar(Side::First),
                         randomVar(Side::Second));
  }

  FormulaPtr lbAtom(Side S) {
    static constexpr PredKind Preds[] = {PredKind::Eq, PredKind::Ne,
                                         PredKind::Lt, PredKind::Le,
                                         PredKind::Gt, PredKind::Ge};
    PredKind P = Preds[Rng() % 6];
    Term Lhs = randomVar(S);
    Term Rhs = Rng() % 2 ? randomVar(S) : Term::constant(randomValue());
    return Formula::atom(P, Lhs, Rhs);
  }

  Term randomVar(Side S) {
    uint32_t N = NumValues[S == Side::First ? 0 : 1];
    return Term::var(S, static_cast<uint32_t>(Rng() % N));
  }

  Value randomValue() {
    switch (Rng() % 5) {
    case 0:
      return Value::nil();
    case 1:
      return Value::boolean(Rng() % 2 == 0);
    default:
      return Value::integer(static_cast<int64_t>(Rng() % 3));
    }
  }

private:
  std::mt19937_64 &Rng;
  uint32_t NumValues[2];
};

class RandomSpecTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(RandomSpecTest, Def45HoldsForRandomECLSpecs) {
  std::mt19937_64 Rng(GetParam());

  // Three methods with modest arities, including a two-return method.
  ObjectSpec Spec("random");
  uint32_t M0 = Spec.addMethod({symbol("alpha"), 2, 1}); // 3 values
  uint32_t M1 = Spec.addMethod({symbol("beta"), 1, 1});  // 2 values
  uint32_t M2 = Spec.addMethod({symbol("gamma"), 0, 2}); // 2 values

  // ϕ(alpha, alpha): force symmetry by conjoining with the swapped form.
  {
    RandomFormulaGen Gen(Rng, 3, 3);
    FormulaPtr F = Gen.ecl(2);
    Spec.setCommutes(M0, M0, Formula::andOf(F, F->swapSides()));
  }
  {
    RandomFormulaGen Gen(Rng, 3, 2);
    Spec.setCommutes(M0, M1, Gen.ecl(2));
  }
  {
    RandomFormulaGen Gen(Rng, 2, 2);
    FormulaPtr F = Gen.ecl(2);
    Spec.setCommutes(M1, M1, Formula::andOf(F, F->swapSides()));
  }
  {
    RandomFormulaGen Gen(Rng, 3, 2);
    Spec.setCommutes(M0, M2, Gen.ecl(2));
  }
  {
    RandomFormulaGen Gen(Rng, 2, 2);
    Spec.setCommutes(M1, M2, Gen.ecl(1));
  }
  {
    RandomFormulaGen Gen(Rng, 2, 2);
    FormulaPtr F = Gen.ecl(1);
    Spec.setCommutes(M2, M2, Formula::andOf(F, F->swapSides()));
  }

  // Sanity: everything we generated really is in ECL and symmetric.
  for (uint32_t I = 0; I != 3; ++I)
    for (uint32_t J = I; J != 3; ++J) {
      FormulaPtr F = Spec.commutesFormula(I, J);
      ASSERT_TRUE(F);
      ASSERT_TRUE(isECL(*F)) << F->toString();
    }
  DiagnosticEngine ValidationDiags;
  ASSERT_TRUE(Spec.validate(ValidationDiags)) << ValidationDiags.toString();

  // Random action zoo with values from the same small pool the formulas
  // draw constants from.
  auto RandomAction = [&](uint32_t Method) {
    RandomFormulaGen Gen(Rng, 1, 1); // Only for randomValue().
    const MethodSig &Sig = Spec.method(Method);
    std::vector<Value> Args, Rets;
    for (uint32_t I = 0; I != Sig.NumArgs; ++I)
      Args.push_back(Gen.randomValue());
    for (uint32_t I = 0; I != Sig.NumRets; ++I)
      Rets.push_back(Gen.randomValue());
    return Action(ObjectId(0), Sig.Name, std::move(Args), std::move(Rets));
  };
  std::vector<Action> Zoo;
  for (int I = 0; I != 15; ++I)
    Zoo.push_back(RandomAction(I % 3));

  // Def 4.5 under every optimizer combination. Some random formulas exceed
  // the per-method atom cap; that is a documented, diagnosed limit.
  for (int Bits = 0; Bits != 8; ++Bits) {
    TranslationOptions Options;
    Options.DropIrrelevantAtoms = Bits & 1;
    Options.MergeCongruentSlots = Bits & 2;
    Options.RemoveConflictFree = Bits & 4;
    DiagnosticEngine Diags;
    auto Rep = translateSpec(Spec, Diags, Options);
    if (!Rep) {
      ASSERT_NE(Diags.toString().find("more than"), std::string::npos)
          << "unexpected translation failure: " << Diags.toString();
      return; // Atom cap hit: acceptable for a random spec.
    }
    for (const Action &A : Zoo)
      for (const Action &B : Zoo)
        ASSERT_EQ(actionsConflict(*Rep, A, B), !Spec.commute(A, B))
            << "seed " << GetParam() << " opts " << Bits << "\n  A = " << A
            << "\n  B = " << B << "\n  phi(alpha,alpha) = "
            << Spec.commutesFormula(0, 0)->toString()
            << "\n  phi(alpha,beta) = "
            << Spec.commutesFormula(0, 1)->toString()
            << "\n  phi(beta,beta) = "
            << Spec.commutesFormula(1, 1)->toString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSpecTest,
                         ::testing::Range(uint64_t(1), uint64_t(41)));
