//===- tests/QueuePipelineTest.cpp - queue object end-to-end pipeline ---------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// End-to-end coverage for the FIFO queue: the least commutative of the
/// builtin types (Definition 3.1's strict effect equality leaves mostly
/// vacuous commutations). Exercises multi-return methods (deq()/v/ok)
/// through the spec, translator, detector, runtime and replay layers.
///
//===----------------------------------------------------------------------===//

#include "detect/CommutativityDetector.h"
#include "detect/DirectDetector.h"
#include "replay/Determinism.h"
#include "runtime/InstrumentedQueue.h"
#include "spec/Builtins.h"
#include "translate/Translator.h"

#include <gtest/gtest.h>

#include <set>

using namespace crd;

namespace {

const TranslatedRep &queueRep() {
  static std::unique_ptr<TranslatedRep> Rep = [] {
    DiagnosticEngine Diags;
    auto R = translateSpec(queueSpec(), Diags);
    EXPECT_TRUE(R) << Diags.toString();
    return R;
  }();
  return *Rep;
}

Action enq(int64_t V, bool WasEmpty) {
  return Action(ObjectId(0), symbol("enq"), {Value::integer(V)},
                Value::boolean(WasEmpty));
}
Action deq(Value V, bool Ok) {
  return Action(ObjectId(0), symbol("deq"), {},
                std::vector<Value>{V, Value::boolean(Ok)});
}
Action peek(Value V, bool Ok) {
  return Action(ObjectId(0), symbol("peek"), {},
                std::vector<Value>{V, Value::boolean(Ok)});
}

} // namespace

TEST(QueueSpecTest, ValidatesAndTranslates) {
  DiagnosticEngine Diags;
  EXPECT_TRUE(queueSpec().validate(Diags)) << Diags.toString();
  TranslationStats Stats;
  auto Rep = translateSpec(queueSpec(), Diags, {}, &Stats);
  ASSERT_TRUE(Rep) << Diags.toString();
  EXPECT_LE(Stats.MaxConflictsPerClass, 8u);
}

TEST(QueueSpecTest, CommutativitySemantics) {
  const ObjectSpec &Q = queueSpec();
  // Enqueues never commute.
  EXPECT_FALSE(Q.commute(enq(1, true), enq(2, false)));
  EXPECT_FALSE(Q.commute(enq(1, false), enq(2, false)));
  // enq/deq: only the vacuous combination commutes.
  EXPECT_TRUE(Q.commute(enq(1, false), deq(Value::nil(), false)));
  EXPECT_FALSE(Q.commute(enq(1, false), deq(Value::integer(9), true)));
  EXPECT_FALSE(Q.commute(enq(1, true), deq(Value::nil(), false)));
  // enq on a non-empty queue commutes with any peek.
  EXPECT_TRUE(Q.commute(enq(1, false), peek(Value::integer(5), true)));
  EXPECT_TRUE(Q.commute(enq(1, false), peek(Value::nil(), false)));
  EXPECT_FALSE(Q.commute(enq(1, true), peek(Value::nil(), false)));
  // Dequeues commute iff both failed.
  EXPECT_TRUE(Q.commute(deq(Value::nil(), false), deq(Value::nil(), false)));
  EXPECT_FALSE(Q.commute(deq(Value::integer(1), true),
                         deq(Value::nil(), false)));
  // Peeks always commute.
  EXPECT_TRUE(Q.commute(peek(Value::integer(1), true),
                        peek(Value::integer(1), true)));
}

TEST(QueueSpecTest, TranslationRepresentsTheSpec) {
  const ObjectSpec &Spec = queueSpec();
  std::vector<Action> Zoo;
  for (bool WasEmpty : {true, false})
    Zoo.push_back(enq(7, WasEmpty));
  for (bool Ok : {true, false}) {
    Value V = Ok ? Value::integer(7) : Value::nil();
    Zoo.push_back(deq(V, Ok));
    Zoo.push_back(peek(V, Ok));
  }
  for (const Action &A : Zoo)
    for (const Action &B : Zoo)
      EXPECT_EQ(actionsConflict(queueRep(), A, B), !Spec.commute(A, B))
          << A << " vs " << B;
}

TEST(AbstractQueueTest, Semantics) {
  AbstractQueue Q;
  EXPECT_TRUE(Q.apply(peek(Value::nil(), false)));
  EXPECT_TRUE(Q.apply(enq(1, true)));
  EXPECT_FALSE(Q.apply(enq(2, true))); // Queue is no longer empty.
  EXPECT_TRUE(Q.apply(enq(2, false)));
  EXPECT_TRUE(Q.apply(peek(Value::integer(1), true)));
  EXPECT_TRUE(Q.apply(deq(Value::integer(1), true)));
  EXPECT_TRUE(Q.apply(deq(Value::integer(2), true)));
  EXPECT_FALSE(Q.apply(deq(Value::integer(2), true))); // Empty now.
  EXPECT_TRUE(Q.apply(deq(Value::nil(), false)));
  EXPECT_EQ(Q.toString(), "queue[]");
}

TEST(InstrumentedQueueTest, FunctionalAndReplayConsistent) {
  SimRuntime RT(1);
  InstrumentedQueue Queue(RT);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&Queue](SimThread &T) {
    EXPECT_TRUE(Queue.enq(T, Value::integer(1)));
    EXPECT_FALSE(Queue.enq(T, Value::integer(2)));
    EXPECT_EQ(Queue.peek(T).first, Value::integer(1));
    EXPECT_EQ(Queue.deq(T).first, Value::integer(1));
    EXPECT_EQ(Queue.deq(T).first, Value::integer(2));
    EXPECT_FALSE(Queue.deq(T).second);
  });
  TraceRecorder Recorder;
  RT.run(Recorder);

  AbstractHeap Heap([](ObjectId) -> std::unique_ptr<AbstractObject> {
    return std::make_unique<AbstractQueue>();
  });
  ReplayResult R = replayTrace(Recorder.trace(), Heap);
  EXPECT_TRUE(R.Feasible) << "failed at event " << R.FailedAt;
}

TEST(QueuePipelineTest, ConcurrentProducersRace) {
  SimRuntime RT(5);
  InstrumentedQueue Queue(RT);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&Queue](SimThread &T) {
    for (int W = 0; W != 2; ++W)
      T.fork([&Queue, W](SimThread &T2) {
        Queue.enq(T2, Value::integer(W));
      });
  });
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&queueRep());
  DetectorSink<CommutativityRaceDetector> Sink(Detector);
  RT.run(Sink);
  // Two concurrent enqueues: exactly one race (they never commute).
  EXPECT_EQ(Detector.races().size(), 1u);
}

TEST(QueuePipelineTest, OrderedProducerConsumerNoRace) {
  // Producer enqueues, main joins, consumer dequeues afterwards.
  SimRuntime RT(5);
  InstrumentedQueue Queue(RT);
  ThreadId Main = RT.addInitialThread();
  auto Producer = std::make_shared<ThreadId>();
  RT.schedule(Main, [&Queue, Producer](SimThread &T) {
    *Producer = T.fork([&Queue](SimThread &T2) {
      Queue.enq(T2, Value::integer(1));
      Queue.enq(T2, Value::integer(2));
    });
  });
  RT.schedule(Main, [Producer](SimThread &T) { T.join(*Producer); });
  RT.schedule(Main, [&Queue](SimThread &T) {
    Queue.deq(T);
    Queue.deq(T);
  });
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&queueRep());
  DetectorSink<CommutativityRaceDetector> Sink(Detector);
  RT.run(Sink);
  EXPECT_TRUE(Detector.races().empty());
}

TEST(QueuePipelineTest, Theorem51AgreementOnQueueTraces) {
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    SimRuntime RT(Seed);
    InstrumentedQueue Queue(RT);
    ThreadId Main = RT.addInitialThread();
    RT.schedule(Main, [&RT, &Queue](SimThread &T) {
      for (unsigned W = 0; W != 3; ++W) {
        ThreadId Tid = T.fork([](SimThread &) {});
        for (unsigned Q = 0; Q != 15; ++Q)
          RT.schedule(Tid, [&Queue](SimThread &T2) {
            switch (T2.random(3)) {
            case 0:
              Queue.enq(T2, Value::integer(static_cast<int64_t>(
                                T2.random(5))));
              break;
            case 1:
              Queue.deq(T2);
              break;
            case 2:
              Queue.peek(T2);
              break;
            }
          });
      }
    });
    TraceRecorder Recorder;
    RT.run(Recorder);

    CommutativityRaceDetector Alg1;
    Alg1.setDefaultProvider(&queueRep());
    Alg1.processTrace(Recorder.trace());

    DirectCommutativityDetector Direct;
    Direct.setDefaultSpec(&queueSpec());
    Direct.processTrace(Recorder.trace());

    std::set<size_t> A, D;
    for (const CommutativityRace &R : Alg1.races())
      A.insert(R.EventIndex);
    for (const CommutativityRace &R : Direct.races())
      D.insert(R.EventIndex);
    EXPECT_EQ(A, D) << "seed " << Seed;
  }
}

TEST(QueuePipelineTest, SequentialQueueIsDeterministic) {
  SimRuntime RT(2);
  InstrumentedQueue Queue(RT);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&Queue](SimThread &T) {
    Queue.enq(T, Value::integer(1));
    Queue.enq(T, Value::integer(2));
    Queue.deq(T);
  });
  TraceRecorder Recorder;
  RT.run(Recorder);
  AbstractHeap Heap([](ObjectId) -> std::unique_ptr<AbstractObject> {
    return std::make_unique<AbstractQueue>();
  });
  DeterminismReport Report = checkDeterminism(Recorder.trace(), Heap);
  EXPECT_TRUE(Report.deterministic()) << Report.Witness;
}
