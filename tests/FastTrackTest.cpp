//===- tests/FastTrackTest.cpp - FastTrack baseline tests ---------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "detect/FastTrack.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace crd;

namespace {

size_t raceCount(const Trace &T) {
  FastTrackDetector Detector;
  Detector.processTrace(T);
  return Detector.races().size();
}

} // namespace

TEST(FastTrackTest, WriteWriteRace) {
  Trace T = TraceBuilder().fork(0, 1).write(0, 7).write(1, 7).take();
  FastTrackDetector D;
  D.processTrace(T);
  ASSERT_EQ(D.races().size(), 1u);
  EXPECT_EQ(D.races()[0].Access, MemoryRace::Kind::WriteWrite);
  EXPECT_EQ(D.races()[0].Var, VarId(7));
  EXPECT_EQ(D.distinctRacyVars(), 1u);
}

TEST(FastTrackTest, WriteReadRace) {
  Trace T = TraceBuilder().fork(0, 1).write(0, 7).read(1, 7).take();
  FastTrackDetector D;
  D.processTrace(T);
  ASSERT_EQ(D.races().size(), 1u);
  EXPECT_EQ(D.races()[0].Access, MemoryRace::Kind::WriteRead);
}

TEST(FastTrackTest, ReadWriteRace) {
  Trace T = TraceBuilder().fork(0, 1).read(0, 7).write(1, 7).take();
  FastTrackDetector D;
  D.processTrace(T);
  ASSERT_EQ(D.races().size(), 1u);
  EXPECT_EQ(D.races()[0].Access, MemoryRace::Kind::ReadWrite);
}

TEST(FastTrackTest, SharedReadsThenWriteReportsRace) {
  // Two concurrent readers inflate to a read vector clock; a later write
  // unordered with either reader races.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .fork(0, 2)
                .read(1, 7)
                .read(2, 7)
                .write(0, 7)
                .take();
  EXPECT_GE(raceCount(T), 1u);
}

TEST(FastTrackTest, NoRaceWhenLockProtected) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .acquire(0, 0)
                .write(0, 7)
                .release(0, 0)
                .acquire(1, 0)
                .write(1, 7)
                .read(1, 7)
                .release(1, 0)
                .take();
  EXPECT_EQ(raceCount(T), 0u);
}

TEST(FastTrackTest, NoRaceWhenForkJoinOrdered) {
  Trace T = TraceBuilder()
                .write(0, 7)
                .fork(0, 1)
                .write(1, 7) // After fork: ordered with T0's write.
                .join(0, 1)
                .read(0, 7) // After join: ordered with T1's write.
                .take();
  EXPECT_EQ(raceCount(T), 0u);
}

TEST(FastTrackTest, SameThreadNeverRaces) {
  Trace T = TraceBuilder()
                .write(0, 7)
                .read(0, 7)
                .write(0, 7)
                .read(0, 7)
                .take();
  EXPECT_EQ(raceCount(T), 0u);
}

TEST(FastTrackTest, SameEpochReadsAreCheap) {
  // Repeated reads in the same epoch take the same-epoch fast path; this
  // is a behavioral test: no races and no crash on long same-epoch runs.
  TraceBuilder TB;
  for (int I = 0; I != 1000; ++I)
    TB.read(0, 7);
  EXPECT_EQ(raceCount(TB.take()), 0u);
}

TEST(FastTrackTest, ReadExclusiveHandoffNoRace) {
  // Reader hands off through a lock: read epochs stay exclusive.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .acquire(0, 0)
                .read(0, 7)
                .release(0, 0)
                .acquire(1, 0)
                .read(1, 7)
                .release(1, 0)
                .take();
  EXPECT_EQ(raceCount(T), 0u);
}

TEST(FastTrackTest, DistinctVarsCounted) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .write(0, 1)
                .write(0, 2)
                .write(1, 1)
                .write(1, 2)
                .write(1, 2) // Same epoch: no second report for V2.
                .take();
  FastTrackDetector D;
  D.processTrace(T);
  EXPECT_EQ(D.races().size(), 2u);
  EXPECT_EQ(D.distinctRacyVars(), 2u);
}

TEST(FastTrackTest, DeflationAfterSharedWrite) {
  // Two concurrent readers inflate; a later ordered write (after joining
  // both) deflates the read state; a subsequent ordered reader/writer pair
  // must not be flagged.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .fork(0, 2)
                .read(1, 7)
                .read(2, 7)
                .join(0, 1)
                .join(0, 2)
                .write(0, 7) // Ordered after both reads: no race, deflates.
                .read(0, 7)
                .write(0, 7)
                .take();
  EXPECT_EQ(raceCount(T), 0u);
}

TEST(FastTrackTest, RacesKeepComingAfterTheFirst) {
  // FastTrack keeps reporting subsequent races on the same variable.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .fork(0, 2)
                .write(0, 7)
                .write(1, 7) // Race 1.
                .write(2, 7) // Race 2 (concurrent with T1's write).
                .take();
  FastTrackDetector D;
  D.processTrace(T);
  EXPECT_EQ(D.races().size(), 2u);
  EXPECT_EQ(D.distinctRacyVars(), 1u);
}

TEST(FastTrackTest, ReadSharedToExclusiveTransition) {
  // Shared reads, then a write that is ordered after all of them (via
  // joins), then an exclusive read epoch again in another thread via a
  // lock handoff: all ordered, no races.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .read(0, 7)
                .read(1, 7)
                .join(0, 1)
                .write(0, 7)
                .acquire(0, 0)
                .read(0, 7)
                .release(0, 0)
                .fork(0, 2)
                .acquire(2, 0)
                .read(2, 7)
                .release(2, 0)
                .take();
  EXPECT_EQ(raceCount(T), 0u);
}

TEST(FastTrackTest, WriteReadRaceAcrossManyVars) {
  TraceBuilder TB;
  TB.fork(0, 1);
  for (uint32_t V = 0; V != 10; ++V)
    TB.write(0, V);
  for (uint32_t V = 0; V != 10; ++V)
    TB.read(1, V);
  FastTrackDetector D;
  D.processTrace(TB.take());
  EXPECT_EQ(D.races().size(), 10u);
  EXPECT_EQ(D.distinctRacyVars(), 10u);
  for (const MemoryRace &R : D.races())
    EXPECT_EQ(R.Access, MemoryRace::Kind::WriteRead);
}

TEST(FastTrackTest, RaceReportPrinting) {
  FastTrackDetector D;
  D.processTrace(TraceBuilder().fork(0, 1).write(0, 7).write(1, 7).take());
  ASSERT_EQ(D.races().size(), 1u);
  std::string S = D.races()[0].toString();
  EXPECT_NE(S.find("write-write"), std::string::npos);
  EXPECT_NE(S.find("V7"), std::string::npos);
}
