//===- tests/WorkloadAtomicityTest.cpp - atomicity on the workloads -----------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// The §7 findings rephrased as atomicity violations: MVStore commits and
/// snitch rank recalculations are intended-atomic blocks; under concurrent
/// traffic the commutativity-aware checker reports them torn, while under
/// serialized traffic it stays silent.
///
//===----------------------------------------------------------------------===//

#include "detect/AtomicityChecker.h"
#include "spec/Builtins.h"
#include "translate/Translator.h"
#include "workloads/MVStore.h"
#include "workloads/Snitch.h"

#include <gtest/gtest.h>

using namespace crd;

namespace {

const TranslatedRep &dictRep() {
  static std::unique_ptr<TranslatedRep> Rep = [] {
    DiagnosticEngine Diags;
    auto R = translateSpec(dictionarySpec(), Diags);
    EXPECT_TRUE(R) << Diags.toString();
    return R;
  }();
  return *Rep;
}

std::vector<AtomicityViolation> checkTrace(const Trace &T) {
  AtomicityChecker Checker;
  Checker.setDefaultProvider(&dictRep());
  return Checker.check(T);
}

} // namespace

TEST(WorkloadAtomicityTest, ConcurrentCommitsTearEachOther) {
  // Two threads committing concurrently: both commits do get-then-put on
  // the chunks/freedPageSpace maps for the same chunk.
  SimRuntime RT(7);
  MVStore Store(RT);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&Store](SimThread &T) {
    for (int W = 0; W != 2; ++W)
      T.fork([&Store](SimThread &T2) { Store.commit(T2); });
  });
  TraceRecorder Recorder;
  RT.run(Recorder);
  DiagnosticEngine Diags;
  ASSERT_TRUE(Recorder.trace().validate(Diags)) << Diags.toString();

  // Depending on the schedule the commits may or may not interleave; try a
  // few seeds and require at least one torn commit overall.
  size_t TotalViolations = checkTrace(Recorder.trace()).size();
  for (uint64_t Seed = 8; Seed != 14 && TotalViolations == 0; ++Seed) {
    SimRuntime RT2(Seed);
    MVStore Store2(RT2);
    ThreadId Main2 = RT2.addInitialThread();
    RT2.schedule(Main2, [&Store2](SimThread &T) {
      for (int W = 0; W != 2; ++W)
        T.fork([&Store2](SimThread &T2) { Store2.commit(T2); });
    });
    TraceRecorder Rec2;
    RT2.run(Rec2);
    TotalViolations += checkTrace(Rec2.trace()).size();
  }
  EXPECT_GT(TotalViolations, 0u);
}

TEST(WorkloadAtomicityTest, SequentialCommitsAreSerializable) {
  SimRuntime RT(7);
  MVStore Store(RT);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&Store](SimThread &T) {
    Store.put(T, Value::string("k"), Value::integer(1));
  });
  RT.schedule(Main, [&Store](SimThread &T) { Store.commit(T); });
  RT.schedule(Main, [&Store](SimThread &T) { Store.commit(T); });
  TraceRecorder Recorder;
  RT.run(Recorder);
  DiagnosticEngine Diags;
  ASSERT_TRUE(Recorder.trace().validate(Diags)) << Diags.toString();
  EXPECT_TRUE(checkTrace(Recorder.trace()).empty());
}

TEST(WorkloadAtomicityTest, SnitchRankRecalculationIsTorn) {
  // Updaters insert fresh hosts while updateScores reads size + samples:
  // the recalculation block ends up in a conflict cycle for some schedule.
  size_t TotalViolations = 0;
  for (uint64_t Seed = 1; Seed != 8 && TotalViolations == 0; ++Seed) {
    SimRuntime RT(Seed);
    DynamicEndpointSnitch Snitch(RT, 6);
    SnitchConfig Config;
    Config.Hosts = 6;
    Config.UpdaterThreads = 3;
    Config.TimingsPerUpdater = 10;
    Config.ScoreRecalcs = 4;
    buildSnitchTest(RT, Snitch, Config);
    TraceRecorder Recorder;
    RT.run(Recorder);
    TotalViolations += checkTrace(Recorder.trace()).size();
  }
  EXPECT_GT(TotalViolations, 0u);
}

TEST(WorkloadAtomicityTest, TraceWithTxMarkersStillValidates) {
  SimRuntime RT(5);
  MVStore Store(RT);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&Store](SimThread &T) { Store.commit(T); });
  TraceRecorder Recorder;
  RT.run(Recorder);
  DiagnosticEngine Diags;
  EXPECT_TRUE(Recorder.trace().validate(Diags)) << Diags.toString();
  bool SawBegin = false, SawEnd = false;
  for (const Event &E : Recorder.trace()) {
    SawBegin |= E.kind() == EventKind::TxBegin;
    SawEnd |= E.kind() == EventKind::TxEnd;
  }
  EXPECT_TRUE(SawBegin);
  EXPECT_TRUE(SawEnd);
}
