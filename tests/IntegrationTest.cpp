//===- tests/IntegrationTest.cpp - end-to-end Fig 1 / Fig 2 pipelines ---------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// End-to-end tests of the full Fig 2 pipeline: specification text ->
/// parser -> translator -> access point representation -> detector, driven
/// by programs running on the simulated runtime (Fig 1's connection
/// example among them), with trace record/replay in between.
///
//===----------------------------------------------------------------------===//

#include "detect/CommutativityDetector.h"
#include "detect/FastTrack.h"
#include "runtime/InstrumentedMap.h"
#include "spec/SpecParser.h"
#include "trace/TraceIO.h"
#include "translate/Translator.h"

#include <gtest/gtest.h>

using namespace crd;

namespace {

const char *DictionarySource = R"(
object dictionary {
  method put(k, v) / p;
  method get(k) / v;
  method size() / r;
  commute put(k1, v1)/p1, put(k2, v2)/p2 :
      k1 != k2 || (v1 == p1 && v2 == p2);
  commute put(k1, v1)/p1, get(k2)/v2 : k1 != k2 || v1 == p1;
  commute put(k1, v1)/p1, size()/r :
      (v1 == nil && p1 == nil) || (v1 != nil && p1 != nil);
  commute get(k1)/v1, get(k2)/v2 : true;
  commute get(k1)/v1, size()/r : true;
  commute size()/r1, size()/r2 : true;
}
)";

/// Runs the Fig 1 program: one thread per host, each storing a connection
/// into a shared dictionary, then joinall and size().
Trace runConnectionsProgram(const std::vector<std::string> &Hosts,
                            uint64_t Seed) {
  SimRuntime RT(Seed);
  InstrumentedMap Dict(RT);
  ThreadId Main = RT.addInitialThread();

  auto Workers = std::make_shared<std::vector<ThreadId>>();
  RT.schedule(Main, [&, Workers](SimThread &T) {
    int64_t NextConnection = 1;
    for (const std::string &Host : Hosts) {
      Value HostKey = Value::string(Host);
      Value Connection = Value::integer(NextConnection++);
      Workers->push_back(T.fork([&Dict, HostKey, Connection](SimThread &T2) {
        Dict.put(T2, HostKey, Connection); // createConnection + store
      }));
    }
  });
  for (size_t W = 0; W != Hosts.size(); ++W)
    RT.schedule(Main, [Workers, W](SimThread &T) { T.join((*Workers)[W]); });
  RT.schedule(Main, [&Dict](SimThread &T) { Dict.size(T); });

  TraceRecorder Recorder;
  RT.run(Recorder);
  return Recorder.take();
}

std::unique_ptr<TranslatedRep> repFromSource() {
  DiagnosticEngine Diags;
  auto Spec = parseObjectSpec(DictionarySource, Diags);
  EXPECT_TRUE(Spec) << Diags.toString();
  if (!Spec)
    return nullptr;
  auto Rep = translateSpec(*Spec, Diags);
  EXPECT_TRUE(Rep) << Diags.toString();
  return Rep;
}

} // namespace

TEST(IntegrationTest, Fig1DuplicateHostsRace) {
  // hosts = ["a.com", "a.com"]: two threads put the same key -> race.
  auto Rep = repFromSource();
  ASSERT_TRUE(Rep);
  Trace T = runConnectionsProgram({"a.com", "a.com"}, /*Seed=*/5);

  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(Rep.get());
  Detector.processTrace(T);
  ASSERT_EQ(Detector.races().size(), 1u);
  EXPECT_EQ(Detector.races()[0].Current.method(), symbol("put"));
  EXPECT_EQ(Detector.distinctRacyObjects(), 1u);
}

TEST(IntegrationTest, Fig1DistinctHostsNoRace) {
  auto Rep = repFromSource();
  ASSERT_TRUE(Rep);
  Trace T = runConnectionsProgram({"a.com", "b.com", "c.com"}, /*Seed=*/5);

  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(Rep.get());
  Detector.processTrace(T);
  // All puts hit different keys; size() runs after joinall. No races —
  // even though every put resizes the dictionary (Fig 4's point: resize
  // conflicts with size, not with itself).
  EXPECT_TRUE(Detector.races().empty());
}

TEST(IntegrationTest, Fig1WithoutJoinallSizeRaces) {
  // Remove the joins: size() now races with the resizing puts.
  SimRuntime RT(9);
  InstrumentedMap Dict(RT);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&Dict](SimThread &T) {
    for (int64_t I = 0; I != 3; ++I) {
      Value HostKey = Value::string("host" + std::to_string(I));
      T.fork([&Dict, HostKey, I](SimThread &T2) {
        Dict.put(T2, HostKey, Value::integer(I + 1));
      });
    }
  });
  RT.schedule(Main, [&Dict](SimThread &T) { Dict.size(T); });

  TraceRecorder Recorder;
  RT.run(Recorder);

  auto Rep = repFromSource();
  ASSERT_TRUE(Rep);
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(Rep.get());
  Detector.processTrace(Recorder.trace());
  // At least one put is unordered with the size() under every schedule in
  // which size() does not run last... under some schedules size() may run
  // before any put has executed, but it still races: the puts come later
  // and are unordered with it. The detector sees races at the later puts'
  // resize points against the active size point (or vice versa).
  EXPECT_GE(Detector.races().size(), 1u);
}

TEST(IntegrationTest, RecordReplayRoundTripPreservesRaces) {
  Trace Original = runConnectionsProgram({"a.com", "a.com", "b.com"}, 7);

  // Serialize and re-parse the trace.
  std::string Text = traceToString(Original);
  DiagnosticEngine Diags;
  auto Replayed = parseTrace(Text, Diags);
  ASSERT_TRUE(Replayed) << Diags.toString();

  auto Rep = repFromSource();
  ASSERT_TRUE(Rep);
  CommutativityRaceDetector D1, D2;
  D1.setDefaultProvider(Rep.get());
  D2.setDefaultProvider(Rep.get());
  D1.processTrace(Original);
  D2.processTrace(*Replayed);
  ASSERT_EQ(D1.races().size(), D2.races().size());
  for (size_t I = 0; I != D1.races().size(); ++I) {
    EXPECT_EQ(D1.races()[I].EventIndex, D2.races()[I].EventIndex);
    EXPECT_EQ(D1.races()[I].Current, D2.races()[I].Current);
  }
}

TEST(IntegrationTest, FastTrackAndRD2SeeDifferentKindsOfProblems) {
  // The check-then-act pattern: two threads do get(k) then put(k, v).
  // FastTrack sees nothing wrong at the memory level beyond the unlocked
  // bucket read; RD2 flags the non-commuting put/get and put/put pairs.
  SimRuntime RT(3);
  InstrumentedMap Dict(RT);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&RT, &Dict](SimThread &T) {
    for (int W = 0; W != 2; ++W) {
      ThreadId C = T.fork([](SimThread &) {});
      RT.schedule(C, [&Dict](SimThread &T2) {
        Value K = Value::string("counter");
        Value Cur = Dict.get(T2, K);
        int64_t N = Cur.isNil() ? 0 : Cur.asInt();
        Dict.put(T2, K, Value::integer(N + 1));
      });
    }
  });
  TraceRecorder Recorder;
  RT.run(Recorder);

  auto Rep = repFromSource();
  ASSERT_TRUE(Rep);
  CommutativityRaceDetector RD2;
  RD2.setDefaultProvider(Rep.get());
  RD2.processTrace(Recorder.trace());
  EXPECT_GE(RD2.races().size(), 1u)
      << "lost-update pattern must surface as a commutativity race";

  FastTrackDetector FT;
  FT.processTrace(Recorder.trace());
  // FastTrack may or may not flag the unlocked bucket read depending on
  // the schedule, but it can never see the lost update as such. We only
  // assert the run completes and reports distinct information.
  for (const MemoryRace &R : FT.races())
    EXPECT_TRUE(R.Var.index() < 32u);
}

TEST(IntegrationTest, MultipleObjectTypesInOnePipeline) {
  DiagnosticEngine Diags;
  auto Specs = parseSpecs(R"(
    object dictionary {
      method put(k, v) / p;
      method get(k) / v;
      method size() / r;
      commute put(k1, v1)/p1, put(k2, v2)/p2 :
          k1 != k2 || (v1 == p1 && v2 == p2);
      commute put(k1, v1)/p1, get(k2)/v2 : k1 != k2 || v1 == p1;
      commute put(k1, v1)/p1, size()/r :
          (v1 == nil && p1 == nil) || (v1 != nil && p1 != nil);
      commute get(k1)/v1, get(k2)/v2 : true;
      commute get(k1)/v1, size()/r : true;
      commute size()/r1, size()/r2 : true;
    }
    object counter {
      method inc();
      method read() / v;
      commute inc(), inc() : true;
      commute inc(), read()/_ : false;
      commute read()/_, read()/_ : true;
    }
  )",
                          Diags);
  ASSERT_TRUE(Specs) << Diags.toString();
  ASSERT_EQ(Specs->size(), 2u);

  auto DictRep = translateSpec((*Specs)[0], Diags);
  auto CtrRep = translateSpec((*Specs)[1], Diags);
  ASSERT_TRUE(DictRep && CtrRep) << Diags.toString();

  CommutativityRaceDetector Detector;
  Detector.bind(ObjectId(10), DictRep.get());
  Detector.bind(ObjectId(20), CtrRep.get());

  // Concurrent: dict put/put on different keys (fine) and counter inc vs
  // read (race).
  Detector.process(Event::fork(ThreadId(0), ThreadId(1)));
  Detector.process(Event::invoke(
      ThreadId(0), Action(ObjectId(10), symbol("put"),
                          {Value::string("a"), Value::integer(1)},
                          Value::nil())));
  Detector.process(Event::invoke(
      ThreadId(1), Action(ObjectId(10), symbol("put"),
                          {Value::string("b"), Value::integer(2)},
                          Value::nil())));
  Detector.process(Event::invoke(ThreadId(0),
                                 Action(ObjectId(20), symbol("inc"), {},
                                        std::vector<Value>{})));
  Detector.process(Event::invoke(
      ThreadId(1), Action(ObjectId(20), symbol("read"), {},
                          Value::integer(0))));
  ASSERT_EQ(Detector.races().size(), 1u);
  EXPECT_EQ(Detector.races()[0].Current.object(), ObjectId(20));
}
