//===- tests/ClockKernelTest.cpp - SIMD vs scalar clock kernels --------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential tests for the vector-clock join/leq kernels: the dispatched
/// operations (SSE2/SSE4.1 on hosts that have them, the scalar reference in
/// a CRD_DISABLE_SIMD build) must be bit-identical to the always-compiled
/// scalar twins — same resulting components, same Changed/leq answer —
/// across every width mod the 4-lane group size, the SmallVec inline/heap
/// boundary at 8/9 components, and the EpochClock epoch-advance/escalation/
/// shared-join paths. Race bit-identity across SIMD and scalar builds rests
/// on exactly this equivalence: a race report renders the accumulated
/// representation, so a single diverging lane or Changed bit would leak
/// into the committed reports.
///
//===----------------------------------------------------------------------===//

#include "support/EpochClock.h"
#include "support/VectorClock.h"

#include "gtest/gtest.h"

#include <cstdint>
#include <random>
#include <vector>

using namespace crd;

namespace {

VectorClock makeClock(const std::vector<uint32_t> &Components) {
  return VectorClock(Components);
}

std::vector<uint32_t> randomComponents(std::mt19937 &Rng, size_t N,
                                       uint32_t Max) {
  // Draw from a range that includes 0 (implicit components), small values
  // (realistic local times), and values straddling 0x80000000 (the SSE2
  // bias trick's sign boundary).
  std::uniform_int_distribution<uint32_t> Dist(0, Max);
  std::vector<uint32_t> Out(N);
  for (uint32_t &V : Out)
    V = Dist(Rng);
  return Out;
}

// Widths 0..21 cover every residue mod 4 with 0-5 full SIMD groups, and
// cross the SmallVec<uint32_t, 8> inline/heap boundary in both operands.
constexpr size_t MaxWidth = 21;

TEST(ClockKernelTest, JoinMatchesScalarAcrossWidths) {
  std::mt19937 Rng(2014);
  for (size_t NA = 0; NA <= MaxWidth; ++NA) {
    for (size_t NB = 0; NB <= MaxWidth; ++NB) {
      for (int Rep = 0; Rep != 8; ++Rep) {
        std::vector<uint32_t> A = randomComponents(Rng, NA, 6);
        std::vector<uint32_t> B = randomComponents(Rng, NB, 6);
        VectorClock Simd = makeClock(A), Scalar = makeClock(A);
        VectorClock Other = makeClock(B);
        bool ChangedSimd = Simd.joinWith(Other);
        bool ChangedScalar = Scalar.joinWithScalar(Other);
        ASSERT_EQ(ChangedSimd, ChangedScalar)
            << "widths " << NA << "x" << NB;
        ASSERT_TRUE(Simd == Scalar) << "widths " << NA << "x" << NB;
      }
    }
  }
}

TEST(ClockKernelTest, LeqMatchesScalarAcrossWidths) {
  std::mt19937 Rng(99);
  for (size_t NA = 0; NA <= MaxWidth; ++NA) {
    for (size_t NB = 0; NB <= MaxWidth; ++NB) {
      for (int Rep = 0; Rep != 8; ++Rep) {
        VectorClock A = makeClock(randomComponents(Rng, NA, 4));
        VectorClock B = makeClock(randomComponents(Rng, NB, 4));
        ASSERT_EQ(A.leq(B), A.leqScalar(B)) << "widths " << NA << "x" << NB;
        ASSERT_EQ(B.leq(A), B.leqScalar(A)) << "widths " << NA << "x" << NB;
      }
    }
  }
}

// The SSE2 fallback maps unsigned order onto signed compares by biasing
// with 0x80000000; exercise lanes on both sides of that boundary and at
// the extremes.
TEST(ClockKernelTest, UnsignedBiasBoundary) {
  std::vector<uint32_t> Extremes = {0,          1,          0x7FFFFFFFu,
                                    0x80000000u, 0x80000001u, 0xFFFFFFFFu};
  std::mt19937 Rng(7);
  std::uniform_int_distribution<size_t> Pick(0, Extremes.size() - 1);
  for (int Rep = 0; Rep != 200; ++Rep) {
    std::vector<uint32_t> A(8), B(8);
    for (size_t I = 0; I != 8; ++I) {
      A[I] = Extremes[Pick(Rng)];
      B[I] = Extremes[Pick(Rng)];
    }
    VectorClock Simd = makeClock(A), Scalar = makeClock(A);
    VectorClock Other = makeClock(B);
    ASSERT_EQ(makeClock(A).leq(Other), makeClock(A).leqScalar(Other));
    ASSERT_EQ(Simd.joinWith(Other), Scalar.joinWithScalar(Other));
    ASSERT_TRUE(Simd == Scalar);
  }
}

// joinWith must report Changed = false on a self-join (all-equal lanes) and
// true when exactly one lane grows, wherever that lane sits in the group.
TEST(ClockKernelTest, ChangedSignalPerLane) {
  for (size_t N = 1; N <= 12; ++N) {
    std::vector<uint32_t> Base(N, 5);
    VectorClock Same = makeClock(Base);
    EXPECT_FALSE(Same.joinWith(makeClock(Base))) << "width " << N;
    EXPECT_FALSE(Same.joinWithScalar(makeClock(Base))) << "width " << N;
    for (size_t Lane = 0; Lane != N; ++Lane) {
      std::vector<uint32_t> Grown = Base;
      Grown[Lane] = 6;
      VectorClock Simd = makeClock(Base), Scalar = makeClock(Base);
      EXPECT_TRUE(Simd.joinWith(makeClock(Grown)))
          << "width " << N << " lane " << Lane;
      EXPECT_TRUE(Scalar.joinWithScalar(makeClock(Grown)))
          << "width " << N << " lane " << Lane;
      EXPECT_TRUE(Simd == Scalar);
    }
  }
}

// Growing a clock across the SmallVec inline capacity (8 -> 9 components)
// through a join must behave exactly like the scalar twin: the Changed
// signal comes from the resize, and the spilled storage still compares
// equal component-for-component.
TEST(ClockKernelTest, InlineToHeapSpillDuringJoin) {
  for (size_t From : {size_t(7), size_t(8)}) {
    for (size_t To : {size_t(8), size_t(9), size_t(16), size_t(17)}) {
      if (To <= From)
        continue;
      std::vector<uint32_t> Short(From, 3);
      std::vector<uint32_t> Long(To, 2);
      Long.back() = 9; // Keep the widened clock normalized.
      VectorClock Simd = makeClock(Short), Scalar = makeClock(Short);
      ASSERT_TRUE(Simd.joinWith(makeClock(Long)));
      ASSERT_TRUE(Scalar.joinWithScalar(makeClock(Long)));
      ASSERT_TRUE(Simd == Scalar) << From << " -> " << To;
      ASSERT_EQ(Simd.size(), To);
    }
  }
}

// EpochClock: the dispatched accumulate/leq and their scalar twins must
// agree on the Changed signal and the representation through all three
// paths — epoch advance, escalation on a concurrent accumulate, and
// shared-clock joins from then on.
TEST(ClockKernelTest, EpochAccumulateMatchesScalar) {
  auto threadClock = [](unsigned Tid, uint32_t Time, size_t Width) {
    std::vector<uint32_t> C(std::max<size_t>(Width, Tid + 1), 0);
    C[Tid] = Time;
    return makeClock(C);
  };

  for (size_t Width : {size_t(2), size_t(4), size_t(9)}) {
    EpochClock Simd, Scalar;
    auto step = [&](const VectorClock &C, unsigned Tid) {
      bool A = Simd.accumulate(C, ThreadId(Tid));
      bool B = Scalar.accumulateScalar(C, ThreadId(Tid));
      ASSERT_EQ(A, B);
      ASSERT_EQ(Simd.isShared(), Scalar.isShared());
      ASSERT_TRUE(Simd.toClock() == Scalar.toClock());
    };

    // Epoch advances: same thread, growing time (second identical
    // accumulate must report Changed = false on both).
    step(threadClock(0, 1, Width), 0);
    step(threadClock(0, 1, Width), 0);
    step(threadClock(0, 3, Width), 0);
    ASSERT_TRUE(Simd.isEpoch());

    // HB-ordered cross-thread handoff keeps the epoch compressed.
    {
      std::vector<uint32_t> C(std::max<size_t>(Width, 2), 0);
      C[0] = 3;
      C[1] = 5;
      step(makeClock(C), 1);
      ASSERT_TRUE(Simd.isEpoch());
    }

    // A concurrent accumulate (thread 0 hasn't seen thread 1's epoch)
    // escalates both to the shared representation.
    step(threadClock(0, 4, Width), 0);
    ASSERT_TRUE(Simd.isShared());

    // Shared joins route through the vector kernels; keep probing leq
    // equivalence as the shared clock widens past the inline capacity.
    for (unsigned Tid = 2; Tid < 11; ++Tid) {
      step(threadClock(Tid, Tid + 1, Width), Tid);
      VectorClock Probe = threadClock(Tid % 3, 2, Width);
      ASSERT_EQ(Simd.leq(Probe), Scalar.leqScalar(Probe));
    }
  }
}

// Probe equivalence at the epoch boundary itself: leq on a compressed
// epoch is an O(1) component compare on both variants.
TEST(ClockKernelTest, EpochLeqMatchesScalarWhileCompressed) {
  EpochClock E;
  VectorClock C2 = makeClock({0, 2});
  ASSERT_TRUE(E.accumulate(C2, ThreadId(1)));
  ASSERT_TRUE(E.isEpoch());
  for (uint32_t T : {1u, 2u, 3u}) {
    VectorClock Probe = makeClock({5, T});
    EXPECT_EQ(E.leq(Probe), E.leqScalar(Probe)) << "probe time " << T;
    EXPECT_EQ(E.leq(Probe), 2 <= T);
  }
}

} // namespace
