//===- tests/SetPipelineTest.cpp - set object end-to-end pipeline -------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// End-to-end coverage for the *set* abstract type (the paper's flagship
/// example of a specification ECL captures but SIMPLE cannot): simulated
/// InstrumentedSet executions -> recorded traces -> translated setSpec()
/// representation -> Algorithm 1, cross-checked against the direct
/// detector and the abstract replay semantics.
///
//===----------------------------------------------------------------------===//

#include "detect/CommutativityDetector.h"
#include "detect/DirectDetector.h"
#include "replay/Determinism.h"
#include "runtime/InstrumentedSet.h"
#include "spec/Builtins.h"
#include "translate/Translator.h"

#include <gtest/gtest.h>

#include <set>

using namespace crd;

namespace {

const TranslatedRep &setRep() {
  static std::unique_ptr<TranslatedRep> Rep = [] {
    DiagnosticEngine Diags;
    auto R = translateSpec(setSpec(), Diags);
    EXPECT_TRUE(R) << Diags.toString();
    return R;
  }();
  return *Rep;
}

AbstractHeap setHeap() {
  return AbstractHeap(
      [](ObjectId) -> std::unique_ptr<AbstractObject> {
        return std::make_unique<AbstractSet>();
      });
}

std::set<size_t> racyEvents(const std::vector<CommutativityRace> &Races) {
  std::set<size_t> Out;
  for (const CommutativityRace &R : Races)
    Out.insert(R.EventIndex);
  return Out;
}

} // namespace

TEST(InstrumentedSetTest, FunctionalBehavior) {
  SimRuntime RT(1);
  InstrumentedSet Set(RT);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&Set](SimThread &T) {
    EXPECT_TRUE(Set.add(T, Value::string("x")));
    EXPECT_FALSE(Set.add(T, Value::string("x")));
    EXPECT_TRUE(Set.contains(T, Value::string("x")));
    EXPECT_FALSE(Set.contains(T, Value::string("y")));
    EXPECT_EQ(Set.size(T), 1);
    EXPECT_TRUE(Set.remove(T, Value::string("x")));
    EXPECT_FALSE(Set.remove(T, Value::string("x")));
    EXPECT_EQ(Set.size(T), 0);
  });
  NullSink Sink;
  RT.run(Sink);
}

TEST(InstrumentedSetTest, EmitsActionsMatchingAbstractSemantics) {
  SimRuntime RT(2);
  InstrumentedSet Set(RT);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&Set](SimThread &T) {
    Set.add(T, Value::integer(1));
    Set.add(T, Value::integer(1));
    Set.remove(T, Value::integer(1));
    Set.contains(T, Value::integer(1));
    Set.size(T);
  });
  TraceRecorder Recorder;
  RT.run(Recorder);

  // The recorded action stream replays feasibly under AbstractSet.
  ReplayResult R = replayTrace(Recorder.trace(), setHeap());
  EXPECT_TRUE(R.Feasible) << "failed at event " << R.FailedAt;
}

TEST(SetPipelineTest, DuplicateAddsRace) {
  // Two threads concurrently add the same element: one add changes the
  // set, the other does not — they do not commute (returns differ by
  // order), so a commutativity race must be reported.
  SimRuntime RT(3);
  InstrumentedSet Set(RT);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&Set](SimThread &T) {
    for (int W = 0; W != 2; ++W)
      T.fork([&Set](SimThread &T2) { Set.add(T2, Value::string("dup")); });
  });
  TraceRecorder Recorder;
  RT.run(Recorder);

  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&setRep());
  Detector.processTrace(Recorder.trace());
  EXPECT_EQ(Detector.races().size(), 1u);
}

TEST(SetPipelineTest, DisjointElementsNoRace) {
  SimRuntime RT(3);
  InstrumentedSet Set(RT);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&Set](SimThread &T) {
    for (int W = 0; W != 3; ++W)
      T.fork([&Set, W](SimThread &T2) { Set.add(T2, Value::integer(W)); });
  });
  TraceRecorder Recorder;
  RT.run(Recorder);

  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&setRep());
  Detector.processTrace(Recorder.trace());
  // Every add succeeds (changes the set) — but adds of different elements
  // commute, and there is no size observer.
  EXPECT_TRUE(Detector.races().empty());
}

TEST(SetPipelineTest, AddVersusSizeRace) {
  SimRuntime RT(4);
  InstrumentedSet Set(RT);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&Set](SimThread &T) {
    T.fork([&Set](SimThread &T2) { Set.add(T2, Value::integer(42)); });
  });
  RT.schedule(Main, [&Set](SimThread &T) { Set.size(T); });
  TraceRecorder Recorder;
  RT.run(Recorder);

  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&setRep());
  Detector.processTrace(Recorder.trace());
  EXPECT_EQ(Detector.races().size(), 1u);
  EXPECT_EQ(Detector.distinctRacyObjects(), 1u);
}

TEST(SetPipelineTest, FailedMutatorsCommuteWithSize) {
  // A no-op add (element already present, added before the fork) does not
  // change the set and therefore commutes with a concurrent size().
  SimRuntime RT(4);
  InstrumentedSet Set(RT);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main,
              [&Set](SimThread &T) { Set.add(T, Value::integer(42)); });
  RT.schedule(Main, [&Set](SimThread &T) {
    T.fork([&Set](SimThread &T2) { Set.add(T2, Value::integer(42)); });
  });
  RT.schedule(Main, [&Set](SimThread &T) { Set.size(T); });
  TraceRecorder Recorder;
  RT.run(Recorder);

  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&setRep());
  Detector.processTrace(Recorder.trace());
  EXPECT_TRUE(Detector.races().empty());
}

TEST(SetPipelineTest, Theorem51AgreementOnRandomSetTraces) {
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    SimRuntime RT(Seed);
    InstrumentedSet Set(RT);
    ThreadId Main = RT.addInitialThread();
    RT.schedule(Main, [&RT, &Set](SimThread &T) {
      for (unsigned W = 0; W != 3; ++W) {
        ThreadId Tid = T.fork([](SimThread &) {});
        for (unsigned Q = 0; Q != 25; ++Q)
          RT.schedule(Tid, [&Set](SimThread &T2) {
            Value Key = Value::integer(static_cast<int64_t>(T2.random(4)));
            switch (T2.random(4)) {
            case 0:
              Set.add(T2, Key);
              break;
            case 1:
              Set.remove(T2, Key);
              break;
            case 2:
              Set.contains(T2, Key);
              break;
            case 3:
              Set.size(T2);
              break;
            }
          });
      }
    });
    TraceRecorder Recorder;
    RT.run(Recorder);

    CommutativityRaceDetector Alg1;
    Alg1.setDefaultProvider(&setRep());
    Alg1.processTrace(Recorder.trace());

    DirectCommutativityDetector Direct;
    Direct.setDefaultSpec(&setSpec());
    Direct.processTrace(Recorder.trace());

    EXPECT_EQ(racyEvents(Alg1.races()), racyEvents(Direct.races()))
        << "seed " << Seed;
  }
}

TEST(SetPipelineTest, RaceFreeSetTraceIsDeterministic) {
  // Disjoint keys per thread, joined before the final size: race-free and
  // hence deterministic (Theorem 5.2 for the set type).
  SimRuntime RT(9);
  InstrumentedSet Set(RT);
  ThreadId Main = RT.addInitialThread();
  auto Workers = std::make_shared<std::vector<ThreadId>>();
  RT.schedule(Main, [&Set, Workers](SimThread &T) {
    for (int W = 0; W != 3; ++W)
      Workers->push_back(T.fork([&Set, W](SimThread &T2) {
        Set.add(T2, Value::integer(W));
        Set.contains(T2, Value::integer(W));
      }));
  });
  for (int W = 0; W != 3; ++W)
    RT.schedule(Main, [Workers, W](SimThread &T) { T.join((*Workers)[W]); });
  RT.schedule(Main, [&Set](SimThread &T) { Set.size(T); });
  TraceRecorder Recorder;
  RT.run(Recorder);

  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&setRep());
  Detector.processTrace(Recorder.trace());
  ASSERT_TRUE(Detector.races().empty());

  DeterminismReport Report =
      checkDeterminism(Recorder.trace(), setHeap(), /*EnumerationLimit=*/200,
                       /*Samples=*/50, /*Seed=*/1);
  EXPECT_TRUE(Report.deterministic()) << Report.Witness;
}
