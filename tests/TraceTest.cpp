//===- tests/TraceTest.cpp - trace model and text format tests ----------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceBuilder.h"
#include "trace/TraceIO.h"

#include <gtest/gtest.h>

#include <random>

using namespace crd;

namespace {

Action putAction(uint32_t Obj, std::string_view Key, int64_t Val,
                 Value Prev = Value::nil()) {
  return Action(ObjectId(Obj), symbol("put"),
                {Value::string(Key), Value::integer(Val)}, Prev);
}

} // namespace

//===----------------------------------------------------------------------===//
// Action
//===----------------------------------------------------------------------===//

TEST(ActionTest, FlattenedValues) {
  Action A = putAction(1, "a.com", 7);
  EXPECT_EQ(A.numValues(), 3u);
  EXPECT_EQ(A.value(0), Value::string("a.com"));
  EXPECT_EQ(A.value(1), Value::integer(7));
  EXPECT_EQ(A.value(2), Value::nil());
  std::vector<Value> Flat = A.values();
  ASSERT_EQ(Flat.size(), 3u);
  EXPECT_EQ(Flat[2], Value::nil());
}

TEST(ActionTest, Printing) {
  EXPECT_EQ(putAction(1, "a.com", 7).toString(), "o1.put(\"a.com\", 7)/nil");
  Action Size(ObjectId(2), symbol("size"), {}, Value::integer(3));
  EXPECT_EQ(Size.toString(), "o2.size()/3");
  Action NoRet(ObjectId(0), symbol("inc"), {}, std::vector<Value>{});
  EXPECT_EQ(NoRet.toString(), "o0.inc()");
}

TEST(ActionTest, Equality) {
  EXPECT_EQ(putAction(1, "k", 1), putAction(1, "k", 1));
  EXPECT_NE(putAction(1, "k", 1), putAction(1, "k", 2));
  EXPECT_NE(putAction(1, "k", 1), putAction(2, "k", 1));
}

//===----------------------------------------------------------------------===//
// Event
//===----------------------------------------------------------------------===//

TEST(EventTest, KindsAndAccessors) {
  Event F = Event::fork(ThreadId(0), ThreadId(1));
  EXPECT_TRUE(F.isSync());
  EXPECT_EQ(F.other(), ThreadId(1));

  Event A = Event::acquire(ThreadId(2), LockId(5));
  EXPECT_EQ(A.lock(), LockId(5));

  Event R = Event::read(ThreadId(1), VarId(9));
  EXPECT_TRUE(R.isMemoryAccess());
  EXPECT_EQ(R.var(), VarId(9));

  Event I = Event::invoke(ThreadId(3), putAction(1, "k", 2));
  EXPECT_TRUE(I.isInvoke());
  EXPECT_EQ(I.action().method(), symbol("put"));
}

TEST(EventTest, Printing) {
  EXPECT_EQ(Event::fork(ThreadId(0), ThreadId(2)).toString(), "T0: fork T2");
  EXPECT_EQ(Event::join(ThreadId(1), ThreadId(2)).toString(), "T1: join T2");
  EXPECT_EQ(Event::acquire(ThreadId(1), LockId(0)).toString(), "T1: acq L0");
  EXPECT_EQ(Event::release(ThreadId(1), LockId(0)).toString(), "T1: rel L0");
  EXPECT_EQ(Event::read(ThreadId(0), VarId(3)).toString(), "T0: read V3");
  EXPECT_EQ(Event::write(ThreadId(0), VarId(4)).toString(), "T0: write V4");
  EXPECT_EQ(Event::invoke(ThreadId(2), putAction(1, "a.com", 7)).toString(),
            "T2: o1.put(\"a.com\", 7)/nil");
}

//===----------------------------------------------------------------------===//
// Trace validation
//===----------------------------------------------------------------------===//

TEST(TraceValidateTest, WellFormedFig1StyleTrace) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .fork(0, 2)
                .invoke(1, 5, "put", {Value::string("a.com")}, Value::nil())
                .invoke(2, 5, "put", {Value::string("a.com")}, Value::nil())
                .join(0, 1)
                .join(0, 2)
                .invoke(0, 5, "size", {}, Value::integer(1))
                .take();
  DiagnosticEngine Diags;
  EXPECT_TRUE(T.validate(Diags));
  EXPECT_EQ(T.numThreads(), 3u);
}

TEST(TraceValidateTest, ForkOfExistingThread) {
  Trace T = TraceBuilder().fork(0, 1).fork(2, 1).take();
  DiagnosticEngine Diags;
  EXPECT_FALSE(T.validate(Diags));
}

TEST(TraceValidateTest, SelfForkAndSelfJoin) {
  DiagnosticEngine D1, D2;
  EXPECT_FALSE(TraceBuilder().fork(1, 1).take().validate(D1));
  EXPECT_FALSE(TraceBuilder().fork(0, 1).join(1, 1).take().validate(D2));
}

TEST(TraceValidateTest, JoinOfUnknownThread) {
  Trace T = TraceBuilder().join(0, 7).take();
  DiagnosticEngine Diags;
  EXPECT_FALSE(T.validate(Diags));
}

TEST(TraceValidateTest, EventAfterJoinRejected) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .join(0, 1)
                .read(1, 0) // Thread 1 acts after being joined.
                .take();
  DiagnosticEngine Diags;
  EXPECT_FALSE(T.validate(Diags));
}

TEST(TraceValidateTest, LockDiscipline) {
  DiagnosticEngine D1;
  EXPECT_TRUE(
      TraceBuilder().acquire(0, 0).release(0, 0).take().validate(D1));

  DiagnosticEngine D2;
  EXPECT_FALSE(TraceBuilder().release(0, 0).take().validate(D2));

  DiagnosticEngine D3;
  EXPECT_FALSE(TraceBuilder()
                   .fork(0, 1)
                   .acquire(0, 0)
                   .release(1, 0) // Wrong thread releases.
                   .take()
                   .validate(D3));

  DiagnosticEngine D4;
  EXPECT_FALSE(TraceBuilder()
                   .fork(0, 1)
                   .acquire(0, 0)
                   .acquire(1, 0) // Acquire while held.
                   .take()
                   .validate(D4));
}

//===----------------------------------------------------------------------===//
// Trace text format
//===----------------------------------------------------------------------===//

TEST(TraceIOTest, RoundTrip) {
  Trace Original = TraceBuilder()
                       .fork(0, 2)
                       .invoke(2, 1, "put",
                               {Value::string("a.com"), Value::integer(1)},
                               Value::nil())
                       .acquire(2, 0)
                       .write(2, 4)
                       .release(2, 0)
                       .join(0, 2)
                       .invoke(0, 1, "size", {}, Value::integer(1))
                       .read(0, 3)
                       .take();

  std::string Text = traceToString(Original);
  DiagnosticEngine Diags;
  auto Parsed = parseTrace(Text, Diags);
  ASSERT_TRUE(Parsed) << Diags.toString();
  ASSERT_EQ(Parsed->size(), Original.size());
  EXPECT_EQ(traceToString(*Parsed), Text);
}

TEST(TraceIOTest, ParsesCommentsAndBlankLines) {
  DiagnosticEngine Diags;
  auto T = parseTrace("# header comment\n"
                      "\n"
                      "T0: fork T1   # trailing comment\n"
                      "T1: o1.get(\"k\")/nil\n",
                      Diags);
  ASSERT_TRUE(T) << Diags.toString();
  EXPECT_EQ(T->size(), 2u);
}

TEST(TraceIOTest, ParsesAllValueKinds) {
  DiagnosticEngine Diags;
  auto T = parseTrace("T0: o1.put(\"k\", -3)/nil\n"
                      "T0: o1.put(true, false)/nil\n"
                      "T0: o1.m()\n",
                      Diags);
  ASSERT_TRUE(T) << Diags.toString();
  const Action &A0 = (*T)[0].action();
  EXPECT_EQ(A0.args()[1], Value::integer(-3));
  const Action &A1 = (*T)[1].action();
  EXPECT_EQ(A1.args()[0], Value::boolean(true));
  const Action &A2 = (*T)[2].action();
  EXPECT_TRUE(A2.rets().empty());
}

TEST(TraceIOTest, StringEscapes) {
  DiagnosticEngine Diags;
  auto T = parseTrace("T0: o1.put(\"a\\\"b\\\\c\\n\", 1)/nil\n", Diags);
  ASSERT_TRUE(T) << Diags.toString();
  EXPECT_EQ((*T)[0].action().args()[0], Value::string("a\"b\\c\n"));
}

TEST(TraceIOTest, ReportsErrorsWithLocations) {
  DiagnosticEngine Diags;
  auto T = parseTrace("T0: fork T1\n"
                      "T1: bogus ???\n"
                      "T0: join T1\n",
                      Diags);
  EXPECT_FALSE(T);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.all().front().Loc.Line, 2u);
}

TEST(TraceIOTest, RecoversPerLine) {
  DiagnosticEngine Diags;
  parseTrace("T0: fork\n"
             "T0: join\n",
             Diags);
  // One diagnostic per bad line (recovery resumes at the newline).
  EXPECT_GE(Diags.errorCount(), 2u);
}

TEST(TraceIOTest, RejectsUnterminatedString) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseTrace("T0: o1.put(\"oops, 1)/nil\n", Diags));
}

TEST(TraceIOTest, RejectsMissingColon) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseTrace("T0 fork T1\n", Diags));
}

TEST(TraceIOTest, MultiReturnAndTxRoundTrip) {
  Trace Original =
      TraceBuilder()
          .txBegin(0)
          .invoke(0, 1, "pop", {},
                  std::vector<Value>{Value::integer(7), Value::boolean(true)})
          .txEnd(0)
          .take();
  std::string Text = traceToString(Original);
  EXPECT_NE(Text.find("o1.pop()/7/true"), std::string::npos);
  DiagnosticEngine Diags;
  auto Parsed = parseTrace(Text, Diags);
  ASSERT_TRUE(Parsed) << Diags.toString();
  EXPECT_EQ(traceToString(*Parsed), Text);
  ASSERT_EQ((*Parsed)[1].action().rets().size(), 2u);
}

TEST(TraceIOTest, RandomTraceRoundTripProperty) {
  std::mt19937_64 Rng(99);
  for (int Iteration = 0; Iteration != 20; ++Iteration) {
    TraceBuilder TB;
    uint32_t Threads = 1;
    for (int I = 0; I != 60; ++I) {
      uint32_t Tid = static_cast<uint32_t>(Rng() % Threads);
      switch (Rng() % 7) {
      case 0:
        TB.fork(Tid, Threads++);
        break;
      case 1:
        TB.read(Tid, static_cast<uint32_t>(Rng() % 8));
        break;
      case 2:
        TB.write(Tid, static_cast<uint32_t>(Rng() % 8));
        break;
      case 3:
        TB.invoke(Tid, static_cast<uint32_t>(Rng() % 3), "put",
                  {Value::integer(static_cast<int64_t>(Rng() % 5)),
                   Value::string("v" + std::to_string(Rng() % 3))},
                  Rng() % 2 ? Value::nil() : Value::boolean(true));
        break;
      case 4:
        TB.invoke(Tid, static_cast<uint32_t>(Rng() % 3), "size", {},
                  Value::integer(static_cast<int64_t>(Rng() % 9)));
        break;
      case 5:
        TB.acquire(Tid, static_cast<uint32_t>(Rng() % 2 + 100 * Tid));
        TB.release(Tid, static_cast<uint32_t>(Rng() % 2 + 100 * Tid));
        break;
      case 6:
        TB.invoke(Tid, static_cast<uint32_t>(Rng() % 3), "m",
                  {Value::integer(-5)}, std::vector<Value>{});
        break;
      }
    }
    Trace Original = TB.take();
    std::string Text = traceToString(Original);
    DiagnosticEngine Diags;
    auto Parsed = parseTrace(Text, Diags);
    ASSERT_TRUE(Parsed) << Diags.toString() << "\n" << Text;
    EXPECT_EQ(traceToString(*Parsed), Text);
    EXPECT_EQ(Parsed->size(), Original.size());
  }
}

TEST(TraceIOTest, EmptyInputIsEmptyTrace) {
  DiagnosticEngine Diags;
  auto T = parseTrace("", Diags);
  ASSERT_TRUE(T);
  EXPECT_TRUE(T->empty());
}
