//===- tests/RuntimeTest.cpp - simulated runtime tests ------------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "runtime/InstrumentedMap.h"
#include "runtime/SimRuntime.h"
#include "trace/TraceIO.h"

#include <gtest/gtest.h>

using namespace crd;

TEST(SimRuntimeTest, SingleThreadRunsStepsInOrder) {
  SimRuntime RT(1);
  ThreadId Main = RT.addInitialThread();
  std::vector<int> Order;
  for (int I = 0; I != 5; ++I)
    RT.schedule(Main, [&Order, I](SimThread &) { Order.push_back(I); });
  NullSink Sink;
  EXPECT_EQ(RT.run(Sink), 5u);
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimRuntimeTest, DeferredStepsRunNextInDeferOrder) {
  SimRuntime RT(1);
  ThreadId Main = RT.addInitialThread();
  std::vector<std::string> Order;
  RT.schedule(Main, [&Order](SimThread &T) {
    Order.push_back("a");
    T.defer([&Order](SimThread &) { Order.push_back("a1"); });
    T.defer([&Order](SimThread &) { Order.push_back("a2"); });
  });
  RT.schedule(Main, [&Order](SimThread &) { Order.push_back("b"); });
  NullSink Sink;
  RT.run(Sink);
  EXPECT_EQ(Order, (std::vector<std::string>{"a", "a1", "a2", "b"}));
}

TEST(SimRuntimeTest, ForkEmitsEventAndRunsChild) {
  SimRuntime RT(1);
  ThreadId Main = RT.addInitialThread();
  bool ChildRan = false;
  RT.schedule(Main, [&ChildRan](SimThread &T) {
    T.fork([&ChildRan](SimThread &) { ChildRan = true; });
  });
  TraceRecorder Recorder;
  RT.run(Recorder);
  EXPECT_TRUE(ChildRan);
  ASSERT_GE(Recorder.trace().size(), 1u);
  EXPECT_EQ(Recorder.trace()[0].kind(), EventKind::Fork);
}

TEST(SimRuntimeTest, JoinBlocksUntilTargetFinishes) {
  SimRuntime RT(7);
  ThreadId Main = RT.addInitialThread();
  std::vector<std::string> Order;
  RT.schedule(Main, [&RT, &Order](SimThread &T) {
    ThreadId Child = T.fork([&Order](SimThread &) { Order.push_back("c1"); });
    RT.schedule(Child, [&Order](SimThread &) { Order.push_back("c2"); });
    T.join(Child);
  });
  RT.schedule(Main, [&Order](SimThread &) { Order.push_back("after-join"); });
  TraceRecorder Recorder;
  RT.run(Recorder);
  EXPECT_EQ(Order, (std::vector<std::string>{"c1", "c2", "after-join"}));
  // The recorded trace is well-formed (fork before child events, join after).
  DiagnosticEngine Diags;
  EXPECT_TRUE(Recorder.trace().validate(Diags)) << Diags.toString();
}

TEST(SimRuntimeTest, DeterministicGivenSeed) {
  auto Run = [](uint64_t Seed) {
    SimRuntime RT(Seed);
    InstrumentedMap Map(RT);
    ThreadId Main = RT.addInitialThread();
    RT.schedule(Main, [&RT, &Map](SimThread &T) {
      for (int W = 0; W != 3; ++W) {
        ThreadId C = T.fork([](SimThread &) {});
        for (int I = 0; I != 5; ++I)
          RT.schedule(C, [&Map, W, I](SimThread &T2) {
            Map.put(T2, Value::integer(W * 5 + I), Value::integer(I));
          });
      }
    });
    TraceRecorder Recorder;
    RT.run(Recorder);
    return traceToString(Recorder.trace());
  };
  EXPECT_EQ(Run(42), Run(42));
  EXPECT_NE(Run(42), Run(43));
}

TEST(SimRuntimeTest, InterleavesThreads) {
  // With two busy threads, some schedule interleaves them (not strictly
  // sequential), for at least one of a few seeds.
  bool Interleaved = false;
  for (uint64_t Seed = 0; Seed != 5 && !Interleaved; ++Seed) {
    SimRuntime RT(Seed);
    ThreadId Main = RT.addInitialThread();
    std::vector<uint32_t> Order;
    RT.schedule(Main, [&RT, &Order](SimThread &T) {
      for (int W = 0; W != 2; ++W) {
        ThreadId C = T.fork([](SimThread &) {});
        for (int I = 0; I != 10; ++I)
          RT.schedule(C, [&Order](SimThread &T2) {
            Order.push_back(T2.id().index());
          });
      }
    });
    NullSink Sink;
    RT.run(Sink);
    for (size_t I = 1; I + 1 < Order.size(); ++I)
      if (Order[I] != Order[I - 1] && Order[I] != Order[I + 1])
        Interleaved = true;
  }
  EXPECT_TRUE(Interleaved);
}

TEST(SimRuntimeTest, NullSinkSuppressesEventMaterialization) {
  SimRuntime RT(1);
  InstrumentedMap Map(RT);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&Map](SimThread &T) {
    Map.put(T, Value::integer(1), Value::integer(2));
  });
  NullSink Sink;
  RT.run(Sink);
  EXPECT_EQ(Map.uninstrumentedSize(), 1u);
}

//===----------------------------------------------------------------------===//
// InstrumentedMap
//===----------------------------------------------------------------------===//

TEST(InstrumentedMapTest, FunctionalBehavior) {
  SimRuntime RT(1);
  InstrumentedMap Map(RT);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&Map](SimThread &T) {
    EXPECT_EQ(Map.put(T, Value::string("k"), Value::integer(1)), Value::nil());
    EXPECT_EQ(Map.put(T, Value::string("k"), Value::integer(2)),
              Value::integer(1));
    EXPECT_EQ(Map.get(T, Value::string("k")), Value::integer(2));
    EXPECT_EQ(Map.get(T, Value::string("absent")), Value::nil());
    EXPECT_EQ(Map.size(T), 1);
    // Storing nil removes.
    EXPECT_EQ(Map.put(T, Value::string("k"), Value::nil()),
              Value::integer(2));
    EXPECT_EQ(Map.size(T), 0);
    // putIfAbsent.
    EXPECT_EQ(Map.putIfAbsent(T, Value::string("j"), Value::integer(5)),
              Value::nil());
    EXPECT_EQ(Map.putIfAbsent(T, Value::string("j"), Value::integer(9)),
              Value::integer(5));
    EXPECT_EQ(Map.get(T, Value::string("j")), Value::integer(5));
  });
  NullSink Sink;
  RT.run(Sink);
}

TEST(InstrumentedMapTest, EmitsActionAndMemoryEvents) {
  SimRuntime RT(1);
  InstrumentedMap Map(RT);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&Map](SimThread &T) {
    Map.put(T, Value::string("k"), Value::integer(1));
    Map.get(T, Value::string("k"));
    Map.size(T);
  });
  TraceRecorder Recorder;
  RT.run(Recorder);
  const Trace &T = Recorder.trace();

  size_t Invokes = 0, Reads = 0, Writes = 0, Acquires = 0, Releases = 0;
  for (const Event &E : T) {
    switch (E.kind()) {
    case EventKind::Invoke:
      ++Invokes;
      break;
    case EventKind::Read:
      ++Reads;
      break;
    case EventKind::Write:
      ++Writes;
      break;
    case EventKind::Acquire:
      ++Acquires;
      break;
    case EventKind::Release:
      ++Releases;
      break;
    default:
      break;
    }
  }
  EXPECT_EQ(Invokes, 3u);
  EXPECT_EQ(Acquires, 1u); // Only put locks.
  EXPECT_EQ(Releases, 1u);
  EXPECT_GE(Reads, 3u);  // Bucket read in put, get; size counter read.
  EXPECT_GE(Writes, 2u); // Bucket write + size counter write in put.

  // The put action carries the right abstract values.
  for (const Event &E : T)
    if (E.isInvoke() && E.action().method() == symbol("put")) {
      EXPECT_EQ(E.action().args()[0], Value::string("k"));
      EXPECT_EQ(E.action().rets()[0], Value::nil());
      break;
    }
  DiagnosticEngine Diags;
  EXPECT_TRUE(T.validate(Diags)) << Diags.toString();
}

TEST(InstrumentedMapTest, PutIfAbsentEmitsGetWhenItFails) {
  SimRuntime RT(1);
  InstrumentedMap Map(RT);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&Map](SimThread &T) {
    Map.putIfAbsent(T, Value::string("k"), Value::integer(1));
    Map.putIfAbsent(T, Value::string("k"), Value::integer(2));
  });
  TraceRecorder Recorder;
  RT.run(Recorder);
  std::vector<Symbol> Methods;
  for (const Event &E : Recorder.trace())
    if (E.isInvoke())
      Methods.push_back(E.action().method());
  ASSERT_EQ(Methods.size(), 2u);
  EXPECT_EQ(Methods[0], symbol("put"));
  EXPECT_EQ(Methods[1], symbol("get"));
}
