//===- tests/AtomicityTest.cpp - commutativity-aware atomicity tests ----------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "access/DictionaryRep.h"
#include "detect/AtomicityChecker.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceIO.h"

#include <gtest/gtest.h>

using namespace crd;

namespace {

Value str(std::string_view S) { return Value::string(S); }
Value num(int64_t I) { return Value::integer(I); }

DictionaryRep &dictRep() {
  static DictionaryRep Rep;
  return Rep;
}

std::vector<AtomicityViolation> check(const Trace &T) {
  AtomicityChecker Checker;
  Checker.setDefaultProvider(&dictRep());
  return Checker.check(T);
}

} // namespace

//===----------------------------------------------------------------------===//
// Transaction events in the trace model
//===----------------------------------------------------------------------===//

TEST(TxEventTest, PrintAndParseRoundTrip) {
  Trace T = TraceBuilder()
                .txBegin(0)
                .invoke(0, 1, "get", {str("k")}, Value::nil())
                .txEnd(0)
                .take();
  std::string Text = traceToString(T);
  EXPECT_NE(Text.find("T0: txbegin"), std::string::npos);
  EXPECT_NE(Text.find("T0: txend"), std::string::npos);
  DiagnosticEngine Diags;
  auto Parsed = parseTrace(Text, Diags);
  ASSERT_TRUE(Parsed) << Diags.toString();
  EXPECT_EQ(traceToString(*Parsed), Text);
}

TEST(TxEventTest, ValidatorRejectsNestingAndStrayEnd) {
  DiagnosticEngine D1;
  EXPECT_FALSE(TraceBuilder().txBegin(0).txBegin(0).take().validate(D1));
  DiagnosticEngine D2;
  EXPECT_FALSE(TraceBuilder().txEnd(0).take().validate(D2));
  DiagnosticEngine D3;
  EXPECT_TRUE(TraceBuilder()
                  .txBegin(0)
                  .txEnd(0)
                  .txBegin(0)
                  .txEnd(0)
                  .take()
                  .validate(D3));
}

//===----------------------------------------------------------------------===//
// AtomicityChecker
//===----------------------------------------------------------------------===//

TEST(AtomicityTest, ClassicCheckThenActViolation) {
  // T0 atomically does get(k) then put(k); T1's put(k) lands in between.
  // The cycle: T0's block -> T1 (get before T1's put, conflicting) and
  // T1 -> T0's block (T1's put before T0's put, conflicting).
  Trace T = TraceBuilder()
                .fork(0, 1)
                .txBegin(0)
                .invoke(0, 1, "get", {str("k")}, Value::nil())
                .invoke(1, 1, "put", {str("k"), num(1)}, Value::nil())
                .invoke(0, 1, "put", {str("k"), num(2)}, num(1))
                .txEnd(0)
                .take();
  auto Violations = check(T);
  ASSERT_EQ(Violations.size(), 1u);
  EXPECT_EQ(Violations[0].Thread, ThreadId(0));
  EXPECT_FALSE(Violations[0].CycleEvents.empty());
  EXPECT_NE(Violations[0].toString().find("not conflict-serializable"),
            std::string::npos);
}

TEST(AtomicityTest, CommutingInterleavingIsSerializable) {
  // Same shape, but T1 touches a DIFFERENT key: with commutativity
  // conflicts there is no edge at all, so the block is serializable. (A
  // read/write-level atomicity checker on the map's internals would still
  // complain — the whole point of the generalization.)
  Trace T = TraceBuilder()
                .fork(0, 1)
                .txBegin(0)
                .invoke(0, 1, "get", {str("k")}, Value::nil())
                .invoke(1, 1, "put", {str("other"), num(1)}, Value::nil())
                .invoke(0, 1, "put", {str("k"), num(2)}, Value::nil())
                .txEnd(0)
                .take();
  EXPECT_TRUE(check(T).empty());
}

TEST(AtomicityTest, NoopInterleavedPutIsSerializable) {
  // T1's interleaved put is a no-op (v == p): it commutes with both of
  // T0's operations, so no cycle forms even on the same key.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .txBegin(0)
                .invoke(0, 1, "get", {str("k")}, num(7))
                .invoke(1, 1, "put", {str("k"), num(7)}, num(7))
                .invoke(0, 1, "put", {str("k"), num(8)}, num(7))
                .txEnd(0)
                .take();
  EXPECT_TRUE(check(T).empty());
}

TEST(AtomicityTest, SerializableBeforeOrAfter) {
  // T1's conflicting put happens entirely before the block: only one edge
  // direction, no cycle.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .invoke(1, 1, "put", {str("k"), num(1)}, Value::nil())
                .txBegin(0)
                .invoke(0, 1, "get", {str("k")}, num(1))
                .invoke(0, 1, "put", {str("k"), num(2)}, num(1))
                .txEnd(0)
                .take();
  EXPECT_TRUE(check(T).empty());
}

TEST(AtomicityTest, TwoBlocksCanBothBeUnserializable) {
  // Two atomic read-modify-write blocks interleave crosswise.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .txBegin(0)
                .txBegin(1)
                .invoke(0, 1, "get", {str("k")}, Value::nil())
                .invoke(1, 1, "get", {str("k")}, Value::nil())
                .invoke(0, 1, "put", {str("k"), num(1)}, Value::nil())
                .invoke(1, 1, "put", {str("k"), num(2)}, num(1))
                .txEnd(0)
                .txEnd(1)
                .take();
  auto Violations = check(T);
  EXPECT_EQ(Violations.size(), 2u);
}

TEST(AtomicityTest, UnaryEventsNeverReported) {
  // A plain commutativity race without atomic blocks is not an atomicity
  // violation (there is a conflict edge but no cycle through a block).
  Trace T = TraceBuilder()
                .fork(0, 1)
                .invoke(0, 1, "put", {str("k"), num(1)}, Value::nil())
                .invoke(1, 1, "put", {str("k"), num(2)}, num(1))
                .take();
  EXPECT_TRUE(check(T).empty());
}

TEST(AtomicityTest, LockProtectedBlocksAreSerializable) {
  // Both threads take the same lock around their read-modify-write: the
  // sync edges orient all conflicts one way.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .txBegin(0)
                .acquire(0, 0)
                .invoke(0, 1, "get", {str("k")}, Value::nil())
                .invoke(0, 1, "put", {str("k"), num(1)}, Value::nil())
                .release(0, 0)
                .txEnd(0)
                .txBegin(1)
                .acquire(1, 0)
                .invoke(1, 1, "get", {str("k")}, num(1))
                .invoke(1, 1, "put", {str("k"), num(2)}, num(1))
                .release(1, 0)
                .txEnd(1)
                .take();
  EXPECT_TRUE(check(T).empty());
}

TEST(AtomicityTest, MemoryConflictModeReproducesVelodromeFalseAlarm) {
  // The paper's critique of read/write-level atomicity checkers made
  // concrete: a block of commuting map operations interleaved with
  // another thread's commuting operation on the SAME internal memory
  // (the shared size counter / bucket region). At the commutativity level
  // the block is serializable; with Velodrome-style memory conflicts the
  // shared counter creates a cycle — a false alarm.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .txBegin(0)
                // T0's put on key "a": bucket write + size-counter write.
                .write(0, 10) // bucket region of "a"
                .write(0, 99) // shared size counter
                .invoke(0, 1, "put", {str("a"), num(1)}, Value::nil())
                // T1's put on key "b": different bucket, same size counter.
                .write(1, 11)
                .write(1, 99)
                .invoke(1, 1, "put", {str("b"), num(2)}, Value::nil())
                // Second half of T0's block: another counter update.
                .write(0, 99)
                .invoke(0, 1, "put", {str("c"), num(3)}, Value::nil())
                .txEnd(0)
                .take();

  // Commutativity-level: all three puts touch distinct keys; resize does
  // not conflict with itself -> serializable.
  AtomicityChecker Commutative;
  Commutative.setDefaultProvider(&dictRep());
  EXPECT_TRUE(Commutative.check(T).empty());

  // Memory-level: V99 write-write conflicts run T0 -> T1 -> T0: cycle.
  AtomicityChecker Velodrome;
  Velodrome.setDefaultProvider(&dictRep());
  Velodrome.setIncludeMemoryConflicts(true);
  EXPECT_EQ(Velodrome.check(T).size(), 1u);
}

TEST(AtomicityTest, MemoryConflictModeStillCatchesRealViolations) {
  // A genuine violation is caught in both modes.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .txBegin(0)
                .invoke(0, 1, "get", {str("k")}, Value::nil())
                .invoke(1, 1, "put", {str("k"), num(1)}, Value::nil())
                .invoke(0, 1, "put", {str("k"), num(2)}, num(1))
                .txEnd(0)
                .take();
  AtomicityChecker Checker;
  Checker.setDefaultProvider(&dictRep());
  Checker.setIncludeMemoryConflicts(true);
  EXPECT_EQ(Checker.check(T).size(), 1u);
}

TEST(AtomicityTest, SizeObserverBreaksBulkInsertBlock) {
  // A block inserting two fresh keys is torn by a concurrent size()
  // observation between the inserts (resize conflicts with size).
  Trace T = TraceBuilder()
                .fork(0, 1)
                .txBegin(0)
                .invoke(0, 1, "put", {str("a"), num(1)}, Value::nil())
                .invoke(1, 1, "size", {}, num(1))
                .invoke(0, 1, "put", {str("b"), num(2)}, Value::nil())
                .txEnd(0)
                .take();
  auto Violations = check(T);
  ASSERT_EQ(Violations.size(), 1u);
  EXPECT_EQ(Violations[0].Thread, ThreadId(0));
}
