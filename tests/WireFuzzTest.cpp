//===- tests/WireFuzzTest.cpp - deterministic wire decoder fuzzing ------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// Deterministic fuzzing of the binary wire decoder: starting from valid
/// encodings of randomized traces, applies seeded byte flips, splices,
/// truncations and garbage prefixes/suffixes, then drives WireReader and
/// scanWire over the result. The decoder must always terminate with either
/// a clean stream or a diagnostic — never crash, hang, or trip UB (run
/// under the asan preset; this target is also registered as `wire-fuzz`).
///
//===----------------------------------------------------------------------===//

#include "wire/WireReader.h"
#include "wire/WireWriter.h"
#include "TraceGen.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

using namespace crd;
using namespace crd::wire;

namespace {

std::string encodeWire(const Trace &T, size_t EventsPerChunk) {
  std::ostringstream OS;
  WireWriter Writer(OS, EventsPerChunk);
  Writer.writeTrace(T);
  Writer.finish();
  return OS.str();
}

/// Decodes \p Bytes to exhaustion. The assertions here are intentionally
/// weak — the point is that the decoder terminates and stays in-bounds;
/// on failure it must have left a diagnostic behind.
void mustSurvive(const std::string &Bytes) {
  {
    std::istringstream In(Bytes);
    DiagnosticEngine Diags;
    WireReader Reader(In, Diags);
    Event E = Event::txBegin(ThreadId(0));
    size_t Decoded = 0;
    while (Reader.next(E)) {
      ASSERT_LT(++Decoded, 1u << 22) << "decoder failed to terminate";
    }
    if (Reader.failed()) {
      EXPECT_TRUE(Diags.hasErrors());
    }
  }
  {
    std::istringstream In(Bytes);
    DiagnosticEngine Diags;
    auto Info = scanWire(In, Diags);
    if (!Info.has_value()) {
      EXPECT_TRUE(Diags.hasErrors());
    }
  }
}

} // namespace

TEST(WireFuzzTest, SingleByteFlipsEverywhere) {
  // Exhaustive single-byte corruption of a small valid file: every byte,
  // every bit. Catches off-by-ones that random fuzzing can miss.
  std::string Base =
      encodeWire(testgen::randomTrace(1, 2, 6, 3, /*Maps=*/1), 4);
  ASSERT_LT(Base.size(), 2000u);
  for (size_t I = 0; I != Base.size(); ++I) {
    for (int Bit = 0; Bit != 8; ++Bit) {
      std::string Mutated = Base;
      Mutated[I] ^= static_cast<char>(1 << Bit);
      mustSurvive(Mutated);
    }
  }
}

TEST(WireFuzzTest, SeededRandomMutations) {
  std::mt19937 Rng(0xC0DECu); // Deterministic: same corpus every run.
  std::string Base = encodeWire(testgen::randomTrace(7, 3, 20, 5), 16);

  for (int Round = 0; Round != 400; ++Round) {
    std::string M = Base;
    switch (Rng() % 5) {
    case 0: // Burst of byte flips.
      for (unsigned N = 1 + Rng() % 8; N; --N)
        M[Rng() % M.size()] = static_cast<char>(Rng());
      break;
    case 1: // Truncate.
      M.resize(Rng() % M.size());
      break;
    case 2: // Duplicate a slice into the middle.
    {
      size_t From = Rng() % M.size();
      size_t Len = Rng() % (M.size() - From);
      M.insert(Rng() % M.size(), M.substr(From, Len));
      break;
    }
    case 3: // Garbage tail (looks like a further chunk header).
      for (unsigned N = 1 + Rng() % 16; N; --N)
        M.push_back(static_cast<char>(Rng()));
      break;
    case 4: // Zero a window (kills CRCs and lengths together).
    {
      size_t At = Rng() % M.size();
      size_t Len = std::min<size_t>(1 + Rng() % 32, M.size() - At);
      for (size_t I = 0; I != Len; ++I)
        M[At + I] = 0;
      break;
    }
    }
    mustSurvive(M);
  }
}

TEST(WireFuzzTest, PureGarbageStreams) {
  std::mt19937 Rng(1234567);
  for (int Round = 0; Round != 200; ++Round) {
    std::string M(Rng() % 512, '\0');
    for (char &C : M)
      C = static_cast<char>(Rng());
    mustSurvive(M);
  }
}

TEST(WireFuzzTest, ValidHeaderGarbageBody) {
  std::mt19937 Rng(42);
  std::string Header = encodeWire(Trace(), 4); // Magic + version + flags.
  for (int Round = 0; Round != 200; ++Round) {
    std::string M = Header;
    size_t N = Rng() % 256;
    for (size_t I = 0; I != N; ++I)
      M.push_back(static_cast<char>(Rng()));
    mustSurvive(M);
  }
}

TEST(WireFuzzTest, ChunkHeadersWithHostileLengths) {
  // Hand-built chunk headers claiming pathological payload sizes; the
  // reader must refuse the oversized ones without allocating them.
  std::string Header = encodeWire(Trace(), 4);
  for (uint32_t Claim :
       {0u, 1u, 0xFFFFFFFFu, MaxChunkPayload, MaxChunkPayload + 1}) {
    std::string M = Header;
    for (int I = 0; I != 4; ++I)
      M.push_back(static_cast<char>((Claim >> (8 * I)) & 0xFF));
    for (int I = 0; I != 4; ++I)
      M.push_back('\x11'); // Bogus CRC field.
    M += "abcd";           // Far less payload than claimed.
    mustSurvive(M);
  }
}
