//===- tests/DetectTest.cpp - Algorithm 1 detector tests ----------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "access/DictionaryRep.h"
#include "detect/CommutativityDetector.h"
#include "detect/DirectDetector.h"
#include "spec/Builtins.h"
#include "trace/TraceBuilder.h"
#include "translate/Translator.h"

#include <gtest/gtest.h>

using namespace crd;

namespace {

const AccessPointProvider &dictRep() {
  static DictionaryRep Rep;
  return Rep;
}

const TranslatedRep &translatedDictRep() {
  static std::unique_ptr<TranslatedRep> Rep = [] {
    DiagnosticEngine Diags;
    auto R = translateSpec(dictionarySpec(), Diags);
    EXPECT_TRUE(R) << Diags.toString();
    return R;
  }();
  return *Rep;
}

/// Fig 3 trace: both forked threads put to the same key, main joins, size.
Trace fig3Trace(bool WithJoin) {
  TraceBuilder TB;
  TB.fork(0, 1).fork(0, 2);
  TB.invoke(2, 1, "put", {Value::string("a.com"), Value::integer(10)},
            Value::nil());
  TB.invoke(1, 1, "put", {Value::string("a.com"), Value::integer(20)},
            Value::integer(10));
  if (WithJoin)
    TB.join(0, 1).join(0, 2);
  TB.invoke(0, 1, "size", {}, Value::integer(1));
  return TB.take();
}

} // namespace

TEST(CommutativityDetectorTest, Fig3RaceDetected) {
  for (const AccessPointProvider *Provider : {&dictRep(),
       static_cast<const AccessPointProvider *>(&translatedDictRep())}) {
    CommutativityRaceDetector Detector;
    Detector.setDefaultProvider(Provider);
    Detector.processTrace(fig3Trace(/*WithJoin=*/true));
    // Exactly one race: the two concurrent puts to "a.com". size() after
    // joinall is ordered after both and races with neither.
    ASSERT_EQ(Detector.races().size(), 1u);
    EXPECT_EQ(Detector.distinctRacyObjects(), 1u);
    const CommutativityRace &R = Detector.races().front();
    EXPECT_EQ(R.Current.method(), symbol("put"));
    EXPECT_TRUE(R.PriorClock.concurrentWith(R.CurrentClock));
  }
}

TEST(CommutativityDetectorTest, WithoutJoinSizeRacesWithResize) {
  // The paper's observation: without joinall, a1 (fresh put, touches
  // o:resize) races with a3 (size), but a2 (overwrite) does NOT race with
  // a3 because it does not resize.
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&dictRep());
  Detector.processTrace(fig3Trace(/*WithJoin=*/false));
  // Races: put/put on the key, and size against the fresh put's resize.
  ASSERT_EQ(Detector.races().size(), 2u);
  EXPECT_EQ(Detector.races()[1].Current.method(), symbol("size"));
  EXPECT_EQ(Detector.races()[1].PointName, "o:resize");
}

TEST(CommutativityDetectorTest, OverwriteDoesNotRaceWithSize) {
  // Only the overwriting put runs concurrently with size(): no race.
  Trace T = TraceBuilder()
                .invoke(0, 1, "put", {Value::string("k"), Value::integer(1)},
                        Value::nil())
                .fork(0, 1)
                .invoke(1, 1, "put", {Value::string("k"), Value::integer(2)},
                        Value::integer(1))
                .invoke(0, 1, "size", {}, Value::integer(1))
                .take();
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&dictRep());
  Detector.processTrace(T);
  EXPECT_TRUE(Detector.races().empty());
}

TEST(CommutativityDetectorTest, DifferentKeysNoRace) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .invoke(0, 1, "put", {Value::string("a"), Value::integer(1)},
                        Value::nil())
                .invoke(1, 1, "put", {Value::string("b"), Value::integer(2)},
                        Value::nil())
                .take();
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&dictRep());
  Detector.processTrace(T);
  // Both puts resize, but resize does not conflict with itself.
  EXPECT_TRUE(Detector.races().empty());
}

TEST(CommutativityDetectorTest, LockOrderingSuppressesRace) {
  Value K = Value::string("k");
  Trace T = TraceBuilder()
                .fork(0, 1)
                .acquire(0, 0)
                .invoke(0, 1, "put", {K, Value::integer(1)}, Value::nil())
                .release(0, 0)
                .acquire(1, 0)
                .invoke(1, 1, "put", {K, Value::integer(2)},
                        Value::integer(1))
                .release(1, 0)
                .take();
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&dictRep());
  Detector.processTrace(T);
  EXPECT_TRUE(Detector.races().empty());
}

TEST(CommutativityDetectorTest, DistinctObjectsTrackedSeparately) {
  Value K = Value::string("k");
  Trace T = TraceBuilder()
                .fork(0, 1)
                // Concurrent puts to the same key of DIFFERENT objects.
                .invoke(0, 1, "put", {K, Value::integer(1)}, Value::nil())
                .invoke(1, 2, "put", {K, Value::integer(2)}, Value::nil())
                // And a real race on object 3.
                .invoke(0, 3, "put", {K, Value::integer(1)}, Value::nil())
                .invoke(1, 3, "put", {K, Value::integer(2)}, Value::nil())
                .take();
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&dictRep());
  Detector.processTrace(T);
  ASSERT_EQ(Detector.races().size(), 1u);
  EXPECT_EQ(Detector.races()[0].Current.object(), ObjectId(3));
  EXPECT_EQ(Detector.distinctRacyObjects(), 1u);
}

TEST(CommutativityDetectorTest, PerObjectProviderBinding) {
  // Object 1 is a dictionary; object 2 is a counter.
  DiagnosticEngine Diags;
  auto CounterRep = translateSpec(counterSpec(), Diags);
  ASSERT_TRUE(CounterRep);

  CommutativityRaceDetector Detector;
  Detector.bind(ObjectId(1), &dictRep());
  Detector.bind(ObjectId(2), CounterRep.get());

  Trace T = TraceBuilder()
                .fork(0, 1)
                .invoke(0, 2, "inc", {}, std::vector<Value>{})
                .invoke(1, 2, "inc", {}, std::vector<Value>{})
                .invoke(0, 2, "read", {}, Value::integer(2))
                .take();
  Detector.processTrace(T);
  // inc/inc commute; T0's read is ordered after T0's inc but concurrent
  // with T1's inc -> exactly one race.
  ASSERT_EQ(Detector.races().size(), 1u);
  EXPECT_EQ(Detector.races()[0].Current.method(), symbol("read"));
}

TEST(CommutativityDetectorTest, VectorClockAccumulationAcrossManyThreads) {
  // Three threads put to the same key concurrently: each later put races
  // with every earlier one (clock join keeps all prior puts visible).
  TraceBuilder TB;
  TB.fork(0, 1).fork(0, 2).fork(0, 3);
  for (uint32_t T : {1u, 2u, 3u})
    TB.invoke(T, 1, "put", {Value::string("k"), Value::integer(T)},
              Value::integer(0));
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&dictRep());
  Detector.processTrace(TB.take());
  // Put #2 races with #1; put #3 races with the accumulated clock of both
  // (one report per touched conflicting point, and both prior puts touch
  // the same point o:w:k, so the joined clock yields a single report).
  EXPECT_EQ(Detector.races().size(), 2u);
}

TEST(CommutativityDetectorTest, ObjectReclamationDropsState) {
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&dictRep());
  Trace T1 = TraceBuilder()
                 .fork(0, 1)
                 .invoke(0, 1, "put", {Value::string("k"), Value::integer(1)},
                         Value::nil())
                 .take();
  Detector.processTrace(T1);
  EXPECT_GT(Detector.activePointCount(), 0u);
  Detector.objectDied(ObjectId(1));
  EXPECT_EQ(Detector.activePointCount(), 0u);
  // A concurrent put on the dead object's id afterwards reports nothing.
  Detector.process(Event::invoke(
      ThreadId(1), Action(ObjectId(1), symbol("put"),
                          {Value::string("k"), Value::integer(2)},
                          Value::integer(1))));
  EXPECT_TRUE(Detector.races().empty());
}

TEST(CommutativityDetectorTest, ConflictChecksAreConstantPerAction) {
  // §5.4: with the dictionary representation, each action performs at most
  // |Co(pt)| = 2 probes per touched point, regardless of history length.
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&dictRep());
  TraceBuilder TB;
  TB.fork(0, 1);
  const unsigned N = 200;
  for (unsigned I = 0; I != N; ++I)
    TB.invoke(I % 2, 1, "put",
              {Value::string("k" + std::to_string(I)), Value::integer(1)},
              Value::nil());
  Detector.processTrace(TB.take());
  // Each fresh put touches w:k (2 partners) and resize (1 partner).
  EXPECT_LE(Detector.conflictChecks(), size_t(3) * N);
}

TEST(DirectDetectorTest, ChecksGrowQuadratically) {
  DirectCommutativityDetector Detector;
  Detector.setDefaultSpec(&dictionarySpec());
  TraceBuilder TB;
  TB.fork(0, 1);
  const unsigned N = 100;
  for (unsigned I = 0; I != N; ++I)
    TB.invoke(I % 2, 1, "put",
              {Value::string("k" + std::to_string(I)), Value::integer(1)},
              Value::nil());
  Detector.processTrace(TB.take());
  EXPECT_EQ(Detector.conflictChecks(), size_t(N) * (N - 1) / 2);
}

TEST(DirectDetectorTest, AgreesOnFig3) {
  DirectCommutativityDetector Detector;
  Detector.setDefaultSpec(&dictionarySpec());
  Detector.processTrace(fig3Trace(/*WithJoin=*/true));
  ASSERT_EQ(Detector.races().size(), 1u);
  Detector = DirectCommutativityDetector();
  Detector.setDefaultSpec(&dictionarySpec());
  Detector.processTrace(fig3Trace(/*WithJoin=*/false));
  EXPECT_EQ(Detector.races().size(), 2u);
}

TEST(RaceReportTest, Printing) {
  CommutativityRace R;
  R.EventIndex = 3;
  R.Thread = ThreadId(2);
  R.Current = Action(ObjectId(1), symbol("put"),
                     {Value::string("a.com"), Value::integer(7)}, Value::nil());
  R.PointName = "o:w:k";
  R.PriorClock = VectorClock({3, 0, 1});
  R.CurrentClock = VectorClock({2, 1});
  std::string S = R.toString();
  EXPECT_NE(S.find("o:w:k"), std::string::npos);
  EXPECT_NE(S.find("T2"), std::string::npos);
  EXPECT_NE(S.find("<3,0,1>"), std::string::npos);
}
