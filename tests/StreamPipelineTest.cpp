//===- tests/StreamPipelineTest.cpp - streaming/batch equivalence -------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// The streaming pipeline must be a pure refactoring of the materialized
/// path: for every backend, running StreamPipeline over a binary-encoded
/// trace (decoded chunk-at-a-time, never materializing a Trace) reports
/// bit-identical results to running the corresponding detector over the
/// parsed text Trace — including the ParallelDetector backend at odd
/// batch sizes and every shard count, where batches split mid-trace.
///
//===----------------------------------------------------------------------===//

#include "access/DictionaryRep.h"
#include "detect/CommutativityDetector.h"
#include "detect/FastTrack.h"
#include "detect/OnlineAtomicity.h"
#include "runtime/InstrumentedMap.h"
#include "runtime/SimRuntime.h"
#include "trace/TraceBuilder.h"
#include "trace/TraceIO.h"
#include "wire/StreamPipeline.h"
#include "wire/WireWriter.h"
#include "TraceGen.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

using namespace crd;
using namespace crd::wire;

namespace {

const DictionaryRep &dictRep() {
  static DictionaryRep Rep;
  return Rep;
}

std::string encodeWire(const Trace &T, size_t EventsPerChunk = 64) {
  std::ostringstream OS;
  WireWriter Writer(OS, EventsPerChunk);
  Writer.writeTrace(T);
  Writer.finish();
  return OS.str();
}

/// Runs \p Opts over the binary encoding of \p T and returns the summary;
/// the pipeline itself is returned through \p Out for result inspection.
StreamSummary runBinary(const Trace &T, PipelineOptions Opts,
                        std::unique_ptr<StreamPipeline> &Out,
                        size_t EventsPerChunk = 64) {
  std::string Bytes = encodeWire(T, EventsPerChunk);
  std::istringstream In(Bytes);
  DiagnosticEngine Diags;
  BinaryStreamSource Source(In, Diags);
  Out = std::make_unique<StreamPipeline>(Opts);
  Out->setDefaultProvider(&dictRep());
  StreamSummary S = Out->run(Source);
  EXPECT_FALSE(Source.failed()) << Diags.toString();
  return S;
}

void expectRacesIdentical(const std::vector<CommutativityRace> &A,
                          const std::vector<CommutativityRace> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I)
    EXPECT_TRUE(A[I] == B[I]) << "race " << I << ":\n  " << A[I].toString()
                              << "\n  " << B[I].toString();
}

} // namespace

//===----------------------------------------------------------------------===//
// Sequential backend
//===----------------------------------------------------------------------===//

TEST(StreamPipelineTest, SequentialBinaryMatchesMaterialized) {
  for (uint64_t Seed : {2u, 13u, 77u}) {
    Trace T = testgen::randomTrace(Seed, 4, 40, 6);

    CommutativityRaceDetector Reference;
    Reference.setDefaultProvider(&dictRep());
    Reference.processTrace(T);

    std::unique_ptr<StreamPipeline> P;
    StreamSummary S = runBinary(T, {Backend::Sequential}, P);

    EXPECT_EQ(S.Events, T.size());
    EXPECT_EQ(S.Races, Reference.races().size());
    expectRacesIdentical(P->races(), Reference.races());
  }
}

TEST(StreamPipelineTest, TextSourceMatchesBinarySource) {
  Trace T = testgen::randomTrace(5, 3, 30, 5);

  std::string Text = traceToString(T);
  std::istringstream TextIn(Text);
  DiagnosticEngine Diags;
  TextStreamSource TextSource(TextIn, Diags);
  StreamPipeline TextP({Backend::Sequential});
  TextP.setDefaultProvider(&dictRep());
  StreamSummary TextS = TextP.run(TextSource);
  EXPECT_FALSE(TextSource.failed()) << Diags.toString();

  std::unique_ptr<StreamPipeline> BinP;
  StreamSummary BinS = runBinary(T, {Backend::Sequential}, BinP);

  EXPECT_EQ(TextS.Events, BinS.Events);
  EXPECT_EQ(TextS.Races, BinS.Races);
  expectRacesIdentical(TextP.races(), BinP->races());
}

TEST(StreamPipelineTest, RaceCallbackFiresForEveryRace) {
  Trace T = testgen::randomTrace(21, 4, 40, 4);
  std::string Bytes = encodeWire(T);
  std::istringstream In(Bytes);
  DiagnosticEngine Diags;
  BinaryStreamSource Source(In, Diags);

  StreamPipeline P({Backend::Sequential});
  P.setDefaultProvider(&dictRep());
  std::vector<CommutativityRace> Seen;
  P.setRaceCallback([&Seen](const CommutativityRace &R) { Seen.push_back(R); });
  StreamSummary S = P.run(Source);

  EXPECT_EQ(Seen.size(), S.Races);
  expectRacesIdentical(Seen, P.races());
  EXPECT_GT(S.Races, 0u) << "seed produced no races; pick another seed";
}

//===----------------------------------------------------------------------===//
// Parallel backend
//===----------------------------------------------------------------------===//

TEST(StreamPipelineTest, ParallelBackendBitIdenticalAcrossBatchesAndShards) {
  Trace T = testgen::randomTrace(9, 4, 50, 6);

  CommutativityRaceDetector Reference;
  Reference.setDefaultProvider(&dictRep());
  Reference.processTrace(T);

  // Odd batch sizes force splits at arbitrary trace positions; the
  // sharded detector's state must carry across them.
  for (size_t Batch : {size_t(1), size_t(17), size_t(100), size_t(4096)}) {
    for (unsigned Shards = 1; Shards <= 4; ++Shards) {
      std::unique_ptr<StreamPipeline> P;
      PipelineOptions Opts;
      Opts.TheBackend = Backend::Parallel;
      Opts.Shards = Shards;
      Opts.BatchSize = Batch;
      StreamSummary S = runBinary(T, Opts, P, /*EventsPerChunk=*/33);

      EXPECT_EQ(S.Events, T.size())
          << "batch=" << Batch << " shards=" << Shards;
      expectRacesIdentical(P->races(), Reference.races());
    }
  }
}

TEST(StreamPipelineTest, ParallelPushModeNeedsFinish) {
  Trace T = testgen::randomTrace(31, 3, 30, 4);

  CommutativityRaceDetector Reference;
  Reference.setDefaultProvider(&dictRep());
  Reference.processTrace(T);

  PipelineOptions Opts;
  Opts.TheBackend = Backend::Parallel;
  Opts.Shards = 2;
  Opts.BatchSize = 64;
  StreamPipeline P(Opts);
  P.setDefaultProvider(&dictRep());
  for (size_t I = 0; I != T.size(); ++I)
    P.onEvent(T[I]);
  P.finish();
  P.finish(); // Idempotent.

  EXPECT_EQ(P.eventsProcessed(), T.size());
  expectRacesIdentical(P.races(), Reference.races());
}

TEST(StreamPipelineTest, MetricsSnapshotAccountsForEveryEvent) {
  // The observability contract (docs/observability.md): on a quiesced
  // pipeline, per-shard routed-event totals sum to the trace's action
  // count, and total events match the trace size — across batch and shard
  // configurations, in every build (RoutedEvents stays live with
  // CRD_METRICS=OFF).
  Trace T = testgen::randomTrace(9, 4, 50, 6);
  size_t Actions = 0, Syncs = 0;
  for (const Event &E : T) {
    Actions += E.isInvoke();
    Syncs += E.isSync();
  }

  for (size_t Batch : {size_t(1), size_t(3), size_t(64)}) {
    for (unsigned Shards : {1u, 2u, 4u}) {
      std::unique_ptr<StreamPipeline> P;
      PipelineOptions Opts;
      Opts.TheBackend = Backend::Parallel;
      Opts.Shards = Shards;
      Opts.BatchSize = Batch;
      StreamSummary S = runBinary(T, Opts, P, /*EventsPerChunk=*/17);
      SCOPED_TRACE(::testing::Message()
                   << "batch=" << Batch << " shards=" << Shards);

      ASSERT_NE(P->parallelDetector(), nullptr);
      ParallelMetrics M = P->parallelDetector()->metricsSnapshot();
      EXPECT_EQ(M.Events, T.size());
      EXPECT_EQ(S.Events, T.size());
      ASSERT_EQ(M.Shards.size(), Shards);
      uint64_t Routed = 0, MergedRaces = 0, Batches = 0;
      for (const ParallelShardMetrics &SM : M.Shards) {
        Routed += SM.RoutedEvents;
        MergedRaces += SM.MergedRaces;
        Batches += SM.Batches;
      }
      // Shard routing covers exactly the action events; everything else
      // stays on the pre-pass thread.
      EXPECT_EQ(Routed, Actions);
      EXPECT_EQ(M.Actions, Actions);
      EXPECT_EQ(M.Events - M.Actions, T.size() - Actions);
      // Per-shard merged races sum to the pipeline's race report.
      EXPECT_EQ(MergedRaces, S.Races);
      if (metrics::Enabled) {
        EXPECT_EQ(M.SyncEvents, Syncs);
        // Every routed action was executed in some batch, and no batch
        // can carry more than the configured size.
        EXPECT_GE(Batches, (Actions + Batch - 1) / Batch);
        for (const ParallelShardMetrics &SM : M.Shards)
          EXPECT_EQ(SM.Engine.Actions, SM.RoutedEvents);
      }
    }
  }
}

TEST(StreamPipelineTest, BatchSpansCoverEveryDispatchedBatch) {
  if (!metrics::Enabled)
    GTEST_SKIP() << "batch tracing needs a CRD_METRICS build";
  Trace T = testgen::randomTrace(9, 4, 50, 6);
  size_t Actions = 0;
  for (const Event &E : T)
    Actions += E.isInvoke();

  for (unsigned Shards : {1u, 3u}) {
    std::unique_ptr<StreamPipeline> P;
    PipelineOptions Opts;
    Opts.TheBackend = Backend::Parallel;
    Opts.Shards = Shards;
    Opts.BatchSize = 8;
    Opts.TraceBatches = true;
    runBinary(T, Opts, P);
    SCOPED_TRACE(::testing::Message() << "shards=" << Shards);

    ParallelMetrics M = P->parallelDetector()->metricsSnapshot();
    uint64_t Batches = 0, SpanEvents = 0;
    for (const ParallelShardMetrics &SM : M.Shards)
      Batches += SM.Batches;
    EXPECT_EQ(M.Spans.size(), Batches);
    for (const BatchSpan &S : M.Spans) {
      EXPECT_LT(S.Shard, Shards);
      EXPECT_LE(S.EnqueueNs, S.BeginNs);
      EXPECT_LE(S.BeginNs, S.EndNs);
      SpanEvents += S.Events;
    }
    // Spans partition the routed actions.
    EXPECT_EQ(SpanEvents, Actions);

    // The Chrome-trace rendering contains one "X" slice per span (plus
    // queued slices) and is non-empty JSON.
    std::ostringstream TraceOS;
    writeChromeTrace(TraceOS, M);
    std::string Rendered = TraceOS.str();
    EXPECT_NE(Rendered.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(Rendered.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(Rendered.find("\"thread_name\""), std::string::npos);
  }
}

namespace {

/// Runs the parallel backend over \p T across shard/batch combinations and
/// expects bit-identical races to the sequential reference. Returns the
/// reference race count so callers can assert the trace was non-trivial.
size_t expectParallelMatchesReference(
    const Trace &T, std::initializer_list<unsigned> ShardCounts,
    std::initializer_list<size_t> BatchSizes, size_t EventsPerChunk = 7) {
  CommutativityRaceDetector Reference;
  Reference.setDefaultProvider(&dictRep());
  Reference.processTrace(T);

  for (unsigned Shards : ShardCounts)
    for (size_t Batch : BatchSizes) {
      SCOPED_TRACE(::testing::Message()
                   << "shards=" << Shards << " batch=" << Batch);
      std::unique_ptr<StreamPipeline> P;
      PipelineOptions Opts;
      Opts.TheBackend = Backend::Parallel;
      Opts.Shards = Shards;
      Opts.BatchSize = Batch;
      StreamSummary S = runBinary(T, Opts, P, EventsPerChunk);
      EXPECT_EQ(S.Events, T.size());
      expectRacesIdentical(P->races(), Reference.races());
    }
  return Reference.races().size();
}

} // namespace

TEST(StreamPipelineTest, SyncEventsAtBatchBoundaries) {
  // Hand-placed sync events at both edges of every batch-of-4: positions
  // 0/4/8/12 open a batch, 3/7/11 close one. The pre-pass must seed the
  // first run of a batch from clocks published by the previous batch and
  // publish boundary snapshots for the next one — an off-by-one in either
  // direction changes which clock an invoke observes and breaks the
  // bit-identical guarantee.
  Value K1 = Value::string("k1"), K2 = Value::string("k2");
  Trace T = TraceBuilder()
                .fork(0, 1)                                       // 0 sync
                .fork(0, 2)                                       // 1 sync
                .invoke(1, 7, "put", {K1, Value::integer(10)}, Value::nil())
                .acquire(1, 0)                                    // 3 sync
                .release(1, 0)                                    // 4 sync
                .invoke(2, 7, "put", {K1, Value::integer(20)}, Value::nil())
                .invoke(1, 7, "put", {K2, Value::integer(1)}, Value::nil())
                .acquire(2, 0)                                    // 7 sync
                .release(2, 0)                                    // 8 sync
                .invoke(2, 7, "put", {K2, Value::integer(2)}, Value::nil())
                .invoke(1, 8, "get", {K1}, Value::integer(10))
                .join(0, 1)                                       // 11 sync
                .join(0, 2)                                       // 12 sync
                .invoke(0, 7, "put", {K1, Value::integer(30)}, Value::nil())
                .invoke(0, 8, "get", {K1}, Value::integer(30))
                .take();

  // Batch 4 is the engineered alignment; the neighbors make sure the
  // result does not depend on it.
  size_t Races =
      expectParallelMatchesReference(T, {1u, 2u, 3u}, {1, 2, 4, 5, 64});
  EXPECT_GT(Races, 0u) << "boundary trace should race (put/put on k1, k2)";
}

TEST(StreamPipelineTest, BackToBackSyncEventsYieldEmptyRuns) {
  // Consecutive sync events produce zero-length runs between them; the
  // pre-pass must advance the clock machine through each one without
  // dispatching anything, and the snapshots the *last* sync published are
  // the ones the next invoke observes.
  Value K = Value::string("k");
  TraceBuilder TB;
  TB.fork(0, 1).fork(0, 2);
  TB.acquire(1, 0).release(1, 0).acquire(1, 0).release(1, 0); // 4 in a row.
  TB.invoke(1, 7, "put", {K, Value::integer(1)}, Value::nil());
  TB.invoke(2, 7, "put", {K, Value::integer(2)}, Value::nil());
  TB.acquire(2, 1).release(2, 1);
  TB.join(0, 1).join(0, 2);
  Trace T = TB.take();
  size_t Syncs = 0;
  for (const Event &E : T)
    Syncs += E.isSync();

  size_t Races = expectParallelMatchesReference(T, {1u, 2u}, {1, 3, 64});
  EXPECT_GT(Races, 0u);

  if (!metrics::Enabled)
    return;
  // The run accounting must see every sync and record the empty runs.
  std::unique_ptr<StreamPipeline> P;
  PipelineOptions Opts;
  Opts.TheBackend = Backend::Parallel;
  Opts.Shards = 2;
  Opts.BatchSize = 64;
  runBinary(T, Opts, P);
  ParallelMetrics M = P->parallelDetector()->metricsSnapshot();
  EXPECT_EQ(M.SyncEvents, Syncs);
  EXPECT_EQ(M.PrepassEventsVisited, Syncs);
  // With every event in one batch, each sync opens a run and the batch
  // adds the trailing one; the back-to-back stretch makes several empty.
  EXPECT_EQ(M.Runs, Syncs + 1);
  EXPECT_GT(M.RunLengthPow2[0], 0u) << "no zero-length run recorded";
}

TEST(StreamPipelineTest, AllSyncTraceHasOnlyDegenerateRuns) {
  // The degenerate extreme of the run-based pre-pass: a trace of nothing
  // but synchronization. The caller thread visits every event, the shards
  // receive none, and every recorded run has length zero.
  TraceBuilder TB;
  TB.fork(0, 1);
  for (int I = 0; I != 9; ++I)
    TB.acquire(1, 0).release(1, 0);
  TB.join(0, 1);
  Trace T = TB.take();

  for (unsigned Shards : {1u, 2u}) {
    for (size_t Batch : {size_t(1), size_t(4), size_t(64)}) {
      SCOPED_TRACE(::testing::Message()
                   << "shards=" << Shards << " batch=" << Batch);
      std::unique_ptr<StreamPipeline> P;
      PipelineOptions Opts;
      Opts.TheBackend = Backend::Parallel;
      Opts.Shards = Shards;
      Opts.BatchSize = Batch;
      StreamSummary S = runBinary(T, Opts, P, /*EventsPerChunk=*/5);

      EXPECT_EQ(S.Events, T.size());
      EXPECT_EQ(S.Races, 0u);
      ParallelMetrics M = P->parallelDetector()->metricsSnapshot();
      EXPECT_EQ(M.Actions, 0u);
      uint64_t Routed = 0;
      for (const ParallelShardMetrics &SM : M.Shards)
        Routed += SM.RoutedEvents;
      EXPECT_EQ(Routed, 0u);
      if (metrics::Enabled) {
        EXPECT_EQ(M.SyncEvents, T.size());
        EXPECT_EQ(M.PrepassEventsVisited, T.size());
        EXPECT_EQ(M.RunLengthMax, 0u);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// FastTrack backend
//===----------------------------------------------------------------------===//

TEST(StreamPipelineTest, FastTrackBinaryMatchesMaterialized) {
  Trace T = testgen::randomTrace(17, 4, 40, 4);

  FastTrackDetector Reference;
  Reference.processTrace(T);

  std::unique_ptr<StreamPipeline> P;
  size_t Callbacks = 0;
  std::string Bytes = encodeWire(T);
  std::istringstream In(Bytes);
  DiagnosticEngine Diags;
  BinaryStreamSource Source(In, Diags);
  P = std::make_unique<StreamPipeline>(PipelineOptions{Backend::FastTrack});
  P->setMemoryRaceCallback([&Callbacks](const MemoryRace &) { ++Callbacks; });
  StreamSummary S = P->run(Source);

  EXPECT_EQ(S.MemoryRaces, Reference.races().size());
  EXPECT_EQ(Callbacks, Reference.races().size());
  ASSERT_EQ(P->memoryRaces().size(), Reference.races().size());
  for (size_t I = 0; I != Reference.races().size(); ++I) {
    const MemoryRace &A = P->memoryRaces()[I];
    const MemoryRace &B = Reference.races()[I];
    EXPECT_EQ(A.EventIndex, B.EventIndex) << "race " << I;
    EXPECT_EQ(A.Var, B.Var) << "race " << I;
    EXPECT_EQ(A.Access, B.Access) << "race " << I;
    EXPECT_EQ(A.PriorThread, B.PriorThread) << "race " << I;
    EXPECT_EQ(A.CurrentThread, B.CurrentThread) << "race " << I;
  }
}

//===----------------------------------------------------------------------===//
// Atomicity backend
//===----------------------------------------------------------------------===//

TEST(StreamPipelineTest, AtomicityBinaryMatchesMaterialized) {
  // Wrap each worker op stream in transactions by hand: reuse the random
  // trace and inject TxBegin/TxEnd around every thread's whole run.
  Trace Base = testgen::randomTrace(8, 3, 25, 3);
  Trace T;
  std::set<uint32_t> Started;
  for (size_t I = 0; I != Base.size(); ++I) {
    const Event &E = Base[I];
    if (E.kind() == EventKind::Invoke &&
        Started.insert(E.thread().index()).second)
      T.append(Event::txBegin(E.thread()));
    T.append(E);
  }
  for (uint32_t Tid : Started)
    T.append(Event::txEnd(ThreadId(Tid)));

  OnlineAtomicityChecker Reference;
  Reference.setDefaultProvider(&dictRep());
  Reference.processTrace(T);

  std::unique_ptr<StreamPipeline> P;
  StreamSummary S = runBinary(T, {Backend::Atomicity}, P);

  EXPECT_EQ(S.Violations, Reference.violations().size());
  ASSERT_EQ(P->violations().size(), Reference.violations().size());
  for (size_t I = 0; I != Reference.violations().size(); ++I) {
    EXPECT_EQ(P->violations()[I].Thread, Reference.violations()[I].Thread);
    EXPECT_EQ(P->violations()[I].BeginEvent,
              Reference.violations()[I].BeginEvent);
    EXPECT_EQ(P->violations()[I].EndEvent, Reference.violations()[I].EndEvent);
  }
}

//===----------------------------------------------------------------------===//
// Live push from a SimRuntime
//===----------------------------------------------------------------------===//

TEST(StreamPipelineTest, LiveRuntimePushMatchesRecordedTrace) {
  // Drive the same deterministic execution twice: once recording a Trace
  // for the reference detector, once pushing straight into the pipeline.
  auto runInto = [](EventSink &Sink) {
    SimRuntime RT(4242);
    InstrumentedMap Map(RT);
    ThreadId Main = RT.addInitialThread();
    RT.schedule(Main, [&](SimThread &T) {
      ThreadId A = T.fork([&Map](SimThread &T2) {
        Map.put(T2, Value::integer(1), Value::integer(10));
        Map.size(T2);
      });
      ThreadId B = T.fork([&Map](SimThread &T2) {
        Map.put(T2, Value::integer(1), Value::integer(20));
      });
      T.defer([A](SimThread &T3) { T3.join(A); });
      T.defer([B](SimThread &T3) { T3.join(B); });
      T.defer([&Map](SimThread &T3) { Map.get(T3, Value::integer(1)); });
    });
    RT.run(Sink);
  };

  TraceRecorder Recorder;
  runInto(Recorder);
  CommutativityRaceDetector Reference;
  Reference.setDefaultProvider(&dictRep());
  Reference.processTrace(Recorder.trace());

  StreamPipeline P({Backend::Sequential});
  P.setDefaultProvider(&dictRep());
  runInto(P);
  P.finish();

  EXPECT_EQ(P.eventsProcessed(), Recorder.trace().size());
  expectRacesIdentical(P.races(), Reference.races());
  EXPECT_GT(P.races().size(), 0u) << "expected a put/put race";
}

//===----------------------------------------------------------------------===//
// Summary bookkeeping
//===----------------------------------------------------------------------===//

TEST(StreamPipelineTest, SummaryCountsDistinctObjects) {
  Trace T = testgen::randomTrace(2, 4, 40, 6);
  std::unique_ptr<StreamPipeline> P;
  StreamSummary S = runBinary(T, {Backend::Sequential}, P);

  std::set<uint32_t> Objects;
  for (const CommutativityRace &R : P->races())
    Objects.insert(R.Current.object().index());
  EXPECT_EQ(S.DistinctRacyObjects, Objects.size());
  EXPECT_EQ(S.clean(), P->races().empty());
}
