//===- tests/EpochClockTest.cpp - EpochClock unit tests -----------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for the adaptive epoch clock: representation transitions
/// (⊥ → epoch → shared), O(1) leq probes, accumulation ordering cases, and
/// the FASTTRACK-style setEpoch/escalate/setLocal operations.
///
//===----------------------------------------------------------------------===//

#include "support/EpochClock.h"

#include <gtest/gtest.h>

using namespace crd;

namespace {

VectorClock vc(std::vector<uint32_t> Components) {
  return VectorClock(std::move(Components));
}

TEST(EpochClockTest, DefaultIsBottom) {
  EpochClock C;
  EXPECT_TRUE(C.isBottom());
  EXPECT_FALSE(C.isEpoch());
  EXPECT_FALSE(C.isShared());
  // ⊥ ⊑ everything, including ⊥.
  EXPECT_TRUE(C.leq(VectorClock()));
  EXPECT_TRUE(C.leq(vc({1, 2})));
  EXPECT_EQ(C.toClock(), VectorClock());
}

TEST(EpochClockTest, FirstAccumulateFormsEpoch) {
  EpochClock C;
  C.accumulate(vc({0, 3, 1}), ThreadId(1));
  ASSERT_TRUE(C.isEpoch());
  EXPECT_EQ(C.epochThread(), ThreadId(1));
  EXPECT_EQ(C.epochTime(), 3u);
  // The materialization is the epoch's single component.
  EXPECT_EQ(C.toClock(), vc({0, 3}));
}

TEST(EpochClockTest, EpochLeqProbesOnlyOwnComponent) {
  EpochClock C;
  C.accumulate(vc({0, 3, 1}), ThreadId(1));
  EXPECT_TRUE(C.leq(vc({0, 3})));
  EXPECT_TRUE(C.leq(vc({9, 4, 9})));
  EXPECT_FALSE(C.leq(vc({9, 2, 9})));
  EXPECT_FALSE(C.leq(VectorClock()));
}

TEST(EpochClockTest, OrderedAccumulationStaysCompressed) {
  // T1's event, then a T2 event whose clock absorbed T1's: total HB order,
  // so the epoch merely advances — no escalation.
  EpochClock C;
  C.accumulate(vc({0, 3}), ThreadId(1));
  C.accumulate(vc({0, 3, 5}), ThreadId(2));
  ASSERT_TRUE(C.isEpoch());
  EXPECT_EQ(C.epochThread(), ThreadId(2));
  EXPECT_EQ(C.epochTime(), 5u);
}

TEST(EpochClockTest, SameThreadAccumulationAdvancesEpoch) {
  EpochClock C;
  C.accumulate(vc({0, 3}), ThreadId(1));
  C.accumulate(vc({2, 7}), ThreadId(1));
  ASSERT_TRUE(C.isEpoch());
  EXPECT_EQ(C.epochTime(), 7u);
}

TEST(EpochClockTest, ConcurrentAccumulationEscalates) {
  // T1@3, then a concurrent T2 event that never saw T1's time 3.
  EpochClock C;
  C.accumulate(vc({0, 3}), ThreadId(1));
  C.accumulate(vc({0, 1, 5}), ThreadId(2));
  ASSERT_TRUE(C.isShared());
  // Escalation keeps the old epoch component and joins the new clock.
  EXPECT_EQ(C.toClock(), vc({0, 3, 5}));
  // Probes now require both components.
  EXPECT_TRUE(C.leq(vc({7, 3, 5})));
  EXPECT_FALSE(C.leq(vc({7, 2, 5})));
  EXPECT_FALSE(C.leq(vc({7, 3, 4})));
}

TEST(EpochClockTest, SharedAccumulationJoins) {
  EpochClock C;
  C.accumulate(vc({0, 3}), ThreadId(1));
  C.accumulate(vc({0, 1, 5}), ThreadId(2));
  ASSERT_TRUE(C.isShared());
  C.accumulate(vc({4, 1, 1}), ThreadId(0));
  EXPECT_EQ(C.toClock(), vc({4, 3, 5}));
  // Once shared, always shared — even for an ordered-after clock.
  C.accumulate(vc({9, 9, 9}), ThreadId(0));
  EXPECT_TRUE(C.isShared());
  EXPECT_EQ(C.toClock(), vc({9, 9, 9}));
}

TEST(EpochClockTest, EscalateSeedsFromEpoch) {
  EpochClock C;
  C.setEpoch(ThreadId(2), 4);
  C.escalate();
  ASSERT_TRUE(C.isShared());
  EXPECT_EQ(C.sharedClock(), vc({0, 0, 4}));
  // Escalating again is a no-op.
  C.escalate();
  EXPECT_EQ(C.sharedClock(), vc({0, 0, 4}));
}

TEST(EpochClockTest, EscalateFromBottomIsEmptyShared) {
  EpochClock C;
  C.escalate();
  ASSERT_TRUE(C.isShared());
  EXPECT_EQ(C.sharedClock(), VectorClock());
  EXPECT_FALSE(C.isBottom()); // Shared, even though the clock is ⊥.
}

TEST(EpochClockTest, SetLocalAndLocalOf) {
  EpochClock C;
  C.setEpoch(ThreadId(1), 3);
  EXPECT_EQ(C.localOf(ThreadId(1)), 3u);
  EXPECT_EQ(C.localOf(ThreadId(2)), 0u);
  C.escalate();
  C.setLocal(ThreadId(2), 5);
  EXPECT_EQ(C.localOf(ThreadId(1)), 3u);
  EXPECT_EQ(C.localOf(ThreadId(2)), 5u);
}

TEST(EpochClockTest, SameEpochMatchesOnlyExactEpoch) {
  EpochClock C;
  EXPECT_FALSE(C.sameEpoch(ThreadId(0), 0)); // ⊥ is not an epoch.
  C.setEpoch(ThreadId(1), 3);
  EXPECT_TRUE(C.sameEpoch(ThreadId(1), 3));
  EXPECT_FALSE(C.sameEpoch(ThreadId(1), 4));
  EXPECT_FALSE(C.sameEpoch(ThreadId(2), 3));
  C.escalate();
  EXPECT_FALSE(C.sameEpoch(ThreadId(1), 3)); // Shared never matches.
}

TEST(EpochClockTest, SetEpochDeflatesShared) {
  EpochClock C;
  C.setEpoch(ThreadId(0), 1);
  C.escalate();
  C.setLocal(ThreadId(3), 9);
  C.setEpoch(ThreadId(2), 2); // FASTTRACK write-after-shared-read deflation.
  ASSERT_TRUE(C.isEpoch());
  EXPECT_EQ(C.epochThread(), ThreadId(2));
  EXPECT_EQ(C.epochTime(), 2u);
}

TEST(EpochClockTest, ClearResetsToBottom) {
  EpochClock C;
  C.accumulate(vc({0, 3}), ThreadId(1));
  C.accumulate(vc({0, 1, 5}), ThreadId(2));
  C.clear();
  EXPECT_TRUE(C.isBottom());
  EXPECT_TRUE(C.leq(VectorClock()));
}

TEST(EpochClockTest, CopySemanticsAreDeep) {
  EpochClock A;
  A.accumulate(vc({0, 3}), ThreadId(1));
  A.accumulate(vc({0, 1, 5}), ThreadId(2));
  EpochClock B = A;
  B.accumulate(vc({8, 1, 1}), ThreadId(0));
  EXPECT_EQ(A.toClock(), vc({0, 3, 5})); // A unaffected by B's join.
  EXPECT_EQ(B.toClock(), vc({8, 3, 5}));
  A = B;
  EXPECT_EQ(A.toClock(), vc({8, 3, 5}));
}

} // namespace
