//===- tests/SpecTest.cpp - formula / fragment / builtin spec tests -----------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "spec/Builtins.h"
#include "spec/Fragment.h"
#include "spec/Spec.h"

#include <gtest/gtest.h>

using namespace crd;

namespace {

Term x(uint32_t P) { return Term::var(Side::First, P); }
Term y(uint32_t P) { return Term::var(Side::Second, P); }
FormulaPtr eq(Term A, Term B) { return Formula::atom(PredKind::Eq, A, B); }
FormulaPtr ne(Term A, Term B) { return Formula::atom(PredKind::Ne, A, B); }

Action put(std::string_view K, Value V, Value P, uint32_t Obj = 1) {
  return Action(ObjectId(Obj), symbol("put"), {Value::string(K), V}, P);
}
Action get(std::string_view K, Value V, uint32_t Obj = 1) {
  return Action(ObjectId(Obj), symbol("get"), {Value::string(K)}, V);
}
Action size(int64_t R, uint32_t Obj = 1) {
  return Action(ObjectId(Obj), symbol("size"), {}, Value::integer(R));
}

} // namespace

//===----------------------------------------------------------------------===//
// Formula construction and evaluation
//===----------------------------------------------------------------------===//

TEST(FormulaTest, ConstantFolding) {
  EXPECT_TRUE(Formula::andOf(Formula::truth(true), Formula::truth(true))->isTrue());
  EXPECT_TRUE(Formula::andOf(Formula::truth(true), Formula::truth(false))->isFalse());
  EXPECT_TRUE(Formula::orOf(Formula::truth(false), Formula::truth(true))->isTrue());
  EXPECT_TRUE(Formula::notOf(Formula::truth(true))->isFalse());
  // Atoms over two constants fold immediately.
  EXPECT_TRUE(Formula::atom(PredKind::Eq, Term::constant(Value::integer(3)),
                            Term::constant(Value::integer(3)))
                  ->isTrue());
  EXPECT_TRUE(Formula::atom(PredKind::Lt, Term::constant(Value::integer(5)),
                            Term::constant(Value::integer(3)))
                  ->isFalse());
}

TEST(FormulaTest, NotPushesIntoAtoms) {
  FormulaPtr F = Formula::notOf(eq(x(0), y(0)));
  ASSERT_EQ(F->kind(), Formula::Kind::Atom);
  EXPECT_EQ(F->pred(), PredKind::Ne);
}

TEST(FormulaTest, EvaluateDictionaryPutPut) {
  // k1 != k2 || (v1 == p1 && v2 == p2), positions k=0 v=1 p=2.
  FormulaPtr F = Formula::orOf(ne(x(0), y(0)),
                               Formula::andOf(eq(x(1), x(2)), eq(y(1), y(2))));
  std::vector<Value> A = {Value::string("a"), Value::integer(1), Value::nil()};
  std::vector<Value> B = {Value::string("b"), Value::integer(2), Value::nil()};
  EXPECT_TRUE(F->evaluate(A, B)); // Different keys commute.

  std::vector<Value> C = {Value::string("a"), Value::integer(2), Value::nil()};
  EXPECT_FALSE(F->evaluate(A, C)); // Same key, both real writes.

  std::vector<Value> D = {Value::string("a"), Value::integer(1),
                          Value::integer(1)};
  EXPECT_TRUE(F->evaluate(D, D)); // Same key but both no-op writes.
}

TEST(FormulaTest, OrderedPredicates) {
  FormulaPtr F = Formula::atom(PredKind::Lt, x(0), y(0));
  std::vector<Value> A = {Value::integer(1)};
  std::vector<Value> B = {Value::integer(2)};
  EXPECT_TRUE(F->evaluate(A, B));
  EXPECT_FALSE(F->evaluate(B, A));
  EXPECT_FALSE(F->evaluate(A, A));

  FormulaPtr Ge = Formula::atom(PredKind::Ge, x(0), y(0));
  EXPECT_FALSE(Ge->evaluate(A, B));
  EXPECT_TRUE(Ge->evaluate(A, A));
}

TEST(FormulaTest, SwapSidesIsInvolutive) {
  FormulaPtr F = Formula::orOf(ne(x(0), y(0)),
                               Formula::andOf(eq(x(1), x(2)), eq(y(1), y(2))));
  FormulaPtr Swapped = F->swapSides();
  EXPECT_NE(F->toString(), Swapped->toString());
  EXPECT_EQ(F->toString(), Swapped->swapSides()->toString());

  // Semantically: F(a,b) == Swapped(b,a).
  std::vector<Value> A = {Value::string("a"), Value::integer(1), Value::nil()};
  std::vector<Value> B = {Value::string("a"), Value::integer(2),
                          Value::integer(9)};
  EXPECT_EQ(F->evaluate(A, B), Swapped->evaluate(B, A));
}

TEST(FormulaTest, Printing) {
  FormulaPtr F = Formula::orOf(ne(x(0), y(0)),
                               Formula::andOf(eq(x(1), x(2)), eq(y(1), y(2))));
  EXPECT_EQ(F->toString(), "x1 != y1 || x2 == x3 && y2 == y3");
  FormulaPtr G = Formula::andOf(Formula::orOf(ne(x(0), y(0)), eq(x(1), x(1))),
                                eq(y(0), y(0)));
  EXPECT_EQ(G->toString(), "(x1 != y1 || x2 == x2) && y1 == y1");
  EXPECT_EQ(Formula::atom(PredKind::Eq, x(1), Term::constant(Value::nil()))
                ->toString(),
            "x2 == nil");
}

TEST(FormulaTest, CollectAtoms) {
  FormulaPtr F = Formula::orOf(ne(x(0), y(0)),
                               Formula::andOf(eq(x(1), x(2)), eq(y(1), y(2))));
  std::vector<FormulaPtr> Atoms;
  F->collectAtoms(Atoms);
  EXPECT_EQ(Atoms.size(), 3u);
}

//===----------------------------------------------------------------------===//
// Fragments (Definitions 6.1–6.3)
//===----------------------------------------------------------------------===//

TEST(FragmentTest, AtomClassification) {
  EXPECT_EQ(classifyAtom(*ne(x(0), y(0))), AtomClass::LS);
  EXPECT_EQ(classifyAtom(*eq(x(1), x(2))), AtomClass::LB);
  EXPECT_EQ(classifyAtom(*eq(y(1), Term::constant(Value::nil()))),
            AtomClass::LB);
  // Cross-side equality and cross-side ordering are not in ECL.
  EXPECT_EQ(classifyAtom(*eq(x(0), y(0))), AtomClass::Mixed);
  EXPECT_EQ(classifyAtom(*Formula::atom(PredKind::Lt, x(0), y(0))),
            AtomClass::Mixed);
  // A disequality against a constant is LB, not LS.
  EXPECT_EQ(classifyAtom(*ne(x(0), Term::constant(Value::nil()))),
            AtomClass::LB);
}

TEST(FragmentTest, LSMembership) {
  EXPECT_TRUE(isLS(*Formula::truth(true)));
  EXPECT_TRUE(isLS(*Formula::truth(false)));
  EXPECT_TRUE(isLS(*ne(x(0), y(0))));
  EXPECT_TRUE(isLS(*Formula::andOf(ne(x(0), y(0)), ne(x(1), y(2)))));
  EXPECT_FALSE(isLS(*Formula::orOf(ne(x(0), y(0)), ne(x(1), y(2)))));
  EXPECT_FALSE(isLS(*eq(x(0), x(1))));
}

TEST(FragmentTest, LBMembership) {
  // The paper's example: x < y and 0 < z are LB; x < z is not.
  FormulaPtr XltY = Formula::atom(PredKind::Lt, x(0), x(1));
  FormulaPtr ZgtZero =
      Formula::atom(PredKind::Gt, y(0), Term::constant(Value::integer(0)));
  EXPECT_TRUE(isLB(*XltY));
  EXPECT_TRUE(isLB(*ZgtZero));
  EXPECT_TRUE(isLB(*Formula::andOf(XltY, ZgtZero)));
  EXPECT_TRUE(isLB(*Formula::orOf(XltY, ZgtZero)));
  EXPECT_FALSE(isLB(*Formula::atom(PredKind::Lt, x(0), y(0))));
  EXPECT_FALSE(isLB(*ne(x(0), y(0)))); // LS atom is not LB.
}

TEST(FragmentTest, ECLMembership) {
  // The dictionary put/put formula: disjunction of LS atom and LB part.
  FormulaPtr PutPut = Formula::orOf(
      ne(x(0), y(0)), Formula::andOf(eq(x(1), x(2)), eq(y(1), y(2))));
  EXPECT_TRUE(isECL(*PutPut));
  // Not in SIMPLE: contains a disjunction and an equality.
  EXPECT_FALSE(isLS(*PutPut));

  // X ∨ X with both sides non-LB is NOT ECL.
  FormulaPtr BadOr = Formula::orOf(ne(x(0), y(0)), ne(x(1), y(1)));
  EXPECT_FALSE(isECL(*BadOr));
  auto Reason = explainNotECL(BadOr);
  ASSERT_TRUE(Reason);
  EXPECT_NE(Reason->find("X ∨ B"), std::string::npos);

  // Mixed atom is not ECL.
  FormulaPtr Mixed = eq(x(0), y(0));
  EXPECT_FALSE(isECL(*Mixed));
  EXPECT_TRUE(explainNotECL(Mixed));

  // X ∧ X is fine even when both operands are full ECL formulas.
  EXPECT_TRUE(isECL(*Formula::andOf(PutPut, PutPut)));
  // (X ∨ B) with the LB operand on the left also accepted.
  EXPECT_TRUE(isECL(*Formula::orOf(eq(x(1), x(2)), ne(x(0), y(0)))));
}

TEST(FragmentTest, ExplainIsNulloptForECL) {
  FormulaPtr PutGet = Formula::orOf(ne(x(0), y(0)), eq(x(1), x(2)));
  EXPECT_FALSE(explainNotECL(PutGet));
}

TEST(FragmentTest, BooleanEquivalence) {
  FormulaPtr A = Formula::orOf(ne(x(0), y(0)), eq(x(1), x(2)));
  FormulaPtr B = Formula::orOf(eq(x(1), x(2)), ne(x(0), y(0)));
  EXPECT_EQ(equivalentUnderBooleanAbstraction(*A, *B), std::optional(true));
  EXPECT_EQ(equivalentUnderBooleanAbstraction(*A, *Formula::truth(true)),
            std::optional(false));
  // q and ¬¬q.
  FormulaPtr Q = eq(x(0), x(1));
  EXPECT_EQ(equivalentUnderBooleanAbstraction(
                *Q, *Formula::notOf(Formula::notOf(Q))),
            std::optional(true));
  // x != y vs !(x == y): same canonical atom.
  EXPECT_EQ(equivalentUnderBooleanAbstraction(*ne(x(0), x(1)),
                                              *Formula::notOf(eq(x(0), x(1)))),
            std::optional(true));
  // Lt/Gt mirroring: a < b ≡ b > a.
  EXPECT_EQ(equivalentUnderBooleanAbstraction(
                *Formula::atom(PredKind::Lt, x(0), x(1)),
                *Formula::atom(PredKind::Gt, x(1), x(0))),
            std::optional(true));
}

//===----------------------------------------------------------------------===//
// ObjectSpec
//===----------------------------------------------------------------------===//

TEST(ObjectSpecTest, MethodTable) {
  const ObjectSpec &Dict = dictionarySpec();
  EXPECT_EQ(Dict.numMethods(), 3u);
  EXPECT_EQ(Dict.methodIndex(symbol("put")), std::optional<uint32_t>(0));
  EXPECT_EQ(Dict.methodIndex(symbol("size")), std::optional<uint32_t>(2));
  EXPECT_FALSE(Dict.methodIndex(symbol("remove")));
  EXPECT_EQ(Dict.method(0).numValues(), 3u);
}

TEST(ObjectSpecTest, OrientationSwapsTransparently) {
  const ObjectSpec &Dict = dictionarySpec();
  uint32_t Put = *Dict.methodIndex(symbol("put"));
  uint32_t Get = *Dict.methodIndex(symbol("get"));
  FormulaPtr PG = Dict.commutesFormula(Put, Get);
  FormulaPtr GP = Dict.commutesFormula(Get, Put);
  ASSERT_TRUE(PG && GP);
  // get-first orientation references put's values on the Second side.
  EXPECT_EQ(GP->toString(), PG->swapSides()->toString());
}

TEST(ObjectSpecTest, CommuteMatchesFig6) {
  const ObjectSpec &Dict = dictionarySpec();
  // Same key, real writes: never commute.
  EXPECT_FALSE(Dict.commute(put("a", Value::integer(1), Value::nil()),
                            put("a", Value::integer(2), Value::integer(1))));
  // Different keys always commute.
  EXPECT_TRUE(Dict.commute(put("a", Value::integer(1), Value::nil()),
                           put("b", Value::integer(2), Value::nil())));
  // put/get same key: commutes only when the put is a no-op.
  EXPECT_FALSE(Dict.commute(put("a", Value::integer(1), Value::nil()),
                            get("a", Value::integer(1))));
  EXPECT_TRUE(Dict.commute(put("a", Value::integer(1), Value::integer(1)),
                           get("a", Value::integer(1))));
  // put/size: commutes iff the size did not change.
  EXPECT_FALSE(Dict.commute(put("a", Value::integer(1), Value::nil()),
                            size(1)));
  EXPECT_TRUE(Dict.commute(put("a", Value::integer(2), Value::integer(1)),
                           size(1)));
  // Removing (storing nil) a present key resizes.
  EXPECT_FALSE(Dict.commute(put("a", Value::nil(), Value::integer(1)),
                            size(1)));
  // get/get, get/size, size/size always commute.
  EXPECT_TRUE(Dict.commute(get("a", Value::nil()), get("a", Value::nil())));
  EXPECT_TRUE(Dict.commute(get("a", Value::nil()), size(0)));
  EXPECT_TRUE(Dict.commute(size(0), size(0)));
  // Symmetric orientation.
  EXPECT_FALSE(Dict.commute(size(1),
                            put("a", Value::integer(1), Value::nil())));
}

TEST(ObjectSpecTest, UnspecifiedPairNeverCommutes) {
  ObjectSpec Spec("partial");
  uint32_t A = Spec.addMethod({symbol("a"), 0, 0});
  Spec.addMethod({symbol("b"), 0, 0});
  Spec.setCommutes(A, A, Formula::truth(true));
  Action ActA(ObjectId(0), symbol("a"), {}, std::vector<Value>{});
  Action ActB(ObjectId(0), symbol("b"), {}, std::vector<Value>{});
  EXPECT_TRUE(Spec.commute(ActA, ActA));
  EXPECT_FALSE(Spec.commute(ActA, ActB));
}

TEST(ObjectSpecTest, ValidateAcceptsBuiltins) {
  for (const ObjectSpec *Spec :
       {&dictionarySpec(), &setSpec(), &counterSpec(), &registerSpec()}) {
    DiagnosticEngine Diags;
    EXPECT_TRUE(Spec->validate(Diags)) << Spec->name() << ": "
                                       << Diags.toString();
  }
}

TEST(ObjectSpecTest, ValidateRejectsAsymmetricSelfPair) {
  ObjectSpec Spec("bad");
  uint32_t M = Spec.addMethod({symbol("m"), 1, 0});
  // ϕ^m_m := x1 == 0 — not symmetric (says nothing about y1).
  Spec.setCommutes(M, M,
                   Formula::atom(PredKind::Eq, Term::var(Side::First, 0),
                                 Term::constant(Value::integer(0))));
  DiagnosticEngine Diags;
  EXPECT_FALSE(Spec.validate(Diags));
}

TEST(ObjectSpecTest, ValidateRejectsOutOfRangePosition) {
  ObjectSpec Spec("bad");
  uint32_t M = Spec.addMethod({symbol("m"), 1, 0}); // Only position 0 exists.
  Spec.setCommutes(M, M, Formula::andOf(eq(x(5), x(5)), eq(y(5), y(5))));
  DiagnosticEngine Diags;
  EXPECT_FALSE(Spec.validate(Diags));
}

TEST(ObjectSpecTest, ValidateWarnsOnMissingPair) {
  ObjectSpec Spec("partial");
  uint32_t A = Spec.addMethod({symbol("a"), 0, 0});
  Spec.setCommutes(A, A, Formula::truth(true));
  Spec.addMethod({symbol("b"), 0, 0});
  DiagnosticEngine Diags;
  EXPECT_TRUE(Spec.validate(Diags)); // Warnings only.
  EXPECT_FALSE(Diags.empty());
}

TEST(ObjectSpecTest, SetSpecSemantics) {
  const ObjectSpec &S = setSpec();
  auto Add = [](std::string_view K, bool Changed) {
    return Action(ObjectId(0), symbol("add"), {Value::string(K)},
                  Value::boolean(Changed));
  };
  auto SizeA = [](int64_t N) {
    return Action(ObjectId(0), symbol("size"), {}, Value::integer(N));
  };
  EXPECT_FALSE(S.commute(Add("k", true), Add("k", false)));
  EXPECT_TRUE(S.commute(Add("k", false), Add("k", false)));
  EXPECT_TRUE(S.commute(Add("k", true), Add("j", true)));
  EXPECT_FALSE(S.commute(Add("k", true), SizeA(3)));
  EXPECT_TRUE(S.commute(Add("k", false), SizeA(3)));
}

TEST(ObjectSpecTest, RegisterSpecShowsECLLimits) {
  const ObjectSpec &R = registerSpec();
  auto Write = [](int64_t V, int64_t P) {
    return Action(ObjectId(0), symbol("write"), {Value::integer(V)},
                  Value::integer(P));
  };
  // Both writes no-ops: commute.
  EXPECT_TRUE(R.commute(Write(5, 5), Write(5, 5)));
  // Writing the same value but observing different previous values: the
  // ECL spec conservatively reports non-commutative.
  EXPECT_FALSE(R.commute(Write(5, 1), Write(5, 5)));
}
