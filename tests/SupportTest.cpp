//===- tests/SupportTest.cpp - support library tests --------------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/Symbol.h"
#include "support/Value.h"
#include "support/VectorClock.h"

#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

using namespace crd;

//===----------------------------------------------------------------------===//
// Symbol
//===----------------------------------------------------------------------===//

TEST(SymbolTest, InternDeduplicates) {
  SymbolTable Table;
  Symbol A = Table.intern("put");
  Symbol B = Table.intern("put");
  Symbol C = Table.intern("get");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(Table.size(), 2u);
}

TEST(SymbolTest, StrRoundTrips) {
  SymbolTable Table;
  Symbol A = Table.intern("a.com");
  EXPECT_EQ(Table.str(A), "a.com");
}

TEST(SymbolTest, SpellingsStayValidAsTableGrows) {
  SymbolTable Table;
  Symbol First = Table.intern("first");
  std::string_view View = Table.str(First);
  for (int I = 0; I != 1000; ++I)
    Table.intern("sym" + std::to_string(I));
  EXPECT_EQ(View, "first");
}

TEST(SymbolTest, GlobalConvenience) {
  Symbol A = symbol("global-sym");
  EXPECT_EQ(A.str(), "global-sym");
  EXPECT_EQ(symbol("global-sym"), A);
}

TEST(SymbolTest, EmptyStringIsInternable) {
  SymbolTable Table;
  Symbol Empty = Table.intern("");
  EXPECT_EQ(Table.str(Empty), "");
}

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::nil().isNil());
  EXPECT_EQ(Value::boolean(true).asBool(), true);
  EXPECT_EQ(Value::integer(-42).asInt(), -42);
  EXPECT_EQ(Value::string("x").asSymbol(), symbol("x"));
}

TEST(ValueTest, EqualityIsStructural) {
  EXPECT_EQ(Value::nil(), Value::nil());
  EXPECT_EQ(Value::integer(7), Value::integer(7));
  EXPECT_NE(Value::integer(7), Value::integer(8));
  EXPECT_EQ(Value::string("a.com"), Value::string("a.com"));
  EXPECT_NE(Value::string("a.com"), Value::string("b.com"));
  // Different kinds never compare equal, even with "similar" payloads.
  EXPECT_NE(Value::integer(0), Value::nil());
  EXPECT_NE(Value::integer(1), Value::boolean(true));
}

TEST(ValueTest, TotalOrderIsStrictWeak) {
  std::vector<Value> Values = {
      Value::nil(),           Value::boolean(false), Value::boolean(true),
      Value::integer(-5),     Value::integer(0),     Value::integer(99),
      Value::string("alpha"), Value::string("beta"),
  };
  for (const Value &A : Values) {
    EXPECT_FALSE(A < A);
    for (const Value &B : Values) {
      if (A < B) {
        EXPECT_FALSE(B < A);
      }
      if (!(A < B) && !(B < A)) {
        EXPECT_EQ(A, B);
      }
    }
  }
}

TEST(ValueTest, Printing) {
  EXPECT_EQ(Value::nil().toString(), "nil");
  EXPECT_EQ(Value::boolean(true).toString(), "true");
  EXPECT_EQ(Value::boolean(false).toString(), "false");
  EXPECT_EQ(Value::integer(-3).toString(), "-3");
  EXPECT_EQ(Value::string("a.com").toString(), "\"a.com\"");
}

TEST(ValueTest, HashingAgreesWithEquality) {
  EXPECT_EQ(Value::integer(5).hash(), Value::integer(5).hash());
  EXPECT_EQ(Value::string("k").hash(), Value::string("k").hash());
  std::unordered_set<Value> Set;
  Set.insert(Value::integer(1));
  Set.insert(Value::integer(1));
  Set.insert(Value::nil());
  EXPECT_EQ(Set.size(), 2u);
}

TEST(ValueTest, IntLessOnlyComparesIntegers) {
  EXPECT_TRUE(Value::intLess(Value::integer(1), Value::integer(2)));
  EXPECT_FALSE(Value::intLess(Value::integer(2), Value::integer(1)));
  EXPECT_FALSE(Value::intLess(Value::nil(), Value::integer(1)));
  EXPECT_FALSE(Value::intLess(Value::string("1"), Value::string("2")));
}

//===----------------------------------------------------------------------===//
// VectorClock
//===----------------------------------------------------------------------===//

TEST(VectorClockTest, BottomIsLeqEverything) {
  VectorClock Bottom;
  VectorClock C({3, 0, 1});
  EXPECT_TRUE(Bottom.isBottom());
  EXPECT_TRUE(Bottom.leq(C));
  EXPECT_TRUE(Bottom.leq(Bottom));
  EXPECT_FALSE(C.leq(Bottom));
}

TEST(VectorClockTest, PaperFig3Clocks) {
  // Fig 3: a1 has <3,0,1>, a2 has <2,1,0>, a3 has <4,1,1>.
  VectorClock A1({3, 0, 1});
  VectorClock A2({2, 1, 0});
  VectorClock A3({4, 1, 1});
  EXPECT_TRUE(A1.concurrentWith(A2));
  EXPECT_TRUE(A2.concurrentWith(A1));
  EXPECT_TRUE(A1.leq(A3));
  EXPECT_TRUE(A2.leq(A3));
  EXPECT_FALSE(A3.leq(A1));
  EXPECT_FALSE(A1.concurrentWith(A3));
}

TEST(VectorClockTest, JoinIsPointwiseMax) {
  VectorClock A({3, 0, 1});
  VectorClock B({2, 1, 0});
  VectorClock J = VectorClock::join(A, B);
  EXPECT_EQ(J, VectorClock({3, 1, 1}));
  EXPECT_TRUE(A.leq(J));
  EXPECT_TRUE(B.leq(J));
}

TEST(VectorClockTest, IncrementBumpsOneComponent) {
  VectorClock C;
  C.increment(ThreadId(2));
  EXPECT_EQ(C.get(ThreadId(2)), 1u);
  EXPECT_EQ(C.get(ThreadId(0)), 0u);
  C.increment(ThreadId(2));
  EXPECT_EQ(C.get(ThreadId(2)), 2u);
}

TEST(VectorClockTest, ImplicitZeroExtension) {
  VectorClock Short({1});
  VectorClock Long({1, 0, 0, 0});
  // Trailing zeros normalize away: structurally equal.
  EXPECT_EQ(Short, Long);
  EXPECT_EQ(Long.size(), 1u);
  EXPECT_EQ(Short.get(ThreadId(100)), 0u);
}

TEST(VectorClockTest, SetClearsAndNormalizes) {
  VectorClock C({0, 0, 5});
  C.set(ThreadId(2), 0);
  EXPECT_TRUE(C.isBottom());
  C.set(ThreadId(4), 0); // Setting zero beyond extent stays bottom.
  EXPECT_TRUE(C.isBottom());
}

TEST(VectorClockTest, Printing) {
  EXPECT_EQ(VectorClock({3, 0, 1}).toString(), "<3,0,1>");
  EXPECT_EQ(VectorClock().toString(), "<>");
}

/// Lattice laws on randomized clocks.
class VectorClockLatticeTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(VectorClockLatticeTest, LatticeLaws) {
  std::mt19937 Rng(GetParam());
  auto RandomClock = [&] {
    std::vector<uint32_t> Components(Rng() % 6);
    for (uint32_t &X : Components)
      X = Rng() % 4;
    return VectorClock(std::move(Components));
  };
  for (int I = 0; I != 100; ++I) {
    VectorClock A = RandomClock(), B = RandomClock(), C = RandomClock();
    // Commutativity and associativity of join.
    EXPECT_EQ(VectorClock::join(A, B), VectorClock::join(B, A));
    EXPECT_EQ(VectorClock::join(VectorClock::join(A, B), C),
              VectorClock::join(A, VectorClock::join(B, C)));
    // Idempotence.
    EXPECT_EQ(VectorClock::join(A, A), A);
    // Join is the least upper bound: A,B ⊑ A⊔B, and A⊑C ∧ B⊑C ⇒ A⊔B⊑C.
    VectorClock J = VectorClock::join(A, B);
    EXPECT_TRUE(A.leq(J));
    EXPECT_TRUE(B.leq(J));
    VectorClock Upper = VectorClock::join(J, C);
    EXPECT_TRUE(J.leq(Upper));
    // Antisymmetry.
    if (A.leq(B) && B.leq(A)) {
      EXPECT_EQ(A, B);
    }
    // Transitivity.
    if (A.leq(B) && B.leq(C)) {
      EXPECT_TRUE(A.leq(C));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorClockLatticeTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(DiagnosticsTest, CountsAndFormats) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error({3, 7}, "expected ')'");
  Diags.warning({}, "suspicious");
  Diags.note({1, 1}, "declared here");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.all().size(), 3u);
  EXPECT_EQ(Diags.all()[0].toString(), "3:7: error: expected ')'");
  EXPECT_EQ(Diags.all()[1].toString(), "warning: suspicious");
  EXPECT_EQ(Diags.all()[2].toString(), "1:1: note: declared here");
}
