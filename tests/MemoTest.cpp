//===- tests/MemoTest.cpp - chunk memoization tests -----------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The chunk-memoization contract (docs/trace-format.md "Versioning and
/// the content digest"): digests are stable across writer runs, races are
/// bit-identical under every --memo mode × backend × batch size, a
/// corrupted digest fails like a corrupted CRC, sync churn forces 100%
/// fallback without changing the report, legacy digest-less files still
/// decode, and the crd CLI validates --memo end to end.
///
//===----------------------------------------------------------------------===//

#include "Cli.h"
#include "detect/Race.h"
#include "spec/Builtins.h"
#include "translate/Translator.h"
#include "wire/EventSource.h"
#include "wire/StreamPipeline.h"
#include "wire/WireFormat.h"
#include "wire/WireReader.h"
#include "wire/WireWriter.h"
#include "workloads/RepetitiveTrace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>

using namespace crd;
using namespace crd::wire;

namespace {

RepetitiveTraceConfig smallConfig() {
  RepetitiveTraceConfig C;
  C.Threads = 2;
  C.DistinctBodies = 3;
  C.Repetitions = 5;
  C.EventsPerBody = 32;
  C.ObjectsPerBody = 2;
  return C;
}

std::string repetitiveWire(const RepetitiveTraceConfig &C,
                           size_t *EventsOut = nullptr) {
  std::ostringstream OS;
  size_t N = writeRepetitiveTrace(OS, C);
  if (EventsOut)
    *EventsOut = N;
  return OS.str();
}

struct AnalyzeResult {
  StreamSummary Summary;
  std::vector<CommutativityRace> Races;
  PipelineMemoStats Memo;
  WireReaderStats Reader;
};

AnalyzeResult analyzeWire(const std::string &Wire, PipelineOptions Opts) {
  DiagnosticEngine SpecDiags;
  auto Rep = translateSpec(dictionarySpec(), SpecDiags);
  EXPECT_TRUE(Rep) << SpecDiags.toString();
  std::istringstream In(Wire);
  DiagnosticEngine Diags;
  BinaryStreamSource Source(In, Diags);
  StreamPipeline P(Opts);
  P.setDefaultProvider(Rep.get());
  AnalyzeResult R;
  R.Summary = P.run(Source);
  EXPECT_FALSE(Source.failed()) << Diags.toString();
  R.Races = P.races();
  R.Memo = P.memoStats();
  R.Reader = Source.reader().stats();
  return R;
}

std::optional<WireFileInfo> scanString(const std::string &Wire) {
  std::istringstream In(Wire);
  DiagnosticEngine Diags;
  return scanWire(In, Diags);
}

} // namespace

// Two independent writer runs over the same logical events must produce
// byte-identical files and, per chunk, identical header digests — the
// property every cache in the memo stack keys on.
TEST(MemoTest, DigestStableAcrossWriterRuns) {
  RepetitiveTraceConfig C = smallConfig();
  std::string A = repetitiveWire(C), B = repetitiveWire(C);
  EXPECT_EQ(A, B);

  auto Info = scanString(A);
  ASSERT_TRUE(Info);
  size_t ExpectChunks = 1 + size_t(C.DistinctBodies) * C.Repetitions;
  ASSERT_EQ(Info->Chunks.size(), ExpectChunks);

  std::map<uint64_t, size_t> Counts;
  for (const WireChunkInfo &Ch : Info->Chunks) {
    EXPECT_TRUE(Ch.DigestInHeader);
    ++Counts[Ch.Digest];
  }
  // Prelude is unique; every body's digest recurs once per repetition.
  EXPECT_EQ(Counts.size(), 1 + size_t(C.DistinctBodies));
  size_t Repeated = 0;
  for (const auto &KV : Counts)
    Repeated += KV.second == C.Repetitions;
  EXPECT_EQ(Repeated, size_t(C.DistinctBodies));
}

// Races must be bit-identical (full struct equality, clocks included)
// across every memo mode, backend, and batch size; the layers that are
// supposed to engage must actually engage.
TEST(MemoTest, RacesBitIdenticalAcrossModesAndBackends) {
  size_t Events = 0;
  std::string Wire = repetitiveWire(smallConfig(), &Events);

  PipelineOptions SeqOff;
  AnalyzeResult Baseline = analyzeWire(Wire, SeqOff);
  ASSERT_EQ(Baseline.Summary.Events, Events);
  ASSERT_GT(Baseline.Races.size(), 0u);
  EXPECT_EQ(Baseline.Reader.MemoHits, 0u);
  EXPECT_EQ(Baseline.Reader.MemoCacheEntries, 0u);

  for (MemoMode Memo : {MemoMode::Off, MemoMode::Decode, MemoMode::Full}) {
    for (Backend B : {Backend::Sequential, Backend::Parallel}) {
      for (size_t Batch : {size_t(3), size_t(4096)}) {
        if (B == Backend::Sequential && Batch != 4096)
          continue; // Batch size only affects the parallel backend.
        PipelineOptions Opts;
        Opts.TheBackend = B;
        Opts.Shards = 2;
        Opts.BatchSize = Batch;
        Opts.Memo = Memo;
        AnalyzeResult R = analyzeWire(Wire, Opts);
        SCOPED_TRACE(testing::Message()
                     << "memo=" << int(Memo) << " backend=" << int(B)
                     << " batch=" << Batch);
        EXPECT_EQ(R.Summary.Events, Events);
        EXPECT_TRUE(R.Races == Baseline.Races);

        if (Memo == MemoMode::Off) {
          EXPECT_EQ(R.Reader.MemoHits, 0u);
        } else {
          // The decode cache serves every repeated body chunk.
          EXPECT_GT(R.Reader.MemoHits, 0u);
          EXPECT_GT(R.Reader.MemoBytesSaved, 0u);
          EXPECT_GT(R.Reader.MemoCacheEntries, 0u);
        }
        if (Memo == MemoMode::Full && B == Backend::Sequential) {
          EXPECT_GT(R.Memo.SummaryHits, 0u);
          EXPECT_GT(R.Memo.SummaryRecords, 0u);
          EXPECT_GT(R.Memo.EventsReplayed, 0u);
        } else {
          // Other modes/backends degrade to decode-level caching.
          EXPECT_EQ(R.Memo.SummaryHits, 0u);
          EXPECT_EQ(R.Memo.EventsReplayed, 0u);
        }
      }
    }
  }
}

// A corrupted digest byte must fail the file exactly like a corrupted
// payload fails the CRC: hard error, counted, diagnosed with the offset.
TEST(MemoTest, CorruptedDigestRejectedLikeCrc) {
  std::string Wire = repetitiveWire(smallConfig());

  // Flip a byte inside the first chunk header's digest field
  // (size u32 + crc u32 + digest u64 — see trace-format.md).
  std::string BadDigest = Wire;
  BadDigest[FileHeaderSize + 12] ^= 0x5a;
  {
    std::istringstream In(BadDigest);
    DiagnosticEngine Diags;
    WireReader Reader(In, Diags);
    Event E = Event::txBegin(ThreadId(0));
    while (Reader.next(E))
      ;
    EXPECT_TRUE(Reader.failed());
    EXPECT_EQ(Reader.stats().DigestErrors, 1u);
    EXPECT_EQ(Reader.stats().CrcErrors, 0u);
    EXPECT_NE(Diags.toString().find("chunk digest mismatch"),
              std::string::npos)
        << Diags.toString();
  }

  // Control: a payload flip is a CRC error (checked before the digest).
  std::string BadPayload = Wire;
  BadPayload[FileHeaderSize + DigestChunkHeaderSize + 3] ^= 0x5a;
  {
    std::istringstream In(BadPayload);
    DiagnosticEngine Diags;
    WireReader Reader(In, Diags);
    Event E = Event::txBegin(ThreadId(0));
    while (Reader.next(E))
      ;
    EXPECT_TRUE(Reader.failed());
    EXPECT_EQ(Reader.stats().CrcErrors, 1u);
    EXPECT_EQ(Reader.stats().DigestErrors, 0u);
  }
}

// Adversarial shape: lock churn before every body round bumps the
// worker clocks, so no body occurrence ever sees matching entry state.
// The summary layer must fall back to interpretation on 100% of chunks
// — zero replays, zero recorded summaries that survive — while the
// decode cache still hits and the report stays bit-identical.
TEST(MemoTest, SyncChurnForcesFullFallback) {
  RepetitiveTraceConfig C = smallConfig();
  C.SyncEveryBodies = 1;
  size_t Events = 0;
  std::string Wire = repetitiveWire(C, &Events);

  AnalyzeResult Off = analyzeWire(Wire, PipelineOptions{});
  PipelineOptions FullOpts;
  FullOpts.Memo = MemoMode::Full;
  AnalyzeResult Full = analyzeWire(Wire, FullOpts);

  EXPECT_EQ(Full.Summary.Events, Events);
  EXPECT_TRUE(Full.Races == Off.Races);
  EXPECT_GT(Full.Races.size(), 0u);
  EXPECT_EQ(Full.Memo.SummaryHits, 0u);
  EXPECT_EQ(Full.Memo.EventsReplayed, 0u);
  EXPECT_GT(Full.Memo.ChunksInterpreted, 0u);
  EXPECT_GT(Full.Reader.MemoHits, 0u); // Decode cache is version-blind.
}

// A digest-less (legacy) file must still decode with memoization
// requested — the caches simply never engage — and scanWire must compute
// the same digests the writer would have recorded.
TEST(MemoTest, LegacyDigestlessFileStillWorks) {
  RepetitiveTraceConfig C = smallConfig();
  std::string WithDigests = repetitiveWire(C);

  std::ostringstream OS;
  {
    WireWriter Writer(OS, C.EventsPerBody, /*WithDigests=*/false);
    buildRepetitiveTrace(C, [&](const Event &E) { Writer.append(E); });
  }
  std::string Legacy = OS.str();
  ASSERT_LT(Legacy.size(), WithDigests.size()); // 8 bytes saved per chunk.

  auto LegacyInfo = scanString(Legacy);
  auto DigestInfo = scanString(WithDigests);
  ASSERT_TRUE(LegacyInfo);
  ASSERT_TRUE(DigestInfo);
  ASSERT_EQ(LegacyInfo->Chunks.size(), DigestInfo->Chunks.size());
  for (size_t I = 0; I != LegacyInfo->Chunks.size(); ++I) {
    EXPECT_FALSE(LegacyInfo->Chunks[I].DigestInHeader);
    EXPECT_TRUE(DigestInfo->Chunks[I].DigestInHeader);
    // The scan computes what the writer would have stamped.
    EXPECT_EQ(LegacyInfo->Chunks[I].Digest, DigestInfo->Chunks[I].Digest);
  }

  AnalyzeResult Off = analyzeWire(WithDigests, PipelineOptions{});
  PipelineOptions FullOpts;
  FullOpts.Memo = MemoMode::Full;
  AnalyzeResult Full = analyzeWire(Legacy, FullOpts);
  EXPECT_TRUE(Full.Races == Off.Races);
  EXPECT_EQ(Full.Reader.MemoHits, 0u);
  EXPECT_EQ(Full.Memo.SummaryHits, 0u);
  EXPECT_GT(Full.Memo.ChunksInterpreted, 0u);
}

// CLI surface: --memo validation, the stats repetition line, profile's
// memo JSON, and the live-source rejection naming the --memo constraint.
TEST(MemoTest, CliMemoSurface) {
  std::string Path = testing::TempDir() + "memo_cli_test.crdb";
  {
    std::ofstream OS(Path, std::ios::binary);
    ASSERT_TRUE(OS.good());
    writeRepetitiveTrace(OS, smallConfig());
  }

  for (const char *Verb : {"check", "profile", "analyze", "bench"}) {
    std::ostringstream Out, Err;
    int RC = cli::crdMain({Verb, Path, "--memo=bogus"}, Out, Err);
    SCOPED_TRACE(Verb);
    EXPECT_EQ(RC, 2);
    EXPECT_NE(Err.str().find("unknown --memo mode 'bogus'"),
              std::string::npos)
        << Err.str();
    EXPECT_NE(Err.str().find("accepted: off, decode, full"),
              std::string::npos)
        << Err.str();
  }

  {
    std::ostringstream Out, Err;
    int RC = cli::crdMain({"profile", "--source=live", Path}, Out, Err);
    EXPECT_EQ(RC, 2);
    EXPECT_NE(Err.str().find("crd record --stress"), std::string::npos)
        << Err.str();
    EXPECT_NE(Err.str().find("--memo"), std::string::npos) << Err.str();
  }

  {
    std::ostringstream Out, Err;
    int RC = cli::crdMain({"stats", Path}, Out, Err);
    EXPECT_EQ(RC, 0) << Err.str();
    EXPECT_NE(Out.str().find("chunk repetition:"), std::string::npos)
        << Out.str();
    EXPECT_NE(Out.str().find("distinct digests"), std::string::npos);
  }

  {
    std::ostringstream Out, Err;
    int RC = cli::crdMain({"profile", Path, "--memo=full"}, Out, Err);
    EXPECT_EQ(RC, 0) << Err.str();
    EXPECT_NE(Out.str().find("\"mode\": \"full\""), std::string::npos)
        << Out.str();
    EXPECT_NE(Out.str().find("\"summary_hits\""), std::string::npos);
  }

  {
    // The trace is racy, so check exits 1 under every memo mode with the
    // same report line.
    std::string Reports[3];
    int I = 0;
    for (const char *Mode : {"off", "decode", "full"}) {
      std::ostringstream Out, Err;
      int RC = cli::crdMain(
          {"check", Path, std::string("--memo=") + Mode}, Out, Err);
      EXPECT_EQ(RC, 1) << Err.str();
      Reports[I++] = Out.str();
    }
    EXPECT_EQ(Reports[0], Reports[1]);
    EXPECT_EQ(Reports[0], Reports[2]);
  }
}
