//===- tests/SimRuntimeEdgeTest.cpp - scheduler edge cases --------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "runtime/InstrumentedMap.h"
#include "runtime/SimRuntime.h"
#include "trace/TraceIO.h"

#include <gtest/gtest.h>

using namespace crd;

TEST(SimRuntimeEdgeTest, ForkInsideDeferredStep) {
  SimRuntime RT(1);
  ThreadId Main = RT.addInitialThread();
  std::vector<std::string> Order;
  RT.schedule(Main, [&Order](SimThread &T) {
    Order.push_back("step");
    T.defer([&Order](SimThread &T2) {
      Order.push_back("deferred");
      T2.fork([&Order](SimThread &) { Order.push_back("grandchild"); });
    });
  });
  TraceRecorder Recorder;
  RT.run(Recorder);
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(Order[2], "grandchild");
  DiagnosticEngine Diags;
  EXPECT_TRUE(Recorder.trace().validate(Diags)) << Diags.toString();
}

TEST(SimRuntimeEdgeTest, ChainedJoins) {
  // Main joins A which itself joined B: the fork/join nesting must order
  // all of B's work before main's continuation.
  SimRuntime RT(3);
  ThreadId Main = RT.addInitialThread();
  std::vector<std::string> Order;
  RT.schedule(Main, [&RT, &Order](SimThread &T) {
    ThreadId A = T.fork([&RT, &Order](SimThread &TA) {
      ThreadId B =
          TA.fork([&Order](SimThread &) { Order.push_back("B"); });
      TA.join(B);
      TA.defer([&Order](SimThread &) { Order.push_back("A-after-B"); });
    });
    T.join(A);
    T.defer([&Order](SimThread &) { Order.push_back("main-after-A"); });
  });
  TraceRecorder Recorder;
  RT.run(Recorder);
  EXPECT_EQ(Order,
            (std::vector<std::string>{"B", "A-after-B", "main-after-A"}));
  DiagnosticEngine Diags;
  EXPECT_TRUE(Recorder.trace().validate(Diags)) << Diags.toString();
}

TEST(SimRuntimeEdgeTest, ManyThreadsAllComplete) {
  SimRuntime RT(11);
  ThreadId Main = RT.addInitialThread();
  auto Counter = std::make_shared<int>(0);
  RT.schedule(Main, [&RT, Counter](SimThread &T) {
    for (int W = 0; W != 50; ++W) {
      ThreadId Tid = T.fork([](SimThread &) {});
      for (int S = 0; S != 4; ++S)
        RT.schedule(Tid, [Counter](SimThread &) { ++*Counter; });
    }
  });
  NullSink Sink;
  RT.run(Sink);
  EXPECT_EQ(*Counter, 200);
  for (uint32_t T = 0; T != 51; ++T)
    EXPECT_TRUE(RT.finished(ThreadId(T)));
}

TEST(SimRuntimeEdgeTest, RandomDrawsAreSeedDependent) {
  auto Draws = [](uint64_t Seed) {
    SimRuntime RT(Seed);
    ThreadId Main = RT.addInitialThread();
    std::vector<uint64_t> Values;
    RT.schedule(Main, [&Values](SimThread &T) {
      for (int I = 0; I != 10; ++I)
        Values.push_back(T.random(1000));
    });
    NullSink Sink;
    RT.run(Sink);
    return Values;
  };
  EXPECT_EQ(Draws(5), Draws(5));
  EXPECT_NE(Draws(5), Draws(6));
}

TEST(SimRuntimeEdgeTest, TeeSinkDeliversToBoth) {
  SimRuntime RT(2);
  InstrumentedMap Map(RT);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&Map](SimThread &T) {
    Map.put(T, Value::integer(1), Value::integer(2));
  });
  TraceRecorder A, B;
  TeeSink Tee(A, B);
  RT.run(Tee);
  EXPECT_GT(A.trace().size(), 0u);
  EXPECT_EQ(traceToString(A.trace()), traceToString(B.trace()));
}

TEST(SimRuntimeEdgeTest, TeeWithNullStaysEnabled) {
  // A tee of a disabled and an enabled sink must stay enabled and deliver
  // to the enabled side only.
  SimRuntime RT(2);
  InstrumentedMap Map(RT);
  ThreadId Main = RT.addInitialThread();
  RT.schedule(Main, [&Map](SimThread &T) {
    Map.get(T, Value::integer(1));
  });
  NullSink Null;
  TraceRecorder Recorder;
  TeeSink Tee(Null, Recorder);
  EXPECT_TRUE(Tee.enabled());
  RT.run(Tee);
  EXPECT_GT(Recorder.trace().size(), 0u);
}

TEST(SimRuntimeEdgeTest, IdAllocatorsAreDisjointPerKind) {
  SimRuntime RT(1);
  ObjectId O1 = RT.newObject(), O2 = RT.newObject();
  VarId V1 = RT.newVar();
  LockId L1 = RT.newLock(), L2 = RT.newLock();
  EXPECT_NE(O1, O2);
  EXPECT_NE(L1, L2);
  EXPECT_EQ(V1.index(), 0u);
  EXPECT_EQ(O2.index(), 1u);
}

TEST(SimRuntimeEdgeTest, OfflineReplayMatchesOnlineAnalysis) {
  // Tee = record + (conceptually) online analysis; here we check that a
  // recorded trace replayed offline is byte-identical to a second record
  // of the same seeded run — the record/replay foundation the harness
  // relies on.
  auto Record = [] {
    SimRuntime RT(77);
    InstrumentedMap Map(RT);
    ThreadId Main = RT.addInitialThread();
    RT.schedule(Main, [&RT, &Map](SimThread &T) {
      for (int W = 0; W != 3; ++W) {
        ThreadId Tid = T.fork([](SimThread &) {});
        for (int I = 0; I != 10; ++I)
          RT.schedule(Tid, [&Map, I](SimThread &T2) {
            Map.put(T2, Value::integer(I % 4),
                    Value::integer(static_cast<int64_t>(T2.random(3))));
          });
      }
    });
    TraceRecorder Recorder;
    RT.run(Recorder);
    return traceToString(Recorder.trace());
  };
  EXPECT_EQ(Record(), Record());
}
