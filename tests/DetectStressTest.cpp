//===- tests/DetectStressTest.cpp - detector stress and scale tests -----------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "access/DictionaryRep.h"
#include "detect/CommutativityDetector.h"
#include "detect/FastTrack.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace crd;

namespace {

DictionaryRep &dictRep() {
  static DictionaryRep Rep;
  return Rep;
}

} // namespace

TEST(DetectStressTest, ManyObjectsIndependentState) {
  // 500 objects, two threads each putting to its own object: per-object
  // races only where keys collide.
  TraceBuilder TB;
  TB.fork(0, 1);
  const unsigned Objects = 500;
  for (unsigned O = 0; O != Objects; ++O) {
    // Even objects: same key from both threads (race). Odd: disjoint keys.
    TB.invoke(0, O, "put", {Value::integer(O % 2 ? 1 : 7), Value::integer(1)},
              Value::nil());
    TB.invoke(1, O, "put", {Value::integer(O % 2 ? 2 : 7), Value::integer(2)},
              O % 2 ? Value::nil() : Value::integer(1));
  }
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&dictRep());
  Detector.processTrace(TB.take());
  EXPECT_EQ(Detector.races().size(), Objects / 2);
  EXPECT_EQ(Detector.distinctRacyObjects(), Objects / 2);
}

TEST(DetectStressTest, ReclamationScalesDown) {
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&dictRep());
  const unsigned Objects = 200;
  for (unsigned O = 0; O != Objects; ++O)
    Detector.process(Event::invoke(
        ThreadId(0), Action(ObjectId(O), symbol("put"),
                            {Value::integer(1), Value::integer(1)},
                            Value::nil())));
  size_t Before = Detector.activePointCount();
  EXPECT_GE(Before, Objects); // At least one point per object.
  for (unsigned O = 0; O != Objects; O += 2)
    Detector.objectDied(ObjectId(O));
  EXPECT_LE(Detector.activePointCount(), Before / 2);
}

TEST(DetectStressTest, DeepForkChain) {
  // Thread i forks i+1; the last two threads race on a key. Vector clocks
  // grow to ~200 components; the detector must still order correctly.
  TraceBuilder TB;
  const uint32_t Depth = 200;
  for (uint32_t I = 0; I + 1 <= Depth; ++I)
    TB.fork(I, I + 1);
  // The fork chain orders ancestors before descendants: no race between
  // thread 0's action and the deepest thread's action on the same key...
  TB.invoke(0, 1, "put", {Value::string("k"), Value::integer(1)},
            Value::nil());
  // ...wait: thread 0's put happens *after* all forks in trace order, and
  // thread Depth's put below is unordered with it (the chain ordered only
  // the fork prefix). So these two DO race.
  TB.invoke(Depth, 1, "put", {Value::string("k"), Value::integer(2)},
            Value::integer(1));
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&dictRep());
  Detector.processTrace(TB.take());
  EXPECT_EQ(Detector.races().size(), 1u);

  // Ordered variant: the deepest thread's put after its own fork-chain
  // prefix vs an ancestor's put *before* forking it.
  TraceBuilder TB2;
  TB2.invoke(0, 1, "put", {Value::string("k"), Value::integer(1)},
             Value::nil());
  for (uint32_t I = 0; I + 1 <= Depth; ++I)
    TB2.fork(I, I + 1);
  TB2.invoke(Depth, 1, "put", {Value::string("k"), Value::integer(2)},
             Value::integer(1));
  CommutativityRaceDetector Detector2;
  Detector2.setDefaultProvider(&dictRep());
  Detector2.processTrace(TB2.take());
  EXPECT_TRUE(Detector2.races().empty());
}

TEST(DetectStressTest, LockPingPongLongTrace) {
  // Two threads alternate a lock around same-key puts for thousands of
  // iterations: never a race, and the active set stays at two points.
  TraceBuilder TB;
  TB.fork(0, 1);
  int64_t Counter = 0;
  for (unsigned I = 0; I != 2000; ++I) {
    uint32_t Tid = I % 2;
    TB.acquire(Tid, 0);
    TB.invoke(Tid, 1, "put", {Value::string("k"), Value::integer(Counter + 1)},
              Counter == 0 ? Value::nil() : Value::integer(Counter));
    ++Counter;
    TB.release(Tid, 0);
  }
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&dictRep());
  Detector.processTrace(TB.take());
  EXPECT_TRUE(Detector.races().empty());
  // One w:k point plus the first put's resize point.
  EXPECT_EQ(Detector.activePointCount(), 2u);
}

TEST(DetectStressTest, FastTrackManyVarsManyThreads) {
  TraceBuilder TB;
  const uint32_t Threads = 8;
  for (uint32_t T = 1; T != Threads; ++T)
    TB.fork(0, T);
  for (unsigned I = 0; I != 4000; ++I) {
    uint32_t Tid = I % Threads;
    uint32_t Var = (I * 7) % 60;
    // Each var is written only by (var % Threads): no write-write races,
    // but plenty of read traffic.
    if (Var % Threads == Tid)
      TB.write(Tid, Var);
    else
      TB.read(Tid, Var);
  }
  FastTrackDetector Detector;
  Detector.processTrace(TB.take());
  // Reads of vars written by other threads race with those writes.
  EXPECT_GT(Detector.races().size(), 0u);
  EXPECT_LE(Detector.distinctRacyVars(), 64u);
}

TEST(DetectStressTest, MixedSyncPatternsStayPrecise) {
  // A braided pattern: locks, forks and joins interleaved; the final
  // read-modify-write is fully ordered, so no race anywhere.
  TraceBuilder TB;
  TB.fork(0, 1).fork(0, 2);
  TB.acquire(1, 0);
  TB.invoke(1, 1, "put", {Value::string("a"), Value::integer(1)},
            Value::nil());
  TB.release(1, 0);
  TB.acquire(2, 0);
  TB.invoke(2, 1, "put", {Value::string("a"), Value::integer(2)},
            Value::integer(1));
  TB.release(2, 0);
  TB.join(0, 1).join(0, 2);
  TB.invoke(0, 1, "put", {Value::string("a"), Value::integer(3)},
            Value::integer(2));
  TB.invoke(0, 1, "size", {}, Value::integer(1));
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&dictRep());
  Detector.processTrace(TB.take());
  EXPECT_TRUE(Detector.races().empty());
}
