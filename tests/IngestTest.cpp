//===- tests/IngestTest.cpp - live multi-producer ingestion ------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// The live ingestion front-end (src/ingest): real producer threads
/// through per-thread SPSC rings into the collector's deterministic
/// merge. The load-bearing properties:
///
///  * per-producer FIFO — the merge never reorders one producer's events;
///  * the determinism contract — live detection and a replay of the wire
///    recording of the same run report bit-identical races, across
///    producer counts × ring capacities × both backpressure policies;
///  * Block is lossless, DropNewest counts every rejected event;
///  * a producer exiting mid-stream never loses its recorded tail;
///  * StreamPipeline::processBatch is equivalent to run() over a source.
///
//===----------------------------------------------------------------------===//

#include "access/DictionaryRep.h"
#include "ingest/RecorderSink.h"
#include "ingest/Session.h"
#include "runtime/InstrumentedMap.h"
#include "runtime/SimRuntime.h"
#include "runtime/Sink.h"
#include "support/Metrics.h"
#include "trace/EventBatch.h"
#include "wire/EventSource.h"
#include "wire/StreamPipeline.h"
#include "wire/WireWriter.h"
#include "TraceGen.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <thread>
#include <vector>

using namespace crd;
using namespace crd::ingest;

namespace {

const DictionaryRep &dictRep() {
  static DictionaryRep Rep;
  return Rep;
}

/// The fixed per-producer script used by the determinism tests: a
/// deterministic mix of shared-dictionary invokes and lock windows,
/// fully determined by (Tid, Ops). Shared objects + shared locks make
/// the merged trace race-rich and HB-rich.
void runScript(Recorder &R, unsigned Ops) {
  const uint32_t Tid = R.thread().index();
  Symbol Put = symbol("put");
  Symbol Get = symbol("get");
  uint64_t S = (Tid + 1) * 0x9e3779b97f4a7c15ull | 1;
  for (unsigned I = 0; I != Ops; ++I) {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    if (I % 16 == 0) {
      R.acquire(LockId(static_cast<uint32_t>(S % 3)));
      continue;
    }
    if (I % 16 == 15) {
      R.release(LockId(static_cast<uint32_t>(S % 3)));
      continue;
    }
    ObjectId Obj(static_cast<uint32_t>(S % 4));
    Value Key = Value::integer(static_cast<int64_t>((S >> 8) % 8));
    if (S % 2 == 0) {
      Value Vals[3] = {Key, Value::integer(static_cast<int64_t>(S >> 32)),
                       Value::nil()};
      Action View(Obj, Put, Vals, 2, 1);
      Action Owned = View;
      R.record(Event::invoke(R.thread(), std::move(Owned)));
    } else {
      Value Vals[2] = {Key, Value::nil()};
      Action View(Obj, Get, Vals, 1, 1);
      Action Owned = View;
      R.record(Event::invoke(R.thread(), std::move(Owned)));
    }
  }
  R.finish();
}

/// Decodes a wire buffer back into an event list.
std::vector<Event> decodeWire(const std::string &Bytes) {
  std::istringstream In(Bytes);
  DiagnosticEngine Diags;
  wire::BinaryStreamSource Src(In, Diags);
  std::vector<Event> Out;
  Event E = Event::txBegin(ThreadId(0));
  while (Src.next(E))
    Out.push_back(E); // Copy detaches payloads from the decoder arena.
  EXPECT_FALSE(Src.failed()) << Diags.toString();
  return Out;
}

std::vector<std::string> toStrings(const std::vector<Event> &Events) {
  std::vector<std::string> Out;
  Out.reserve(Events.size());
  for (const Event &E : Events)
    Out.push_back(E.toString());
  return Out;
}

TEST(IngestTest, SingleProducerOrderPreserved) {
  SessionOptions Opts;
  Opts.RingCapacity = 32;
  Session S(Opts);
  std::ostringstream WireBuf;
  wire::WireWriter Writer(WireBuf);
  S.setWireWriter(&Writer);

  Recorder R = S.attach();
  S.start();
  std::vector<std::string> Script;
  std::thread Producer([&] {
    Symbol Put = symbol("put");
    for (int I = 0; I != 500; ++I) {
      if (I % 7 == 0) {
        R.acquire(LockId(1));
      } else if (I % 7 == 3) {
        R.release(LockId(1));
      } else {
        Value Vals[3] = {Value::integer(I), Value::integer(I * 2),
                         Value::nil()};
        Action View(ObjectId(0), Put, Vals, 2, 1);
        Action Owned = View;
        R.record(Event::invoke(R.thread(), std::move(Owned)));
      }
    }
    R.finish();
  });
  Producer.join();
  S.stop();
  Writer.finish();

  // Rebuild the script's expected strings (same loop, no ring).
  Symbol Put = symbol("put");
  for (int I = 0; I != 500; ++I) {
    if (I % 7 == 0)
      Script.push_back(Event::acquire(ThreadId(0), LockId(1)).toString());
    else if (I % 7 == 3)
      Script.push_back(Event::release(ThreadId(0), LockId(1)).toString());
    else {
      Value Vals[3] = {Value::integer(I), Value::integer(I * 2),
                       Value::nil()};
      Script.push_back(
          Event::invoke(ThreadId(0), Action(ObjectId(0), Put, Vals, 2, 1))
              .toString());
    }
  }
  EXPECT_EQ(toStrings(decodeWire(WireBuf.str())), Script);
  EXPECT_EQ(S.eventsCollected(), 500u);
}

TEST(IngestTest, PerProducerFifoInMerge) {
  // Each producer tags its events with (object = tid, key = sequence
  // number); whatever interleaving the collector observes, each
  // producer's subsequence must come out strictly in order.
  constexpr unsigned Producers = 4, Ops = 2000;
  SessionOptions Opts;
  Opts.RingCapacity = 16; // Tiny: forces many rounds and blocking.
  Session S(Opts);
  std::ostringstream WireBuf;
  wire::WireWriter Writer(WireBuf);
  S.setWireWriter(&Writer);

  std::vector<Recorder> Recs;
  for (unsigned T = 0; T != Producers; ++T)
    Recs.push_back(S.attach(ThreadId(T)));
  S.start();
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != Producers; ++T)
    Threads.emplace_back(
        [&Recs, T] {
          Recorder &R = Recs[T];
          Symbol Put = symbol("put");
          for (unsigned I = 0; I != Ops; ++I) {
            Value Vals[3] = {Value::integer(I), Value::nil(), Value::nil()};
            Action View(ObjectId(T), Put, Vals, 2, 1);
            Action Owned = View;
            R.record(Event::invoke(R.thread(), std::move(Owned)));
          }
          R.finish();
        });
  for (std::thread &T : Threads)
    T.join();
  S.stop();
  Writer.finish();

  std::vector<Event> Merged = decodeWire(WireBuf.str());
  ASSERT_EQ(Merged.size(), size_t(Producers) * Ops);
  std::vector<int64_t> NextSeq(Producers, 0);
  for (const Event &E : Merged) {
    uint32_t T = E.thread().index();
    ASSERT_LT(T, Producers);
    ASSERT_EQ(E.action().args()[0].asInt(), NextSeq[T])
        << "producer " << T << " reordered";
    ++NextSeq[T];
  }
}

TEST(IngestTest, DeterminismLiveVsReplayMatrix) {
  // The contract crd record --verify-replay enforces, across the matrix
  // the issue calls out: live detection over the collector's merge must
  // report bit-identical races to a replay of the wire recording of the
  // SAME run — drops happen upstream of both sinks.
  for (unsigned Producers : {1u, 2u, 4u}) {
    for (size_t Ring : {size_t(16), size_t(256)}) {
      for (BackpressurePolicy Policy :
           {BackpressurePolicy::Block, BackpressurePolicy::DropNewest}) {
        SessionOptions Opts;
        Opts.RingCapacity = Ring;
        Opts.Policy = Policy;
        Opts.BatchCapacity = 64; // Small: many partial-batch flushes.
        Session S(Opts);

        wire::PipelineOptions POpts;
        wire::StreamPipeline Live(POpts);
        Live.setDefaultProvider(&dictRep());
        std::ostringstream WireBuf;
        wire::WireWriter Writer(WireBuf);
        S.setPipeline(&Live);
        S.setWireWriter(&Writer);

        std::vector<Recorder> Recs;
        for (unsigned T = 0; T != Producers; ++T)
          Recs.push_back(S.attach(ThreadId(T)));
        S.start();
        std::vector<std::thread> Threads;
        for (unsigned T = 0; T != Producers; ++T)
          Threads.emplace_back([&Recs, T] { runScript(Recs[T], 1200); });
        for (std::thread &T : Threads)
          T.join();
        S.stop();
        Live.finish();
        Writer.finish();

        std::istringstream In(WireBuf.str());
        DiagnosticEngine Diags;
        wire::BinaryStreamSource Src(In, Diags);
        wire::StreamPipeline Replayed(POpts);
        Replayed.setDefaultProvider(&dictRep());
        wire::StreamSummary Sum = Replayed.run(Src);
        ASSERT_FALSE(Src.failed()) << Diags.toString();

        SCOPED_TRACE(testing::Message()
                     << "producers=" << Producers << " ring=" << Ring
                     << " policy="
                     << (Policy == BackpressurePolicy::Block ? "block"
                                                             : "drop"));
        EXPECT_EQ(Sum.Events, S.eventsCollected());
        EXPECT_EQ(Replayed.races(), Live.races());
        // Every script op emits exactly one event, so Block is lossless
        // at exactly Producers × Ops.
        if (Policy == BackpressurePolicy::Block) {
          EXPECT_EQ(S.eventsCollected(), uint64_t(Producers) * 1200);
        }
      }
    }
  }
}

TEST(IngestTest, BlockPolicyLossless) {
  SessionOptions Opts;
  Opts.RingCapacity = 8; // Heavy backpressure.
  Opts.Policy = BackpressurePolicy::Block;
  Session S(Opts);
  std::vector<Recorder> Recs;
  for (unsigned T = 0; T != 3; ++T)
    Recs.push_back(S.attach());
  S.start();
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 3; ++T)
    Threads.emplace_back([&Recs, T] { runScript(Recs[T], 4000); });
  for (std::thread &T : Threads)
    T.join();
  S.stop();

  IngestMetrics M = S.metricsSnapshot();
  EXPECT_EQ(M.DropsTotal, 0u);
  uint64_t Recorded = 0;
  for (const ProducerMetricsSnapshot &P : M.PerProducer) {
    EXPECT_EQ(P.Dropped, 0u);
    EXPECT_EQ(P.Drained, P.Recorded); // Nothing left behind in any ring.
    Recorded += P.Recorded;
  }
  EXPECT_EQ(Recorded, 3u * 4000u);
  EXPECT_EQ(M.EventsCollected, Recorded);
}

TEST(IngestTest, DropNewestCountsEveryRejection) {
  // Flood a tiny ring before the collector starts: exactly `capacity`
  // events fit, every other record() must return false and be counted.
  SessionOptions Opts;
  Opts.RingCapacity = 16;
  Opts.Policy = BackpressurePolicy::DropNewest;
  Session S(Opts);
  Recorder R = S.attach();
  unsigned Accepted = 0, Rejected = 0;
  for (unsigned I = 0; I != 100; ++I) {
    if (R.write(VarId(I)))
      ++Accepted;
    else
      ++Rejected;
  }
  EXPECT_EQ(Accepted, 16u);
  EXPECT_EQ(Rejected, 84u);
  R.finish();
  S.start();
  S.stop();

  IngestMetrics M = S.metricsSnapshot();
  EXPECT_EQ(M.EventsCollected, 16u);
  EXPECT_EQ(M.DropsTotal, 84u);
  ASSERT_EQ(M.PerProducer.size(), 1u);
  EXPECT_EQ(M.PerProducer[0].Recorded, 16u);
  EXPECT_EQ(M.PerProducer[0].Dropped, 84u);
}

TEST(IngestTest, TeardownMidStreamKeepsTail) {
  // Producer A records a burst and exits (thread gone, ring closed)
  // while producer B is still streaming; A's tail must be collected in
  // full even though its thread no longer exists.
  SessionOptions Opts;
  Opts.RingCapacity = 1024;
  Session S(Opts);
  Recorder A = S.attach(ThreadId(0));
  Recorder B = S.attach(ThreadId(1));

  std::thread ShortLived([&A] {
    for (unsigned I = 0; I != 700; ++I)
      A.write(VarId(I % 5));
    A.finish(); // Close and exit mid-stream.
  });
  ShortLived.join(); // A's thread is gone; nothing drained yet if the
  S.start();         // collector starts only now.
  std::thread LongLived([&B] {
    for (unsigned I = 0; I != 9000; ++I)
      B.read(VarId(I % 5));
    B.finish();
  });
  LongLived.join();
  S.stop();

  IngestMetrics M = S.metricsSnapshot();
  ASSERT_EQ(M.PerProducer.size(), 2u);
  EXPECT_EQ(M.PerProducer[0].Recorded, 700u);
  EXPECT_EQ(M.PerProducer[0].Drained, 700u);
  EXPECT_EQ(M.PerProducer[1].Drained, 9000u);
  EXPECT_EQ(M.EventsCollected, 9700u);
}

TEST(IngestTest, AttachCapacityOverrideAndRounding) {
  SessionOptions Opts;
  Opts.RingCapacity = 64;
  Session S(Opts);
  Recorder Default = S.attach(ThreadId(0));
  Recorder Wide = S.attach(ThreadId(1), 500); // Rounded up to 512.
  Default.finish();
  Wide.finish();
  S.drainAll();
  IngestMetrics M = S.metricsSnapshot();
  ASSERT_EQ(M.PerProducer.size(), 2u);
  EXPECT_EQ(M.PerProducer[0].RingCapacity, 64u);
  EXPECT_EQ(M.PerProducer[1].RingCapacity, 512u);
}

TEST(IngestTest, MetricsSnapshotAndJson) {
  SessionOptions Opts;
  Opts.RingCapacity = 32;
  Opts.TraceRounds = true;
  Session S(Opts);
  wire::PipelineOptions POpts;
  wire::StreamPipeline Pipe(POpts);
  Pipe.setDefaultProvider(&dictRep());
  S.setPipeline(&Pipe);

  std::vector<Recorder> Recs;
  Recs.push_back(S.attach());
  Recs.push_back(S.attach());
  S.start();
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 2; ++T)
    Threads.emplace_back([&Recs, T] { runScript(Recs[T], 800); });
  for (std::thread &T : Threads)
    T.join();
  S.stop();
  Pipe.finish();

  IngestMetrics M = S.metricsSnapshot();
  EXPECT_EQ(M.Producers, 2u);
  EXPECT_EQ(M.EventsCollected, 1600u);
  EXPECT_GE(M.Rounds, 1u);
  EXPECT_GE(M.Batches, 1u);
  for (const ProducerMetricsSnapshot &P : M.PerProducer) {
    uint64_t DepthSamples = 0;
    for (uint64_t C : P.DepthPow2)
      DepthSamples += C;
    // Every drain visit samples the depth histogram exactly once.
    if (metrics::Enabled) {
      EXPECT_EQ(DepthSamples, P.Drains);
    }
  }

  std::ostringstream JSON;
  S.writeMetricsJson(JSON);
  std::string Doc = JSON.str();
  for (const char *Key :
       {"\"policy\"", "\"events_collected\"", "\"drops\"", "\"rounds\"",
        "\"per_producer\"", "\"recorded\"", "\"depth_pow2\"",
        "\"round_ns_pow2\""})
    EXPECT_NE(Doc.find(Key), std::string::npos) << Key << "\n" << Doc;

  if (metrics::Enabled) {
    std::ostringstream TraceJSON;
    writeIngestChromeTrace(TraceJSON, M);
    EXPECT_NE(TraceJSON.str().find("ingest collector"), std::string::npos);
  }
}

TEST(IngestTest, LiveRecorderSinkMatchesTraceRecorderPerThread) {
  // The same seeded SimRuntime program recorded two ways: the
  // materializing TraceRecorder, and LiveRecorderSink through a real
  // ingestion session into a wire buffer. The collector merge may
  // interleave threads differently than emission order, but each
  // thread's subsequence must match exactly, with nothing lost —
  // including threads the runtime retires mid-run (onThreadExit closes
  // their rings while the rest keep streaming).
  auto Run = [](EventSink &Sink) {
    SimRuntime RT(1234);
    InstrumentedMap M1(RT), M2(RT);
    LockId L = RT.newLock();
    ThreadId Main = RT.addInitialThread();
    RT.schedule(Main, [&](SimThread &T) {
      for (unsigned W = 0; W != 3; ++W) {
        ThreadId Tid = T.fork([](SimThread &) {});
        for (unsigned Q = 0; Q != 60; ++Q)
          RT.schedule(Tid, [&M1, &M2, L, Q](SimThread &T2) {
            InstrumentedMap &M = Q % 2 ? M1 : M2;
            if (Q % 10 == 0)
              T2.acquire(L);
            M.put(T2, Value::integer(Q % 7), Value::integer(Q));
            if (Q % 10 == 9)
              T2.release(L);
          });
        T.defer([Tid](SimThread &T2) { T2.join(Tid); });
      }
    });
    RT.run(Sink);
  };

  TraceRecorder Reference;
  Run(Reference);

  SessionOptions Opts;
  Opts.RingCapacity = 64;
  Session S(Opts);
  std::ostringstream WireBuf;
  wire::WireWriter Writer(WireBuf);
  S.setWireWriter(&Writer);
  S.start();
  {
    LiveRecorderSink Sink(S);
    Run(Sink);
    Sink.finishAll();
  }
  S.stop();
  Writer.finish();

  std::map<uint32_t, std::vector<std::string>> RefByThread, LiveByThread;
  for (const Event &E : Reference.trace())
    RefByThread[E.thread().index()].push_back(E.toString());
  for (const Event &E : decodeWire(WireBuf.str()))
    LiveByThread[E.thread().index()].push_back(E.toString());
  EXPECT_EQ(LiveByThread, RefByThread);
  EXPECT_EQ(S.eventsCollected(), Reference.trace().size());
}

TEST(IngestTest, ProcessBatchMatchesRunSequential) {
  Trace T = testgen::randomTrace(77, 3, 120, 6);
  wire::PipelineOptions POpts;

  std::unique_ptr<wire::StreamPipeline> Pulled;
  {
    std::ostringstream OS;
    wire::WireWriter W(OS);
    W.writeTrace(T);
    W.finish();
    std::istringstream In(OS.str());
    DiagnosticEngine Diags;
    wire::BinaryStreamSource Src(In, Diags);
    Pulled = std::make_unique<wire::StreamPipeline>(POpts);
    Pulled->setDefaultProvider(&dictRep());
    Pulled->run(Src);
  }

  wire::StreamPipeline Pushed(POpts);
  Pushed.setDefaultProvider(&dictRep());
  EventBatch B;
  for (size_t I = 0; I != T.size(); ++I) {
    B.append(T[I]);
    if (B.size() == 7 || I + 1 == T.size()) {
      B.finalizeSyncIndex();
      Pushed.processBatch(B); // Returns B empty, buffers warm.
    }
  }
  Pushed.finish();
  EXPECT_EQ(Pushed.races(), Pulled->races());
  EXPECT_EQ(Pushed.eventsProcessed(), T.size());
}

TEST(IngestTest, ProcessBatchMatchesRunParallel) {
  Trace T = testgen::randomTrace(99, 4, 150, 5);
  wire::PipelineOptions Seq;
  std::unique_ptr<wire::StreamPipeline> Reference;
  {
    std::ostringstream OS;
    wire::WireWriter W(OS);
    W.writeTrace(T);
    W.finish();
    std::istringstream In(OS.str());
    DiagnosticEngine Diags;
    wire::BinaryStreamSource Src(In, Diags);
    Reference = std::make_unique<wire::StreamPipeline>(Seq);
    Reference->setDefaultProvider(&dictRep());
    Reference->run(Src);
  }

  wire::PipelineOptions Par;
  Par.TheBackend = wire::Backend::Parallel;
  Par.Shards = 3;
  Par.BatchSize = 16;
  wire::StreamPipeline Pushed(Par);
  Pushed.setDefaultProvider(&dictRep());
  EventBatch B;
  for (size_t I = 0; I != T.size(); ++I) {
    B.append(T[I]);
    if (B.size() == 11 || I + 1 == T.size()) {
      B.finalizeSyncIndex();
      Pushed.processBatch(B);
    }
  }
  Pushed.finish();
  EXPECT_EQ(Pushed.races(), Reference->races());
}

TEST(IngestTest, RecorderMoveAndAutoFinish) {
  Session S((SessionOptions()));
  Recorder A = S.attach();
  EXPECT_TRUE(A.attached());
  Recorder B = std::move(A);
  EXPECT_FALSE(A.attached());
  EXPECT_TRUE(B.attached());
  B.write(VarId(1));
  { Recorder C = std::move(B); } // Destructor closes the ring.
  EXPECT_FALSE(B.attached());
  S.drainAll();
  EXPECT_EQ(S.eventsCollected(), 1u);
}

} // namespace
