//===- tests/AccessTest.cpp - access point representation tests ---------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "access/DictionaryRep.h"

#include <gtest/gtest.h>

using namespace crd;

namespace {

Action put(std::string_view K, Value V, Value P) {
  return Action(ObjectId(1), symbol("put"), {Value::string(K), V}, P);
}
Action get(std::string_view K, Value V) {
  return Action(ObjectId(1), symbol("get"), {Value::string(K)}, V);
}
Action size(int64_t R) {
  return Action(ObjectId(1), symbol("size"), {}, Value::integer(R));
}

std::vector<AccessPoint> touch(const AccessPointProvider &P, const Action &A) {
  std::vector<AccessPoint> Out;
  P.touches(A, Out);
  return Out;
}

} // namespace

TEST(AccessPointTest, EqualityAndHashing) {
  AccessPoint A = AccessPoint::withValue(1, Value::string("k"));
  AccessPoint B = AccessPoint::withValue(1, Value::string("k"));
  AccessPoint C = AccessPoint::withValue(1, Value::string("j"));
  AccessPoint D = AccessPoint::plain(1);
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hash(), B.hash());
  EXPECT_NE(A, C);
  EXPECT_NE(A, D);
  EXPECT_NE(AccessPoint::plain(1), AccessPoint::plain(2));
}

TEST(DictionaryRepTest, TouchesMatchFig7b) {
  DictionaryRep Rep;

  // Fresh insert: value changed and size changed -> {o:w:k, o:resize}.
  auto Insert = touch(Rep, put("a.com", Value::integer(1), Value::nil()));
  ASSERT_EQ(Insert.size(), 2u);
  EXPECT_EQ(Insert[0],
            AccessPoint::withValue(DictionaryRep::Write, Value::string("a.com")));
  EXPECT_EQ(Insert[1], AccessPoint::plain(DictionaryRep::Resize));

  // Overwrite: value changed, size unchanged -> {o:w:k}.
  auto Overwrite =
      touch(Rep, put("a.com", Value::integer(2), Value::integer(1)));
  ASSERT_EQ(Overwrite.size(), 1u);
  EXPECT_EQ(Overwrite[0].ClassId, uint32_t(DictionaryRep::Write));

  // Removal (store nil over a present key) resizes.
  auto Remove = touch(Rep, put("a.com", Value::nil(), Value::integer(2)));
  ASSERT_EQ(Remove.size(), 2u);
  EXPECT_EQ(Remove[1], AccessPoint::plain(DictionaryRep::Resize));

  // No-op put (v = p) is a read -> {o:r:k}.
  auto Noop = touch(Rep, put("a.com", Value::integer(2), Value::integer(2)));
  ASSERT_EQ(Noop.size(), 1u);
  EXPECT_EQ(Noop[0].ClassId, uint32_t(DictionaryRep::Read));

  // get -> {o:r:k}; size -> {o:size}.
  auto Get = touch(Rep, get("a.com", Value::integer(2)));
  ASSERT_EQ(Get.size(), 1u);
  EXPECT_EQ(Get[0].ClassId, uint32_t(DictionaryRep::Read));
  auto Size = touch(Rep, size(1));
  ASSERT_EQ(Size.size(), 1u);
  EXPECT_EQ(Size[0], AccessPoint::plain(DictionaryRep::Size));
}

TEST(DictionaryRepTest, ConflictMatrixMatchesFig7c) {
  DictionaryRep Rep;
  auto Conflicts = [&](uint32_t C) { return Rep.conflictsOf(C); };
  EXPECT_EQ(Conflicts(DictionaryRep::Read),
            std::vector<uint32_t>{DictionaryRep::Write});
  EXPECT_EQ(Conflicts(DictionaryRep::Write),
            (std::vector<uint32_t>{DictionaryRep::Read, DictionaryRep::Write}));
  EXPECT_EQ(Conflicts(DictionaryRep::Size),
            std::vector<uint32_t>{DictionaryRep::Resize});
  EXPECT_EQ(Conflicts(DictionaryRep::Resize),
            std::vector<uint32_t>{DictionaryRep::Size});
}

TEST(DictionaryRepTest, PointConflictsRespectValues) {
  DictionaryRep Rep;
  AccessPoint WriteA =
      AccessPoint::withValue(DictionaryRep::Write, Value::string("a"));
  AccessPoint WriteA2 =
      AccessPoint::withValue(DictionaryRep::Write, Value::string("a"));
  AccessPoint WriteB =
      AccessPoint::withValue(DictionaryRep::Write, Value::string("b"));
  AccessPoint ReadA =
      AccessPoint::withValue(DictionaryRep::Read, Value::string("a"));

  EXPECT_TRUE(pointsConflict(Rep, WriteA, WriteA2)); // w:k self-conflicts.
  EXPECT_FALSE(pointsConflict(Rep, WriteA, WriteB)); // Different keys.
  EXPECT_TRUE(pointsConflict(Rep, WriteA, ReadA));
  EXPECT_TRUE(pointsConflict(Rep, ReadA, WriteA));
  EXPECT_FALSE(pointsConflict(Rep, ReadA, ReadA)); // r:k does not self-conflict.

  AccessPoint SizePt = AccessPoint::plain(DictionaryRep::Size);
  AccessPoint ResizePt = AccessPoint::plain(DictionaryRep::Resize);
  EXPECT_TRUE(pointsConflict(Rep, SizePt, ResizePt));
  EXPECT_FALSE(pointsConflict(Rep, SizePt, SizePt));
  EXPECT_FALSE(pointsConflict(Rep, ResizePt, ResizePt));
}

TEST(DictionaryRepTest, ActionsConflictExamplesFromFig4) {
  DictionaryRep Rep;
  // Fig 4: every fresh put conflicts with size() (via resize/size) ...
  EXPECT_TRUE(actionsConflict(Rep,
                              put("a.com", Value::integer(1), Value::nil()),
                              size(3)));
  // ... but an overwrite does not affect size().
  EXPECT_FALSE(actionsConflict(
      Rep, put("a.com", Value::integer(2), Value::integer(1)), size(3)));
  // Two fresh puts to different keys conflict only through resize? No —
  // resize does not conflict with itself, and the keys differ.
  EXPECT_FALSE(actionsConflict(
      Rep, put("a.com", Value::integer(1), Value::nil()),
      put("b.com", Value::integer(2), Value::nil())));
  // Same key: conflict.
  EXPECT_TRUE(actionsConflict(
      Rep, put("a.com", Value::integer(1), Value::nil()),
      put("a.com", Value::integer(2), Value::integer(1))));
}

TEST(DictionaryRepTest, ClassNames) {
  DictionaryRep Rep;
  EXPECT_EQ(Rep.className(DictionaryRep::Read), "o:r:k");
  EXPECT_EQ(Rep.className(DictionaryRep::Write), "o:w:k");
  EXPECT_EQ(Rep.className(DictionaryRep::Size), "o:size");
  EXPECT_EQ(Rep.className(DictionaryRep::Resize), "o:resize");
}

TEST(DictionaryRepTest, CarryingFlags) {
  DictionaryRep Rep;
  EXPECT_TRUE(Rep.classCarriesValue(DictionaryRep::Read));
  EXPECT_TRUE(Rep.classCarriesValue(DictionaryRep::Write));
  EXPECT_FALSE(Rep.classCarriesValue(DictionaryRep::Size));
  EXPECT_FALSE(Rep.classCarriesValue(DictionaryRep::Resize));
}
