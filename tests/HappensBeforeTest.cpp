//===- tests/HappensBeforeTest.cpp - Table 1 machine tests --------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "hb/HappensBefore.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

using namespace crd;

namespace {

Trace fig3Trace() {
  // The running example of the paper (Fig 3): the main thread T0 forks T1
  // and T2, both put to the same key, then T0 joins both and reads size.
  return TraceBuilder()
      .fork(0, 1)
      .fork(0, 2)
      .invoke(2, 1, "put", {Value::string("a.com"), Value::integer(1)},
              Value::nil())
      .invoke(1, 1, "put", {Value::string("a.com"), Value::integer(2)},
              Value::integer(1))
      .join(0, 1)
      .join(0, 2)
      .invoke(0, 1, "size", {}, Value::integer(1))
      .take();
}

} // namespace

TEST(HappensBeforeTest, ForkOrdersParentPrefixBeforeChild) {
  Trace T = TraceBuilder()
                .read(0, 0) // e0: before fork.
                .fork(0, 1) // e1
                .read(1, 1) // e2: child event.
                .read(0, 2) // e3: parent after fork.
                .take();
  HappensBefore HB(T);
  EXPECT_TRUE(HB.happensBefore(0, 2));  // Pre-fork parent -> child.
  EXPECT_TRUE(HB.happensBefore(1, 2));  // Fork event -> child.
  EXPECT_TRUE(HB.mayHappenInParallel(2, 3)); // Child ‖ post-fork parent.
}

TEST(HappensBeforeTest, JoinOrdersChildBeforeParentSuffix) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .read(1, 0) // e1: child event.
                .read(0, 1) // e2: parent, concurrent with child.
                .join(0, 1) // e3
                .read(0, 2) // e4: parent after join.
                .take();
  HappensBefore HB(T);
  EXPECT_TRUE(HB.mayHappenInParallel(1, 2));
  EXPECT_TRUE(HB.happensBefore(1, 4));
  EXPECT_FALSE(HB.mayHappenInParallel(1, 4));
}

TEST(HappensBeforeTest, ReleaseAcquireOrders) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .acquire(0, 0)
                .write(0, 9) // e2: under lock in T0.
                .release(0, 0)
                .acquire(1, 0)
                .write(1, 9) // e5: under lock in T1, after T0's release.
                .release(1, 0)
                .take();
  HappensBefore HB(T);
  EXPECT_TRUE(HB.happensBefore(2, 5));
  EXPECT_FALSE(HB.mayHappenInParallel(2, 5));
}

TEST(HappensBeforeTest, NoSyncMeansConcurrent) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .write(0, 9) // e1
                .write(1, 9) // e2
                .take();
  HappensBefore HB(T);
  EXPECT_TRUE(HB.mayHappenInParallel(1, 2));
}

TEST(HappensBeforeTest, SameThreadAlwaysOrdered) {
  Trace T = TraceBuilder().read(0, 1).write(0, 2).read(0, 3).take();
  HappensBefore HB(T);
  for (size_t I = 0; I != T.size(); ++I)
    for (size_t J = I + 1; J != T.size(); ++J) {
      EXPECT_TRUE(HB.happensBefore(I, J));
      EXPECT_FALSE(HB.mayHappenInParallel(I, J));
    }
}

TEST(HappensBeforeTest, Fig3OrderingsMatchThePaper) {
  Trace T = fig3Trace();
  HappensBefore HB(T);
  constexpr size_t PutT2 = 2, PutT1 = 3, SizeT0 = 6;
  // The two puts are unordered; both are before the size() after joinall.
  EXPECT_TRUE(HB.mayHappenInParallel(PutT2, PutT1));
  EXPECT_TRUE(HB.happensBefore(PutT2, SizeT0));
  EXPECT_TRUE(HB.happensBefore(PutT1, SizeT0));
}

TEST(HappensBeforeTest, CrossThreadClocksNeverEqual) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .read(0, 0)
                .read(1, 1)
                .acquire(0, 0)
                .release(0, 0)
                .acquire(1, 0)
                .read(1, 2)
                .take();
  HappensBefore HB(T);
  for (size_t I = 0; I != T.size(); ++I)
    for (size_t J = 0; J != T.size(); ++J)
      if (T[I].thread() != T[J].thread()) {
        EXPECT_NE(HB.clock(I), HB.clock(J))
            << "events " << I << " and " << J;
      }
}

TEST(VectorClockStateTest, LazyInitGivesEachThreadItsOwnTime) {
  VectorClockState State;
  EXPECT_EQ(State.clockOf(ThreadId(0)).get(ThreadId(0)), 1u);
  EXPECT_EQ(State.clockOf(ThreadId(3)).get(ThreadId(3)), 1u);
  EXPECT_TRUE(
      State.clockOf(ThreadId(0)).concurrentWith(State.clockOf(ThreadId(3))));
}

TEST(VectorClockStateTest, ForkIncrementsParentAndSeedsChild) {
  VectorClockState State;
  VectorClock ParentBefore = State.clockOf(ThreadId(0));
  State.process(Event::fork(ThreadId(0), ThreadId(1)));
  const VectorClock &Child = State.clockOf(ThreadId(1));
  const VectorClock &ParentAfter = State.clockOf(ThreadId(0));
  EXPECT_TRUE(ParentBefore.leq(Child));
  EXPECT_EQ(Child.get(ThreadId(1)), 1u);
  EXPECT_EQ(ParentAfter.get(ThreadId(0)), ParentBefore.get(ThreadId(0)) + 1);
  EXPECT_TRUE(Child.concurrentWith(ParentAfter));
}

TEST(VectorClockStateTest, ReleaseStoresClockThenIncrements) {
  VectorClockState State;
  State.process(Event::acquire(ThreadId(0), LockId(0)));
  VectorClock AtRelease = State.clockOf(ThreadId(0));
  State.process(Event::release(ThreadId(0), LockId(0)));
  EXPECT_EQ(State.lockClock(LockId(0)), AtRelease);
  EXPECT_FALSE(State.clockOf(ThreadId(0)).leq(AtRelease));
}

TEST(VectorClockStateTest, AcquireJoinsLockClock) {
  VectorClockState State;
  State.process(Event::fork(ThreadId(0), ThreadId(1)));
  State.process(Event::acquire(ThreadId(0), LockId(0)));
  State.process(Event::release(ThreadId(0), LockId(0)));
  VectorClock Released = State.lockClock(LockId(0));
  State.process(Event::acquire(ThreadId(1), LockId(0)));
  EXPECT_TRUE(Released.leq(State.clockOf(ThreadId(1))));
}
