//===- tests/OnlineAtomicityTest.cpp - streaming atomicity tests --------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "access/DictionaryRep.h"
#include "detect/OnlineAtomicity.h"
#include "runtime/InstrumentedMap.h"
#include "support/DynamicTopoGraph.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

#include <random>

using namespace crd;

//===----------------------------------------------------------------------===//
// DynamicTopoGraph (Pearce–Kelly)
//===----------------------------------------------------------------------===//

TEST(DynamicTopoGraphTest, ForwardEdgesAreCheap) {
  DynamicTopoGraph G;
  uint32_t A = G.addNode(), B = G.addNode(), C = G.addNode();
  EXPECT_TRUE(G.addEdge(A, B).Inserted);
  EXPECT_TRUE(G.addEdge(B, C).Inserted);
  EXPECT_TRUE(G.addEdge(A, C).Inserted);
  EXPECT_EQ(G.numEdges(), 3u);
  EXPECT_LT(G.orderOf(A), G.orderOf(B));
  EXPECT_LT(G.orderOf(B), G.orderOf(C));
}

TEST(DynamicTopoGraphTest, BackwardEdgeTriggersReorder) {
  DynamicTopoGraph G;
  uint32_t A = G.addNode(), B = G.addNode(), C = G.addNode();
  // C -> A is "backwards" in creation order but cycle-free: must reorder.
  EXPECT_TRUE(G.addEdge(C, A).Inserted);
  EXPECT_LT(G.orderOf(C), G.orderOf(A));
  EXPECT_TRUE(G.addEdge(A, B).Inserted);
  EXPECT_LT(G.orderOf(A), G.orderOf(B));
  // Now B -> C would close B -> C -> A -> B? No: need A -> B edge; cycle
  // via C->A->B->C. So inserting B->C must be rejected.
  DynamicTopoGraph::InsertResult R = G.addEdge(B, C);
  EXPECT_FALSE(R.Inserted);
  // Witness path: C -> A -> B (To..From).
  ASSERT_EQ(R.CyclePath.size(), 3u);
  EXPECT_EQ(R.CyclePath.front(), C);
  EXPECT_EQ(R.CyclePath.back(), B);
}

TEST(DynamicTopoGraphTest, SelfAndDuplicateEdges) {
  DynamicTopoGraph G;
  uint32_t A = G.addNode(), B = G.addNode();
  EXPECT_FALSE(G.addEdge(A, A).Inserted);
  EXPECT_TRUE(G.addEdge(A, B).Inserted);
  EXPECT_TRUE(G.addEdge(A, B).Inserted); // Idempotent.
  EXPECT_EQ(G.numEdges(), 1u);
}

TEST(DynamicTopoGraphTest, TwoCycleRejected) {
  DynamicTopoGraph G;
  uint32_t A = G.addNode(), B = G.addNode();
  EXPECT_TRUE(G.addEdge(A, B).Inserted);
  DynamicTopoGraph::InsertResult R = G.addEdge(B, A);
  EXPECT_FALSE(R.Inserted);
  EXPECT_EQ(R.CyclePath, (std::vector<uint32_t>{A, B}));
}

TEST(DynamicTopoGraphTest, RandomizedAgainstOfflineCycleCheck) {
  std::mt19937_64 Rng(7);
  for (int Round = 0; Round != 30; ++Round) {
    DynamicTopoGraph G;
    const uint32_t N = 12;
    for (uint32_t I = 0; I != N; ++I)
      G.addNode();
    // Reference adjacency of successfully inserted edges.
    std::vector<std::vector<uint32_t>> Adj(N);
    auto Reaches = [&](uint32_t From, uint32_t To) {
      std::vector<uint32_t> Stack = {From};
      std::vector<bool> Seen(N, false);
      while (!Stack.empty()) {
        uint32_t X = Stack.back();
        Stack.pop_back();
        if (X == To)
          return true;
        if (Seen[X])
          continue;
        Seen[X] = true;
        for (uint32_t S : Adj[X])
          Stack.push_back(S);
      }
      return false;
    };
    for (int E = 0; E != 60; ++E) {
      uint32_t From = static_cast<uint32_t>(Rng() % N);
      uint32_t To = static_cast<uint32_t>(Rng() % N);
      bool WouldCycle = From == To || Reaches(To, From);
      DynamicTopoGraph::InsertResult R = G.addEdge(From, To);
      EXPECT_EQ(R.Inserted, !WouldCycle)
          << "edge " << From << "->" << To << " round " << Round;
      if (R.Inserted && From != To)
        Adj[From].push_back(To);
      // Topological invariant after every insertion.
      for (uint32_t X = 0; X != N; ++X)
        for (uint32_t S : Adj[X])
          EXPECT_LT(G.orderOf(X), G.orderOf(S));
    }
  }
}

//===----------------------------------------------------------------------===//
// OnlineAtomicityChecker
//===----------------------------------------------------------------------===//

namespace {

Value str(std::string_view S) { return Value::string(S); }
Value num(int64_t I) { return Value::integer(I); }

DictionaryRep &dictRep() {
  static DictionaryRep Rep;
  return Rep;
}

std::vector<AtomicityViolation> checkOnline(const Trace &T) {
  OnlineAtomicityChecker Checker;
  Checker.setDefaultProvider(&dictRep());
  Checker.processTrace(T);
  return Checker.violations();
}

} // namespace

TEST(OnlineAtomicityTest, ClassicCheckThenActViolation) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .txBegin(0)
                .invoke(0, 1, "get", {str("k")}, Value::nil())
                .invoke(1, 1, "put", {str("k"), num(1)}, Value::nil())
                .invoke(0, 1, "put", {str("k"), num(2)}, num(1))
                .txEnd(0)
                .take();
  auto Violations = checkOnline(T);
  ASSERT_EQ(Violations.size(), 1u);
  EXPECT_EQ(Violations[0].Thread, ThreadId(0));
}

TEST(OnlineAtomicityTest, CommutingInterleavingIsSerializable) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .txBegin(0)
                .invoke(0, 1, "get", {str("k")}, Value::nil())
                .invoke(1, 1, "put", {str("other"), num(1)}, Value::nil())
                .invoke(0, 1, "put", {str("k"), num(2)}, Value::nil())
                .txEnd(0)
                .take();
  EXPECT_TRUE(checkOnline(T).empty());
}

TEST(OnlineAtomicityTest, LockProtectedBlocksAreSerializable) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .txBegin(0)
                .acquire(0, 0)
                .invoke(0, 1, "get", {str("k")}, Value::nil())
                .invoke(0, 1, "put", {str("k"), num(1)}, Value::nil())
                .release(0, 0)
                .txEnd(0)
                .txBegin(1)
                .acquire(1, 0)
                .invoke(1, 1, "get", {str("k")}, num(1))
                .invoke(1, 1, "put", {str("k"), num(2)}, num(1))
                .release(1, 0)
                .txEnd(1)
                .take();
  EXPECT_TRUE(checkOnline(T).empty());
}

TEST(OnlineAtomicityTest, ViolationReportedAtMostOncePerBlock) {
  // The torn block conflicts with TWO intruding puts; still one report.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .txBegin(0)
                .invoke(0, 1, "get", {str("k")}, Value::nil())
                .invoke(1, 1, "put", {str("k"), num(1)}, Value::nil())
                .invoke(1, 1, "put", {str("k"), num(2)}, num(1))
                .invoke(0, 1, "put", {str("k"), num(3)}, num(2))
                .txEnd(0)
                .take();
  EXPECT_EQ(checkOnline(T).size(), 1u);
}

TEST(OnlineAtomicityTest, SelfConflictingChainCompressionStaysSound) {
  // Three sequential writers then a torn block: the w:k toucher list is
  // compressed to the last writer, but transitivity preserves the cycle.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .invoke(1, 1, "put", {str("k"), num(1)}, Value::nil())
                .invoke(1, 1, "put", {str("k"), num(2)}, num(1))
                .txBegin(0)
                .invoke(0, 1, "get", {str("k")}, num(2))
                .invoke(1, 1, "put", {str("k"), num(3)}, num(2))
                .invoke(0, 1, "put", {str("k"), num(4)}, num(3))
                .txEnd(0)
                .take();
  EXPECT_EQ(checkOnline(T).size(), 1u);
}

TEST(OnlineAtomicityTest, AgreesWithOfflineOnRandomWorkloads) {
  // Existence of violations must agree with the offline checker (block
  // attribution may differ once cycles overlap).
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    SimRuntime RT(Seed);
    InstrumentedMap Map(RT);
    ThreadId Main = RT.addInitialThread();
    RT.schedule(Main, [&RT, &Map](SimThread &T) {
      for (unsigned W = 0; W != 3; ++W) {
        ThreadId Tid = T.fork([](SimThread &) {});
        for (unsigned Q = 0; Q != 10; ++Q)
          RT.schedule(Tid, [&Map](SimThread &T2) {
            Value Key = Value::integer(static_cast<int64_t>(T2.random(3)));
            switch (T2.random(3)) {
            case 0: {
              T2.txBegin();
              Value Cur = Map.get(T2, Key);
              int64_t N = Cur.isNil() ? 0 : Cur.asInt();
              T2.defer([&Map, Key, N](SimThread &T3) {
                Map.put(T3, Key, Value::integer(N + 1));
                T3.txEnd();
              });
              break;
            }
            case 1:
              Map.size(T2);
              break;
            case 2:
              Map.get(T2, Key);
              break;
            }
          });
      }
    });
    TraceRecorder Recorder;
    RT.run(Recorder);

    AtomicityChecker Offline;
    Offline.setDefaultProvider(&dictRep());
    auto OfflineViolations = Offline.check(Recorder.trace());

    auto OnlineViolations = checkOnline(Recorder.trace());

    EXPECT_EQ(OfflineViolations.empty(), OnlineViolations.empty())
        << "seed " << Seed << ": offline " << OfflineViolations.size()
        << " vs online " << OnlineViolations.size();
  }
}
