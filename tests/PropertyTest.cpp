//===- tests/PropertyTest.cpp - randomized equivalence properties -------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// Randomized end-to-end properties, each an instance of a paper theorem:
///
///   * Theorem 5.1: Algorithm 1 flags exactly the events at which the
///     direct (pairwise, formula-evaluating) detector finds a race.
///   * Definition 4.5: the translated representation conflicts exactly
///     where the specification says actions do not commute.
///   * Table 1 machine vs. a naive transitive-closure happens-before.
///   * FastTrack per-variable agreement with a naive O(n²) race checker.
///
//===----------------------------------------------------------------------===//

#include "access/DictionaryRep.h"
#include "detect/CommutativityDetector.h"
#include "detect/DirectDetector.h"
#include "detect/FastTrack.h"
#include "hb/HappensBefore.h"
#include "runtime/InstrumentedMap.h"
#include "spec/Builtins.h"
#include "TraceGen.h"
#include "translate/Translator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace crd;

namespace {

using testgen::randomTrace;

std::set<size_t> racyEvents(const std::vector<CommutativityRace> &Races) {
  std::set<size_t> Out;
  for (const CommutativityRace &R : Races)
    Out.insert(R.EventIndex);
  return Out;
}

const TranslatedRep &translatedDict() {
  static std::unique_ptr<TranslatedRep> Rep = [] {
    DiagnosticEngine Diags;
    auto R = translateSpec(dictionarySpec(), Diags);
    EXPECT_TRUE(R) << Diags.toString();
    return R;
  }();
  return *Rep;
}

class RandomTraceTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

//===----------------------------------------------------------------------===//
// Theorem 5.1: Algorithm 1 == direct detector, per event.
//===----------------------------------------------------------------------===//

TEST_P(RandomTraceTest, Theorem51_Algorithm1AgreesWithDirectDetector) {
  Trace T = randomTrace(GetParam(), /*Workers=*/4, /*OpsPerWorker=*/40,
                        /*Keys=*/4);

  DirectCommutativityDetector Direct;
  Direct.setDefaultSpec(&dictionarySpec());
  Direct.processTrace(T);

  static DictionaryRep Hand;
  for (const AccessPointProvider *Provider :
       {static_cast<const AccessPointProvider *>(&translatedDict()),
        static_cast<const AccessPointProvider *>(&Hand)}) {
    CommutativityRaceDetector Alg1;
    Alg1.setDefaultProvider(Provider);
    Alg1.processTrace(T);
    EXPECT_EQ(racyEvents(Alg1.races()), racyEvents(Direct.races()))
        << "provider "
        << (Provider == &Hand ? "hand-written" : "translated") << ", seed "
        << GetParam();
    EXPECT_EQ(Alg1.distinctRacyObjects(), Direct.distinctRacyObjects());
  }
}

//===----------------------------------------------------------------------===//
// Definition 4.5 on actions drawn from real executions.
//===----------------------------------------------------------------------===//

TEST_P(RandomTraceTest, Def45_TranslationRepresentsSpecOnTraceActions) {
  Trace T = randomTrace(GetParam(), 3, 30, 3, /*Maps=*/1);
  const ObjectSpec &Spec = dictionarySpec();
  DictionaryRep Hand;

  std::vector<Action> Actions;
  for (const Event &E : T)
    if (E.isInvoke())
      Actions.push_back(E.action());
  ASSERT_FALSE(Actions.empty());

  for (size_t I = 0; I < Actions.size(); I += 3)
    for (size_t J = 0; J < Actions.size(); J += 3) {
      bool Commutes = Spec.commute(Actions[I], Actions[J]);
      EXPECT_EQ(actionsConflict(translatedDict(), Actions[I], Actions[J]),
                !Commutes)
          << Actions[I] << " vs " << Actions[J];
      EXPECT_EQ(actionsConflict(Hand, Actions[I], Actions[J]), !Commutes)
          << Actions[I] << " vs " << Actions[J];
    }
}

//===----------------------------------------------------------------------===//
// Table 1 vector clocks vs. naive transitive closure.
//===----------------------------------------------------------------------===//

namespace {

/// Naive happens-before: program order, fork/join and per-lock
/// release->acquire edges, transitively closed.
std::vector<std::vector<bool>> naiveHappensBefore(const Trace &T) {
  size_t N = T.size();
  std::vector<std::vector<bool>> HB(N, std::vector<bool>(N, false));
  auto AddEdge = [&](size_t From, size_t To) { HB[From][To] = true; };

  std::unordered_map<uint32_t, size_t> LastOfThread;
  std::unordered_map<uint32_t, size_t> LastReleaseOfLock;
  std::unordered_map<uint32_t, size_t> ForkEventOfThread;
  std::unordered_map<uint32_t, size_t> LastEventOfThreadEver;

  for (size_t I = 0; I != N; ++I) {
    const Event &E = T[I];
    uint32_t Tid = E.thread().index();
    if (auto It = LastOfThread.find(Tid); It != LastOfThread.end())
      AddEdge(It->second, I);
    else if (auto F = ForkEventOfThread.find(Tid);
             F != ForkEventOfThread.end())
      AddEdge(F->second, I);
    LastOfThread[Tid] = I;
    LastEventOfThreadEver[Tid] = I;

    switch (E.kind()) {
    case EventKind::Fork:
      ForkEventOfThread[E.other().index()] = I;
      break;
    case EventKind::Join:
      if (auto It = LastEventOfThreadEver.find(E.other().index());
          It != LastEventOfThreadEver.end())
        AddEdge(It->second, I);
      break;
    case EventKind::Acquire:
      if (auto It = LastReleaseOfLock.find(E.lock().index());
          It != LastReleaseOfLock.end())
        AddEdge(It->second, I);
      break;
    case EventKind::Release:
      LastReleaseOfLock[E.lock().index()] = I;
      break;
    default:
      break;
    }
  }

  // Transitive closure in trace order: predecessors are already closed.
  for (size_t J = 0; J != N; ++J)
    for (size_t I = 0; I != J; ++I)
      if (HB[I][J])
        for (size_t K = 0; K != I; ++K)
          if (HB[K][I])
            HB[K][J] = true;
  return HB;
}

} // namespace

TEST_P(RandomTraceTest, VectorClocksMatchNaiveTransitiveClosure) {
  Trace T = randomTrace(GetParam(), 3, 12, 3, /*Maps=*/1);
  ASSERT_LE(T.size(), 400u);
  HappensBefore HB(T);
  auto Naive = naiveHappensBefore(T);
  for (size_t I = 0; I != T.size(); ++I)
    for (size_t J = I + 1; J != T.size(); ++J)
      EXPECT_EQ(HB.happensBefore(I, J), Naive[I][J])
          << "events " << I << " (" << T[I] << ") and " << J << " (" << T[J]
          << ")";
}

//===----------------------------------------------------------------------===//
// FastTrack vs naive per-variable race existence.
//===----------------------------------------------------------------------===//

TEST_P(RandomTraceTest, FastTrackAgreesWithNaivePerVariable) {
  Trace T = randomTrace(GetParam(), 4, 25, 3, /*Maps=*/2);
  HappensBefore HB(T);

  // Naive: a variable races iff it has two unordered accesses, at least
  // one of which is a write.
  std::set<uint32_t> NaiveRacy;
  std::unordered_map<uint32_t, std::vector<size_t>> AccessesOf;
  for (size_t I = 0; I != T.size(); ++I)
    if (T[I].isMemoryAccess())
      AccessesOf[T[I].var().index()].push_back(I);
  for (const auto &[Var, Accesses] : AccessesOf)
    for (size_t A = 0; A != Accesses.size(); ++A)
      for (size_t B = A + 1; B != Accesses.size(); ++B) {
        bool SomeWrite = T[Accesses[A]].kind() == EventKind::Write ||
                         T[Accesses[B]].kind() == EventKind::Write;
        if (SomeWrite && HB.mayHappenInParallel(Accesses[A], Accesses[B]))
          NaiveRacy.insert(Var);
      }

  FastTrackDetector FT;
  FT.processTrace(T);
  std::set<uint32_t> FtRacy;
  for (const MemoryRace &R : FT.races())
    FtRacy.insert(R.Var.index());

  EXPECT_EQ(FtRacy, NaiveRacy) << "seed " << GetParam();
}

//===----------------------------------------------------------------------===//
// Appendix A.1 invariant, epoch-compressed form: pt's stored clock is
// probe-equivalent to ⊔ of the clocks of all events that touched pt — it
// never exceeds the true join, and it answers every ⊑ probe against a
// machine-obtainable clock (any event clock of the trace) identically.
//===----------------------------------------------------------------------===//

TEST_P(RandomTraceTest, AppendixA1ClockAccumulationInvariant) {
  Trace T = randomTrace(GetParam(), 3, 25, 3, /*Maps=*/1);
  HappensBefore HB(T);
  DictionaryRep Rep;

  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&Rep);
  Detector.processTrace(T);

  // Recompute each point's expected clock offline.
  std::unordered_map<AccessPoint, VectorClock> Expected;
  std::vector<AccessPoint> Points;
  for (size_t I = 0; I != T.size(); ++I) {
    if (!T[I].isInvoke())
      continue;
    const Action &A = T[I].action();
    if (A.object() != ObjectId(0))
      continue;
    Points.clear();
    Rep.touches(A, Points);
    for (const AccessPoint &Pt : Points) {
      auto [It, Inserted] = Expected.try_emplace(Pt, HB.clock(I));
      if (!Inserted)
        It->second.joinWith(HB.clock(I));
    }
  }

  auto Snapshot = Detector.activePoints(ObjectId(0));
  EXPECT_EQ(Snapshot.size(), Expected.size());
  for (const auto &[Pt, Clock] : Snapshot) {
    auto It = Expected.find(Pt);
    ASSERT_NE(It, Expected.end());
    const VectorClock &TrueJoin = It->second;
    // The compressed clock is a lower bound of the true join ...
    EXPECT_TRUE(Clock.leq(TrueJoin))
        << Clock << " exceeds true join " << TrueJoin;
    // ... and probe-equivalent to it against every event clock.
    for (size_t J = 0; J != T.size(); ++J)
      EXPECT_EQ(Clock.leq(HB.clock(J)), TrueJoin.leq(HB.clock(J)))
          << "probe divergence at event " << J << ": stored " << Clock
          << " vs true join " << TrueJoin << " against " << HB.clock(J);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTraceTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));
