//===- tests/AbstractLocksTest.cpp - abstract lock manager tests --------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "access/DictionaryRep.h"
#include "locks/AbstractLockManager.h"
#include "spec/Builtins.h"
#include "translate/Translator.h"

#include <gtest/gtest.h>

using namespace crd;

namespace {

Action put(std::string_view K, int64_t V, Value P = Value::nil()) {
  return Action(ObjectId(1), symbol("put"),
                {Value::string(K), Value::integer(V)}, P);
}
Action get(std::string_view K, Value V = Value::nil()) {
  return Action(ObjectId(1), symbol("get"), {Value::string(K)}, V);
}
Action size(int64_t R) {
  return Action(ObjectId(1), symbol("size"), {}, Value::integer(R));
}

} // namespace

TEST(AbstractLockTest, CommutingActionsShareTheObject) {
  DictionaryRep Rep;
  AbstractLockManager Locks(Rep);
  // Two transactions writing different keys coexist.
  EXPECT_TRUE(Locks.tryAcquire(1, put("a", 1)));
  EXPECT_TRUE(Locks.tryAcquire(2, put("b", 2)));
  EXPECT_EQ(Locks.conflictsObserved(), 0u);
}

TEST(AbstractLockTest, ConflictingWritesExclude) {
  DictionaryRep Rep;
  AbstractLockManager Locks(Rep);
  EXPECT_TRUE(Locks.tryAcquire(1, put("a", 1)));
  EXPECT_FALSE(Locks.tryAcquire(2, put("a", 2, Value::integer(1))));
  EXPECT_EQ(Locks.conflictsObserved(), 1u);
  // After Tx1 commits (releases), Tx2 can proceed.
  Locks.releaseAll(1);
  EXPECT_TRUE(Locks.tryAcquire(2, put("a", 2, Value::integer(1))));
}

TEST(AbstractLockTest, ReadersShareWritersExclude) {
  DictionaryRep Rep;
  AbstractLockManager Locks(Rep);
  // Two readers of the same key coexist (r:k does not self-conflict).
  EXPECT_TRUE(Locks.tryAcquire(1, get("a")));
  EXPECT_TRUE(Locks.tryAcquire(2, get("a")));
  // A writer of that key is blocked by both.
  EXPECT_FALSE(Locks.tryAcquire(3, put("a", 1)));
  Locks.releaseAll(1);
  EXPECT_FALSE(Locks.tryAcquire(3, put("a", 1))); // Tx2 still reads.
  Locks.releaseAll(2);
  EXPECT_TRUE(Locks.tryAcquire(3, put("a", 1)));
}

TEST(AbstractLockTest, SizeBlocksResizersOnly) {
  DictionaryRep Rep;
  AbstractLockManager Locks(Rep);
  EXPECT_TRUE(Locks.tryAcquire(1, size(3)));
  // An overwrite does not resize: allowed concurrently with size().
  EXPECT_TRUE(Locks.tryAcquire(2, put("a", 2, Value::integer(1))));
  // A fresh insert resizes: blocked.
  EXPECT_FALSE(Locks.tryAcquire(3, put("b", 1)));
  Locks.releaseAll(1);
  EXPECT_TRUE(Locks.tryAcquire(3, put("b", 1)));
}

TEST(AbstractLockTest, ReacquireIsIdempotent) {
  DictionaryRep Rep;
  AbstractLockManager Locks(Rep);
  EXPECT_TRUE(Locks.tryAcquire(1, put("a", 1)));
  size_t HeldBefore = Locks.heldBy(1);
  EXPECT_TRUE(Locks.tryAcquire(1, put("a", 2, Value::integer(1))));
  EXPECT_EQ(Locks.heldBy(1), HeldBefore); // w:a already held.
  EXPECT_TRUE(Locks.tryAcquire(1, get("a", Value::integer(2))));
  EXPECT_EQ(Locks.heldBy(1), HeldBefore + 1); // r:a newly taken.
}

TEST(AbstractLockTest, ReleaseAllClearsBookkeeping) {
  DictionaryRep Rep;
  AbstractLockManager Locks(Rep);
  EXPECT_TRUE(Locks.tryAcquire(1, put("a", 1)));
  EXPECT_TRUE(Locks.tryAcquire(1, put("b", 1)));
  EXPECT_GT(Locks.totalHeldPoints(), 0u);
  Locks.releaseAll(1);
  EXPECT_EQ(Locks.totalHeldPoints(), 0u);
  EXPECT_EQ(Locks.heldBy(1), 0u);
  // Releasing an unknown transaction is a no-op.
  Locks.releaseAll(42);
}

TEST(AbstractLockTest, FailedAcquireTakesNothing) {
  DictionaryRep Rep;
  AbstractLockManager Locks(Rep);
  EXPECT_TRUE(Locks.tryAcquire(1, size(3)));
  // Tx2's fresh insert touches w:b AND resize; resize conflicts with the
  // held size — the whole acquisition must fail atomically.
  EXPECT_FALSE(Locks.tryAcquire(2, put("b", 1)));
  EXPECT_EQ(Locks.heldBy(2), 0u);
  // In particular w:b must NOT be held: a third transaction can take it.
  Locks.releaseAll(1);
  EXPECT_TRUE(Locks.tryAcquire(3, put("b", 1)));
}

TEST(AbstractLockTest, WorksWithTranslatedRepresentations) {
  DiagnosticEngine Diags;
  auto Rep = translateSpec(setSpec(), Diags);
  ASSERT_TRUE(Rep) << Diags.toString();
  AbstractLockManager Locks(*Rep);

  auto Add = [](std::string_view K, bool Changed) {
    return Action(ObjectId(0), symbol("add"), {Value::string(K)},
                  Value::boolean(Changed));
  };
  auto SizeA = [](int64_t N) {
    return Action(ObjectId(0), symbol("size"), {}, Value::integer(N));
  };

  EXPECT_TRUE(Locks.tryAcquire(1, Add("x", true)));
  EXPECT_FALSE(Locks.tryAcquire(2, Add("x", false))); // Same element.
  EXPECT_TRUE(Locks.tryAcquire(2, Add("y", true)));   // Different element.
  EXPECT_FALSE(Locks.tryAcquire(3, SizeA(2))); // Both adds changed the set.
  Locks.releaseAll(1);
  Locks.releaseAll(2);
  EXPECT_TRUE(Locks.tryAcquire(3, SizeA(2)));
}

TEST(AbstractLockTest, BoostedTransactionsScenario) {
  // A miniature transactional-boosting executor: transactions acquire
  // abstract locks per operation, retrying (after the blocker commits)
  // on conflict — the §2 "optimistic concurrency" use of access points.
  DictionaryRep Rep;
  AbstractLockManager Locks(Rep);

  struct Tx {
    TxId Id;
    std::vector<Action> Ops;
    size_t Next = 0;
    unsigned Retries = 0;
  };
  std::vector<Tx> Txs = {
      {1, {get("acct", Value::integer(100)), put("acct", 150, Value::integer(100))}, 0, 0},
      {2, {get("acct", Value::integer(100)), put("acct", 80, Value::integer(100))}, 0, 0},
      {3, {put("log", 1)}, 0, 0},
  };

  // Round-robin scheduler with retry-on-conflict; abort = release + restart.
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (Tx &T : Txs) {
      if (T.Next == T.Ops.size())
        continue;
      if (Locks.tryAcquire(T.Id, T.Ops[T.Next])) {
        ++T.Next;
        if (T.Next == T.Ops.size())
          Locks.releaseAll(T.Id); // Commit.
      } else {
        // Abort and restart from scratch.
        Locks.releaseAll(T.Id);
        T.Next = 0;
        ++T.Retries;
      }
      Progress = true;
      if (T.Retries > 10) // Livelock guard for the test.
        T.Next = T.Ops.size();
    }
    bool AllDone = true;
    for (const Tx &T : Txs)
      AllDone &= T.Next == T.Ops.size();
    if (AllDone)
      break;
  }

  // Everyone finished; the "log" transaction never conflicted with the
  // account transactions, and the two account transactions conflicted at
  // least once with each other.
  for (const Tx &T : Txs)
    EXPECT_EQ(T.Next, T.Ops.size()) << "transaction " << T.Id;
  EXPECT_EQ(Txs[2].Retries, 0u);
  EXPECT_GT(Txs[0].Retries + Txs[1].Retries, 0u);
  EXPECT_EQ(Locks.totalHeldPoints(), 0u);
}
