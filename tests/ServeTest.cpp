//===- tests/ServeTest.cpp - the crd serve daemon ----------------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// The multi-tenant detection daemon (src/serve). The load-bearing
/// properties:
///
///  * bit-identity — a session's findings, rendered through the `crd
///    serve --connect` client, are byte-for-byte what `crd check` prints
///    for the same trace, across backends × memo modes, and stay that
///    way when all the sessions run concurrently against one daemon
///    (zero cross-session interference);
///  * malformed input kills only the offending session, with the wire
///    reader's canonical diagnostic;
///  * die notices ('D' frames) are applied in stream order and counted;
///  * DropNewest discards whole chunks and counts them, leaving the
///    remainder decodable;
///  * idle sessions are reclaimed by the timeout sweep, capacity
///    rejections are loud, and SIGTERM-style drain still delivers every
///    open session's summary.
///
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"
#include "serve/Server.h"
#include "serve/Session.h"
#include "wire/WireWriter.h"
#include "Cli.h"
#include "CliInternal.h"
#include "TraceGen.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

using namespace crd;

namespace {

//===----------------------------------------------------------------------===//
// Shared plumbing
//===----------------------------------------------------------------------===//

std::unique_ptr<TranslatedRep> loadDictionary() {
  std::ostringstream Err;
  int Exit = 0;
  auto Rep = cli::internal::loadProvider("", Err, Exit);
  EXPECT_NE(Rep, nullptr) << Err.str();
  return Rep;
}

/// A racy wire trace (with chunk digests) plus a file copy for the CLI.
struct TestTrace {
  std::string Bytes;
  std::string Path;

  explicit TestTrace(size_t EventsPerChunk = 64) {
    Trace T = testgen::randomTrace(/*Seed=*/7, /*Workers=*/3,
                                   /*OpsPerWorker=*/40, /*Keys=*/4);
    std::ostringstream OS;
    wire::WireWriter Writer(OS, EventsPerChunk);
    Writer.writeTrace(T);
    Writer.finish();
    Bytes = OS.str();
    Path = std::string(::testing::TempDir()) + "crd_serve_test_" +
           std::to_string(::getpid()) + ".crdb";
    std::ofstream File(Path, std::ios::binary);
    File << Bytes;
  }
  ~TestTrace() { ::unlink(Path.c_str()); }
};

/// Runs one session to completion on the calling thread, mimicking the
/// server's claim/release scheduling handshake.
void driveSession(serve::Session &S) {
  while (S.claimWork()) {
    S.runWork();
    if (!S.releaseWork())
      break;
  }
}

std::string frame(serve::FrameType T, std::string_view Body) {
  std::string Out;
  serve::appendFrameHeader(Out, T, static_cast<uint32_t>(Body.size()));
  Out.append(Body);
  return Out;
}

/// Collects the reply lines of a direct (no-socket) session fed the whole
/// \p Input at once.
std::string runDirect(serve::Session &S, const std::string &Input) {
  S.enqueueInput(Input.data(), Input.size());
  S.noteEof();
  driveSession(S);
  EXPECT_TRUE(S.done());
  return S.takeOutput();
}

/// In-process daemon on a Unix socket, run() on its own thread.
struct Daemon {
  std::unique_ptr<TranslatedRep> Rep;
  std::unique_ptr<serve::Server> S;
  std::thread Runner;
  std::string SockPath;

  explicit Daemon(serve::ServeOptions Opts = {}) {
    Rep = loadDictionary();
    static std::atomic<int> Counter{0};
    SockPath = std::string(::testing::TempDir()) + "crd_serve_" +
               std::to_string(::getpid()) + "_" +
               std::to_string(Counter.fetch_add(1)) + ".sock";
    Opts.UnixPath = SockPath;
    Opts.Provider = Rep.get();
    S = std::make_unique<serve::Server>(std::move(Opts));
    std::string Error;
    bool Started = S->start(Error);
    EXPECT_TRUE(Started) << Error;
    if (Started)
      Runner = std::thread([this] { S->run(); });
  }

  ~Daemon() {
    if (Runner.joinable()) {
      S->requestStop();
      Runner.join();
    }
  }

  /// Waits for a drain-initiated run() exit instead of forcing a stop.
  void joinAfterDrain() { Runner.join(); }
};

/// Raw blocking client socket for the partial-protocol tests.
struct RawClient {
  int Fd = -1;

  explicit RawClient(const std::string &Path) { open(Path); }
  ~RawClient() {
    if (Fd >= 0)
      ::close(Fd);
  }

  void open(const std::string &Path) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(Fd, 0);
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
    ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                        sizeof(Addr)),
              0)
        << std::strerror(errno);
  }

  void send(std::string_view Data) {
    size_t Off = 0;
    while (Off != Data.size()) {
      ssize_t W = ::write(Fd, Data.data() + Off, Data.size() - Off);
      ASSERT_GT(W, 0) << std::strerror(errno);
      Off += static_cast<size_t>(W);
    }
  }

  /// Reads until the server closes the connection.
  std::string readToEof() {
    std::string Out;
    char Buf[4096];
    for (;;) {
      ssize_t R = ::read(Fd, Buf, sizeof(Buf));
      if (R <= 0)
        return Out;
      Out.append(Buf, static_cast<size_t>(R));
    }
  }
};

/// `crd <argv...>` through the library entry point, stdout captured.
std::pair<int, std::string> runCli(std::vector<std::string> Argv) {
  std::ostringstream Out, Err;
  int Exit = cli::crdMain(Argv, Out, Err);
  return {Exit, Out.str()};
}

struct ModeCase {
  const char *Detector;
  const char *Memo; ///< nullptr = no --memo flag.
};

const ModeCase Matrix[] = {
    {"seq", nullptr},        {"seq", "decode"},      {"seq", "full"},
    {"parallel", nullptr},   {"parallel", "decode"}, {"parallel", "full"},
    {"fasttrack", nullptr},  {"fasttrack", "decode"},
    {"atomicity", nullptr},  {"atomicity", "decode"},
};

std::vector<std::string> checkArgs(const TestTrace &T, const ModeCase &M) {
  std::vector<std::string> A{"check", std::string("--detector=") + M.Detector};
  if (M.Memo)
    A.push_back(std::string("--memo=") + M.Memo);
  A.push_back(T.Path);
  return A;
}

std::vector<std::string> clientArgs(const Daemon &D, const TestTrace &T,
                                    const ModeCase &M) {
  std::vector<std::string> A{"serve", "--connect=" + D.SockPath,
                             "--trace=" + T.Path,
                             std::string("--detector=") + M.Detector};
  if (M.Memo)
    A.push_back(std::string("--memo=") + M.Memo);
  return A;
}

//===----------------------------------------------------------------------===//
// Bit-identity: serve == check, solo and under concurrency
//===----------------------------------------------------------------------===//

TEST(ServeTest, ClientMatchesCheckAcrossBackendsAndMemoModes) {
  TestTrace T;
  Daemon D;
  for (const ModeCase &M : Matrix) {
    auto [CheckExit, CheckOut] = runCli(checkArgs(T, M));
    auto [ServeExit, ServeOut] = runCli(clientArgs(D, T, M));
    EXPECT_EQ(ServeOut, CheckOut)
        << "detector=" << M.Detector
        << " memo=" << (M.Memo ? M.Memo : "(none)");
    EXPECT_EQ(ServeExit, CheckExit) << "detector=" << M.Detector;
  }
}

TEST(ServeTest, ConcurrentSessionsDoNotInterfere) {
  TestTrace T;
  Daemon D;
  // Expected outputs first, solo.
  std::vector<std::string> Expected;
  for (const ModeCase &M : Matrix)
    Expected.push_back(runCli(checkArgs(T, M)).second);

  // Then every mode at once, several clients per mode, all racing on the
  // one daemon: each session must still see exactly its own findings.
  constexpr int PerMode = 3;
  const size_t Modes = std::size(Matrix);
  std::vector<std::string> Got(Modes * PerMode);
  std::vector<std::thread> Threads;
  for (size_t I = 0; I != Got.size(); ++I)
    Threads.emplace_back([&, I] {
      Got[I] = runCli(clientArgs(D, T, Matrix[I % Modes])).second;
    });
  for (std::thread &Th : Threads)
    Th.join();
  for (size_t I = 0; I != Got.size(); ++I)
    EXPECT_EQ(Got[I], Expected[I % Modes])
        << "detector=" << Matrix[I % Modes].Detector;
}

//===----------------------------------------------------------------------===//
// Session isolation and robustness
//===----------------------------------------------------------------------===//

TEST(ServeTest, MalformedChunkKillsOnlyTheOffendingSession) {
  TestTrace T;
  auto Rep = loadDictionary();
  serve::SessionLimits Limits;

  // The healthy session's solo output is the baseline.
  serve::Session Solo(1, Limits, Rep.get(), false);
  std::string Handshake = std::string(serve::ProtocolTag) + "\n";
  std::string GoodInput = Handshake + frame(serve::FrameType::Wire, T.Bytes) +
                          frame(serve::FrameType::End, "");
  std::string Baseline = runDirect(Solo, GoodInput);

  serve::Session Bad(2, Limits, Rep.get(), false);
  serve::Session Good(3, Limits, Rep.get(), false);
  std::string BadInput =
      Handshake + frame(serve::FrameType::Wire, "XXXXXXXXXXXXXXXX") +
      frame(serve::FrameType::End, "");
  std::string BadReply, GoodReply;
  std::thread A([&] { BadReply = runDirect(Bad, BadInput); });
  std::thread B([&] { GoodReply = runDirect(Good, GoodInput); });
  A.join();
  B.join();

  EXPECT_NE(BadReply.find("\"type\":\"error\""), std::string::npos);
  EXPECT_NE(BadReply.find("bad magic"), std::string::npos) << BadReply;
  // Modulo the session id, the neighbor is untouched.
  auto Normalize = [](std::string S) {
    for (size_t At; (At = S.find("\"session\":")) != std::string::npos;) {
      size_t End = At + std::strlen("\"session\":");
      while (End < S.size() && S[End] >= '0' && S[End] <= '9')
        ++End;
      S.replace(At, End - At, "sid");
    }
    return S;
  };
  EXPECT_EQ(Normalize(GoodReply), Normalize(Baseline));
}

TEST(ServeTest, DieNoticesAreCountedAndKeepFindingsIdentical) {
  TestTrace T;
  auto Rep = loadDictionary();
  serve::SessionLimits Limits;
  std::string Handshake = std::string(serve::ProtocolTag) + "\n";

  serve::Session Plain(1, Limits, Rep.get(), false);
  std::string Baseline = runDirect(
      Plain, Handshake + frame(serve::FrameType::Wire, T.Bytes) +
                 frame(serve::FrameType::End, ""));

  // Die notices for every object after the full trace: per-object state
  // reclamation must not change what was already detected.
  std::string Died;
  for (uint32_t Obj = 0; Obj != 8; ++Obj) {
    char Le[4] = {static_cast<char>(Obj), 0, 0, 0};
    Died.append(Le, 4);
  }
  serve::Session WithDied(2, Limits, Rep.get(), false);
  std::string Reply = runDirect(
      WithDied, Handshake + frame(serve::FrameType::Wire, T.Bytes) +
                    frame(serve::FrameType::Died, Died) +
                    frame(serve::FrameType::End, ""));

  EXPECT_NE(Reply.find("\"objects_died\":8"), std::string::npos) << Reply;
  // Same races line-for-line; only the summary's objects_died differs.
  auto RacesOf = [](const std::string &S) {
    std::string Out;
    std::istringstream Lines(S);
    std::string Line;
    while (std::getline(Lines, Line))
      if (Line.find("\"type\":\"race\"") != std::string::npos)
        Out += Line + "\n";
    return Out;
  };
  EXPECT_EQ(RacesOf(Reply), RacesOf(Baseline));
}

TEST(ServeTest, ArbitrarySlicingReassemblesChunks) {
  TestTrace T(/*EventsPerChunk=*/8);
  auto Rep = loadDictionary();
  serve::SessionLimits Limits;
  std::string Handshake = std::string(serve::ProtocolTag) + "\n";
  std::string Whole = runDirect(
      *std::make_unique<serve::Session>(1, Limits, Rep.get(), false),
      Handshake + frame(serve::FrameType::Wire, T.Bytes) +
          frame(serve::FrameType::End, ""));

  // The same trace as hundreds of tiny 'W' frames, delivered byte-by-byte
  // to the session with a work round after every enqueue.
  serve::Session S(2, Limits, Rep.get(), false);
  std::string Input = Handshake;
  for (size_t Pos = 0; Pos < T.Bytes.size(); Pos += 7)
    Input += frame(serve::FrameType::Wire,
                   std::string_view(T.Bytes).substr(
                       Pos, std::min<size_t>(7, T.Bytes.size() - Pos)));
  Input += frame(serve::FrameType::End, "");
  for (char C : Input) {
    S.enqueueInput(&C, 1);
    driveSession(S);
  }
  S.noteEof();
  driveSession(S);
  ASSERT_TRUE(S.done());
  std::string Sliced = S.takeOutput();

  auto Normalize = [](std::string Str) {
    size_t At = Str.find("\"session\":");
    while (At != std::string::npos) {
      size_t End = At + std::strlen("\"session\":");
      while (End < Str.size() && Str[End] >= '0' && Str[End] <= '9')
        ++End;
      Str.replace(At, End - At, "sid");
      At = Str.find("\"session\":", At);
    }
    return Str;
  };
  EXPECT_EQ(Normalize(Sliced), Normalize(Whole));
}

TEST(ServeTest, DropNewestDiscardsWholeChunksAndStillSummarizes) {
  TestTrace T(/*EventsPerChunk=*/8); // Many small chunks.
  auto Rep = loadDictionary();
  serve::SessionLimits Limits;
  Limits.MaxBufferedBytes = 128;
  Limits.Policy = ingest::BackpressurePolicy::DropNewest;
  serve::Session S(1, Limits, Rep.get(), false);
  std::string Reply = runDirect(
      S, std::string(serve::ProtocolTag) + "\n" +
             frame(serve::FrameType::Wire, T.Bytes) +
             frame(serve::FrameType::End, ""));
  EXPECT_NE(Reply.find("\"type\":\"summary\""), std::string::npos) << Reply;
  auto Dropped = Reply.find("\"dropped_chunks\":");
  ASSERT_NE(Dropped, std::string::npos);
  EXPECT_NE(Reply.find("\"dropped_chunks\":0"), Dropped)
      << "expected drops under a 128-byte buffer cap: " << Reply;
}

TEST(ServeTest, FootprintCeilingKillsTheSessionWithAdvice) {
  TestTrace T;
  auto Rep = loadDictionary();
  serve::SessionLimits Limits;
  Limits.MaxSessionBytes = 1; // Anything trips it.
  serve::Session S(1, Limits, Rep.get(), false);
  std::string Reply = runDirect(
      S, std::string(serve::ProtocolTag) + "\n" +
             frame(serve::FrameType::Wire, T.Bytes) +
             frame(serve::FrameType::End, ""));
  EXPECT_NE(Reply.find("\"type\":\"error\""), std::string::npos) << Reply;
  EXPECT_NE(Reply.find("--session-cap"), std::string::npos) << Reply;
}

TEST(ServeTest, BadHandshakeIsRejected) {
  auto Rep = loadDictionary();
  serve::Session S(1, serve::SessionLimits(), Rep.get(), false);
  std::string Reply = runDirect(S, "crd-serve/999 detector=seq\n");
  EXPECT_NE(Reply.find("\"type\":\"error\""), std::string::npos) << Reply;
}

//===----------------------------------------------------------------------===//
// Daemon lifecycle
//===----------------------------------------------------------------------===//

TEST(ServeTest, StatusDocumentReportsSessions) {
  TestTrace T;
  Daemon D;
  runCli(clientArgs(D, T, {"seq", nullptr}));
  auto [Exit, Out] = runCli({"serve", "--connect=" + D.SockPath, "--status"});
  EXPECT_EQ(Exit, 0);
  EXPECT_NE(Out.find("\"sessions_opened\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"events_total\": " + std::to_string(0)), 0u) << Out;
  EXPECT_NE(Out.find("\"races_total\""), std::string::npos) << Out;
}

TEST(ServeTest, IdleSessionsAreReclaimed) {
  serve::ServeOptions Opts;
  Opts.IdleTimeoutMs = 50;
  Daemon D(std::move(Opts));
  RawClient C(D.SockPath);
  C.send(std::string(serve::ProtocolTag) + "\n");
  // Stay silent past the timeout; the sweep must kill the session and
  // close the connection with an explanatory error line.
  std::string Reply = C.readToEof();
  EXPECT_NE(Reply.find("\"type\":\"error\""), std::string::npos) << Reply;
  EXPECT_NE(Reply.find("idle"), std::string::npos) << Reply;
}

TEST(ServeTest, CapacityRejectionIsLoud) {
  TestTrace T;
  serve::ServeOptions Opts;
  Opts.MaxSessions = 1;
  Daemon D(std::move(Opts));
  RawClient Holder(D.SockPath);
  Holder.send(std::string(serve::ProtocolTag) + "\n");
  // Give the daemon a poll round to accept and register the holder.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  RawClient Second(D.SockPath);
  std::string Reply = Second.readToEof();
  EXPECT_NE(Reply.find("session capacity"), std::string::npos) << Reply;
  // The holder still works after the rejection.
  Holder.send(frame(serve::FrameType::Wire, T.Bytes) +
              frame(serve::FrameType::End, ""));
  std::string HolderReply = Holder.readToEof();
  EXPECT_NE(HolderReply.find("\"type\":\"summary\""), std::string::npos)
      << HolderReply;
}

TEST(ServeTest, DrainDeliversSummariesToOpenSessions) {
  TestTrace T;
  Daemon D;
  RawClient C(D.SockPath);
  // Whole trace but no 'E': only the drain ends this session.
  C.send(std::string(serve::ProtocolTag) + "\n" +
         frame(serve::FrameType::Wire, T.Bytes));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  D.S->requestDrain();
  std::string Reply = C.readToEof();
  EXPECT_NE(Reply.find("\"type\":\"summary\""), std::string::npos) << Reply;
  // run() must return on its own once the drained session flushes.
  D.joinAfterDrain();
}

} // namespace
