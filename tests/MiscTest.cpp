//===- tests/MiscTest.cpp - remaining odds and ends ---------------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "replay/Determinism.h"
#include "spec/Builtins.h"
#include "spec/SpecParser.h"
#include "trace/TraceIO.h"
#include "translate/Translator.h"
#include "workloads/Harness.h"

#include <gtest/gtest.h>

#include <random>

using namespace crd;

TEST(MiscHarnessTest, CircuitNamesAreUniqueAndStable) {
  std::set<std::string> Names;
  for (Circuit C : AllCircuits)
    EXPECT_TRUE(Names.insert(circuitName(C)).second) << circuitName(C);
  EXPECT_EQ(Names.size(), 6u);
  EXPECT_EQ(std::string(modeName(AnalysisMode::Uninstrumented)),
            "Uninstrumented");
  EXPECT_EQ(std::string(modeName(AnalysisMode::FastTrack)), "FASTTRACK");
  EXPECT_EQ(std::string(modeName(AnalysisMode::RD2)), "RD2");
}

TEST(MiscHarnessTest, SnitchResultsDeterministicGivenSeed) {
  SnitchConfig Config;
  Config.Hosts = 5;
  Config.UpdaterThreads = 2;
  Config.TimingsPerUpdater = 30;
  Config.ScoreRecalcs = 8;
  Config.Seed = 33;
  RunResult A = runSnitchTest(AnalysisMode::RD2, Config);
  RunResult B = runSnitchTest(AnalysisMode::RD2, Config);
  EXPECT_EQ(A.RacesTotal, B.RacesTotal);
  EXPECT_EQ(A.RacesDistinct, B.RacesDistinct);
  EXPECT_EQ(A.Queries, B.Queries);
}

TEST(MiscTranslatorTest, EveryClassHasANameAndConsistentFlags) {
  for (const ObjectSpec *Spec :
       {&dictionarySpec(), &setSpec(), &counterSpec(), &registerSpec(),
        &queueSpec()}) {
    DiagnosticEngine Diags;
    auto Rep = translateSpec(*Spec, Diags);
    ASSERT_TRUE(Rep) << Spec->name();
    for (uint32_t C = 0; C != Rep->numClasses(); ++C) {
      EXPECT_FALSE(Rep->className(C).empty());
      // Conflict rows are symmetric and never cross the value-carrying
      // boundary.
      for (uint32_t Partner : Rep->conflictsOf(C)) {
        EXPECT_EQ(Rep->classCarriesValue(C),
                  Rep->classCarriesValue(Partner))
            << Spec->name() << " class " << C;
        const auto &Back = Rep->conflictsOf(Partner);
        EXPECT_NE(std::find(Back.begin(), Back.end(), C), Back.end())
            << Spec->name() << ": conflict relation not symmetric";
      }
    }
  }
}

TEST(MiscParserTest, RecoversAcrossBrokenObjects) {
  DiagnosticEngine Diags;
  auto Specs = parseSpecs(R"(
    object broken {
      method m(;
    }
    object fine {
      method m();
      commute m(), m() : true;
    }
  )",
                          Diags);
  // Errors were reported...
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_FALSE(Specs); // ...so the parse fails as a whole,
  // but recovery kept going: the 'fine' object's clauses produced no
  // additional spurious errors beyond the one in 'broken'.
  EXPECT_LE(Diags.errorCount(), 2u);
}

TEST(MiscParserTest, TraceParserSurvivesGarbage) {
  std::mt19937_64 Rng(123);
  for (int Round = 0; Round != 50; ++Round) {
    std::string Garbage;
    for (int I = 0; I != 200; ++I)
      Garbage.push_back(static_cast<char>(' ' + Rng() % 95));
    DiagnosticEngine Diags;
    // Must not crash; virtually certain to fail with diagnostics.
    auto T = parseTrace(Garbage, Diags);
    if (!T) {
      EXPECT_TRUE(Diags.hasErrors());
    }
  }
}

TEST(MiscParserTest, SpecParserSurvivesGarbage) {
  std::mt19937_64 Rng(321);
  for (int Round = 0; Round != 50; ++Round) {
    std::string Garbage = "object g {";
    for (int I = 0; I != 150; ++I)
      Garbage.push_back(static_cast<char>(' ' + Rng() % 95));
    DiagnosticEngine Diags;
    auto Spec = parseObjectSpec(Garbage, Diags);
    if (!Spec) {
      EXPECT_TRUE(Diags.hasErrors());
    }
  }
}

TEST(MiscReplayTest, DeterminismCheckerHandlesTxMarkers) {
  // Traces with atomic-block markers replay fine (markers are not
  // actions); the torn-commit sample is racy and must show divergence or
  // infeasibility.
  DiagnosticEngine Diags;
  auto T = parseTrace("T0: fork T1\n"
                      "T0: txbegin\n"
                      "T0: o1.get(0)/nil\n"
                      "T1: o1.put(0, 777)/nil\n"
                      "T0: o1.put(0, 888)/777\n"
                      "T0: txend\n",
                      Diags);
  ASSERT_TRUE(T) << Diags.toString();
  DeterminismReport Report = checkDeterminism(*T);
  EXPECT_GT(Report.LinearizationsChecked, 1u);
  EXPECT_FALSE(Report.deterministic());
}

TEST(MiscReplayTest, UnknownMethodMakesReplayInfeasible) {
  Trace T;
  T.append(Event::invoke(ThreadId(0),
                         Action(ObjectId(0), symbol("frobnicate"),
                                {Value::integer(1)}, Value::nil())));
  ReplayResult R = replayTrace(T, AbstractHeap());
  EXPECT_FALSE(R.Feasible);
  EXPECT_EQ(R.FailedAt, 0u);
}
