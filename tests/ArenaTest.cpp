//===- tests/ArenaTest.cpp - Arena allocator and decode lifetime --------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// Properties of the bump allocator behind the wire decoder's per-chunk
/// value storage: alignment, chunk growth, reset-reuse (a steady-state
/// workload must stop acquiring chunks after warmup), and an end-to-end
/// StreamPipeline run over a many-chunk binary trace. The end-to-end test
/// is the asan witness for the arena lifetime contract — if any decoded
/// Value were read after its chunk's reset, the sanitizer build of this
/// test would flag it, and the race reports would diverge from the
/// materialized path.
///
//===----------------------------------------------------------------------===//

#include "access/DictionaryRep.h"
#include "detect/CommutativityDetector.h"
#include "support/Arena.h"
#include "trace/Event.h"
#include "wire/StreamPipeline.h"
#include "wire/WireWriter.h"
#include "TraceGen.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <vector>

using namespace crd;
using namespace crd::wire;

namespace {

TEST(ArenaTest, AlignmentPerType) {
  Arena A(256);
  // Interleave types of different alignment; every pointer must satisfy
  // its own type's requirement.
  for (int I = 0; I != 100; ++I) {
    uint8_t *P8 = A.allocate<uint8_t>(1);
    EXPECT_NE(P8, nullptr);
    uint64_t *P64 = A.allocate<uint64_t>(1);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P64) % alignof(uint64_t), 0u);
    Value *PV = A.allocate<Value>(3);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(PV) % alignof(Value), 0u);
    uint32_t *P32 = A.allocate<uint32_t>(2);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P32) % alignof(uint32_t), 0u);
  }
}

TEST(ArenaTest, AllocationsDoNotOverlapAndHoldValues) {
  Arena A(128); // Small chunks force frequent chunk transitions.
  std::vector<std::pair<uint64_t *, uint64_t>> Blocks;
  for (uint64_t I = 0; I != 500; ++I) {
    size_t Count = 1 + I % 7;
    uint64_t *P = A.allocate<uint64_t>(Count);
    for (size_t J = 0; J != Count; ++J)
      P[J] = I * 1000 + J;
    Blocks.push_back({P, I});
  }
  // Everything written is still intact: no allocation clobbered another.
  for (auto [P, I] : Blocks) {
    size_t Count = 1 + I % 7;
    for (size_t J = 0; J != Count; ++J)
      EXPECT_EQ(P[J], I * 1000 + J) << "block " << I;
  }
}

TEST(ArenaTest, ChunkGrowthAndOversizedAllocations) {
  Arena A(64);
  EXPECT_EQ(A.chunkCount(), 0u);
  A.allocate<uint8_t>(1);
  EXPECT_EQ(A.chunkCount(), 1u);
  // Fill past the first chunk.
  A.allocate<uint8_t>(60);
  A.allocate<uint8_t>(60);
  EXPECT_GE(A.chunkCount(), 2u);
  // An allocation larger than the chunk size gets a dedicated chunk and
  // must still be usable end-to-end.
  uint8_t *Big = A.allocate<uint8_t>(1000);
  std::memset(Big, 0xab, 1000);
  EXPECT_EQ(Big[999], 0xab);
  EXPECT_GE(A.bytesUsed(), 1000u);
}

TEST(ArenaTest, ResetReusesChunksWithoutGrowth) {
  Arena A(256);
  // Warm up with a representative round.
  auto round = [&A] {
    for (int I = 0; I != 50; ++I) {
      Value *P = A.allocate<Value>(1 + I % 4);
      P[0] = Value::integer(I);
    }
  };
  round();
  size_t WarmChunks = A.chunkCount();
  EXPECT_GE(WarmChunks, 1u);
  // Steady state: identical rounds after reset must never acquire chunks —
  // this is the zero-allocation property the decode loop relies on.
  for (int Round = 0; Round != 100; ++Round) {
    A.reset();
    EXPECT_EQ(A.bytesUsed(), 0u);
    round();
    ASSERT_EQ(A.chunkCount(), WarmChunks) << "round " << Round;
  }
}

TEST(ArenaTest, ResetRecyclesStorage) {
  Arena A(1024);
  uint64_t *First = A.allocate<uint64_t>(8);
  std::uintptr_t FirstAddr = reinterpret_cast<std::uintptr_t>(First);
  A.reset();
  uint64_t *Second = A.allocate<uint64_t>(8);
  // Same size class from a fresh reset lands on the same storage.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(Second), FirstAddr);
}

//===----------------------------------------------------------------------===//
// End-to-end lifetime: decoded values vs chunk resets
//===----------------------------------------------------------------------===//

const DictionaryRep &dictRep() {
  static DictionaryRep Rep;
  return Rep;
}

/// Streams a binary encoding of \p T chunked at \p EventsPerChunk through
/// the given backend and returns the race reports.
std::vector<CommutativityRace> racesViaPipeline(const Trace &T,
                                                Backend TheBackend,
                                                size_t EventsPerChunk) {
  std::ostringstream OS;
  WireWriter Writer(OS, EventsPerChunk);
  Writer.writeTrace(T);
  Writer.finish();
  std::string Bytes = OS.str();

  std::istringstream In(Bytes);
  DiagnosticEngine Diags;
  BinaryStreamSource Source(In, Diags);
  PipelineOptions Opts;
  Opts.TheBackend = TheBackend;
  Opts.Shards = TheBackend == Backend::Parallel ? 2 : 0;
  Opts.BatchSize = 37; // Odd size so shard batches straddle wire chunks.
  StreamPipeline Pipeline(Opts);
  Pipeline.setDefaultProvider(&dictRep());
  Pipeline.run(Source);
  EXPECT_FALSE(Source.failed()) << Diags.toString();
  return Pipeline.races();
}

TEST(ArenaTest, StreamPipelineSurvivesChunkResets) {
  // Tiny wire chunks (8 events) maximize arena resets mid-stream; batches
  // of 37 events force the parallel backend to hold decoded payloads
  // across several resets. Any value read after its chunk's reset is a
  // use-after-reset asan would catch here, and stale bytes would change
  // the race reports against the materialized baseline.
  Trace T = testgen::randomTrace(/*Seed=*/20140607, /*Workers=*/4,
                                 /*OpsPerWorker=*/120, /*Keys=*/6);

  CommutativityRaceDetector Baseline;
  Baseline.setDefaultProvider(&dictRep());
  Baseline.processTrace(T);
  ASSERT_FALSE(Baseline.races().empty())
      << "trace too tame to witness lifetime bugs";

  for (Backend B : {Backend::Sequential, Backend::Parallel}) {
    std::vector<CommutativityRace> Streamed = racesViaPipeline(T, B, 8);
    ASSERT_EQ(Streamed.size(), Baseline.races().size());
    for (size_t I = 0; I != Streamed.size(); ++I)
      EXPECT_TRUE(Streamed[I] == Baseline.races()[I])
          << "race " << I << " diverged:\n  " << Streamed[I].toString()
          << "\n  " << Baseline.races()[I].toString();
  }
}

} // namespace
