//===- tests/FormulaEdgeTest.cpp - formula/fragment/clock edge cases ----------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "hb/VectorClockState.h"
#include "spec/Fragment.h"

#include <gtest/gtest.h>

using namespace crd;

namespace {

Term x(uint32_t P) { return Term::var(Side::First, P); }
Term y(uint32_t P) { return Term::var(Side::Second, P); }
FormulaPtr eq(Term A, Term B) { return Formula::atom(PredKind::Eq, A, B); }
FormulaPtr ne(Term A, Term B) { return Formula::atom(PredKind::Ne, A, B); }

} // namespace

//===----------------------------------------------------------------------===//
// Formula construction corners
//===----------------------------------------------------------------------===//

TEST(FormulaEdgeTest, NaryBuildersFoldNeutralElements) {
  EXPECT_TRUE(Formula::andOf(std::vector<FormulaPtr>{})->isTrue());
  EXPECT_TRUE(Formula::orOf(std::vector<FormulaPtr>{})->isFalse());

  std::vector<FormulaPtr> Parts = {Formula::truth(true), eq(x(0), x(1)),
                                   Formula::truth(true)};
  FormulaPtr F = Formula::andOf(Parts);
  EXPECT_EQ(F->kind(), Formula::Kind::Atom);

  std::vector<FormulaPtr> OrParts = {Formula::truth(false), eq(x(0), x(1))};
  EXPECT_EQ(Formula::orOf(OrParts)->kind(), Formula::Kind::Atom);

  std::vector<FormulaPtr> Absorb = {eq(x(0), x(1)), Formula::truth(false)};
  EXPECT_TRUE(Formula::andOf(Absorb)->isFalse());
}

TEST(FormulaEdgeTest, DoubleNegationViaAtomPush) {
  FormulaPtr F = eq(x(0), x(1));
  FormulaPtr NotNot = Formula::notOf(Formula::notOf(F));
  // notOf pushes through the atom: !(x==y) -> x!=y, then back to x==y.
  ASSERT_EQ(NotNot->kind(), Formula::Kind::Atom);
  EXPECT_EQ(NotNot->pred(), PredKind::Eq);
}

TEST(FormulaEdgeTest, NotOverCompositeIsPreserved) {
  FormulaPtr Composite = Formula::andOf(eq(x(0), x(1)), eq(x(1), x(2)));
  FormulaPtr Negated = Formula::notOf(Composite);
  ASSERT_EQ(Negated->kind(), Formula::Kind::Not);
  EXPECT_EQ(Negated->operand(), Composite);
  // Evaluation respects the negation.
  std::vector<Value> W = {Value::integer(1), Value::integer(1),
                          Value::integer(2)};
  EXPECT_FALSE(Composite->evaluate(W, W));
  EXPECT_TRUE(Negated->evaluate(W, W));
}

TEST(FormulaEdgeTest, TermOrderingIsStrictWeak) {
  std::vector<Term> Terms = {
      Term::constant(Value::nil()),       Term::constant(Value::integer(1)),
      Term::constant(Value::string("s")), x(0),
      x(1),                               y(0),
      y(1),
  };
  for (const Term &A : Terms) {
    EXPECT_FALSE(A < A);
    for (const Term &B : Terms) {
      if (A < B) {
        EXPECT_FALSE(B < A);
      }
      if (!(A < B) && !(B < A)) {
        EXPECT_TRUE(A == B);
      }
    }
  }
}

TEST(FormulaEdgeTest, PredicateHelpersAreInvolutive) {
  for (PredKind P : {PredKind::Eq, PredKind::Ne, PredKind::Lt, PredKind::Le,
                     PredKind::Gt, PredKind::Ge}) {
    EXPECT_EQ(negatePred(negatePred(P)), P);
    EXPECT_EQ(mirrorPred(mirrorPred(P)), P);
  }
  // Semantics: negate flips, mirror swaps operands.
  Value A = Value::integer(1), B = Value::integer(2);
  for (PredKind P : {PredKind::Eq, PredKind::Ne, PredKind::Lt, PredKind::Le,
                     PredKind::Gt, PredKind::Ge}) {
    EXPECT_NE(evalPred(P, A, B), evalPred(negatePred(P), A, B));
    EXPECT_EQ(evalPred(P, A, B), evalPred(mirrorPred(P), B, A));
  }
}

//===----------------------------------------------------------------------===//
// Boolean-abstraction equivalence corners
//===----------------------------------------------------------------------===//

TEST(FormulaEdgeTest, EquivalenceCapReturnsNullopt) {
  // 21 distinct atoms exceed the 20-atom cap.
  std::vector<FormulaPtr> Atoms;
  for (uint32_t I = 0; I != 21; ++I)
    Atoms.push_back(eq(x(I), Term::constant(Value::integer(I))));
  FormulaPtr Big = Formula::andOf(Atoms);
  EXPECT_EQ(equivalentUnderBooleanAbstraction(*Big, *Big), std::nullopt);
}

TEST(FormulaEdgeTest, EquivalenceSeesThroughDeMorgan) {
  FormulaPtr P = eq(x(0), x(1)), Q = eq(x(1), x(2));
  FormulaPtr Lhs = Formula::notOf(Formula::andOf(P, Q));
  FormulaPtr Rhs = Formula::orOf(Formula::notOf(P), Formula::notOf(Q));
  EXPECT_EQ(equivalentUnderBooleanAbstraction(*Lhs, *Rhs),
            std::optional(true));
}

TEST(FormulaEdgeTest, EquivalenceIsConservativeOnDependentAtoms) {
  // x == 1 && x == 2 is semantically false, but the boolean abstraction
  // treats the atoms as independent, so it is NOT equivalent to false.
  FormulaPtr Dependent =
      Formula::andOf(eq(x(0), Term::constant(Value::integer(1))),
                     eq(x(0), Term::constant(Value::integer(2))));
  EXPECT_EQ(equivalentUnderBooleanAbstraction(*Dependent,
                                              *Formula::truth(false)),
            std::optional(false));
}

TEST(FormulaEdgeTest, CanonicalizeAtomNormalForms) {
  // Ne -> negated Eq with sorted operands.
  CanonAtom A = canonicalizeAtom(*ne(y(1), x(0)));
  EXPECT_EQ(A.Base, PredKind::Eq);
  EXPECT_TRUE(A.Negated);
  // Gt(a,b) -> Lt(b,a) positive; Ge(a,b) -> Lt(a,b) negated.
  CanonAtom G = canonicalizeAtom(*Formula::atom(PredKind::Gt, x(0), x(1)));
  EXPECT_EQ(G.Base, PredKind::Lt);
  EXPECT_FALSE(G.Negated);
  CanonAtom Ge = canonicalizeAtom(*Formula::atom(PredKind::Ge, x(0), x(1)));
  EXPECT_EQ(Ge.Base, PredKind::Lt);
  EXPECT_TRUE(Ge.Negated);
  // Le(a,b) = !Lt(b,a).
  CanonAtom Le = canonicalizeAtom(*Formula::atom(PredKind::Le, x(0), x(1)));
  EXPECT_EQ(Le.Base, PredKind::Lt);
  EXPECT_TRUE(Le.Negated);
  EXPECT_EQ(Le.Lhs, x(1));
}

//===----------------------------------------------------------------------===//
// Fragment corners
//===----------------------------------------------------------------------===//

TEST(FragmentEdgeTest, NotOverLSLeavesECL) {
  // ¬(a ∧ b) with LS atoms is not ECL (negation is only allowed in LB).
  FormulaPtr F =
      Formula::notOf(Formula::andOf(ne(x(0), y(0)), ne(x(1), y(1))));
  EXPECT_FALSE(isECL(*F));
  auto Reason = explainNotECL(F);
  ASSERT_TRUE(Reason);
  EXPECT_NE(Reason->find("negation"), std::string::npos);
}

TEST(FragmentEdgeTest, ConstantsBelongToAllFragments) {
  for (bool B : {true, false}) {
    FormulaPtr F = Formula::truth(B);
    EXPECT_TRUE(isLS(*F));
    EXPECT_TRUE(isLB(*F));
    EXPECT_TRUE(isECL(*F));
  }
}

TEST(FragmentEdgeTest, LSAtomRequiresTwoVariables) {
  // k1 != "c" is LB (single side), not LS.
  FormulaPtr F = ne(x(0), Term::constant(Value::string("c")));
  EXPECT_EQ(classifyAtom(*F), AtomClass::LB);
  // Constant-only atoms fold away at construction, so classifyAtom never
  // sees them.
  EXPECT_TRUE(Formula::atom(PredKind::Ne, Term::constant(Value::integer(1)),
                            Term::constant(Value::integer(1)))
                  ->isFalse());
}

//===----------------------------------------------------------------------===//
// VectorClockState corners
//===----------------------------------------------------------------------===//

TEST(VectorClockStateEdgeTest, UnknownLockClockIsBottom) {
  VectorClockState State;
  EXPECT_TRUE(State.lockClock(LockId(99)).isBottom());
}

TEST(VectorClockStateEdgeTest, ReacquireSameLockSameThread) {
  VectorClockState State;
  State.process(Event::acquire(ThreadId(0), LockId(0)));
  State.process(Event::release(ThreadId(0), LockId(0)));
  VectorClock AfterFirst = State.clockOf(ThreadId(0));
  State.process(Event::acquire(ThreadId(0), LockId(0)));
  State.process(Event::release(ThreadId(0), LockId(0)));
  // Each release increments the thread's own component.
  EXPECT_TRUE(AfterFirst.leq(State.clockOf(ThreadId(0))));
  EXPECT_FALSE(State.clockOf(ThreadId(0)).leq(AfterFirst));
}

TEST(VectorClockStateEdgeTest, TwoLocksIndependent) {
  VectorClockState State;
  State.process(Event::fork(ThreadId(0), ThreadId(1)));
  State.process(Event::acquire(ThreadId(0), LockId(0)));
  State.process(Event::release(ThreadId(0), LockId(0)));
  // T1 acquires a DIFFERENT lock: no ordering with T0's critical section.
  State.process(Event::acquire(ThreadId(1), LockId(1)));
  EXPECT_TRUE(
      State.lockClock(LockId(0)).concurrentWith(State.clockOf(ThreadId(1))));
}

TEST(VectorClockStateEdgeTest, JoinOfNeverScheduledThread) {
  VectorClockState State;
  State.process(Event::fork(ThreadId(0), ThreadId(1)));
  // Thread 1 never does anything; joining it is still well-defined.
  State.process(Event::join(ThreadId(0), ThreadId(1)));
  EXPECT_GE(State.clockOf(ThreadId(0)).get(ThreadId(1)), 1u);
}
