//===- tests/MetricsOffSmoke.cpp - CRD_METRICS=0 compile/link smoke ----------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// Compiles support/Metrics.h with CRD_METRICS forced to 0 — regardless of
/// how the rest of the build is configured — and checks that the no-op
/// shells behave as documented: every call site compiles unchanged, every
/// read comes back zero, and the JsonWriter (which is always live) still
/// works. This target deliberately links NO crd libraries: they carry the
/// build's configured CRD_METRICS value, and mixing the two struct layouts
/// in one binary would be an ODR violation. The CMake definition forces
/// -DCRD_METRICS=0 before the header's default kicks in.
///
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace crd::metrics;

static_assert(!Enabled, "this target must compile with CRD_METRICS=0");

TEST(MetricsOffSmoke, CountersAreInertAndReadZero) {
  Counter C;
  C.inc();
  C.add(1000);
  EXPECT_EQ(C.get(), 0u);
  C.reset();
  EXPECT_EQ(C.get(), 0u);
}

TEST(MetricsOffSmoke, ClockIsAConstant) {
  EXPECT_EQ(nowNs(), 0u);
  EXPECT_EQ(nowNs(), 0u);
}

TEST(MetricsOffSmoke, HistogramsAreInert) {
  LinearHistogram<8> L;
  L.record(3);
  L.record(100);
  EXPECT_EQ(L.count(), 0u);
  EXPECT_EQ(L.sum(), 0u);
  EXPECT_EQ(L.max(), 0u);
  EXPECT_EQ(L.bucket(3), 0u);
  for (uint64_t V : L.counts())
    EXPECT_EQ(V, 0u);

  Pow2Histogram<8> P;
  P.record(12345);
  EXPECT_EQ(P.count(), 0u);
  EXPECT_EQ(Pow2Histogram<8>::bucketOf(12345), 0u);

  LinearHistogram<8> Other;
  Other.record(1);
  L.merge(Other); // Must compile and stay inert.
  EXPECT_EQ(L.count(), 0u);
}

TEST(MetricsOffSmoke, JsonWriterStaysLive) {
  // Snapshots are emitted even in OFF builds (with zeroed counters), so
  // the writer must be fully functional here.
  std::ostringstream OS;
  JsonWriter W(OS);
  W.beginObject();
  W.field("metrics_enabled", Enabled);
  W.field("count", Counter().get());
  W.endObject();
  EXPECT_EQ(OS.str(), "{\n"
                      "  \"metrics_enabled\": false,\n"
                      "  \"count\": 0\n"
                      "}");
}
