//===- tests/ReplayTest.cpp - abstract replay & Theorem 5.2 tests -------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "access/DictionaryRep.h"
#include "detect/CommutativityDetector.h"
#include "replay/Determinism.h"
#include "trace/TraceBuilder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>

using namespace crd;

namespace {

Value str(std::string_view S) { return Value::string(S); }
Value num(int64_t I) { return Value::integer(I); }

} // namespace

//===----------------------------------------------------------------------===//
// Abstract object semantics (Fig 5)
//===----------------------------------------------------------------------===//

TEST(AbstractDictionaryTest, Fig5Semantics) {
  AbstractDictionary D;
  // put defined iff p = d(k).
  EXPECT_TRUE(D.apply(Action(ObjectId(0), symbol("put"), {str("k"), num(1)},
                             Value::nil())));
  EXPECT_FALSE(D.apply(Action(ObjectId(0), symbol("put"), {str("k"), num(2)},
                              Value::nil()))); // p must be 1 now.
  EXPECT_TRUE(D.apply(Action(ObjectId(0), symbol("put"), {str("k"), num(2)},
                             num(1))));
  // get defined iff v = d(k).
  EXPECT_TRUE(D.apply(Action(ObjectId(0), symbol("get"), {str("k")}, num(2))));
  EXPECT_FALSE(D.apply(Action(ObjectId(0), symbol("get"), {str("k")}, num(1))));
  EXPECT_TRUE(D.apply(
      Action(ObjectId(0), symbol("get"), {str("absent")}, Value::nil())));
  // size defined iff r = |dom(d)|.
  EXPECT_TRUE(D.apply(Action(ObjectId(0), symbol("size"), {}, num(1))));
  EXPECT_FALSE(D.apply(Action(ObjectId(0), symbol("size"), {}, num(2))));
  // Storing nil removes the key.
  EXPECT_TRUE(D.apply(Action(ObjectId(0), symbol("put"), {str("k"), Value::nil()},
                             num(2))));
  EXPECT_TRUE(D.apply(Action(ObjectId(0), symbol("size"), {}, num(0))));
  EXPECT_EQ(D.toString(), "dict{}");
}

TEST(AbstractDictionaryTest, EqualityAndClone) {
  AbstractDictionary A;
  A.apply(Action(ObjectId(0), symbol("put"), {str("k"), num(1)}, Value::nil()));
  auto B = A.clone();
  EXPECT_TRUE(A.equals(*B));
  B->apply(Action(ObjectId(0), symbol("put"), {str("k"), num(2)}, num(1)));
  EXPECT_FALSE(A.equals(*B));
  AbstractCounter C;
  EXPECT_FALSE(A.equals(C)); // Different kinds never compare equal.
}

TEST(AbstractSetTest, Semantics) {
  AbstractSet S;
  auto Add = [](std::string_view K, bool Changed) {
    return Action(ObjectId(0), symbol("add"), {Value::string(K)},
                  Value::boolean(Changed));
  };
  EXPECT_TRUE(S.apply(Add("x", true)));
  EXPECT_FALSE(S.apply(Add("x", true))); // Already present: must be false.
  EXPECT_TRUE(S.apply(Add("x", false)));
  EXPECT_TRUE(S.apply(Action(ObjectId(0), symbol("contains"), {str("x")},
                             Value::boolean(true))));
  EXPECT_TRUE(S.apply(Action(ObjectId(0), symbol("remove"), {str("x")},
                             Value::boolean(true))));
  EXPECT_TRUE(S.apply(Action(ObjectId(0), symbol("size"), {}, num(0))));
}

TEST(AbstractCounterTest, Semantics) {
  AbstractCounter C;
  EXPECT_TRUE(C.apply(Action(ObjectId(0), symbol("inc"), {},
                             std::vector<Value>{})));
  EXPECT_TRUE(C.apply(Action(ObjectId(0), symbol("inc"), {},
                             std::vector<Value>{})));
  EXPECT_TRUE(C.apply(Action(ObjectId(0), symbol("dec"), {},
                             std::vector<Value>{})));
  EXPECT_TRUE(C.apply(Action(ObjectId(0), symbol("read"), {}, num(1))));
  EXPECT_FALSE(C.apply(Action(ObjectId(0), symbol("read"), {}, num(0))));
}

TEST(AbstractRegisterTest, Semantics) {
  AbstractRegister R;
  EXPECT_TRUE(R.apply(Action(ObjectId(0), symbol("read"), {}, Value::nil())));
  EXPECT_TRUE(
      R.apply(Action(ObjectId(0), symbol("write"), {num(5)}, Value::nil())));
  EXPECT_FALSE(
      R.apply(Action(ObjectId(0), symbol("write"), {num(6)}, Value::nil())));
  EXPECT_TRUE(R.apply(Action(ObjectId(0), symbol("write"), {num(6)}, num(5))));
  EXPECT_TRUE(R.apply(Action(ObjectId(0), symbol("read"), {}, num(6))));
}

TEST(AbstractHeapTest, PerObjectFactoryAndEquality) {
  AbstractHeap::Factory Mixed = [](ObjectId Obj) -> std::unique_ptr<AbstractObject> {
    if (Obj.index() == 0)
      return std::make_unique<AbstractCounter>();
    return std::make_unique<AbstractDictionary>();
  };
  AbstractHeap H(Mixed);
  EXPECT_TRUE(H.apply(Action(ObjectId(0), symbol("inc"), {},
                             std::vector<Value>{})));
  EXPECT_TRUE(H.apply(
      Action(ObjectId(1), symbol("put"), {str("k"), num(1)}, Value::nil())));
  AbstractHeap Copy = H;
  EXPECT_TRUE(H.equals(Copy));
  Copy.apply(Action(ObjectId(0), symbol("inc"), {}, std::vector<Value>{}));
  EXPECT_FALSE(H.equals(Copy));

  // An untouched object in one heap equals a fresh object in the other.
  AbstractHeap A(Mixed), B(Mixed);
  A.apply(Action(ObjectId(0), symbol("read"), {}, num(0)));
  EXPECT_TRUE(A.equals(B));
}

//===----------------------------------------------------------------------===//
// Linearization machinery
//===----------------------------------------------------------------------===//

TEST(LinearizeTest, SequentialTraceHasOneLinearization) {
  Trace T = TraceBuilder().read(0, 1).write(0, 2).read(0, 3).take();
  HappensBeforeDag Dag(T);
  std::vector<std::vector<uint32_t>> Orders;
  EXPECT_TRUE(Dag.enumerateLinearizations(100, Orders));
  ASSERT_EQ(Orders.size(), 1u);
  EXPECT_EQ(Orders[0], (std::vector<uint32_t>{0, 1, 2}));
}

TEST(LinearizeTest, TwoIndependentEventsHaveTwoOrders) {
  Trace T = TraceBuilder().fork(0, 1).read(0, 1).read(1, 2).take();
  HappensBeforeDag Dag(T);
  std::vector<std::vector<uint32_t>> Orders;
  EXPECT_TRUE(Dag.enumerateLinearizations(100, Orders));
  // fork first always; the two reads in either order.
  EXPECT_EQ(Orders.size(), 2u);
}

TEST(LinearizeTest, LockEdgesConstrain) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .acquire(0, 0)
                .release(0, 0)
                .acquire(1, 0) // Must come after T0's release.
                .release(1, 0)
                .take();
  HappensBeforeDag Dag(T);
  std::vector<std::vector<uint32_t>> Orders;
  EXPECT_TRUE(Dag.enumerateLinearizations(1000, Orders));
  for (const auto &Order : Orders) {
    size_t PosRel0 = 0, PosAcq1 = 0;
    for (size_t P = 0; P != Order.size(); ++P) {
      if (Order[P] == 2)
        PosRel0 = P;
      if (Order[P] == 3)
        PosAcq1 = P;
    }
    EXPECT_LT(PosRel0, PosAcq1);
  }
}

TEST(LinearizeTest, IndependentEventsYieldFactorialOrders) {
  // Three initial threads (no forks), one read each: 3! = 6 orders.
  Trace T = TraceBuilder().read(0, 0).read(1, 1).read(2, 2).take();
  HappensBeforeDag Dag(T);
  std::vector<std::vector<uint32_t>> Orders;
  EXPECT_TRUE(Dag.enumerateLinearizations(100, Orders));
  EXPECT_EQ(Orders.size(), 6u);
  // All orders are distinct permutations.
  std::set<std::vector<uint32_t>> Unique(Orders.begin(), Orders.end());
  EXPECT_EQ(Unique.size(), 6u);
}

TEST(LinearizeTest, PermuteTraceReordersEvents) {
  Trace T = TraceBuilder().read(0, 0).read(1, 1).take();
  Trace P = permuteTrace(T, {1, 0});
  ASSERT_EQ(P.size(), 2u);
  EXPECT_EQ(P[0].thread(), ThreadId(1));
  EXPECT_EQ(P[1].thread(), ThreadId(0));
}

TEST(LinearizeTest, EnumerationTruncatesAtLimit) {
  // 8 completely independent events (after the forks) explode
  // combinatorially; the limit must kick in.
  TraceBuilder TB;
  for (uint32_t I = 1; I <= 6; ++I)
    TB.fork(0, I);
  for (uint32_t I = 1; I <= 6; ++I)
    TB.read(I, I);
  HappensBeforeDag Dag(TB.take());
  std::vector<std::vector<uint32_t>> Orders;
  EXPECT_FALSE(Dag.enumerateLinearizations(10, Orders));
  EXPECT_EQ(Orders.size(), 10u);
}

TEST(LinearizeTest, RandomLinearizationIsTopological) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .fork(0, 2)
                .write(1, 1)
                .write(2, 2)
                .join(0, 1)
                .join(0, 2)
                .read(0, 1)
                .take();
  HappensBeforeDag Dag(T);
  for (uint64_t Seed = 0; Seed != 20; ++Seed) {
    std::vector<uint32_t> Order = Dag.randomLinearization(Seed);
    ASSERT_EQ(Order.size(), T.size());
    std::vector<size_t> PosOf(T.size());
    for (size_t P = 0; P != Order.size(); ++P)
      PosOf[Order[P]] = P;
    for (uint32_t E = 0; E != T.size(); ++E)
      for (uint32_t Pred : Dag.predecessorsOf(E))
        EXPECT_LT(PosOf[Pred], PosOf[E]);
  }
}

//===----------------------------------------------------------------------===//
// Theorem 5.2
//===----------------------------------------------------------------------===//

namespace {

/// Fig 1 with distinct hosts and joinall: race-free.
Trace raceFreeConnections() {
  return TraceBuilder()
      .fork(0, 1)
      .fork(0, 2)
      .invoke(1, 0, "put", {str("a.com"), num(1)}, Value::nil())
      .invoke(2, 0, "put", {str("b.com"), num(2)}, Value::nil())
      .join(0, 1)
      .join(0, 2)
      .invoke(0, 0, "size", {}, num(2))
      .take();
}

/// Fig 1 with duplicate hosts: the classic commutativity race.
Trace racyConnections() {
  return TraceBuilder()
      .fork(0, 1)
      .fork(0, 2)
      .invoke(1, 0, "put", {str("a.com"), num(1)}, Value::nil())
      .invoke(2, 0, "put", {str("a.com"), num(2)}, num(1))
      .join(0, 1)
      .join(0, 2)
      .invoke(0, 0, "size", {}, num(1))
      .take();
}

} // namespace

TEST(Theorem52Test, RaceFreeTraceIsDeterministic) {
  Trace T = raceFreeConnections();

  // Confirm race-freedom first (the theorem's hypothesis).
  DictionaryRep Rep;
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&Rep);
  Detector.processTrace(T);
  ASSERT_TRUE(Detector.races().empty());

  DeterminismReport Report = checkDeterminism(T);
  EXPECT_TRUE(Report.Exhaustive);
  EXPECT_GT(Report.LinearizationsChecked, 1u);
  EXPECT_TRUE(Report.deterministic()) << Report.Witness;
}

TEST(Theorem52Test, RacyTraceHasInfeasibleOrDivergentLinearization) {
  Trace T = racyConnections();

  DictionaryRep Rep;
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&Rep);
  Detector.processTrace(T);
  ASSERT_FALSE(Detector.races().empty());

  // The converse direction of Theorem 5.2 is not a theorem, but for this
  // trace the race is "real": swapping the two puts makes the recorded
  // returns impossible.
  DeterminismReport Report = checkDeterminism(T);
  EXPECT_TRUE(Report.Exhaustive);
  EXPECT_FALSE(Report.deterministic());
  EXPECT_GT(Report.Infeasible, 0u);
  EXPECT_FALSE(Report.Witness.empty());
}

TEST(Theorem52Test, InfeasibleOriginalTraceIsReported) {
  // A size() return inconsistent with the abstract state.
  Trace T = TraceBuilder()
                .invoke(0, 0, "put", {str("k"), num(1)}, Value::nil())
                .invoke(0, 0, "size", {}, num(7))
                .take();
  DeterminismReport Report = checkDeterminism(T);
  EXPECT_FALSE(Report.deterministic());
  EXPECT_NE(Report.Witness.find("original trace is infeasible"),
            std::string::npos);
}

TEST(Theorem52Test, ReplayTraceComputesFinalState) {
  Trace T = raceFreeConnections();
  ReplayResult R = replayTrace(T, AbstractHeap());
  ASSERT_TRUE(R.Feasible);
  EXPECT_NE(R.Final.toString().find("\"a.com\" -> 1"), std::string::npos);
  EXPECT_NE(R.Final.toString().find("\"b.com\" -> 2"), std::string::npos);
}

TEST(Theorem52Test, SamplingPathOnLargeTraces) {
  // Enough independent workers that exhaustive enumeration is impossible
  // with a tiny limit; the checker must fall back to sampling and still
  // find the race-free trace deterministic.
  TraceBuilder TB;
  for (uint32_t W = 1; W <= 6; ++W)
    TB.fork(0, W);
  for (uint32_t W = 1; W <= 6; ++W)
    TB.invoke(W, 0, "put", {str("host" + std::to_string(W)), num(W)},
              Value::nil());
  for (uint32_t W = 1; W <= 6; ++W)
    TB.join(0, W);
  TB.invoke(0, 0, "size", {}, num(6));
  DeterminismReport Report =
      checkDeterminism(TB.take(), AbstractHeap(), /*EnumerationLimit=*/16,
                       /*Samples=*/50, /*Seed=*/3);
  EXPECT_FALSE(Report.Exhaustive);
  EXPECT_EQ(Report.LinearizationsChecked, 50u);
  EXPECT_TRUE(Report.deterministic()) << Report.Witness;
}

/// Theorem 5.2 as a randomized property: race-free random traces are
/// deterministic across sampled linearizations.
class Theorem52PropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem52PropertyTest, RaceFreeImpliesDeterministic) {
  // Per-thread disjoint key ranges + joinall: race-free by construction,
  // but verify with the detector anyway.
  TraceBuilder TB;
  const unsigned Workers = 3, Ops = 4;
  std::mt19937_64 Rng(GetParam());
  for (uint32_t W = 1; W <= Workers; ++W)
    TB.fork(0, W);
  // Interleave worker actions randomly in the trace order.
  std::vector<std::pair<uint32_t, unsigned>> Slots;
  for (uint32_t W = 1; W <= Workers; ++W)
    for (unsigned I = 0; I != Ops; ++I)
      Slots.emplace_back(W, I);
  std::shuffle(Slots.begin(), Slots.end(), Rng);
  std::map<std::pair<uint32_t, int64_t>, Value> Shadow;
  for (auto [W, I] : Slots) {
    int64_t Key = W * 100 + static_cast<int64_t>(Rng() % Ops);
    Value Prev = Shadow.count({W, Key}) ? Shadow[{W, Key}] : Value::nil();
    if (Rng() % 2) {
      Value New = num(static_cast<int64_t>(Rng() % 3 + 1));
      TB.invoke(W, 0, "put", {num(Key), New}, Prev);
      Shadow[{W, Key}] = New;
    } else {
      TB.invoke(W, 0, "get", {num(Key)}, Prev);
    }
  }
  for (uint32_t W = 1; W <= Workers; ++W)
    TB.join(0, W);
  Trace T = TB.take();

  DictionaryRep Rep;
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&Rep);
  Detector.processTrace(T);
  ASSERT_TRUE(Detector.races().empty());

  DeterminismReport Report = checkDeterminism(T, AbstractHeap(),
                                              /*EnumerationLimit=*/500,
                                              /*Samples=*/60, GetParam());
  EXPECT_TRUE(Report.deterministic())
      << Report.Witness << "\ntrace:\n" << T;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem52PropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));
