//===- examples/atomicity_check.cpp - commutativity-aware atomicity -----------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The §8 generalization in action: a Velodrome-style atomicity
/// (conflict-serializability) checker whose conflicts are commutativity
/// conflicts over access points. The example checks a check-then-act
/// block on a concurrent map against three interleavings:
///
///   1. a conflicting put lands inside the block          -> violation
///   2. a put to a different key lands inside the block   -> serializable
///      (a read/write-level checker would still flag the map's internals)
///   3. a no-op put to the same key lands inside the block-> serializable
///
/// Build & run:  ./atomicity_check
///
//===----------------------------------------------------------------------===//

#include "access/DictionaryRep.h"
#include "detect/AtomicityChecker.h"
#include "trace/TraceBuilder.h"

#include <iostream>

using namespace crd;

namespace {

Trace checkThenActTrace(const char *IntrudingKey, Value IntrudingValue,
                        Value IntrudingPrev) {
  return TraceBuilder()
      .fork(0, 1)
      .txBegin(0)
      .invoke(0, 1, "get", {Value::string("config")}, Value::nil())
      .invoke(1, 1, "put", {Value::string(IntrudingKey), IntrudingValue},
              IntrudingPrev)
      .invoke(0, 1, "put", {Value::string("config"), Value::integer(1)},
              IntrudingKey == std::string_view("config") &&
                      !IntrudingValue.isNil()
                  ? IntrudingValue
                  : Value::nil())
      .txEnd(0)
      .take();
}

void analyze(const char *Label, const Trace &T) {
  std::cout << "== " << Label << " ==\n" << T;
  DictionaryRep Rep;
  AtomicityChecker Checker;
  Checker.setDefaultProvider(&Rep);
  auto Violations = Checker.check(T);
  if (Violations.empty()) {
    std::cout << "=> serializable: the intruding operation commutes with "
                 "the block\n\n";
    return;
  }
  for (const AtomicityViolation &V : Violations)
    std::cout << "=> " << V << '\n';
  std::cout << '\n';
}

} // namespace

int main() {
  analyze("conflicting put inside the block",
          checkThenActTrace("config", Value::integer(99), Value::nil()));
  analyze("put to a different key inside the block",
          checkThenActTrace("other", Value::integer(99), Value::nil()));
  analyze("no-op put inside the block",
          checkThenActTrace("config", Value::nil(), Value::nil()));
  return 0;
}
