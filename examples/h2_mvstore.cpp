//===- examples/h2_mvstore.cpp - H2 MVStore race discovery --------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the two harmful H2 MVStore races of §7 on the simulated
/// store: concurrent commits race on the `freedPageSpace` map (lost
/// updates) and on the `chunks` map (the same chunk metadata computed
/// twice). Runs the ComplexConcurrency circuit and attributes each race to
/// the store map it occurred on.
///
/// Build & run:  ./h2_mvstore [workers] [queries-per-worker]
///
//===----------------------------------------------------------------------===//

#include "detect/CommutativityDetector.h"
#include "spec/Builtins.h"
#include "translate/Translator.h"
#include "workloads/PolePosition.h"

#include <cstdlib>
#include <iostream>
#include <map>

using namespace crd;

int main(int Argc, char **Argv) {
  CircuitConfig Config;
  Config.WorkerThreads = Argc > 1 ? std::atoi(Argv[1]) : 4;
  Config.QueriesPerWorker = Argc > 2 ? std::atoi(Argv[2]) : 250;
  Config.Seed = 2014;

  DiagnosticEngine Diags;
  auto Rep = translateSpec(dictionarySpec(), Diags);
  if (!Rep) {
    std::cerr << Diags.toString();
    return 1;
  }

  SimRuntime RT(Config.Seed);
  MVStore Store(RT);
  size_t Queries =
      buildCircuit(Circuit::ComplexConcurrency, RT, Store, Config);

  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(Rep.get());
  DetectorSink<CommutativityRaceDetector> Sink(Detector);
  RT.run(Sink);

  std::map<uint32_t, std::string> MapNames = {
      {Store.dataMap().object().index(), "data"},
      {Store.chunksMap().object().index(), "chunks"},
      {Store.freedPageSpaceMap().object().index(), "freedPageSpace"},
  };

  std::cout << "ComplexConcurrency circuit: " << Queries << " queries, "
            << Detector.races().size() << " commutativity races on "
            << Detector.distinctRacyObjects() << " object(s)\n\n";

  std::map<std::string, size_t> PerMap;
  for (const CommutativityRace &R : Detector.races())
    ++PerMap[MapNames.count(R.Current.object().index())
                 ? MapNames[R.Current.object().index()]
                 : "other"];
  for (const auto &[Name, Count] : PerMap)
    std::cout << "  races on the " << Name << " map: " << Count << '\n';

  std::cout << "\nFirst few reports:\n";
  for (size_t I = 0; I != Detector.races().size() && I != 5; ++I)
    std::cout << "  " << Detector.races()[I] << '\n';

  std::cout << "\nThe races on chunks/freedPageSpace correspond to the two "
               "harmful H2 MVStore\nraces reported in section 7 of the "
               "paper (check-then-act metadata creation and\nlost "
               "read-modify-write updates).\n";
  return 0;
}
