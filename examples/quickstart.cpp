//===- examples/quickstart.cpp - Fig 1: the connections example ---------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's running example (Fig 1): a program establishes a connection
/// per host in parallel, storing them in a shared dictionary, then prints
/// the number of connections. When the host list contains duplicates, two
/// threads put() the same key — a commutativity race the detector flags.
///
/// Build & run:  ./quickstart
///
//===----------------------------------------------------------------------===//

#include "detect/CommutativityDetector.h"
#include "runtime/InstrumentedMap.h"
#include "spec/Builtins.h"
#include "translate/Translator.h"

#include <iostream>

using namespace crd;

namespace {

/// Runs Fig 1 with the given host list and reports commutativity races.
void analyzeConnectionsProgram(const std::vector<std::string> &Hosts) {
  std::cout << "hosts = [";
  for (size_t I = 0; I != Hosts.size(); ++I)
    std::cout << (I ? ", " : "") << '"' << Hosts[I] << '"';
  std::cout << "]\n";

  // Step 1+2 (Fig 2): commutativity specification -> access points.
  DiagnosticEngine Diags;
  std::unique_ptr<TranslatedRep> Rep = translateSpec(dictionarySpec(), Diags);
  if (!Rep) {
    std::cerr << Diags.toString();
    return;
  }

  // Step 3: run the program under the online detector.
  SimRuntime RT(/*Seed=*/2014);
  InstrumentedMap Dictionary(RT);
  ThreadId Main = RT.addInitialThread();

  auto Workers = std::make_shared<std::vector<ThreadId>>();
  RT.schedule(Main, [&, Workers](SimThread &T) {
    int64_t NextConnection = 1;
    for (const std::string &Host : Hosts) {
      Value HostKey = Value::string(Host);
      Value Connection = Value::integer(NextConnection++);
      // fork { o.put(host, createConnection(host)); }
      Workers->push_back(T.fork([&Dictionary, HostKey,
                                 Connection](SimThread &T2) {
        Dictionary.put(T2, HostKey, Connection);
      }));
    }
  });
  // joinall;
  for (size_t W = 0; W != Hosts.size(); ++W)
    RT.schedule(Main, [Workers, W](SimThread &T) { T.join((*Workers)[W]); });
  // print(o.size() + " connections established");
  RT.schedule(Main, [&Dictionary](SimThread &T) {
    std::cout << "  " << Dictionary.size(T) << " connections established\n";
  });

  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(Rep.get());
  DetectorSink<CommutativityRaceDetector> Sink(Detector);
  RT.run(Sink);

  if (Detector.races().empty()) {
    std::cout << "  no commutativity races found\n\n";
    return;
  }
  std::cout << "  " << Detector.races().size()
            << " commutativity race(s) found:\n";
  for (const CommutativityRace &R : Detector.races())
    std::cout << "    " << R << '\n';
  std::cout << '\n';
}

} // namespace

int main() {
  std::cout << "== Fig 1: distinct hosts (no interference) ==\n";
  analyzeConnectionsProgram({"a.com", "b.com", "c.com"});

  std::cout << "== Fig 1: duplicate hosts (commutativity race) ==\n";
  analyzeConnectionsProgram({"a.com", "a.com", "b.com"});
  return 0;
}
