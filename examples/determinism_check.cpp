//===- examples/determinism_check.cpp - Theorem 5.2 in action -----------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demonstrates paper Theorem 5.2: a trace with no commutativity races is
/// schedule-deterministic — every execution admitting the same
/// happens-before relation ends in the same state — while a racy trace
/// has reorderings that are infeasible or end elsewhere. The example runs
/// both variants of the Fig 1 program and cross-checks the detector's
/// verdict against exhaustive linearization replay.
///
/// Build & run:  ./determinism_check
///
//===----------------------------------------------------------------------===//

#include "access/DictionaryRep.h"
#include "detect/CommutativityDetector.h"
#include "replay/Determinism.h"
#include "trace/TraceBuilder.h"

#include <iostream>

using namespace crd;

namespace {

Trace connectionsTrace(bool DuplicateHosts) {
  TraceBuilder TB;
  TB.fork(0, 1).fork(0, 2);
  TB.invoke(1, 0, "put", {Value::string("a.com"), Value::integer(1)},
            Value::nil());
  if (DuplicateHosts)
    TB.invoke(2, 0, "put", {Value::string("a.com"), Value::integer(2)},
              Value::integer(1));
  else
    TB.invoke(2, 0, "put", {Value::string("b.com"), Value::integer(2)},
              Value::nil());
  TB.join(0, 1).join(0, 2);
  TB.invoke(0, 0, "size", {}, Value::integer(DuplicateHosts ? 1 : 2));
  return TB.take();
}

void analyze(const char *Label, const Trace &T) {
  std::cout << "== " << Label << " ==\n" << T << '\n';

  DictionaryRep Rep;
  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(&Rep);
  Detector.processTrace(T);
  std::cout << "detector: " << Detector.races().size()
            << " commutativity race(s)\n";

  DeterminismReport Report = checkDeterminism(T);
  std::cout << "replay:   " << Report.LinearizationsChecked
            << " linearization(s) checked"
            << (Report.Exhaustive ? " (exhaustive)" : " (sampled)") << ", "
            << Report.Infeasible << " infeasible, " << Report.Divergent
            << " divergent\n";
  if (Report.deterministic())
    std::cout << "=> deterministic: every schedule admitting this "
                 "happens-before ends in the same state (Theorem 5.2)\n\n";
  else
    std::cout << "=> NOT deterministic. Witness:\n  " << Report.Witness
              << "\n\n";
}

} // namespace

int main() {
  analyze("distinct hosts (race-free)", connectionsTrace(false));
  analyze("duplicate hosts (racy)", connectionsTrace(true));
  return 0;
}
