//===- examples/trace_analyzer.cpp - offline trace analysis tool --------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small command-line tool: reads a trace file (see trace/TraceIO.h for
/// the format) and an optional ECL specification file, and reports every
/// commutativity race and every FastTrack read-write race in the trace.
///
/// Usage:  ./trace_analyzer <trace-file> [spec-file]
///
/// Without a spec file, all objects are assumed to be dictionaries
/// (put/get/size, paper Fig 6).
///
//===----------------------------------------------------------------------===//

#include "detect/AtomicityChecker.h"
#include "detect/CommutativityDetector.h"
#include "detect/FastTrack.h"
#include "detect/Summary.h"
#include "spec/Builtins.h"
#include "spec/SpecParser.h"
#include "trace/TraceIO.h"
#include "trace/TraceStats.h"
#include "translate/Translator.h"

#include <fstream>
#include <iostream>
#include <sstream>

using namespace crd;

static std::optional<std::string> readFile(const char *Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::cerr << "usage: " << Argv[0] << " <trace-file> [spec-file]\n";
    return 2;
  }

  auto TraceText = readFile(Argv[1]);
  if (!TraceText) {
    std::cerr << "error: cannot read trace file '" << Argv[1] << "'\n";
    return 2;
  }

  DiagnosticEngine Diags;
  auto T = parseTrace(*TraceText, Diags);
  if (!T) {
    std::cerr << Argv[1] << ": " << "\n" << Diags.toString();
    return 1;
  }
  if (!T->validate(Diags)) {
    std::cerr << "trace is malformed:\n" << Diags.toString();
    return 1;
  }

  const ObjectSpec *Spec = &dictionarySpec();
  std::optional<ObjectSpec> ParsedSpec;
  if (Argc > 2) {
    auto SpecText = readFile(Argv[2]);
    if (!SpecText) {
      std::cerr << "error: cannot read spec file '" << Argv[2] << "'\n";
      return 2;
    }
    ParsedSpec = parseObjectSpec(*SpecText, Diags);
    if (!ParsedSpec) {
      std::cerr << Argv[2] << ":\n" << Diags.toString();
      return 1;
    }
    Spec = &*ParsedSpec;
  }

  auto Rep = translateSpec(*Spec, Diags);
  if (!Rep) {
    std::cerr << "specification is not translatable:\n" << Diags.toString();
    return 1;
  }

  CommutativityRaceDetector RD2;
  RD2.setDefaultProvider(Rep.get());
  RD2.processTrace(*T);

  FastTrackDetector FT;
  FT.processTrace(*T);

  TraceStats::compute(*T).print(std::cout);
  std::cout << '\n';
  std::cout << "commutativity races (" << RD2.races().size() << " total, "
            << RD2.distinctRacyObjects() << " distinct objects):\n";
  for (const CommutativityRace &R : RD2.races())
    std::cout << "  " << R << '\n';
  if (!RD2.races().empty()) {
    std::cout << "\ntriage summary:\n";
    RaceSummary::build(RD2.races()).print(std::cout);
  }

  std::cout << "\nread-write races (" << FT.races().size() << " total, "
            << FT.distinctRacyVars() << " distinct locations):\n";
  for (const MemoryRace &R : FT.races())
    std::cout << "  " << R << '\n';

  // Atomicity: only meaningful when the trace marks atomic blocks.
  bool HasTx = false;
  for (const Event &E : *T)
    HasTx |= E.kind() == EventKind::TxBegin;
  size_t Violations = 0;
  if (HasTx) {
    AtomicityChecker Checker;
    Checker.setDefaultProvider(Rep.get());
    auto Found = Checker.check(*T);
    Violations = Found.size();
    std::cout << "\natomicity violations (" << Violations << "):\n";
    for (const AtomicityViolation &V : Found)
      std::cout << "  " << V << '\n';
  }

  return (RD2.races().empty() && FT.races().empty() && Violations == 0) ? 0
                                                                        : 1;
}
