//===- examples/trace_analyzer.cpp - offline trace analysis tool --------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin wrapper over the `crd analyze` subcommand (tools/crd/Cli.h), kept
/// so existing invocations keep working: reads a trace file (text or binary
/// wire format) and an optional ECL specification file, and reports every
/// commutativity race and every FastTrack read-write race in the trace.
///
/// Usage:  ./trace_analyzer <trace-file> [spec-file]
///
/// Without a spec file, all objects are assumed to be dictionaries
/// (put/get/size, paper Fig 6). The unified driver (`crd`) additionally
/// offers convert/check/stats/bench subcommands.
///
//===----------------------------------------------------------------------===//

#include "Cli.h"

#include <iostream>
#include <string>
#include <vector>

int main(int Argc, char **Argv) {
  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  return crd::cli::runAnalyze(Args, std::cout, std::cerr);
}
