//===- examples/spec_compiler.cpp - ECL specification compiler CLI ------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A command-line "compiler" for ECL specification files: parses,
/// validates, classifies every formula into the paper's fragments
/// (SIMPLE / LB / ECL), translates to the access point representation and
/// prints the resulting classes, conflict table and pass statistics.
///
/// Usage:  ./spec_compiler <spec-file>...
/// Try:    ./spec_compiler specs/dictionary.spec specs/set.spec
///
//===----------------------------------------------------------------------===//

#include "spec/Fragment.h"
#include "spec/SpecParser.h"
#include "translate/DotExport.h"
#include "translate/Translator.h"

#include <cstring>

#include <fstream>
#include <iostream>
#include <sstream>

using namespace crd;

namespace {

std::optional<std::string> readFile(const char *Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

const char *fragmentName(const Formula &F) {
  if (isLS(F))
    return "SIMPLE (LS)";
  if (isLB(F))
    return "LB";
  if (isECL(F))
    return "ECL";
  return "outside ECL";
}

int compileOne(const ObjectSpec &Spec, bool EmitDot) {
  std::cout << "object " << Spec.name() << " (" << Spec.numMethods()
            << " methods)\n";

  DiagnosticEngine Diags;
  Spec.validate(Diags);
  if (!Diags.empty())
    std::cout << Diags.toString();
  if (Diags.hasErrors())
    return 1;

  // Fragment classification per pair.
  std::cout << "\n  commutativity formulas:\n";
  for (uint32_t I = 0; I != Spec.numMethods(); ++I)
    for (uint32_t J = I; J != Spec.numMethods(); ++J) {
      FormulaPtr F = Spec.commutesFormula(I, J);
      if (!F)
        continue;
      std::cout << "    phi[" << Spec.method(I).Name.str() << ", "
                << Spec.method(J).Name.str() << "] = " << F->toString()
                << "    [" << fragmentName(*F) << "]\n";
    }

  // Translation.
  DiagnosticEngine TransDiags;
  TranslationStats Stats;
  auto Rep = translateSpec(Spec, TransDiags, {}, &Stats);
  if (!Rep) {
    std::cout << TransDiags.toString();
    return 1;
  }

  std::cout << "\n  translation: " << Stats.RawSlots << " raw slots -> "
            << Stats.SlotsAfterDropping << " after dropping -> "
            << Stats.ClassesAfterMerging << " after merging -> "
            << Stats.FinalActiveClasses
            << " active classes (max conflicts/class "
            << Stats.MaxConflictsPerClass << ")\n";

  std::cout << "  access point classes:\n";
  for (uint32_t C = 0; C != Rep->numClasses(); ++C) {
    std::cout << "    [" << C << "] " << Rep->className(C)
              << (Rep->classCarriesValue(C) ? " [keyed]" : "")
              << "  conflicts {";
    const std::vector<uint32_t> &Row = Rep->conflictsOf(C);
    for (size_t I = 0; I != Row.size(); ++I)
      std::cout << (I ? ", " : "") << Row[I];
    std::cout << "}\n";
  }
  if (EmitDot) {
    std::cout << "\n  conflict graph (Graphviz):\n";
    std::cout << conflictGraphToDot(*Rep, Spec.name());
  }
  std::cout << '\n';
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::cerr << "usage: " << Argv[0] << " [--dot] <spec-file>...\n";
    return 2;
  }

  bool EmitDot = false;
  int ExitCode = 0;
  for (int Arg = 1; Arg != Argc; ++Arg) {
    if (std::strcmp(Argv[Arg], "--dot") == 0) {
      EmitDot = true;
      continue;
    }
    auto Text = readFile(Argv[Arg]);
    if (!Text) {
      std::cerr << "error: cannot read '" << Argv[Arg] << "'\n";
      ExitCode = 2;
      continue;
    }
    std::cout << "== " << Argv[Arg] << " ==\n";
    DiagnosticEngine Diags;
    auto Specs = parseSpecs(*Text, Diags);
    if (!Specs) {
      std::cout << Diags.toString();
      ExitCode = 1;
      continue;
    }
    for (const ObjectSpec &Spec : *Specs)
      ExitCode |= compileOne(Spec, EmitDot);
  }
  return ExitCode;
}
