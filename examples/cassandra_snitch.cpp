//===- examples/cassandra_snitch.cpp - DynamicEndpointSnitch race -------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces §7's Cassandra finding: new latency samples are added to the
/// `samples` ConcurrentHashMap while its size is concurrently used as a
/// performance hint during rank recalculation. Also runs FastTrack over
/// the same execution to contrast low-level and commutativity reports.
///
/// Build & run:  ./cassandra_snitch [updaters] [timings-per-updater]
///
//===----------------------------------------------------------------------===//

#include "detect/CommutativityDetector.h"
#include "detect/FastTrack.h"
#include "spec/Builtins.h"
#include "translate/Translator.h"
#include "workloads/Snitch.h"

#include <cstdlib>
#include <iostream>

using namespace crd;

int main(int Argc, char **Argv) {
  SnitchConfig Config;
  Config.UpdaterThreads = Argc > 1 ? std::atoi(Argv[1]) : 4;
  Config.TimingsPerUpdater = Argc > 2 ? std::atoi(Argv[2]) : 250;
  Config.Seed = 2014;

  DiagnosticEngine Diags;
  auto Rep = translateSpec(dictionarySpec(), Diags);
  if (!Rep) {
    std::cerr << Diags.toString();
    return 1;
  }

  // Record once, replay through both detectors for an apples-to-apples
  // comparison on the same execution.
  SimRuntime RT(Config.Seed);
  DynamicEndpointSnitch Snitch(RT, Config.Hosts);
  size_t Ops = buildSnitchTest(RT, Snitch, Config);
  TraceRecorder Recorder;
  RT.run(Recorder);

  CommutativityRaceDetector RD2;
  RD2.setDefaultProvider(Rep.get());
  RD2.processTrace(Recorder.trace());

  FastTrackDetector FT;
  FT.processTrace(Recorder.trace());

  std::cout << "DynamicEndpointSnitch test: " << Ops << " operations, "
            << Recorder.trace().size() << " events\n\n";
  std::cout << "RD2 (commutativity): " << RD2.races().size() << " races on "
            << RD2.distinctRacyObjects() << " object(s)\n";
  size_t SizeRaces = 0;
  for (const CommutativityRace &R : RD2.races())
    if (R.Current.method() == symbol("size") ||
        R.PointName.find("size") != std::string::npos)
      ++SizeRaces;
  std::cout << "  of which involve size() vs. resizing puts: " << SizeRaces
            << "  <- the section-7 samples/size race\n\n";

  std::cout << "FASTTRACK (read/write): " << FT.races().size()
            << " races on " << FT.distinctRacyVars()
            << " memory location(s)\n";
  for (size_t I = 0; I != FT.races().size() && I != 3; ++I)
    std::cout << "  " << FT.races()[I] << '\n';
  return 0;
}
