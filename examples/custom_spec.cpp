//===- examples/custom_spec.cpp - user-defined ECL specifications -------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shows the full Fig 2 pipeline for a user-defined object: write an ECL
/// commutativity specification as text, parse and validate it, translate
/// it to an access point representation, inspect the translation, and
/// detect races on a hand-built trace. The object is a bank account with
/// deposit / withdraw / balance.
///
/// Build & run:  ./custom_spec
///
//===----------------------------------------------------------------------===//

#include "detect/CommutativityDetector.h"
#include "spec/SpecParser.h"
#include "trace/TraceBuilder.h"
#include "translate/Translator.h"

#include <iostream>

using namespace crd;

namespace {

// Deposits always commute with each other. A withdrawal exposes whether it
// succeeded (ok): failed withdrawals commute with deposits and each other
// only if... — in fact a failed withdrawal observes the balance, so we
// conservatively require both to have succeeded-with-enough-margin; the
// point of the example is the *language*, so we keep the spec simple and
// sound: withdrawals never commute with anything but balance-free pairs.
const char *AccountSpec = R"(
object account {
  method deposit(amount);
  method withdraw(amount) / ok;
  method balance() / b;

  commute deposit(a1), deposit(a2) : true;
  commute deposit(a1), withdraw(a2)/ok2 : false;
  commute deposit(a1), balance()/b2 : false;
  commute withdraw(a1)/ok1, withdraw(a2)/ok2 : ok1 == false && ok2 == false;
  commute withdraw(a1)/ok1, balance()/b2 : ok1 == false;
  commute balance()/b1, balance()/b2 : true;
}
)";

} // namespace

int main() {
  // Parse the specification text.
  DiagnosticEngine Diags;
  auto Spec = parseObjectSpec(AccountSpec, Diags);
  if (!Spec) {
    std::cerr << "specification errors:\n" << Diags.toString();
    return 1;
  }
  Spec->validate(Diags);
  std::cout << "parsed specification for object '" << Spec->name()
            << "' with " << Spec->numMethods() << " methods\n";
  if (!Diags.empty())
    std::cout << Diags.toString();

  // Translate to an access point representation, with statistics.
  TranslationStats Stats;
  auto Rep = translateSpec(*Spec, Diags, {}, &Stats);
  if (!Rep) {
    std::cerr << Diags.toString();
    return 1;
  }
  std::cout << "\ntranslation (section 6.2 + appendix A.3 passes):\n"
            << "  raw slots:             " << Stats.RawSlots << '\n'
            << "  after dropping:        " << Stats.SlotsAfterDropping << '\n'
            << "  after merging:         " << Stats.ClassesAfterMerging << '\n'
            << "  final active classes:  " << Stats.FinalActiveClasses << '\n'
            << "  max conflicts/class:   " << Stats.MaxConflictsPerClass
            << "  (Theorem 6.6 bound)\n";
  for (uint32_t C = 0; C != Rep->numClasses(); ++C) {
    std::cout << "  class " << C << " = " << Rep->className(C)
              << (Rep->classCarriesValue(C) ? " [value]" : "") << " conflicts {";
    const auto &Row = Rep->conflictsOf(C);
    for (size_t I = 0; I != Row.size(); ++I)
      std::cout << (I ? ", " : "") << Row[I];
    std::cout << "}\n";
  }

  // Detect races on a hand-built trace: two concurrent withdrawals (one
  // succeeds, one fails) plus an ordered balance check.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .invoke(0, 1, "withdraw", {Value::integer(50)},
                        Value::boolean(true))
                .invoke(1, 1, "withdraw", {Value::integer(80)},
                        Value::boolean(false))
                .join(0, 1)
                .invoke(0, 1, "balance", {}, Value::integer(20))
                .take();

  CommutativityRaceDetector Detector;
  Detector.setDefaultProvider(Rep.get());
  Detector.processTrace(T);

  std::cout << "\ntrace:\n" << T;
  std::cout << "\n" << Detector.races().size()
            << " commutativity race(s):\n";
  for (const CommutativityRace &R : Detector.races())
    std::cout << "  " << R << '\n';
  return 0;
}
