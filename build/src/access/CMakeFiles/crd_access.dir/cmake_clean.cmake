file(REMOVE_RECURSE
  "CMakeFiles/crd_access.dir/DictionaryRep.cpp.o"
  "CMakeFiles/crd_access.dir/DictionaryRep.cpp.o.d"
  "CMakeFiles/crd_access.dir/Provider.cpp.o"
  "CMakeFiles/crd_access.dir/Provider.cpp.o.d"
  "libcrd_access.a"
  "libcrd_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crd_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
