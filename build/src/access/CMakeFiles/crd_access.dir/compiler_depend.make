# Empty compiler generated dependencies file for crd_access.
# This may be replaced when dependencies are built.
