file(REMOVE_RECURSE
  "libcrd_access.a"
)
