
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/access/DictionaryRep.cpp" "src/access/CMakeFiles/crd_access.dir/DictionaryRep.cpp.o" "gcc" "src/access/CMakeFiles/crd_access.dir/DictionaryRep.cpp.o.d"
  "/root/repo/src/access/Provider.cpp" "src/access/CMakeFiles/crd_access.dir/Provider.cpp.o" "gcc" "src/access/CMakeFiles/crd_access.dir/Provider.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/crd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/crd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
