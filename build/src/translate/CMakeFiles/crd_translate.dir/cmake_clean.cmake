file(REMOVE_RECURSE
  "CMakeFiles/crd_translate.dir/DotExport.cpp.o"
  "CMakeFiles/crd_translate.dir/DotExport.cpp.o.d"
  "CMakeFiles/crd_translate.dir/Translator.cpp.o"
  "CMakeFiles/crd_translate.dir/Translator.cpp.o.d"
  "libcrd_translate.a"
  "libcrd_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crd_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
