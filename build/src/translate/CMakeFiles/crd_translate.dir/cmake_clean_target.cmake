file(REMOVE_RECURSE
  "libcrd_translate.a"
)
