# Empty compiler generated dependencies file for crd_translate.
# This may be replaced when dependencies are built.
