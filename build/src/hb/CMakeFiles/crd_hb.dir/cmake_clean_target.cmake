file(REMOVE_RECURSE
  "libcrd_hb.a"
)
