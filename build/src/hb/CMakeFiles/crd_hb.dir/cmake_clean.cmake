file(REMOVE_RECURSE
  "CMakeFiles/crd_hb.dir/HappensBefore.cpp.o"
  "CMakeFiles/crd_hb.dir/HappensBefore.cpp.o.d"
  "CMakeFiles/crd_hb.dir/VectorClockState.cpp.o"
  "CMakeFiles/crd_hb.dir/VectorClockState.cpp.o.d"
  "libcrd_hb.a"
  "libcrd_hb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crd_hb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
