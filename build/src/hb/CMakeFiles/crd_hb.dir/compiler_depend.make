# Empty compiler generated dependencies file for crd_hb.
# This may be replaced when dependencies are built.
