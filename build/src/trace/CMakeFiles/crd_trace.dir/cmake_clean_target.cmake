file(REMOVE_RECURSE
  "libcrd_trace.a"
)
