
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/Action.cpp" "src/trace/CMakeFiles/crd_trace.dir/Action.cpp.o" "gcc" "src/trace/CMakeFiles/crd_trace.dir/Action.cpp.o.d"
  "/root/repo/src/trace/Event.cpp" "src/trace/CMakeFiles/crd_trace.dir/Event.cpp.o" "gcc" "src/trace/CMakeFiles/crd_trace.dir/Event.cpp.o.d"
  "/root/repo/src/trace/Trace.cpp" "src/trace/CMakeFiles/crd_trace.dir/Trace.cpp.o" "gcc" "src/trace/CMakeFiles/crd_trace.dir/Trace.cpp.o.d"
  "/root/repo/src/trace/TraceIO.cpp" "src/trace/CMakeFiles/crd_trace.dir/TraceIO.cpp.o" "gcc" "src/trace/CMakeFiles/crd_trace.dir/TraceIO.cpp.o.d"
  "/root/repo/src/trace/TraceStats.cpp" "src/trace/CMakeFiles/crd_trace.dir/TraceStats.cpp.o" "gcc" "src/trace/CMakeFiles/crd_trace.dir/TraceStats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/crd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
