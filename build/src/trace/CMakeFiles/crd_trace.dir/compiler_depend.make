# Empty compiler generated dependencies file for crd_trace.
# This may be replaced when dependencies are built.
