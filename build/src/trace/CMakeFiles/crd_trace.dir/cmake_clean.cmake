file(REMOVE_RECURSE
  "CMakeFiles/crd_trace.dir/Action.cpp.o"
  "CMakeFiles/crd_trace.dir/Action.cpp.o.d"
  "CMakeFiles/crd_trace.dir/Event.cpp.o"
  "CMakeFiles/crd_trace.dir/Event.cpp.o.d"
  "CMakeFiles/crd_trace.dir/Trace.cpp.o"
  "CMakeFiles/crd_trace.dir/Trace.cpp.o.d"
  "CMakeFiles/crd_trace.dir/TraceIO.cpp.o"
  "CMakeFiles/crd_trace.dir/TraceIO.cpp.o.d"
  "CMakeFiles/crd_trace.dir/TraceStats.cpp.o"
  "CMakeFiles/crd_trace.dir/TraceStats.cpp.o.d"
  "libcrd_trace.a"
  "libcrd_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crd_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
