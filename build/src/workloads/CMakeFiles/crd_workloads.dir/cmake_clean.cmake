file(REMOVE_RECURSE
  "CMakeFiles/crd_workloads.dir/Harness.cpp.o"
  "CMakeFiles/crd_workloads.dir/Harness.cpp.o.d"
  "CMakeFiles/crd_workloads.dir/MVStore.cpp.o"
  "CMakeFiles/crd_workloads.dir/MVStore.cpp.o.d"
  "CMakeFiles/crd_workloads.dir/PolePosition.cpp.o"
  "CMakeFiles/crd_workloads.dir/PolePosition.cpp.o.d"
  "CMakeFiles/crd_workloads.dir/QueueWorkload.cpp.o"
  "CMakeFiles/crd_workloads.dir/QueueWorkload.cpp.o.d"
  "CMakeFiles/crd_workloads.dir/SetWorkload.cpp.o"
  "CMakeFiles/crd_workloads.dir/SetWorkload.cpp.o.d"
  "CMakeFiles/crd_workloads.dir/Snitch.cpp.o"
  "CMakeFiles/crd_workloads.dir/Snitch.cpp.o.d"
  "libcrd_workloads.a"
  "libcrd_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crd_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
