file(REMOVE_RECURSE
  "libcrd_workloads.a"
)
