# Empty dependencies file for crd_workloads.
# This may be replaced when dependencies are built.
