file(REMOVE_RECURSE
  "CMakeFiles/crd_locks.dir/AbstractLockManager.cpp.o"
  "CMakeFiles/crd_locks.dir/AbstractLockManager.cpp.o.d"
  "libcrd_locks.a"
  "libcrd_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crd_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
