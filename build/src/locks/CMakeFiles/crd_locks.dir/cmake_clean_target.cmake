file(REMOVE_RECURSE
  "libcrd_locks.a"
)
