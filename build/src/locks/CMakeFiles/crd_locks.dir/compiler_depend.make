# Empty compiler generated dependencies file for crd_locks.
# This may be replaced when dependencies are built.
