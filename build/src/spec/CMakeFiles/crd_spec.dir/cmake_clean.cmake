file(REMOVE_RECURSE
  "CMakeFiles/crd_spec.dir/Builtins.cpp.o"
  "CMakeFiles/crd_spec.dir/Builtins.cpp.o.d"
  "CMakeFiles/crd_spec.dir/Formula.cpp.o"
  "CMakeFiles/crd_spec.dir/Formula.cpp.o.d"
  "CMakeFiles/crd_spec.dir/Fragment.cpp.o"
  "CMakeFiles/crd_spec.dir/Fragment.cpp.o.d"
  "CMakeFiles/crd_spec.dir/Spec.cpp.o"
  "CMakeFiles/crd_spec.dir/Spec.cpp.o.d"
  "CMakeFiles/crd_spec.dir/SpecParser.cpp.o"
  "CMakeFiles/crd_spec.dir/SpecParser.cpp.o.d"
  "libcrd_spec.a"
  "libcrd_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crd_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
