file(REMOVE_RECURSE
  "libcrd_spec.a"
)
