# Empty compiler generated dependencies file for crd_spec.
# This may be replaced when dependencies are built.
