
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spec/Builtins.cpp" "src/spec/CMakeFiles/crd_spec.dir/Builtins.cpp.o" "gcc" "src/spec/CMakeFiles/crd_spec.dir/Builtins.cpp.o.d"
  "/root/repo/src/spec/Formula.cpp" "src/spec/CMakeFiles/crd_spec.dir/Formula.cpp.o" "gcc" "src/spec/CMakeFiles/crd_spec.dir/Formula.cpp.o.d"
  "/root/repo/src/spec/Fragment.cpp" "src/spec/CMakeFiles/crd_spec.dir/Fragment.cpp.o" "gcc" "src/spec/CMakeFiles/crd_spec.dir/Fragment.cpp.o.d"
  "/root/repo/src/spec/Spec.cpp" "src/spec/CMakeFiles/crd_spec.dir/Spec.cpp.o" "gcc" "src/spec/CMakeFiles/crd_spec.dir/Spec.cpp.o.d"
  "/root/repo/src/spec/SpecParser.cpp" "src/spec/CMakeFiles/crd_spec.dir/SpecParser.cpp.o" "gcc" "src/spec/CMakeFiles/crd_spec.dir/SpecParser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/crd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/crd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
