file(REMOVE_RECURSE
  "libcrd_replay.a"
)
