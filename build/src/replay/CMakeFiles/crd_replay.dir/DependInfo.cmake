
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replay/AbstractState.cpp" "src/replay/CMakeFiles/crd_replay.dir/AbstractState.cpp.o" "gcc" "src/replay/CMakeFiles/crd_replay.dir/AbstractState.cpp.o.d"
  "/root/repo/src/replay/Determinism.cpp" "src/replay/CMakeFiles/crd_replay.dir/Determinism.cpp.o" "gcc" "src/replay/CMakeFiles/crd_replay.dir/Determinism.cpp.o.d"
  "/root/repo/src/replay/Linearize.cpp" "src/replay/CMakeFiles/crd_replay.dir/Linearize.cpp.o" "gcc" "src/replay/CMakeFiles/crd_replay.dir/Linearize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/crd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/crd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
