# Empty compiler generated dependencies file for crd_replay.
# This may be replaced when dependencies are built.
