file(REMOVE_RECURSE
  "CMakeFiles/crd_replay.dir/AbstractState.cpp.o"
  "CMakeFiles/crd_replay.dir/AbstractState.cpp.o.d"
  "CMakeFiles/crd_replay.dir/Determinism.cpp.o"
  "CMakeFiles/crd_replay.dir/Determinism.cpp.o.d"
  "CMakeFiles/crd_replay.dir/Linearize.cpp.o"
  "CMakeFiles/crd_replay.dir/Linearize.cpp.o.d"
  "libcrd_replay.a"
  "libcrd_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crd_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
