file(REMOVE_RECURSE
  "CMakeFiles/crd_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/crd_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/crd_support.dir/DynamicTopoGraph.cpp.o"
  "CMakeFiles/crd_support.dir/DynamicTopoGraph.cpp.o.d"
  "CMakeFiles/crd_support.dir/Symbol.cpp.o"
  "CMakeFiles/crd_support.dir/Symbol.cpp.o.d"
  "CMakeFiles/crd_support.dir/Value.cpp.o"
  "CMakeFiles/crd_support.dir/Value.cpp.o.d"
  "CMakeFiles/crd_support.dir/VectorClock.cpp.o"
  "CMakeFiles/crd_support.dir/VectorClock.cpp.o.d"
  "libcrd_support.a"
  "libcrd_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crd_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
