# Empty dependencies file for crd_support.
# This may be replaced when dependencies are built.
