file(REMOVE_RECURSE
  "libcrd_support.a"
)
