# Empty compiler generated dependencies file for crd_detect.
# This may be replaced when dependencies are built.
