
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/AtomicityChecker.cpp" "src/detect/CMakeFiles/crd_detect.dir/AtomicityChecker.cpp.o" "gcc" "src/detect/CMakeFiles/crd_detect.dir/AtomicityChecker.cpp.o.d"
  "/root/repo/src/detect/CommutativityDetector.cpp" "src/detect/CMakeFiles/crd_detect.dir/CommutativityDetector.cpp.o" "gcc" "src/detect/CMakeFiles/crd_detect.dir/CommutativityDetector.cpp.o.d"
  "/root/repo/src/detect/DirectDetector.cpp" "src/detect/CMakeFiles/crd_detect.dir/DirectDetector.cpp.o" "gcc" "src/detect/CMakeFiles/crd_detect.dir/DirectDetector.cpp.o.d"
  "/root/repo/src/detect/FastTrack.cpp" "src/detect/CMakeFiles/crd_detect.dir/FastTrack.cpp.o" "gcc" "src/detect/CMakeFiles/crd_detect.dir/FastTrack.cpp.o.d"
  "/root/repo/src/detect/OnlineAtomicity.cpp" "src/detect/CMakeFiles/crd_detect.dir/OnlineAtomicity.cpp.o" "gcc" "src/detect/CMakeFiles/crd_detect.dir/OnlineAtomicity.cpp.o.d"
  "/root/repo/src/detect/Race.cpp" "src/detect/CMakeFiles/crd_detect.dir/Race.cpp.o" "gcc" "src/detect/CMakeFiles/crd_detect.dir/Race.cpp.o.d"
  "/root/repo/src/detect/Summary.cpp" "src/detect/CMakeFiles/crd_detect.dir/Summary.cpp.o" "gcc" "src/detect/CMakeFiles/crd_detect.dir/Summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/access/CMakeFiles/crd_access.dir/DependInfo.cmake"
  "/root/repo/build/src/hb/CMakeFiles/crd_hb.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/crd_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/crd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/crd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
