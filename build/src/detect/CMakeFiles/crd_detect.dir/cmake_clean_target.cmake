file(REMOVE_RECURSE
  "libcrd_detect.a"
)
