file(REMOVE_RECURSE
  "CMakeFiles/crd_detect.dir/AtomicityChecker.cpp.o"
  "CMakeFiles/crd_detect.dir/AtomicityChecker.cpp.o.d"
  "CMakeFiles/crd_detect.dir/CommutativityDetector.cpp.o"
  "CMakeFiles/crd_detect.dir/CommutativityDetector.cpp.o.d"
  "CMakeFiles/crd_detect.dir/DirectDetector.cpp.o"
  "CMakeFiles/crd_detect.dir/DirectDetector.cpp.o.d"
  "CMakeFiles/crd_detect.dir/FastTrack.cpp.o"
  "CMakeFiles/crd_detect.dir/FastTrack.cpp.o.d"
  "CMakeFiles/crd_detect.dir/OnlineAtomicity.cpp.o"
  "CMakeFiles/crd_detect.dir/OnlineAtomicity.cpp.o.d"
  "CMakeFiles/crd_detect.dir/Race.cpp.o"
  "CMakeFiles/crd_detect.dir/Race.cpp.o.d"
  "CMakeFiles/crd_detect.dir/Summary.cpp.o"
  "CMakeFiles/crd_detect.dir/Summary.cpp.o.d"
  "libcrd_detect.a"
  "libcrd_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crd_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
