# Empty compiler generated dependencies file for crd_runtime.
# This may be replaced when dependencies are built.
