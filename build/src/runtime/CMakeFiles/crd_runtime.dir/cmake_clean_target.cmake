file(REMOVE_RECURSE
  "libcrd_runtime.a"
)
