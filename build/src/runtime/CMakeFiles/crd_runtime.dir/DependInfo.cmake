
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/InstrumentedMap.cpp" "src/runtime/CMakeFiles/crd_runtime.dir/InstrumentedMap.cpp.o" "gcc" "src/runtime/CMakeFiles/crd_runtime.dir/InstrumentedMap.cpp.o.d"
  "/root/repo/src/runtime/InstrumentedSet.cpp" "src/runtime/CMakeFiles/crd_runtime.dir/InstrumentedSet.cpp.o" "gcc" "src/runtime/CMakeFiles/crd_runtime.dir/InstrumentedSet.cpp.o.d"
  "/root/repo/src/runtime/SimRuntime.cpp" "src/runtime/CMakeFiles/crd_runtime.dir/SimRuntime.cpp.o" "gcc" "src/runtime/CMakeFiles/crd_runtime.dir/SimRuntime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/crd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/crd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
