file(REMOVE_RECURSE
  "CMakeFiles/crd_runtime.dir/InstrumentedMap.cpp.o"
  "CMakeFiles/crd_runtime.dir/InstrumentedMap.cpp.o.d"
  "CMakeFiles/crd_runtime.dir/InstrumentedSet.cpp.o"
  "CMakeFiles/crd_runtime.dir/InstrumentedSet.cpp.o.d"
  "CMakeFiles/crd_runtime.dir/SimRuntime.cpp.o"
  "CMakeFiles/crd_runtime.dir/SimRuntime.cpp.o.d"
  "libcrd_runtime.a"
  "libcrd_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crd_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
