file(REMOVE_RECURSE
  "CMakeFiles/runtime_edge_test.dir/SimRuntimeEdgeTest.cpp.o"
  "CMakeFiles/runtime_edge_test.dir/SimRuntimeEdgeTest.cpp.o.d"
  "runtime_edge_test"
  "runtime_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
