# Empty compiler generated dependencies file for abstract_locks_test.
# This may be replaced when dependencies are built.
