file(REMOVE_RECURSE
  "CMakeFiles/abstract_locks_test.dir/AbstractLocksTest.cpp.o"
  "CMakeFiles/abstract_locks_test.dir/AbstractLocksTest.cpp.o.d"
  "abstract_locks_test"
  "abstract_locks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abstract_locks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
