# Empty compiler generated dependencies file for translate_edge_test.
# This may be replaced when dependencies are built.
