file(REMOVE_RECURSE
  "CMakeFiles/translate_edge_test.dir/TranslateEdgeTest.cpp.o"
  "CMakeFiles/translate_edge_test.dir/TranslateEdgeTest.cpp.o.d"
  "translate_edge_test"
  "translate_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translate_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
