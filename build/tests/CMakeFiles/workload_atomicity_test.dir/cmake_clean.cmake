file(REMOVE_RECURSE
  "CMakeFiles/workload_atomicity_test.dir/WorkloadAtomicityTest.cpp.o"
  "CMakeFiles/workload_atomicity_test.dir/WorkloadAtomicityTest.cpp.o.d"
  "workload_atomicity_test"
  "workload_atomicity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_atomicity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
