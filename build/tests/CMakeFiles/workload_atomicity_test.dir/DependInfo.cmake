
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/WorkloadAtomicityTest.cpp" "tests/CMakeFiles/workload_atomicity_test.dir/WorkloadAtomicityTest.cpp.o" "gcc" "tests/CMakeFiles/workload_atomicity_test.dir/WorkloadAtomicityTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/crd_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/crd_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/replay/CMakeFiles/crd_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/locks/CMakeFiles/crd_locks.dir/DependInfo.cmake"
  "/root/repo/build/src/translate/CMakeFiles/crd_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/access/CMakeFiles/crd_access.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/crd_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/hb/CMakeFiles/crd_hb.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/crd_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/crd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/crd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
