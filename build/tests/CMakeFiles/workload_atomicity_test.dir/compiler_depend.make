# Empty compiler generated dependencies file for workload_atomicity_test.
# This may be replaced when dependencies are built.
