file(REMOVE_RECURSE
  "CMakeFiles/spec_files_test.dir/SpecFilesTest.cpp.o"
  "CMakeFiles/spec_files_test.dir/SpecFilesTest.cpp.o.d"
  "spec_files_test"
  "spec_files_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_files_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
