file(REMOVE_RECURSE
  "CMakeFiles/atomicity_test.dir/AtomicityTest.cpp.o"
  "CMakeFiles/atomicity_test.dir/AtomicityTest.cpp.o.d"
  "atomicity_test"
  "atomicity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomicity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
