file(REMOVE_RECURSE
  "CMakeFiles/spec_parser_test.dir/SpecParserTest.cpp.o"
  "CMakeFiles/spec_parser_test.dir/SpecParserTest.cpp.o.d"
  "spec_parser_test"
  "spec_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
