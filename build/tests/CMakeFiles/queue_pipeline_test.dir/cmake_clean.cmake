file(REMOVE_RECURSE
  "CMakeFiles/queue_pipeline_test.dir/QueuePipelineTest.cpp.o"
  "CMakeFiles/queue_pipeline_test.dir/QueuePipelineTest.cpp.o.d"
  "queue_pipeline_test"
  "queue_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
