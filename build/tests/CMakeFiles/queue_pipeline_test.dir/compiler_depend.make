# Empty compiler generated dependencies file for queue_pipeline_test.
# This may be replaced when dependencies are built.
