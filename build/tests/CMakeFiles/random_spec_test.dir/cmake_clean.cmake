file(REMOVE_RECURSE
  "CMakeFiles/random_spec_test.dir/RandomSpecTest.cpp.o"
  "CMakeFiles/random_spec_test.dir/RandomSpecTest.cpp.o.d"
  "random_spec_test"
  "random_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
