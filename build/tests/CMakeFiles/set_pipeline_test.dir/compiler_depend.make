# Empty compiler generated dependencies file for set_pipeline_test.
# This may be replaced when dependencies are built.
