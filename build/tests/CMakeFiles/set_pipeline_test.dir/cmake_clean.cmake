file(REMOVE_RECURSE
  "CMakeFiles/set_pipeline_test.dir/SetPipelineTest.cpp.o"
  "CMakeFiles/set_pipeline_test.dir/SetPipelineTest.cpp.o.d"
  "set_pipeline_test"
  "set_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
