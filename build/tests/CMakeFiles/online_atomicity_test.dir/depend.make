# Empty dependencies file for online_atomicity_test.
# This may be replaced when dependencies are built.
