file(REMOVE_RECURSE
  "CMakeFiles/online_atomicity_test.dir/OnlineAtomicityTest.cpp.o"
  "CMakeFiles/online_atomicity_test.dir/OnlineAtomicityTest.cpp.o.d"
  "online_atomicity_test"
  "online_atomicity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_atomicity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
