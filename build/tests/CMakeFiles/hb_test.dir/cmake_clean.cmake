file(REMOVE_RECURSE
  "CMakeFiles/hb_test.dir/HappensBeforeTest.cpp.o"
  "CMakeFiles/hb_test.dir/HappensBeforeTest.cpp.o.d"
  "hb_test"
  "hb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
