# Empty dependencies file for formula_edge_test.
# This may be replaced when dependencies are built.
