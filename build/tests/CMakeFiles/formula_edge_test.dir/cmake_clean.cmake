file(REMOVE_RECURSE
  "CMakeFiles/formula_edge_test.dir/FormulaEdgeTest.cpp.o"
  "CMakeFiles/formula_edge_test.dir/FormulaEdgeTest.cpp.o.d"
  "formula_edge_test"
  "formula_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formula_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
