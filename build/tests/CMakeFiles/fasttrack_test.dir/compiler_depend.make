# Empty compiler generated dependencies file for fasttrack_test.
# This may be replaced when dependencies are built.
