file(REMOVE_RECURSE
  "CMakeFiles/fasttrack_test.dir/FastTrackTest.cpp.o"
  "CMakeFiles/fasttrack_test.dir/FastTrackTest.cpp.o.d"
  "fasttrack_test"
  "fasttrack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasttrack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
