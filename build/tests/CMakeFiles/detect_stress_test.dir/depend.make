# Empty dependencies file for detect_stress_test.
# This may be replaced when dependencies are built.
