file(REMOVE_RECURSE
  "CMakeFiles/detect_stress_test.dir/DetectStressTest.cpp.o"
  "CMakeFiles/detect_stress_test.dir/DetectStressTest.cpp.o.d"
  "detect_stress_test"
  "detect_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
