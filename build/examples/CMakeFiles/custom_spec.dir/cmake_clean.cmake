file(REMOVE_RECURSE
  "CMakeFiles/custom_spec.dir/custom_spec.cpp.o"
  "CMakeFiles/custom_spec.dir/custom_spec.cpp.o.d"
  "custom_spec"
  "custom_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
