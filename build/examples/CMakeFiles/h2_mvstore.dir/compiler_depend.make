# Empty compiler generated dependencies file for h2_mvstore.
# This may be replaced when dependencies are built.
