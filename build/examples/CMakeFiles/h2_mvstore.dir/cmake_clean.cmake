file(REMOVE_RECURSE
  "CMakeFiles/h2_mvstore.dir/h2_mvstore.cpp.o"
  "CMakeFiles/h2_mvstore.dir/h2_mvstore.cpp.o.d"
  "h2_mvstore"
  "h2_mvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_mvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
