# Empty compiler generated dependencies file for atomicity_check.
# This may be replaced when dependencies are built.
