file(REMOVE_RECURSE
  "CMakeFiles/atomicity_check.dir/atomicity_check.cpp.o"
  "CMakeFiles/atomicity_check.dir/atomicity_check.cpp.o.d"
  "atomicity_check"
  "atomicity_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomicity_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
