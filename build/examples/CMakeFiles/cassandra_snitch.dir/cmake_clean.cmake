file(REMOVE_RECURSE
  "CMakeFiles/cassandra_snitch.dir/cassandra_snitch.cpp.o"
  "CMakeFiles/cassandra_snitch.dir/cassandra_snitch.cpp.o.d"
  "cassandra_snitch"
  "cassandra_snitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cassandra_snitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
