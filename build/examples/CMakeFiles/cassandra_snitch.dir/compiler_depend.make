# Empty compiler generated dependencies file for cassandra_snitch.
# This may be replaced when dependencies are built.
