# Empty dependencies file for micro_translator.
# This may be replaced when dependencies are built.
