file(REMOVE_RECURSE
  "CMakeFiles/micro_translator.dir/micro_translator.cpp.o"
  "CMakeFiles/micro_translator.dir/micro_translator.cpp.o.d"
  "micro_translator"
  "micro_translator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_translator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
