file(REMOVE_RECURSE
  "CMakeFiles/ext_atomicity_workloads.dir/ext_atomicity_workloads.cpp.o"
  "CMakeFiles/ext_atomicity_workloads.dir/ext_atomicity_workloads.cpp.o.d"
  "ext_atomicity_workloads"
  "ext_atomicity_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_atomicity_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
