# Empty compiler generated dependencies file for ext_atomicity_workloads.
# This may be replaced when dependencies are built.
