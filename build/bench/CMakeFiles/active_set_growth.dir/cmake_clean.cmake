file(REMOVE_RECURSE
  "CMakeFiles/active_set_growth.dir/active_set_growth.cpp.o"
  "CMakeFiles/active_set_growth.dir/active_set_growth.cpp.o.d"
  "active_set_growth"
  "active_set_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_set_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
