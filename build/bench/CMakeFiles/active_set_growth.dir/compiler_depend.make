# Empty compiler generated dependencies file for active_set_growth.
# This may be replaced when dependencies are built.
