file(REMOVE_RECURSE
  "CMakeFiles/table2_h2.dir/table2_h2.cpp.o"
  "CMakeFiles/table2_h2.dir/table2_h2.cpp.o.d"
  "table2_h2"
  "table2_h2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_h2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
