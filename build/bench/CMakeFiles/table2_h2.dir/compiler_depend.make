# Empty compiler generated dependencies file for table2_h2.
# This may be replaced when dependencies are built.
