# Empty compiler generated dependencies file for complexity_sweep.
# This may be replaced when dependencies are built.
