file(REMOVE_RECURSE
  "CMakeFiles/complexity_sweep.dir/complexity_sweep.cpp.o"
  "CMakeFiles/complexity_sweep.dir/complexity_sweep.cpp.o.d"
  "complexity_sweep"
  "complexity_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complexity_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
