# Empty dependencies file for micro_vectorclock.
# This may be replaced when dependencies are built.
