file(REMOVE_RECURSE
  "CMakeFiles/micro_vectorclock.dir/micro_vectorclock.cpp.o"
  "CMakeFiles/micro_vectorclock.dir/micro_vectorclock.cpp.o.d"
  "micro_vectorclock"
  "micro_vectorclock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_vectorclock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
