# Empty compiler generated dependencies file for ext_queue_workload.
# This may be replaced when dependencies are built.
