file(REMOVE_RECURSE
  "CMakeFiles/ext_queue_workload.dir/ext_queue_workload.cpp.o"
  "CMakeFiles/ext_queue_workload.dir/ext_queue_workload.cpp.o.d"
  "ext_queue_workload"
  "ext_queue_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_queue_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
