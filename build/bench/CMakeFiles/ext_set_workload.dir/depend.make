# Empty dependencies file for ext_set_workload.
# This may be replaced when dependencies are built.
