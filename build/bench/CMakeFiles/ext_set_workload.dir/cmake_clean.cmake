file(REMOVE_RECURSE
  "CMakeFiles/ext_set_workload.dir/ext_set_workload.cpp.o"
  "CMakeFiles/ext_set_workload.dir/ext_set_workload.cpp.o.d"
  "ext_set_workload"
  "ext_set_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_set_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
