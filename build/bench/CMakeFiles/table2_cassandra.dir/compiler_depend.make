# Empty compiler generated dependencies file for table2_cassandra.
# This may be replaced when dependencies are built.
