file(REMOVE_RECURSE
  "CMakeFiles/table2_cassandra.dir/table2_cassandra.cpp.o"
  "CMakeFiles/table2_cassandra.dir/table2_cassandra.cpp.o.d"
  "table2_cassandra"
  "table2_cassandra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_cassandra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
