# Empty compiler generated dependencies file for fig4_checks.
# This may be replaced when dependencies are built.
