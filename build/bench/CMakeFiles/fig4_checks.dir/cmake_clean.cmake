file(REMOVE_RECURSE
  "CMakeFiles/fig4_checks.dir/fig4_checks.cpp.o"
  "CMakeFiles/fig4_checks.dir/fig4_checks.cpp.o.d"
  "fig4_checks"
  "fig4_checks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
