# Empty compiler generated dependencies file for micro_atomicity.
# This may be replaced when dependencies are built.
