file(REMOVE_RECURSE
  "CMakeFiles/micro_atomicity.dir/micro_atomicity.cpp.o"
  "CMakeFiles/micro_atomicity.dir/micro_atomicity.cpp.o.d"
  "micro_atomicity"
  "micro_atomicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_atomicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
