//===- tools/crd/CliInternal.h - Shared subcommand plumbing -----*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Argument-parsing and spec-loading helpers shared by the subcommand
/// translation units (Cli.cpp, RecordCmd.cpp). Internal to the crd tool —
/// not part of the crd_cli library's public surface.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_TOOLS_CRD_CLIINTERNAL_H
#define CRD_TOOLS_CRD_CLIINTERNAL_H

#include "Cli.h"

#include "spec/Builtins.h"
#include "spec/SpecParser.h"
#include "translate/Translator.h"
#include "wire/WireReader.h"

#include <fstream>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace crd {
namespace cli {
namespace internal {

/// Splits \p Args into `--name[=value]` options and positional operands.
struct ParsedArgs {
  std::vector<std::pair<std::string, std::string>> Options;
  std::vector<std::string> Positional;
  bool Help = false;

  explicit ParsedArgs(const std::vector<std::string> &Args) {
    for (const std::string &A : Args) {
      if (A == "--help" || A == "-h") {
        Help = true;
      } else if (A.size() > 2 && A.compare(0, 2, "--") == 0) {
        size_t Eq = A.find('=');
        if (Eq == std::string::npos)
          Options.emplace_back(A.substr(2), "");
        else
          Options.emplace_back(A.substr(2, Eq - 2), A.substr(Eq + 1));
      } else {
        Positional.push_back(A);
      }
    }
  }

  std::optional<std::string> option(const std::string &Name) const {
    for (const auto &[K, V] : Options)
      if (K == Name)
        return V;
    return std::nullopt;
  }

  /// First option name that is not in \p Known, if any.
  std::optional<std::string>
  unknownOption(std::initializer_list<const char *> Known) const {
    for (const auto &[K, V] : Options) {
      bool Ok = false;
      for (const char *Name : Known)
        Ok |= K == Name;
      if (!Ok)
        return K;
    }
    return std::nullopt;
  }
};

/// Rewrites `--opt value` pairs into the `--opt=value` form ParsedArgs
/// understands, for the option names in \p ValueOpts (spelled with the
/// leading dashes). Only options known to take a value are joined, so
/// positional operands never get swallowed.
inline std::vector<std::string>
joinValueOptions(const std::vector<std::string> &Raw,
                 std::initializer_list<const char *> ValueOpts) {
  std::vector<std::string> Joined;
  Joined.reserve(Raw.size());
  for (size_t I = 0; I != Raw.size(); ++I) {
    bool DidJoin = false;
    for (const char *Opt : ValueOpts)
      if (Raw[I] == Opt && I + 1 != Raw.size()) {
        Joined.push_back(Raw[I] + "=" + Raw[I + 1]);
        ++I;
        DidJoin = true;
        break;
      }
    if (!DidJoin)
      Joined.push_back(Raw[I]);
  }
  return Joined;
}

inline std::optional<uint64_t> parseCount(const std::string &Text) {
  if (Text.empty())
    return std::nullopt;
  uint64_t V = 0;
  for (char C : Text) {
    if (C < '0' || C > '9' || V > (~0ull - 9) / 10)
      return std::nullopt;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  return V;
}

inline std::optional<std::string> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Loads and translates the spec named by \p SpecPath (builtin dictionary
/// when empty). Returns nullptr after printing the failure to \p Err.
inline std::unique_ptr<TranslatedRep>
loadProvider(const std::string &SpecPath, std::ostream &Err, int &Exit) {
  DiagnosticEngine Diags;
  const ObjectSpec *Spec = &dictionarySpec();
  std::optional<ObjectSpec> Parsed;
  if (!SpecPath.empty()) {
    auto Text = readFile(SpecPath);
    if (!Text) {
      Err << "error: cannot read spec file '" << SpecPath << "'\n";
      Exit = ExitUsage;
      return nullptr;
    }
    Parsed = parseObjectSpec(*Text, Diags);
    if (!Parsed) {
      Err << SpecPath << ":\n" << Diags.toString();
      Exit = ExitFindings;
      return nullptr;
    }
    Spec = &*Parsed;
  }
  auto Rep = translateSpec(*Spec, Diags);
  if (!Rep) {
    Err << "specification is not translatable:\n" << Diags.toString();
    Exit = ExitFindings;
  }
  return Rep;
}

/// Parses the `--memo[=off|decode|full]` option shared by the analysis
/// subcommands (bare `--memo` means full). Leaves \p Out untouched when
/// the option is absent; returns false after printing a usage error when
/// the value is not in the accepted set.
inline bool parseMemoMode(const ParsedArgs &Args, wire::MemoMode &Out,
                          std::ostream &Err) {
  auto V = Args.option("memo");
  if (!V)
    return true;
  if (V->empty() || *V == "full")
    Out = wire::MemoMode::Full;
  else if (*V == "off")
    Out = wire::MemoMode::Off;
  else if (*V == "decode")
    Out = wire::MemoMode::Decode;
  else {
    Err << "error: unknown --memo mode '" << *V
        << "' (accepted: off, decode, full)\n";
    return false;
  }
  return true;
}

/// Uniform exit-2 diagnostic for an option or mode a verb rejects by
/// design: every mode-restricted flag reports as
///   error: <combination> is not supported by 'crd <verb>': <route>
/// where \p Route names the supported way to get the same effect. Keeps
/// serve/record/profile restriction messages interchangeable instead of
/// each hand-rolling its own phrasing.
inline int rejectUnsupported(std::ostream &Err, const char *Verb,
                             const std::string &Combination,
                             const std::string &Route) {
  Err << "error: " << Combination << " is not supported by 'crd " << Verb
      << "': " << Route << "\n";
  return ExitUsage;
}

/// The `crd record` implementation (RecordCmd.cpp).
int runRecord(const std::vector<std::string> &Raw, std::ostream &Out,
              std::ostream &Err);

/// The `crd serve` implementation (ServeCmd.cpp).
int runServe(const std::vector<std::string> &Raw, std::ostream &Out,
             std::ostream &Err);

} // namespace internal
} // namespace cli
} // namespace crd

#endif // CRD_TOOLS_CRD_CLIINTERNAL_H
