//===- tools/crd/Cli.h - The unified crd command-line tool ------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Library entry points of the `crd` command-line driver, so the installed
/// binary and the example wrappers (examples/trace_analyzer) share one
/// implementation. Subcommands:
///
///   crd convert <in> <out>   text ↔ binary trace conversion (streaming)
///   crd check   [opts] <t>   run a detector over a trace, streamed
///   crd stats   <t>          chunk / size / compression-ratio report
///   crd bench   [opts] <t>   ingestion throughput: text vs binary
///   crd record  [opts]       live multi-producer recording stress
///   crd analyze <t> [spec]   the full offline report (trace_analyzer)
///
/// Exit codes: 0 = success / no findings, 1 = races, violations or
/// malformed input reported, 2 = usage or I/O error.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_TOOLS_CRD_CLI_H
#define CRD_TOOLS_CRD_CLI_H

#include <iosfwd>
#include <string>
#include <vector>

namespace crd {
namespace cli {

/// Exit codes shared by every subcommand.
inline constexpr int ExitClean = 0;    ///< Success / nothing found.
inline constexpr int ExitFindings = 1; ///< Races/violations or bad input.
inline constexpr int ExitUsage = 2;    ///< Usage or I/O error.

/// The `crd` driver: dispatches \p Args (without the program name) to a
/// subcommand. Output goes to \p Out, errors and usage to \p Err.
int crdMain(const std::vector<std::string> &Args, std::ostream &Out,
            std::ostream &Err);

/// argv-style convenience wrapper for main().
int crdMain(int Argc, const char *const *Argv, std::ostream &Out,
            std::ostream &Err);

/// The classic trace_analyzer entry: `<trace-file> [spec-file]` — the full
/// offline report (stats, RD2 races + triage summary, FastTrack races,
/// atomicity when the trace marks atomic blocks). Also reachable as
/// `crd analyze`. Accepts text and binary traces.
int runAnalyze(const std::vector<std::string> &Args, std::ostream &Out,
               std::ostream &Err);

} // namespace cli
} // namespace crd

#endif // CRD_TOOLS_CRD_CLI_H
