//===- tools/crd/RecordCmd.cpp - crd record: live ingestion stress -----------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `crd record --stress`: real producer threads hammer the live ingestion
/// path (src/ingest) with a deterministic synthetic dictionary workload —
/// per-thread SPSC rings, collector merge, live detection and/or wire
/// recording — and report aggregate throughput, drops, and races. With
/// --verify-replay the recorded wire stream is re-analyzed and the races
/// must be bit-identical to what live detection saw, which is the
/// ingestion determinism contract (docs/ingestion.md).
///
//===----------------------------------------------------------------------===//

#include "CliInternal.h"

#include "ingest/Session.h"
#include "support/Metrics.h"
#include "wire/EventSource.h"
#include "wire/StreamPipeline.h"
#include "wire/WireWriter.h"

#include <chrono>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <thread>

using namespace crd;
using namespace crd::cli;
using namespace crd::cli::internal;

namespace {

const char RecordHelp[] =
    "usage: crd record --stress [options]\n"
    "\n"
    "Live multi-producer ingestion stress: N real threads record a\n"
    "deterministic synthetic dictionary workload through per-thread\n"
    "lock-free SPSC rings; a collector merges the streams into one\n"
    "deterministic order feeding live detection and/or a binary wire\n"
    "file. Reports aggregate events/sec, per-producer drops, and races.\n"
    "Embedding the producer API directly is documented in\n"
    "docs/ingestion.md; this verb only drives the synthetic stress.\n"
    "Exit code 1 = replay verification failed, 2 = usage error; races\n"
    "found by live detection are reported, not judged.\n"
    "\n"
    "options:\n"
    "  --stress             required: run the synthetic stress workload\n"
    "  --producers=N        producer threads (default 4)\n"
    "  --events=N           events recorded per producer (default 100000)\n"
    "  --ring=N             per-producer ring capacity, rounded up to a\n"
    "                       power of two (default 1024)\n"
    "  --policy=block|drop  backpressure: block = lossless, drop =\n"
    "                       DropNewest with counted drops (default block)\n"
    "  --detector=seq|parallel|none   live backend (default seq; none =\n"
    "                       drain without detection)\n"
    "  --shards=N           parallel backend: worker shards (default: cores)\n"
    "  --batch=N            events per collector batch (default 4096)\n"
    "  --objects=N          shared objects all producers touch (default 8;\n"
    "                       0 = one private object per producer, race-free)\n"
    "  --keys=N             key space per object (default 64)\n"
    "  --lock-every=N       bracket every N-event window in a shared\n"
    "                       lock's acquire/release (default 64; 0 = no\n"
    "                       sync edges)\n"
    "  --out=FILE           also record the merged stream as a binary\n"
    "                       wire trace\n"
    "  --verify-replay      re-run the recorded wire stream through a\n"
    "                       fresh detector; races must be bit-identical\n"
    "  --json[=FILE]        ingest metrics JSON (schema: docs/ingestion.md;\n"
    "                       stdout when FILE is omitted)\n"
    "  --chrome-trace=FILE  collector-round chrome://tracing timeline\n";

struct StressConfig {
  unsigned Producers = 4;
  uint64_t EventsPerProducer = 100000;
  size_t Ring = 1024;
  ingest::BackpressurePolicy Policy = ingest::BackpressurePolicy::Block;
  unsigned Objects = 8;
  unsigned Keys = 64;
  unsigned LockEvery = 64;
};

uint64_t xorshift(uint64_t &S) {
  S ^= S << 13;
  S ^= S >> 7;
  S ^= S << 17;
  return S;
}

/// One producer's fixed script: --events records, ~70% put / 30% get on
/// the shared (or private) dictionary objects, each --lock-every window
/// bracketed by a shared lock so the merged trace has cross-thread HB
/// edges. Fully determined by the thread id — reruns record the same
/// per-producer sequence, only the cross-producer merge varies.
void producerBody(ingest::Recorder R, const StressConfig &C, Symbol Put,
                  Symbol Get) {
  const uint32_t Tid = R.thread().index();
  uint64_t S = 0x9e3779b97f4a7c15ull * (Tid + 1) | 1;
  uint32_t WindowLock = 0;
  for (uint64_t I = 0; I != C.EventsPerProducer; ++I) {
    if (C.LockEvery >= 2) {
      uint64_t Phase = I % C.LockEvery;
      if (Phase == 0) {
        WindowLock = static_cast<uint32_t>(xorshift(S) % 4);
        R.acquire(LockId(WindowLock));
        continue;
      }
      if (Phase == C.LockEvery - 1) {
        R.release(LockId(WindowLock));
        continue;
      }
    }
    uint64_t H = xorshift(S);
    ObjectId Obj = C.Objects != 0
                       ? ObjectId(static_cast<uint32_t>(H % C.Objects))
                       : ObjectId(Tid);
    Value Key = Value::integer(static_cast<int64_t>((H >> 8) % C.Keys));
    if ((H >> 32) % 10 < 7) {
      Value Vals[3] = {Key, Value::integer(static_cast<int64_t>(H >> 40)),
                       Value::nil()};
      // View over the stack array, copied once to detach into the
      // action's inline storage — the record fast path never allocates.
      Action View(Obj, Put, Vals, /*NArgs=*/2, /*NRets=*/1);
      Action Owned = View;
      R.record(Event::invoke(R.thread(), std::move(Owned)));
    } else {
      Value Vals[2] = {Key, Value::nil()};
      Action View(Obj, Get, Vals, /*NArgs=*/1, /*NRets=*/1);
      Action Owned = View;
      R.record(Event::invoke(R.thread(), std::move(Owned)));
    }
  }
  R.finish();
}

std::string humanRate(double EventsPerSec) {
  std::ostringstream OS;
  OS << std::fixed << std::setprecision(2);
  if (EventsPerSec >= 1e6)
    OS << EventsPerSec / 1e6 << "M";
  else if (EventsPerSec >= 1e3)
    OS << EventsPerSec / 1e3 << "k";
  else
    OS << EventsPerSec;
  return OS.str();
}

} // namespace

int crd::cli::internal::runRecord(const std::vector<std::string> &Raw,
                                  std::ostream &Out, std::ostream &Err) {
  ParsedArgs Args(joinValueOptions(
      Raw, {"--producers", "--events", "--ring", "--policy", "--detector",
            "--shards", "--batch", "--objects", "--keys", "--lock-every",
            "--out", "--chrome-trace"}));
  if (Args.Help) {
    Out << RecordHelp;
    return ExitClean;
  }
  if (auto Bad = Args.unknownOption(
          {"stress", "producers", "events", "ring", "policy", "detector",
           "shards", "batch", "objects", "keys", "lock-every", "out",
           "verify-replay", "json", "chrome-trace"})) {
    Err << "error: unknown option --" << *Bad << "\n" << RecordHelp;
    return ExitUsage;
  }
  if (!Args.Positional.empty()) {
    Err << "error: crd record takes no positional operands\n" << RecordHelp;
    return ExitUsage;
  }
  if (!Args.option("stress"))
    return rejectUnsupported(
        Err, "record", "running without --stress",
        "this verb currently only drives the synthetic stress workload; "
        "pass --stress (the embedding API is documented in "
        "docs/ingestion.md)");

  StressConfig C;
  auto CountOpt = [&](const char *Name, uint64_t &Slot, bool AllowZero,
                      uint64_t Max) -> bool {
    if (auto V = Args.option(Name)) {
      auto N = parseCount(*V);
      if (!N || (!AllowZero && *N == 0) || *N > Max) {
        Err << "error: --" << Name << " expects a "
            << (AllowZero ? "non-negative" : "positive") << " integer";
        if (Max != ~0ull)
          Err << " <= " << Max;
        Err << "\n";
        return false;
      }
      Slot = *N;
    }
    return true;
  };
  uint64_t Producers = C.Producers, Ring = C.Ring, Objects = C.Objects,
           Keys = C.Keys, LockEvery = C.LockEvery;
  if (!CountOpt("producers", Producers, false, 4096) ||
      !CountOpt("events", C.EventsPerProducer, false, ~0ull) ||
      !CountOpt("ring", Ring, false, size_t(1) << 30) ||
      !CountOpt("objects", Objects, true, 1u << 20) ||
      !CountOpt("keys", Keys, false, 1u << 20) ||
      !CountOpt("lock-every", LockEvery, true, 1u << 20))
    return ExitUsage;
  C.Producers = static_cast<unsigned>(Producers);
  C.Ring = static_cast<size_t>(Ring);
  C.Objects = static_cast<unsigned>(Objects);
  C.Keys = static_cast<unsigned>(Keys);
  C.LockEvery = static_cast<unsigned>(LockEvery);

  std::string PolicyName = Args.option("policy").value_or("block");
  if (PolicyName == "block")
    C.Policy = ingest::BackpressurePolicy::Block;
  else if (PolicyName == "drop")
    C.Policy = ingest::BackpressurePolicy::DropNewest;
  else {
    Err << "error: --policy expects 'block' or 'drop'\n";
    return ExitUsage;
  }

  wire::PipelineOptions POpts;
  bool Detect = true;
  std::string DetectorName = Args.option("detector").value_or("seq");
  if (DetectorName == "seq")
    POpts.TheBackend = wire::Backend::Sequential;
  else if (DetectorName == "parallel")
    POpts.TheBackend = wire::Backend::Parallel;
  else if (DetectorName == "none")
    Detect = false;
  else {
    Err << "error: unknown detector '" << DetectorName
        << "' (seq, parallel, or none)\n";
    return ExitUsage;
  }
  if (auto S = Args.option("shards")) {
    auto N = parseCount(*S);
    if (!N) {
      Err << "error: --shards expects an integer\n";
      return ExitUsage;
    }
    POpts.Shards = static_cast<unsigned>(*N);
  }
  size_t Batch = 4096;
  if (auto B = Args.option("batch")) {
    auto N = parseCount(*B);
    if (!N || *N == 0) {
      Err << "error: --batch expects a positive integer\n";
      return ExitUsage;
    }
    Batch = static_cast<size_t>(*N);
  }
  POpts.BatchSize = Batch;

  std::string OutPath = Args.option("out").value_or("");
  bool VerifyReplay = Args.option("verify-replay").has_value();
  if (VerifyReplay && !Detect)
    return rejectUnsupported(
        Err, "record", "--verify-replay with --detector=none",
        "replay verification compares the recorded stream against live "
        "findings; run with --detector=seq or --detector=parallel");
  std::string ChromePath = Args.option("chrome-trace").value_or("");

  // Pre-intern the method symbols so producer threads never contend on
  // the intern table from the record loop.
  Symbol Put = symbol("put");
  Symbol Get = symbol("get");
  int Exit = ExitClean;
  std::unique_ptr<TranslatedRep> Rep;
  if (Detect || VerifyReplay) {
    Rep = loadProvider("", Err, Exit);
    if (!Rep)
      return Exit;
  }

  std::optional<wire::StreamPipeline> Pipeline;
  if (Detect) {
    Pipeline.emplace(POpts);
    Pipeline->setDefaultProvider(Rep.get());
  }
  // The wire sink encodes into memory; --out persists the bytes and
  // --verify-replay decodes them back. Sized by the stress: ~4 bytes per
  // event after delta/varint encoding.
  bool NeedWire = VerifyReplay || !OutPath.empty();
  std::ostringstream WireBuf;
  std::optional<wire::WireWriter> Writer;
  if (NeedWire)
    Writer.emplace(WireBuf);

  ingest::SessionOptions SOpts;
  SOpts.RingCapacity = C.Ring;
  SOpts.Policy = C.Policy;
  SOpts.BatchCapacity = Batch;
  SOpts.TraceRounds = !ChromePath.empty();
  ingest::Session Session(SOpts);
  if (Pipeline)
    Session.setPipeline(&*Pipeline);
  if (Writer)
    Session.setWireWriter(&*Writer);

  // Attach in thread-id order before any producer starts, so the
  // collector's registration-order merge is reproducible.
  std::vector<ingest::Recorder> Recorders;
  Recorders.reserve(C.Producers);
  for (unsigned T = 0; T != C.Producers; ++T)
    Recorders.push_back(Session.attach(ThreadId(T)));

  Session.start();
  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  Threads.reserve(C.Producers);
  for (unsigned T = 0; T != C.Producers; ++T)
    Threads.emplace_back(producerBody, std::move(Recorders[T]), C, Put, Get);
  for (std::thread &T : Threads)
    T.join();
  Session.stop();
  auto T1 = std::chrono::steady_clock::now();
  if (Pipeline)
    Pipeline->finish();
  if (Writer)
    Writer->finish();

  ingest::IngestMetrics M = Session.metricsSnapshot();
  uint64_t Recorded = 0;
  for (const ingest::ProducerMetricsSnapshot &P : M.PerProducer)
    Recorded += P.Recorded;
  uint64_t Produced = Recorded + M.DropsTotal;
  double Seconds =
      std::chrono::duration<double>(T1 - T0).count();
  double Rate = Seconds > 0 ? static_cast<double>(Produced) / Seconds : 0.0;

  Out << "recorded " << Recorded << " events from " << C.Producers
      << " producers in " << std::fixed << std::setprecision(3) << Seconds
      << " s (" << humanRate(Rate) << " events/s aggregate)\n";
  Out << "dropped " << M.DropsTotal << " (policy: " << PolicyName
      << "), collected " << M.EventsCollected << ", lost "
      << (Recorded - M.EventsCollected) << "\n";
  if (Pipeline) {
    wire::StreamSummary Sum = Pipeline->summary();
    Out << "races: " << Sum.Races << " (" << Sum.DistinctRacyObjects
        << " distinct objects, " << DetectorName << " backend)\n";
  }

  if (!OutPath.empty()) {
    std::ofstream OutFile(OutPath, std::ios::binary);
    OutFile << WireBuf.str();
    if (!OutFile) {
      Err << "error: cannot write wire trace '" << OutPath << "'\n";
      return ExitUsage;
    }
    Out << "wrote " << OutPath << ": " << Writer->eventsWritten()
        << " events, " << Writer->bytesWritten() << " bytes\n";
  }

  if (auto Json = Args.option("json")) {
    if (Json->empty()) {
      Session.writeMetricsJson(Out);
    } else {
      std::ofstream JsonFile(*Json);
      Session.writeMetricsJson(JsonFile);
      if (!JsonFile) {
        Err << "error: cannot write metrics JSON '" << *Json << "'\n";
        return ExitUsage;
      }
      Out << "wrote " << *Json << "\n";
    }
  }

  if (!ChromePath.empty()) {
    std::ofstream TraceFile(ChromePath);
    ingest::writeIngestChromeTrace(TraceFile, M);
    if (!TraceFile) {
      Err << "error: cannot write chrome trace file '" << ChromePath << "'\n";
      return ExitUsage;
    }
    Err << "wrote " << ChromePath << ": " << M.Spans.size()
        << " collector round spans\n";
  }

  if (VerifyReplay) {
    // The determinism contract: the wire file carries the exact order
    // live detection consumed, so a fresh pipeline over it must report
    // bit-identical races (field-for-field, not just the same count).
    std::istringstream In(WireBuf.str());
    DiagnosticEngine Diags;
    wire::BinaryStreamSource Src(In, Diags);
    wire::StreamPipeline Replayed(POpts);
    Replayed.setDefaultProvider(Rep.get());
    wire::StreamSummary Sum = Replayed.run(Src);
    if (Src.failed()) {
      Err << "replay: recorded wire stream is malformed:\n"
          << Diags.toString();
      return ExitFindings;
    }
    bool EventsMatch = Sum.Events == M.EventsCollected;
    bool RacesMatch = Replayed.races() == Pipeline->races();
    if (EventsMatch && RacesMatch) {
      Out << "replay identical: yes (" << Sum.Events << " events, "
          << Sum.Races << " races)\n";
    } else {
      Out << "replay identical: NO — live " << Pipeline->races().size()
          << " races / " << M.EventsCollected << " events vs replay "
          << Sum.Races << " races / " << Sum.Events << " events\n";
      return ExitFindings;
    }
  }

  return ExitClean;
}
