//===- tools/crd/Cli.cpp - The unified crd command-line tool -----------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "Cli.h"
#include "CliInternal.h"

#include "detect/AtomicityChecker.h"
#include "detect/CommutativityDetector.h"
#include "detect/FastTrack.h"
#include "detect/Summary.h"
#include "spec/Builtins.h"
#include "spec/SpecParser.h"
#include "trace/TraceIO.h"
#include "trace/TraceStats.h"
#include "translate/Translator.h"
#include "support/Metrics.h"
#include "wire/EventSource.h"
#include "wire/StreamPipeline.h"
#include "wire/WireReader.h"
#include "wire/WireWriter.h"

#include <chrono>
#include <fstream>
#include <iomanip>
#include <optional>
#include <ostream>
#include <sstream>
#include <unordered_set>

using namespace crd;
using namespace crd::cli;
using namespace crd::cli::internal;

namespace {

//===----------------------------------------------------------------------===//
// crd convert
//===----------------------------------------------------------------------===//

const char ConvertHelp[] =
    "usage: crd convert [options] <input> <output>\n"
    "\n"
    "Converts a trace between the textual and binary wire formats. The\n"
    "input format is sniffed from the file magic; the output format is\n"
    "chosen by --to, else by the output extension (.crdb/.wire = binary),\n"
    "else as the opposite of the input format. Conversion is streaming:\n"
    "no Trace is materialized in either direction.\n"
    "\n"
    "options:\n"
    "  --to=text|binary   output format\n"
    "  --chunk=N          events per binary chunk (default 4096)\n";

int runConvert(const ParsedArgs &Args, std::ostream &Out, std::ostream &Err) {
  if (Args.Help) {
    Out << ConvertHelp;
    return ExitClean;
  }
  if (auto Bad = Args.unknownOption({"to", "chunk"})) {
    Err << "error: unknown option --" << *Bad << "\n" << ConvertHelp;
    return ExitUsage;
  }
  if (Args.Positional.size() != 2) {
    Err << ConvertHelp;
    return ExitUsage;
  }
  const std::string &InPath = Args.Positional[0];
  const std::string &OutPath = Args.Positional[1];

  size_t Chunk = wire::DefaultEventsPerChunk;
  if (auto C = Args.option("chunk")) {
    auto N = parseCount(*C);
    if (!N || *N == 0) {
      Err << "error: --chunk expects a positive integer\n";
      return ExitUsage;
    }
    Chunk = static_cast<size_t>(*N);
  }

  bool InputBinary = wire::isWireFile(InPath);
  bool ToBinary;
  if (auto To = Args.option("to")) {
    if (*To == "binary")
      ToBinary = true;
    else if (*To == "text")
      ToBinary = false;
    else {
      Err << "error: --to expects 'text' or 'binary'\n";
      return ExitUsage;
    }
  } else if (OutPath.size() > 5 &&
             (OutPath.rfind(".crdb") == OutPath.size() - 5 ||
              OutPath.rfind(".wire") == OutPath.size() - 5)) {
    ToBinary = true;
  } else {
    ToBinary = !InputBinary;
  }

  DiagnosticEngine Diags;
  auto Source = wire::openEventSource(InPath, Diags);
  if (!Source) {
    Err << Diags.toString();
    return ExitUsage;
  }

  std::ofstream OutFile(OutPath, ToBinary ? std::ios::binary : std::ios::out);
  if (!OutFile) {
    Err << "error: cannot write output file '" << OutPath << "'\n";
    return ExitUsage;
  }

  size_t Events = 0;
  Event E = Event::txBegin(ThreadId(0));
  if (ToBinary) {
    wire::WireWriter Writer(OutFile, Chunk);
    while (Source->next(E)) {
      Writer.append(E);
      ++Events;
    }
    Writer.finish();
    if (!Source->failed())
      Out << "wrote " << OutPath << ": " << Events << " events, "
          << Writer.chunksWritten() << " chunks, " << Writer.bytesWritten()
          << " bytes\n";
  } else {
    size_t Bytes = 0;
    std::ostringstream Line;
    while (Source->next(E)) {
      Line.str("");
      Line << E << '\n';
      OutFile << Line.str();
      Bytes += Line.str().size();
      ++Events;
    }
    if (!Source->failed())
      Out << "wrote " << OutPath << ": " << Events << " events, " << Bytes
          << " bytes\n";
  }
  if (Source->failed()) {
    Err << InPath << ":\n" << Diags.toString();
    return ExitFindings;
  }
  if (!OutFile) {
    Err << "error: I/O error writing '" << OutPath << "'\n";
    return ExitUsage;
  }
  return ExitClean;
}

//===----------------------------------------------------------------------===//
// crd check
//===----------------------------------------------------------------------===//

const char CheckHelp[] =
    "usage: crd check [options] <trace>\n"
    "\n"
    "Streams a trace (text or binary) through a detector and reports\n"
    "findings as they are discovered, plus an end-of-stream summary.\n"
    "Exit code 0 = clean, 1 = findings or malformed trace, 2 = I/O error.\n"
    "\n"
    "options:\n"
    "  --detector=seq|parallel|fasttrack|atomicity   backend (default seq)\n"
    "  --spec=FILE        ECL spec for action commutativity (default:\n"
    "                     builtin dictionary, paper Fig 6)\n"
    "  --shards=N         parallel backend: worker shards (default: cores)\n"
    "  --batch=N          parallel backend: events per batch (default 4096)\n"
    "  --memo[=off|decode|full]   chunk memoization for binary traces with\n"
    "                     content digests (default off; bare --memo = full).\n"
    "                     decode caches repeated chunk decodes; full also\n"
    "                     replays detector chunk summaries (seq backend).\n"
    "                     Races are identical in every mode\n"
    "  --quiet            suppress per-race lines, print the summary only\n";

int runCheck(const ParsedArgs &Args, std::ostream &Out, std::ostream &Err) {
  if (Args.Help) {
    Out << CheckHelp;
    return ExitClean;
  }
  if (auto Bad = Args.unknownOption(
          {"detector", "spec", "shards", "batch", "memo", "quiet"})) {
    Err << "error: unknown option --" << *Bad << "\n" << CheckHelp;
    return ExitUsage;
  }
  if (Args.Positional.size() != 1) {
    Err << CheckHelp;
    return ExitUsage;
  }

  wire::PipelineOptions Opts;
  std::string DetectorName = Args.option("detector").value_or("seq");
  if (DetectorName == "seq")
    Opts.TheBackend = wire::Backend::Sequential;
  else if (DetectorName == "parallel")
    Opts.TheBackend = wire::Backend::Parallel;
  else if (DetectorName == "fasttrack")
    Opts.TheBackend = wire::Backend::FastTrack;
  else if (DetectorName == "atomicity")
    Opts.TheBackend = wire::Backend::Atomicity;
  else {
    Err << "error: unknown detector '" << DetectorName << "'\n" << CheckHelp;
    return ExitUsage;
  }
  if (auto S = Args.option("shards")) {
    auto N = parseCount(*S);
    if (!N) {
      Err << "error: --shards expects an integer\n";
      return ExitUsage;
    }
    Opts.Shards = static_cast<unsigned>(*N);
  }
  if (auto B = Args.option("batch")) {
    auto N = parseCount(*B);
    if (!N || *N == 0) {
      Err << "error: --batch expects a positive integer\n";
      return ExitUsage;
    }
    Opts.BatchSize = static_cast<size_t>(*N);
  }
  if (!parseMemoMode(Args, Opts.Memo, Err))
    return ExitUsage;
  bool Quiet = Args.option("quiet").has_value();

  int Exit = ExitClean;
  std::unique_ptr<TranslatedRep> Rep;
  if (Opts.TheBackend != wire::Backend::FastTrack) {
    Rep = loadProvider(Args.option("spec").value_or(""), Err, Exit);
    if (!Rep)
      return Exit;
  }

  DiagnosticEngine Diags;
  auto Source = wire::openEventSource(Args.Positional[0], Diags);
  if (!Source) {
    Err << Diags.toString();
    return ExitUsage;
  }

  wire::StreamPipeline Pipeline(Opts);
  if (Rep)
    Pipeline.setDefaultProvider(Rep.get());
  if (!Quiet) {
    Pipeline.setRaceCallback([&Out](const CommutativityRace &R) {
      Out << "race: " << R << '\n';
    });
    Pipeline.setMemoryRaceCallback(
        [&Out](const MemoryRace &R) { Out << "race: " << R << '\n'; });
  }
  wire::StreamSummary Summary = Pipeline.run(*Source);

  if (!Quiet)
    for (const AtomicityViolation &V : Pipeline.violations())
      Out << "violation: " << V << '\n';

  Out << "events: " << Summary.Events;
  switch (Opts.TheBackend) {
  case wire::Backend::Sequential:
  case wire::Backend::Parallel:
    Out << "  commutativity races: " << Summary.Races << " ("
        << Summary.DistinctRacyObjects << " distinct objects)";
    break;
  case wire::Backend::FastTrack:
    Out << "  read-write races: " << Summary.MemoryRaces << " ("
        << Summary.DistinctRacyVars << " distinct locations)";
    break;
  case wire::Backend::Atomicity:
    Out << "  atomicity violations: " << Summary.Violations;
    break;
  }
  Out << '\n';

  if (Source->failed()) {
    Err << Args.Positional[0] << ":\n" << Diags.toString();
    return ExitFindings;
  }
  return Summary.clean() ? ExitClean : ExitFindings;
}

//===----------------------------------------------------------------------===//
// crd stats
//===----------------------------------------------------------------------===//

const char StatsHelp[] =
    "usage: crd stats [options] <trace>\n"
    "\n"
    "Reports the shape of a trace file. For binary traces: per-chunk\n"
    "sizes, event and symbol counts, bytes/event, the compression ratio\n"
    "against the equivalent text rendering, and chunk repetition (total\n"
    "chunks vs distinct content digests, and the fraction of payload\n"
    "bytes that repeat an earlier chunk — what --memo can skip). For\n"
    "text traces: event statistics and the projected binary size.\n"
    "\n"
    "options:\n"
    "  --chunks=N         print at most N per-chunk rows (default 16)\n";

int runStats(const ParsedArgs &Args, std::ostream &Out, std::ostream &Err) {
  if (Args.Help) {
    Out << StatsHelp;
    return ExitClean;
  }
  if (auto Bad = Args.unknownOption({"chunks"})) {
    Err << "error: unknown option --" << *Bad << "\n" << StatsHelp;
    return ExitUsage;
  }
  if (Args.Positional.size() != 1) {
    Err << StatsHelp;
    return ExitUsage;
  }
  const std::string &Path = Args.Positional[0];
  size_t MaxRows = 16;
  if (auto C = Args.option("chunks")) {
    auto N = parseCount(*C);
    if (!N) {
      Err << "error: --chunks expects an integer\n";
      return ExitUsage;
    }
    MaxRows = static_cast<size_t>(*N);
  }

  DiagnosticEngine Diags;
  bool Binary = wire::isWireFile(Path);

  // Both sides of the ratio: stream-decode once, accumulating the text
  // rendering size and the event-kind statistics as we go.
  auto Source = wire::openEventSource(Path, Diags);
  if (!Source) {
    Err << Diags.toString();
    return ExitUsage;
  }
  size_t TextBytes = 0, Events = 0, Actions = 0, MemAccesses = 0, Syncs = 0;
  std::ostringstream Rendered;
  std::ostringstream BinaryProjection;
  wire::WireWriter Projector(BinaryProjection);
  Event E = Event::txBegin(ThreadId(0));
  while (Source->next(E)) {
    Rendered.str("");
    Rendered << E;
    TextBytes += Rendered.str().size() + 1; // + newline.
    ++Events;
    Actions += E.isInvoke();
    MemAccesses += E.isMemoryAccess();
    Syncs += E.isSync();
    Projector.append(E);
  }
  Projector.finish();
  if (Source->failed()) {
    Err << Path << ":\n" << Diags.toString();
    return ExitFindings;
  }
  size_t BinaryBytes = Projector.bytesWritten();

  Out << Path << ": " << (Binary ? "binary" : "text") << " trace\n";
  Out << "  events: " << Events << " (" << Actions << " actions, " << Syncs
      << " sync, " << MemAccesses << " memory)\n";
  std::ostringstream Ratio;
  Ratio << std::fixed << std::setprecision(2);
  if (Events != 0)
    Ratio << "  text bytes: " << TextBytes << " ("
          << static_cast<double>(TextBytes) / static_cast<double>(Events)
          << " bytes/event)\n"
          << "  binary bytes: " << BinaryBytes << " ("
          << static_cast<double>(BinaryBytes) / static_cast<double>(Events)
          << " bytes/event)\n"
          << "  compression ratio (text/binary): "
          << static_cast<double>(TextBytes) /
                 static_cast<double>(BinaryBytes)
          << "x\n";
  Out << Ratio.str();

  if (Binary) {
    std::ifstream In(Path, std::ios::binary);
    auto Info = wire::scanWire(In, Diags);
    if (!Info) {
      Err << Path << ":\n" << Diags.toString();
      return ExitFindings;
    }
    Out << "  chunks: " << Info->Chunks.size() << "\n";
    // Chunk repetition: how much of the payload a digest-keyed decode
    // cache (crd check/analyze --memo) would never decode twice.
    {
      std::unordered_set<uint64_t> Seen;
      uint64_t TotalPayload = 0, RepeatedPayload = 0;
      for (const wire::WireChunkInfo &C : Info->Chunks) {
        TotalPayload += C.PayloadBytes;
        if (!Seen.insert(C.Digest).second)
          RepeatedPayload += C.PayloadBytes;
      }
      std::ostringstream Rep;
      Rep << std::fixed << std::setprecision(1);
      Rep << "  chunk repetition: " << Seen.size() << " distinct digests";
      if (TotalPayload != 0)
        Rep << ", " << 100.0 * static_cast<double>(RepeatedPayload) /
                           static_cast<double>(TotalPayload)
            << "% repeated payload bytes";
      Out << Rep.str() << "\n";
    }
    size_t Rows = std::min(MaxRows, Info->Chunks.size());
    for (size_t I = 0; I != Rows; ++I) {
      const wire::WireChunkInfo &C = Info->Chunks[I];
      Out << "    chunk " << I << ": offset " << C.Offset << ", "
          << C.PayloadBytes << " payload bytes, " << C.Events << " events, "
          << C.Symbols << " symbols (" << C.SymbolBytes << " bytes)\n";
    }
    if (Rows < Info->Chunks.size())
      Out << "    ... " << (Info->Chunks.size() - Rows) << " more chunks\n";
  }
  return ExitClean;
}

//===----------------------------------------------------------------------===//
// crd bench
//===----------------------------------------------------------------------===//

const char BenchHelp[] =
    "usage: crd bench [options] <trace>\n"
    "\n"
    "Measures ingestion throughput over the given trace: whole-buffer\n"
    "text parsing vs streaming binary decoding vs binary decoding plus\n"
    "sequential detection. Both encodings are prepared in memory first,\n"
    "so the comparison excludes disk I/O.\n"
    "\n"
    "options:\n"
    "  --reps=N           repetitions per configuration (default 5)\n"
    "  --spec=FILE        spec for the decode+detect configuration\n"
    "  --memo[=off|decode|full]   chunk memoization for the decode+detect\n"
    "                     configuration (default off; bare --memo = full)\n";

double bestSeconds(unsigned Reps, const std::function<void()> &Fn) {
  double Best = 1e100;
  for (unsigned R = 0; R != Reps; ++R) {
    auto T0 = std::chrono::steady_clock::now();
    Fn();
    auto T1 = std::chrono::steady_clock::now();
    Best = std::min(Best, std::chrono::duration<double>(T1 - T0).count());
  }
  return Best;
}

int runBench(const ParsedArgs &Args, std::ostream &Out, std::ostream &Err) {
  if (Args.Help) {
    Out << BenchHelp;
    return ExitClean;
  }
  if (auto Bad = Args.unknownOption({"reps", "spec", "memo"})) {
    Err << "error: unknown option --" << *Bad << "\n" << BenchHelp;
    return ExitUsage;
  }
  if (Args.Positional.size() != 1) {
    Err << BenchHelp;
    return ExitUsage;
  }
  unsigned Reps = 5;
  if (auto R = Args.option("reps")) {
    auto N = parseCount(*R);
    if (!N || *N == 0) {
      Err << "error: --reps expects a positive integer\n";
      return ExitUsage;
    }
    Reps = static_cast<unsigned>(*N);
  }
  wire::MemoMode Memo = wire::MemoMode::Off;
  if (!parseMemoMode(Args, Memo, Err))
    return ExitUsage;

  int Exit = ExitClean;
  auto Rep = loadProvider(Args.option("spec").value_or(""), Err, Exit);
  if (!Rep)
    return Exit;

  // Materialize both encodings in memory.
  DiagnosticEngine Diags;
  auto Source = wire::openEventSource(Args.Positional[0], Diags);
  if (!Source) {
    Err << Diags.toString();
    return ExitUsage;
  }
  std::ostringstream TextOS, BinaryOS;
  size_t Events = 0;
  {
    wire::WireWriter Writer(BinaryOS);
    Event E = Event::txBegin(ThreadId(0));
    while (Source->next(E)) {
      TextOS << E << '\n';
      Writer.append(E);
      ++Events;
    }
    Writer.finish();
  }
  if (Source->failed()) {
    Err << Args.Positional[0] << ":\n" << Diags.toString();
    return ExitFindings;
  }
  if (Events == 0) {
    Err << "error: empty trace\n";
    return ExitUsage;
  }
  std::string Text = TextOS.str();
  std::string Binary = BinaryOS.str();

  double TextSec = bestSeconds(Reps, [&] {
    DiagnosticEngine D;
    auto T = parseTrace(Text, D);
    if (!T || T->size() != Events)
      std::abort();
  });
  double DecodeSec = bestSeconds(Reps, [&] {
    std::istringstream In(Binary);
    DiagnosticEngine D;
    wire::WireReader Reader(In, D);
    Event E = Event::txBegin(ThreadId(0));
    size_t N = 0;
    while (Reader.next(E))
      ++N;
    if (N != Events || Reader.failed())
      std::abort();
  });
  uint64_t KernelNs = 0; // Last rep's batched-kernel time (metrics builds).
  double DetectSec = bestSeconds(Reps, [&] {
    std::istringstream In(Binary);
    DiagnosticEngine D;
    wire::BinaryStreamSource Src(In, D);
    wire::PipelineOptions POpts;
    POpts.Memo = Memo;
    wire::StreamPipeline Pipeline(POpts);
    Pipeline.setDefaultProvider(Rep.get());
    Pipeline.run(Src);
    KernelNs = Pipeline.sequentialDetector()->kernelNs();
  });

  auto row = [&](const char *Name, double Sec, size_t Bytes) {
    std::ostringstream Line;
    Line << std::fixed;
    Line << "  " << std::left << std::setw(22) << Name << std::right
         << std::setw(12)
         << static_cast<uint64_t>(static_cast<double>(Events) / Sec)
         << " events/s   " << std::setprecision(2) << std::setw(6)
         << static_cast<double>(Bytes) / static_cast<double>(Events)
         << " bytes/event\n";
    Out << Line.str();
  };
  Out << "ingestion throughput (" << Events << " events, best of " << Reps
      << "):\n";
  row("text parse", TextSec, Text.size());
  row("binary decode", DecodeSec, Binary.size());
  row("binary decode+detect", DetectSec, Binary.size());
  if (KernelNs != 0) {
    // How much of decode+detect sat inside the batched detection kernel
    // (scan + lookahead + both Algorithm 1 phases; docs/observability.md
    // "kernel_ns"). Zero — and no row — in a CRD_METRICS=OFF build.
    double KernelSec = static_cast<double>(KernelNs) * 1e-9;
    std::ostringstream Line;
    Line << std::fixed;
    Line << "  " << std::left << std::setw(22) << "detect kernel"
         << std::right << std::setw(12)
         << static_cast<uint64_t>(static_cast<double>(Events) / KernelSec)
         << " events/s   " << std::setprecision(1) << std::setw(6)
         << 100.0 * KernelSec / DetectSec << " % of decode+detect\n";
    Out << Line.str();
  }
  std::ostringstream Speedup;
  Speedup << std::fixed << std::setprecision(2)
          << TextSec / DecodeSec;
  Out << "  binary decode speedup over text parse: " << Speedup.str()
      << "x\n";
  return ExitClean;
}

//===----------------------------------------------------------------------===//
// crd profile
//===----------------------------------------------------------------------===//

const char ProfileHelp[] =
    "usage: crd profile [options] <trace>\n"
    "\n"
    "Streams a trace through a detector backend and prints the\n"
    "observability snapshot as JSON: ingress event-kind counts, decode\n"
    "counters (binary traces), and per-backend detector counters — for\n"
    "the parallel backend, per-shard loads, batches, ring occupancy,\n"
    "stalls, and phase timings. Schema: docs/observability.md. Findings\n"
    "are counted in the snapshot, not judged: a racy trace still exits 0.\n"
    "Exit code 1 = malformed trace, 2 = usage or I/O error.\n"
    "\n"
    "options (--opt=V and --opt V forms are both accepted):\n"
    "  --source=file|live   where events come from (default file). live is\n"
    "                       not profiled here: a live session is driven by\n"
    "                       'crd record --stress' (ingest metrics via its\n"
    "                       --json flag); profile reads recorded traces\n"
    "  --backend=seq|parallel|fasttrack|atomicity   backend (default seq)\n"
    "  --spec=FILE          ECL spec for action commutativity (default:\n"
    "                       builtin dictionary, paper Fig 6)\n"
    "  --shards=N           parallel backend: worker shards (default: cores)\n"
    "  --batch=N            parallel backend: events per batch (default 4096)\n"
    "  --chrome-trace=FILE  parallel backend: also write a chrome://tracing\n"
    "                       timeline of per-shard batch lifetimes to FILE\n"
    "  --memo[=off|decode|full]   chunk memoization for binary traces with\n"
    "                       content digests (default off; bare --memo =\n"
    "                       full). The snapshot's \"memo\" and \"source\"\n"
    "                       objects report hit/miss/replay counters\n";

int runProfile(const std::vector<std::string> &Raw, std::ostream &Out,
               std::ostream &Err) {
  ParsedArgs Args(joinValueOptions(
      Raw, {"--source", "--backend", "--spec", "--shards", "--batch",
            "--chrome-trace"}));

  if (Args.Help) {
    Out << ProfileHelp;
    return ExitClean;
  }
  if (auto Bad = Args.unknownOption({"source", "backend", "spec", "shards",
                                     "batch", "chrome-trace", "memo"})) {
    Err << "error: unknown option --" << *Bad << "\n" << ProfileHelp;
    return ExitUsage;
  }
  // --source is resolved before the positional check: '--source=live'
  // takes no trace operand, and must not fall through to file-open with
  // a confusing missing-operand message.
  if (auto Src = Args.option("source")) {
    if (*Src == "live")
      return rejectUnsupported(
          Err, "profile", "--source=live",
          "there is no recorded artifact to profile. Drive a live "
          "ingestion session with 'crd record --stress' (ingest metrics "
          "via its --json flag, collector timeline via --chrome-trace), "
          "or record with --out=FILE and profile that file. --memo is "
          "likewise file-only: chunk memoization needs the recorded "
          "wire chunks and their content digests, which a live event "
          "stream does not have.");
    if (*Src != "file") {
      Err << "error: --source expects 'file' or 'live'\n";
      return ExitUsage;
    }
  }
  if (Args.Positional.size() != 1) {
    Err << ProfileHelp;
    return ExitUsage;
  }

  wire::PipelineOptions Opts;
  std::string BackendName = Args.option("backend").value_or("seq");
  if (BackendName == "seq")
    Opts.TheBackend = wire::Backend::Sequential;
  else if (BackendName == "parallel")
    Opts.TheBackend = wire::Backend::Parallel;
  else if (BackendName == "fasttrack")
    Opts.TheBackend = wire::Backend::FastTrack;
  else if (BackendName == "atomicity")
    Opts.TheBackend = wire::Backend::Atomicity;
  else {
    Err << "error: unknown backend '" << BackendName << "'\n" << ProfileHelp;
    return ExitUsage;
  }
  if (auto S = Args.option("shards")) {
    auto N = parseCount(*S);
    if (!N) {
      Err << "error: --shards expects an integer\n";
      return ExitUsage;
    }
    Opts.Shards = static_cast<unsigned>(*N);
  }
  if (auto B = Args.option("batch")) {
    auto N = parseCount(*B);
    if (!N || *N == 0) {
      Err << "error: --batch expects a positive integer\n";
      return ExitUsage;
    }
    Opts.BatchSize = static_cast<size_t>(*N);
  }
  if (!parseMemoMode(Args, Opts.Memo, Err))
    return ExitUsage;
  std::string ChromePath = Args.option("chrome-trace").value_or("");
  if (!ChromePath.empty() && Opts.TheBackend != wire::Backend::Parallel) {
    Err << "error: --chrome-trace requires --backend=parallel\n";
    return ExitUsage;
  }
  Opts.TraceBatches = !ChromePath.empty();

  if (!metrics::Enabled)
    Err << "warning: this build has CRD_METRICS=OFF; instrumented counters "
           "and timings read zero\n";

  int Exit = ExitClean;
  std::unique_ptr<TranslatedRep> Rep;
  if (Opts.TheBackend != wire::Backend::FastTrack) {
    Rep = loadProvider(Args.option("spec").value_or(""), Err, Exit);
    if (!Rep)
      return Exit;
  }

  DiagnosticEngine Diags;
  auto Source = wire::openEventSource(Args.Positional[0], Diags);
  if (!Source) {
    Err << Diags.toString();
    return ExitUsage;
  }

  wire::StreamPipeline Pipeline(Opts);
  if (Rep)
    Pipeline.setDefaultProvider(Rep.get());
  Pipeline.run(*Source);
  if (Source->failed()) {
    Err << Args.Positional[0] << ":\n" << Diags.toString();
    return ExitFindings;
  }

  Pipeline.writeMetricsJson(Out, Source.get());

  if (!ChromePath.empty()) {
    std::ofstream TraceFile(ChromePath);
    if (!TraceFile) {
      Err << "error: cannot write chrome trace file '" << ChromePath << "'\n";
      return ExitUsage;
    }
    ParallelMetrics M = Pipeline.parallelDetector()->metricsSnapshot();
    // Annotate the timeline with the decode-cache counters when --memo is
    // active (the parallel backend degrades full to decode-level caching).
    ChromeTraceAnnotation MemoNote;
    const ChromeTraceAnnotation *Note = nullptr;
    if (Opts.Memo != wire::MemoMode::Off) {
      if (const wire::WireReader *Reader = Source->wireReader()) {
        wire::WireReaderStats S = Reader->stats();
        MemoNote.Name = "memo";
        MemoNote.Args = {{"memo_hits", S.MemoHits},
                         {"memo_misses", S.MemoMisses},
                         {"memo_bytes_saved", S.MemoBytesSaved},
                         {"memo_cache_entries", S.MemoCacheEntries},
                         {"memo_cache_bytes", S.MemoCacheBytes}};
        Note = &MemoNote;
      }
    }
    writeChromeTrace(TraceFile, M, Note);
    if (!TraceFile) {
      Err << "error: I/O error writing '" << ChromePath << "'\n";
      return ExitUsage;
    }
    Err << "wrote " << ChromePath << ": " << M.Spans.size()
        << " batch spans\n";
  }
  return ExitClean;
}

//===----------------------------------------------------------------------===//
// crd analyze (the classic trace_analyzer report)
//===----------------------------------------------------------------------===//

const char AnalyzeHelp[] =
    "usage: crd analyze [options] <trace-file> [spec-file]\n"
    "\n"
    "The full offline report over one trace (text or binary): trace\n"
    "statistics, commutativity races with a triage summary, FastTrack\n"
    "read-write races, and — when the trace marks atomic blocks — the\n"
    "commutativity-aware atomicity violations.\n"
    "\n"
    "options:\n"
    "  --memo[=off|decode|full]   chunk memoization for the commutativity\n"
    "                     pass over binary traces with content digests\n"
    "                     (default off; bare --memo = full). decode caches\n"
    "                     repeated chunk decodes; full also replays\n"
    "                     detector chunk summaries. Races are identical\n"
    "                     in every mode\n";

} // namespace

int cli::runAnalyze(const std::vector<std::string> &Args, std::ostream &Out,
                    std::ostream &Err) {
  ParsedArgs Parsed(Args);
  if (Parsed.Help) {
    Out << AnalyzeHelp;
    return ExitClean;
  }
  if (auto Bad = Parsed.unknownOption({"memo"})) {
    Err << "error: unknown option --" << *Bad << "\n" << AnalyzeHelp;
    return ExitUsage;
  }
  wire::MemoMode Memo = wire::MemoMode::Off;
  if (!parseMemoMode(Parsed, Memo, Err))
    return ExitUsage;
  if (Parsed.Positional.empty() || Parsed.Positional.size() > 2) {
    Err << AnalyzeHelp;
    return ExitUsage;
  }
  const std::string &TracePath = Parsed.Positional[0];

  // Materialize the trace from either format (this report is offline and
  // wants validation plus multiple passes).
  DiagnosticEngine Diags;
  auto Source = wire::openEventSource(TracePath, Diags);
  if (!Source) {
    Err << Diags.toString();
    return ExitUsage;
  }
  Trace T;
  {
    Event E = Event::txBegin(ThreadId(0));
    while (Source->next(E))
      T.append(E);
  }
  if (Source->failed()) {
    Err << TracePath << ":\n" << Diags.toString();
    return ExitFindings;
  }
  if (!T.validate(Diags)) {
    Err << "trace is malformed:\n" << Diags.toString();
    return ExitFindings;
  }

  int Exit = ExitClean;
  auto Rep = loadProvider(Parsed.Positional.size() > 1 ? Parsed.Positional[1]
                                                       : std::string(),
                          Err, Exit);
  if (!Rep)
    return Exit;

  // The commutativity pass streams through the pipeline when memoization
  // is requested (the decode cache and chunk summaries live there); the
  // materialized trace drives it otherwise. Races are bit-identical.
  CommutativityRaceDetector RD2;
  wire::PipelineOptions POpts;
  POpts.Memo = Memo;
  wire::StreamPipeline MemoPipeline(POpts);
  const std::vector<CommutativityRace> *CRaces = nullptr;
  size_t DistinctObjs = 0;
  if (Memo != wire::MemoMode::Off) {
    MemoPipeline.setDefaultProvider(Rep.get());
    DiagnosticEngine StreamDiags;
    auto StreamSource = wire::openEventSource(TracePath, StreamDiags);
    if (!StreamSource) {
      Err << StreamDiags.toString();
      return ExitUsage;
    }
    wire::StreamSummary Sum = MemoPipeline.run(*StreamSource);
    if (StreamSource->failed()) {
      Err << TracePath << ":\n" << StreamDiags.toString();
      return ExitFindings;
    }
    CRaces = &MemoPipeline.races();
    DistinctObjs = Sum.DistinctRacyObjects;
  } else {
    RD2.setDefaultProvider(Rep.get());
    RD2.processTrace(T);
    CRaces = &RD2.races();
    DistinctObjs = RD2.distinctRacyObjects();
  }

  FastTrackDetector FT;
  FT.processTrace(T);

  TraceStats::compute(T).print(Out);
  Out << '\n';
  Out << "commutativity races (" << CRaces->size() << " total, "
      << DistinctObjs << " distinct objects):\n";
  for (const CommutativityRace &R : *CRaces)
    Out << "  " << R << '\n';
  if (!CRaces->empty()) {
    Out << "\ntriage summary:\n";
    RaceSummary::build(*CRaces).print(Out);
  }

  Out << "\nread-write races (" << FT.races().size() << " total, "
      << FT.distinctRacyVars() << " distinct locations):\n";
  for (const MemoryRace &R : FT.races())
    Out << "  " << R << '\n';

  // Atomicity: only meaningful when the trace marks atomic blocks.
  bool HasTx = false;
  for (const Event &E : T)
    HasTx |= E.kind() == EventKind::TxBegin;
  size_t Violations = 0;
  if (HasTx) {
    AtomicityChecker Checker;
    Checker.setDefaultProvider(Rep.get());
    auto Found = Checker.check(T);
    Violations = Found.size();
    Out << "\natomicity violations (" << Violations << "):\n";
    for (const AtomicityViolation &V : Found)
      Out << "  " << V << '\n';
  }

  return (CRaces->empty() && FT.races().empty() && Violations == 0)
             ? ExitClean
             : ExitFindings;
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

namespace {

const char DriverHelp[] =
    "usage: crd <command> [options]\n"
    "\n"
    "The unified CRD trace tool. Commands:\n"
    "  convert   convert a trace between text and binary wire formats\n"
    "  check     stream a trace through a race/atomicity detector\n"
    "  stats     chunk / size / compression report for a trace file\n"
    "  bench     ingestion throughput: text parse vs binary decode\n"
    "  profile   metrics snapshot (JSON) + optional Chrome trace for a run\n"
    "  record    live multi-producer recording stress into live detection\n"
    "  serve     multi-tenant detection daemon over sockets (and client)\n"
    "  analyze   full offline report (races, triage, atomicity)\n"
    "\n"
    "Run 'crd <command> --help' for per-command options.\n"
    "Exit codes: 0 = clean, 1 = findings or malformed input, 2 = usage/I-O\n"
    "error.\n";

} // namespace

int cli::crdMain(const std::vector<std::string> &Args, std::ostream &Out,
                 std::ostream &Err) {
  if (Args.empty() || Args[0] == "--help" || Args[0] == "-h" ||
      Args[0] == "help") {
    (Args.empty() ? Err : Out) << DriverHelp;
    return Args.empty() ? ExitUsage : ExitClean;
  }
  const std::string &Command = Args[0];
  std::vector<std::string> Rest(Args.begin() + 1, Args.end());
  ParsedArgs Parsed(Rest);
  if (Command == "convert")
    return runConvert(Parsed, Out, Err);
  if (Command == "check")
    return runCheck(Parsed, Out, Err);
  if (Command == "stats")
    return runStats(Parsed, Out, Err);
  if (Command == "bench")
    return runBench(Parsed, Out, Err);
  if (Command == "profile")
    return runProfile(Rest, Out, Err);
  if (Command == "record")
    return internal::runRecord(Rest, Out, Err);
  if (Command == "serve")
    return internal::runServe(Rest, Out, Err);
  if (Command == "analyze")
    return runAnalyze(Rest, Out, Err);
  Err << "error: unknown command '" << Command << "'\n\n" << DriverHelp;
  return ExitUsage;
}

int cli::crdMain(int Argc, const char *const *Argv, std::ostream &Out,
                 std::ostream &Err) {
  std::vector<std::string> Args;
  for (int I = 1; I < Argc; ++I)
    Args.emplace_back(Argv[I]);
  return crdMain(Args, Out, Err);
}
