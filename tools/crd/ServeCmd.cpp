//===- tools/crd/ServeCmd.cpp - crd serve: detection daemon + client ---------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `crd serve` in two roles. Daemon mode (--socket / --tcp) runs the
/// src/serve multi-tenant detection server until SIGTERM drains it.
/// Client mode (--connect) drives a running daemon: stream one trace file
/// and print its findings in `crd check`'s exact format (--trace), fetch
/// the status document (--status), or open many concurrent sessions from
/// the same trace and assert their reply streams are byte-identical
/// (--stress), which is the zero-cross-session-interference check.
///
//===----------------------------------------------------------------------===//

#include "CliInternal.h"

#include "serve/Protocol.h"
#include "serve/Server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

using namespace crd;
using namespace crd::cli;
using namespace crd::cli::internal;

namespace {

const char ServeHelp[] =
    "usage: crd serve --socket=PATH [daemon options]\n"
    "       crd serve --connect=TARGET (--trace=FILE | --status) [options]\n"
    "\n"
    "Long-running detection daemon and its client. The daemon accepts\n"
    "binary wire-format traces over Unix-domain (and loopback TCP)\n"
    "sockets from many concurrent clients; every connection is an\n"
    "isolated detection session and races stream back as line-delimited\n"
    "JSON, bit-identical to 'crd check' on the same trace (protocol and\n"
    "schemas: docs/serve.md). SIGTERM drains: buffered input finishes\n"
    "detecting and every open session still gets its summary.\n"
    "\n"
    "daemon options:\n"
    "  --socket=PATH        listen on a Unix-domain socket at PATH\n"
    "  --tcp=PORT           also listen on loopback TCP (0 = ephemeral;\n"
    "                       the chosen port is printed)\n"
    "  --workers=N          detection worker pool size (default: cores)\n"
    "  --idle-timeout=MS    kill sessions idle for MS milliseconds\n"
    "                       (default 0 = never)\n"
    "  --max-sessions=N     reject connections beyond N live sessions\n"
    "                       (default 0 = unlimited)\n"
    "  --buffer-cap=BYTES   per-session bound on buffered undetected\n"
    "                       input (default 8388608)\n"
    "  --policy=block|drop  what a full buffer does: block = stop reading\n"
    "                       the socket, drop = discard whole chunks and\n"
    "                       count them (default block)\n"
    "  --session-cap=BYTES  per-session footprint ceiling: buffers +\n"
    "                       decode arenas + memo caches (default 0 =\n"
    "                       unlimited); sessions over it are killed\n"
    "  --spec=FILE          ECL spec for action commutativity (default:\n"
    "                       builtin dictionary, paper Fig 6)\n"
    "  --chrome-trace=FILE  on exit, write a chrome://tracing timeline\n"
    "                       with one row per session\n"
    "\n"
    "client options (with --connect=SOCKET-PATH or --connect=HOST:PORT):\n"
    "  --trace=FILE         stream a binary wire trace, print findings in\n"
    "                       'crd check' format (exit 1 when races found)\n"
    "  --status             print the daemon's status document (JSON)\n"
    "  --stress             open --sessions concurrent sessions per wave,\n"
    "                       all streaming --trace; reply streams must be\n"
    "                       identical across every session\n"
    "  --sessions=N         concurrent stress sessions per wave (default 8)\n"
    "  --waves=N            sequential stress waves (default 1)\n"
    "  --detector=seq|parallel|fasttrack|atomicity   session backend\n"
    "                       (default seq)\n"
    "  --shards=N           parallel backend: worker shards (default: cores)\n"
    "  --batch=N            parallel backend: events per batch (default 4096)\n"
    "  --memo[=off|decode|full]   chunk memoization for traces with\n"
    "                       content digests (default off; bare --memo = full)\n"
    "  --json               print the raw reply lines instead of check-\n"
    "                       format rendering\n";

//===----------------------------------------------------------------------===//
// Daemon mode
//===----------------------------------------------------------------------===//

/// SIGTERM/SIGINT handlers reach the server through this; requestDrain()
/// and requestStop() are async-signal-safe by design.
std::atomic<serve::Server *> ActiveServer{nullptr};
std::atomic<int> SignalCount{0};

void handleShutdownSignal(int) {
  serve::Server *S = ActiveServer.load(std::memory_order_acquire);
  if (!S)
    return;
  if (SignalCount.fetch_add(1, std::memory_order_acq_rel) == 0)
    S->requestDrain();
  else
    S->requestStop();
}

int runDaemon(const ParsedArgs &Args, std::ostream &Out, std::ostream &Err) {
  serve::ServeOptions Opts;
  Opts.UnixPath = Args.option("socket").value_or("");
  if (auto T = Args.option("tcp")) {
    auto N = parseCount(*T);
    if (!N || *N > 65535) {
      Err << "error: --tcp expects a port number (0 = ephemeral)\n";
      return ExitUsage;
    }
    Opts.TcpPort = static_cast<int>(*N);
  }
  if (Opts.UnixPath.empty() && Opts.TcpPort < 0) {
    Err << "error: daemon mode needs a listener: --socket=PATH and/or "
           "--tcp=PORT\n";
    return ExitUsage;
  }
  if (auto W = Args.option("workers")) {
    auto N = parseCount(*W);
    if (!N || *N == 0 || *N > 4096) {
      Err << "error: --workers expects a positive integer <= 4096\n";
      return ExitUsage;
    }
    Opts.Workers = static_cast<unsigned>(*N);
  }
  if (auto I = Args.option("idle-timeout")) {
    auto N = parseCount(*I);
    if (!N) {
      Err << "error: --idle-timeout expects milliseconds (0 = never)\n";
      return ExitUsage;
    }
    Opts.IdleTimeoutMs = *N;
  }
  if (auto M = Args.option("max-sessions")) {
    auto N = parseCount(*M);
    if (!N) {
      Err << "error: --max-sessions expects an integer (0 = unlimited)\n";
      return ExitUsage;
    }
    Opts.MaxSessions = static_cast<size_t>(*N);
  }
  if (auto B = Args.option("buffer-cap")) {
    auto N = parseCount(*B);
    if (!N || *N == 0) {
      Err << "error: --buffer-cap expects a positive byte count\n";
      return ExitUsage;
    }
    Opts.Limits.MaxBufferedBytes = static_cast<size_t>(*N);
  }
  if (auto S = Args.option("session-cap")) {
    auto N = parseCount(*S);
    if (!N) {
      Err << "error: --session-cap expects a byte count (0 = unlimited)\n";
      return ExitUsage;
    }
    Opts.Limits.MaxSessionBytes = static_cast<size_t>(*N);
  }
  std::string PolicyName = Args.option("policy").value_or("block");
  if (PolicyName == "block")
    Opts.Limits.Policy = ingest::BackpressurePolicy::Block;
  else if (PolicyName == "drop")
    Opts.Limits.Policy = ingest::BackpressurePolicy::DropNewest;
  else {
    Err << "error: --policy expects 'block' or 'drop'\n";
    return ExitUsage;
  }
  std::string ChromePath = Args.option("chrome-trace").value_or("");
  Opts.TraceSessions = !ChromePath.empty();

  int Exit = ExitClean;
  std::unique_ptr<TranslatedRep> Rep =
      loadProvider(Args.option("spec").value_or(""), Err, Exit);
  if (!Rep)
    return Exit;
  Opts.Provider = Rep.get();

  serve::Server Server(std::move(Opts));
  std::string Error;
  if (!Server.start(Error)) {
    Err << "error: " << Error << "\n";
    return ExitUsage;
  }
  if (auto S = Args.option("socket"))
    Out << "listening on unix:" << *S << "\n";
  if (Args.option("tcp"))
    Out << "listening on tcp:127.0.0.1:" << Server.tcpPort() << "\n";
  Out.flush();

  ActiveServer.store(&Server, std::memory_order_release);
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = handleShutdownSignal;
  sigaction(SIGTERM, &SA, nullptr);
  sigaction(SIGINT, &SA, nullptr);

  Server.run();
  ActiveServer.store(nullptr, std::memory_order_release);

  serve::ServeMetrics M = Server.metricsSnapshot();
  Out << "drained: " << M.SessionsClosed << " sessions ("
      << M.SessionsFailed << " failed, " << M.SessionsTimedOut
      << " timed out, " << M.SessionsRejected << " rejected), "
      << M.EventsTotal << " events, " << M.RacesTotal << " races\n";

  if (!ChromePath.empty()) {
    std::ofstream TraceFile(ChromePath);
    Server.writeChromeTrace(TraceFile);
    if (!TraceFile) {
      Err << "error: cannot write chrome trace file '" << ChromePath << "'\n";
      return ExitUsage;
    }
    Err << "wrote " << ChromePath << "\n";
  }
  return ExitClean;
}

//===----------------------------------------------------------------------===//
// Client plumbing
//===----------------------------------------------------------------------===//

/// Connects to `PATH` (Unix-domain) or `HOST:PORT` (loopback TCP; the
/// host must be an IPv4 literal or `localhost`). A target containing '/'
/// is always a path, so relative socket paths with colons keep working.
int connectTo(const std::string &Target, std::string &Error) {
  size_t Colon = Target.rfind(':');
  bool IsTcp = Colon != std::string::npos &&
               Target.find('/') == std::string::npos;
  if (IsTcp) {
    std::string Host = Target.substr(0, Colon);
    auto Port = parseCount(Target.substr(Colon + 1));
    if (!Port || *Port == 0 || *Port > 65535) {
      Error = "bad TCP port in '" + Target + "'";
      return -1;
    }
    if (Host == "localhost")
      Host = "127.0.0.1";
    sockaddr_in Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(static_cast<uint16_t>(*Port));
    if (inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
      Error = "bad IPv4 host in '" + Target + "' (use a literal address)";
      return -1;
    }
    int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0 ||
        ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
            0) {
      Error = "cannot connect to '" + Target + "': " + std::strerror(errno);
      if (Fd >= 0)
        ::close(Fd);
      return -1;
    }
    return Fd;
  }
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Target.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long: '" + Target + "'";
    return -1;
  }
  std::memcpy(Addr.sun_path, Target.c_str(), Target.size());
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0 ||
      ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Error = "cannot connect to '" + Target + "': " + std::strerror(errno);
    if (Fd >= 0)
      ::close(Fd);
    return -1;
  }
  return Fd;
}

bool writeAll(int Fd, const char *Data, size_t N, std::string &Error) {
  while (N != 0) {
    ssize_t W = ::write(Fd, Data, N);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      Error = std::string("write: ") + std::strerror(errno);
      return false;
    }
    Data += W;
    N -= static_cast<size_t>(W);
  }
  return true;
}

/// Reads until the server closes the connection.
bool readAll(int Fd, std::string &Out, std::string &Error) {
  char Buf[65536];
  for (;;) {
    ssize_t R = ::read(Fd, Buf, sizeof(Buf));
    if (R < 0) {
      if (errno == EINTR)
        continue;
      Error = std::string("read: ") + std::strerror(errno);
      return false;
    }
    if (R == 0)
      return true;
    Out.append(Buf, static_cast<size_t>(R));
  }
}

/// One full client session: handshake, the trace as 'W' frames, 'E', then
/// the complete reply stream. Replies are small relative to socket
/// buffers and the server never blocks on writes (it buffers), so the
/// write-everything-then-read shape cannot deadlock.
bool runTraceSession(const std::string &Target, const serve::Handshake &H,
                     const std::string &TraceBytes, std::string &Reply,
                     std::string &Error) {
  int Fd = connectTo(Target, Error);
  if (Fd < 0)
    return false;
  std::string Msg = serve::renderHandshake(H);
  Msg += '\n';
  // Deliberately fragment the trace so the daemon's chunk reassembly is
  // exercised on every client run, not just in unit tests.
  constexpr size_t Slice = 60000;
  for (size_t Pos = 0; Pos < TraceBytes.size(); Pos += Slice) {
    size_t N = std::min(Slice, TraceBytes.size() - Pos);
    serve::appendFrameHeader(Msg, serve::FrameType::Wire,
                             static_cast<uint32_t>(N));
    Msg.append(TraceBytes, Pos, N);
  }
  serve::appendFrameHeader(Msg, serve::FrameType::End, 0);
  bool Ok = writeAll(Fd, Msg.data(), Msg.size(), Error) &&
            (::shutdown(Fd, SHUT_WR), readAll(Fd, Reply, Error));
  ::close(Fd);
  return Ok;
}

//===----------------------------------------------------------------------===//
// Reply-line parsing (the JSON subset the daemon emits)
//===----------------------------------------------------------------------===//

/// Extracts "Key":"..." from a reply line, undoing appendJsonEscaped.
std::optional<std::string> jsonStringField(std::string_view Line,
                                           std::string_view Key) {
  std::string Needle = "\"";
  Needle += Key;
  Needle += "\":\"";
  size_t At = Line.find(Needle);
  if (At == std::string_view::npos)
    return std::nullopt;
  std::string Out;
  for (size_t I = At + Needle.size(); I < Line.size(); ++I) {
    char C = Line[I];
    if (C == '"')
      return Out;
    if (C != '\\') {
      Out += C;
      continue;
    }
    if (++I == Line.size())
      return std::nullopt;
    switch (Line[I]) {
    case 'n': Out += '\n'; break;
    case 'r': Out += '\r'; break;
    case 't': Out += '\t'; break;
    case 'u': {
      if (I + 4 >= Line.size())
        return std::nullopt;
      unsigned V = 0;
      for (int K = 0; K != 4; ++K) {
        char H = Line[++I];
        V <<= 4;
        if (H >= '0' && H <= '9')
          V |= static_cast<unsigned>(H - '0');
        else if (H >= 'a' && H <= 'f')
          V |= static_cast<unsigned>(H - 'a' + 10);
        else if (H >= 'A' && H <= 'F')
          V |= static_cast<unsigned>(H - 'A' + 10);
        else
          return std::nullopt;
      }
      Out += static_cast<char>(V);
      break;
    }
    default: Out += Line[I]; break;
    }
  }
  return std::nullopt;
}

std::optional<uint64_t> jsonUintField(std::string_view Line,
                                      std::string_view Key) {
  std::string Needle = "\"";
  Needle += Key;
  Needle += "\":";
  size_t At = Line.find(Needle);
  if (At == std::string_view::npos)
    return std::nullopt;
  size_t I = At + Needle.size();
  if (I >= Line.size() || Line[I] < '0' || Line[I] > '9')
    return std::nullopt;
  uint64_t V = 0;
  while (I < Line.size() && Line[I] >= '0' && Line[I] <= '9')
    V = V * 10 + static_cast<uint64_t>(Line[I++] - '0');
  return V;
}

/// Renders a session's reply stream exactly as `crd check` prints the
/// same trace: per-finding lines, then the one-line summary. Returns the
/// check-compatible exit code; daemon `error` lines map to exit 1.
int renderCheckStyle(const std::string &Reply, wire::Backend Backend,
                     std::ostream &Out, std::ostream &Err) {
  std::istringstream Lines(Reply);
  std::string Line;
  bool Clean = true;
  bool SawSummary = false;
  while (std::getline(Lines, Line)) {
    auto Type = jsonStringField(Line, "type");
    if (!Type)
      continue;
    if (*Type == "race" || *Type == "violation") {
      if (auto Text = jsonStringField(Line, "text"))
        Out << (*Type == "race" ? "race: " : "violation: ") << *Text << '\n';
    } else if (*Type == "error") {
      Err << "error from daemon: "
          << jsonStringField(Line, "reason").value_or(Line) << "\n";
      return ExitFindings;
    } else if (*Type == "summary") {
      SawSummary = true;
      uint64_t Events = jsonUintField(Line, "events").value_or(0);
      Out << "events: " << Events;
      switch (Backend) {
      case wire::Backend::Sequential:
      case wire::Backend::Parallel: {
        uint64_t Races = jsonUintField(Line, "races").value_or(0);
        Out << "  commutativity races: " << Races << " ("
            << jsonUintField(Line, "distinct_racy_objects").value_or(0)
            << " distinct objects)";
        Clean = Races == 0;
        break;
      }
      case wire::Backend::FastTrack: {
        uint64_t Races = jsonUintField(Line, "memory_races").value_or(0);
        Out << "  read-write races: " << Races << " ("
            << jsonUintField(Line, "distinct_racy_vars").value_or(0)
            << " distinct locations)";
        Clean = Races == 0;
        break;
      }
      case wire::Backend::Atomicity: {
        uint64_t V = jsonUintField(Line, "violations").value_or(0);
        Out << "  atomicity violations: " << V;
        Clean = V == 0;
        break;
      }
      }
      Out << '\n';
    }
  }
  if (!SawSummary) {
    Err << "error: connection closed before a summary line\n";
    return ExitFindings;
  }
  return Clean ? ExitClean : ExitFindings;
}

/// The reply stream minus its `hello` line (session ids differ between
/// sessions; everything else must not).
std::string stripHello(const std::string &Reply) {
  std::string Out;
  std::istringstream Lines(Reply);
  std::string Line;
  while (std::getline(Lines, Line)) {
    if (jsonStringField(Line, "type").value_or("") == "hello")
      continue;
    // Summary/error lines carry the session id; blank it for comparison.
    size_t At = Line.find("\"session\":");
    if (At != std::string::npos) {
      size_t End = At + std::strlen("\"session\":");
      while (End < Line.size() && Line[End] >= '0' && Line[End] <= '9')
        ++End;
      Line.replace(At, End - At, "\"session\":_");
    }
    Out += Line;
    Out += '\n';
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Client mode
//===----------------------------------------------------------------------===//

int runClient(const ParsedArgs &Args, std::ostream &Out, std::ostream &Err) {
  const std::string Target = *Args.option("connect");

  if (Args.option("status")) {
    if (Args.option("trace") || Args.option("stress")) {
      Err << "error: --status is exclusive with --trace/--stress\n";
      return ExitUsage;
    }
    std::string Error;
    int Fd = connectTo(Target, Error);
    if (Fd < 0) {
      Err << "error: " << Error << "\n";
      return ExitUsage;
    }
    std::string Msg = std::string(serve::ProtocolTag) + " status\n";
    std::string Reply;
    bool Ok = writeAll(Fd, Msg.data(), Msg.size(), Error) &&
              (::shutdown(Fd, SHUT_WR), readAll(Fd, Reply, Error));
    ::close(Fd);
    if (!Ok) {
      Err << "error: " << Error << "\n";
      return ExitUsage;
    }
    Out << Reply;
    return ExitClean;
  }

  auto TracePath = Args.option("trace");
  if (!TracePath) {
    Err << "error: client mode needs --trace=FILE or --status\n";
    return ExitUsage;
  }

  serve::Handshake H;
  std::string DetectorName = Args.option("detector").value_or("seq");
  if (DetectorName == "seq")
    H.TheBackend = wire::Backend::Sequential;
  else if (DetectorName == "parallel")
    H.TheBackend = wire::Backend::Parallel;
  else if (DetectorName == "fasttrack")
    H.TheBackend = wire::Backend::FastTrack;
  else if (DetectorName == "atomicity")
    H.TheBackend = wire::Backend::Atomicity;
  else {
    Err << "error: unknown detector '" << DetectorName << "'\n";
    return ExitUsage;
  }
  if (auto S = Args.option("shards")) {
    auto N = parseCount(*S);
    if (!N) {
      Err << "error: --shards expects an integer\n";
      return ExitUsage;
    }
    H.Shards = static_cast<unsigned>(*N);
  }
  if (auto B = Args.option("batch")) {
    auto N = parseCount(*B);
    if (!N || *N == 0) {
      Err << "error: --batch expects a positive integer\n";
      return ExitUsage;
    }
    H.BatchSize = static_cast<size_t>(*N);
  }
  if (!parseMemoMode(Args, H.Memo, Err))
    return ExitUsage;

  auto TraceBytes = readFile(*TracePath);
  if (!TraceBytes) {
    Err << "error: cannot read trace file '" << *TracePath << "'\n";
    return ExitUsage;
  }

  if (Args.option("stress")) {
    uint64_t Sessions = 8, Waves = 1;
    if (auto S = Args.option("sessions")) {
      auto N = parseCount(*S);
      if (!N || *N == 0 || *N > 4096) {
        Err << "error: --sessions expects a positive integer <= 4096\n";
        return ExitUsage;
      }
      Sessions = *N;
    }
    if (auto W = Args.option("waves")) {
      auto N = parseCount(*W);
      if (!N || *N == 0) {
        Err << "error: --waves expects a positive integer\n";
        return ExitUsage;
      }
      Waves = *N;
    }

    std::string Canonical;
    bool Identical = true;
    std::mutex ReportMu;
    std::vector<std::string> Errors;
    for (uint64_t Wave = 0; Wave != Waves && Identical; ++Wave) {
      std::vector<std::thread> Threads;
      Threads.reserve(Sessions);
      for (uint64_t S = 0; S != Sessions; ++S)
        Threads.emplace_back([&] {
          std::string Reply, Error;
          if (!runTraceSession(Target, H, *TraceBytes, Reply, Error)) {
            std::lock_guard<std::mutex> Lock(ReportMu);
            Errors.push_back(Error);
            Identical = false;
            return;
          }
          std::string Stripped = stripHello(Reply);
          std::lock_guard<std::mutex> Lock(ReportMu);
          if (Canonical.empty())
            Canonical = Stripped;
          else if (Stripped != Canonical)
            Identical = false;
        });
      for (std::thread &T : Threads)
        T.join();
    }
    for (const std::string &E : Errors)
      Err << "error: " << E << "\n";
    Out << "sessions: " << Sessions * Waves << " (" << Sessions << " x "
        << Waves << " waves)  identical: " << (Identical ? "yes" : "NO")
        << "\n";
    if (Identical && !Canonical.empty())
      renderCheckStyle(Canonical, H.TheBackend, Out, Err);
    return Identical ? ExitClean : ExitFindings;
  }

  std::string Reply, Error;
  if (!runTraceSession(Target, H, *TraceBytes, Reply, Error)) {
    Err << "error: " << Error << "\n";
    return ExitUsage;
  }
  if (Args.option("json")) {
    Out << Reply;
    std::istringstream Lines(Reply);
    std::string Line;
    bool Clean = true;
    while (std::getline(Lines, Line)) {
      auto Type = jsonStringField(Line, "type").value_or("");
      if (Type == "race" || Type == "violation" || Type == "error")
        Clean = false;
    }
    return Clean ? ExitClean : ExitFindings;
  }
  return renderCheckStyle(Reply, H.TheBackend, Out, Err);
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry point + mode restrictions
//===----------------------------------------------------------------------===//

int crd::cli::internal::runServe(const std::vector<std::string> &Raw,
                                 std::ostream &Out, std::ostream &Err) {
  ParsedArgs Args(joinValueOptions(
      Raw, {"--socket", "--tcp", "--workers", "--idle-timeout",
            "--max-sessions", "--buffer-cap", "--session-cap", "--policy",
            "--spec", "--chrome-trace", "--connect", "--trace", "--detector",
            "--shards", "--batch", "--sessions", "--waves"}));
  if (Args.Help) {
    Out << ServeHelp;
    return ExitClean;
  }
  if (auto Bad = Args.unknownOption(
          {"socket", "tcp", "workers", "idle-timeout", "max-sessions",
           "buffer-cap", "session-cap", "policy", "spec", "chrome-trace",
           "connect", "trace", "detector", "shards", "batch", "memo", "json",
           "status", "stress", "sessions", "waves"})) {
    Err << "error: unknown option --" << *Bad << "\n" << ServeHelp;
    return ExitUsage;
  }
  if (!Args.Positional.empty()) {
    Err << "error: crd serve takes no positional operands\n" << ServeHelp;
    return ExitUsage;
  }

  // The two roles take disjoint option sets; report a mix the same way
  // every verb reports a rejected mode (rejectUnsupported).
  const bool IsClient = Args.option("connect").has_value();
  static const char *const DaemonOnly[] = {
      "socket", "tcp",         "workers",     "idle-timeout", "max-sessions",
      "buffer-cap", "session-cap", "policy", "spec",         "chrome-trace"};
  static const char *const ClientOnly[] = {
      "trace", "detector", "shards", "batch",    "memo",
      "json",  "status",   "stress", "sessions", "waves"};
  if (IsClient) {
    for (const char *Name : DaemonOnly)
      if (Args.option(Name))
        return rejectUnsupported(
            Err, "serve", std::string("--") + Name + " with --connect",
            "listener and session-limit flags configure the daemon; start "
            "one with 'crd serve --socket=PATH' and point clients at it "
            "with --connect");
  } else {
    for (const char *Name : ClientOnly)
      if (Args.option(Name))
        return rejectUnsupported(
            Err, "serve", std::string("--") + Name + " without --connect",
            "client flags drive a running daemon; pass "
            "--connect=SOCKET-PATH (or --connect=HOST:PORT), or analyze a "
            "file in-process with 'crd check'");
  }

  return IsClient ? runClient(Args, Out, Err) : runDaemon(Args, Out, Err);
}
