//===- tools/crd/crd.cpp - crd driver entry point ----------------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "Cli.h"

#include <iostream>

int main(int Argc, char **Argv) {
  return crd::cli::crdMain(Argc, Argv, std::cout, std::cerr);
}
