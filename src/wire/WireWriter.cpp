//===- wire/WireWriter.cpp - Streaming binary trace writer -------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "wire/WireWriter.h"

#include "support/Hashing.h"
#include "trace/Trace.h"
#include "wire/Crc32.h"
#include "wire/Varint.h"

#include <algorithm>
#include <ostream>
#include <unordered_map>

using namespace crd;
using namespace crd::wire;

WireWriter::WireWriter(std::ostream &OS, size_t EventsPerChunk,
                       bool WithDigests)
    : OS(OS), EventsPerChunk(std::max<size_t>(1, EventsPerChunk)),
      WithDigests(WithDigests) {
  char Header[FileHeaderSize] = {
      Magic[0], Magic[1], Magic[2], Magic[3], static_cast<char>(Version),
      static_cast<char>(WithDigests ? FlagChunkDigests : 0)};
  OS.write(Header, FileHeaderSize);
  NumBytes += FileHeaderSize;
  Pending.reserve(this->EventsPerChunk);
}

WireWriter::~WireWriter() { finish(); }

void WireWriter::append(const Event &E) {
  Pending.push_back(E);
  ++NumEvents;
  if (Pending.size() >= EventsPerChunk)
    flushChunk();
}

void WireWriter::writeTrace(const Trace &T) {
  for (const Event &E : T)
    append(E);
}

void WireWriter::finish() {
  if (Finished)
    return;
  if (!Pending.empty())
    flushChunk();
  OS.flush();
  Finished = true;
}

namespace {

Opcode opcodeOf(EventKind Kind) {
  switch (Kind) {
  case EventKind::Fork:
    return Opcode::Fork;
  case EventKind::Join:
    return Opcode::Join;
  case EventKind::Acquire:
    return Opcode::Acquire;
  case EventKind::Release:
    return Opcode::Release;
  case EventKind::Invoke:
    return Opcode::Invoke;
  case EventKind::Read:
    return Opcode::Read;
  case EventKind::Write:
    return Opcode::Write;
  case EventKind::TxBegin:
    return Opcode::TxBegin;
  case EventKind::TxEnd:
    return Opcode::TxEnd;
  }
  return Opcode::TxEnd; // Unreachable.
}

void putU32le(std::ostream &OS, uint32_t V) {
  char B[4] = {static_cast<char>(V & 0xFF), static_cast<char>((V >> 8) & 0xFF),
               static_cast<char>((V >> 16) & 0xFF),
               static_cast<char>((V >> 24) & 0xFF)};
  OS.write(B, 4);
}

/// Per-chunk symbol interner: local ids in order of first use.
class ChunkSymbols {
public:
  uint64_t localId(Symbol Sym) {
    auto [It, Inserted] = Ids.try_emplace(Sym, Order.size());
    if (Inserted)
      Order.push_back(Sym);
    return It->second;
  }

  void encodeTable(std::string &Out) const {
    putVarint(Out, Order.size());
    for (Symbol Sym : Order) {
      std::string_view Text = Sym.str();
      putVarint(Out, Text.size());
      Out.append(Text);
    }
  }

private:
  std::unordered_map<Symbol, uint64_t> Ids;
  std::vector<Symbol> Order;
};

void encodeValue(std::string &Out, const Value &V, ChunkSymbols &Syms) {
  switch (V.kind()) {
  case Value::Kind::Nil:
    Out.push_back(static_cast<char>(ValueTag::Nil));
    return;
  case Value::Kind::Bool:
    Out.push_back(
        static_cast<char>(V.asBool() ? ValueTag::True : ValueTag::False));
    return;
  case Value::Kind::Int:
    Out.push_back(static_cast<char>(ValueTag::Int));
    putSVarint(Out, V.asInt());
    return;
  case Value::Kind::Str:
    Out.push_back(static_cast<char>(ValueTag::Str));
    putVarint(Out, Syms.localId(V.asSymbol()));
    return;
  }
}

} // namespace

void WireWriter::flushChunk() {
  // The events section references local symbol ids, so it is encoded first
  // (populating the interner) and the payload assembled table-before-events.
  ChunkSymbols Syms;
  std::string Events;
  uint32_t PrevThread = 0;
  uint32_t PrevObject = 0;
  for (const Event &E : Pending) {
    Events.push_back(static_cast<char>(opcodeOf(E.kind())));
    putSVarint(Events, static_cast<int64_t>(E.thread().index()) -
                           static_cast<int64_t>(PrevThread));
    PrevThread = E.thread().index();
    switch (E.kind()) {
    case EventKind::Fork:
    case EventKind::Join:
      putVarint(Events, E.other().index());
      break;
    case EventKind::Acquire:
    case EventKind::Release:
      putVarint(Events, E.lock().index());
      break;
    case EventKind::Read:
    case EventKind::Write:
      putVarint(Events, E.var().index());
      break;
    case EventKind::TxBegin:
    case EventKind::TxEnd:
      break;
    case EventKind::Invoke: {
      const Action &A = E.action();
      putSVarint(Events, static_cast<int64_t>(A.object().index()) -
                             static_cast<int64_t>(PrevObject));
      PrevObject = A.object().index();
      putVarint(Events, Syms.localId(A.method()));
      putVarint(Events, A.args().size());
      for (const Value &V : A.args())
        encodeValue(Events, V, Syms);
      putVarint(Events, A.rets().size());
      for (const Value &V : A.rets())
        encodeValue(Events, V, Syms);
      break;
    }
    }
  }

  std::string Payload;
  putVarint(Payload, Pending.size());
  Syms.encodeTable(Payload);
  Payload.append(Events);

  putU32le(OS, static_cast<uint32_t>(Payload.size()));
  putU32le(OS, crc32(Payload.data(), Payload.size()));
  if (WithDigests) {
    // Digest the event bytes only (not the prologue): the per-chunk symbol
    // table and delta predictors are deterministic functions of the events,
    // so identical logical chunks digest — and memcmp — identically.
    uint64_t Digest = hashBytes64(Events.data(), Events.size());
    char B[8];
    for (unsigned I = 0; I != 8; ++I)
      B[I] = static_cast<char>((Digest >> (8 * I)) & 0xFF);
    OS.write(B, 8);
  }
  OS.write(Payload.data(), static_cast<std::streamsize>(Payload.size()));
  NumBytes +=
      (WithDigests ? DigestChunkHeaderSize : ChunkHeaderSize) + Payload.size();
  ++NumChunks;
  Pending.clear();
}
