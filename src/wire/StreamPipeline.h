//===- wire/StreamPipeline.h - Streaming detection pipeline -----*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The streaming ingestion pipeline: pulls decoded events from any
/// EventSource (or receives them pushed as an EventSink from a live
/// SimRuntime) and feeds them incrementally into a detector backend —
/// the sequential Algorithm 1 detector, the object-sharded
/// ParallelDetector (events stream straight into its shard pipeline —
/// the detector batches internally, and reports stay bit-identical to
/// the sequential detector), the FastTrack baseline, or the online
/// atomicity checker. Races are surfaced through an optional callback
/// the moment the backend reports them, plus an end-of-stream summary.
/// No Trace is ever materialized.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_WIRE_STREAMPIPELINE_H
#define CRD_WIRE_STREAMPIPELINE_H

#include "detect/CommutativityDetector.h"
#include "detect/FastTrack.h"
#include "detect/OnlineAtomicity.h"
#include "detect/ParallelDetector.h"
#include "runtime/Sink.h"
#include "wire/EventSource.h"

#include <functional>
#include <iosfwd>
#include <memory>

namespace crd {
namespace wire {

/// Which detector consumes the stream.
enum class Backend {
  Sequential, ///< CommutativityRaceDetector, event-at-a-time.
  Parallel,   ///< ParallelDetector's streaming shard pipeline.
  FastTrack,  ///< Low-level read/write races.
  Atomicity,  ///< OnlineAtomicityChecker (conflict-serializability).
};

/// End-of-stream report.
struct StreamSummary {
  size_t Events = 0;
  size_t Races = 0;            ///< Commutativity races (Sequential/Parallel).
  size_t DistinctRacyObjects = 0;
  size_t MemoryRaces = 0;      ///< FastTrack backend.
  size_t DistinctRacyVars = 0;
  size_t Violations = 0;       ///< Atomicity backend.

  /// True when the selected backend reported nothing.
  bool clean() const { return Races + MemoryRaces + Violations == 0; }
};

/// Pipeline configuration.
struct PipelineOptions {
  Backend TheBackend = Backend::Sequential;
  unsigned Shards = 0;     ///< Parallel backend: 0 = hardware concurrency.
  size_t BatchSize = 4096; ///< Parallel backend batch granularity (≥ 1).
  /// Parallel backend: record a BatchSpan per dispatched batch for Chrome
  /// tracing (CRD_METRICS builds only; see ParallelDetector).
  bool TraceBatches = false;
  /// Chunk memoization level for binary sources carrying content digests
  /// (docs/trace-format.md). Decode enables the WireReader decode cache
  /// (repeated chunk payloads skip varint/delta decode); Full additionally
  /// memoizes detector chunk summaries (sequential backend only — other
  /// backends degrade to Decode). Races are bit-identical in every mode.
  MemoMode Memo = MemoMode::Off;
};

/// Detector-side memoization counters (always live, even in a
/// CRD_METRICS=OFF build; see docs/observability.md "memo").
struct PipelineMemoStats {
  uint64_t SummaryHits = 0;      ///< Chunks replayed from a summary.
  uint64_t SummaryRecords = 0;   ///< Summaries recorded (incl. re-records).
  uint64_t SummaryFallbacks = 0; ///< Version-mismatch fallbacks to interpret.
  uint64_t EventsReplayed = 0;   ///< Events covered by replays.
  uint64_t ChunksInterpreted = 0;///< Chunks run through the detector.
};

/// Streaming detector pipeline; EventSink so live runtimes can push.
class StreamPipeline : public EventSink {
public:
  explicit StreamPipeline(PipelineOptions Opts = {});

  /// Representation for objects without an explicit bind(). Ignored by the
  /// FastTrack backend.
  void setDefaultProvider(const AccessPointProvider *Provider);
  void bind(ObjectId Obj, const AccessPointProvider *Provider);

  /// Invoked for every commutativity race as soon as the backend reports
  /// it (after the offending event for Sequential's per-event feed, after
  /// the containing batch for its batched feed; at finish() for Parallel,
  /// whose races surface when the pipeline flushes).
  void setRaceCallback(std::function<void(const CommutativityRace &)> Cb) {
    RaceCallback = std::move(Cb);
  }
  /// FastTrack counterpart of setRaceCallback.
  void setMemoryRaceCallback(std::function<void(const MemoryRace &)> Cb) {
    MemoryRaceCallback = std::move(Cb);
  }

  /// EventSink: feeds one event.
  void onEvent(const Event &E) override;

  /// Push-side counterpart of run()'s batched pull, used by the live
  /// ingestion collector: feeds a whole batch. \p B's sync index must be
  /// populated (finalizeSyncIndex() after manual appends). On return
  /// \p B is empty with warm buffers — the parallel backend swaps in a
  /// recycled batch, the other backends consume and clear() it — so a
  /// caller can refill the same batch allocation-free.
  void processBatch(EventBatch &B);

  /// Pulls \p Source dry, then finish()es. Returns the summary. With
  /// PipelineOptions::Memo != Off and a binary source, drives the
  /// memoized chunk loop (see pumpChunk()).
  StreamSummary run(EventSource &Source);

  /// Incremental counterpart of run(): pulls whatever \p Source can
  /// deliver right now and feeds it to the backend, returning when the
  /// source reports end of stream — which, for a resumable stream (a
  /// serve session's byte queue after WireReader::resume()), just means
  /// "no more complete input yet". Unlike run() this neither finish()es
  /// nor summarizes: callers pump again as input arrives and call
  /// finish() once the stream truly ends. Memo modes arm on the first
  /// call, with the same backend rules as run(). run() itself is
  /// pump-until-dry + finish(), so batch shapes and race callback timing
  /// are identical on both paths.
  void pump(EventSource &Source);

  /// Forwards the paper's §5.3 reclamation hook to backends that keep
  /// per-object state (sequential and parallel; FastTrack and atomicity
  /// key state by variable/transaction and ignore it). Serving sessions
  /// call this for client die notices so long-lived streams keep the
  /// detector footprint bounded. Races already found are retained.
  void objectDied(ObjectId Obj);

  /// Memoization counters (zero unless run() drove the Full memo loop).
  const PipelineMemoStats &memoStats() const { return MemoStats; }

  /// Resident bytes of the recycled pull batch — the piece of pipeline
  /// footprint a serving session must budget alongside the decoder's
  /// arenas and caches (EventBatch::memoryFootprint()).
  size_t batchFootprint() const { return PumpBatch.memoryFootprint(); }

  /// Flushes the parallel pipeline; must be called once the stream ends
  /// when events were pushed via onEvent(). Idempotent.
  void finish();

  size_t eventsProcessed() const { return Events; }
  StreamSummary summary() const;

  /// Results of the selected backend (empty vectors otherwise). finish()
  /// first when pushing events directly.
  const std::vector<CommutativityRace> &races() const;
  const std::vector<MemoryRace> &memoryRaces() const;
  const std::vector<AtomicityViolation> &violations() const;

  /// The parallel backend, or nullptr for other backends. Exposed so
  /// callers (crd profile) can pull the full metrics snapshot / batch
  /// spans. Quiesce with finish() before reading.
  const ParallelDetector *parallelDetector() const { return Par.get(); }

  /// The sequential backend, or nullptr for other backends. Exposed so
  /// callers (crd bench) can read the batched-kernel timing directly.
  const CommutativityRaceDetector *sequentialDetector() const {
    return Seq.get();
  }

  /// Emits the observability snapshot as a JSON document (schema:
  /// docs/observability.md). Valid on a quiesced pipeline — after run(),
  /// or finish() when events were pushed. Pass the \p Source the stream
  /// was pulled from to include decode-side counters (binary sources
  /// only). Works in every build; a CRD_METRICS=OFF build emits
  /// `"metrics_enabled": false` with structural counts live and
  /// everything timed zero.
  void writeMetricsJson(std::ostream &OS,
                        const EventSource *Source = nullptr) const;

private:
  void drainNewRaces();
  void tallyBatchKinds(const EventBatch &B);
  /// One step of the Full-memo chunk loop: replay a verified-repeat chunk
  /// whose summary footprint matches, interpret + record otherwise.
  /// Returns false when the reader has no staged chunk (end of stream).
  bool pumpChunk(WireReader &Reader);

  PipelineOptions Opts;
  ChunkMemoTable MemoTable;
  PipelineMemoStats MemoStats;
  std::unique_ptr<CommutativityRaceDetector> Seq;
  std::unique_ptr<ParallelDetector> Par;
  std::unique_ptr<FastTrackDetector> FT;
  std::unique_ptr<OnlineAtomicityChecker> Atom;
  std::function<void(const CommutativityRace &)> RaceCallback;
  std::function<void(const MemoryRace &)> MemoryRaceCallback;
  size_t Events = 0;
  size_t RacesSeen = 0; ///< Races already handed to the callback.
  size_t MemoryRacesSeen = 0;
  /// Recycled pull batch shared by pump()'s loops, kept as a member so a
  /// resumable stream's many short pump rounds stay allocation-free.
  EventBatch PumpBatch;
  /// Per-kind ingress counters (single writer: the feeding thread; inert
  /// when CRD_METRICS=0). Invoke + Sync + Mem + Tx == Events.
  metrics::Counter InvokeEvents;
  metrics::Counter SyncEvents;
  metrics::Counter MemEvents;
  metrics::Counter TxEvents;
};

} // namespace wire
} // namespace crd

#endif // CRD_WIRE_STREAMPIPELINE_H
