//===- wire/EventSource.cpp - Pull-based event streams -----------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "wire/EventSource.h"

#include "trace/TraceIO.h"
#include "wire/WireFormat.h"

using namespace crd;
using namespace crd::wire;

EventSource::~EventSource() = default;

bool TextStreamSource::next(Event &E) {
  if (Failed)
    return false;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (auto Parsed = parseTraceLine(Line, LineNo, Diags)) {
      E = std::move(*Parsed);
      return true;
    }
    if (Diags.hasErrors()) {
      Failed = true;
      return false;
    }
    // Blank or comment line: keep going.
  }
  return false;
}

namespace {

/// Owns the file stream alongside the wrapped source.
template <typename SourceT> class FileSource : public EventSource {
public:
  FileSource(std::ifstream In, DiagnosticEngine &Diags)
      : In(std::move(In)), Source(this->In, Diags) {}

  bool next(Event &E) override { return Source.next(E); }
  bool failed() const override { return Source.failed(); }
  const WireReader *wireReader() const override { return Source.wireReader(); }

private:
  std::ifstream In;
  SourceT Source;
};

} // namespace

bool wire::isWireFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  char Head[4] = {};
  In.read(Head, 4);
  return In.gcount() == 4 && Head[0] == Magic[0] && Head[1] == Magic[1] &&
         Head[2] == Magic[2] && Head[3] == Magic[3];
}

std::unique_ptr<EventSource> wire::openEventSource(const std::string &Path,
                                                   DiagnosticEngine &Diags) {
  std::ifstream Probe(Path, std::ios::binary);
  if (!Probe) {
    Diags.error({}, "cannot open trace file '" + Path + "'");
    return nullptr;
  }
  char Head[4] = {};
  Probe.read(Head, 4);
  bool Binary = Probe.gcount() == 4 && Head[0] == Magic[0] &&
                Head[1] == Magic[1] && Head[2] == Magic[2] &&
                Head[3] == Magic[3];
  Probe.close();

  std::ifstream In(Path, Binary ? std::ios::binary : std::ios::in);
  if (!In) {
    Diags.error({}, "cannot open trace file '" + Path + "'");
    return nullptr;
  }
  if (Binary)
    return std::make_unique<FileSource<BinaryStreamSource>>(std::move(In),
                                                            Diags);
  return std::make_unique<FileSource<TextStreamSource>>(std::move(In), Diags);
}
