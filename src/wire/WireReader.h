//===- wire/WireReader.h - Streaming binary trace reader --------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming decoder for the chunked binary trace format (WireFormat.h).
/// The reader holds exactly one chunk payload in memory at a time and
/// decodes events on demand — a whole-file Trace is never materialized.
/// Every structural problem (bad magic/version, truncated chunk, CRC
/// mismatch, malformed varint, dangling symbol reference, ...) is reported
/// as a diagnostic with the file offset, never as a crash: the reader is
/// the wire-fuzz target and must survive arbitrary bytes.
///
/// Lifetime contract for decoded events: an invoke event's argument and
/// return values live in a per-chunk arena owned by the reader, and the
/// Event holds an Action *view* into it. The view stays valid until a
/// next() call crosses into the following chunk (which resets the arena);
/// consumers that retain an event past that point must copy it — Action's
/// copy constructor deep-copies the values out. This removes the two heap
/// vector allocations per decoded invoke that used to dominate the
/// `crd check` profile: in the steady state the arena chunks and the
/// scratch buffer are all reused, so decoding allocates nothing.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_WIRE_WIREREADER_H
#define CRD_WIRE_WIREREADER_H

#include "support/Arena.h"
#include "support/Diagnostics.h"
#include "support/Metrics.h"
#include "trace/Event.h"
#include "trace/EventBatch.h"
#include "wire/WireFormat.h"

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace crd {
namespace wire {

/// Decode-side observability counters (docs/observability.md). Events and
/// Chunks mirror eventsRead()/chunksRead() and stay live in every build;
/// the rest read zero when CRD_METRICS=0. CrcErrors is at most 1 per
/// reader — the reader fails hard on the first CRC mismatch.
struct WireReaderStats {
  uint64_t Chunks = 0;
  uint64_t Events = 0;
  uint64_t CrcErrors = 0;
  uint64_t PayloadBytes = 0;    ///< Chunk payload bytes decoded (ex-headers).
  uint64_t Symbols = 0;         ///< Symbol-table entries across all chunks.
  uint64_t ArenaPeakBytes = 0;  ///< Peak per-chunk value-arena footprint.
};

/// Pull-based decoder over a binary trace stream.
class WireReader {
public:
  /// Reads and validates the file header immediately; on failure the
  /// reader starts out failed and next() returns false.
  WireReader(std::istream &In, DiagnosticEngine &Diags);

  /// Decodes the next event into \p E. Returns false at end of stream or
  /// on the first structural error (check failed() to distinguish).
  /// Invoke payloads are arena views — see the lifetime contract above.
  bool next(Event &E);

  /// Batch decode: appends up to \p MaxEvents events to \p B, crossing
  /// chunk boundaries as needed, and returns how many were appended (0 at
  /// end of stream or on a structural error). Unlike next(), the decoded
  /// invoke values are pinned in the BATCH's own arena (B.Values), so the
  /// batch is self-contained — it survives chunk turnover and can be
  /// handed to another thread wholesale. The per-chunk sync-event index
  /// (B.Kinds / B.SyncPos) is emitted during decode, where the kind byte
  /// is already in hand — no separate scan pass.
  size_t nextBatch(EventBatch &B, size_t MaxEvents);

  /// True once a structural error has been diagnosed; the stream position
  /// is then unspecified and next() keeps returning false.
  bool failed() const { return Failed; }

  size_t eventsRead() const { return NumEvents; }
  size_t chunksRead() const { return NumChunks; }

  /// Metrics snapshot; valid any time, complete once decoding finished.
  WireReaderStats stats() const {
    WireReaderStats S;
    S.Chunks = NumChunks;
    S.Events = NumEvents;
    S.CrcErrors = CrcErrors.get();
    S.PayloadBytes = PayloadBytes.get();
    S.Symbols = SymbolCount.get();
    S.ArenaPeakBytes = ArenaPeak;
    if (metrics::Enabled && ValueArena.bytesUsed() > S.ArenaPeakBytes)
      S.ArenaPeakBytes = ValueArena.bytesUsed(); // Current chunk still live.
    return S;
  }

private:
  bool loadChunk();
  bool decodeEvent(Event &E, Arena &Values);
  void fail(std::string Message);

  std::istream &In;
  DiagnosticEngine &Diags;
  std::string Payload;       ///< Current chunk payload.
  size_t Pos = 0;            ///< Decode offset within Payload.
  size_t ChunkBase = 0;      ///< File offset of the current payload.
  size_t FileOffset = 0;     ///< File offset past everything consumed.
  uint64_t EventsLeft = 0;   ///< Undecoded events in the current chunk.
  std::vector<Symbol> Syms;  ///< Current chunk's symbol table.
  Arena ValueArena;          ///< Decoded invoke values; reset per chunk.
  std::vector<Value> ScratchValues; ///< Reused value staging buffer.
  uint32_t PrevThread = 0;   ///< Thread delta predictor (resets per chunk).
  uint32_t PrevObject = 0;   ///< Object delta predictor (resets per chunk).
  size_t NumEvents = 0;
  size_t NumChunks = 0;
  bool Failed = false;
  /// Observability counters (single writer; no-ops when CRD_METRICS=0).
  metrics::Counter CrcErrors;
  metrics::Counter PayloadBytes;
  metrics::Counter SymbolCount;
  uint64_t ArenaPeak = 0;
};

/// Shape report of one chunk, as produced by scanWire (the `crd stats`
/// backend): sizes and entry counts, no event decoding.
struct WireChunkInfo {
  size_t Offset = 0;       ///< File offset of the chunk header.
  size_t PayloadBytes = 0; ///< Payload size (excluding the 8-byte header).
  size_t Events = 0;
  size_t Symbols = 0;
  size_t SymbolBytes = 0;  ///< Bytes of the symbol table section.
};

/// Whole-file shape summary.
struct WireFileInfo {
  std::vector<WireChunkInfo> Chunks;
  size_t TotalBytes = 0; ///< File header + all chunk headers + payloads.
  size_t TotalEvents = 0;

  double bytesPerEvent() const {
    return TotalEvents ? static_cast<double>(TotalBytes) /
                             static_cast<double>(TotalEvents)
                       : 0.0;
  }
};

/// Scans \p In chunk-by-chunk, validating headers and CRCs but decoding
/// only the per-chunk prologues. Returns nullopt after diagnosing a
/// structural error.
std::optional<WireFileInfo> scanWire(std::istream &In,
                                     DiagnosticEngine &Diags);

} // namespace wire
} // namespace crd

#endif // CRD_WIRE_WIREREADER_H
