//===- wire/WireReader.h - Streaming binary trace reader --------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming decoder for the chunked binary trace format (WireFormat.h).
/// The reader holds exactly one chunk payload in memory at a time and
/// decodes events on demand — a whole-file Trace is never materialized.
/// Every structural problem (bad magic/version, truncated chunk, CRC
/// mismatch, malformed varint, dangling symbol reference, ...) is reported
/// as a diagnostic with the file offset, never as a crash: the reader is
/// the wire-fuzz target and must survive arbitrary bytes.
///
/// Lifetime contract for decoded events: an invoke event's argument and
/// return values live in a per-chunk arena owned by the reader, and the
/// Event holds an Action *view* into it. The view stays valid until a
/// next() call crosses into the following chunk (which resets the arena);
/// consumers that retain an event past that point must copy it — Action's
/// copy constructor deep-copies the values out. This removes the two heap
/// vector allocations per decoded invoke that used to dominate the
/// `crd check` profile: in the steady state the arena chunks and the
/// scratch buffer are all reused, so decoding allocates nothing.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_WIRE_WIREREADER_H
#define CRD_WIRE_WIREREADER_H

#include "support/Arena.h"
#include "support/Diagnostics.h"
#include "support/Metrics.h"
#include "trace/Event.h"
#include "trace/EventBatch.h"
#include "wire/WireFormat.h"

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace crd {
namespace wire {

/// Decode-side observability counters (docs/observability.md). Events and
/// Chunks mirror eventsRead()/chunksRead() and stay live in every build;
/// CrcErrors/DigestErrors/PayloadBytes/Symbols/ArenaPeakBytes read zero
/// when CRD_METRICS=0, and the Memo* fields are always live (the memo
/// bench bars and tests gate on them in every build). CrcErrors and
/// DigestErrors are at most 1 per reader — the reader fails hard on the
/// first mismatch of either kind.
struct WireReaderStats {
  uint64_t Chunks = 0;
  uint64_t Events = 0;
  uint64_t CrcErrors = 0;
  uint64_t DigestErrors = 0;    ///< Chunk-header digest mismatches.
  uint64_t PayloadBytes = 0;    ///< Chunk payload bytes decoded (ex-headers).
  uint64_t Symbols = 0;         ///< Symbol-table entries across all chunks.
  uint64_t ArenaPeakBytes = 0;  ///< Peak per-chunk value-arena footprint.
  uint64_t MemoHits = 0;        ///< Chunks served from the decode cache.
  uint64_t MemoMisses = 0;      ///< Chunks cold-decoded while memoizing.
  uint64_t MemoBytesSaved = 0;  ///< Payload bytes whose decode was skipped.
  uint64_t MemoCacheEntries = 0;
  uint64_t MemoCacheBytes = 0;  ///< Payload + decoded-batch bytes cached.
};

/// How aggressively the reader (and the pipeline above it) memoizes
/// repeated chunks. Off = decode every chunk; Decode = digest-keyed decode
/// cache (repeated payloads skip varint/delta decode); Full = Decode plus
/// detector-level chunk summaries (StreamPipeline replays a sync-free
/// chunk's race effects without materializing its events).
enum class MemoMode { Off, Decode, Full };

/// Pull-based decoder over a binary trace stream.
class WireReader {
public:
  /// Reads and validates the file header immediately; on failure the
  /// reader starts out failed and next() returns false.
  WireReader(std::istream &In, DiagnosticEngine &Diags);

  /// Decodes the next event into \p E. Returns false at end of stream or
  /// on the first structural error (check failed() to distinguish).
  /// Invoke payloads are arena views — see the lifetime contract above.
  bool next(Event &E);

  /// Batch decode: appends up to \p MaxEvents events to \p B, crossing
  /// chunk boundaries as needed, and returns how many were appended (0 at
  /// end of stream or on a structural error). Unlike next(), the decoded
  /// invoke values are pinned in the BATCH's own arena (B.Values), so the
  /// batch is self-contained — it survives chunk turnover and can be
  /// handed to another thread wholesale. The per-chunk sync-event index
  /// (B.Kinds / B.SyncPos) is emitted during decode, where the kind byte
  /// is already in hand — no separate scan pass.
  size_t nextBatch(EventBatch &B, size_t MaxEvents);

  /// True once a structural error has been diagnosed; the stream position
  /// is then unspecified and next() keeps returning false.
  bool failed() const { return Failed; }

  /// Serving path: tells the reader the underlying stream has grown since
  /// next()/nextBatch()/beginChunk() last reported end of stream. End of
  /// stream is non-destructive when it falls on a chunk boundary (the
  /// reader probes for it before the first header byte), so resume()
  /// clears the stream's eof state and the next pull retries the
  /// chunk-header read where decoding stopped. The feeder must only ever
  /// expose whole chunks to the stream — EOF inside a chunk header or
  /// payload is diagnosed as truncation and is permanent. No-op after a
  /// structural failure.
  void resume();

  size_t eventsRead() const { return NumEvents; }
  size_t chunksRead() const { return NumChunks; }

  //===--------------------------------------------------------------------===//
  // Chunk memoization (docs/trace-format.md, docs/observability.md).
  //
  // With a MemoMode other than Off the reader works chunk-at-a-time: each
  // chunk is staged as a fully built EventBatch — decoded cold, or recycled
  // from a digest-keyed cache when the payload is byte-identical to one
  // already decoded (the full-payload compare makes 64-bit digest
  // collisions harmless). next()/nextBatch() then serve from the staged
  // batch, so a repeated chunk skips varint/delta decode entirely. Cache
  // entries are never evicted (insertion stops at a byte cap), so a digest
  // maps to one payload for the reader's lifetime — the invariant the
  // detector's summary table builds on.
  //===--------------------------------------------------------------------===//

  /// Must be set before the first next()/nextBatch() call.
  void setMemoMode(MemoMode M) { Memo = M; }
  MemoMode memoMode() const { return Memo; }

  /// What beginChunk() reveals about the staged chunk before any event is
  /// handed out — enough for a caller to decide replay-vs-interpret.
  struct ChunkView {
    uint64_t Digest = 0;    ///< Content digest (header-carried).
    bool HasDigest = false; ///< False for legacy digest-less chunks.
    /// The payload is byte-identical to the cached payload under Digest —
    /// i.e. this exact chunk was decoded before by this reader. Only a
    /// verified repeat is safe to key detector summaries by.
    bool VerifiedRepeat = false;
    size_t Events = 0;      ///< Events in the chunk.
  };

  /// Stages the next chunk and describes it (memo modes only). Repeated
  /// calls without consuming return the same view. Returns nullopt at end
  /// of stream or on a structural error.
  std::optional<ChunkView> beginChunk();

  /// Discards the staged chunk's remaining events (the caller replayed
  /// their effect from a summary instead of interpreting them).
  void skipChunk();

  /// Appends the staged chunk's remaining events to \p B (self-contained,
  /// sync index maintained) and returns how many were appended.
  size_t finishChunkInto(EventBatch &B);

  /// Metrics snapshot; valid any time, complete once decoding finished.
  WireReaderStats stats() const {
    WireReaderStats S;
    S.Chunks = NumChunks;
    S.Events = NumEvents;
    S.CrcErrors = CrcErrors.get();
    S.DigestErrors = DigestErrors.get();
    S.PayloadBytes = PayloadBytes.get();
    S.Symbols = SymbolCount.get();
    S.ArenaPeakBytes = ArenaPeak;
    if (metrics::Enabled && ValueArena.bytesUsed() > S.ArenaPeakBytes)
      S.ArenaPeakBytes = ValueArena.bytesUsed(); // Current chunk still live.
    S.MemoHits = MemoHits;
    S.MemoMisses = MemoMisses;
    S.MemoBytesSaved = MemoBytesSaved;
    S.MemoCacheEntries = Cache.size();
    S.MemoCacheBytes = CacheBytes;
    return S;
  }

private:
  /// One immortal decode-cache entry: the exact payload bytes (the hit
  /// verifier) and the chunk decoded as a self-contained batch.
  struct CacheEntry {
    std::string Payload;
    EventBatch Batch;
  };

  bool loadChunk();
  bool stageChunk();
  bool decodeEvent(Event &E, Arena &Values);
  void fail(std::string Message);

  std::istream &In;
  DiagnosticEngine &Diags;
  std::string Payload;       ///< Current chunk payload.
  size_t Pos = 0;            ///< Decode offset within Payload.
  size_t ChunkBase = 0;      ///< File offset of the current payload.
  size_t FileOffset = 0;     ///< File offset past everything consumed.
  uint64_t EventsLeft = 0;   ///< Undecoded events in the current chunk.
  std::vector<Symbol> Syms;  ///< Current chunk's symbol table.
  Arena ValueArena;          ///< Decoded invoke values; reset per chunk.
  std::vector<Value> ScratchValues; ///< Reused value staging buffer.
  uint32_t PrevThread = 0;   ///< Thread delta predictor (resets per chunk).
  uint32_t PrevObject = 0;   ///< Object delta predictor (resets per chunk).
  uint8_t Flags = 0;         ///< File-header flags (digest layout bit).
  size_t NumEvents = 0;
  size_t NumChunks = 0;
  bool Failed = false;
  /// Observability counters (single writer; no-ops when CRD_METRICS=0).
  metrics::Counter CrcErrors;
  metrics::Counter DigestErrors;
  metrics::Counter PayloadBytes;
  metrics::Counter SymbolCount;
  uint64_t ArenaPeak = 0;

  /// Memoization state. Staged points at the cache entry's batch on a hit
  /// or at StagingBatch after a cold decode; unique_ptr entries keep batch
  /// addresses stable across rehash. Insertion stops once CacheBytes
  /// crosses MemoCacheMaxBytes — never evict, so digest→payload→batch
  /// stays immutable for the reader's lifetime.
  static constexpr size_t MemoCacheMaxBytes = size_t(256) << 20;
  MemoMode Memo = MemoMode::Off;
  std::unordered_map<uint64_t, std::unique_ptr<CacheEntry>> Cache;
  size_t CacheBytes = 0;
  const EventBatch *Staged = nullptr;
  size_t StagedPos = 0;
  EventBatch StagingBatch;
  ChunkView OpenView;
  /// Memo counters: always live (bench bars and tests read them in
  /// metrics-off builds).
  uint64_t MemoHits = 0;
  uint64_t MemoMisses = 0;
  uint64_t MemoBytesSaved = 0;
};

/// Shape report of one chunk, as produced by scanWire (the `crd stats`
/// backend): sizes and entry counts, no event decoding.
struct WireChunkInfo {
  size_t Offset = 0;       ///< File offset of the chunk header.
  size_t PayloadBytes = 0; ///< Payload size (excluding the header).
  size_t Events = 0;
  size_t Symbols = 0;
  size_t SymbolBytes = 0;  ///< Bytes of the symbol table section.
  /// Content digest over the chunk's event bytes. Read from the header
  /// when the file carries digests (and verified), computed by the scan
  /// for legacy files — so repetition statistics work on any wire file.
  uint64_t Digest = 0;
  bool DigestInHeader = false;
};

/// Whole-file shape summary.
struct WireFileInfo {
  std::vector<WireChunkInfo> Chunks;
  size_t TotalBytes = 0; ///< File header + all chunk headers + payloads.
  size_t TotalEvents = 0;

  double bytesPerEvent() const {
    return TotalEvents ? static_cast<double>(TotalBytes) /
                             static_cast<double>(TotalEvents)
                       : 0.0;
  }
};

/// Scans \p In chunk-by-chunk, validating headers and CRCs but decoding
/// only the per-chunk prologues. Returns nullopt after diagnosing a
/// structural error.
std::optional<WireFileInfo> scanWire(std::istream &In,
                                     DiagnosticEngine &Diags);

} // namespace wire
} // namespace crd

#endif // CRD_WIRE_WIREREADER_H
