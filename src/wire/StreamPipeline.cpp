//===- wire/StreamPipeline.cpp - Streaming detection pipeline ----------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "wire/StreamPipeline.h"

#include <algorithm>

using namespace crd;
using namespace crd::wire;

StreamPipeline::StreamPipeline(PipelineOptions Opts) : Opts(Opts) {
  this->Opts.BatchSize = std::max<size_t>(1, Opts.BatchSize);
  switch (Opts.TheBackend) {
  case Backend::Sequential:
    Seq = std::make_unique<CommutativityRaceDetector>();
    break;
  case Backend::Parallel:
    Par = std::make_unique<ParallelDetector>(Opts.Shards,
                                             this->Opts.BatchSize);
    break;
  case Backend::FastTrack:
    FT = std::make_unique<FastTrackDetector>();
    break;
  case Backend::Atomicity:
    Atom = std::make_unique<OnlineAtomicityChecker>();
    break;
  }
}

void StreamPipeline::setDefaultProvider(const AccessPointProvider *Provider) {
  if (Seq)
    Seq->setDefaultProvider(Provider);
  if (Par)
    Par->setDefaultProvider(Provider);
  if (Atom)
    Atom->setDefaultProvider(Provider);
}

void StreamPipeline::bind(ObjectId Obj, const AccessPointProvider *Provider) {
  if (Seq)
    Seq->bind(Obj, Provider);
  if (Par)
    Par->bind(Obj, Provider);
  if (Atom)
    Atom->bind(Obj, Provider);
}

void StreamPipeline::drainNewRaces() {
  if (RaceCallback) {
    const std::vector<CommutativityRace> &All = races();
    for (; RacesSeen < All.size(); ++RacesSeen)
      RaceCallback(All[RacesSeen]);
  }
  if (MemoryRaceCallback) {
    const std::vector<MemoryRace> &All = memoryRaces();
    for (; MemoryRacesSeen < All.size(); ++MemoryRacesSeen)
      MemoryRaceCallback(All[MemoryRacesSeen]);
  }
}

void StreamPipeline::onEvent(const Event &E) {
  ++Events;
  if (Seq) {
    Seq->process(E);
    drainNewRaces();
    return;
  }
  if (Par) {
    // Streamed straight into the pipeline — the detector batches
    // internally and copies the action payload, so no Trace is ever
    // materialized here. Results surface at finish().
    Par->processEvent(E);
    return;
  }
  if (FT) {
    FT->process(E);
    drainNewRaces();
    return;
  }
  Atom->process(E);
}

void StreamPipeline::finish() {
  if (Par)
    Par->flush();
  drainNewRaces();
}

StreamSummary StreamPipeline::run(EventSource &Source) {
  Event E = Event::txBegin(ThreadId(0)); // Overwritten by next().
  while (Source.next(E))
    onEvent(E);
  finish();
  return summary();
}

const std::vector<CommutativityRace> &StreamPipeline::races() const {
  static const std::vector<CommutativityRace> Empty;
  if (Seq)
    return Seq->races();
  if (Par)
    return Par->races();
  return Empty;
}

const std::vector<MemoryRace> &StreamPipeline::memoryRaces() const {
  static const std::vector<MemoryRace> Empty;
  return FT ? FT->races() : Empty;
}

const std::vector<AtomicityViolation> &StreamPipeline::violations() const {
  static const std::vector<AtomicityViolation> Empty;
  return Atom ? Atom->violations() : Empty;
}

StreamSummary StreamPipeline::summary() const {
  StreamSummary S;
  S.Events = Events;
  S.Races = races().size();
  if (Seq)
    S.DistinctRacyObjects = Seq->distinctRacyObjects();
  if (Par)
    S.DistinctRacyObjects = Par->distinctRacyObjects();
  S.MemoryRaces = memoryRaces().size();
  if (FT)
    S.DistinctRacyVars = FT->distinctRacyVars();
  S.Violations = violations().size();
  return S;
}
