//===- wire/StreamPipeline.cpp - Streaming detection pipeline ----------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "wire/StreamPipeline.h"

#include "support/Metrics.h"

#include <algorithm>
#include <ostream>

using namespace crd;
using namespace crd::wire;

namespace {

const char *backendName(Backend B) {
  switch (B) {
  case Backend::Sequential:
    return "sequential";
  case Backend::Parallel:
    return "parallel";
  case Backend::FastTrack:
    return "fasttrack";
  case Backend::Atomicity:
    return "atomicity";
  }
  return "unknown";
}

const char *memoModeName(MemoMode M) {
  switch (M) {
  case MemoMode::Off:
    return "off";
  case MemoMode::Decode:
    return "decode";
  case MemoMode::Full:
    return "full";
  }
  return "unknown";
}

void writeEngineStats(metrics::JsonWriter &W, const Algorithm1Stats &S) {
  W.field("actions", S.Actions);
  W.field("conflict_checks", S.ConflictChecks);
  W.field("object_cache_hits", S.ObjectCacheHits);
  W.field("object_cache_misses", S.ObjectCacheMisses);
  W.field("activations", S.Activations);
  W.field("active_points", S.ActivePoints);
  W.field("kernel_events", S.KernelEvents);
  W.field("prefetches_issued", S.PrefetchesIssued);
  W.fieldArray("lookahead_occupancy", S.LookaheadOccupancy);
  W.field("lookahead_occupancy_max", S.LookaheadOccupancyMax);
}

} // namespace

StreamPipeline::StreamPipeline(PipelineOptions Opts) : Opts(Opts) {
  this->Opts.BatchSize = std::max<size_t>(1, Opts.BatchSize);
  switch (Opts.TheBackend) {
  case Backend::Sequential:
    Seq = std::make_unique<CommutativityRaceDetector>();
    break;
  case Backend::Parallel:
    Par = std::make_unique<ParallelDetector>(Opts.Shards, this->Opts.BatchSize,
                                             Opts.TraceBatches);
    break;
  case Backend::FastTrack:
    FT = std::make_unique<FastTrackDetector>();
    break;
  case Backend::Atomicity:
    Atom = std::make_unique<OnlineAtomicityChecker>();
    break;
  }
}

void StreamPipeline::setDefaultProvider(const AccessPointProvider *Provider) {
  if (Seq)
    Seq->setDefaultProvider(Provider);
  if (Par)
    Par->setDefaultProvider(Provider);
  if (Atom)
    Atom->setDefaultProvider(Provider);
}

void StreamPipeline::bind(ObjectId Obj, const AccessPointProvider *Provider) {
  if (Seq)
    Seq->bind(Obj, Provider);
  if (Par)
    Par->bind(Obj, Provider);
  if (Atom)
    Atom->bind(Obj, Provider);
}

void StreamPipeline::drainNewRaces() {
  if (RaceCallback) {
    const std::vector<CommutativityRace> &All = races();
    for (; RacesSeen < All.size(); ++RacesSeen)
      RaceCallback(All[RacesSeen]);
  }
  if (MemoryRaceCallback) {
    const std::vector<MemoryRace> &All = memoryRaces();
    for (; MemoryRacesSeen < All.size(); ++MemoryRacesSeen)
      MemoryRaceCallback(All[MemoryRacesSeen]);
  }
}

void StreamPipeline::onEvent(const Event &E) {
  ++Events;
  switch (E.kind()) {
  case EventKind::Invoke:
    InvokeEvents.inc();
    break;
  case EventKind::Fork:
  case EventKind::Join:
  case EventKind::Acquire:
  case EventKind::Release:
    SyncEvents.inc();
    break;
  case EventKind::Read:
  case EventKind::Write:
    MemEvents.inc();
    break;
  case EventKind::TxBegin:
  case EventKind::TxEnd:
    TxEvents.inc();
    break;
  }
  if (Seq) {
    Seq->process(E);
    drainNewRaces();
    return;
  }
  if (Par) {
    // Streamed straight into the pipeline — the detector batches
    // internally and copies the action payload, so no Trace is ever
    // materialized here. Results surface at finish().
    Par->processEvent(E);
    return;
  }
  if (FT) {
    FT->process(E);
    drainNewRaces();
    return;
  }
  Atom->process(E);
}

void StreamPipeline::tallyBatchKinds(const EventBatch &B) {
  // Ingress kind tally from the batch's kind bytes — one pass over a
  // dense byte array instead of a per-event switch.
  uint64_t Tally[4] = {0, 0, 0, 0};
  for (uint8_t K : B.Kinds) {
    unsigned Bucket =
        K < SyncKindBound
            ? 1u
            : (K == static_cast<uint8_t>(EventKind::Invoke)
                   ? 0u
                   : (K <= static_cast<uint8_t>(EventKind::Write) ? 2u : 3u));
    ++Tally[Bucket];
  }
  InvokeEvents.add(Tally[0]);
  SyncEvents.add(Tally[1]);
  MemEvents.add(Tally[2]);
  TxEvents.add(Tally[3]);
}

void StreamPipeline::processBatch(EventBatch &B) {
  if (B.empty())
    return;
  Events += B.size();
  if (metrics::Enabled)
    tallyBatchKinds(B);
  if (Par) {
    Par->processBatch(B);
    return;
  }
  if (Seq) {
    // Whole batch through the sequential detector's batched kernel; races
    // surface (and hit the callback) after the batch.
    Seq->processBatch(B);
  } else {
    for (const Event &E : B.Events) {
      if (FT)
        FT->process(E);
      else
        Atom->process(E);
    }
  }
  drainNewRaces();
  B.clear();
}

void StreamPipeline::finish() {
  if (Par)
    Par->flush();
  drainNewRaces();
}

bool StreamPipeline::pumpChunk(WireReader &Reader) {
  // Chunk-at-a-time: the reader stages each chunk (from its decode cache
  // when the payload repeats), and verified-repeat chunks consult the
  // summary table before any event is interpreted.
  std::optional<WireReader::ChunkView> View = Reader.beginChunk();
  if (!View)
    return false;
  if (View->VerifiedRepeat) {
    if (const ChunkSummary *S = MemoTable.find(View->Digest)) {
      if (S->Memoizable && Seq->tryReplayChunk(*S)) {
        Reader.skipChunk();
        ++MemoStats.SummaryHits;
        MemoStats.EventsReplayed += S->Events;
        Events += S->Events;
        if (metrics::Enabled) {
          InvokeEvents.add(S->Invokes);
          MemEvents.add(S->MemEvents);
          TxEvents.add(S->TxEvents);
        }
        drainNewRaces();
        return true;
      }
      if (S->Memoizable)
        ++MemoStats.SummaryFallbacks; // Entry-state footprint moved on.
    }
  }
  EventBatch &B = PumpBatch;
  B.clear();
  size_t N = Reader.finishChunkInto(B);
  if (N == 0)
    return true;
  CommutativityRaceDetector::MemoRecordToken Token = Seq->beginMemoRecord();
  for (const Event &E : B.Events)
    Seq->process(E);
  ++MemoStats.ChunksInterpreted;
  Events += N;
  if (metrics::Enabled)
    tallyBatchKinds(B);
  // Record (or re-record after a fallback) only for verified repeats:
  // a summary keyed by digest alone could be poisoned by a collision.
  // Sync-bearing chunks become sticky negative entries (never
  // memoizable); a sync-free chunk that merely mutated state this time
  // is retried on its next occurrence — repeated payloads often reach a
  // detector fixed point after a warm-up pass.
  if (View->VerifiedRepeat) {
    const ChunkSummary *Existing = MemoTable.find(View->Digest);
    if (!Existing || Existing->Memoizable) {
      ChunkSummary &S = MemoTable.insert(View->Digest);
      if (Seq->finishMemoRecord(Token, B, 0, N, S))
        ++MemoStats.SummaryRecords;
      else if (B.SyncPos.empty())
        MemoTable.erase(View->Digest);
    }
  }
  drainNewRaces();
  return true;
}

void StreamPipeline::pump(EventSource &Source) {
  WireReader *Reader =
      Opts.Memo != MemoMode::Off ? Source.memoReader() : nullptr;
  if (Reader) {
    // Decode-level caching helps every backend; the summary loop requires
    // the sequential detector (chunk replay needs exclusive, in-order
    // access to the full detector state).
    Reader->setMemoMode(Opts.Memo == MemoMode::Full && Seq ? MemoMode::Full
                                                           : MemoMode::Decode);
    if (Opts.Memo == MemoMode::Full && Seq) {
      while (pumpChunk(*Reader)) {
      }
      return;
    }
  }
  if (Par) {
    // Batched pull: whole event batches flow from the source into the
    // shard pipeline, complete with the per-chunk sync index the decoder
    // emitted (or the SIMD kind-scan built) — the pre-pass jumps straight
    // to the sync events without touching anything per event here. The
    // detector hands back a recycled batch each round, so the loop is
    // allocation-free in the steady state.
    while (size_t N = Source.nextBatch(PumpBatch, Opts.BatchSize)) {
      Events += N;
      if (metrics::Enabled)
        tallyBatchKinds(PumpBatch);
      Par->processBatch(PumpBatch);
    }
    return;
  }
  if (Seq) {
    // Batched pull for the sequential backend too: whole event batches
    // flow into the detector's kinded kernel (one SIMD kind scan per
    // batch, runs through the prefetch-pipelined engine), with the batch
    // recycled each round so the loop is allocation-free in the steady
    // state. Race callbacks fire after each batch.
    while (size_t N = Source.nextBatch(PumpBatch, Opts.BatchSize)) {
      Events += N;
      if (metrics::Enabled)
        tallyBatchKinds(PumpBatch);
      Seq->processBatch(PumpBatch);
      drainNewRaces();
      PumpBatch.clear();
    }
    return;
  }
  Event E = Event::txBegin(ThreadId(0)); // Overwritten by next().
  while (Source.next(E))
    onEvent(E);
}

void StreamPipeline::objectDied(ObjectId Obj) {
  if (Seq)
    Seq->objectDied(Obj);
  if (Par)
    Par->objectDied(Obj);
}

StreamSummary StreamPipeline::run(EventSource &Source) {
  pump(Source);
  finish();
  return summary();
}

const std::vector<CommutativityRace> &StreamPipeline::races() const {
  static const std::vector<CommutativityRace> Empty;
  if (Seq)
    return Seq->races();
  if (Par)
    return Par->races();
  return Empty;
}

const std::vector<MemoryRace> &StreamPipeline::memoryRaces() const {
  static const std::vector<MemoryRace> Empty;
  return FT ? FT->races() : Empty;
}

const std::vector<AtomicityViolation> &StreamPipeline::violations() const {
  static const std::vector<AtomicityViolation> Empty;
  return Atom ? Atom->violations() : Empty;
}

StreamSummary StreamPipeline::summary() const {
  StreamSummary S;
  S.Events = Events;
  S.Races = races().size();
  if (Seq)
    S.DistinctRacyObjects = Seq->distinctRacyObjects();
  if (Par)
    S.DistinctRacyObjects = Par->distinctRacyObjects();
  S.MemoryRaces = memoryRaces().size();
  if (FT)
    S.DistinctRacyVars = FT->distinctRacyVars();
  S.Violations = violations().size();
  return S;
}

void StreamPipeline::writeMetricsJson(std::ostream &OS,
                                      const EventSource *Source) const {
  metrics::JsonWriter W(OS);
  W.beginObject();
  W.field("metrics_enabled", metrics::Enabled);
  W.field("backend", backendName(Opts.TheBackend));
  W.field("events", static_cast<uint64_t>(Events));

  W.key("events_by_kind");
  W.beginObject();
  W.field("invoke", InvokeEvents.get());
  W.field("sync", SyncEvents.get());
  W.field("mem", MemEvents.get());
  W.field("tx", TxEvents.get());
  W.endObject();

  StreamSummary Sum = summary();
  W.key("summary");
  W.beginObject();
  W.field("races", static_cast<uint64_t>(Sum.Races));
  W.field("distinct_racy_objects",
          static_cast<uint64_t>(Sum.DistinctRacyObjects));
  W.field("memory_races", static_cast<uint64_t>(Sum.MemoryRaces));
  W.field("distinct_racy_vars", static_cast<uint64_t>(Sum.DistinctRacyVars));
  W.field("violations", static_cast<uint64_t>(Sum.Violations));
  W.endObject();

  W.key("memo");
  W.beginObject();
  W.field("mode", memoModeName(Opts.Memo));
  W.field("summary_hits", MemoStats.SummaryHits);
  W.field("summary_records", MemoStats.SummaryRecords);
  W.field("summary_fallbacks", MemoStats.SummaryFallbacks);
  W.field("events_replayed", MemoStats.EventsReplayed);
  W.field("chunks_interpreted", MemoStats.ChunksInterpreted);
  W.field("summary_entries", static_cast<uint64_t>(MemoTable.size()));
  W.endObject();

  if (const WireReader *Reader = Source ? Source->wireReader() : nullptr) {
    WireReaderStats RS = Reader->stats();
    W.key("source");
    W.beginObject();
    W.field("chunks", RS.Chunks);
    W.field("events", RS.Events);
    W.field("crc_errors", RS.CrcErrors);
    W.field("digest_errors", RS.DigestErrors);
    W.field("payload_bytes", RS.PayloadBytes);
    W.field("symbols", RS.Symbols);
    W.field("arena_peak_bytes", RS.ArenaPeakBytes);
    W.field("memo_hits", RS.MemoHits);
    W.field("memo_misses", RS.MemoMisses);
    W.field("memo_bytes_saved", RS.MemoBytesSaved);
    W.field("memo_cache_entries", RS.MemoCacheEntries);
    W.field("memo_cache_bytes", RS.MemoCacheBytes);
    W.endObject();
  }

  W.key("detector");
  W.beginObject();
  W.field("kind", backendName(Opts.TheBackend));
  if (Seq) {
    writeEngineStats(W, Seq->engineStats());
    W.field("kernel_ns", Seq->kernelNs());
  }
  if (Par) {
    ParallelMetrics M = Par->metricsSnapshot();
    W.field("shards", static_cast<uint64_t>(Par->shards()));
    W.field("batch_size", static_cast<uint64_t>(Par->batchSize()));
    W.field("actions", M.Actions);
    W.field("sync_events", M.SyncEvents);
    // The acceptance metric of the run-based pre-pass: the fraction of the
    // trace that stays sequential. prepass_events_visited counts exactly
    // the events the caller thread ran the clock machine on.
    W.field("sync_fraction",
            M.Events ? static_cast<double>(M.SyncEvents) /
                           static_cast<double>(M.Events)
                     : 0.0);
    W.field("prepass_events_visited", M.PrepassEventsVisited);
    W.field("clock_snapshots", M.ClockSnapshots);
    W.field("clock_maps", M.ClockMaps);
    W.field("runs", M.Runs);
    W.fieldArray("run_length_pow2", M.RunLengthPow2);
    W.field("run_length_max", M.RunLengthMax);
    W.field("pre_pass_ns", M.PrePassNs);
    W.field("flush_wait_ns", M.FlushWaitNs);
    W.field("merge_ns", M.MergeNs);
    W.field("batch_spans", static_cast<uint64_t>(M.Spans.size()));
    W.field("prepass_spans", static_cast<uint64_t>(M.PrePassSpans.size()));
    W.key("per_shard");
    W.beginArray();
    for (size_t I = 0; I != M.Shards.size(); ++I) {
      const ParallelShardMetrics &SM = M.Shards[I];
      W.beginObject();
      W.field("shard", static_cast<uint64_t>(I));
      W.field("routed_events", SM.RoutedEvents);
      W.field("batches", SM.Batches);
      W.field("merged_races", SM.MergedRaces);
      W.field("ring_full_stalls", SM.RingFullStalls);
      W.field("stall_ns", SM.StallNs);
      W.field("worker_ns", SM.WorkerNs);
      W.key("engine");
      W.beginObject();
      writeEngineStats(W, SM.Engine);
      W.endObject();
      W.fieldArray("occupancy", SM.Occupancy);
      W.field("occupancy_max", SM.OccupancyMax);
      W.fieldArray("fill_deciles", SM.FillDeciles);
      W.endObject();
    }
    W.endArray();
  }
  if (FT) {
    FastTrackStats FS = FT->stats();
    W.field("reads", FS.Reads);
    W.field("writes", FS.Writes);
    W.field("table_probes", FS.TableProbes);
    W.field("same_epoch_hits", FS.SameEpochHits);
  }
  // The atomicity backend has no counters beyond the summary yet.
  W.endObject();

  W.endObject();
  OS << '\n';
}
