//===- wire/Crc32.cpp - CRC-32 checksums -------------------------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "wire/Crc32.h"

#include <array>

using namespace crd;

namespace {

constexpr std::array<uint32_t, 256> makeTable() {
  std::array<uint32_t, 256> Table{};
  for (uint32_t I = 0; I != 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K != 8; ++K)
      C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
    Table[I] = C;
  }
  return Table;
}

constexpr std::array<uint32_t, 256> Crc32Table = makeTable();

} // namespace

uint32_t wire::crc32(const void *Data, size_t Size) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint32_t C = 0xFFFFFFFFu;
  for (size_t I = 0; I != Size; ++I)
    C = Crc32Table[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}
