//===- wire/Crc32.h - CRC-32 checksums --------------------------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CRC-32 (IEEE 802.3, polynomial 0xEDB88320) used to checksum every
/// chunk payload of the binary wire format, so a reader detects truncation
/// and corruption before decoding a single event.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_WIRE_CRC32_H
#define CRD_WIRE_CRC32_H

#include <cstddef>
#include <cstdint>

namespace crd {
namespace wire {

/// CRC-32 of \p Size bytes at \p Data.
uint32_t crc32(const void *Data, size_t Size);

} // namespace wire
} // namespace crd

#endif // CRD_WIRE_CRC32_H
