//===- wire/Varint.h - LEB128 varint / zigzag codec -------------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The integer codec underlying the binary wire format: unsigned LEB128
/// varints (7 payload bits per byte, high bit = continuation) and zigzag
/// mapping for signed deltas, so small magnitudes of either sign encode in
/// one byte. Decoding is bounds- and overflow-checked: the reader must be
/// able to consume adversarial bytes (the wire-fuzz target) without UB.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_WIRE_VARINT_H
#define CRD_WIRE_VARINT_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace crd {
namespace wire {

/// Appends the LEB128 encoding of \p V to \p Out (1–10 bytes).
inline void putVarint(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<char>((V & 0x7F) | 0x80));
    V >>= 7;
  }
  Out.push_back(static_cast<char>(V));
}

/// Maps a signed delta onto unsigned so small magnitudes stay small:
/// 0, -1, 1, -2, 2, ... → 0, 1, 2, 3, 4, ...
inline uint64_t zigzag(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^
         static_cast<uint64_t>(V >> 63);
}

inline int64_t unzigzag(uint64_t V) {
  return static_cast<int64_t>(V >> 1) ^ -static_cast<int64_t>(V & 1);
}

inline void putSVarint(std::string &Out, int64_t V) {
  putVarint(Out, zigzag(V));
}

/// Bounds-checked forward reader over a byte buffer (one chunk payload).
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  size_t offset() const { return Pos; }
  size_t remaining() const { return Size - Pos; }
  bool atEnd() const { return Pos == Size; }

  std::optional<uint8_t> byte() {
    if (Pos == Size)
      return std::nullopt;
    return Data[Pos++];
  }

  /// Decodes one LEB128 varint. Fails on buffer exhaustion and on
  /// encodings wider than 64 bits.
  std::optional<uint64_t> varint() {
    uint64_t Result = 0;
    for (unsigned Shift = 0; Shift < 64; Shift += 7) {
      if (Pos == Size)
        return std::nullopt;
      uint8_t B = Data[Pos++];
      uint64_t Payload = B & 0x7F;
      if (Shift == 63 && Payload > 1)
        return std::nullopt; // Would overflow 64 bits.
      Result |= Payload << Shift;
      if (!(B & 0x80))
        return Result;
    }
    return std::nullopt; // Continuation bit never cleared.
  }

  std::optional<int64_t> svarint() {
    auto V = varint();
    if (!V)
      return std::nullopt;
    return unzigzag(*V);
  }

  /// Returns a view of the next \p N raw bytes, or nullopt if fewer remain.
  std::optional<std::pair<const uint8_t *, size_t>> bytes(size_t N) {
    if (N > remaining())
      return std::nullopt;
    const uint8_t *P = Data + Pos;
    Pos += N;
    return std::make_pair(P, N);
  }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
};

} // namespace wire
} // namespace crd

#endif // CRD_WIRE_VARINT_H
