//===- wire/WireWriter.h - Streaming binary trace writer --------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming encoder for the chunked binary trace format (WireFormat.h).
/// Events are appended one at a time; every EventsPerChunk of them are
/// flushed as one self-contained chunk with its own CRC-32 and symbol
/// table. The writer never materializes a Trace, so it can sit directly
/// behind a live SimRuntime sink (WireSink) or behind a text parser.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_WIRE_WIREWRITER_H
#define CRD_WIRE_WIREWRITER_H

#include "runtime/Sink.h"
#include "trace/Event.h"
#include "wire/WireFormat.h"

#include <iosfwd>
#include <vector>

namespace crd {
namespace wire {

/// Encodes an event stream into the binary wire format.
class WireWriter {
public:
  /// Writes the file header to \p OS immediately. \p EventsPerChunk is
  /// clamped to ≥ 1. By default every chunk header carries a content
  /// digest over its event bytes (FlagChunkDigests) so readers can
  /// memoize repeated chunks; \p WithDigests = false writes the legacy
  /// digest-less layout (8-byte chunk headers, flags byte 0).
  explicit WireWriter(std::ostream &OS,
                      size_t EventsPerChunk = DefaultEventsPerChunk,
                      bool WithDigests = true);

  /// finish() is idempotent; the destructor flushes a forgotten tail chunk.
  ~WireWriter();
  WireWriter(const WireWriter &) = delete;
  WireWriter &operator=(const WireWriter &) = delete;

  /// Buffers one event, flushing a chunk when the buffer fills.
  void append(const Event &E);

  /// Encodes a whole trace (convenience; still chunk-at-a-time).
  void writeTrace(const Trace &T);

  /// Flushes the pending partial chunk, if any. Must be called (or the
  /// writer destroyed) before the output is complete.
  void finish();

  size_t eventsWritten() const { return NumEvents; }
  size_t chunksWritten() const { return NumChunks; }
  /// Bytes emitted so far, including the file header (finished chunks
  /// only; pending buffered events are not counted).
  size_t bytesWritten() const { return NumBytes; }

private:
  void flushChunk();

  std::ostream &OS;
  size_t EventsPerChunk;
  bool WithDigests;
  std::vector<Event> Pending;
  size_t NumEvents = 0;
  size_t NumChunks = 0;
  size_t NumBytes = 0;
  bool Finished = false;
};

/// EventSink adapter: records a simulated execution directly as a binary
/// trace, the online shape the paper's RD2 had behind RoadRunner.
class WireSink : public EventSink {
public:
  explicit WireSink(WireWriter &Writer) : Writer(Writer) {}

  void onEvent(const Event &E) override { Writer.append(E); }

private:
  WireWriter &Writer;
};

} // namespace wire
} // namespace crd

#endif // CRD_WIRE_WIREWRITER_H
