//===- wire/EventSource.h - Pull-based event streams ------------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ingestion half of the streaming pipeline: an EventSource yields one
/// decoded Event at a time, regardless of where the execution comes from —
/// a binary wire file (WireReader), a textual trace file (line-by-line
/// parse), or an already-materialized Trace. openEventSource() sniffs the
/// file magic so every tool accepts both on-disk formats transparently.
///
/// The push-based complement for live executions is an EventSink
/// (runtime/Sink.h): StreamPipeline implements both, so a SimRuntime can
/// feed it directly while offline tools pull from a source.
///
/// Lifetime: sources may hand out invoke events whose value payloads view
/// decoder-owned storage (WireReader's per-chunk arena). An event is valid
/// until the next next() call; consumers that retain one longer copy it
/// (Action's copy constructor detaches from the arena).
///
//===----------------------------------------------------------------------===//

#ifndef CRD_WIRE_EVENTSOURCE_H
#define CRD_WIRE_EVENTSOURCE_H

#include "support/Diagnostics.h"
#include "trace/Trace.h"
#include "wire/WireReader.h"

#include <fstream>
#include <memory>
#include <string>

namespace crd {
namespace wire {

/// Yields the events of one execution in trace order.
class EventSource {
public:
  virtual ~EventSource();

  /// Produces the next event. Returns false at end of stream or on a
  /// diagnosed input error (check failed()).
  virtual bool next(Event &E) = 0;

  /// Batch pull: appends up to \p MaxEvents events to \p B and returns how
  /// many were appended (0 at end of stream / on error). The batch owns
  /// every payload (B pins invoke values into its own arena) and carries
  /// the kind array + sync-event index the run-based parallel pipeline
  /// consumes. The default pulls next() one event at a time and builds the
  /// sync index with the SIMD kind-scan; the binary source overrides this
  /// with the decoder's chunk-at-a-time path, which emits the index during
  /// decode.
  virtual size_t nextBatch(EventBatch &B, size_t MaxEvents) {
    Event E = Event::txBegin(ThreadId(0)); // Overwritten by next().
    size_t N = 0;
    while (N != MaxEvents && next(E)) {
      B.append(E);
      ++N;
    }
    B.finalizeSyncIndex();
    return N;
  }

  /// True once the underlying input was diagnosed as malformed.
  virtual bool failed() const { return false; }

  /// The binary decoder behind this source, when there is one — lets the
  /// observability snapshot report decode counters without knowing how
  /// many wrappers deep the WireReader sits. Wrapper sources forward.
  virtual const WireReader *wireReader() const { return nullptr; }

  /// Mutable access to the binary decoder for memoization control
  /// (setMemoMode, the chunk handshake). Null for sources with no wire
  /// reader — memo modes then degrade to plain streaming.
  virtual WireReader *memoReader() { return nullptr; }
};

/// Streams an in-memory Trace (e.g. a TraceRecorder capture).
class TraceSource : public EventSource {
public:
  explicit TraceSource(const Trace &T) : T(T) {}

  bool next(Event &E) override {
    if (Pos == T.size())
      return false;
    E = T[Pos++];
    return true;
  }

private:
  const Trace &T;
  size_t Pos = 0;
};

/// Streams a textual trace line-by-line; no whole-file buffer, no Trace.
class TextStreamSource : public EventSource {
public:
  TextStreamSource(std::istream &In, DiagnosticEngine &Diags)
      : In(In), Diags(Diags) {}

  bool next(Event &E) override;
  bool failed() const override { return Failed; }

private:
  std::istream &In;
  DiagnosticEngine &Diags;
  std::string Line;
  uint32_t LineNo = 0;
  bool Failed = false;
};

/// Streams a binary wire trace chunk-at-a-time.
class BinaryStreamSource : public EventSource {
public:
  BinaryStreamSource(std::istream &In, DiagnosticEngine &Diags)
      : Reader(In, Diags) {}

  bool next(Event &E) override { return Reader.next(E); }
  size_t nextBatch(EventBatch &B, size_t MaxEvents) override {
    return Reader.nextBatch(B, MaxEvents);
  }
  bool failed() const override { return Reader.failed(); }
  const WireReader *wireReader() const override { return &Reader; }
  WireReader *memoReader() override { return &Reader; }

  const WireReader &reader() const { return Reader; }

private:
  WireReader Reader;
};

/// Opens \p Path and returns the matching source: binary when the file
/// starts with the wire magic, textual otherwise. Returns nullptr (with a
/// diagnostic) when the file cannot be opened.
std::unique_ptr<EventSource> openEventSource(const std::string &Path,
                                             DiagnosticEngine &Diags);

/// True when \p Path starts with the binary wire magic.
bool isWireFile(const std::string &Path);

} // namespace wire
} // namespace crd

#endif // CRD_WIRE_EVENTSOURCE_H
