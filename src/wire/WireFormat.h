//===- wire/WireFormat.h - Binary trace format constants --------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constants of the chunked binary trace encoding (the full specification
/// lives in docs/trace-format.md):
///
///   file   := "CRDW" version flags chunk*
///   chunk  := u32le payload_size | u32le crc32(payload)
///             | u64le digest (iff flags bit 0) | payload
///   payload:= varint event_count
///             varint sym_count  (sym_count × (varint len, len bytes))
///             event_count × event
///
/// Every chunk is self-contained: its symbol table interns exactly the
/// strings its events reference (local ids in order of first use), and the
/// thread/object delta predictors reset at chunk boundaries, so a reader
/// can resynchronize — and a future networked producer can drop or reorder
/// whole chunks — without cross-chunk decoder state.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_WIRE_WIREFORMAT_H
#define CRD_WIRE_WIREFORMAT_H

#include <cstddef>
#include <cstdint>

namespace crd {
namespace wire {

/// File magic: the first four bytes of every binary trace.
inline constexpr char Magic[4] = {'C', 'R', 'D', 'W'};

/// Format version byte following the magic. Readers reject other versions.
inline constexpr uint8_t Version = 1;

/// Bytes before the first chunk: magic + version + flags.
inline constexpr size_t FileHeaderSize = 6;

/// Bytes of a chunk header: u32le payload size + u32le payload CRC-32.
inline constexpr size_t ChunkHeaderSize = 8;

/// File-header flag bit: every chunk header carries a u64le content digest
/// after the CRC (DigestChunkHeaderSize applies). The digest is
/// hashBytes64 over the chunk's event bytes — the payload AFTER the
/// event-count/symbol-table prologue — so two chunks encoding the same
/// logical events digest identically even though the digest ignores
/// prologue framing. Readers recompute and reject mismatches exactly like
/// a CRC failure; unknown flag bits are rejected outright.
inline constexpr uint8_t FlagChunkDigests = 0x01;

/// All flag bits a Version-1 reader understands.
inline constexpr uint8_t KnownFlags = FlagChunkDigests;

/// Bytes of a chunk header when FlagChunkDigests is set: size + CRC + the
/// u64le content digest.
inline constexpr size_t DigestChunkHeaderSize = 16;

/// Upper bound a reader accepts for one chunk payload. Writers stay far
/// below this; the cap keeps a corrupted/adversarial size field from
/// forcing a multi-gigabyte allocation before the CRC can catch it.
inline constexpr uint32_t MaxChunkPayload = 64u << 20;

/// Default number of events buffered per chunk by WireWriter.
inline constexpr size_t DefaultEventsPerChunk = 4096;

/// Event opcodes. Deliberately decoupled from EventKind's numeric values:
/// the in-memory enum may be reordered freely without a wire version bump.
enum class Opcode : uint8_t {
  Fork = 0,
  Join = 1,
  Acquire = 2,
  Release = 3,
  Invoke = 4,
  Read = 5,
  Write = 6,
  TxBegin = 7,
  TxEnd = 8,
};

/// Value tags. Nil/False/True carry no payload; Int is a zigzag varint;
/// Str is a varint local symbol id into the chunk's table.
enum class ValueTag : uint8_t {
  Nil = 0,
  False = 1,
  True = 2,
  Int = 3,
  Str = 4,
};

} // namespace wire
} // namespace crd

#endif // CRD_WIRE_WIREFORMAT_H
