//===- wire/WireReader.cpp - Streaming binary trace reader -------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "wire/WireReader.h"

#include "support/Hashing.h"
#include "wire/Crc32.h"
#include "wire/Varint.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <limits>
#include <sstream>

using namespace crd;
using namespace crd::wire;

namespace {

/// Structural errors carry the byte offset instead of a line/column; the
/// offset is packed into the diagnostic text (SourceLocation is line
/// oriented and deliberately left invalid).
std::string atOffset(size_t Offset, const std::string &Message) {
  std::ostringstream OS;
  OS << Message << " (at byte " << Offset << ")";
  return OS.str();
}

/// Reads a u32le chunk-header field. Returns nullopt at clean EOF before
/// the first byte, -1-style failure via the bool otherwise.
enum class HeaderRead { Ok, Eof, Truncated };

HeaderRead readU32le(std::istream &In, uint32_t &V) {
  char B[4];
  In.read(B, 4);
  std::streamsize Got = In.gcount();
  if (Got == 0)
    return HeaderRead::Eof;
  if (Got != 4)
    return HeaderRead::Truncated;
  V = static_cast<uint8_t>(B[0]) | (static_cast<uint8_t>(B[1]) << 8) |
      (static_cast<uint8_t>(B[2]) << 16) |
      (static_cast<uint32_t>(static_cast<uint8_t>(B[3])) << 24);
  return HeaderRead::Ok;
}

HeaderRead readU64le(std::istream &In, uint64_t &V) {
  char B[8];
  In.read(B, 8);
  std::streamsize Got = In.gcount();
  if (Got == 0)
    return HeaderRead::Eof;
  if (Got != 8)
    return HeaderRead::Truncated;
  V = 0;
  for (unsigned I = 0; I != 8; ++I)
    V |= uint64_t(static_cast<uint8_t>(B[I])) << (8 * I);
  return HeaderRead::Ok;
}

/// Reads one chunk (header + CRC-validated payload) into \p Payload; the
/// header carries a content digest iff \p WithDigest (the file-header
/// flag). Returns false at clean EOF; on error, reports and sets
/// \p Failed, and additionally sets \p *CrcError when the failure is a CRC
/// mismatch.
bool readChunk(std::istream &In, DiagnosticEngine &Diags, size_t &FileOffset,
               bool WithDigest, uint64_t &Digest, std::string &Payload,
               bool &Failed, bool *CrcError = nullptr) {
  size_t HeaderSize = WithDigest ? DigestChunkHeaderSize : ChunkHeaderSize;
  uint32_t PayloadSize = 0, Crc = 0;
  HeaderRead First = readU32le(In, PayloadSize);
  if (First == HeaderRead::Eof)
    return false;
  if (First == HeaderRead::Truncated ||
      readU32le(In, Crc) != HeaderRead::Ok ||
      (WithDigest && readU64le(In, Digest) != HeaderRead::Ok)) {
    Diags.error({}, atOffset(FileOffset, "truncated chunk header"));
    Failed = true;
    return false;
  }
  if (PayloadSize > MaxChunkPayload) {
    Diags.error({}, atOffset(FileOffset, "chunk payload size " +
                                             std::to_string(PayloadSize) +
                                             " exceeds limit"));
    Failed = true;
    return false;
  }
  FileOffset += HeaderSize;

  Payload.resize(PayloadSize);
  In.read(Payload.data(), static_cast<std::streamsize>(PayloadSize));
  if (In.gcount() != static_cast<std::streamsize>(PayloadSize)) {
    Diags.error({}, atOffset(FileOffset, "truncated chunk payload: header "
                                         "promises " +
                                             std::to_string(PayloadSize) +
                                             " bytes"));
    Failed = true;
    return false;
  }
  uint32_t Actual = crc32(Payload.data(), Payload.size());
  if (Actual != Crc) {
    if (CrcError)
      *CrcError = true;
    std::ostringstream OS;
    OS << "chunk CRC mismatch: header 0x" << std::hex << Crc << ", payload 0x"
       << Actual;
    Diags.error({}, atOffset(FileOffset - HeaderSize, OS.str()));
    Failed = true;
    return false;
  }
  return true;
}

bool checkFileHeader(std::istream &In, DiagnosticEngine &Diags,
                     uint8_t &Flags) {
  char Header[FileHeaderSize];
  In.read(Header, FileHeaderSize);
  if (In.gcount() != static_cast<std::streamsize>(FileHeaderSize) ||
      Header[0] != Magic[0] || Header[1] != Magic[1] || Header[2] != Magic[2] ||
      Header[3] != Magic[3]) {
    Diags.error({}, "not a CRD binary trace (bad magic)");
    return false;
  }
  uint8_t Ver = static_cast<uint8_t>(Header[4]);
  if (Ver != Version) {
    Diags.error({}, "unsupported wire format version " + std::to_string(Ver) +
                        " (expected " + std::to_string(Version) + ")");
    return false;
  }
  Flags = static_cast<uint8_t>(Header[5]);
  if (Flags & ~KnownFlags) {
    Diags.error({}, "unsupported wire format flags 0x" + [&] {
      std::ostringstream OS;
      OS << std::hex << unsigned(Flags);
      return OS.str();
    }());
    return false;
  }
  return true;
}

/// Validates a chunk's header digest against its event bytes (the payload
/// after \p EventBytesPos). A mismatch is structural corruption of the
/// digest field — the CRC covers the payload but not the header — and is
/// rejected exactly like a CRC failure.
bool checkChunkDigest(const std::string &Payload, size_t EventBytesPos,
                      uint64_t Expected, size_t ChunkBase,
                      DiagnosticEngine &Diags, bool &Failed) {
  uint64_t Actual = hashBytes64(Payload.data() + EventBytesPos,
                                Payload.size() - EventBytesPos);
  if (Actual == Expected)
    return true;
  std::ostringstream OS;
  OS << "chunk digest mismatch: header 0x" << std::hex << Expected
     << ", events 0x" << Actual;
  Diags.error({}, atOffset(ChunkBase, OS.str()));
  Failed = true;
  return false;
}

/// Decodes the symbol-table section. Returns false on malformed input.
bool decodeSymbolTable(ByteReader &R, std::vector<Symbol> &Syms,
                       size_t *SymbolBytes = nullptr) {
  size_t Begin = R.offset();
  auto Count = R.varint();
  if (!Count || *Count > R.remaining()) // Each symbol needs ≥ 1 byte.
    return false;
  Syms.clear();
  Syms.reserve(static_cast<size_t>(*Count));
  for (uint64_t I = 0; I != *Count; ++I) {
    auto Len = R.varint();
    if (!Len)
      return false;
    auto Bytes = R.bytes(static_cast<size_t>(*Len));
    if (!Bytes)
      return false;
    Syms.push_back(symbol(std::string_view(
        reinterpret_cast<const char *>(Bytes->first), Bytes->second)));
  }
  if (SymbolBytes)
    *SymbolBytes = R.offset() - Begin;
  return true;
}

} // namespace

WireReader::WireReader(std::istream &In, DiagnosticEngine &Diags)
    : In(In), Diags(Diags) {
  if (!checkFileHeader(In, Diags, Flags))
    Failed = true;
  FileOffset = FileHeaderSize;
}

void WireReader::resume() {
  if (Failed)
    return;
  // A clean end of stream leaves eofbit (and failbit, from the short
  // read) set on the istream; clear both so the next header probe sees
  // whatever bytes the feeder appended since.
  In.clear();
}

void WireReader::fail(std::string Message) {
  Diags.error({}, atOffset(ChunkBase + Pos, std::move(Message)));
  Failed = true;
}

bool WireReader::loadChunk() {
  bool WithDigest = (Flags & FlagChunkDigests) != 0;
  ChunkBase =
      FileOffset + (WithDigest ? DigestChunkHeaderSize : ChunkHeaderSize);
  bool CrcError = false;
  uint64_t Digest = 0;
  if (!readChunk(In, Diags, FileOffset, WithDigest, Digest, Payload, Failed,
                 &CrcError)) {
    if (CrcError)
      CrcErrors.inc();
    return false;
  }
  FileOffset += Payload.size();
  Pos = 0;
  PrevThread = 0;
  PrevObject = 0;
  PayloadBytes.add(Payload.size());
  // The previous chunk's batch is fully handed out by now (next() only
  // loads a chunk once the prior one is drained), so its decoded values
  // can be reclaimed wholesale.
  if (metrics::Enabled && ValueArena.bytesUsed() > ArenaPeak)
    ArenaPeak = ValueArena.bytesUsed();
  ValueArena.reset();

  ByteReader R(reinterpret_cast<const uint8_t *>(Payload.data()),
               Payload.size());
  auto Count = R.varint();
  if (!Count) {
    fail("malformed chunk: bad event count");
    return false;
  }
  if (!decodeSymbolTable(R, Syms)) {
    fail("malformed chunk: bad symbol table");
    return false;
  }
  EventsLeft = *Count;
  Pos = R.offset();
  if (WithDigest && !checkChunkDigest(Payload, Pos, Digest, ChunkBase, Diags,
                                      Failed)) {
    DigestErrors.inc();
    return false;
  }
  SymbolCount.add(Syms.size());
  ++NumChunks;
  return true;
}

bool WireReader::next(Event &E) {
  if (Failed)
    return false;
  if (Memo != MemoMode::Off) {
    // Serve from the staged chunk (cache entry or cold-decoded batch).
    while (!Staged || StagedPos == Staged->size())
      if (!stageChunk())
        return false;
    E = Staged->Events[StagedPos++];
    ++NumEvents;
    return true;
  }
  while (EventsLeft == 0) {
    if (!loadChunk())
      return false;
  }
  if (!decodeEvent(E, ValueArena))
    return false;
  --EventsLeft;
  ++NumEvents;
  // A chunk's events must consume its payload exactly.
  if (EventsLeft == 0 && Pos != Payload.size()) {
    fail("malformed chunk: " + std::to_string(Payload.size() - Pos) +
         " trailing payload bytes after last event");
    return false;
  }
  return true;
}

size_t WireReader::nextBatch(EventBatch &B, size_t MaxEvents) {
  if (Memo != MemoMode::Off) {
    size_t Appended = 0;
    while (Appended != MaxEvents) {
      if (Failed)
        break;
      if (!Staged || StagedPos == Staged->size()) {
        if (!stageChunk())
          break;
        continue;
      }
      size_t Take = std::min(MaxEvents - Appended, Staged->size() - StagedPos);
      B.appendRange(*Staged, StagedPos, Take);
      StagedPos += Take;
      Appended += Take;
      NumEvents += Take;
    }
    return Appended;
  }
  size_t Decoded = 0;
  Event E = Event::txBegin(ThreadId(0)); // Overwritten by decodeEvent.
  while (Decoded != MaxEvents) {
    if (Failed)
      break;
    if (EventsLeft == 0) {
      if (!loadChunk())
        break;
      continue;
    }
    // Values land in the batch's arena, so the events appended here stay
    // valid across the chunk turnover above — a batch may span chunks.
    if (!decodeEvent(E, B.Values))
      break;
    --EventsLeft;
    ++NumEvents;
    if (EventsLeft == 0 && Pos != Payload.size()) {
      fail("malformed chunk: " + std::to_string(Payload.size() - Pos) +
           " trailing payload bytes after last event");
      break;
    }
    // The kind is in hand — extend the sync-event index for free instead
    // of re-scanning the batch afterwards.
    if (static_cast<uint8_t>(E.kind()) < SyncKindBound)
      B.SyncPos.push_back(static_cast<uint32_t>(B.size()));
    B.appendPinned(std::move(E));
    ++Decoded;
  }
  return Decoded;
}

bool WireReader::stageChunk() {
  OpenView = ChunkView{};
  Staged = nullptr;
  StagedPos = 0;
  bool WithDigest = (Flags & FlagChunkDigests) != 0;
  ChunkBase =
      FileOffset + (WithDigest ? DigestChunkHeaderSize : ChunkHeaderSize);
  bool CrcError = false;
  uint64_t Digest = 0;
  if (!readChunk(In, Diags, FileOffset, WithDigest, Digest, Payload, Failed,
                 &CrcError)) {
    if (CrcError)
      CrcErrors.inc();
    return false;
  }
  FileOffset += Payload.size();
  OpenView.HasDigest = WithDigest;
  OpenView.Digest = Digest;

  if (WithDigest) {
    auto It = Cache.find(Digest);
    if (It != Cache.end() && It->second->Payload == Payload) {
      // Byte-identical to an already validated, already decoded payload:
      // skip prologue, digest check and event decode wholesale. The full
      // compare (memcpy speed, an order of magnitude faster than decode)
      // is also what makes 64-bit digest collisions harmless.
      Staged = &It->second->Batch;
      OpenView.VerifiedRepeat = true;
      OpenView.Events = Staged->size();
      ++NumChunks;
      ++MemoHits;
      MemoBytesSaved += Payload.size();
      return true;
    }
  }

  // Cold path: full validation + decode, like loadChunk, but events land
  // in a staged self-contained batch (a new cache entry when cacheable).
  Pos = 0;
  PrevThread = 0;
  PrevObject = 0;
  PayloadBytes.add(Payload.size());
  ByteReader R(reinterpret_cast<const uint8_t *>(Payload.data()),
               Payload.size());
  auto Count = R.varint();
  if (!Count) {
    fail("malformed chunk: bad event count");
    return false;
  }
  if (!decodeSymbolTable(R, Syms)) {
    fail("malformed chunk: bad symbol table");
    return false;
  }
  Pos = R.offset();
  if (WithDigest && !checkChunkDigest(Payload, Pos, Digest, ChunkBase, Diags,
                                      Failed)) {
    DigestErrors.inc();
    return false;
  }
  SymbolCount.add(Syms.size());
  ++NumChunks;
  ++MemoMisses;

  std::unique_ptr<CacheEntry> NewEntry;
  EventBatch *Dst = &StagingBatch;
  if (WithDigest && CacheBytes < MemoCacheMaxBytes && !Cache.count(Digest)) {
    NewEntry = std::make_unique<CacheEntry>();
    Dst = &NewEntry->Batch;
  }
  Dst->clear();

  Event E = Event::txBegin(ThreadId(0)); // Overwritten by decodeEvent.
  for (uint64_t Left = *Count; Left != 0; --Left) {
    if (!decodeEvent(E, Dst->Values))
      return false;
    if (static_cast<uint8_t>(E.kind()) < SyncKindBound)
      Dst->SyncPos.push_back(static_cast<uint32_t>(Dst->size()));
    Dst->appendPinned(std::move(E));
  }
  if (Pos != Payload.size()) {
    fail("malformed chunk: " + std::to_string(Payload.size() - Pos) +
         " trailing payload bytes after last event");
    return false;
  }
  OpenView.Events = Dst->size();
  if (NewEntry) {
    NewEntry->Payload = Payload;
    // Entry footprint estimate: payload + event/kind/sync vectors + pinned
    // values. Good enough to bound the cache; exactness is not the point.
    CacheBytes += NewEntry->Payload.size() +
                  Dst->Events.size() * sizeof(Event) + Dst->Kinds.size() +
                  Dst->SyncPos.size() * sizeof(uint32_t) +
                  Dst->Values.bytesUsed();
    Staged = Dst;
    Cache.emplace(Digest, std::move(NewEntry));
  } else {
    Staged = Dst;
  }
  return true;
}

std::optional<WireReader::ChunkView> WireReader::beginChunk() {
  if (Failed)
    return std::nullopt;
  while (!Staged || StagedPos >= Staged->size())
    if (!stageChunk())
      return std::nullopt;
  return OpenView;
}

void WireReader::skipChunk() {
  if (!Staged)
    return;
  NumEvents += Staged->size() - StagedPos;
  StagedPos = Staged->size();
}

size_t WireReader::finishChunkInto(EventBatch &B) {
  if (!Staged)
    return 0;
  size_t N = Staged->size() - StagedPos;
  B.appendRange(*Staged, StagedPos, N);
  StagedPos = Staged->size();
  NumEvents += N;
  return N;
}

bool WireReader::decodeEvent(Event &E, Arena &Values) {
  ByteReader R(reinterpret_cast<const uint8_t *>(Payload.data()) + Pos,
               Payload.size() - Pos);
  auto finishAt = [&] { Pos += R.offset(); };

  auto Op = R.byte();
  if (!Op) {
    fail("truncated chunk: event count overruns payload");
    return false;
  }
  if (*Op > static_cast<uint8_t>(Opcode::TxEnd)) {
    fail("unknown event opcode " + std::to_string(*Op));
    return false;
  }

  // Decodes an id field as a zigzag delta against \p Prev, updating it.
  auto deltaId = [&](uint32_t &Prev, uint32_t &Out) {
    auto Delta = R.svarint();
    if (!Delta)
      return false;
    int64_t Id = static_cast<int64_t>(Prev) + *Delta;
    if (Id < 0 || Id > std::numeric_limits<uint32_t>::max())
      return false;
    Prev = static_cast<uint32_t>(Id);
    Out = Prev;
    return true;
  };
  // Decodes a raw varint id field.
  auto rawId = [&](uint32_t &Out) {
    auto V = R.varint();
    if (!V || *V > std::numeric_limits<uint32_t>::max())
      return false;
    Out = static_cast<uint32_t>(*V);
    return true;
  };

  uint32_t Thread = 0;
  if (!deltaId(PrevThread, Thread)) {
    fail("malformed event: bad thread id");
    return false;
  }
  ThreadId Self(Thread);

  auto decodeValue = [&](Value &Out) {
    auto Tag = R.byte();
    if (!Tag)
      return false;
    switch (static_cast<ValueTag>(*Tag)) {
    case ValueTag::Nil:
      Out = Value::nil();
      return true;
    case ValueTag::False:
      Out = Value::boolean(false);
      return true;
    case ValueTag::True:
      Out = Value::boolean(true);
      return true;
    case ValueTag::Int: {
      auto V = R.svarint();
      if (!V)
        return false;
      Out = Value::integer(*V);
      return true;
    }
    case ValueTag::Str: {
      auto Id = R.varint();
      if (!Id || *Id >= Syms.size())
        return false;
      Out = Value::string(Syms[static_cast<size_t>(*Id)]);
      return true;
    }
    }
    return false;
  };

  switch (static_cast<Opcode>(*Op)) {
  case Opcode::Fork:
  case Opcode::Join: {
    uint32_t Other = 0;
    if (!rawId(Other)) {
      fail("malformed fork/join event: bad target thread");
      return false;
    }
    E = static_cast<Opcode>(*Op) == Opcode::Fork
            ? Event::fork(Self, ThreadId(Other))
            : Event::join(Self, ThreadId(Other));
    finishAt();
    return true;
  }
  case Opcode::Acquire:
  case Opcode::Release: {
    uint32_t Lock = 0;
    if (!rawId(Lock)) {
      fail("malformed acquire/release event: bad lock id");
      return false;
    }
    E = static_cast<Opcode>(*Op) == Opcode::Acquire
            ? Event::acquire(Self, LockId(Lock))
            : Event::release(Self, LockId(Lock));
    finishAt();
    return true;
  }
  case Opcode::Read:
  case Opcode::Write: {
    uint32_t Var = 0;
    if (!rawId(Var)) {
      fail("malformed read/write event: bad location id");
      return false;
    }
    E = static_cast<Opcode>(*Op) == Opcode::Read ? Event::read(Self, VarId(Var))
                                                 : Event::write(Self, VarId(Var));
    finishAt();
    return true;
  }
  case Opcode::TxBegin:
    E = Event::txBegin(Self);
    finishAt();
    return true;
  case Opcode::TxEnd:
    E = Event::txEnd(Self);
    finishAt();
    return true;
  case Opcode::Invoke: {
    uint32_t Obj = 0;
    if (!deltaId(PrevObject, Obj)) {
      fail("malformed action event: bad object id");
      return false;
    }
    auto MethodId = R.varint();
    if (!MethodId || *MethodId >= Syms.size()) {
      fail("malformed action event: bad method symbol");
      return false;
    }
    auto NArgs = R.varint();
    if (!NArgs || *NArgs > R.remaining()) { // Each value needs ≥ 1 byte.
      fail("malformed action event: bad argument count");
      return false;
    }
    // Stage the values in the reusable scratch buffer (the return count is
    // not known until the arguments are decoded), then move them into one
    // contiguous arena block the Action views. Steady state: no heap
    // traffic — the scratch capacity and arena chunks persist.
    ScratchValues.resize(static_cast<size_t>(*NArgs));
    for (Value &V : ScratchValues)
      if (!decodeValue(V)) {
        fail("malformed action event: bad argument value");
        return false;
      }
    auto NRets = R.varint();
    if (!NRets || *NRets > R.remaining()) {
      fail("malformed action event: bad return count");
      return false;
    }
    size_t Total = static_cast<size_t>(*NArgs) + static_cast<size_t>(*NRets);
    ScratchValues.resize(Total);
    for (size_t I = static_cast<size_t>(*NArgs); I != Total; ++I)
      if (!decodeValue(ScratchValues[I])) {
        fail("malformed action event: bad return value");
        return false;
      }
    const Value *Vals = nullptr;
    if (Total != 0) {
      Value *Block = Values.allocate<Value>(Total);
      std::memcpy(Block, ScratchValues.data(), Total * sizeof(Value));
      Vals = Block;
    }
    E = Event::invoke(Self,
                      Action(ObjectId(Obj), Syms[static_cast<size_t>(*MethodId)],
                             Vals, static_cast<uint32_t>(*NArgs),
                             static_cast<uint32_t>(*NRets)));
    finishAt();
    return true;
  }
  }
  return false; // Unreachable.
}

std::optional<WireFileInfo> wire::scanWire(std::istream &In,
                                           DiagnosticEngine &Diags) {
  uint8_t Flags = 0;
  if (!checkFileHeader(In, Diags, Flags))
    return std::nullopt;
  bool WithDigest = (Flags & FlagChunkDigests) != 0;
  size_t HeaderSize = WithDigest ? DigestChunkHeaderSize : ChunkHeaderSize;

  WireFileInfo Info;
  Info.TotalBytes = FileHeaderSize;
  size_t FileOffset = FileHeaderSize;
  std::string Payload;
  bool Failed = false;
  while (true) {
    size_t ChunkOffset = FileOffset;
    uint64_t Digest = 0;
    if (!readChunk(In, Diags, FileOffset, WithDigest, Digest, Payload,
                   Failed)) {
      if (Failed)
        return std::nullopt;
      break; // Clean EOF.
    }
    FileOffset += Payload.size();

    ByteReader R(reinterpret_cast<const uint8_t *>(Payload.data()),
                 Payload.size());
    WireChunkInfo Chunk;
    Chunk.Offset = ChunkOffset;
    Chunk.PayloadBytes = Payload.size();
    auto Count = R.varint();
    std::vector<Symbol> Syms;
    if (!Count || !decodeSymbolTable(R, Syms, &Chunk.SymbolBytes)) {
      Diags.error({}, atOffset(ChunkOffset, "malformed chunk prologue"));
      return std::nullopt;
    }
    // Digest over the event bytes: verified against the header when
    // present, computed from scratch for legacy files — repetition stats
    // work either way.
    if (WithDigest) {
      if (!checkChunkDigest(Payload, R.offset(), Digest,
                            ChunkOffset + HeaderSize, Diags, Failed))
        return std::nullopt;
      Chunk.Digest = Digest;
      Chunk.DigestInHeader = true;
    } else {
      Chunk.Digest = hashBytes64(Payload.data() + R.offset(),
                                 Payload.size() - R.offset());
    }
    Chunk.Events = static_cast<size_t>(*Count);
    Chunk.Symbols = Syms.size();
    Info.TotalEvents += Chunk.Events;
    Info.TotalBytes += HeaderSize + Payload.size();
    Info.Chunks.push_back(Chunk);
  }
  return Info;
}
