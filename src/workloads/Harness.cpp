//===- workloads/Harness.cpp - Table 2 measurement harness --------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "workloads/Harness.h"

#include "detect/CommutativityDetector.h"
#include "detect/FastTrack.h"
#include "spec/Builtins.h"
#include "translate/Translator.h"

#include <cassert>
#include <chrono>
#include <iomanip>
#include <map>
#include <ostream>

using namespace crd;

const char *crd::modeName(AnalysisMode M) {
  switch (M) {
  case AnalysisMode::Uninstrumented:
    return "Uninstrumented";
  case AnalysisMode::FastTrack:
    return "FASTTRACK";
  case AnalysisMode::RD2:
    return "RD2";
  }
  return "unknown";
}

namespace {

/// Translated Fig 6 dictionary representation shared by all maps.
const TranslatedRep &sharedDictionaryRep() {
  static std::unique_ptr<TranslatedRep> Rep = [] {
    DiagnosticEngine Diags;
    auto R = translateSpec(dictionarySpec(), Diags);
    assert(R && "builtin dictionary spec must translate");
    return R;
  }();
  return *Rep;
}

/// Runs \p RT under \p Mode and fills timing/race fields of \p Result.
void runWithMode(SimRuntime &RT, AnalysisMode Mode, RunResult &Result) {
  using Clock = std::chrono::steady_clock;

  switch (Mode) {
  case AnalysisMode::Uninstrumented: {
    NullSink Sink;
    auto Start = Clock::now();
    RT.run(Sink);
    Result.Seconds = std::chrono::duration<double>(Clock::now() - Start).count();
    break;
  }
  case AnalysisMode::FastTrack: {
    FastTrackDetector Detector;
    DetectorSink<FastTrackDetector> Sink(Detector);
    auto Start = Clock::now();
    RT.run(Sink);
    Result.Seconds = std::chrono::duration<double>(Clock::now() - Start).count();
    Result.RacesTotal = Detector.races().size();
    Result.RacesDistinct = Detector.distinctRacyVars();
    break;
  }
  case AnalysisMode::RD2: {
    CommutativityRaceDetector Detector;
    Detector.setDefaultProvider(&sharedDictionaryRep());
    DetectorSink<CommutativityRaceDetector> Sink(Detector);
    auto Start = Clock::now();
    RT.run(Sink);
    Result.Seconds = std::chrono::duration<double>(Clock::now() - Start).count();
    Result.RacesTotal = Detector.races().size();
    Result.RacesDistinct = Detector.distinctRacyObjects();
    break;
  }
  }
  Result.Qps = Result.Seconds > 0 ? Result.Queries / Result.Seconds : 0.0;
}

} // namespace

RunResult crd::runH2Circuit(Circuit C, AnalysisMode Mode,
                            const CircuitConfig &Config) {
  RunResult Result;
  Result.Benchmark = circuitName(C);
  Result.Mode = Mode;

  SimRuntime RT(Config.Seed);
  MVStore Store(RT);
  Result.Queries = buildCircuit(C, RT, Store, Config);
  runWithMode(RT, Mode, Result);
  return Result;
}

RunResult crd::runSnitchTest(AnalysisMode Mode, const SnitchConfig &Config) {
  RunResult Result;
  Result.Benchmark = "DynamicEndpointSnitch test";
  Result.Mode = Mode;

  SimRuntime RT(Config.Seed);
  DynamicEndpointSnitch Snitch(RT, Config.Hosts);
  Result.Queries = buildSnitchTest(RT, Snitch, Config);
  runWithMode(RT, Mode, Result);
  return Result;
}

void crd::printTable2(std::ostream &OS, const std::vector<RunResult> &Results) {
  // Group rows by benchmark, in order of first appearance.
  std::vector<std::string> Order;
  std::map<std::string, std::map<AnalysisMode, const RunResult *>> ByBench;
  for (const RunResult &R : Results) {
    if (!ByBench.count(R.Benchmark))
      Order.push_back(R.Benchmark);
    ByBench[R.Benchmark][R.Mode] = &R;
  }

  OS << std::left << std::setw(46) << "Benchmark" << std::right
     << std::setw(14) << "Uninstr qps" << std::setw(14) << "FASTTRACK qps"
     << std::setw(12) << "RD2 qps" << std::setw(18) << "FT races(dist)"
     << std::setw(18) << "RD2 races(dist)" << '\n';
  OS << std::string(122, '-') << '\n';

  for (const std::string &Bench : Order) {
    auto &Rows = ByBench[Bench];
    OS << std::left << std::setw(46) << Bench << std::right;
    auto PrintQps = [&](AnalysisMode M) {
      OS << std::setw(M == AnalysisMode::Uninstrumented  ? 14
                      : M == AnalysisMode::FastTrack     ? 14
                                                         : 12);
      auto It = Rows.find(M);
      if (It == Rows.end()) {
        OS << "-";
        return;
      }
      OS << std::fixed << std::setprecision(0) << It->second->Qps;
    };
    PrintQps(AnalysisMode::Uninstrumented);
    PrintQps(AnalysisMode::FastTrack);
    PrintQps(AnalysisMode::RD2);

    auto PrintRaces = [&](AnalysisMode M) {
      auto It = Rows.find(M);
      std::string Cell = "-";
      if (It != Rows.end())
        Cell = std::to_string(It->second->RacesTotal) + " (" +
               std::to_string(It->second->RacesDistinct) + ")";
      OS << std::setw(18) << Cell;
    };
    PrintRaces(AnalysisMode::FastTrack);
    PrintRaces(AnalysisMode::RD2);
    OS << '\n';
  }
}
