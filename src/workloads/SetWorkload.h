//===- workloads/SetWorkload.h - set-based extension workload ---*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An extension workload (not in the paper's Table 2) exercising the *set*
/// specification — the type the paper highlights as expressible in ECL but
/// not in SIMPLE. Writer threads record visitor ids into a shared
/// instrumented set (duplicates happen) while a reporter thread
/// periodically reads size() — the Fig 1 pattern on a set.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_WORKLOADS_SETWORKLOAD_H
#define CRD_WORKLOADS_SETWORKLOAD_H

#include "runtime/InstrumentedSet.h"
#include "runtime/SimRuntime.h"

namespace crd {

/// Sizing knobs for the unique-visitors workload.
struct SetWorkloadConfig {
  unsigned WriterThreads = 4;
  unsigned AddsPerWriter = 250;
  unsigned VisitorRange = 64; ///< Ids drawn from [0, VisitorRange).
  unsigned ReportEvery = 50;  ///< Reporter polls size() this often.
  uint64_t Seed = 1;
};

/// Builds the unique-visitors program on \p RT.
/// \returns the number of logical operations.
size_t buildUniqueVisitors(SimRuntime &RT, InstrumentedSet &Visitors,
                           const SetWorkloadConfig &Config);

} // namespace crd

#endif // CRD_WORKLOADS_SETWORKLOAD_H
