//===- workloads/QueueWorkload.h - producer/consumer extension --*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An extension workload over the FIFO queue type: producer threads
/// enqueue jobs, consumer threads dequeue and "execute" them, and a
/// monitor thread peeks at the head as a progress heuristic. Queues are
/// the least commutative builtin type, so almost every concurrent
/// operation pair is a commutativity race — the workload demonstrates
/// that the detector's report volume tracks the *specification*, not just
/// the amount of sharing.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_WORKLOADS_QUEUEWORKLOAD_H
#define CRD_WORKLOADS_QUEUEWORKLOAD_H

#include "runtime/InstrumentedQueue.h"
#include "runtime/SimRuntime.h"

namespace crd {

/// Sizing knobs for the task-queue workload.
struct QueueWorkloadConfig {
  unsigned Producers = 2;
  unsigned Consumers = 2;
  unsigned JobsPerProducer = 100;
  unsigned MonitorPeeks = 20;
  uint64_t Seed = 1;
};

/// Builds the task-queue program on \p RT.
/// \returns the number of logical operations scheduled.
size_t buildTaskQueue(SimRuntime &RT, InstrumentedQueue &Jobs,
                      const QueueWorkloadConfig &Config);

} // namespace crd

#endif // CRD_WORKLOADS_QUEUEWORKLOAD_H
