//===- workloads/RepetitiveTrace.h - Chunk-repetitive trace gen -*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic generator of chunk-repetitive traces — the workload
/// shape chunk memoization (docs/trace-format.md digests, --memo) is
/// built for: long traces whose event stream is a small set of distinct
/// "bodies" repeated many times, as produced by iterative benchmarks,
/// event-loop servers, and replayed recordings.
///
/// The generator is chunk-aligned by construction: the prelude (thread
/// forks plus padding) fills exactly one wire chunk, and every body fills
/// exactly one chunk, so each repetition of a body encodes to a
/// byte-identical chunk payload (per-chunk symbol tables and predictor
/// resets make chunk encoding context-free). Bodies are sync-free;
/// workers run concurrently from the prelude's forks, so racy bodies
/// report the same commutativity races on every occurrence.
///
/// SyncEveryBodies > 0 inserts a full chunk of lock acquire/release
/// churn between body rounds. Each release bumps its thread's clock, so
/// every body occurrence sees fresh entry state: the adversarial shape
/// that forces the detector-summary layer to fall back to full
/// interpretation on 100% of chunks (the decode cache still hits).
///
//===----------------------------------------------------------------------===//

#ifndef CRD_WORKLOADS_REPETITIVETRACE_H
#define CRD_WORKLOADS_REPETITIVETRACE_H

#include "trace/Event.h"

#include <cstddef>
#include <functional>
#include <iosfwd>

namespace crd {

/// Sizing knobs for the chunk-repetitive trace.
struct RepetitiveTraceConfig {
  unsigned Threads = 4;          ///< Worker threads forked in the prelude.
  unsigned DistinctBodies = 64;  ///< Distinct body payloads.
  unsigned Repetitions = 16;     ///< Occurrences of each body.
  unsigned EventsPerBody = 4096; ///< Events per body == wire chunk size.
  unsigned ObjectsPerBody = 4;   ///< Distinct dictionaries per body.
  /// Include a pair of conflicting puts on a shared key per body (two
  /// commutativity races per body occurrence); otherwise bodies are pure
  /// per-thread-key gets and race-free.
  bool Racy = true;
  /// When > 0, emit one full chunk of per-thread lock acquire/release
  /// churn before every N-th round of bodies (see the file comment).
  unsigned SyncEveryBodies = 0;
};

/// Emits the trace event-by-event through \p Emit (prelude first, then
/// Repetitions rounds of the DistinctBodies bodies). Returns the number
/// of events emitted — always a multiple of EventsPerBody.
size_t buildRepetitiveTrace(const RepetitiveTraceConfig &Config,
                            const std::function<void(const Event &)> &Emit);

/// Writes the trace to \p OS in the binary wire format with chunk size
/// EventsPerBody and content digests enabled, so repeated bodies become
/// byte-identical chunks. Returns the number of events written.
size_t writeRepetitiveTrace(std::ostream &OS,
                            const RepetitiveTraceConfig &Config);

} // namespace crd

#endif // CRD_WORKLOADS_REPETITIVETRACE_H
