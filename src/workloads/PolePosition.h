//===- workloads/PolePosition.h - PolePosition circuits ---------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Re-creations of the PolePosition benchmark "circuits" the paper drives
/// the H2 database with (§7, Table 2). Each circuit builds a program on a
/// SimRuntime against an MVStore and reports how many logical queries it
/// will execute (the numerator of the qps metric).
///
/// Circuit characters (matching the paper's descriptions and the race
/// profile of Table 2):
///   * ComplexConcurrency      — mixed reads/writes on a hot key range,
///     periodic commits and size polling; commutativity races expected.
///   * ComplexConcurrencyAlt   — same with an alternate query distribution.
///   * QueryCentricConcurrency — concurrent reads of disjoint preloaded
///     data; no commutativity races, only low-level counter races.
///   * InsertCentricConcurrency— concurrent inserts into mostly disjoint
///     ranges with a small overlapping window; few commutativity races.
///   * Complex, NestedLists    — single-threaded query streams plus a
///     maintenance thread touching racy statistics fields; low-level races
///     only.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_WORKLOADS_POLEPOSITION_H
#define CRD_WORKLOADS_POLEPOSITION_H

#include "workloads/MVStore.h"

#include <array>
#include <cstddef>

namespace crd {

/// The benchmark circuits of Table 2's H2 block.
enum class Circuit {
  ComplexConcurrency,
  ComplexConcurrencyAlt,
  QueryCentricConcurrency,
  InsertCentricConcurrency,
  Complex,
  NestedLists,
};

/// All circuits in Table 2 order.
inline constexpr std::array<Circuit, 6> AllCircuits = {
    Circuit::ComplexConcurrency,      Circuit::ComplexConcurrencyAlt,
    Circuit::QueryCentricConcurrency, Circuit::InsertCentricConcurrency,
    Circuit::Complex,                 Circuit::NestedLists,
};

/// Human-readable circuit name as printed in Table 2.
const char *circuitName(Circuit C);

/// Workload sizing knobs.
struct CircuitConfig {
  unsigned WorkerThreads = 4;
  unsigned QueriesPerWorker = 250;
  uint64_t Seed = 1;
};

/// Builds the circuit program on \p RT (threads, queries, joins).
/// \returns the number of logical queries the program will execute.
size_t buildCircuit(Circuit C, SimRuntime &RT, MVStore &Store,
                    const CircuitConfig &Config);

} // namespace crd

#endif // CRD_WORKLOADS_POLEPOSITION_H
