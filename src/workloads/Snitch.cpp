//===- workloads/Snitch.cpp - Cassandra DynamicEndpointSnitch -----------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "workloads/Snitch.h"

#include <memory>
#include <string>

using namespace crd;

DynamicEndpointSnitch::DynamicEndpointSnitch(SimRuntime &RT, unsigned NumHosts)
    : Samples(RT), ScoresVersion(RT, 0) {
  Hosts.reserve(NumHosts);
  for (unsigned I = 0; I != NumHosts; ++I)
    Hosts.push_back(Value::string("10.0.0." + std::to_string(I)));
}

void DynamicEndpointSnitch::receiveTiming(SimThread &T, unsigned HostIdx,
                                          int64_t LatencyMicros) {
  const Value &Host = Hosts[HostIdx % Hosts.size()];
  // Get-then-put read-modify-write of the decaying average; the first
  // timing for a host inserts a new entry (resizing the map).
  Value Current = Samples.get(T, Host);
  int64_t Average =
      Current.isNil() ? LatencyMicros : (Current.asInt() * 3 + LatencyMicros) / 4;
  Samples.put(T, Host, Value::integer(Average));
}

void DynamicEndpointSnitch::updateScores(SimThread &T) {
  // Rank recalculation is intended to see one consistent snapshot.
  T.txBegin();
  // The size is used as a performance hint for the rank buffer — the
  // §7 race: new entries may be added while it is read. Scoring the hosts
  // takes a while, so it completes in a later scheduler step.
  int64_t Hint = Samples.size(T);
  (void)Hint;
  T.defer([this](SimThread &T2) {
    for (const Value &Host : Hosts)
      Samples.get(T2, Host);
    ScoresVersion.store(T2, ScoresVersion.load(T2) + 1);
    T2.txEnd();
  });
}

namespace {

void scheduleLoop(SimRuntime &RT, ThreadId Tid, unsigned Count,
                  std::function<void(SimThread &, unsigned)> Body) {
  for (unsigned I = 0; I != Count; ++I)
    RT.schedule(Tid, [Body, I](SimThread &T) { Body(T, I); });
}

} // namespace

size_t crd::buildSnitchTest(SimRuntime &RT, DynamicEndpointSnitch &Snitch,
                            const SnitchConfig &Config) {
  ThreadId Main = RT.addInitialThread();

  auto Threads = std::make_shared<std::vector<ThreadId>>();
  RT.schedule(Main, [&RT, &Snitch, Config, Threads](SimThread &T) {
    for (unsigned U = 0; U != Config.UpdaterThreads; ++U) {
      ThreadId Tid = T.fork([](SimThread &) {});
      Threads->push_back(Tid);
      scheduleLoop(RT, Tid, Config.TimingsPerUpdater,
                   [&Snitch, Config](SimThread &T, unsigned I) {
                     unsigned Host =
                         static_cast<unsigned>(T.random(Config.Hosts));
                     Snitch.receiveTiming(T, Host,
                                          static_cast<int64_t>(100 + I % 37));
                   });
    }
    // The scoring task runs concurrently with the updaters.
    ThreadId Scorer = T.fork([](SimThread &) {});
    Threads->push_back(Scorer);
    scheduleLoop(RT, Scorer, Config.ScoreRecalcs,
                 [&Snitch](SimThread &T, unsigned) { Snitch.updateScores(T); });
  });

  unsigned Total = Config.UpdaterThreads + 1;
  for (unsigned I = 0; I != Total; ++I)
    RT.schedule(Main, [Threads, I](SimThread &T) { T.join((*Threads)[I]); });
  RT.schedule(Main,
              [&Snitch](SimThread &T) { Snitch.samplesMap().size(T); });

  return static_cast<size_t>(Config.UpdaterThreads) *
             Config.TimingsPerUpdater +
         Config.ScoreRecalcs + 1;
}
