//===- workloads/Snitch.h - Cassandra DynamicEndpointSnitch -----*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A re-creation of Apache Cassandra's DynamicEndpointSnitch test (§7,
/// Table 2's last row): nodes continuously report request latencies into a
/// `samples` ConcurrentHashMap while a scoring task recalculates node ranks,
/// using samples.size() as a performance hint. New entries can be added
/// while the size is concurrently read — §7's harmful race #3 — and the
/// per-host sample updates are get-then-put read-modify-writes.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_WORKLOADS_SNITCH_H
#define CRD_WORKLOADS_SNITCH_H

#include "runtime/InstrumentedMap.h"
#include "runtime/SimRuntime.h"

#include <vector>

namespace crd {

/// Simplified dynamic snitch: latency samples and rank recalculation.
class DynamicEndpointSnitch {
public:
  explicit DynamicEndpointSnitch(SimRuntime &RT, unsigned NumHosts);

  /// A node reports one latency measurement for \p HostIdx: get-then-put on
  /// the samples map (exponentially decaying average).
  void receiveTiming(SimThread &T, unsigned HostIdx, int64_t LatencyMicros);

  /// Recalculates scores: reads samples.size() as a capacity hint, then
  /// reads every known host's aggregate.
  void updateScores(SimThread &T);

  InstrumentedMap &samplesMap() { return Samples; }
  unsigned numHosts() const { return static_cast<unsigned>(Hosts.size()); }

private:
  InstrumentedMap Samples;
  SharedField ScoresVersion;
  std::vector<Value> Hosts;
};

/// Workload sizing knobs for the snitch test.
struct SnitchConfig {
  unsigned Hosts = 10;
  unsigned UpdaterThreads = 4;
  unsigned TimingsPerUpdater = 250;
  unsigned ScoreRecalcs = 50;
  uint64_t Seed = 1;
};

/// Builds the DynamicEndpointSnitch test program on \p RT.
/// \returns the number of logical operations (timings + recalcs).
size_t buildSnitchTest(SimRuntime &RT, DynamicEndpointSnitch &Snitch,
                       const SnitchConfig &Config);

} // namespace crd

#endif // CRD_WORKLOADS_SNITCH_H
