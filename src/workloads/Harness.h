//===- workloads/Harness.h - Table 2 measurement harness --------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the evaluation workloads in the paper's three configurations
/// (uninstrumented, FASTTRACK, RD2), measuring throughput and collecting
/// race counts — the machinery behind Table 2.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_WORKLOADS_HARNESS_H
#define CRD_WORKLOADS_HARNESS_H

#include "workloads/PolePosition.h"
#include "workloads/Snitch.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace crd {

/// The three configurations of Table 2.
enum class AnalysisMode { Uninstrumented, FastTrack, RD2 };

const char *modeName(AnalysisMode M);

/// One measurement (one Table 2 cell group).
struct RunResult {
  std::string Benchmark;
  AnalysisMode Mode = AnalysisMode::Uninstrumented;
  size_t Queries = 0;
  double Seconds = 0.0;
  double Qps = 0.0;
  size_t RacesTotal = 0;
  size_t RacesDistinct = 0; ///< Distinct objects (RD2) / variables (FT).
};

/// Runs one H2 PolePosition circuit under \p Mode. Fresh runtime, store and
/// detector per call; deterministic given Config.Seed.
RunResult runH2Circuit(Circuit C, AnalysisMode Mode,
                       const CircuitConfig &Config);

/// Runs the Cassandra DynamicEndpointSnitch test under \p Mode.
RunResult runSnitchTest(AnalysisMode Mode, const SnitchConfig &Config);

/// Renders results as a Table 2-shaped text table.
void printTable2(std::ostream &OS, const std::vector<RunResult> &Results);

} // namespace crd

#endif // CRD_WORKLOADS_HARNESS_H
