//===- workloads/PolePosition.cpp - PolePosition circuits ---------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "workloads/PolePosition.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

using namespace crd;

const char *crd::circuitName(Circuit C) {
  switch (C) {
  case Circuit::ComplexConcurrency:
    return "ComplexConcurrency";
  case Circuit::ComplexConcurrencyAlt:
    return "ComplexConcurrency (alternate query distrib.)";
  case Circuit::QueryCentricConcurrency:
    return "QueryCentricConcurrency";
  case Circuit::InsertCentricConcurrency:
    return "InsertCentricConcurrency";
  case Circuit::Complex:
    return "Complex";
  case Circuit::NestedLists:
    return "NestedLists";
  }
  return "unknown";
}

namespace {

/// Appends \p Count steps to \p Tid, each invoking Body(thread, iteration).
void scheduleLoop(SimRuntime &RT, ThreadId Tid, unsigned Count,
                  std::function<void(SimThread &, unsigned)> Body) {
  for (unsigned I = 0; I != Count; ++I)
    RT.schedule(Tid, [Body, I](SimThread &T) { Body(T, I); });
}

Value hotKey(uint64_t I) {
  return Value::string("hot" + std::to_string(I));
}

Value itemKey(uint64_t I) {
  return Value::string("item" + std::to_string(I));
}

/// Per-circuit racy statistics fields; the low-level detector's fodder.
struct CircuitStats {
  explicit CircuitStats(SimRuntime &RT)
      : QueriesExecuted(RT), RowsTouched(RT), PeakLatency(RT),
        LastQueryTime(RT) {}

  void recordQuery(SimThread &T, int64_t Rows) {
    QueriesExecuted.store(T, QueriesExecuted.load(T) + 1);
    RowsTouched.store(T, RowsTouched.load(T) + Rows);
    int64_t Now = QueriesExecuted.load(T);
    if (Now > PeakLatency.load(T))
      PeakLatency.store(T, Now);
    LastQueryTime.store(T, Now);
  }

  SharedField QueriesExecuted;
  SharedField RowsTouched;
  SharedField PeakLatency;
  SharedField LastQueryTime;
};

/// Shared builder for the two concurrent mixed-workload circuits; the
/// distribution is (get%, put%, commit%) out of 100, the remainder polls
/// size().
size_t buildMixedConcurrency(SimRuntime &RT, MVStore &Store,
                             const CircuitConfig &Config, unsigned GetPct,
                             unsigned PutPct, unsigned CommitPct) {
  constexpr unsigned HotKeys = 16;
  auto Stats = std::make_shared<CircuitStats>(RT);
  ThreadId Main = RT.addInitialThread();

  // Preload the hot range so gets have something to observe.
  RT.schedule(Main, [&Store](SimThread &T) {
    for (uint64_t K = 0; K != HotKeys; ++K)
      Store.put(T, hotKey(K), Value::integer(static_cast<int64_t>(K)));
  });

  auto Workers = std::make_shared<std::vector<ThreadId>>();
  RT.schedule(Main, [&RT, &Store, Config, Workers, Stats, GetPct, PutPct,
                     CommitPct](SimThread &T) {
    for (unsigned W = 0; W != Config.WorkerThreads; ++W) {
      ThreadId Tid = T.fork([](SimThread &) {});
      Workers->push_back(Tid);
      scheduleLoop(RT, Tid, Config.QueriesPerWorker,
                   [&Store, Stats, GetPct, PutPct, CommitPct](SimThread &T,
                                                              unsigned Q) {
                     uint64_t Dice = T.random(100);
                     uint64_t Key = T.random(HotKeys);
                     if (Dice < GetPct) {
                       Store.get(T, hotKey(Key));
                       Stats->recordQuery(T, 1);
                     } else if (Dice < GetPct + PutPct) {
                       Store.put(T, hotKey(Key),
                                 Value::integer(static_cast<int64_t>(Q)));
                       Stats->recordQuery(T, 1);
                     } else if (Dice < GetPct + PutPct + CommitPct) {
                       Store.commit(T);
                       Stats->recordQuery(T, 0);
                     } else {
                       Store.count(T);
                       Stats->recordQuery(T, 0);
                     }
                   });
    }
  });

  // Poll the table size concurrently with the workers.
  constexpr unsigned Polls = 8;
  scheduleLoop(RT, Main, Polls,
               [&Store](SimThread &T, unsigned) { Store.count(T); });

  // Join every worker, then report the final count.
  for (unsigned W = 0; W != Config.WorkerThreads; ++W)
    RT.schedule(Main, [Workers, W](SimThread &T) { T.join((*Workers)[W]); });
  RT.schedule(Main, [&Store](SimThread &T) { Store.count(T); });

  return static_cast<size_t>(Config.WorkerThreads) * Config.QueriesPerWorker +
         Polls + 1;
}

size_t buildQueryCentric(SimRuntime &RT, MVStore &Store,
                         const CircuitConfig &Config) {
  auto Stats = std::make_shared<CircuitStats>(RT);
  ThreadId Main = RT.addInitialThread();
  unsigned PerWorker = Config.QueriesPerWorker;

  // Preload disjoint per-worker ranges before any worker exists, so the
  // fork orders the setup writes before the workers' reads.
  RT.schedule(Main, [&Store, Config, PerWorker](SimThread &T) {
    for (uint64_t K = 0,
                  E = uint64_t(Config.WorkerThreads) * PerWorker;
         K != E; ++K)
      Store.put(T, itemKey(K), Value::integer(static_cast<int64_t>(K)));
  });

  auto Workers = std::make_shared<std::vector<ThreadId>>();
  RT.schedule(Main, [&RT, &Store, Config, Workers, Stats,
                     PerWorker](SimThread &T) {
    for (unsigned W = 0; W != Config.WorkerThreads; ++W) {
      ThreadId Tid = T.fork([](SimThread &) {});
      Workers->push_back(Tid);
      uint64_t Base = uint64_t(W) * PerWorker;
      scheduleLoop(RT, Tid, PerWorker,
                   [&Store, Stats, Base](SimThread &T, unsigned Q) {
                     Store.get(T, itemKey(Base + Q));
                     Stats->recordQuery(T, 1);
                   });
    }
  });

  for (unsigned W = 0; W != Config.WorkerThreads; ++W)
    RT.schedule(Main, [Workers, W](SimThread &T) { T.join((*Workers)[W]); });
  RT.schedule(Main, [&Store](SimThread &T) { Store.count(T); });

  return static_cast<size_t>(Config.WorkerThreads) * PerWorker + 1;
}

size_t buildInsertCentric(SimRuntime &RT, MVStore &Store,
                          const CircuitConfig &Config) {
  auto Stats = std::make_shared<CircuitStats>(RT);
  ThreadId Main = RT.addInitialThread();
  unsigned PerWorker = Config.QueriesPerWorker;

  auto Workers = std::make_shared<std::vector<ThreadId>>();
  RT.schedule(Main, [&RT, &Store, Config, Workers, Stats,
                     PerWorker](SimThread &T) {
    for (unsigned W = 0; W != Config.WorkerThreads; ++W) {
      ThreadId Tid = T.fork([](SimThread &) {});
      Workers->push_back(Tid);
      uint64_t Base = uint64_t(W) * PerWorker;
      scheduleLoop(
          RT, Tid, PerWorker,
          [&Store, Stats, Base](SimThread &T, unsigned Q) {
            // Mostly disjoint inserts; every 50th insert also refreshes a
            // shared summary row, where the inserts collide.
            Store.put(T, itemKey(Base + Q),
                      Value::integer(static_cast<int64_t>(Q)));
            if (Q % 50 == 0)
              Store.put(T, Value::string("summary"),
                        Value::integer(static_cast<int64_t>(Base + Q)));
            Stats->recordQuery(T, 1);
          });
    }
  });

  for (unsigned W = 0; W != Config.WorkerThreads; ++W)
    RT.schedule(Main, [Workers, W](SimThread &T) { T.join((*Workers)[W]); });
  RT.schedule(Main, [&Store](SimThread &T) { Store.count(T); });

  return static_cast<size_t>(Config.WorkerThreads) * PerWorker + 1;
}

/// Shared builder for the two single-threaded circuits: the main thread
/// issues every query; a maintenance thread touches only racy statistics
/// fields, so FastTrack has races to report but the commutativity detector
/// does not.
size_t buildSingleThreaded(SimRuntime &RT, MVStore &Store,
                           const CircuitConfig &Config, bool Nested) {
  ThreadId Main = RT.addInitialThread();
  unsigned Queries = Config.QueriesPerWorker * Config.WorkerThreads;

  auto Maintenance = std::make_shared<ThreadId>();
  RT.schedule(Main, [&RT, &Store, Queries, Maintenance](SimThread &T) {
    *Maintenance = T.fork([](SimThread &) {});
    scheduleLoop(RT, *Maintenance, Queries / 4,
                 [&Store](SimThread &T, unsigned) { Store.maintenanceTick(T); });
  });

  scheduleLoop(RT, Main, Queries, [&Store, Nested](SimThread &T, unsigned Q) {
    if (Nested) {
      // Build and read back a small nested list: parent row plus children.
      uint64_t List = Q;
      Store.put(T, itemKey(List * 8), Value::string("parent"));
      for (uint64_t C = 1; C != 4; ++C)
        Store.put(T, itemKey(List * 8 + C),
                  Value::integer(static_cast<int64_t>(C)));
      Store.get(T, itemKey(List * 8));
      return;
    }
    // Complex circuit: point update, point read, occasional commit.
    Store.put(T, hotKey(Q % 32), Value::integer(Q));
    Store.get(T, hotKey((Q + 7) % 32));
    if (Q % 64 == 0)
      Store.commit(T);
  });

  RT.schedule(Main, [Maintenance](SimThread &T) { T.join(*Maintenance); });
  RT.schedule(Main, [&Store](SimThread &T) { Store.count(T); });
  return Queries + 1;
}

} // namespace

size_t crd::buildCircuit(Circuit C, SimRuntime &RT, MVStore &Store,
                         const CircuitConfig &Config) {
  switch (C) {
  case Circuit::ComplexConcurrency:
    return buildMixedConcurrency(RT, Store, Config, /*GetPct=*/55,
                                 /*PutPct=*/35, /*CommitPct=*/5);
  case Circuit::ComplexConcurrencyAlt:
    return buildMixedConcurrency(RT, Store, Config, /*GetPct=*/20,
                                 /*PutPct=*/70, /*CommitPct=*/5);
  case Circuit::QueryCentricConcurrency:
    return buildQueryCentric(RT, Store, Config);
  case Circuit::InsertCentricConcurrency:
    return buildInsertCentric(RT, Store, Config);
  case Circuit::Complex:
    return buildSingleThreaded(RT, Store, Config, /*Nested=*/false);
  case Circuit::NestedLists:
    return buildSingleThreaded(RT, Store, Config, /*Nested=*/true);
  }
  return 0;
}
