//===- workloads/QueueWorkload.cpp - producer/consumer extension --------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "workloads/QueueWorkload.h"

#include <functional>
#include <memory>
#include <vector>

using namespace crd;

namespace {

void scheduleLoop(SimRuntime &RT, ThreadId Tid, unsigned Count,
                  std::function<void(SimThread &, unsigned)> Body) {
  for (unsigned I = 0; I != Count; ++I)
    RT.schedule(Tid, [Body, I](SimThread &T) { Body(T, I); });
}

} // namespace

size_t crd::buildTaskQueue(SimRuntime &RT, InstrumentedQueue &Jobs,
                           const QueueWorkloadConfig &Config) {
  ThreadId Main = RT.addInitialThread();

  auto Threads = std::make_shared<std::vector<ThreadId>>();
  RT.schedule(Main, [&RT, &Jobs, Config, Threads](SimThread &T) {
    for (unsigned P = 0; P != Config.Producers; ++P) {
      ThreadId Tid = T.fork([](SimThread &) {});
      Threads->push_back(Tid);
      scheduleLoop(RT, Tid, Config.JobsPerProducer,
                   [&Jobs, P](SimThread &T2, unsigned J) {
                     Jobs.enq(T2, Value::integer(
                                      static_cast<int64_t>(P) * 1000 + J));
                   });
    }
    for (unsigned C = 0; C != Config.Consumers; ++C) {
      ThreadId Tid = T.fork([](SimThread &) {});
      Threads->push_back(Tid);
      unsigned Share = Config.Producers * Config.JobsPerProducer /
                       (Config.Consumers ? Config.Consumers : 1);
      scheduleLoop(RT, Tid, Share, [&Jobs](SimThread &T2, unsigned) {
        Jobs.deq(T2); // Empty dequeues are fine: the job just isn't there yet.
      });
    }
    ThreadId Monitor = T.fork([](SimThread &) {});
    Threads->push_back(Monitor);
    scheduleLoop(RT, Monitor, Config.MonitorPeeks,
                 [&Jobs](SimThread &T2, unsigned) { Jobs.peek(T2); });
  });

  unsigned Total = Config.Producers + Config.Consumers + 1;
  for (unsigned I = 0; I != Total; ++I)
    RT.schedule(Main, [Threads, I](SimThread &T) { T.join((*Threads)[I]); });
  RT.schedule(Main, [&Jobs](SimThread &T) { Jobs.peek(T); });

  return static_cast<size_t>(Config.Producers) * Config.JobsPerProducer +
         static_cast<size_t>(Config.Producers) * Config.JobsPerProducer /
             (Config.Consumers ? Config.Consumers : 1) * Config.Consumers +
         Config.MonitorPeeks + 1;
}
