//===- workloads/MVStore.cpp - Simplified H2 MVStore --------------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "workloads/MVStore.h"

using namespace crd;

MVStore::MVStore(SimRuntime &RT)
    : Data(RT), Chunks(RT), FreedPageSpace(RT), CurrentVersion(RT, 0),
      CacheHits(RT, 0), UnsavedMemory(RT, 0) {}

void MVStore::put(SimThread &T, const Value &Key, const Value &Val) {
  Data.put(T, Key, Val);
  // Racy bookkeeping of unsaved memory (read-modify-write on a plain field).
  UnsavedMemory.store(T, UnsavedMemory.load(T) + 16);
}

Value MVStore::get(SimThread &T, const Value &Key) {
  Value Result = Data.get(T, Key);
  // Racy cache statistics, as kept by the H2 page cache.
  CacheHits.store(T, CacheHits.load(T) + 1);
  return Result;
}

int64_t MVStore::count(SimThread &T) { return Data.size(T); }

void MVStore::commit(SimThread &T) {
  // A commit is intended to be atomic — mark it so the atomicity checker
  // can judge whether concurrent commits tear it.
  T.txBegin();
  // Unlocked read of the version counter (H2 keeps currentVersion in a
  // plain long on the hot path).
  int64_t Version = CurrentVersion.load(T);
  int64_t ChunkId = Version / VersionsPerChunk;
  Value ChunkKey = Value::integer(ChunkId);

  // Check-then-act on the chunks map: if the chunk metadata is absent,
  // "compute" it and store it. Two concurrent commits for the same chunk
  // both see nil and both compute — §7's harmful race #2. The computation
  // is expensive, so it completes in a later scheduler step, giving
  // concurrent commits room to interleave.
  Value Existing = Chunks.get(T, ChunkKey);
  T.defer([this, ChunkKey, Existing, Version](SimThread &T2) {
    if (Existing.isNil())
      Chunks.put(T2, ChunkKey, Value::integer(Version));

    // Read-modify-write on freedPageSpace: accumulate freed bytes for the
    // chunk. Concurrent commits can lose updates — §7's harmful race #1.
    Value Freed = FreedPageSpace.get(T2, ChunkKey);
    int64_t FreedBytes = Freed.isNil() ? 0 : Freed.asInt();
    FreedPageSpace.put(T2, ChunkKey, Value::integer(FreedBytes + 64));

    CurrentVersion.store(T2, Version + 1);
    UnsavedMemory.store(T2, 0);
    T2.txEnd();
  });
}

void MVStore::maintenanceTick(SimThread &T) {
  // Only racy plain-field traffic: flush decision based on unsaved memory.
  if (UnsavedMemory.load(T) > 1024)
    UnsavedMemory.store(T, 0);
  CacheHits.load(T);
}
