//===- workloads/MVStore.h - Simplified H2 MVStore --------------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simplified re-creation of the H2 database's Multi-Version Store — the
/// substrate of the paper's H2 experiments (§7). We model the parts the
/// reported races live in:
///
///   * `chunks`         — ConcurrentHashMap from chunk id to chunk metadata.
///     Commit uses a get-then-put (check-then-act) pattern, so two
///     concurrent commits can compute the same chunk metadata twice —
///     harmful commutativity race #2 of §7.
///   * `freedPageSpace` — ConcurrentHashMap from chunk id to freed bytes.
///     Concurrent read-modify-write updates can lose increments — harmful
///     commutativity race #1 of §7.
///   * `data`           — the user-visible key/value map queries operate on.
///   * racy cached statistics fields (version counter, cache hits) that the
///     low-level FastTrack detector flags.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_WORKLOADS_MVSTORE_H
#define CRD_WORKLOADS_MVSTORE_H

#include "runtime/InstrumentedMap.h"
#include "runtime/SimRuntime.h"

namespace crd {

/// Simplified multi-version store over instrumented concurrent hash maps.
class MVStore {
public:
  explicit MVStore(SimRuntime &RT);

  /// Stores \p Val under \p Key in the user data map and bumps the (racy)
  /// write counter.
  void put(SimThread &T, const Value &Key, const Value &Val);

  /// Reads \p Key from the user data map, updating the (racy) cache-hit
  /// statistic.
  Value get(SimThread &T, const Value &Key);

  /// Number of live keys (data map size()).
  int64_t count(SimThread &T);

  /// Commits the current version: allocates/updates chunk metadata with a
  /// get-then-put on `chunks` and accumulates into `freedPageSpace` with a
  /// get-then-put read-modify-write. Both patterns race when commits run
  /// concurrently.
  void commit(SimThread &T);

  /// Background-maintenance heartbeat touching only the racy statistics
  /// fields (no map actions). Gives the low-level detector something to
  /// find even in single-threaded circuits.
  void maintenanceTick(SimThread &T);

  InstrumentedMap &dataMap() { return Data; }
  InstrumentedMap &chunksMap() { return Chunks; }
  InstrumentedMap &freedPageSpaceMap() { return FreedPageSpace; }

private:
  static constexpr int64_t VersionsPerChunk = 4;

  InstrumentedMap Data;
  InstrumentedMap Chunks;
  InstrumentedMap FreedPageSpace;
  SharedField CurrentVersion;
  SharedField CacheHits;
  SharedField UnsavedMemory;
};

} // namespace crd

#endif // CRD_WORKLOADS_MVSTORE_H
