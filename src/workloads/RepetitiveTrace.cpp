//===- workloads/RepetitiveTrace.cpp - Chunk-repetitive trace gen -------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "workloads/RepetitiveTrace.h"

#include "support/Value.h"
#include "trace/Action.h"
#include "wire/WireWriter.h"

#include <algorithm>

using namespace crd;

namespace {

/// Worker thread ids are 1..Threads; thread 0 is the forking main thread.
ThreadId worker(unsigned I, unsigned Threads) {
  return ThreadId(1 + I % Threads);
}

/// One full chunk of per-thread lock churn. Each thread cycles acq/rel on
/// its own lock, so no cross-thread ordering is introduced, but every
/// release bumps the releasing thread's clock — entry-state churn that
/// invalidates any chunk summary recorded against the previous round.
void emitSyncChunk(const RepetitiveTraceConfig &C,
                   const std::function<void(const Event &)> &Emit) {
  for (unsigned I = 0; I != C.EventsPerBody; ++I) {
    ThreadId T = worker(I / 2, C.Threads);
    LockId L(1 + T.index());
    Emit(I % 2 == 0 ? Event::acquire(T, L) : Event::release(T, L));
  }
}

/// One body: a full chunk of sync-free invokes. Workers round-robin gets
/// on per-thread keys over the body's own objects (commuting — no races);
/// a racy body ends with two conflicting puts on a shared key.
void emitBody(const RepetitiveTraceConfig &C, unsigned Body,
              const std::function<void(const Event &)> &Emit) {
  Symbol Get = symbol("get");
  Symbol Put = symbol("put");
  uint32_t Base = 16 + Body * C.ObjectsPerBody;
  unsigned Invokes = C.EventsPerBody - (C.Racy ? 2 : 0);
  for (unsigned I = 0; I != Invokes; ++I) {
    ThreadId T = worker(I, C.Threads);
    ObjectId Obj(Base + (I / C.Threads) % C.ObjectsPerBody);
    Emit(Event::invoke(
        T, Action(Obj, Get, {Value::integer(T.index())}, Value::nil())));
  }
  if (C.Racy) {
    // Two concurrent puts on the same key of the body's first object:
    // put/put never commute, so each occurrence re-reports the same pair
    // of races (race reporting is stateless — only clocks are state).
    ObjectId Obj(Base);
    Emit(Event::invoke(worker(0, C.Threads),
                       Action(Obj, Put, {Value::integer(999), Value::integer(1)},
                              Value::nil())));
    Emit(Event::invoke(worker(1, C.Threads),
                       Action(Obj, Put, {Value::integer(999), Value::integer(2)},
                              Value::nil())));
  }
}

} // namespace

size_t crd::buildRepetitiveTrace(
    const RepetitiveTraceConfig &Config,
    const std::function<void(const Event &)> &Emit) {
  RepetitiveTraceConfig C = Config;
  C.Threads = std::max(1u, C.Threads);
  C.ObjectsPerBody = std::max(1u, C.ObjectsPerBody);
  C.EventsPerBody = std::max(C.Threads + 1, std::max(4u, C.EventsPerBody));

  // Prelude chunk: fork the workers, pad with main-thread gets on a
  // scratch object so the chunk is exactly full.
  ThreadId Main(0);
  for (unsigned T = 0; T != C.Threads; ++T)
    Emit(Event::fork(Main, ThreadId(1 + T)));
  Symbol Get = symbol("get");
  for (unsigned I = C.Threads; I != C.EventsPerBody; ++I)
    Emit(Event::invoke(
        Main, Action(ObjectId(1), Get, {Value::integer(0)}, Value::nil())));
  size_t Events = C.EventsPerBody;

  for (unsigned Rep = 0; Rep != C.Repetitions; ++Rep) {
    if (C.SyncEveryBodies != 0 && Rep % C.SyncEveryBodies == 0) {
      emitSyncChunk(C, Emit);
      Events += C.EventsPerBody;
    }
    for (unsigned Body = 0; Body != C.DistinctBodies; ++Body) {
      emitBody(C, Body, Emit);
      Events += C.EventsPerBody;
    }
  }
  return Events;
}

size_t crd::writeRepetitiveTrace(std::ostream &OS,
                                 const RepetitiveTraceConfig &Config) {
  unsigned Chunk = std::max(std::max(1u, Config.Threads) + 1,
                            std::max(4u, Config.EventsPerBody));
  wire::WireWriter Writer(OS, Chunk, /*WithDigests=*/true);
  size_t Events = buildRepetitiveTrace(
      Config, [&Writer](const Event &E) { Writer.append(E); });
  Writer.finish();
  return Events;
}
