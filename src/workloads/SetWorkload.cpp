//===- workloads/SetWorkload.cpp - set-based extension workload ---------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "workloads/SetWorkload.h"

#include <functional>
#include <memory>
#include <vector>

using namespace crd;

namespace {

void scheduleLoop(SimRuntime &RT, ThreadId Tid, unsigned Count,
                  std::function<void(SimThread &, unsigned)> Body) {
  for (unsigned I = 0; I != Count; ++I)
    RT.schedule(Tid, [Body, I](SimThread &T) { Body(T, I); });
}

} // namespace

size_t crd::buildUniqueVisitors(SimRuntime &RT, InstrumentedSet &Visitors,
                                const SetWorkloadConfig &Config) {
  ThreadId Main = RT.addInitialThread();

  auto Threads = std::make_shared<std::vector<ThreadId>>();
  RT.schedule(Main, [&RT, &Visitors, Config, Threads](SimThread &T) {
    for (unsigned W = 0; W != Config.WriterThreads; ++W) {
      ThreadId Tid = T.fork([](SimThread &) {});
      Threads->push_back(Tid);
      scheduleLoop(RT, Tid, Config.AddsPerWriter,
                   [&Visitors, Config](SimThread &T2, unsigned) {
                     int64_t Visitor = static_cast<int64_t>(
                         T2.random(Config.VisitorRange));
                     Visitors.add(T2, Value::integer(Visitor));
                   });
    }
    // The reporter polls size() concurrently with the writers.
    ThreadId Reporter = T.fork([](SimThread &) {});
    Threads->push_back(Reporter);
    unsigned Polls =
        Config.WriterThreads * Config.AddsPerWriter / Config.ReportEvery;
    scheduleLoop(RT, Reporter, Polls,
                 [&Visitors](SimThread &T2, unsigned) { Visitors.size(T2); });
  });

  unsigned Total = Config.WriterThreads + 1;
  for (unsigned I = 0; I != Total; ++I)
    RT.schedule(Main, [Threads, I](SimThread &T) { T.join((*Threads)[I]); });
  RT.schedule(Main, [&Visitors](SimThread &T) { Visitors.size(T); });

  return static_cast<size_t>(Config.WriterThreads) * Config.AddsPerWriter +
         static_cast<size_t>(Config.WriterThreads) * Config.AddsPerWriter /
             Config.ReportEvery +
         1;
}
