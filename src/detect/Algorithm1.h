//===- detect/Algorithm1.h - Shared Algorithm 1 engine ----------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The clock-independent core of Algorithm 1: given an action event together
/// with its vector clock vc(e), run
///
///   phase 1: for every touched point pt, probe active(o) ∩ Co(pt) and
///            report a race when a conflicting point's accumulated clock is
///            not ⊑ vc(e);
///   phase 2: accumulate vc(e) into the clocks of all touched points,
///            activating them on first touch.
///
/// All of this state is partitioned by object — phase 1 and phase 2 for an
/// event on object o read and write only active(o) — which is exactly what
/// lets ParallelDetector run one engine per object shard with no locking.
///
/// Hot-path layout: every table on the per-event path is a FlatMap (open
/// addressing, contiguous storage) instead of node-based unordered_map, and
/// each object's state bundles its active-point table with the resolved
/// provider, so the common case — a run of actions on the same object —
/// costs zero table probes for object + binding resolution (a one-entry
/// cache) and one flat probe per conflict class.
///
/// The engine is parameterized over the accumulated-clock representation:
/// EpochClock (the default; O(1) probes and joins while a point's history
/// is HB-totally-ordered) or FullClockRep (the seed's always-full
/// VectorClock, kept for ablation benchmarks).
///
//===----------------------------------------------------------------------===//

#ifndef CRD_DETECT_ALGORITHM1_H
#define CRD_DETECT_ALGORITHM1_H

#include "access/Provider.h"
#include "detect/Race.h"
#include "support/EpochClock.h"
#include "support/FlatMap.h"
#include "support/Metrics.h"
#include "support/Prefetch.h"
#include "trace/Event.h"

#include <array>
#include <cassert>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

namespace crd {

/// Always-full accumulated clock: the representation the seed detector
/// used for every active point. Ablation baseline for EpochClock.
struct FullClockRep {
  VectorClock Clock;

  bool leq(const VectorClock &C) const { return Clock.leq(C); }
  /// Returns true when the representation changed (see EpochClock).
  bool accumulate(const VectorClock &C, ThreadId) {
    return Clock.joinWith(C);
  }
  VectorClock toClock() const { return Clock; }
};

/// Counters an Algorithm 1 engine accumulates while processing (zeros in a
/// CRD_METRICS=OFF build, except ConflictChecks which the §5.4 experiments
/// consume unconditionally). One instance per engine — per shard for the
/// parallel detector. Schema: docs/observability.md.
struct Algorithm1Stats {
  uint64_t Actions = 0;          ///< onAction invocations.
  uint64_t ConflictChecks = 0;   ///< Phase-1 conflict-partner probes.
  uint64_t ObjectCacheHits = 0;  ///< stateFor resolved by the one-entry cache.
  uint64_t ObjectCacheMisses = 0;///< stateFor fell through to the table.
  uint64_t Activations = 0;      ///< Access points activated (first touch).
  uint64_t ActivePoints = 0;     ///< Currently active points (live objects).
  uint64_t KernelEvents = 0;     ///< Actions executed through onRun().
  uint64_t PrefetchesIssued = 0; ///< Prefetch hints the lookahead issued.
  /// Lookahead-ring occupancy at execute time: bucket d counts executions
  /// that had d staged events in flight (bucket 8 = full pipeline).
  std::array<uint64_t, 9> LookaheadOccupancy{};
  uint64_t LookaheadOccupancyMax = 0;
};

/// Phases 1–2 of Algorithm 1 over per-object active-point tables.
template <typename ClockRep> class BasicAlgorithm1Engine {
  /// Per-object detector state: the active-point table plus the provider
  /// resolved once at creation (re-resolved on bind()/adoptBindings()), so
  /// onAction never consults the bindings table. Heap-allocated so the
  /// one-entry LastState cache survives Objects rehashes. (Declared before
  /// the public section: onRun()/onActionResolved() below take it by
  /// reference.)
  struct ObjectState {
    FlatMap<AccessPoint, ClockRep> Active;
    const AccessPointProvider *Provider = nullptr;
    /// Mutation stamp of the last change to this object's state. Global
    /// (engine-wide) stamps make versions unambiguous across objectDied()
    /// + re-creation, which per-object counters would alias.
    uint64_t Version = 0;
  };

public:
  BasicAlgorithm1Engine() = default;

  /// Binds the representation used for actions on \p Obj. Bindings live in
  /// their own map so they survive objectDied() reclamation.
  void bind(ObjectId Obj, const AccessPointProvider *Provider) {
    assert(Provider && "null provider");
    ++ConfigStamp;
    Bindings[Obj] = Provider;
    if (auto *State = Objects.find(Obj))
      (*State)->Provider = Provider;
  }

  /// Representation used for objects without an explicit bind().
  void setDefaultProvider(const AccessPointProvider *Provider) {
    ++ConfigStamp;
    DefaultProvider = Provider;
    refreshProviders();
  }

  /// Copies another engine's bindings (used to replicate the configuration
  /// into per-shard engines).
  void adoptBindings(const BasicAlgorithm1Engine &Other) {
    ++ConfigStamp;
    Bindings = Other.Bindings;
    DefaultProvider = Other.DefaultProvider;
    refreshProviders();
  }

  /// Runs both phases for one action event \p A executed by \p Thread with
  /// clock \p Clock at trace position \p EventIndex.
  void onAction(const Action &A, ThreadId Thread, const VectorClock &Clock,
                size_t EventIndex) {
    onActionResolved(A, Thread, Clock, EventIndex, stateFor(A.object()));
  }

  /// Lookahead depth of the batched kernel (onRun): the number of upcoming
  /// actions whose object state is resolved and prefetched ahead of the
  /// phase-1/2 pipeline. 8 covers the state-line latency at the observed
  /// ~30ns/action execute cost without outrunning the L1 prefetch budget.
  static constexpr size_t LookaheadDepth = 8;

  /// The batched detection kernel: executes the actions of one run (a
  /// sync-free stretch, so every thread's clock is constant throughout)
  /// given their positions inside \p Evs. A software-pipelined lookahead
  /// stage stays up to LookaheadDepth actions ahead of execution, resolving
  /// each action's object state (through a run-local last-object cache
  /// hoisted out of stateFor) and issuing prefetch hints on the state and
  /// its active-point table; the execute stage then runs the exact
  /// onAction() phases in event order, resolving clocks through \p Resolve
  /// (memoized across consecutive same-thread actions — valid precisely
  /// because no sync event intervenes within a run).
  ///
  /// \p Pos holds \p NPos ascending positions of invoke events in \p Evs;
  /// \p Evs[Pos[i]] must be an invoke. Positions are reported to race
  /// records as \p BaseIndex + Pos[i]. \p Filter selects the actions this
  /// engine owns (shard routing; return true for all on the sequential
  /// path) — filtered-out actions cost one call, no state. \p Resolve maps
  /// a ThreadId to that thread's run clock (stable reference for the whole
  /// run). Returns the number of actions executed.
  ///
  /// Determinism: admitted actions execute in the same order with the same
  /// clocks as the per-event path; the lookahead stage only creates empty
  /// ObjectStates earlier than stateFor would have (idempotent — stamp
  /// *values* may differ from the per-event path, but stamps never appear
  /// in race reports and are self-consistent within one execution), so
  /// race reports are bit-identical.
  template <typename ResolveF, typename FilterF>
  size_t onRun(const Event *Evs, const uint32_t *Pos, size_t NPos,
               size_t BaseIndex, ResolveF &&Resolve, FilterF &&Filter) {
    struct Staged {
      const Event *E;
      ObjectState *State;
      uint32_t Position;
    };
    Staged Ring[LookaheadDepth];
    size_t Head = 0, InFlight = 0, Next = 0, Executed = 0;
    // Run-local last-object cache: hoisted out of stateFor so the common
    // same-object run never reloads the member cache across the opaque
    // provider/clock calls in the execute stage.
    ObjectState *CachedState = nullptr;
    ObjectId CachedObj;

    auto stage = [&] {
      while (InFlight < LookaheadDepth && Next < NPos) {
        uint32_t P = Pos[Next++];
        const Event &E = Evs[P];
        const Action &A = E.action();
        if (!Filter(A))
          continue;
        ObjectState *S;
        if (CachedState && CachedObj == A.object()) {
          CacheHits.inc();
          S = CachedState;
        } else {
          S = &stateFor(A.object());
          CachedState = S;
          CachedObj = A.object();
        }
        // Warm the lines execution will touch: the state itself and its
        // active-point table's control/slot storage.
        prefetchRead(S);
        S->Active.prefetchProbe();
        if constexpr (PrefetchEnabled)
          Prefetches.add(3);
        Ring[(Head + InFlight) % LookaheadDepth] = {&E, S, P};
        ++InFlight;
      }
    };

    // Consecutive-same-thread clock memo. Safe to reuse only with no
    // intervening Resolve call: a resolver may grow its backing storage
    // (e.g. the shard-synthesized clock table) and invalidate earlier
    // references, and any intervening call here overwrites the memo.
    const VectorClock *CachedClock = nullptr;
    ThreadId CachedThread;

    stage();
    while (InFlight != 0) {
      LookaheadOcc.record(InFlight);
      Staged St = Ring[Head];
      Head = (Head + 1) % LookaheadDepth;
      --InFlight;
      ThreadId T = St.E->thread();
      if (!CachedClock || !(CachedThread == T)) {
        CachedClock = &Resolve(T);
        CachedThread = T;
      }
      onActionResolved(St.E->action(), T, *CachedClock,
                       BaseIndex + St.Position, *St.State);
      ++Executed;
      stage();
    }
    KernelEventsCtr.add(Executed);
    return Executed;
  }

  /// onAction() with the per-object state already resolved — the execute
  /// stage of onRun(), and the tail of onAction() itself.
  void onActionResolved(const Action &A, ThreadId Thread,
                        const VectorClock &Clock, size_t EventIndex,
                        ObjectState &State) {
    ActionsSeen.inc();
    const AccessPointProvider *Provider = State.Provider;
    assert(Provider && "object has no bound access point provider");

    Scratch.clear();
    Provider->touches(A, Scratch);

    // Phase 1: probe for conflicting active points.
    for (const AccessPoint &Pt : Scratch) {
      for (uint32_t Partner : Provider->conflictsOf(Pt.ClassId)) {
        ++ConflictChecks;
        // Value-carrying classes only conflict on equal values, so the
        // probe key reuses Pt's value; plain classes probe the bare class.
        AccessPoint Key = Provider->classCarriesValue(Partner)
                              ? AccessPoint::withValue(Partner, Pt.Val)
                              : AccessPoint::plain(Partner);
        assert((Provider->classCarriesValue(Partner) == Pt.HasValue) &&
               "conflicts must not cross value-carrying and plain classes");
        const ClockRep *Prior = State.Active.find(Key);
        if (!Prior)
          continue;
        if (!Prior->leq(Clock)) {
          CommutativityRace Race;
          Race.EventIndex = EventIndex;
          Race.Thread = Thread;
          Race.Current = A;
          Race.PointName = Provider->className(Partner);
          Race.PriorClock = Prior->toClock();
          Race.CurrentClock = Clock;
          Races.push_back(std::move(Race));
          RacyObjects.insert(A.object());
        }
      }
    }

    // Phase 2: accumulate this event's clock into every touched point.
    for (const AccessPoint &Pt : Scratch) {
      auto [Rep, Inserted] = State.Active.tryEmplace(Pt);
      bool Changed = Rep->accumulate(Clock, Thread);
      if (Inserted || Changed)
        State.Version = ++MutStamp;
      if (Inserted) {
        ++ActivePoints;
        Activations.inc();
      }
    }
  }

  /// Reclaims all auxiliary state of a dead object (paper §5.3): its
  /// active-point table is erased outright, so long-running workloads do
  /// not accrete empty per-object slots. The provider binding survives.
  void objectDied(ObjectId Obj) {
    auto *State = Objects.find(Obj);
    if (!State)
      return;
    ++MutStamp; // Erasure is a state mutation (objectVersion drops to 0).
    ActivePoints -= (*State)->Active.size();
    if (LastState == State->get())
      LastState = nullptr;
    Objects.erase(Obj);
  }

  const std::vector<CommutativityRace> &races() const { return Races; }
  std::vector<CommutativityRace> takeRaces() {
    return std::exchange(Races, {});
  }

  const std::unordered_set<ObjectId> &racyObjects() const {
    return RacyObjects;
  }
  size_t distinctRacyObjects() const { return RacyObjects.size(); }
  size_t conflictChecks() const { return ConflictChecks; }

  /// Total number of currently active access points across live objects.
  /// Maintained incrementally; O(1).
  size_t activePointCount() const { return ActivePoints; }

  //===--------------------------------------------------------------------===//
  // Chunk-memoization support (detect/ChunkMemo.h). A chunk summary is a
  // pure function of (entry state restricted to its footprint, chunk
  // bytes): the stamps below let the memo layer prove "entry state
  // unchanged" in O(footprint) and "interpretation was a state no-op" in
  // O(1), without hashing any clock.
  //===--------------------------------------------------------------------===//

  /// Monotonic stamp bumped on every observable engine-state mutation:
  /// object-state creation/erasure and any active-point representation
  /// change. Race pushes and counters are deliberately excluded — a
  /// summary reproduces those itself.
  uint64_t mutationStamp() const { return MutStamp; }

  /// Bumped by bind()/setDefaultProvider()/adoptBindings(): summaries
  /// depend on the provider configuration (touches/conflicts/className)
  /// and must be invalidated when it changes.
  uint64_t configStamp() const { return ConfigStamp; }

  /// Version of \p Obj's per-object state: 0 when absent, else the
  /// mutation stamp of its last change. Two equal reads with no config
  /// change in between imply bit-identical phase-1/2 behavior for any
  /// fixed action sequence on the object.
  uint64_t objectVersion(ObjectId Obj) const {
    const auto *State = Objects.find(Obj);
    return State ? (*State)->Version : 0;
  }

  /// Replays one summarized race: pushes the (re-based) report and marks
  /// the object racy, exactly as phase 1 would have.
  void replayRace(const CommutativityRace &Race) {
    RacyObjects.insert(Race.Current.object());
    Races.push_back(Race);
  }

  /// Adds a replayed chunk's counter deltas (phase-1 probes and actions).
  void addReplayStats(uint64_t Conflicts, uint64_t Actions) {
    ConflictChecks += Conflicts;
    ActionsSeen.add(Actions);
  }

  /// Metrics snapshot (docs/observability.md). ConflictChecks is always
  /// live; the other counters read zero in a CRD_METRICS=OFF build.
  Algorithm1Stats stats() const {
    Algorithm1Stats S;
    S.Actions = ActionsSeen.get();
    S.ConflictChecks = ConflictChecks;
    S.ObjectCacheHits = CacheHits.get();
    S.ObjectCacheMisses = CacheMisses.get();
    S.Activations = Activations.get();
    S.ActivePoints = ActivePoints;
    S.KernelEvents = KernelEventsCtr.get();
    S.PrefetchesIssued = Prefetches.get();
    S.LookaheadOccupancy = LookaheadOcc.counts();
    S.LookaheadOccupancyMax = LookaheadOcc.max();
    return S;
  }

  /// Snapshot of an object's active points with materialized clocks
  /// (diagnostic/testing API; order unspecified).
  std::vector<std::pair<AccessPoint, VectorClock>>
  activePoints(ObjectId Obj) const {
    std::vector<std::pair<AccessPoint, VectorClock>> Out;
    const auto *State = Objects.find(Obj);
    if (!State)
      return Out;
    Out.reserve((*State)->Active.size());
    for (const auto &[Pt, Clock] : (*State)->Active)
      Out.emplace_back(Pt, Clock.toClock());
    return Out;
  }

private:
  ObjectState &stateFor(ObjectId Obj) {
    if (LastState && LastObj == Obj) {
      CacheHits.inc();
      return *LastState;
    }
    CacheMisses.inc();
    auto [Slot, Inserted] = Objects.tryEmplace(Obj);
    if (Inserted) {
      *Slot = std::make_unique<ObjectState>();
      const AccessPointProvider *const *Bound = Bindings.find(Obj);
      (*Slot)->Provider = Bound ? *Bound : DefaultProvider;
      (*Slot)->Version = ++MutStamp;
    }
    LastState = Slot->get();
    LastObj = Obj;
    return **Slot;
  }

  void refreshProviders() {
    for (auto &[Obj, State] : Objects) {
      const AccessPointProvider *const *Bound = Bindings.find(Obj);
      State->Provider = Bound ? *Bound : DefaultProvider;
    }
  }

  FlatMap<ObjectId, const AccessPointProvider *> Bindings;
  FlatMap<ObjectId, std::unique_ptr<ObjectState>> Objects;
  const AccessPointProvider *DefaultProvider = nullptr;
  /// One-entry cache for the common run of actions on the same object.
  ObjectState *LastState = nullptr;
  ObjectId LastObj;
  std::vector<CommutativityRace> Races;
  std::unordered_set<ObjectId> RacyObjects;
  std::vector<AccessPoint> Scratch;
  size_t ConflictChecks = 0;
  size_t ActivePoints = 0;
  uint64_t MutStamp = 0;   ///< See mutationStamp().
  uint64_t ConfigStamp = 0;///< See configStamp().
  /// Observability counters (single writer — the thread driving the
  /// engine; no-ops when CRD_METRICS=0).
  metrics::Counter ActionsSeen;
  metrics::Counter CacheHits;
  metrics::Counter CacheMisses;
  metrics::Counter Activations;
  metrics::Counter KernelEventsCtr;
  metrics::Counter Prefetches;
  metrics::LinearHistogram<LookaheadDepth + 1> LookaheadOcc;
};

/// The production engine: epoch-compressed accumulated clocks.
using Algorithm1Engine = BasicAlgorithm1Engine<EpochClock>;

} // namespace crd

#endif // CRD_DETECT_ALGORITHM1_H
