//===- detect/Algorithm1.h - Shared Algorithm 1 engine ----------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The clock-independent core of Algorithm 1: given an action event together
/// with its vector clock vc(e), run
///
///   phase 1: for every touched point pt, probe active(o) ∩ Co(pt) and
///            report a race when a conflicting point's accumulated clock is
///            not ⊑ vc(e);
///   phase 2: accumulate vc(e) into the clocks of all touched points,
///            activating them on first touch.
///
/// All of this state is partitioned by object — phase 1 and phase 2 for an
/// event on object o read and write only active(o) — which is exactly what
/// lets ParallelDetector run one engine per object shard with no locking.
///
/// The engine is parameterized over the accumulated-clock representation:
/// EpochClock (the default; O(1) probes and joins while a point's history
/// is HB-totally-ordered) or FullClockRep (the seed's always-full
/// VectorClock, kept for ablation benchmarks).
///
//===----------------------------------------------------------------------===//

#ifndef CRD_DETECT_ALGORITHM1_H
#define CRD_DETECT_ALGORITHM1_H

#include "access/Provider.h"
#include "detect/Race.h"
#include "support/EpochClock.h"

#include <cassert>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace crd {

/// Always-full accumulated clock: the representation the seed detector
/// used for every active point. Ablation baseline for EpochClock.
struct FullClockRep {
  VectorClock Clock;

  bool leq(const VectorClock &C) const { return Clock.leq(C); }
  void accumulate(const VectorClock &C, ThreadId) { Clock.joinWith(C); }
  VectorClock toClock() const { return Clock; }
};

/// Phases 1–2 of Algorithm 1 over per-object active-point tables.
template <typename ClockRep> class BasicAlgorithm1Engine {
public:
  BasicAlgorithm1Engine() = default;

  /// Binds the representation used for actions on \p Obj. Bindings live in
  /// their own map so they survive objectDied() reclamation.
  void bind(ObjectId Obj, const AccessPointProvider *Provider) {
    assert(Provider && "null provider");
    Bindings[Obj] = Provider;
  }

  /// Representation used for objects without an explicit bind().
  void setDefaultProvider(const AccessPointProvider *Provider) {
    DefaultProvider = Provider;
  }

  /// Copies another engine's bindings (used to replicate the configuration
  /// into per-shard engines).
  void adoptBindings(const BasicAlgorithm1Engine &Other) {
    Bindings = Other.Bindings;
    DefaultProvider = Other.DefaultProvider;
  }

  /// Runs both phases for one action event \p A executed by \p Thread with
  /// clock \p Clock at trace position \p EventIndex.
  void onAction(const Action &A, ThreadId Thread, const VectorClock &Clock,
                size_t EventIndex) {
    auto BindingIt = Bindings.find(A.object());
    const AccessPointProvider *Provider =
        BindingIt != Bindings.end() ? BindingIt->second : DefaultProvider;
    assert(Provider && "object has no bound access point provider");
    auto &Active = Objects[A.object()];

    Scratch.clear();
    Provider->touches(A, Scratch);

    // Phase 1: probe for conflicting active points.
    for (const AccessPoint &Pt : Scratch) {
      for (uint32_t Partner : Provider->conflictsOf(Pt.ClassId)) {
        ++ConflictChecks;
        // Value-carrying classes only conflict on equal values, so the
        // probe key reuses Pt's value; plain classes probe the bare class.
        AccessPoint Key = Provider->classCarriesValue(Partner)
                              ? AccessPoint::withValue(Partner, Pt.Val)
                              : AccessPoint::plain(Partner);
        assert((Provider->classCarriesValue(Partner) == Pt.HasValue) &&
               "conflicts must not cross value-carrying and plain classes");
        auto It = Active.find(Key);
        if (It == Active.end())
          continue;
        if (!It->second.leq(Clock)) {
          CommutativityRace Race;
          Race.EventIndex = EventIndex;
          Race.Thread = Thread;
          Race.Current = A;
          Race.PointName = Provider->className(Partner);
          Race.PriorClock = It->second.toClock();
          Race.CurrentClock = Clock;
          Races.push_back(std::move(Race));
          RacyObjects.insert(A.object());
        }
      }
    }

    // Phase 2: accumulate this event's clock into every touched point.
    for (const AccessPoint &Pt : Scratch) {
      auto [It, Inserted] = Active.try_emplace(Pt);
      It->second.accumulate(Clock, Thread);
      if (Inserted)
        ++ActivePoints;
    }
  }

  /// Reclaims all auxiliary state of a dead object (paper §5.3): its
  /// active-point table is erased outright, so long-running workloads do
  /// not accrete empty per-object slots. The provider binding survives.
  void objectDied(ObjectId Obj) {
    auto It = Objects.find(Obj);
    if (It == Objects.end())
      return;
    ActivePoints -= It->second.size();
    Objects.erase(It);
  }

  const std::vector<CommutativityRace> &races() const { return Races; }
  std::vector<CommutativityRace> takeRaces() {
    return std::exchange(Races, {});
  }

  const std::unordered_set<ObjectId> &racyObjects() const {
    return RacyObjects;
  }
  size_t distinctRacyObjects() const { return RacyObjects.size(); }
  size_t conflictChecks() const { return ConflictChecks; }

  /// Total number of currently active access points across live objects.
  /// Maintained incrementally; O(1).
  size_t activePointCount() const { return ActivePoints; }

  /// Snapshot of an object's active points with materialized clocks
  /// (diagnostic/testing API; order unspecified).
  std::vector<std::pair<AccessPoint, VectorClock>>
  activePoints(ObjectId Obj) const {
    std::vector<std::pair<AccessPoint, VectorClock>> Out;
    auto It = Objects.find(Obj);
    if (It == Objects.end())
      return Out;
    Out.reserve(It->second.size());
    for (const auto &[Pt, Clock] : It->second)
      Out.emplace_back(Pt, Clock.toClock());
    return Out;
  }

private:
  std::unordered_map<ObjectId, const AccessPointProvider *> Bindings;
  std::unordered_map<ObjectId, std::unordered_map<AccessPoint, ClockRep>>
      Objects;
  const AccessPointProvider *DefaultProvider = nullptr;
  std::vector<CommutativityRace> Races;
  std::unordered_set<ObjectId> RacyObjects;
  std::vector<AccessPoint> Scratch;
  size_t ConflictChecks = 0;
  size_t ActivePoints = 0;
};

/// The production engine: epoch-compressed accumulated clocks.
using Algorithm1Engine = BasicAlgorithm1Engine<EpochClock>;

} // namespace crd

#endif // CRD_DETECT_ALGORITHM1_H
