//===- detect/Summary.h - race report summarization -------------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregation of raw race reports into the per-object / per-access-point
/// view a developer triages from — the paper's observation that "most
/// races are highly redundant" made actionable: thousands of reports
/// usually collapse into a handful of (object, point class) groups.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_DETECT_SUMMARY_H
#define CRD_DETECT_SUMMARY_H

#include "detect/Race.h"

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace crd {

/// Grouped view of a batch of commutativity races.
class RaceSummary {
public:
  struct ObjectGroup {
    ObjectId Obj;
    size_t Count = 0;
    size_t FirstEvent = 0; ///< Event index of the earliest race.
    Action FirstAction;    ///< Action of the earliest race.
    /// Reports per conflicting access point class name.
    std::map<std::string, size_t> ByPoint;
    /// Reports per method of the current action.
    std::map<std::string, size_t> ByMethod;
  };

  /// Builds the summary from raw reports.
  static RaceSummary build(const std::vector<CommutativityRace> &Races);

  size_t total() const { return Total; }
  /// Groups sorted by descending report count.
  const std::vector<ObjectGroup> &objects() const { return Groups; }

  /// Renders a compact triage report.
  void print(std::ostream &OS) const;
  std::string toString() const;

private:
  size_t Total = 0;
  std::vector<ObjectGroup> Groups;
};

} // namespace crd

#endif // CRD_DETECT_SUMMARY_H
