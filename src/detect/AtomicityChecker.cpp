//===- detect/AtomicityChecker.cpp - commutativity-aware atomicity ------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "detect/AtomicityChecker.h"

#include <cassert>
#include <map>
#include <ostream>
#include <sstream>

using namespace crd;

std::string AtomicityViolation::toString() const {
  std::ostringstream OS;
  OS << *this;
  return OS.str();
}

std::ostream &crd::operator<<(std::ostream &OS, const AtomicityViolation &V) {
  OS << "atomic block of T" << V.Thread.index() << " (events "
     << V.BeginEvent << ".." << V.EndEvent
     << ") is not conflict-serializable; cycle through events:";
  for (size_t E : V.CycleEvents)
    OS << ' ' << E;
  return OS;
}

void AtomicityChecker::bind(ObjectId Obj, const AccessPointProvider *Provider) {
  assert(Provider && "null provider");
  Providers[Obj] = Provider;
}

const AccessPointProvider *AtomicityChecker::providerFor(ObjectId Obj) const {
  auto It = Providers.find(Obj);
  if (It != Providers.end())
    return It->second;
  assert(DefaultProvider && "object has no bound access point provider");
  return DefaultProvider;
}

namespace {

/// One node of the transactional graph: an atomic block or a unary event.
struct TxNode {
  ThreadId Thread;
  size_t Begin = 0;
  size_t End = 0;
  bool Atomic = false;
  std::vector<size_t> Events;
};

} // namespace

std::vector<AtomicityViolation> AtomicityChecker::check(const Trace &T) {
  // Phase 1: partition events into transactions.
  std::vector<TxNode> Nodes;
  std::vector<uint32_t> NodeOf(T.size(), 0);
  std::unordered_map<uint32_t, uint32_t> OpenBlockOf; // thread -> node
  std::unordered_map<uint32_t, std::vector<uint32_t>> NodesOfThread;

  for (size_t I = 0, E = T.size(); I != E; ++I) {
    const Event &Ev = T[I];
    uint32_t Tid = Ev.thread().index();

    uint32_t Node;
    if (auto It = OpenBlockOf.find(Tid); It != OpenBlockOf.end()) {
      Node = It->second;
      Nodes[Node].End = I;
      if (Ev.kind() == EventKind::TxEnd)
        OpenBlockOf.erase(It);
    } else {
      Node = static_cast<uint32_t>(Nodes.size());
      Nodes.push_back({Ev.thread(), I, I, Ev.kind() == EventKind::TxBegin, {}});
      NodesOfThread[Tid].push_back(Node);
      if (Ev.kind() == EventKind::TxBegin)
        OpenBlockOf[Tid] = Node;
    }
    Nodes[Node].Events.push_back(I);
    NodeOf[I] = Node;
  }

  // Phase 2: edges, keyed (from, to) with one representative "to" event.
  std::map<std::pair<uint32_t, uint32_t>, size_t> Edges;
  auto AddEdge = [&](uint32_t From, uint32_t To, size_t WitnessEvent) {
    if (From == To)
      return;
    Edges.emplace(std::make_pair(From, To), WitnessEvent);
  };

  // Program order.
  for (const auto &[Tid, List] : NodesOfThread) {
    (void)Tid;
    for (size_t I = 1; I < List.size(); ++I)
      AddEdge(List[I - 1], List[I], Nodes[List[I]].Begin);
  }

  // Synchronization order.
  {
    std::unordered_map<uint32_t, size_t> LastReleaseOfLock;
    std::unordered_map<uint32_t, size_t> ForkEventOfThread;
    std::unordered_map<uint32_t, size_t> LastEventOfThread;
    for (size_t I = 0, E = T.size(); I != E; ++I) {
      const Event &Ev = T[I];
      uint32_t Tid = Ev.thread().index();
      if (auto It = ForkEventOfThread.find(Tid);
          It != ForkEventOfThread.end()) {
        AddEdge(NodeOf[It->second], NodeOf[I], I);
        ForkEventOfThread.erase(It);
      }
      switch (Ev.kind()) {
      case EventKind::Fork:
        ForkEventOfThread[Ev.other().index()] = I;
        break;
      case EventKind::Join:
        if (auto It = LastEventOfThread.find(Ev.other().index());
            It != LastEventOfThread.end())
          AddEdge(NodeOf[It->second], NodeOf[I], I);
        break;
      case EventKind::Acquire:
        if (auto It = LastReleaseOfLock.find(Ev.lock().index());
            It != LastReleaseOfLock.end())
          AddEdge(NodeOf[It->second], NodeOf[I], I);
        break;
      case EventKind::Release:
        LastReleaseOfLock[Ev.lock().index()] = I;
        break;
      default:
        break;
      }
      LastEventOfThread[Tid] = I;
    }
  }

  // Optional low-level conflict order (the Velodrome baseline): same
  // location, at least one write, different nodes.
  if (IncludeMemoryConflicts) {
    std::unordered_map<uint32_t, std::vector<size_t>> AccessesOf;
    for (size_t I = 0, E = T.size(); I != E; ++I)
      if (T[I].isMemoryAccess())
        AccessesOf[T[I].var().index()].push_back(I);
    for (const auto &[Var, Accesses] : AccessesOf) {
      (void)Var;
      for (size_t A = 0; A != Accesses.size(); ++A)
        for (size_t B = A + 1; B != Accesses.size(); ++B) {
          size_t I = Accesses[A], J = Accesses[B];
          if (NodeOf[I] == NodeOf[J])
            continue;
          if (T[I].kind() == EventKind::Write ||
              T[J].kind() == EventKind::Write)
            AddEdge(NodeOf[I], NodeOf[J], J);
        }
    }
  }

  // Conflict order over access points.
  std::vector<size_t> Invokes;
  for (size_t I = 0, E = T.size(); I != E; ++I)
    if (T[I].isInvoke())
      Invokes.push_back(I);
  for (size_t A = 0; A != Invokes.size(); ++A) {
    for (size_t B = A + 1; B != Invokes.size(); ++B) {
      size_t I = Invokes[A], J = Invokes[B];
      if (NodeOf[I] == NodeOf[J])
        continue;
      const Action &X = T[I].action();
      const Action &Y = T[J].action();
      if (X.object() != Y.object())
        continue;
      if (actionsConflict(*providerFor(X.object()), X, Y))
        AddEdge(NodeOf[I], NodeOf[J], J);
    }
  }

  // Phase 3: for every atomic node, look for a cycle through it.
  std::vector<std::vector<uint32_t>> Succ(Nodes.size());
  for (const auto &[Edge, Witness] : Edges) {
    (void)Witness;
    Succ[Edge.first].push_back(Edge.second);
  }

  std::vector<AtomicityViolation> Violations;
  for (uint32_t Target = 0; Target != Nodes.size(); ++Target) {
    if (!Nodes[Target].Atomic)
      continue;
    // DFS from Target's successors searching a path back to Target.
    std::vector<uint32_t> Stack = Succ[Target];
    std::vector<bool> Visited(Nodes.size(), false);
    std::vector<uint32_t> Parent(Nodes.size(), UINT32_MAX);
    for (uint32_t S : Stack)
      Parent[S] = Target;
    bool Found = false;
    while (!Stack.empty() && !Found) {
      uint32_t N = Stack.back();
      Stack.pop_back();
      if (N == Target) {
        Found = true;
        break;
      }
      if (Visited[N])
        continue;
      Visited[N] = true;
      for (uint32_t S : Succ[N]) {
        if (Parent[S] == UINT32_MAX)
          Parent[S] = N;
        if (S == Target) {
          Found = true;
          Parent[Target] = N;
          break;
        }
        if (!Visited[S])
          Stack.push_back(S);
      }
    }
    if (!Found)
      continue;

    AtomicityViolation V;
    V.Thread = Nodes[Target].Thread;
    V.BeginEvent = Nodes[Target].Begin;
    V.EndEvent = Nodes[Target].End;
    // Reconstruct the cycle path Target -> ... -> Target via Parent links.
    uint32_t Cur = Parent[Target];
    size_t Guard = 0;
    while (Cur != Target && Cur != UINT32_MAX && Guard++ < Nodes.size()) {
      V.CycleEvents.push_back(Nodes[Cur].Begin);
      Cur = Parent[Cur];
    }
    Violations.push_back(std::move(V));
  }
  return Violations;
}
