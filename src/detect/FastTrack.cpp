//===- detect/FastTrack.cpp - FastTrack read-write race detector -------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "detect/FastTrack.h"

using namespace crd;

void FastTrackDetector::process(const Event &E) {
  ++EventIndex;
  switch (E.kind()) {
  case EventKind::Read:
    handleRead(E);
    break;
  case EventKind::Write:
    handleWrite(E);
    break;
  default:
    break;
  }
  VCState.process(E);
}

void FastTrackDetector::processTrace(const Trace &T) {
  for (const Event &E : T)
    process(E);
}

void FastTrackDetector::report(MemoryRace::Kind Kind, VarId Var,
                               ThreadId Prior, ThreadId Current) {
  Races.push_back({EventIndex - 1, Var, Kind, Prior, Current});
  RacyVars.insert(Var);
}

void FastTrackDetector::handleRead(const Event &E) {
  Reads.inc();
  const VectorClock &C = VCState.clockOf(E.thread());
  VarState &X = Vars[E.var()];
  uint32_t Now = C.get(E.thread());

  // [Read Same Epoch] / [Read Shared Same Epoch]
  if (X.Read.sameEpoch(E.thread(), Now)) {
    SameEpochHits.inc();
    return;
  }
  if (X.Read.isShared() && X.Read.localOf(E.thread()) == Now) {
    SameEpochHits.inc();
    return;
  }

  // Write-read race check.
  if (!X.Write.leq(C))
    report(MemoryRace::Kind::WriteRead, E.var(), X.Write.Tid, E.thread());

  if (!X.Read.isShared()) {
    // [Read Exclusive] — the previous read is ordered before this one.
    if (X.Read.isBottom() || X.Read.leq(C)) {
      X.Read.setEpoch(E.thread(), Now);
      return;
    }
    // [Read Share] — inflate: the escalated clock starts from the previous
    // read's epoch and gains this read's component.
    X.Read.escalate();
    X.Read.setLocal(E.thread(), Now);
    return;
  }
  // [Read Shared]
  X.Read.setLocal(E.thread(), Now);
}

void FastTrackDetector::handleWrite(const Event &E) {
  Writes.inc();
  const VectorClock &C = VCState.clockOf(E.thread());
  VarState &X = Vars[E.var()];
  Epoch Current = epochOf(C, E.thread());

  // [Write Same Epoch]
  if (X.Write == Current) {
    SameEpochHits.inc();
    return;
  }

  // Write-write race check.
  if (!X.Write.leq(C))
    report(MemoryRace::Kind::WriteWrite, E.var(), X.Write.Tid, E.thread());

  if (!X.Read.isShared()) {
    // [Write Exclusive] — check the last read.
    if (!X.Read.isBottom() && !X.Read.leq(C))
      report(MemoryRace::Kind::ReadWrite, E.var(), X.Read.epochThread(),
             E.thread());
  } else {
    // [Write Shared] — check the full read clock, then deflate.
    const VectorClock &ReadClock = X.Read.sharedClock();
    if (!ReadClock.leq(C)) {
      // Find one offending reader for the report.
      ThreadId Offender = E.thread();
      for (uint32_t I = 0, N = static_cast<uint32_t>(ReadClock.size());
           I != N; ++I) {
        ThreadId Tid(I);
        if (ReadClock.get(Tid) > C.get(Tid)) {
          Offender = Tid;
          break;
        }
      }
      report(MemoryRace::Kind::ReadWrite, E.var(), Offender, E.thread());
    }
    X.Read.clear();
  }
  X.Write = Current;
}
