//===- detect/FastTrack.cpp - FastTrack read-write race detector -------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "detect/FastTrack.h"

using namespace crd;

void FastTrackDetector::process(const Event &E) {
  ++EventIndex;
  switch (E.kind()) {
  case EventKind::Read:
    handleRead(E);
    break;
  case EventKind::Write:
    handleWrite(E);
    break;
  default:
    break;
  }
  VCState.process(E);
}

void FastTrackDetector::processTrace(const Trace &T) {
  for (const Event &E : T)
    process(E);
}

void FastTrackDetector::report(MemoryRace::Kind Kind, VarId Var,
                               ThreadId Prior, ThreadId Current) {
  Races.push_back({EventIndex - 1, Var, Kind, Prior, Current});
  RacyVars.insert(Var);
}

void FastTrackDetector::handleRead(const Event &E) {
  const VectorClock &C = VCState.clockOf(E.thread());
  VarState &X = Vars[E.var()];
  Epoch Current = epochOf(C, E.thread());

  // [Read Same Epoch]
  if (!X.ReadShared && X.Read == Current)
    return;
  // [Read Shared Same Epoch]
  if (X.ReadShared && X.ReadClock.get(E.thread()) == Current.Clock)
    return;

  // Write-read race check.
  if (!X.Write.leq(C))
    report(MemoryRace::Kind::WriteRead, E.var(), X.Write.Tid, E.thread());

  if (!X.ReadShared) {
    // [Read Exclusive] — the previous read is ordered before this one.
    if (X.Read.isBottom() || X.Read.leq(C)) {
      X.Read = Current;
      return;
    }
    // [Read Share] — inflate to a full vector clock.
    X.ReadShared = true;
    X.ReadClock = VectorClock();
    X.ReadClock.set(X.Read.Tid, X.Read.Clock);
    X.ReadClock.set(E.thread(), Current.Clock);
    return;
  }
  // [Read Shared]
  X.ReadClock.set(E.thread(), Current.Clock);
}

void FastTrackDetector::handleWrite(const Event &E) {
  const VectorClock &C = VCState.clockOf(E.thread());
  VarState &X = Vars[E.var()];
  Epoch Current = epochOf(C, E.thread());

  // [Write Same Epoch]
  if (X.Write == Current)
    return;

  // Write-write race check.
  if (!X.Write.leq(C))
    report(MemoryRace::Kind::WriteWrite, E.var(), X.Write.Tid, E.thread());

  if (!X.ReadShared) {
    // [Write Exclusive] — check the last read.
    if (!X.Read.isBottom() && !X.Read.leq(C))
      report(MemoryRace::Kind::ReadWrite, E.var(), X.Read.Tid, E.thread());
  } else {
    // [Write Shared] — check the full read clock, then deflate.
    if (!X.ReadClock.leq(C)) {
      // Find one offending reader for the report.
      ThreadId Offender = E.thread();
      for (uint32_t I = 0, N = static_cast<uint32_t>(X.ReadClock.size());
           I != N; ++I) {
        ThreadId Tid(I);
        if (X.ReadClock.get(Tid) > C.get(Tid)) {
          Offender = Tid;
          break;
        }
      }
      report(MemoryRace::Kind::ReadWrite, E.var(), Offender, E.thread());
    }
    X.ReadShared = false;
    X.Read = Epoch();
    X.ReadClock = VectorClock();
  }
  X.Write = Current;
}
