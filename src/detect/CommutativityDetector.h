//===- detect/CommutativityDetector.h - Algorithm 1 -------------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's commutativity race detector (Algorithm 1 + Table 1). The
/// detector consumes a trace online; synchronization events update the
/// vector-clock state, and each action event runs the two phases of
/// Algorithm 1 against the access point representation of its object:
///
///   phase 1: for every touched point pt, probe active(o) ∩ Co(pt) and
///            report a race when a conflicting point's accumulated clock is
///            not ⊑ vc(e);
///   phase 2: join vc(e) into the clocks of all touched points, activating
///            them on first touch.
///
/// With representations produced from ECL specifications, |Co(pt)| is
/// bounded, so phase 1 performs Θ(1) hash probes per touched point (§5.4).
///
//===----------------------------------------------------------------------===//

#ifndef CRD_DETECT_COMMUTATIVITYDETECTOR_H
#define CRD_DETECT_COMMUTATIVITYDETECTOR_H

#include "access/Provider.h"
#include "detect/Race.h"
#include "hb/VectorClockState.h"
#include "trace/Trace.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace crd {

/// Online commutativity race detector (Algorithm 1).
class CommutativityRaceDetector {
public:
  CommutativityRaceDetector() = default;

  /// Binds the representation used for actions on \p Obj. Representations
  /// for distinct objects may be shared (they describe the object *type*).
  void bind(ObjectId Obj, const AccessPointProvider *Provider);

  /// Representation used for objects without an explicit bind().
  void setDefaultProvider(const AccessPointProvider *Provider) {
    DefaultProvider = Provider;
  }

  /// Feeds one event (any kind; non-action events update clocks only).
  void process(const Event &E);

  /// Feeds a whole trace.
  void processTrace(const Trace &T);

  /// Reclaims all auxiliary state of a dead object (the paper's
  /// object-reclamation optimization, §5.3): its active points and their
  /// clocks are dropped; no further races can be reported on it.
  void objectDied(ObjectId Obj);

  const std::vector<CommutativityRace> &races() const { return Races; }

  /// Number of distinct objects participating in at least one reported race
  /// (the "(distinct)" column of Table 2).
  size_t distinctRacyObjects() const { return RacyObjects.size(); }

  /// Number of conflict-partner probes performed in phase 1 so far.
  /// Exposed for the §5.4 complexity experiments.
  size_t conflictChecks() const { return ConflictChecks; }

  /// Number of events processed.
  size_t eventsProcessed() const { return EventIndex; }

  /// Total number of currently active access points across live objects.
  size_t activePointCount() const;

  /// Snapshot of an object's active points and their accumulated clocks
  /// (diagnostic/testing API; order unspecified). The invariant maintained
  /// by phase 2 of Algorithm 1 — each point's clock is the join of the
  /// clocks of all events that touched it — is checked against this.
  std::vector<std::pair<AccessPoint, VectorClock>>
  activePoints(ObjectId Obj) const;

private:
  struct ObjectState {
    const AccessPointProvider *Provider = nullptr;
    std::unordered_map<AccessPoint, VectorClock> Active;
  };

  ObjectState &stateFor(ObjectId Obj);
  void handleInvoke(const Event &E);

  VectorClockState VCState;
  std::unordered_map<ObjectId, ObjectState> Objects;
  const AccessPointProvider *DefaultProvider = nullptr;
  std::vector<CommutativityRace> Races;
  std::unordered_set<ObjectId> RacyObjects;
  std::vector<AccessPoint> Scratch;
  size_t EventIndex = 0;
  size_t ConflictChecks = 0;
};

} // namespace crd

#endif // CRD_DETECT_COMMUTATIVITYDETECTOR_H
