//===- detect/CommutativityDetector.h - Algorithm 1 -------------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's commutativity race detector (Algorithm 1 + Table 1). The
/// detector consumes a trace online; synchronization events update the
/// vector-clock state, and each action event runs the two phases of
/// Algorithm 1 (see Algorithm1.h) against the access point representation
/// of its object.
///
/// With representations produced from ECL specifications, |Co(pt)| is
/// bounded, so phase 1 performs Θ(1) hash probes per touched point (§5.4);
/// with epoch-compressed accumulated clocks (EpochClock), each probe and
/// each phase-2 accumulation is itself O(1) while a point's history stays
/// HB-totally-ordered, removing the O(#threads) clock copies that
/// otherwise dominate the hot path.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_DETECT_COMMUTATIVITYDETECTOR_H
#define CRD_DETECT_COMMUTATIVITYDETECTOR_H

#include "detect/Algorithm1.h"
#include "detect/ChunkMemo.h"
#include "hb/VectorClockState.h"
#include "trace/EventBatch.h"
#include "trace/Trace.h"

namespace crd {

/// Online commutativity race detector (Algorithm 1).
class CommutativityRaceDetector {
public:
  CommutativityRaceDetector() = default;

  /// Binds the representation used for actions on \p Obj. Representations
  /// for distinct objects may be shared (they describe the object *type*).
  void bind(ObjectId Obj, const AccessPointProvider *Provider) {
    Engine.bind(Obj, Provider);
  }

  /// Representation used for objects without an explicit bind().
  void setDefaultProvider(const AccessPointProvider *Provider) {
    Engine.setDefaultProvider(Provider);
  }

  /// Feeds one event (any kind; non-action events update clocks only).
  void process(const Event &E);

  /// Feeds a whole trace. Routed through the batched kernel: events are
  /// windowed, kind-scanned, and each sync-free run's actions execute
  /// through the engine's prefetch-pipelined onRun() — bit-identical
  /// races to the per-event path.
  void processTrace(const Trace &T);

  /// Feeds a whole batch through the batched kernel (the streaming
  /// pipeline's pull loop). Only \p B's Events and Kinds are consulted;
  /// the sync index need not be populated. \p B is left untouched.
  void processBatch(const EventBatch &B);

  /// Nanoseconds spent inside the batched kernel (processTrace /
  /// processBatch), for the per-kernel profile row. Zero in a
  /// CRD_METRICS=OFF build and on the per-event path.
  uint64_t kernelNs() const { return KernelNs.get(); }

  /// Reclaims all auxiliary state of a dead object (the paper's
  /// object-reclamation optimization, §5.3): its active points and their
  /// clocks are dropped; no further races can be reported on it.
  void objectDied(ObjectId Obj) { Engine.objectDied(Obj); }

  const std::vector<CommutativityRace> &races() const {
    return Engine.races();
  }

  /// Number of distinct objects participating in at least one reported race
  /// (the "(distinct)" column of Table 2).
  size_t distinctRacyObjects() const { return Engine.distinctRacyObjects(); }

  /// Number of conflict-partner probes performed in phase 1 so far.
  /// Exposed for the §5.4 complexity experiments.
  size_t conflictChecks() const { return Engine.conflictChecks(); }

  /// Number of events processed.
  size_t eventsProcessed() const { return EventIndex; }

  /// Total number of currently active access points across live objects.
  /// Maintained incrementally by phase 2 and objectDied(); O(1).
  size_t activePointCount() const { return Engine.activePointCount(); }

  /// The engine's metrics snapshot (docs/observability.md).
  Algorithm1Stats engineStats() const { return Engine.stats(); }

  //===--------------------------------------------------------------------===//
  // Chunk memoization (detect/ChunkMemo.h). The streaming pipeline drives
  // these around verified-repeat chunks: beginMemoRecord() before
  // interpreting, finishMemoRecord() after (turning a state-no-op chunk
  // into a ChunkSummary), tryReplayChunk() on later occurrences.
  //===--------------------------------------------------------------------===//

  /// Snapshot of the stream position, race count, counter baselines and
  /// mutation stamps taken before interpreting a candidate chunk.
  struct MemoRecordToken {
    size_t BaseEventIndex = 0;
    size_t BaseRaces = 0;
    uint64_t VCStamp = 0;
    uint64_t EngineStamp = 0;
    uint64_t BaseConflictChecks = 0;
  };

  /// Opens a recording window at the current detector state.
  MemoRecordToken beginMemoRecord() const {
    return {EventIndex, Engine.races().size(), VCState.mutationStamp(),
            Engine.mutationStamp(), Engine.conflictChecks()};
  }

  /// Closes the window opened by \p Token after the chunk's events
  /// (\p B [\p From, \p From + \p N)) were interpreted, filling \p Out.
  /// Returns true iff the chunk is memoizable — sync-free and a detector
  /// state no-op — in which case Out carries a replayable summary;
  /// otherwise Out is a negative entry (Memoizable = false).
  bool finishMemoRecord(const MemoRecordToken &Token, const EventBatch &B,
                        size_t From, size_t N, ChunkSummary &Out) const;

  /// Replays \p S if its entire entry-state footprint (config stamp,
  /// thread versions, object versions) matches the current state: pushes
  /// the re-based race reports, adds the counter deltas, and advances the
  /// stream position by S.Events. Returns false (with no state change) on
  /// any mismatch — the caller must interpret the chunk normally.
  bool tryReplayChunk(const ChunkSummary &S);

  /// Snapshot of an object's active points and their accumulated clocks
  /// (diagnostic/testing API; order unspecified). Epoch-compressed points
  /// materialize as their single-component clock, which is probe-equivalent
  /// to the full join of the touching events' clocks (see EpochClock.h).
  std::vector<std::pair<AccessPoint, VectorClock>>
  activePoints(ObjectId Obj) const {
    return Engine.activePoints(Obj);
  }

private:
  /// The kernel driver shared by processTrace/processBatch: one combined
  /// SIMD kind-scan finds sync AND invoke positions (both kind ranges sit
  /// below Invoke + 1), then the walk flushes each run's invoke positions
  /// into Engine.onRun() and feeds the sync events to the clock machine.
  /// \p Kinds[i] must be Evs[i]'s kind byte.
  void processKinded(const Event *Evs, const uint8_t *Kinds, size_t N);

  VectorClockState VCState;
  Algorithm1Engine Engine;
  size_t EventIndex = 0;
  /// processKinded scratch, reused across windows (allocation-free in the
  /// steady state).
  std::vector<uint32_t> ScanScratch;
  std::vector<uint32_t> InvokeScratch;
  std::vector<uint8_t> KindScratch;
  metrics::Counter KernelNs;
};

} // namespace crd

#endif // CRD_DETECT_COMMUTATIVITYDETECTOR_H
