//===- detect/OnlineAtomicity.h - streaming atomicity checking --*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The streaming counterpart of AtomicityChecker: a Velodrome-style online
/// conflict-serializability monitor whose conflicts are commutativity
/// conflicts over access points (the §8 generalization, "with the
/// appropriate modifications of the atomicity algorithms to deal with
/// access points").
///
/// Transactions (atomic blocks and unary actions) are nodes of a DAG whose
/// edges are program order, synchronization order, and access point
/// conflicts; the DAG's topological order is maintained incrementally
/// (Pearce–Kelly), so an edge that would close a cycle is detected the
/// moment it appears — that cycle is a serializability violation, reported
/// against the atomic block(s) on it. Cycle-closing edges are not inserted
/// (the graph stays acyclic), mirroring a monitor that would abort the
/// offending transaction.
///
/// State kept per access point: the transactions that touched it. For
/// self-conflicting classes only the latest toucher is retained (the
/// conflict chain makes earlier edges transitive), which is the same
/// compression FastTrack applies to write epochs.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_DETECT_ONLINEATOMICITY_H
#define CRD_DETECT_ONLINEATOMICITY_H

#include "access/Provider.h"
#include "detect/AtomicityChecker.h" // AtomicityViolation
#include "support/DynamicTopoGraph.h"
#include "trace/Trace.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace crd {

/// Online commutativity-aware conflict-serializability checker.
class OnlineAtomicityChecker {
public:
  OnlineAtomicityChecker() = default;

  void bind(ObjectId Obj, const AccessPointProvider *Provider);
  void setDefaultProvider(const AccessPointProvider *Provider) {
    DefaultProvider = Provider;
  }

  /// Feeds one event (any kind).
  void process(const Event &E);
  void processTrace(const Trace &T);

  /// Violations found so far; at most one per atomic block.
  const std::vector<AtomicityViolation> &violations() const {
    return Violations;
  }

  /// Number of transaction nodes created (diagnostics).
  size_t numTransactions() const { return Nodes.size(); }

private:
  struct TxNode {
    ThreadId Thread;
    bool Atomic = false;
    size_t BeginEvent = 0;
    size_t EndEvent = 0;
  };

  struct ThreadState {
    int64_t OpenBlock = -1;  ///< Node id of the open atomic block, or -1.
    int64_t LastNode = -1;   ///< Most recent node of this thread, or -1.
    std::vector<uint32_t> PendingIncoming; ///< Edges into the next node.
  };

  const AccessPointProvider *providerFor(ObjectId Obj) const;
  ThreadState &stateOf(ThreadId Thread);
  uint32_t makeNode(ThreadId Thread, bool Atomic);
  /// Node the thread's next work belongs to: the open block, or a fresh
  /// unary node.
  uint32_t nodeForWork(ThreadId Thread);
  /// Routes an incoming cross-thread edge to \p Thread: directly into its
  /// open block, or deferred to its next node.
  void edgeIntoThread(int64_t Source, ThreadId Thread);
  void addEdgeChecked(uint32_t From, uint32_t To);
  void handleInvoke(const Event &E);

  std::vector<TxNode> Nodes;
  DynamicTopoGraph Graph;
  std::unordered_map<uint32_t, ThreadState> Threads;
  std::unordered_map<uint32_t, int64_t> LastReleaseNode; ///< By lock index.
  std::unordered_map<ObjectId,
                     std::unordered_map<AccessPoint, std::vector<uint32_t>>>
      Touchers;
  std::unordered_map<ObjectId, const AccessPointProvider *> Providers;
  const AccessPointProvider *DefaultProvider = nullptr;
  std::vector<AtomicityViolation> Violations;
  std::unordered_set<uint32_t> FlaggedBlocks;
  std::vector<AccessPoint> Scratch;
  size_t EventIndex = 0;
};

} // namespace crd

#endif // CRD_DETECT_ONLINEATOMICITY_H
