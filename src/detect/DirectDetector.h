//===- detect/DirectDetector.h - Θ(|A|) baseline detector -------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "direct approach" the paper contrasts Algorithm 1 against (§5.1): it
/// records every action and, on each new action, evaluates the logical
/// commutativity formula against every previously recorded action of the
/// same object — Θ(|A|) commutativity checks per action. It serves as
/// (a) the complexity baseline for the §5.4 experiments and (b) the test
/// oracle for Theorem 5.1: both detectors must flag exactly the same events.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_DETECT_DIRECTDETECTOR_H
#define CRD_DETECT_DIRECTDETECTOR_H

#include "detect/Race.h"
#include "hb/VectorClockState.h"
#include "spec/Spec.h"
#include "trace/Trace.h"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace crd {

/// Baseline detector working directly on the logical specification.
class DirectCommutativityDetector {
public:
  DirectCommutativityDetector() = default;

  /// Binds the specification used for actions on \p Obj.
  void bind(ObjectId Obj, const ObjectSpec *Spec);

  /// Specification used for objects without an explicit bind().
  void setDefaultSpec(const ObjectSpec *Spec) { DefaultSpec = Spec; }

  void process(const Event &E);
  void processTrace(const Trace &T);

  const std::vector<CommutativityRace> &races() const { return Races; }
  size_t distinctRacyObjects() const { return RacyObjects.size(); }

  /// Number of pairwise formula evaluations performed so far (grows
  /// quadratically with the number of actions per object).
  size_t conflictChecks() const { return ConflictChecks; }

private:
  struct Recorded {
    Action TheAction;
    VectorClock Clock;
    size_t EventIndex;
    ThreadId Thread;
  };

  struct ObjectState {
    const ObjectSpec *Spec = nullptr;
    std::vector<Recorded> History;
  };

  void handleInvoke(const Event &E);

  VectorClockState VCState;
  std::unordered_map<ObjectId, ObjectState> Objects;
  const ObjectSpec *DefaultSpec = nullptr;
  std::vector<CommutativityRace> Races;
  std::unordered_set<ObjectId> RacyObjects;
  size_t EventIndex = 0;
  size_t ConflictChecks = 0;
};

} // namespace crd

#endif // CRD_DETECT_DIRECTDETECTOR_H
