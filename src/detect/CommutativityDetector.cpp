//===- detect/CommutativityDetector.cpp - Algorithm 1 ------------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "detect/CommutativityDetector.h"

using namespace crd;

void CommutativityRaceDetector::process(const Event &E) {
  ++EventIndex;
  if (E.isInvoke())
    Engine.onAction(E.action(), E.thread(), VCState.clockOf(E.thread()),
                    EventIndex - 1);
  VCState.process(E);
}

void CommutativityRaceDetector::processTrace(const Trace &T) {
  for (const Event &E : T)
    process(E);
}
