//===- detect/CommutativityDetector.cpp - Algorithm 1 ------------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "detect/CommutativityDetector.h"

#include <cassert>

using namespace crd;

void CommutativityRaceDetector::bind(ObjectId Obj,
                                     const AccessPointProvider *Provider) {
  assert(Provider && "null provider");
  Objects[Obj].Provider = Provider;
}

CommutativityRaceDetector::ObjectState &
CommutativityRaceDetector::stateFor(ObjectId Obj) {
  ObjectState &State = Objects[Obj];
  if (!State.Provider) {
    assert(DefaultProvider && "object has no bound access point provider");
    State.Provider = DefaultProvider;
  }
  return State;
}

void CommutativityRaceDetector::process(const Event &E) {
  ++EventIndex;
  if (E.isInvoke())
    handleInvoke(E);
  VCState.process(E);
}

void CommutativityRaceDetector::processTrace(const Trace &T) {
  for (const Event &E : T)
    process(E);
}

void CommutativityRaceDetector::handleInvoke(const Event &E) {
  const Action &A = E.action();
  ObjectState &State = stateFor(A.object());
  const AccessPointProvider &Provider = *State.Provider;
  const VectorClock &Clock = VCState.clockOf(E.thread());

  Scratch.clear();
  Provider.touches(A, Scratch);

  // Phase 1: probe for conflicting active points.
  for (const AccessPoint &Pt : Scratch) {
    for (uint32_t Partner : Provider.conflictsOf(Pt.ClassId)) {
      ++ConflictChecks;
      // Value-carrying classes only conflict on equal values, so the probe
      // key reuses Pt's value; plain classes probe the bare class.
      AccessPoint Key = Provider.classCarriesValue(Partner)
                            ? AccessPoint::withValue(Partner, Pt.Val)
                            : AccessPoint::plain(Partner);
      assert((Provider.classCarriesValue(Partner) == Pt.HasValue) &&
             "conflicts must not cross value-carrying and plain classes");
      auto It = State.Active.find(Key);
      if (It == State.Active.end())
        continue;
      if (!It->second.leq(Clock)) {
        CommutativityRace Race;
        Race.EventIndex = EventIndex - 1;
        Race.Thread = E.thread();
        Race.Current = A;
        Race.PointName = Provider.className(Partner);
        Race.PriorClock = It->second;
        Race.CurrentClock = Clock;
        Races.push_back(std::move(Race));
        RacyObjects.insert(A.object());
      }
    }
  }

  // Phase 2: accumulate this event's clock into every touched point.
  for (const AccessPoint &Pt : Scratch) {
    auto [It, Inserted] = State.Active.try_emplace(Pt, Clock);
    if (!Inserted)
      It->second.joinWith(Clock);
  }
}

void CommutativityRaceDetector::objectDied(ObjectId Obj) {
  auto It = Objects.find(Obj);
  if (It == Objects.end())
    return;
  // Keep the provider binding but drop all per-point state.
  It->second.Active.clear();
}

std::vector<std::pair<AccessPoint, VectorClock>>
CommutativityRaceDetector::activePoints(ObjectId Obj) const {
  std::vector<std::pair<AccessPoint, VectorClock>> Out;
  auto It = Objects.find(Obj);
  if (It == Objects.end())
    return Out;
  Out.reserve(It->second.Active.size());
  for (const auto &[Pt, Clock] : It->second.Active)
    Out.emplace_back(Pt, Clock);
  return Out;
}

size_t CommutativityRaceDetector::activePointCount() const {
  size_t Count = 0;
  for (const auto &[Obj, State] : Objects)
    Count += State.Active.size();
  return Count;
}
