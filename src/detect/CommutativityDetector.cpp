//===- detect/CommutativityDetector.cpp - Algorithm 1 ------------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "detect/CommutativityDetector.h"

#include <algorithm>
#include <cassert>

using namespace crd;

void CommutativityRaceDetector::process(const Event &E) {
  ++EventIndex;
  if (E.isInvoke())
    Engine.onAction(E.action(), E.thread(), VCState.clockOf(E.thread()),
                    EventIndex - 1);
  VCState.process(E);
}

void CommutativityRaceDetector::processKinded(const Event *Evs,
                                              const uint8_t *Kinds, size_t N) {
  uint64_t Begin = metrics::nowNs();
  // One SIMD pass yields sync and invoke positions together: the kind
  // encoding puts fork/join/acquire/release below Invoke and everything
  // else above it, so Below = Invoke + 1 selects exactly both. Memory and
  // transaction events — the bulk of most traces — are never loaded.
  ScanScratch.clear();
  appendKindPositions(Kinds, N, static_cast<uint8_t>(SyncKindBound + 1),
                      /*Base=*/0, ScanScratch);
  InvokeScratch.clear();
  auto Resolve = [this](ThreadId T) -> const VectorClock & {
    return VCState.clockOf(T);
  };
  auto All = [](const Action &) { return true; };
  auto FlushRun = [&] {
    if (InvokeScratch.empty())
      return;
    Engine.onRun(Evs, InvokeScratch.data(), InvokeScratch.size(), EventIndex,
                 Resolve, All);
    InvokeScratch.clear();
  };
  for (uint32_t P : ScanScratch) {
    if (Kinds[P] < SyncKindBound) {
      // Sync event: the run before it is complete — execute its actions
      // (their clocks predate this Table 1 update), then advance clocks.
      FlushRun();
      VCState.process(Evs[P]);
    } else {
      InvokeScratch.push_back(P);
    }
  }
  FlushRun();
  EventIndex += N;
  KernelNs.add(metrics::nowNs() - Begin);
}

void CommutativityRaceDetector::processTrace(const Trace &T) {
  // Windowed kernel feed: the trace stores events (not kind bytes), so
  // each window gathers its kinds into reusable scratch first — the same
  // shape the parallel detector's whole-trace path uses.
  constexpr size_t Window = 4096;
  const std::vector<Event> &Events = T.events();
  for (size_t Begin = 0; Begin < Events.size(); Begin += Window) {
    size_t N = std::min(Window, Events.size() - Begin);
    KindScratch.clear();
    for (size_t J = 0; J != N; ++J)
      KindScratch.push_back(static_cast<uint8_t>(Events[Begin + J].kind()));
    processKinded(Events.data() + Begin, KindScratch.data(), N);
  }
}

void CommutativityRaceDetector::processBatch(const EventBatch &B) {
  if (B.empty())
    return;
  assert(B.Kinds.size() == B.Events.size() && "batch kind array out of sync");
  processKinded(B.Events.data(), B.Kinds.data(), B.size());
}

bool CommutativityRaceDetector::finishMemoRecord(const MemoRecordToken &Token,
                                                 const EventBatch &B,
                                                 size_t From, size_t N,
                                                 ChunkSummary &Out) const {
  Out.Memoizable = false;
  Out.Events = N;
  // Gate 2 (ChunkMemo.h): any sync event disqualifies the chunk. Gate 3:
  // the interpretation must have been a state no-op, otherwise the entry
  // versions collected below (which are *exit* versions) would not
  // describe the state the summary depends on.
  if (VCState.mutationStamp() != Token.VCStamp ||
      Engine.mutationStamp() != Token.EngineStamp)
    return false;
  for (size_t I = From, E = From + N; I != E; ++I)
    if (B.Events[I].isSync())
      return false;

  // State no-op ⇒ entry versions == current versions: the footprint can
  // be collected after the fact by scanning the chunk's events.
  std::vector<ThreadId> Threads;
  std::vector<ObjectId> Objects;
  uint64_t Invokes = 0, Mem = 0, Tx = 0;
  for (size_t I = From, E = From + N; I != E; ++I) {
    const Event &Ev = B.Events[I];
    Threads.push_back(Ev.thread());
    if (Ev.isInvoke()) {
      ++Invokes;
      Objects.push_back(Ev.action().object());
    } else if (Ev.isMemoryAccess()) {
      ++Mem;
    } else {
      ++Tx;
    }
  }
  std::sort(Threads.begin(), Threads.end());
  Threads.erase(std::unique(Threads.begin(), Threads.end()), Threads.end());
  std::sort(Objects.begin(), Objects.end());
  Objects.erase(std::unique(Objects.begin(), Objects.end()), Objects.end());

  Out.ConfigStamp = Engine.configStamp();
  Out.ThreadVersions.reserve(Threads.size());
  for (ThreadId T : Threads)
    Out.ThreadVersions.emplace_back(T, VCState.threadVersion(T));
  Out.ObjectVersions.reserve(Objects.size());
  for (ObjectId O : Objects)
    Out.ObjectVersions.emplace_back(O, Engine.objectVersion(O));

  const std::vector<CommutativityRace> &Races = Engine.races();
  for (size_t I = Token.BaseRaces, E = Races.size(); I != E; ++I) {
    const CommutativityRace &R = Races[I];
    Out.Races.emplace_back(
        static_cast<uint32_t>(R.EventIndex - Token.BaseEventIndex), R);
  }
  Out.Invokes = Invokes;
  Out.MemEvents = Mem;
  Out.TxEvents = Tx;
  Out.ConflictChecks = Engine.conflictChecks() - Token.BaseConflictChecks;
  Out.Memoizable = true;
  return true;
}

bool CommutativityRaceDetector::tryReplayChunk(const ChunkSummary &S) {
  if (!S.Memoizable || Engine.configStamp() != S.ConfigStamp)
    return false;
  for (const auto &[Thread, Version] : S.ThreadVersions)
    if (VCState.threadVersion(Thread) != Version)
      return false;
  for (const auto &[Obj, Version] : S.ObjectVersions)
    if (Engine.objectVersion(Obj) != Version)
      return false;
  for (const auto &[Rel, Race] : S.Races) {
    CommutativityRace Rebased = Race;
    Rebased.EventIndex = EventIndex + Rel;
    Engine.replayRace(Rebased);
  }
  Engine.addReplayStats(S.ConflictChecks, S.Invokes);
  EventIndex += S.Events;
  return true;
}
