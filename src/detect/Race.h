//===- detect/Race.h - Race reports -----------------------------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Report records produced by the detectors. Following the paper's Table 2,
/// races are counted both in total and as distinct racy entities (objects
/// for RD2, memory locations for FastTrack).
///
//===----------------------------------------------------------------------===//

#ifndef CRD_DETECT_RACE_H
#define CRD_DETECT_RACE_H

#include "support/VectorClock.h"
#include "trace/Action.h"

#include <iosfwd>
#include <string>

namespace crd {

/// A commutativity race (paper Def 4.3) found by Algorithm 1 or by the
/// direct baseline detector.
struct CommutativityRace {
  size_t EventIndex = 0;   ///< Position of the current (second) event.
  ThreadId Thread;         ///< Thread of the current event.
  Action Current;          ///< The action of the current event.
  /// Conflicting access point class (debug name). Owned: race reports
  /// outlive the provider whose className() they copy from (class names
  /// are short, so the copy is SSO — no heap traffic on the hot path).
  std::string PointName;
  VectorClock PriorClock;  ///< Accumulated clock of the conflicting point.
  VectorClock CurrentClock;

  /// Field-for-field equality; used by the sequential/parallel detector
  /// equivalence suite (races must be bit-identical, not just same-count).
  friend bool operator==(const CommutativityRace &A,
                         const CommutativityRace &B) {
    return A.EventIndex == B.EventIndex && A.Thread == B.Thread &&
           A.Current == B.Current && A.PointName == B.PointName &&
           A.PriorClock == B.PriorClock && A.CurrentClock == B.CurrentClock;
  }
  friend bool operator!=(const CommutativityRace &A,
                         const CommutativityRace &B) {
    return !(A == B);
  }

  std::string toString() const;
};

/// A low-level read-write race found by the FastTrack baseline.
struct MemoryRace {
  enum class Kind { WriteWrite, WriteRead, ReadWrite };

  size_t EventIndex = 0;
  VarId Var;
  Kind Access = Kind::WriteWrite;
  ThreadId PriorThread;
  ThreadId CurrentThread;

  std::string toString() const;
};

std::ostream &operator<<(std::ostream &OS, const CommutativityRace &R);
std::ostream &operator<<(std::ostream &OS, const MemoryRace &R);

} // namespace crd

#endif // CRD_DETECT_RACE_H
