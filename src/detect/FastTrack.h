//===- detect/FastTrack.h - FastTrack read-write race detector --*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The FASTTRACK low-level race detector (Flanagan & Freund, PLDI 2009) the
/// paper evaluates against in Table 2. It consumes the low-level read/write
/// events of a trace and detects unordered conflicting accesses to the same
/// memory location, using the epoch optimization: a location's last write
/// (and, while reads are thread-exclusive, its last read) is a single
/// clock@thread pair instead of a full vector clock.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_DETECT_FASTTRACK_H
#define CRD_DETECT_FASTTRACK_H

#include "detect/Race.h"
#include "hb/VectorClockState.h"
#include "support/EpochClock.h"
#include "support/FlatMap.h"
#include "support/Metrics.h"
#include "trace/Trace.h"

#include <unordered_set>
#include <vector>

namespace crd {

/// Counters the FastTrack detector accumulates (zeros when CRD_METRICS=0).
/// Each read/write performs exactly one shadow-table probe, so TableProbes
/// = Reads + Writes; SameEpochHits counts the O(1) fast-path exits ([Read
/// Same Epoch]/[Write Same Epoch]) that never consult the write/read state.
struct FastTrackStats {
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  uint64_t TableProbes = 0;
  uint64_t SameEpochHits = 0;
};

/// FastTrack detector over Read/Write (and synchronization) events.
class FastTrackDetector {
public:
  FastTrackDetector() = default;

  void process(const Event &E);
  void processTrace(const Trace &T);

  const std::vector<MemoryRace> &races() const { return Races; }

  /// Number of distinct memory locations with at least one race (the
  /// "(distinct)" column of Table 2 for FASTTRACK).
  size_t distinctRacyVars() const { return RacyVars.size(); }

  /// Metrics snapshot (docs/observability.md).
  FastTrackStats stats() const {
    FastTrackStats S;
    S.Reads = Reads.get();
    S.Writes = Writes.get();
    S.TableProbes = S.Reads + S.Writes;
    S.SameEpochHits = SameEpochHits.get();
    return S;
  }

private:
  /// A scalar timestamp c@t.
  struct Epoch {
    uint32_t Clock = 0;
    ThreadId Tid;

    bool leq(const VectorClock &VC) const { return Clock <= VC.get(Tid); }
    bool isBottom() const { return Clock == 0; }
    friend bool operator==(const Epoch &A, const Epoch &B) {
      return A.Clock == B.Clock && A.Tid == B.Tid;
    }
  };

  /// Per-location shadow state. The read side is an adaptive EpochClock:
  /// a single epoch while reads stay thread-exclusive, escalated to a full
  /// vector clock when reads become concurrent ([Read Share]).
  struct VarState {
    Epoch Write;
    EpochClock Read;
  };

  void handleRead(const Event &E);
  void handleWrite(const Event &E);
  void report(MemoryRace::Kind Kind, VarId Var, ThreadId Prior,
              ThreadId Current);

  static Epoch epochOf(const VectorClock &VC, ThreadId Tid) {
    return {VC.get(Tid), Tid};
  }

  VectorClockState VCState;
  /// Flat per-location shadow table: the read/write hot path is one open
  /// addressing probe instead of a node pointer chase.
  FlatMap<VarId, VarState> Vars;
  std::vector<MemoryRace> Races;
  std::unordered_set<VarId> RacyVars;
  size_t EventIndex = 0;
  /// Observability counters (single writer; no-ops when CRD_METRICS=0).
  metrics::Counter Reads;
  metrics::Counter Writes;
  metrics::Counter SameEpochHits;
};

} // namespace crd

#endif // CRD_DETECT_FASTTRACK_H
