//===- detect/Summary.cpp - race report summarization --------------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "detect/Summary.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <unordered_map>

using namespace crd;

RaceSummary RaceSummary::build(const std::vector<CommutativityRace> &Races) {
  RaceSummary Summary;
  Summary.Total = Races.size();

  std::unordered_map<ObjectId, size_t> GroupOf;
  for (const CommutativityRace &R : Races) {
    ObjectId Obj = R.Current.object();
    auto [It, Inserted] = GroupOf.try_emplace(Obj, Summary.Groups.size());
    if (Inserted) {
      ObjectGroup G;
      G.Obj = Obj;
      G.FirstEvent = R.EventIndex;
      G.FirstAction = R.Current;
      Summary.Groups.push_back(std::move(G));
    }
    ObjectGroup &G = Summary.Groups[It->second];
    ++G.Count;
    ++G.ByPoint[R.PointName];
    ++G.ByMethod[std::string(R.Current.method().str())];
    if (R.EventIndex < G.FirstEvent) {
      G.FirstEvent = R.EventIndex;
      G.FirstAction = R.Current;
    }
  }

  std::stable_sort(Summary.Groups.begin(), Summary.Groups.end(),
                   [](const ObjectGroup &A, const ObjectGroup &B) {
                     return A.Count > B.Count;
                   });
  return Summary;
}

void RaceSummary::print(std::ostream &OS) const {
  OS << Total << " commutativity race report(s) on " << Groups.size()
     << " object(s)\n";
  for (const ObjectGroup &G : Groups) {
    OS << "  o" << G.Obj.index() << ": " << G.Count
       << " report(s), first at event " << G.FirstEvent << " ("
       << G.FirstAction << ")\n";
    OS << "    by access point:";
    for (const auto &[Point, Count] : G.ByPoint)
      OS << "  " << Point << " x" << Count;
    OS << "\n    by method:";
    for (const auto &[Method, Count] : G.ByMethod)
      OS << "  " << Method << " x" << Count;
    OS << '\n';
  }
}

std::string RaceSummary::toString() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}
