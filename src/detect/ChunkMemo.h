//===- detect/ChunkMemo.h - Chunk-level detection summaries -----*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chunk transformers for memoized detection. A compressed trace that
/// repeats itself decodes to byte-identical chunks; the wire layer already
/// recognizes those by content digest (WireReader's decode cache). This
/// layer goes one step further: for a *sync-free* chunk whose interpretation
/// turned out to be a detector-state no-op, it records the chunk's entire
/// observable effect — the races it reported (keyed by event index relative
/// to the chunk start) and its counter deltas — together with the exact
/// entry-state footprint the interpretation depended on:
///
///   - the engine's provider-configuration stamp (bindings decide which
///     access points an action touches),
///   - the version stamp of every thread whose events appear in the chunk
///     (the clock an action is stamped with), and
///   - the version stamp of every object invoked in the chunk (the active
///     points and accumulated clocks the two phases probe and update).
///
/// On a later occurrence of the same chunk payload, if every footprint
/// version still matches, Algorithm 1 would read exactly the same state,
/// take exactly the same branches, and write nothing — so the detector can
/// replay the summary (re-based race reports + counter deltas) and skip
/// interpretation entirely. Any mismatch falls back to full interpretation,
/// which re-records the summary against the new entry state.
///
/// Soundness gates (all enforced by the recording side):
///   1. Summaries are only recorded/replayed for chunks the wire layer
///      verified byte-identical to the cached payload (WireReader's
///      ChunkView::VerifiedRepeat) — a 64-bit digest match alone never
///      keys detector state.
///   2. Sync events disqualify a chunk: Table 1 updates mutate thread/lock
///      clocks, and an acquire of a never-released lock is a no-op *now*
///      but not once the lock gains a clock — no version stamp covers
///      "absent lock", so the rule is categorical.
///   3. The chunk must have been a state no-op when recorded: the
///      VectorClockState and engine mutation stamps are compared across
///      the interpretation. This makes footprint collection safe *after*
///      the fact — entry versions equal exit versions by construction.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_DETECT_CHUNKMEMO_H
#define CRD_DETECT_CHUNKMEMO_H

#include "detect/Race.h"
#include "trace/Event.h"

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace crd {

/// The memoized effect of one chunk payload on the detector, valid while
/// its entry-state footprint matches. Not Memoizable marks a negative
/// entry: the chunk contains sync events (or mutated state in a way no
/// footprint can cover), so replay must never be attempted — negative
/// entries stop the pipeline from re-probing hopeless chunks.
struct ChunkSummary {
  /// False for negative entries (sync events present); such a summary
  /// carries no footprint and is never replayed.
  bool Memoizable = false;

  /// Engine configuration stamp at record time; replay requires equality.
  uint64_t ConfigStamp = 0;

  /// Entry versions of every thread with an event in the chunk.
  std::vector<std::pair<ThreadId, uint64_t>> ThreadVersions;

  /// Entry versions of every object invoked in the chunk (0 = no
  /// per-object state existed).
  std::vector<std::pair<ObjectId, uint64_t>> ObjectVersions;

  /// Races the chunk reported, keyed by event index relative to the
  /// chunk's first event. Reports own their action payloads (deep copies);
  /// replay re-bases EventIndex onto the current stream position.
  std::vector<std::pair<uint32_t, CommutativityRace>> Races;

  /// Number of events in the chunk (stream-position advance on replay).
  uint64_t Events = 0;
  /// Number of invoke events (engine action count delta).
  uint64_t Invokes = 0;
  /// Memory (read/write) and transaction-marker event counts, so replay
  /// keeps the pipeline's per-kind ingress tally exact. Sync is zero by
  /// construction (gate 2).
  uint64_t MemEvents = 0;
  uint64_t TxEvents = 0;
  /// Phase-1 conflict-probe delta.
  uint64_t ConflictChecks = 0;
};

/// Digest-keyed summary table. Keys are chunk content digests whose
/// payloads the wire layer pinned in its decode cache (insert-only, no
/// eviction), so a key can never silently change meaning. insert()
/// overwrites: a version-mismatch fallback re-records the summary against
/// the new entry state.
class ChunkMemoTable {
public:
  /// The summary recorded for \p Digest, or nullptr.
  const ChunkSummary *find(uint64_t Digest) const {
    auto It = Table.find(Digest);
    return It == Table.end() ? nullptr : &It->second;
  }

  /// Creates or resets the summary slot for \p Digest.
  ChunkSummary &insert(uint64_t Digest) {
    ChunkSummary &S = Table[Digest];
    S = ChunkSummary();
    return S;
  }

  /// Drops \p Digest's summary so a later occurrence re-attempts
  /// recording (used when a chunk was disqualified only transiently —
  /// detector state was still converging when it was interpreted).
  void erase(uint64_t Digest) { Table.erase(Digest); }

  size_t size() const { return Table.size(); }

private:
  std::unordered_map<uint64_t, ChunkSummary> Table;
};

} // namespace crd

#endif // CRD_DETECT_CHUNKMEMO_H
