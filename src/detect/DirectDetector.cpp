//===- detect/DirectDetector.cpp - Θ(|A|) baseline detector ------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "detect/DirectDetector.h"

#include <cassert>

using namespace crd;

void DirectCommutativityDetector::bind(ObjectId Obj, const ObjectSpec *Spec) {
  assert(Spec && "null specification");
  Objects[Obj].Spec = Spec;
}

void DirectCommutativityDetector::process(const Event &E) {
  ++EventIndex;
  if (E.isInvoke())
    handleInvoke(E);
  VCState.process(E);
}

void DirectCommutativityDetector::processTrace(const Trace &T) {
  for (const Event &E : T)
    process(E);
}

void DirectCommutativityDetector::handleInvoke(const Event &E) {
  const Action &A = E.action();
  ObjectState &State = Objects[A.object()];
  if (!State.Spec) {
    assert(DefaultSpec && "object has no bound specification");
    State.Spec = DefaultSpec;
  }
  const VectorClock &Clock = VCState.clockOf(E.thread());

  for (const Recorded &Prior : State.History) {
    ++ConflictChecks;
    if (!Prior.Clock.concurrentWith(Clock))
      continue;
    if (State.Spec->commute(Prior.TheAction, A))
      continue;
    CommutativityRace Race;
    Race.EventIndex = EventIndex - 1;
    Race.Thread = E.thread();
    Race.Current = A;
    Race.PointName = "action " + Prior.TheAction.toString();
    Race.PriorClock = Prior.Clock;
    Race.CurrentClock = Clock;
    Races.push_back(std::move(Race));
    RacyObjects.insert(A.object());
  }

  State.History.push_back({A, Clock, EventIndex - 1, E.thread()});
}
