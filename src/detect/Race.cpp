//===- detect/Race.cpp - Race reports ---------------------------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "detect/Race.h"

#include <ostream>
#include <sstream>

using namespace crd;

std::string CommutativityRace::toString() const {
  std::ostringstream OS;
  OS << *this;
  return OS.str();
}

std::string MemoryRace::toString() const {
  std::ostringstream OS;
  OS << *this;
  return OS.str();
}

std::ostream &crd::operator<<(std::ostream &OS, const CommutativityRace &R) {
  return OS << "commutativity race at event " << R.EventIndex << ": T"
            << R.Thread.index() << " performs " << R.Current
            << " conflicting on " << R.PointName << " (prior " << R.PriorClock
            << " || current " << R.CurrentClock << ")";
}

static const char *kindName(MemoryRace::Kind K) {
  switch (K) {
  case MemoryRace::Kind::WriteWrite:
    return "write-write";
  case MemoryRace::Kind::WriteRead:
    return "write-read";
  case MemoryRace::Kind::ReadWrite:
    return "read-write";
  }
  return "race";
}

std::ostream &crd::operator<<(std::ostream &OS, const MemoryRace &R) {
  return OS << kindName(R.Access) << " race at event " << R.EventIndex
            << " on V" << R.Var.index() << " between T"
            << R.PriorThread.index() << " and T" << R.CurrentThread.index();
}
