//===- detect/ParallelDetector.cpp - Object-sharded Algorithm 1 --------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "detect/ParallelDetector.h"

#include "hb/VectorClockState.h"

#include <algorithm>
#include <thread>

using namespace crd;

ParallelDetector::ParallelDetector(unsigned NumShards) {
  if (NumShards == 0)
    NumShards = std::max(1u, std::thread::hardware_concurrency());
  Engines.resize(NumShards);
}

size_t ParallelDetector::conflictChecks() const {
  size_t Sum = 0;
  for (const Algorithm1Engine &E : Engines)
    Sum += E.conflictChecks();
  return Sum;
}

size_t ParallelDetector::activePointCount() const {
  size_t Sum = 0;
  for (const Algorithm1Engine &E : Engines)
    Sum += E.activePointCount();
  return Sum;
}

void ParallelDetector::objectDied(ObjectId Obj) {
  Engines[shardOf(Obj)].objectDied(Obj);
}

void ParallelDetector::processTrace(const Trace &T) {
  for (Algorithm1Engine &E : Engines)
    E.adoptBindings(Config);

  // Step 1 — sequential clock pre-pass. Thread clocks only change at
  // synchronization events, so consecutive actions of a thread share one
  // snapshot: CachedId maps a thread to its current ClockTable entry and is
  // invalidated whenever the Table 1 machine mutates that thread's clock.
  // The snapshot table is per-call; the clock machine itself persists.
  std::vector<VectorClock> ClockTable;
  constexpr uint32_t Invalid = ~0u;
  std::vector<uint32_t> CachedId;
  auto invalidate = [&](ThreadId Tid) {
    if (Tid.index() >= CachedId.size())
      CachedId.resize(Tid.index() + 1, Invalid);
    CachedId[Tid.index()] = Invalid;
  };
  auto clockIdFor = [&](ThreadId Tid) -> uint32_t {
    if (Tid.index() >= CachedId.size())
      CachedId.resize(Tid.index() + 1, Invalid);
    uint32_t &Id = CachedId[Tid.index()];
    if (Id == Invalid) {
      Id = static_cast<uint32_t>(ClockTable.size());
      ClockTable.push_back(VCState.clockOf(Tid));
    }
    return Id;
  };

  std::vector<std::vector<ActionRef>> Buckets(Engines.size());
  for (size_t I = 0, N = T.size(); I != N; ++I) {
    const Event &E = T[I];
    switch (E.kind()) {
    case EventKind::Invoke: {
      const Action &A = E.action();
      Buckets[shardOf(A.object())].push_back(
          {EventsProcessed + I, clockIdFor(E.thread()), E.thread(), &A});
      break;
    }
    case EventKind::Fork:
      VCState.process(E);
      invalidate(E.thread());
      invalidate(E.other());
      break;
    case EventKind::Join:
    case EventKind::Acquire:
    case EventKind::Release:
      VCState.process(E);
      invalidate(E.thread());
      break;
    default:
      // Read/Write/Tx* never mutate Table 1 clocks (they only force lazy
      // thread initialization, which clockIdFor performs on demand), so
      // the offline pre-pass skips them outright.
      break;
    }
  }
  EventsProcessed += T.size();

  // Step 2 — run each shard's engine over its bucket. Engines touch only
  // their own objects (the shard invariant), and ClockTable is read-only
  // here, so the workers share no mutable state.
  auto runShard = [&](size_t S) {
    Algorithm1Engine &Engine = Engines[S];
    for (const ActionRef &R : Buckets[S])
      Engine.onAction(*R.A, R.Thread, ClockTable[R.ClockId], R.EventIndex);
  };
  if (Engines.size() == 1) {
    runShard(0);
  } else {
    std::vector<std::jthread> Workers;
    Workers.reserve(Engines.size() - 1);
    for (size_t S = 1; S != Engines.size(); ++S)
      Workers.emplace_back([&runShard, S] { runShard(S); });
    runShard(0);
  } // jthreads join here.

  // Step 3 — deterministic merge: drain per-shard races and order by event
  // index. Races sharing an event index come from a single shard (an event
  // touches one object) and keep their emission order.
  size_t FirstNew = Races.size();
  for (Algorithm1Engine &E : Engines) {
    std::vector<CommutativityRace> ShardRaces = E.takeRaces();
    Races.insert(Races.end(), std::make_move_iterator(ShardRaces.begin()),
                 std::make_move_iterator(ShardRaces.end()));
    RacyObjects.insert(E.racyObjects().begin(), E.racyObjects().end());
  }
  std::stable_sort(Races.begin() + FirstNew, Races.end(),
                   [](const CommutativityRace &A, const CommutativityRace &B) {
                     return A.EventIndex < B.EventIndex;
                   });
}
