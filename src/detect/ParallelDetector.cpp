//===- detect/ParallelDetector.cpp - Object-sharded Algorithm 1 --------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "detect/ParallelDetector.h"

#include "support/Hashing.h"
#include "support/SpscRing.h"

#include <algorithm>
#include <cassert>
#include <atomic>
#include <ostream>
#include <string>
#include <thread>

using namespace crd;

namespace {

/// One action event, ready for shard dispatch. Clock and action pointers
/// stay valid until the pipeline quiesces: clocks live in the deque-backed
/// ClockTable, actions either in the caller's Trace (whole-trace feeding,
/// which syncs before returning) or in the batch's own Owned storage
/// (streaming feeding).
struct ActionRef {
  size_t EventIndex;
  ThreadId Thread;
  const VectorClock *Clock;
  const Action *A;
};

/// A unit of shard work: a run of action refs plus the copied payloads the
/// streaming path pinned for them. Actions wider than the inline value
/// capacity keep their values in the batch's spill arena, so pinning never
/// allocates per action; the arena's chunks (like the vectors' capacity)
/// survive recycling.
struct ShardBatch {
  std::vector<ActionRef> Refs;
  std::vector<Action> Owned;
  Arena Spill;
  uint64_t Seq = 0;       ///< Dispatch sequence number (observability).
  uint64_t EnqueueNs = 0; ///< Producer's push timestamp (observability).

  /// Drops the payloads but keeps every buffer for the next round.
  void recycle() {
    Refs.clear();
    Owned.clear();
    Spill.reset();
  }
};

} // namespace

/// Per-shard pipeline state. The worker thread is declared last so it is
/// destroyed (joined) before the state it references; the detector closes
/// the ring first, which ends the worker loop after draining.
struct ParallelDetector::Shard {
  explicit Shard(size_t BatchSize) : Ring(RingDepth), Recycle(RingDepth) {
    Pending.Refs.reserve(BatchSize);
    Pending.Owned.reserve(BatchSize);
  }

  SpscRing<ShardBatch> Ring;
  /// Drained batches flowing back from the worker so dispatch() can reuse
  /// their buffers (vector capacity + arena chunks) instead of allocating
  /// fresh ones per batch. SPSC with the roles reversed: the worker
  /// produces, the pre-pass thread consumes. Both ends are non-blocking —
  /// a full ring just drops the buffers, an empty one falls back to fresh
  /// allocation — so recycling can never deadlock the pipeline.
  SpscRing<ShardBatch> Recycle;
  std::atomic<uint64_t> Completed{0};
  uint64_t Enqueued = 0; ///< Producer-side only.
  Algorithm1Engine Engine;
  /// The batch being filled by the pre-pass thread. Owned is reserved to
  /// the batch size up front so pointers into it stay stable.
  ShardBatch Pending;
  size_t RoutedEvents = 0;
  uint64_t NextSeq = 0; ///< Producer-side batch sequence numbers.
  /// Races this shard contributed at the last merge. Structural like
  /// RoutedEvents (one add per flush, not per event), so it stays live —
  /// and the accounting invariant checkable — with CRD_METRICS=0.
  uint64_t MergedRaces = 0;

  /// Producer-written observability (the feeding thread; merge too — same
  /// thread). Inert when CRD_METRICS=0.
  metrics::Counter RingFullStalls;
  metrics::Counter StallNs;
  metrics::LinearHistogram<RingDepth + 2> Occupancy;
  metrics::LinearHistogram<11> FillDeciles;
  /// Worker-written observability. Counter's cache-line alignment keeps
  /// these off the producer-written lines above; Spans is appended only by
  /// the worker and read only after quiescence.
  metrics::Counter WorkerNs;
  metrics::Counter Batches;
  std::vector<BatchSpan> Spans;

  std::jthread Worker;
};

ParallelDetector::ParallelDetector(unsigned NumShards, size_t BatchSize,
                                   bool TraceBatches)
    : BatchSizeVal(std::max<size_t>(1, BatchSize)),
      TraceBatches(metrics::Enabled && TraceBatches) {
  if (NumShards == 0)
    NumShards = std::max(1u, std::thread::hardware_concurrency());
  ShardList.reserve(NumShards);
  for (unsigned I = 0; I != NumShards; ++I)
    ShardList.push_back(std::make_unique<Shard>(BatchSizeVal));
  // One shard runs inline on the caller thread; otherwise each shard gets a
  // persistent worker consuming its ring so shard work overlaps the
  // sequential clock pre-pass. The tracing flag and shard index are
  // captured by value: the lambda must not read detector members that may
  // be torn down while the worker drains.
  if (NumShards > 1)
    for (unsigned I = 0; I != NumShards; ++I) {
      Shard &S = *ShardList[I];
      S.Worker = std::jthread([&S, Tracing = this->TraceBatches,
                               ShardIdx = I] {
        ShardBatch B;
        while (S.Ring.pop(B)) {
          uint64_t Begin = metrics::nowNs();
          for (const ActionRef &R : B.Refs)
            S.Engine.onAction(*R.A, R.Thread, *R.Clock, R.EventIndex);
          uint64_t End = metrics::nowNs();
          S.WorkerNs.add(End - Begin);
          S.Batches.inc();
          // Span recorded before the Completed signal so a quiesced
          // pipeline always observes every span.
          if (Tracing)
            S.Spans.push_back({ShardIdx, B.Seq, B.Refs.size(), B.EnqueueNs,
                               Begin, End});
          B.recycle(); // Release payloads before signaling.
          S.Completed.fetch_add(1, std::memory_order_release);
          S.Completed.notify_one();
          // Hand the emptied buffers back for reuse; if the producer is
          // RingDepth batches of buffers ahead, just let these free.
          S.Recycle.tryPush(std::move(B));
          B = ShardBatch();
        }
      });
    }
}

ParallelDetector::~ParallelDetector() {
  for (std::unique_ptr<Shard> &S : ShardList)
    S->Ring.close();
  // Shard destructors join the workers (Worker is the last member).
}

unsigned ParallelDetector::shardOf(ObjectId Obj) const {
  // Mixed hash + fastrange: raw `index % shards` collapses strided object
  // ids onto few shards; splitmix64 spreads every input bit first, and the
  // multiply-shift maps the mixed value uniformly onto [0, #shards).
  uint32_t H = static_cast<uint32_t>(hashMix64(Obj.index()));
  return static_cast<unsigned>((uint64_t(H) * ShardList.size()) >> 32);
}

size_t ParallelDetector::conflictChecks() const {
  size_t Sum = 0;
  for (const std::unique_ptr<Shard> &S : ShardList)
    Sum += S->Engine.conflictChecks();
  return Sum;
}

size_t ParallelDetector::activePointCount() const {
  size_t Sum = 0;
  for (const std::unique_ptr<Shard> &S : ShardList)
    Sum += S->Engine.activePointCount();
  return Sum;
}

std::vector<size_t> ParallelDetector::shardLoads() const {
  std::vector<size_t> Loads;
  Loads.reserve(ShardList.size());
  for (const std::unique_ptr<Shard> &S : ShardList)
    Loads.push_back(S->RoutedEvents);
  return Loads;
}

void ParallelDetector::bind(ObjectId Obj, const AccessPointProvider *Provider) {
  flush(); // Quiesce so no in-flight batch resolves against the old binding.
  for (std::unique_ptr<Shard> &S : ShardList)
    S->Engine.bind(Obj, Provider);
}

void ParallelDetector::setDefaultProvider(const AccessPointProvider *Provider) {
  flush();
  for (std::unique_ptr<Shard> &S : ShardList)
    S->Engine.setDefaultProvider(Provider);
}

void ParallelDetector::objectDied(ObjectId Obj) {
  // Drain the owning shard so every earlier event on the object lands
  // before its state is reclaimed.
  Shard &S = *ShardList[shardOf(Obj)];
  dispatch(S);
  syncShard(S);
  S.Engine.objectDied(Obj);
}

const VectorClock *ParallelDetector::clockFor(ThreadId Tid) {
  if (Tid.index() >= ClockCache.size())
    ClockCache.resize(Tid.index() + 1, nullptr);
  const VectorClock *&Snapshot = ClockCache[Tid.index()];
  if (!Snapshot) {
    ClockSnapshotsCtr.inc();
    // Pooled snapshots: flush() rewinds ClockTableUsed instead of clearing
    // the deque, so steady-state snapshotting assigns into clocks that
    // already hold capacity (copyClockInto) — no allocation, no deep
    // buffer churn. Deque growth never moves existing entries, so pointers
    // held by in-flight batches stay valid.
    if (ClockTableUsed == ClockTable.size())
      ClockTable.emplace_back();
    VectorClock &Slot = ClockTable[ClockTableUsed++];
    VCState.copyClockInto(Tid, Slot);
    Snapshot = &Slot;
  }
  return Snapshot;
}

void ParallelDetector::invalidateClock(ThreadId Tid) {
  if (Tid.index() < ClockCache.size())
    ClockCache[Tid.index()] = nullptr;
}

void ParallelDetector::routeEvent(const Event &E, bool OwnAction) {
  if (metrics::Enabled && FeedStartNs == 0)
    FeedStartNs = metrics::nowNs(); // Pre-pass clock starts at first feed.
  size_t Index = EventsProcessed++;
  switch (E.kind()) {
  case EventKind::Invoke: {
    const Action *A = &E.action();
    Shard &S = *ShardList[shardOf(A->object())];
    if (OwnAction) {
      // Streaming feed: pin a copy — inline for small actions, spilled
      // into the batch arena for wide ones, so the source (typically a
      // wire decoder's per-chunk arena) can reset underneath us. Owned
      // never reallocates below the batch size, so the pointer stays
      // stable until dispatch moves the whole batch.
      S.Pending.Owned.push_back(A->copyInto(S.Pending.Spill));
      A = &S.Pending.Owned.back();
    }
    S.Pending.Refs.push_back({Index, E.thread(), clockFor(E.thread()), A});
    ++S.RoutedEvents;
    if (S.Pending.Refs.size() >= BatchSizeVal)
      dispatch(S);
    break;
  }
  case EventKind::Fork:
    SyncEventsCtr.inc();
    VCState.process(E);
    invalidateClock(E.thread());
    invalidateClock(E.other());
    break;
  case EventKind::Join:
  case EventKind::Acquire:
  case EventKind::Release:
    SyncEventsCtr.inc();
    VCState.process(E);
    invalidateClock(E.thread());
    break;
  default:
    // Read/Write/Tx* never mutate Table 1 clocks (they only force lazy
    // thread initialization, which clockFor performs on demand), so the
    // pre-pass skips them outright.
    break;
  }
}

void ParallelDetector::dispatch(Shard &S) {
  if (S.Pending.Refs.empty())
    return;
  S.FillDeciles.record(S.Pending.Refs.size() * 10 / BatchSizeVal);
  if (!S.Worker.joinable()) {
    // Single-shard inline mode: run on the caller thread, then reuse the
    // pending batch's buffers directly. The batch never queues, so its
    // span (when tracing) has EnqueueNs == BeginNs.
    uint64_t Begin = metrics::nowNs();
    for (const ActionRef &R : S.Pending.Refs)
      S.Engine.onAction(*R.A, R.Thread, *R.Clock, R.EventIndex);
    uint64_t End = metrics::nowNs();
    S.WorkerNs.add(End - Begin);
    S.Batches.inc();
    if (TraceBatches)
      S.Spans.push_back(
          {0, S.NextSeq, S.Pending.Refs.size(), Begin, Begin, End});
    ++S.NextSeq;
    S.Pending.recycle();
    return;
  }
  ShardBatch B = std::move(S.Pending);
  // Refill Pending from the recycle ring when the worker has handed
  // buffers back; otherwise start fresh (warmup, or the worker is behind).
  if (S.Recycle.tryPop(S.Pending)) {
    assert(S.Pending.Refs.empty() && "recycled batch not empty");
  } else {
    S.Pending = ShardBatch();
    S.Pending.Refs.reserve(BatchSizeVal);
    S.Pending.Owned.reserve(BatchSizeVal);
  }
  // In-flight depth the producer observes at this dispatch; with the
  // blocking push below it can reach but never exceed RingDepth.
  S.Occupancy.record(S.Enqueued - S.Completed.load(std::memory_order_relaxed));
  B.Seq = S.NextSeq++;
  B.EnqueueNs = metrics::nowNs();
  ++S.Enqueued;
  // Fast path first; a full ring is a pipeline stall worth counting (the
  // pre-pass is outrunning this shard by RingDepth batches).
  if (!S.Ring.tryPush(std::move(B))) {
    S.RingFullStalls.inc();
    uint64_t T0 = metrics::nowNs();
    S.Ring.push(std::move(B)); // Blocks until the worker frees a slot.
    S.StallNs.add(metrics::nowNs() - T0);
  }
}

void ParallelDetector::syncShard(Shard &S) {
  if (!S.Worker.joinable())
    return;
  uint64_t Done = S.Completed.load(std::memory_order_acquire);
  while (Done != S.Enqueued) {
    S.Completed.wait(Done, std::memory_order_acquire);
    Done = S.Completed.load(std::memory_order_acquire);
  }
}

void ParallelDetector::mergeResults() {
  // Deterministic merge: drain per-shard races and order by event index.
  // Races sharing an event index come from a single shard (an event
  // touches one object) and keep their emission order.
  size_t FirstNew = Races.size();
  for (std::unique_ptr<Shard> &S : ShardList) {
    std::vector<CommutativityRace> ShardRaces = S->Engine.takeRaces();
    S->MergedRaces += ShardRaces.size();
    Races.insert(Races.end(), std::make_move_iterator(ShardRaces.begin()),
                 std::make_move_iterator(ShardRaces.end()));
    RacyObjects.insert(S->Engine.racyObjects().begin(),
                       S->Engine.racyObjects().end());
  }
  std::stable_sort(Races.begin() + FirstNew, Races.end(),
                   [](const CommutativityRace &A, const CommutativityRace &B) {
                     return A.EventIndex < B.EventIndex;
                   });
}

void ParallelDetector::flush() {
  if (metrics::Enabled && FeedStartNs != 0) {
    PrePassNsCtr.add(metrics::nowNs() - FeedStartNs);
    FeedStartNs = 0;
  }
  for (std::unique_ptr<Shard> &S : ShardList)
    dispatch(*S);
  uint64_t SyncStart = metrics::nowNs();
  for (std::unique_ptr<Shard> &S : ShardList)
    syncShard(*S);
  uint64_t MergeStart = metrics::nowNs();
  FlushWaitNsCtr.add(MergeStart - SyncStart);
  mergeResults();
  MergeNsCtr.add(metrics::nowNs() - MergeStart);
  // Nothing is in flight anymore: rewind the snapshot pool. The clocks
  // keep their component capacity, so the next round's snapshots are
  // assignments into warm storage.
  ClockTableUsed = 0;
  std::fill(ClockCache.begin(), ClockCache.end(), nullptr);
}

void ParallelDetector::processEvent(const Event &E) {
  routeEvent(E, /*OwnAction=*/true);
}

void ParallelDetector::processTrace(const Trace &T) {
  // Whole-trace feeding pins no copies: the refs point into T, which
  // outlives the flush below.
  for (const Event &E : T)
    routeEvent(E, /*OwnAction=*/false);
  flush();
}

ParallelMetrics ParallelDetector::metricsSnapshot() const {
  ParallelMetrics M;
  M.Events = EventsProcessed;
  M.SyncEvents = SyncEventsCtr.get();
  M.ClockSnapshots = ClockSnapshotsCtr.get();
  M.PrePassNs = PrePassNsCtr.get();
  M.FlushWaitNs = FlushWaitNsCtr.get();
  M.MergeNs = MergeNsCtr.get();
  M.Shards.reserve(ShardList.size());
  for (const std::unique_ptr<Shard> &S : ShardList) {
    ParallelShardMetrics SM;
    SM.RoutedEvents = S->RoutedEvents;
    SM.Batches = S->Batches.get();
    SM.MergedRaces = S->MergedRaces;
    SM.RingFullStalls = S->RingFullStalls.get();
    SM.StallNs = S->StallNs.get();
    SM.WorkerNs = S->WorkerNs.get();
    SM.Engine = S->Engine.stats();
    SM.Occupancy = S->Occupancy.counts();
    SM.OccupancyMax = S->Occupancy.max();
    SM.FillDeciles = S->FillDeciles.counts();
    M.Actions += SM.RoutedEvents;
    M.Shards.push_back(SM);
    M.Spans.insert(M.Spans.end(), S->Spans.begin(), S->Spans.end());
  }
  // Chronological spans read better in tooling that ignores track order.
  std::stable_sort(M.Spans.begin(), M.Spans.end(),
                   [](const BatchSpan &A, const BatchSpan &B) {
                     return A.EnqueueNs < B.EnqueueNs;
                   });
  return M;
}

void crd::writeChromeTrace(std::ostream &OS, const ParallelMetrics &M) {
  metrics::JsonWriter W(OS);
  // Rebase so the earliest enqueue is t=0 (Chrome renders absolute µs).
  uint64_t Base = ~uint64_t(0);
  uint32_t MaxShard = 0;
  for (const BatchSpan &S : M.Spans) {
    Base = std::min(Base, S.EnqueueNs);
    MaxShard = std::max(MaxShard, S.Shard);
  }
  auto Us = [Base](uint64_t Ns) {
    return static_cast<double>(Ns - Base) / 1000.0;
  };
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();
  if (!M.Spans.empty())
    for (uint32_t Shard = 0; Shard <= MaxShard; ++Shard) {
      W.beginObject();
      W.field("name", "thread_name");
      W.field("ph", "M");
      W.field("pid", uint64_t(0));
      W.field("tid", uint64_t(Shard));
      W.key("args");
      W.beginObject();
      W.field("name", "shard " + std::to_string(Shard));
      W.endObject();
      W.endObject();
    }
  for (const BatchSpan &S : M.Spans) {
    std::string Label = "batch " + std::to_string(S.Seq) + " (" +
                        std::to_string(S.Events) + " ev)";
    // Queue-wait slice (zero-length for inline single-shard batches).
    if (S.BeginNs > S.EnqueueNs) {
      W.beginObject();
      W.field("name", "queued " + Label);
      W.field("ph", "X");
      W.field("pid", uint64_t(0));
      W.field("tid", uint64_t(S.Shard));
      W.field("ts", Us(S.EnqueueNs));
      W.field("dur", static_cast<double>(S.BeginNs - S.EnqueueNs) / 1000.0);
      W.endObject();
    }
    W.beginObject();
    W.field("name", Label);
    W.field("ph", "X");
    W.field("pid", uint64_t(0));
    W.field("tid", uint64_t(S.Shard));
    W.field("ts", Us(S.BeginNs));
    W.field("dur", static_cast<double>(S.EndNs - S.BeginNs) / 1000.0);
    W.key("args");
    W.beginObject();
    W.field("events", S.Events);
    W.endObject();
    W.endObject();
  }
  W.endArray();
  W.field("displayTimeUnit", "ms");
  W.endObject();
  OS << '\n';
}
