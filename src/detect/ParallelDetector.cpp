//===- detect/ParallelDetector.cpp - Object-sharded Algorithm 1 --------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "detect/ParallelDetector.h"

#include "support/Hashing.h"
#include "support/KindScan.h"
#include "support/SpscRing.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <ostream>
#include <string>
#include <thread>

using namespace crd;

namespace {

/// Mixed hash + fastrange: raw `index % shards` collapses strided object
/// ids onto few shards; splitmix64 spreads every input bit first, and the
/// multiply-shift maps the mixed value uniformly onto [0, #shards). A free
/// function because shard workers compute routing locally — every shard
/// evaluates the same hash and claims exactly its own objects, so no
/// pre-routing pass is needed.
unsigned shardIndex(ObjectId Obj, size_t NumShards) {
  uint32_t H = static_cast<uint32_t>(hashMix64(Obj.index()));
  return static_cast<unsigned>((uint64_t(H) * NumShards) >> 32);
}

/// Resolves the clock for \p Thread against a run's clock map. Threads the
/// clock machine never touched (nullptr / out-of-range entries) get a
/// shard-local synthesized inc_τ(⊥) = {τ:1} — bit-identical to the lazy
/// initialization the sequential VectorClockState would have performed,
/// but without mutating any shared state. \p Synth is the shard's own
/// synthesized-clock table (indexed by thread), written only by that
/// shard's executing thread.
const VectorClock *resolveClock(const std::vector<const VectorClock *> &Map,
                                ThreadId Thread,
                                std::vector<VectorClock> &Synth) {
  size_t I = Thread.index();
  if (I < Map.size() && Map[I])
    return Map[I];
  if (I >= Synth.size())
    Synth.resize(I + 1);
  VectorClock &C = Synth[I];
  if (C.isBottom())
    C.increment(Thread); // inc_τ(⊥): never bottom again, computed once.
  return &C;
}

} // namespace

/// A broadcast unit of shard work: one raw event batch plus its runs. The
/// same RunBatch pointer is pushed to EVERY shard's ring; each worker
/// walks the runs, claims the actions it owns (shardIndex), and stamps
/// them with the run's shared clock map. Pending counts shards still
/// reading; the producer reclaims the batch once it drops to zero.
///
/// Event storage is either Owned (streaming feeds — payloads pinned in the
/// batch's own arena) or external (whole-trace feeds — Evs points into the
/// caller's Trace, which outlives the flush).
struct ParallelDetector::RunBatch {
  struct Run {
    uint32_t Begin; ///< First event of the run (inclusive, batch-relative).
    uint32_t End;   ///< One past the last event (the next sync position).
    const ClockMap *Map; ///< Shared clock snapshot for the whole run.
  };

  EventBatch Owned;
  const Event *Evs = nullptr;
  size_t N = 0;
  uint64_t BaseIndex = 0; ///< Global event index of Evs[0].
  std::vector<Run> Runs;
  /// Ascending positions of the batch's invoke events — the pre-pass
  /// publishes this once (one SIMD kind scan) so every shard worker walks
  /// only the actions, slicing per-run subranges straight into the batched
  /// onRun() kernel instead of re-scanning raw events.
  std::vector<uint32_t> InvokePos;
  /// Batch-owned clock snapshots and run maps. Every pointer a run
  /// publishes targets this batch's own storage, so reclaiming the batch
  /// reclaims them — no cross-batch reference tracking, and recycling just
  /// rewinds the used counters while the deques (stable under growth) keep
  /// their slots warm: the steady state materializes snapshots into
  /// existing capacity and never allocates.
  std::deque<VectorClock> Clocks;
  size_t ClocksUsed = 0;
  std::deque<ClockMap> Maps;
  size_t MapsUsed = 0;
  uint64_t Seq = 0;       ///< Global dispatch sequence (observability).
  uint64_t EnqueueNs = 0; ///< Producer's broadcast timestamp.
  std::atomic<uint32_t> Pending{0}; ///< Shards still executing this batch.

  VectorClock &nextClock() {
    if (ClocksUsed == Clocks.size())
      Clocks.emplace_back();
    return Clocks[ClocksUsed++];
  }
  ClockMap &nextMap() {
    if (MapsUsed == Maps.size())
      Maps.emplace_back();
    return Maps[MapsUsed++];
  }
  /// Drops the contents but keeps every buffer for the next round.
  void recycle() {
    Owned.clear();
    Runs.clear();
    InvokePos.clear();
    Evs = nullptr;
    N = 0;
    ClocksUsed = 0;
    MapsUsed = 0;
  }
};

/// Per-shard pipeline state. The worker thread is declared last so it is
/// destroyed (joined) before the state it references; the detector closes
/// the ring first, which ends the worker loop after draining.
struct ParallelDetector::Shard {
  Shard() : Ring(RingDepth) {}

  SpscRing<RunBatch *> Ring;
  std::atomic<uint64_t> Completed{0};
  uint64_t Enqueued = 0; ///< Producer-side only.
  Algorithm1Engine Engine;
  /// Synthesized inc_τ(⊥) clocks for threads absent from a run's clock
  /// map; written only by this shard's executing thread (the worker, or
  /// the caller in single-shard inline mode).
  std::vector<VectorClock> Synth;
  /// Actions this shard claimed and executed. Written by the executing
  /// thread, read after quiescence (shardLoads/metricsSnapshot) — live in
  /// every build, like the engine's own counters.
  size_t RoutedEvents = 0;
  /// Races this shard contributed at the last merge. Structural like
  /// RoutedEvents (one add per flush, not per event), so it stays live —
  /// and the accounting invariant checkable — with CRD_METRICS=0.
  uint64_t MergedRaces = 0;

  /// Producer-written observability (the feeding thread; merge too — same
  /// thread). Inert when CRD_METRICS=0.
  metrics::Counter RingFullStalls;
  metrics::Counter StallNs;
  metrics::LinearHistogram<RingDepth + 2> Occupancy;
  metrics::LinearHistogram<11> FillDeciles;
  /// Worker-written observability. Counter's cache-line alignment keeps
  /// these off the producer-written lines above; Spans is appended only by
  /// the worker and read only after quiescence.
  metrics::Counter WorkerNs;
  metrics::Counter Batches;
  std::vector<BatchSpan> Spans;

  std::jthread Worker;
};

ParallelDetector::ParallelDetector(unsigned NumShards, size_t BatchSize,
                                   bool TraceBatches)
    : BatchSizeVal(std::max<size_t>(1, BatchSize)),
      TraceBatches(metrics::Enabled && TraceBatches) {
  if (NumShards == 0)
    NumShards = std::max(1u, std::thread::hardware_concurrency());
  ShardList.reserve(NumShards);
  for (unsigned I = 0; I != NumShards; ++I)
    ShardList.push_back(std::make_unique<Shard>());
  // One shard runs inline on the caller thread; otherwise each shard gets a
  // persistent worker consuming its ring so shard work overlaps the
  // sequential sync-only pre-pass. Everything the lambda needs is captured
  // by value or reachable through its own Shard / the producer-owned batch
  // pool (which outlives the workers by declaration order): it must not
  // read detector members that may be torn down while it drains.
  if (NumShards > 1)
    for (unsigned I = 0; I != NumShards; ++I) {
      Shard &S = *ShardList[I];
      S.Worker = std::jthread([&S, NumShards, ShardIdx = I,
                               Tracing = this->TraceBatches] {
        RunBatch *RB = nullptr;
        while (S.Ring.pop(RB)) {
          uint64_t Begin = metrics::nowNs();
          uint64_t Mine = 0;
          // Locally computed routing: every shard claims exactly its own
          // objects through the same hash.
          auto Filter = [NumShards, ShardIdx](const Action &A) {
            return shardIndex(A.object(), NumShards) == ShardIdx;
          };
          // Runs and invoke positions are both ascending, so one cursor
          // over the batch's invoke index slices each run's actions; the
          // batched kernel never touches the raw non-invoke events.
          const std::vector<uint32_t> &Inv = RB->InvokePos;
          size_t Cursor = 0;
          for (const RunBatch::Run &R : RB->Runs) {
            while (Cursor < Inv.size() && Inv[Cursor] < R.Begin)
              ++Cursor;
            size_t First = Cursor;
            while (Cursor < Inv.size() && Inv[Cursor] < R.End)
              ++Cursor;
            if (Cursor == First)
              continue;
            auto Resolve = [&R, &S](ThreadId T) -> const VectorClock & {
              return *resolveClock(*R.Map, T, S.Synth);
            };
            Mine += S.Engine.onRun(RB->Evs, Inv.data() + First,
                                   Cursor - First, RB->BaseIndex, Resolve,
                                   Filter);
          }
          uint64_t End = metrics::nowNs();
          S.WorkerNs.add(End - Begin);
          S.Batches.inc();
          S.RoutedEvents += Mine;
          // Span recorded before the Completed signal so a quiesced
          // pipeline always observes every span.
          if (Tracing)
            S.Spans.push_back(
                {ShardIdx, RB->Seq, Mine, RB->EnqueueNs, Begin, End});
          // Release the batch refcount only after the last read of it,
          // then signal completion: quiescence implies every Pending
          // decrement is visible to the producer.
          RB->Pending.fetch_sub(1, std::memory_order_release);
          S.Completed.fetch_add(1, std::memory_order_release);
          S.Completed.notify_one();
        }
      });
    }
}

ParallelDetector::~ParallelDetector() {
  for (std::unique_ptr<Shard> &S : ShardList)
    S->Ring.close();
  // Shard destructors join the workers (Worker is the last member); the
  // batch pool outlives them by declaration order.
}

unsigned ParallelDetector::shardOf(ObjectId Obj) const {
  return shardIndex(Obj, ShardList.size());
}

size_t ParallelDetector::conflictChecks() const {
  size_t Sum = 0;
  for (const std::unique_ptr<Shard> &S : ShardList)
    Sum += S->Engine.conflictChecks();
  return Sum;
}

size_t ParallelDetector::activePointCount() const {
  size_t Sum = 0;
  for (const std::unique_ptr<Shard> &S : ShardList)
    Sum += S->Engine.activePointCount();
  return Sum;
}

std::vector<size_t> ParallelDetector::shardLoads() const {
  std::vector<size_t> Loads;
  Loads.reserve(ShardList.size());
  for (const std::unique_ptr<Shard> &S : ShardList)
    Loads.push_back(S->RoutedEvents);
  return Loads;
}

void ParallelDetector::bind(ObjectId Obj, const AccessPointProvider *Provider) {
  flush(); // Quiesce so no in-flight batch resolves against the old binding.
  for (std::unique_ptr<Shard> &S : ShardList)
    S->Engine.bind(Obj, Provider);
}

void ParallelDetector::setDefaultProvider(const AccessPointProvider *Provider) {
  flush();
  for (std::unique_ptr<Shard> &S : ShardList)
    S->Engine.setDefaultProvider(Provider);
}

void ParallelDetector::objectDied(ObjectId Obj) {
  // Dispatch anything staged, then drain the owning shard so every earlier
  // event on the object lands before its state is reclaimed. Batches are
  // broadcast, so only the owner needs to have caught up.
  sealStaging();
  Shard &S = *ShardList[shardOf(Obj)];
  syncShard(S);
  S.Engine.objectDied(Obj);
}

ParallelDetector::RunBatch *ParallelDetector::acquireBatch() {
  reclaimCompleted();
  if (FreeBatches.empty()) {
    // Steady state never reaches this: the ring depth bounds in-flight
    // batches, so after warmup the pool cycles.
    BatchStore.emplace_back();
    FreeBatches.push_back(&BatchStore.back());
  }
  RunBatch *RB = FreeBatches.back();
  FreeBatches.pop_back();
  return RB;
}

void ParallelDetector::reclaimCompleted() {
  // Batches complete in FIFO order per shard, and every shard consumes the
  // same sequence, so scanning the in-flight queue from the front finds
  // every reclaimable batch.
  while (!InFlight.empty() &&
         InFlight.front()->Pending.load(std::memory_order_acquire) == 0) {
    RunBatch *RB = InFlight.front();
    InFlight.pop_front();
    RB->recycle(); // Keeps buffers + arena chunks warm for reuse.
    FreeBatches.push_back(RB);
  }
}

void ParallelDetector::prepassAndDispatch(
    RunBatch *RB, const std::vector<uint32_t> &SyncPos, const uint8_t *Kinds) {
  uint64_t PrepassBegin = TraceBatches ? metrics::nowNs() : 0;

  // Publish the batch's invoke-position index for the shard workers: one
  // combined SIMD scan (sync and invoke kinds are exactly the bytes below
  // Invoke + 1) filtered down to the invokes. O(N/16) vector steps plus
  // O(#sync + #invoke) scalar work — memory/tx events are never loaded.
  CombinedScratch.clear();
  appendKindPositions(Kinds, RB->N, static_cast<uint8_t>(SyncKindBound + 1),
                      /*Base=*/0, CombinedScratch);
  for (uint32_t P : CombinedScratch)
    if (Kinds[P] >= SyncKindBound)
      RB->InvokePos.push_back(P);

  // The current run map, materialized lazily into the batch's own storage
  // on the first non-empty run (an all-sync batch never builds one).
  // DirtyThreads collects threads whose clock changed since Cur was built;
  // the next map copies Cur and re-snapshots only those.
  const ClockMap *Cur = nullptr;
  DirtyThreads.clear();
  auto SnapshotInto = [&](ClockMap &M, ThreadId Tid) {
    // Only threads the clock machine actually initialized get snapshots;
    // forcing lazy init here would perturb Table 1 state for threads the
    // trace never synchronized. Workers synthesize inc_τ(⊥) for the rest —
    // value-identical to lazy initialization (VectorClockState.h).
    if (!VCState.initializedClock(Tid)) {
      M[Tid.index()] = nullptr;
      return;
    }
    ClockSnapshotsCtr.inc();
    VectorClock &Slot = RB->nextClock();
    VCState.copyClockInto(Tid, Slot);
    M[Tid.index()] = &Slot;
  };
  auto emitRun = [&](uint32_t Begin, uint32_t End) {
    RunLengths.record(End - Begin); // Length 0 = back-to-back sync events.
    if (Begin == End)
      return;
    if (!Cur) {
      // Seed map: snapshot every initialized thread.
      ClockMapsCtr.inc();
      ClockMap &M = RB->nextMap();
      size_t NumThreads = VCState.numThreads();
      M.assign(NumThreads, nullptr);
      for (size_t I = 0; I != NumThreads; ++I)
        SnapshotInto(M, ThreadId(static_cast<uint32_t>(I)));
      Cur = &M;
    } else if (!DirtyThreads.empty()) {
      // Incremental map: copy the previous one, re-snapshot the changed
      // threads (a fork may have grown the thread set).
      ClockMapsCtr.inc();
      ClockMap &M = RB->nextMap();
      M = *Cur;
      M.resize(VCState.numThreads(), nullptr);
      for (ThreadId Tid : DirtyThreads)
        SnapshotInto(M, Tid);
      Cur = &M;
    }
    DirtyThreads.clear();
    RB->Runs.push_back({Begin, End, Cur});
  };

  // The sync-only walk: jump from sync position to sync position. Events
  // between two of them form a run whose clocks are constant — the clock
  // machine (and this thread) never looks at them. Work here is O(#sync),
  // not O(#events).
  uint32_t Prev = 0;
  for (uint32_t Sync : SyncPos) {
    emitRun(Prev, Sync);
    const Event &E = RB->Evs[Sync];
    SyncEventsCtr.inc();
    PrepassVisitedCtr.inc();
    VCState.process(E);
    DirtyThreads.push_back(E.thread());
    if (E.kind() == EventKind::Fork)
      DirtyThreads.push_back(E.other());
    Prev = Sync + 1;
  }
  emitRun(Prev, static_cast<uint32_t>(RB->N));

  if (RB->Runs.empty()) {
    // Every event was a sync event — the pre-pass consumed the whole
    // batch; nothing to hand to the shards.
    RB->recycle();
    FreeBatches.push_back(RB);
    return;
  }

  RB->Seq = NextSeq++;
  if (TraceBatches)
    PrePassSpans.push_back({0, RB->Seq, static_cast<uint64_t>(RB->N),
                            PrepassBegin, PrepassBegin, metrics::nowNs()});
  RB->EnqueueNs = metrics::nowNs();

  // Broadcast: the same batch goes to every shard; workers filter locally.
  // Pending is published to the workers by the ring pushes below.
  RB->Pending.store(static_cast<uint32_t>(ShardList.size()),
                    std::memory_order_relaxed);
  InFlight.push_back(RB);
  for (std::unique_ptr<Shard> &ShardPtr : ShardList) {
    Shard &S = *ShardPtr;
    S.FillDeciles.record(RB->N * 10 / BatchSizeVal);
    // In-flight depth the producer observes at this dispatch; with the
    // blocking push below it can reach but never exceed RingDepth.
    S.Occupancy.record(S.Enqueued -
                       S.Completed.load(std::memory_order_relaxed));
    ++S.Enqueued;
    // Fast path first; a full ring is a pipeline stall worth counting (the
    // pre-pass is outrunning this shard by RingDepth batches). Moving a
    // pointer copies it, so RB survives for the remaining shards.
    if (!S.Ring.tryPush(std::move(RB))) {
      S.RingFullStalls.inc();
      uint64_t T0 = metrics::nowNs();
      S.Ring.push(std::move(RB)); // Blocks until the worker frees a slot.
      S.StallNs.add(metrics::nowNs() - T0);
    }
  }
}

void ParallelDetector::processEventFused(const Event &E, size_t Index) {
  if (FusedWindowEvents == 0)
    FusedWindowBeginNs = metrics::nowNs();
  ++FusedWindowEvents;
  if (static_cast<uint8_t>(E.kind()) < SyncKindBound) {
    SyncEventsCtr.inc();
    PrepassVisitedCtr.inc();
    RunLengths.record(FusedRunLen);
    FusedRunLen = 0;
    VCState.process(E);
  } else {
    ++FusedRunLen;
    if (E.kind() == EventKind::Invoke) {
      // Single shard owns every object: no routing, no snapshot — the
      // clock machine's own clock is safe to read, nothing runs ahead.
      ShardList[0]->Engine.onAction(E.action(), E.thread(),
                                    VCState.clockOf(E.thread()), Index);
      ++FusedWindowActions;
    }
  }
  if (FusedWindowEvents >= BatchSizeVal)
    closeFusedWindow();
}

void ParallelDetector::processSpanFused(const Event *Evs, const uint8_t *Kinds,
                                        size_t N, size_t BaseIndex) {
  // Single shard owns every object: no routing, no snapshot — the clock
  // machine's own clocks are safe to read, nothing runs ahead. Within a
  // run no sync event intervenes, so each clock reference stays valid for
  // the whole onRun() call.
  Shard &S = *ShardList[0];
  auto Resolve = [this](ThreadId T) -> const VectorClock & {
    return VCState.clockOf(T);
  };
  auto All = [](const Action &) { return true; };
  size_t I = 0;
  while (I < N) {
    if (FusedWindowEvents == 0)
      FusedWindowBeginNs = metrics::nowNs();
    size_t Window = std::min(N - I, BatchSizeVal - FusedWindowEvents);
    // One combined SIMD scan finds the window's sync and invoke events;
    // the walk flushes each run's invokes into the batched kernel before
    // the delimiting sync event advances the clocks.
    CombinedScratch.clear();
    appendKindPositions(Kinds + I, Window,
                        static_cast<uint8_t>(SyncKindBound + 1),
                        static_cast<uint32_t>(I), CombinedScratch);
    InvokeScratch.clear();
    auto FlushRun = [&] {
      if (InvokeScratch.empty())
        return;
      FusedWindowActions += S.Engine.onRun(Evs, InvokeScratch.data(),
                                           InvokeScratch.size(), BaseIndex,
                                           Resolve, All);
      InvokeScratch.clear();
    };
    // Run-length accounting: every event not in the combined index is a
    // memory/tx event, so [Prev, P) counts exactly the non-sync events
    // since the last sync; FusedRunLen carries the tail across windows.
    uint32_t Prev = static_cast<uint32_t>(I);
    for (uint32_t P : CombinedScratch) {
      if (Kinds[P] < SyncKindBound) {
        FlushRun();
        SyncEventsCtr.inc();
        PrepassVisitedCtr.inc();
        RunLengths.record(FusedRunLen + (P - Prev));
        FusedRunLen = 0;
        Prev = P + 1;
        VCState.process(Evs[P]);
      } else {
        InvokeScratch.push_back(P);
      }
    }
    FlushRun();
    FusedRunLen += (I + Window) - Prev;
    FusedWindowEvents += Window;
    I += Window;
    if (FusedWindowEvents >= BatchSizeVal)
      closeFusedWindow();
  }
}

void ParallelDetector::closeFusedWindow() {
  if (FusedWindowEvents == 0)
    return;
  Shard &S = *ShardList[0];
  uint64_t End = metrics::nowNs();
  S.Batches.inc();
  S.WorkerNs.add(End - FusedWindowBeginNs);
  S.FillDeciles.record(FusedWindowEvents * 10 / BatchSizeVal);
  S.RoutedEvents += FusedWindowActions;
  if (TraceBatches)
    S.Spans.push_back({0, NextSeq, FusedWindowActions, FusedWindowBeginNs,
                       FusedWindowBeginNs, End});
  ++NextSeq;
  FusedWindowEvents = 0;
  FusedWindowActions = 0;
}

void ParallelDetector::sealStaging() {
  if (Staging.empty())
    return;
  Staging.finalizeSyncIndex(); // SIMD kind-scan over the staged kinds.
  RunBatch *RB = acquireBatch();
  std::swap(RB->Owned, Staging); // Staging inherits warm, cleared buffers.
  RB->Evs = RB->Owned.Events.data();
  RB->N = RB->Owned.size();
  RB->BaseIndex = StagingBase;
  prepassAndDispatch(RB, RB->Owned.SyncPos, RB->Owned.Kinds.data());
}

void ParallelDetector::processEvent(const Event &E) {
  if (metrics::Enabled && FeedStartNs == 0)
    FeedStartNs = metrics::nowNs(); // Pre-pass clock starts at first feed.
  if (fused()) {
    ++EventsProcessed;
    processEventFused(E, EventsProcessed - 1);
    return;
  }
  if (Staging.empty())
    StagingBase = EventsProcessed;
  ++EventsProcessed;
  Staging.append(E); // Pins the payload into the staging batch's arena.
  if (Staging.size() >= BatchSizeVal)
    sealStaging();
}

void ParallelDetector::processBatch(EventBatch &B) {
  if (metrics::Enabled && FeedStartNs == 0)
    FeedStartNs = metrics::nowNs();
  if (fused()) {
    // Synchronous execution: payloads in B's arena are consumed before the
    // caller gets the (cleared) batch back.
    processSpanFused(B.Events.data(), B.Kinds.data(), B.size(),
                     EventsProcessed);
    EventsProcessed += B.size();
    B.clear();
    return;
  }
  sealStaging(); // Mixed feeding: staged events come first, in order.
  if (B.empty())
    return;
  RunBatch *RB = acquireBatch();
  std::swap(RB->Owned, B); // Hand the caller recycled warm buffers.
  RB->Evs = RB->Owned.Events.data();
  RB->N = RB->Owned.size();
  RB->BaseIndex = EventsProcessed;
  EventsProcessed += RB->N;
  prepassAndDispatch(RB, RB->Owned.SyncPos, RB->Owned.Kinds.data());
}

void ParallelDetector::processTrace(const Trace &T) {
  if (metrics::Enabled && FeedStartNs == 0)
    FeedStartNs = metrics::nowNs();
  if (fused()) {
    // Windowed kernel feed: the trace stores events (not contiguous kind
    // bytes), so each window gathers its kinds into reusable scratch and
    // hands the span to the batched kernel — runs execute through the
    // engine's prefetch-pipelined onRun() instead of a per-event loop.
    const std::vector<Event> &Events = T.events();
    for (size_t Begin = 0; Begin < Events.size(); Begin += BatchSizeVal) {
      size_t N = std::min(BatchSizeVal, Events.size() - Begin);
      KindScratch.clear();
      for (size_t J = 0; J != N; ++J)
        KindScratch.push_back(static_cast<uint8_t>(Events[Begin + J].kind()));
      processSpanFused(Events.data() + Begin, KindScratch.data(), N,
                       EventsProcessed);
      EventsProcessed += N;
    }
    flush();
    return;
  }
  sealStaging();
  // Whole-trace feeding pins no copies: batches window the trace's own
  // contiguous event storage, which outlives the flush below. Only the
  // kind bytes are gathered (they are not contiguous inside Event), then
  // the sync index comes from the SIMD scan.
  const std::vector<Event> &Events = T.events();
  for (size_t Begin = 0; Begin < Events.size(); Begin += BatchSizeVal) {
    size_t N = std::min(BatchSizeVal, Events.size() - Begin);
    RunBatch *RB = acquireBatch();
    RB->Evs = Events.data() + Begin;
    RB->N = N;
    RB->BaseIndex = EventsProcessed;
    EventsProcessed += N;
    KindScratch.clear();
    for (size_t J = 0; J != N; ++J)
      KindScratch.push_back(static_cast<uint8_t>(RB->Evs[J].kind()));
    SyncScratch.clear();
    appendKindPositions(KindScratch.data(), N, SyncKindBound, /*Base=*/0,
                        SyncScratch);
    prepassAndDispatch(RB, SyncScratch, KindScratch.data());
  }
  flush(); // Also the lifetime fence: refs into T die here.
}

void ParallelDetector::syncShard(Shard &S) {
  if (!S.Worker.joinable())
    return;
  uint64_t Done = S.Completed.load(std::memory_order_acquire);
  while (Done != S.Enqueued) {
    S.Completed.wait(Done, std::memory_order_acquire);
    Done = S.Completed.load(std::memory_order_acquire);
  }
}

void ParallelDetector::mergeResults() {
  // Deterministic merge: drain per-shard races and order by event index.
  // Races sharing an event index come from a single shard (an event
  // touches one object) and keep their emission order.
  size_t FirstNew = Races.size();
  for (std::unique_ptr<Shard> &S : ShardList) {
    std::vector<CommutativityRace> ShardRaces = S->Engine.takeRaces();
    S->MergedRaces += ShardRaces.size();
    if (Races.empty())
      Races = std::move(ShardRaces); // First contributor: steal the vector.
    else
      Races.insert(Races.end(), std::make_move_iterator(ShardRaces.begin()),
                   std::make_move_iterator(ShardRaces.end()));
    RacyObjects.insert(S->Engine.racyObjects().begin(),
                       S->Engine.racyObjects().end());
  }
  // A single shard emits in event order already — nothing to reorder.
  if (ShardList.size() > 1)
    std::stable_sort(Races.begin() + FirstNew, Races.end(),
                     [](const CommutativityRace &A,
                        const CommutativityRace &B) {
                       return A.EventIndex < B.EventIndex;
                     });
}

void ParallelDetector::flush() {
  if (fused()) {
    closeFusedWindow();
    if (FusedRunLen != 0) {
      RunLengths.record(FusedRunLen); // Trailing run of the feed window.
      FusedRunLen = 0;
    }
  }
  sealStaging();
  if (metrics::Enabled && FeedStartNs != 0) {
    PrePassNsCtr.add(metrics::nowNs() - FeedStartNs);
    FeedStartNs = 0;
  }
  uint64_t SyncStart = metrics::nowNs();
  for (std::unique_ptr<Shard> &S : ShardList)
    syncShard(*S);
  uint64_t MergeStart = metrics::nowNs();
  FlushWaitNsCtr.add(MergeStart - SyncStart);
  reclaimCompleted(); // Quiesced: every in-flight batch recycles.
  mergeResults();
  MergeNsCtr.add(metrics::nowNs() - MergeStart);
}

ParallelMetrics ParallelDetector::metricsSnapshot() const {
  ParallelMetrics M;
  M.Events = EventsProcessed;
  M.SyncEvents = SyncEventsCtr.get();
  M.PrepassEventsVisited = PrepassVisitedCtr.get();
  M.ClockSnapshots = ClockSnapshotsCtr.get();
  M.ClockMaps = ClockMapsCtr.get();
  M.Runs = RunLengths.count();
  M.RunLengthPow2 = RunLengths.counts();
  M.RunLengthMax = RunLengths.max();
  M.PrePassNs = PrePassNsCtr.get();
  M.FlushWaitNs = FlushWaitNsCtr.get();
  M.MergeNs = MergeNsCtr.get();
  M.Shards.reserve(ShardList.size());
  for (const std::unique_ptr<Shard> &S : ShardList) {
    ParallelShardMetrics SM;
    SM.RoutedEvents = S->RoutedEvents;
    SM.Batches = S->Batches.get();
    SM.MergedRaces = S->MergedRaces;
    SM.RingFullStalls = S->RingFullStalls.get();
    SM.StallNs = S->StallNs.get();
    SM.WorkerNs = S->WorkerNs.get();
    SM.Engine = S->Engine.stats();
    SM.Occupancy = S->Occupancy.counts();
    SM.OccupancyMax = S->Occupancy.max();
    SM.FillDeciles = S->FillDeciles.counts();
    M.Actions += SM.RoutedEvents;
    M.Shards.push_back(SM);
    M.Spans.insert(M.Spans.end(), S->Spans.begin(), S->Spans.end());
  }
  M.PrePassSpans = PrePassSpans;
  // Chronological spans read better in tooling that ignores track order.
  std::stable_sort(M.Spans.begin(), M.Spans.end(),
                   [](const BatchSpan &A, const BatchSpan &B) {
                     return A.EnqueueNs < B.EnqueueNs;
                   });
  return M;
}

void crd::writeChromeTrace(std::ostream &OS, const ParallelMetrics &M,
                           const ChromeTraceAnnotation *Annotation) {
  metrics::JsonWriter W(OS);
  // Rebase so the earliest span is t=0 (Chrome renders absolute µs).
  uint64_t Base = ~uint64_t(0);
  uint32_t MaxShard = 0;
  for (const BatchSpan &S : M.Spans) {
    Base = std::min(Base, S.EnqueueNs);
    MaxShard = std::max(MaxShard, S.Shard);
  }
  for (const BatchSpan &S : M.PrePassSpans)
    Base = std::min(Base, S.BeginNs);
  auto Us = [Base](uint64_t Ns) {
    return static_cast<double>(Ns - Base) / 1000.0;
  };
  // The pre-pass renders as its own row below the shard rows.
  uint64_t PrePassTid = uint64_t(MaxShard) + 1;
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();
  if (!M.Spans.empty())
    for (uint32_t Shard = 0; Shard <= MaxShard; ++Shard) {
      W.beginObject();
      W.field("name", "thread_name");
      W.field("ph", "M");
      W.field("pid", uint64_t(0));
      W.field("tid", uint64_t(Shard));
      W.key("args");
      W.beginObject();
      W.field("name", "shard " + std::to_string(Shard));
      W.endObject();
      W.endObject();
    }
  if (!M.PrePassSpans.empty()) {
    W.beginObject();
    W.field("name", "thread_name");
    W.field("ph", "M");
    W.field("pid", uint64_t(0));
    W.field("tid", PrePassTid);
    W.key("args");
    W.beginObject();
    W.field("name", "pre-pass");
    W.endObject();
    W.endObject();
  }
  if (Annotation) {
    W.beginObject();
    W.field("name", Annotation->Name);
    W.field("ph", "M");
    W.field("pid", uint64_t(0));
    W.field("tid", uint64_t(0));
    W.key("args");
    W.beginObject();
    for (const auto &[Key, Val] : Annotation->Args)
      W.field(Key.c_str(), Val);
    W.endObject();
    W.endObject();
  }
  for (const BatchSpan &S : M.Spans) {
    std::string Label = "batch " + std::to_string(S.Seq) + " (" +
                        std::to_string(S.Events) + " ev)";
    // Queue-wait slice (zero-length for inline single-shard batches).
    if (S.BeginNs > S.EnqueueNs) {
      W.beginObject();
      W.field("name", "queued " + Label);
      W.field("ph", "X");
      W.field("pid", uint64_t(0));
      W.field("tid", uint64_t(S.Shard));
      W.field("ts", Us(S.EnqueueNs));
      W.field("dur", static_cast<double>(S.BeginNs - S.EnqueueNs) / 1000.0);
      W.endObject();
    }
    W.beginObject();
    W.field("name", Label);
    W.field("ph", "X");
    W.field("pid", uint64_t(0));
    W.field("tid", uint64_t(S.Shard));
    W.field("ts", Us(S.BeginNs));
    W.field("dur", static_cast<double>(S.EndNs - S.BeginNs) / 1000.0);
    W.key("args");
    W.beginObject();
    W.field("events", S.Events);
    W.endObject();
    W.endObject();
  }
  for (const BatchSpan &S : M.PrePassSpans) {
    W.beginObject();
    W.field("name", "pre-pass " + std::to_string(S.Seq) + " (" +
                        std::to_string(S.Events) + " ev)");
    W.field("ph", "X");
    W.field("pid", uint64_t(0));
    W.field("tid", PrePassTid);
    W.field("ts", Us(S.BeginNs));
    W.field("dur", static_cast<double>(S.EndNs - S.BeginNs) / 1000.0);
    W.key("args");
    W.beginObject();
    W.field("events", S.Events);
    W.endObject();
    W.endObject();
  }
  W.endArray();
  W.field("displayTimeUnit", "ms");
  W.endObject();
  OS << '\n';
}
