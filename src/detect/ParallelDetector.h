//===- detect/ParallelDetector.h - Object-sharded Algorithm 1 ---*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An object-sharded, pipelined parallelization of Algorithm 1. The key
/// observation (the shard invariant documented in DESIGN.md) is that all of
/// Algorithm 1's mutable state is partitioned per object: phases 1–2 for an
/// event on object o touch only active(o). Only the Table 1 clock machine
/// is inherently sequential — and it only *changes* at synchronization
/// events, which are ~3% of a typical trace. The pipeline is therefore
/// organized around RUNS: the maximal stretches of events between two sync
/// events, over which every thread's clock is constant.
///
///   1. Sync-only pre-pass (sequential, caller thread): jump from sync
///      event to sync event using the batch's precomputed sync index
///      (emitted by the wire decoder, or SIMD kind-scanned for in-memory
///      feeds — support/KindScan.h). Only sync events run the clock
///      machine; per run the pre-pass publishes one shared clock-map
///      snapshot (thread → clock pointer). Work is O(#sync), not
///      O(#events).
///   2. Run handoff (pipelined): whole raw event batches — annotated with
///      their runs — are broadcast to every shard's persistent worker
///      through bounded SPSC rings. Workers compute per-event shard
///      routing locally (the same fastrange hash on every shard) and
///      execute exactly the actions they own, so the caller thread never
///      touches non-sync events at all.
///   3. Merge (sequential, deterministic): flush() waits for shard
///      quiescence, then orders the drained per-shard race vectors by event
///      index — bit-identical to the sequential CommutativityRaceDetector.
///
/// Both whole-trace (processTrace), batch (processBatch) and event-at-a-
/// time (processEvent + flush) feeding are supported; the streaming paths
/// pin action payloads into batch-owned storage, so callers may discard
/// events immediately.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_DETECT_PARALLELDETECTOR_H
#define CRD_DETECT_PARALLELDETECTOR_H

#include "detect/Algorithm1.h"
#include "hb/VectorClockState.h"
#include "support/Metrics.h"
#include "trace/EventBatch.h"
#include "trace/Trace.h"

#include <array>
#include <deque>
#include <iosfwd>
#include <memory>
#include <vector>

namespace crd {

/// Lifetime of one batch execution on one shard, recorded when the
/// detector is constructed with TraceBatches=true (and the build has
/// CRD_METRICS=1). Rendered as a Chrome-trace timeline by
/// writeChromeTrace(). Since batches are broadcast, each dispatched batch
/// produces one span per shard; Events counts the actions that shard
/// actually owned and executed.
struct BatchSpan {
  uint32_t Shard = 0;
  uint64_t Seq = 0;       ///< Global batch sequence number (0-based).
  uint64_t Events = 0;    ///< Actions this shard executed from the batch.
  uint64_t EnqueueNs = 0; ///< Producer broadcast the batch to the rings.
  uint64_t BeginNs = 0;   ///< Worker began executing the batch.
  uint64_t EndNs = 0;     ///< Worker finished the batch.
};

/// Per-shard slice of a ParallelDetector metrics snapshot. All counts are
/// zeros in a CRD_METRICS=OFF build except RoutedEvents (the shard-balance
/// statistic, live in every build).
struct ParallelShardMetrics {
  uint64_t RoutedEvents = 0;   ///< Actions this shard claimed and executed.
  uint64_t Batches = 0;        ///< Run batches the shard executed.
  uint64_t MergedRaces = 0;    ///< Races this shard contributed at merges.
  uint64_t RingFullStalls = 0; ///< Dispatches that found the ring full.
  uint64_t StallNs = 0;        ///< Producer time blocked on a full ring.
  uint64_t WorkerNs = 0;       ///< Worker time executing batches.
  Algorithm1Stats Engine;      ///< The shard engine's own counters.
  /// Ring occupancy observed at each dispatch: bucket i = i batches were
  /// in flight (the last bucket absorbs the tail; with the blocking push
  /// occupancy never exceeds the ring depth).
  std::array<uint64_t, 10> Occupancy{};
  uint64_t OccupancyMax = 0;
  /// Batch fill at dispatch, in deciles of the configured batch size:
  /// bucket i = fill in [i*10, (i+1)*10)%; bucket 10 = exactly full.
  std::array<uint64_t, 11> FillDeciles{};
};

/// Whole-pipeline metrics snapshot (schema: docs/observability.md). Valid
/// only on a quiesced pipeline — call after processTrace() or flush().
struct ParallelMetrics {
  uint64_t Events = 0;         ///< All events fed (every kind).
  uint64_t Actions = 0;        ///< Invoke events executed by shards.
  uint64_t SyncEvents = 0;     ///< Clock-machine events (fork/join/acq/rel).
  /// Events the sequential pre-pass actually visited — exactly the sync
  /// events under the run-based pipeline. prepass_events_visited / events
  /// is the sequential fraction (the acceptance metric of the rework).
  uint64_t PrepassEventsVisited = 0;
  uint64_t ClockSnapshots = 0; ///< Distinct clock snapshots materialized.
  uint64_t ClockMaps = 0;      ///< Per-run clock maps materialized.
  uint64_t Runs = 0;           ///< Runs delimited (including empty ones).
  /// Run-length histogram, power-of-two buckets: bucket 0 counts empty
  /// runs (back-to-back sync events), bucket i counts lengths in
  /// [2^(i-1), 2^i), the last bucket absorbs the tail.
  std::array<uint64_t, 16> RunLengthPow2{};
  uint64_t RunLengthMax = 0;
  uint64_t PrePassNs = 0;      ///< Feed time: first feed to flush.
  uint64_t FlushWaitNs = 0;    ///< flush() time waiting for shard quiescence.
  uint64_t MergeNs = 0;        ///< flush() time merging race vectors.
  std::vector<ParallelShardMetrics> Shards;
  std::vector<BatchSpan> Spans; ///< Empty unless TraceBatches was set.
  /// Producer-side pre-pass span per dispatched batch (TraceBatches only):
  /// Seq/Events/EnqueueNs mirror the batch, Begin/End bracket the sync
  /// walk + run emission. Rendered as a dedicated "pre-pass" row.
  std::vector<BatchSpan> PrePassSpans;
};

/// Object-sharded parallel commutativity race detector. Mirrors the
/// sequential CommutativityRaceDetector API for whole-trace processing and
/// produces bit-identical race reports.
class ParallelDetector {
public:
  /// Events per dispatched batch: large enough to amortize the ring
  /// handoff, small enough to keep all shards busy while the pre-pass runs.
  static constexpr size_t DefaultBatchSize = 4096;

  /// Ring depth per shard: bounds in-flight batches (and thus pinned clock
  /// snapshots / copied actions) while leaving slack for pre-pass bursts.
  /// Public because the occupancy histogram in ParallelShardMetrics is
  /// sized by it (RingDepth + 2 buckets: 0..RingDepth plus a tail).
  static constexpr size_t RingDepth = 8;
  static_assert(ParallelShardMetrics{}.Occupancy.size() == RingDepth + 2,
                "occupancy histogram must cover 0..RingDepth plus a tail");

  /// \p NumShards worker shards (clamped to ≥ 1; 0 = hardware concurrency).
  /// With one shard the pipeline degenerates to inline execution on the
  /// caller thread — no worker, no ring. \p TraceBatches additionally
  /// records a BatchSpan per dispatched batch (CRD_METRICS builds only) for
  /// writeChromeTrace(); it is fixed at construction because the shard
  /// workers capture it.
  explicit ParallelDetector(unsigned NumShards = 0,
                            size_t BatchSize = DefaultBatchSize,
                            bool TraceBatches = false);
  ~ParallelDetector();

  ParallelDetector(const ParallelDetector &) = delete;
  ParallelDetector &operator=(const ParallelDetector &) = delete;

  /// Binds the representation used for actions on \p Obj. Quiesces the
  /// pipeline, then applies to every shard.
  void bind(ObjectId Obj, const AccessPointProvider *Provider);

  /// Representation used for objects without an explicit bind().
  void setDefaultProvider(const AccessPointProvider *Provider);

  /// Processes a whole trace through the pipeline and flush()es. May be
  /// called repeatedly; results accumulate, and per-object detector state
  /// carries over between calls exactly as for the sequential detector.
  /// Zero-copy: batches reference the trace's own event storage (the
  /// trace outlives the internal flush).
  void processTrace(const Trace &T);

  /// Streaming feed: stages one event. The action payload is pinned into
  /// batch-owned storage, so \p E need not outlive the call. Results
  /// become visible after the next flush().
  void processEvent(const Event &E);

  /// Batch feed: takes \p B's contents (events, kinds, sync index, pinned
  /// payloads) into the pipeline and hands \p B a recycled empty batch
  /// whose buffers are warm — the zero-copy fast path for
  /// EventSource::nextBatch() loops. \p B must have its sync index
  /// populated (decoder batch path or finalizeSyncIndex()).
  void processBatch(EventBatch &B);

  /// Dispatches all partial batches, waits for every shard to quiesce, and
  /// merges results deterministically. Idempotent; cheap when idle.
  void flush();

  /// Races merged deterministically by event index (complete after
  /// processTrace; for streaming feeds, after flush()).
  const std::vector<CommutativityRace> &races() const { return Races; }

  /// Number of distinct objects participating in at least one race.
  size_t distinctRacyObjects() const { return RacyObjects.size(); }

  /// Phase-1 conflict probes summed over all shards. Requires a quiesced
  /// pipeline (after processTrace or flush).
  size_t conflictChecks() const;

  /// Number of events processed (all kinds, as for the sequential API).
  size_t eventsProcessed() const { return EventsProcessed; }

  /// Active access points summed over all shards; O(#shards). Requires a
  /// quiesced pipeline.
  size_t activePointCount() const;

  /// Reclaims a dead object's state in whichever shard owns it (after
  /// draining that shard's in-flight events).
  void objectDied(ObjectId Obj);

  unsigned shards() const { return static_cast<unsigned>(ShardList.size()); }
  size_t batchSize() const { return BatchSizeVal; }

  /// Action events each shard claimed and executed so far — the
  /// shard-balance statistic (a sound hash keeps the max close to the
  /// mean). Requires a quiesced pipeline.
  std::vector<size_t> shardLoads() const;

  /// Whether batch spans are being recorded (set at construction).
  bool tracingBatches() const { return TraceBatches; }

  /// Full metrics snapshot (docs/observability.md). Requires a quiesced
  /// pipeline — call after processTrace() or flush(). In a CRD_METRICS=OFF
  /// build the structural counts (Events, Actions, per-shard RoutedEvents,
  /// conflict checks) stay live and everything timed reads zero.
  ParallelMetrics metricsSnapshot() const;

private:
  struct Shard;
  struct RunBatch;

  /// Thread → clock-snapshot pointers for one run; nullptr (or
  /// out-of-range) entries are threads the clock machine has not touched,
  /// for which workers synthesize inc_τ(⊥) locally.
  using ClockMap = std::vector<const VectorClock *>;

  unsigned shardOf(ObjectId Obj) const;
  /// Single-shard degeneration: one shard owns every object, so the
  /// run/handoff machinery buys nothing — events are executed synchronously
  /// on the caller thread at sequential-detector cost (sync events run the
  /// clock machine, actions go straight into the engine). Metrics windows
  /// of BatchSize events stand in for dispatched batches so the
  /// observability contract (batch counts, spans partitioning actions)
  /// holds unchanged.
  bool fused() const { return ShardList.size() == 1; }
  void processEventFused(const Event &E, size_t Index);
  /// Fused-mode batched kernel: feeds Evs[0..N) (with their kind bytes)
  /// through the engine's prefetch-pipelined onRun(), one sync-free run at
  /// a time, maintaining the fused run/window accounting across calls.
  /// \p BaseIndex is the global index of Evs[0].
  void processSpanFused(const Event *Evs, const uint8_t *Kinds, size_t N,
                        size_t BaseIndex);
  void closeFusedWindow();
  RunBatch *acquireBatch();
  void sealStaging();
  /// \p Kinds is the batch's kind-byte array (RB->N entries, aligned with
  /// RB->Evs); the pre-pass SIMD-scans it once to publish the batch's
  /// invoke-position index alongside the runs.
  void prepassAndDispatch(RunBatch *RB, const std::vector<uint32_t> &SyncPos,
                          const uint8_t *Kinds);
  void reclaimCompleted();
  void syncShard(Shard &S);
  void mergeResults();

  /// Table 1 clock machine; persists across processTrace calls so split
  /// traces see the same happens-before as one concatenated trace.
  /// Clock snapshots and run maps live in the RunBatch they belong to
  /// (batch-owned storage), so batch recycling reclaims them without any
  /// cross-batch reference tracking.
  VectorClockState VCState;
  /// Pre-pass scratch: threads whose clock changed since the current run
  /// map was materialized (duplicates are harmless).
  std::vector<ThreadId> DirtyThreads;
  /// Fused single-shard mode state: current run length (events since the
  /// last sync event) and the open metrics window.
  uint64_t FusedRunLen = 0;
  size_t FusedWindowEvents = 0;
  uint64_t FusedWindowActions = 0;
  uint64_t FusedWindowBeginNs = 0;
  /// Run-batch pool: stable storage (deque — growth never moves batches),
  /// free list, and the FIFO of batches whose workers may still be
  /// running. Producer-side only. Declared BEFORE ShardList: destruction
  /// runs in reverse, so the shard workers are joined before the batches
  /// they read go away.
  std::deque<RunBatch> BatchStore;
  std::vector<RunBatch *> FreeBatches;
  std::deque<RunBatch *> InFlight;
  uint64_t NextSeq = 0; ///< Global dispatch sequence numbers.
  /// Shard-local pipeline state (persists across processTrace calls).
  std::vector<std::unique_ptr<Shard>> ShardList;
  size_t BatchSizeVal;
  bool TraceBatches = false;
  /// Staging batch for the event-at-a-time feed; sealed into a RunBatch
  /// when full (or at flush). StagingBase is the global index of its
  /// first event.
  EventBatch Staging;
  uint64_t StagingBase = 0;
  /// Scratch for the zero-copy processTrace path: per-window kind bytes
  /// and SIMD-scanned sync positions.
  std::vector<uint8_t> KindScratch;
  std::vector<uint32_t> SyncScratch;
  /// Pre-pass scratch for the combined sync+invoke kind scan, and the
  /// fused path's per-run invoke positions.
  std::vector<uint32_t> CombinedScratch;
  std::vector<uint32_t> InvokeScratch;
  std::vector<CommutativityRace> Races;
  std::unordered_set<ObjectId> RacyObjects;
  size_t EventsProcessed = 0;
  /// Observability state (single writer: the feeding thread; all of it is
  /// inert when CRD_METRICS=0).
  metrics::Counter SyncEventsCtr;
  metrics::Counter PrepassVisitedCtr;
  metrics::Counter ClockSnapshotsCtr;
  metrics::Counter ClockMapsCtr;
  metrics::Counter PrePassNsCtr;
  metrics::Counter FlushWaitNsCtr;
  metrics::Counter MergeNsCtr;
  metrics::Pow2Histogram<16> RunLengths;
  std::vector<BatchSpan> PrePassSpans;
  uint64_t FeedStartNs = 0; ///< nowNs() of the first feed since flush.
};

/// Optional run-level annotation for writeChromeTrace: rendered as one
/// metadata ("M") event carrying named integer counters. Kept to plain
/// strings/integers so this layer stays agnostic of who produces them
/// (crd profile uses it for the --memo decode-cache counters).
struct ChromeTraceAnnotation {
  std::string Name;
  std::vector<std::pair<std::string, uint64_t>> Args;
};

/// Renders a metrics snapshot's batch spans as a Chrome-trace JSON document
/// (chrome://tracing / Perfetto "trace event format": one "X" complete
/// event per span with ts/dur in microseconds, tid = shard). Timestamps are
/// rebased so the earliest enqueue is t=0. Each batch renders as two spans
/// per shard: "queued" (enqueue → worker pickup) and "run" (pickup →
/// completion), plus one "pre-pass" span on a dedicated row showing the
/// producer's sync walk for that batch. \p Annotation, when non-null,
/// is emitted as an extra metadata event.
void writeChromeTrace(std::ostream &OS, const ParallelMetrics &M,
                      const ChromeTraceAnnotation *Annotation = nullptr);

} // namespace crd

#endif // CRD_DETECT_PARALLELDETECTOR_H
