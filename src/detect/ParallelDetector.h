//===- detect/ParallelDetector.h - Object-sharded Algorithm 1 ---*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An object-sharded, pipelined parallelization of Algorithm 1. The key
/// observation (the shard invariant documented in DESIGN.md) is that all of
/// Algorithm 1's mutable state is partitioned per object: phases 1–2 for an
/// event on object o touch only active(o). Only the Table 1 clock machine
/// is inherently sequential. Rather than materializing the whole clock
/// pre-pass and then fanning out behind a barrier, the detector streams:
///
///   1. Clock pre-pass (sequential, caller thread): run VectorClockState
///      event-at-a-time and stamp each action with a shared clock snapshot
///      (consecutive actions of a thread between synchronization events
///      share one physical clock, so the table stores O(#sync) clocks).
///   2. Shard dispatch (pipelined): actions are routed by a mixed hash of
///      their ObjectId into per-shard batches; each full batch is handed to
///      the owning shard's persistent worker through a bounded SPSC ring,
///      so shard work overlaps the pre-pass instead of waiting for it.
///   3. Merge (sequential, deterministic): flush() waits for shard
///      quiescence, then orders the drained per-shard race vectors by event
///      index — bit-identical to the sequential CommutativityRaceDetector.
///
/// Both whole-trace (processTrace) and streaming (processEvent + flush)
/// feeding are supported; the streaming path copies action payloads into
/// shard-owned storage, so callers may discard events immediately.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_DETECT_PARALLELDETECTOR_H
#define CRD_DETECT_PARALLELDETECTOR_H

#include "detect/Algorithm1.h"
#include "hb/VectorClockState.h"
#include "support/Metrics.h"
#include "trace/Trace.h"

#include <array>
#include <deque>
#include <iosfwd>
#include <memory>
#include <vector>

namespace crd {

/// Lifetime of one dispatched shard batch, recorded when the detector is
/// constructed with TraceBatches=true (and the build has CRD_METRICS=1).
/// Rendered as a Chrome-trace timeline by writeChromeTrace().
struct BatchSpan {
  uint32_t Shard = 0;
  uint64_t Seq = 0;       ///< Per-shard batch sequence number (0-based).
  uint64_t Events = 0;    ///< Action refs carried by the batch.
  uint64_t EnqueueNs = 0; ///< Producer pushed the batch into the ring.
  uint64_t BeginNs = 0;   ///< Worker began executing the batch.
  uint64_t EndNs = 0;     ///< Worker finished the batch.
};

/// Per-shard slice of a ParallelDetector metrics snapshot. All counts are
/// zeros in a CRD_METRICS=OFF build except RoutedEvents (the shard-balance
/// statistic, live in every build).
struct ParallelShardMetrics {
  uint64_t RoutedEvents = 0;   ///< Action events routed to this shard.
  uint64_t Batches = 0;        ///< Batches the shard executed.
  uint64_t MergedRaces = 0;    ///< Races this shard contributed at merges.
  uint64_t RingFullStalls = 0; ///< Dispatches that found the ring full.
  uint64_t StallNs = 0;        ///< Producer time blocked on a full ring.
  uint64_t WorkerNs = 0;       ///< Worker time executing batches.
  Algorithm1Stats Engine;      ///< The shard engine's own counters.
  /// Ring occupancy observed at each dispatch: bucket i = i batches were
  /// in flight (the last bucket absorbs the tail; with the blocking push
  /// occupancy never exceeds the ring depth).
  std::array<uint64_t, 10> Occupancy{};
  uint64_t OccupancyMax = 0;
  /// Batch fill at dispatch, in deciles of the configured batch size:
  /// bucket i = fill in [i*10, (i+1)*10)%; bucket 10 = exactly full.
  std::array<uint64_t, 11> FillDeciles{};
};

/// Whole-pipeline metrics snapshot (schema: docs/observability.md). Valid
/// only on a quiesced pipeline — call after processTrace() or flush().
struct ParallelMetrics {
  uint64_t Events = 0;         ///< All events fed (every kind).
  uint64_t Actions = 0;        ///< Invoke events routed to shards.
  uint64_t SyncEvents = 0;     ///< Clock-machine events (fork/join/acq/rel).
  uint64_t ClockSnapshots = 0; ///< Distinct clock snapshots materialized.
  uint64_t PrePassNs = 0;      ///< Feed time: first routeEvent to flush.
  uint64_t FlushWaitNs = 0;    ///< flush() time waiting for shard quiescence.
  uint64_t MergeNs = 0;        ///< flush() time merging race vectors.
  std::vector<ParallelShardMetrics> Shards;
  std::vector<BatchSpan> Spans; ///< Empty unless TraceBatches was set.
};

/// Object-sharded parallel commutativity race detector. Mirrors the
/// sequential CommutativityRaceDetector API for whole-trace processing and
/// produces bit-identical race reports.
class ParallelDetector {
public:
  /// Events per dispatched shard batch: large enough to amortize the ring
  /// handoff, small enough to keep all shards busy while the pre-pass runs.
  static constexpr size_t DefaultBatchSize = 4096;

  /// Ring depth per shard: bounds in-flight batches (and thus pinned clock
  /// snapshots / copied actions) while leaving slack for pre-pass bursts.
  /// Public because the occupancy histogram in ParallelShardMetrics is
  /// sized by it (RingDepth + 2 buckets: 0..RingDepth plus a tail).
  static constexpr size_t RingDepth = 8;
  static_assert(ParallelShardMetrics{}.Occupancy.size() == RingDepth + 2,
                "occupancy histogram must cover 0..RingDepth plus a tail");

  /// \p NumShards worker shards (clamped to ≥ 1; 0 = hardware concurrency).
  /// With one shard the pipeline degenerates to inline execution on the
  /// caller thread — no worker, no ring. \p TraceBatches additionally
  /// records a BatchSpan per dispatched batch (CRD_METRICS builds only) for
  /// writeChromeTrace(); it is fixed at construction because the shard
  /// workers capture it.
  explicit ParallelDetector(unsigned NumShards = 0,
                            size_t BatchSize = DefaultBatchSize,
                            bool TraceBatches = false);
  ~ParallelDetector();

  ParallelDetector(const ParallelDetector &) = delete;
  ParallelDetector &operator=(const ParallelDetector &) = delete;

  /// Binds the representation used for actions on \p Obj. Quiesces the
  /// pipeline, then applies to every shard.
  void bind(ObjectId Obj, const AccessPointProvider *Provider);

  /// Representation used for objects without an explicit bind().
  void setDefaultProvider(const AccessPointProvider *Provider);

  /// Processes a whole trace through the pipeline and flush()es. May be
  /// called repeatedly; results accumulate, and per-object detector state
  /// carries over between calls exactly as for the sequential detector.
  void processTrace(const Trace &T);

  /// Streaming feed: routes one event into the pipeline. The action payload
  /// is copied into shard-owned storage, so \p E need not outlive the call.
  /// Results become visible after the next flush().
  void processEvent(const Event &E);

  /// Dispatches all partial batches, waits for every shard to quiesce, and
  /// merges results deterministically. Idempotent; cheap when idle.
  void flush();

  /// Races merged deterministically by event index (complete after
  /// processTrace; for streaming feeds, after flush()).
  const std::vector<CommutativityRace> &races() const { return Races; }

  /// Number of distinct objects participating in at least one race.
  size_t distinctRacyObjects() const { return RacyObjects.size(); }

  /// Phase-1 conflict probes summed over all shards. Requires a quiesced
  /// pipeline (after processTrace or flush).
  size_t conflictChecks() const;

  /// Number of events processed (all kinds, as for the sequential API).
  size_t eventsProcessed() const { return EventsProcessed; }

  /// Active access points summed over all shards; O(#shards). Requires a
  /// quiesced pipeline.
  size_t activePointCount() const;

  /// Reclaims a dead object's state in whichever shard owns it (after
  /// draining that shard's in-flight events).
  void objectDied(ObjectId Obj);

  unsigned shards() const { return static_cast<unsigned>(ShardList.size()); }
  size_t batchSize() const { return BatchSizeVal; }

  /// Action events routed to each shard so far — the shard-balance
  /// statistic (a sound hash keeps the max close to the mean).
  std::vector<size_t> shardLoads() const;

  /// Whether batch spans are being recorded (set at construction).
  bool tracingBatches() const { return TraceBatches; }

  /// Full metrics snapshot (docs/observability.md). Requires a quiesced
  /// pipeline — call after processTrace() or flush(). In a CRD_METRICS=OFF
  /// build the structural counts (Events, Actions, per-shard RoutedEvents,
  /// conflict checks) stay live and everything timed reads zero.
  ParallelMetrics metricsSnapshot() const;

private:
  struct Shard;

  unsigned shardOf(ObjectId Obj) const;
  void routeEvent(const Event &E, bool OwnAction);
  const VectorClock *clockFor(ThreadId Tid);
  void invalidateClock(ThreadId Tid);
  void dispatch(Shard &S);
  void syncShard(Shard &S);
  void mergeResults();

  /// Table 1 clock machine; persists across processTrace calls so split
  /// traces see the same happens-before as one concatenated trace.
  VectorClockState VCState;
  /// Clock snapshot pool referenced by in-flight batches. A deque so
  /// growth never moves existing snapshots. Flush rewinds ClockTableUsed
  /// instead of clearing, keeping every clock's storage warm for reuse —
  /// steady-state snapshotting is allocation-free.
  std::deque<VectorClock> ClockTable;
  size_t ClockTableUsed = 0;
  /// Per-thread pointer to the thread's current ClockTable snapshot;
  /// nullptr after a synchronization event mutates the thread's clock.
  std::vector<const VectorClock *> ClockCache;
  /// Shard-local pipeline state (persists across processTrace calls).
  std::vector<std::unique_ptr<Shard>> ShardList;
  size_t BatchSizeVal;
  bool TraceBatches = false;
  std::vector<CommutativityRace> Races;
  std::unordered_set<ObjectId> RacyObjects;
  size_t EventsProcessed = 0;
  /// Observability state (single writer: the feeding thread; all of it is
  /// inert when CRD_METRICS=0).
  metrics::Counter SyncEventsCtr;
  metrics::Counter ClockSnapshotsCtr;
  metrics::Counter PrePassNsCtr;
  metrics::Counter FlushWaitNsCtr;
  metrics::Counter MergeNsCtr;
  uint64_t FeedStartNs = 0; ///< nowNs() of the first routeEvent since flush.
};

/// Renders a metrics snapshot's batch spans as a Chrome-trace JSON document
/// (chrome://tracing / Perfetto "trace event format": one "X" complete
/// event per span with ts/dur in microseconds, tid = shard). Timestamps are
/// rebased so the earliest enqueue is t=0. Each batch renders as two spans:
/// "queued" (enqueue → worker pickup) and "run" (pickup → completion).
void writeChromeTrace(std::ostream &OS, const ParallelMetrics &M);

} // namespace crd

#endif // CRD_DETECT_PARALLELDETECTOR_H
