//===- detect/ParallelDetector.h - Object-sharded Algorithm 1 ---*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An offline, object-sharded parallelization of Algorithm 1. The key
/// observation (and the shard invariant documented in DESIGN.md) is that
/// all of Algorithm 1's mutable state is partitioned per object: phases 1–2
/// for an event on object o touch only active(o). Only the Table 1 clock
/// machine is inherently sequential. The pipeline therefore runs in three
/// steps:
///
///   1. Clock pre-pass (sequential): run VectorClockState over the trace
///      once and record, for every action event, a reference to vc(e).
///      Consecutive actions of a thread between synchronization events
///      share one physical clock snapshot, so the table stores O(#sync)
///      clocks, not O(#actions).
///   2. Shard phase (parallel): partition the action events by ObjectId
///      into N shards and run an independent Algorithm1Engine per shard on
///      a std::jthread pool — no locks, no shared mutable state.
///   3. Merge (sequential, deterministic): k-way merge the per-shard race
///      vectors by event index and sum the counters, yielding bit-identical
///      output to the sequential CommutativityRaceDetector.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_DETECT_PARALLELDETECTOR_H
#define CRD_DETECT_PARALLELDETECTOR_H

#include "detect/Algorithm1.h"
#include "hb/VectorClockState.h"
#include "trace/Trace.h"

#include <vector>

namespace crd {

/// Object-sharded parallel commutativity race detector. Mirrors the
/// sequential CommutativityRaceDetector API for whole-trace processing and
/// produces bit-identical race reports.
class ParallelDetector {
public:
  /// \p NumShards worker shards (clamped to ≥ 1). Defaults to the hardware
  /// concurrency.
  explicit ParallelDetector(unsigned NumShards = 0);

  /// Binds the representation used for actions on \p Obj.
  void bind(ObjectId Obj, const AccessPointProvider *Provider) {
    Config.bind(Obj, Provider);
  }

  /// Representation used for objects without an explicit bind().
  void setDefaultProvider(const AccessPointProvider *Provider) {
    Config.setDefaultProvider(Provider);
  }

  /// Processes a whole trace through the three pipeline steps. May be
  /// called repeatedly; results accumulate, and per-object detector state
  /// carries over between calls exactly as for the sequential detector.
  void processTrace(const Trace &T);

  /// Races merged deterministically by event index.
  const std::vector<CommutativityRace> &races() const { return Races; }

  /// Number of distinct objects participating in at least one race.
  size_t distinctRacyObjects() const { return RacyObjects.size(); }

  /// Phase-1 conflict probes summed over all shards.
  size_t conflictChecks() const;

  /// Number of events processed (all kinds, as for the sequential API).
  size_t eventsProcessed() const { return EventsProcessed; }

  /// Active access points summed over all shards; O(#shards).
  size_t activePointCount() const;

  /// Reclaims a dead object's state in whichever shard owns it.
  void objectDied(ObjectId Obj);

  unsigned shards() const { return static_cast<unsigned>(Engines.size()); }

private:
  /// One action event, ready for shard dispatch.
  struct ActionRef {
    size_t EventIndex;
    uint32_t ClockId;
    ThreadId Thread;
    const Action *A;
  };

  unsigned shardOf(ObjectId Obj) const {
    return Obj.index() % static_cast<unsigned>(Engines.size());
  }

  /// Table 1 clock machine; persists across processTrace calls so split
  /// traces see the same happens-before as one concatenated trace.
  VectorClockState VCState;
  /// Shard-local detector state (persists across processTrace calls).
  std::vector<Algorithm1Engine> Engines;
  /// Holds bindings/default provider; replicated into Engines lazily so
  /// bind() calls need not precede construction-time decisions.
  Algorithm1Engine Config;
  std::vector<CommutativityRace> Races;
  std::unordered_set<ObjectId> RacyObjects;
  size_t EventsProcessed = 0;
};

} // namespace crd

#endif // CRD_DETECT_PARALLELDETECTOR_H
