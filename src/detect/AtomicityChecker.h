//===- detect/AtomicityChecker.h - commutativity-aware atomicity -*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generalization the paper sketches in §8: a Velodrome-style dynamic
/// atomicity (conflict-serializability) checker whose notion of conflict
/// is *commutativity over access points* instead of low-level reads and
/// writes.
///
/// Threads demarcate intended-atomic blocks with TxBegin/TxEnd events;
/// every event outside a block forms a unary transaction. The checker
/// builds the transactional happens-before graph with three kinds of
/// edges, all oriented by trace order:
///
///   * program order between consecutive transactions of one thread,
///   * synchronization order (fork/join, lock release → acquire),
///   * conflict order: actions of different transactions whose access
///     points conflict under the object's representation.
///
/// A cycle through a non-unary transaction means the block is not
/// serializable — yet, with commutativity conflicts, interleavings of
/// *commuting* operations (e.g. puts to different keys) do not create
/// edges and therefore do not raise false alarms a read/write-level
/// checker would.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_DETECT_ATOMICITYCHECKER_H
#define CRD_DETECT_ATOMICITYCHECKER_H

#include "access/Provider.h"
#include "trace/Trace.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace crd {

/// One conflict-serializability violation.
struct AtomicityViolation {
  ThreadId Thread;          ///< Thread of the unserializable block.
  size_t BeginEvent = 0;    ///< Index of the block's TxBegin (or first event).
  size_t EndEvent = 0;      ///< Index of the block's TxEnd (or last event).
  std::vector<size_t> CycleEvents; ///< One conflicting event per cycle edge.

  std::string toString() const;
};

/// Offline conflict-serializability checker over commutativity conflicts.
class AtomicityChecker {
public:
  AtomicityChecker() = default;

  /// Binds the access point representation for an object (shared with the
  /// race detector).
  void bind(ObjectId Obj, const AccessPointProvider *Provider);
  void setDefaultProvider(const AccessPointProvider *Provider) {
    DefaultProvider = Provider;
  }

  /// When enabled, low-level Read/Write events also induce conflict edges
  /// (two accesses to the same location, at least one write) — the
  /// classic Velodrome conflict relation. Off by default: the paper's
  /// point is precisely that commutativity conflicts avoid the false
  /// alarms this mode produces on commuting library operations.
  void setIncludeMemoryConflicts(bool Enable) {
    IncludeMemoryConflicts = Enable;
  }

  /// Analyzes a whole trace; returns the violations found (at most one per
  /// transactional block). Quadratic in the number of events — intended
  /// for recorded traces, not for online use.
  std::vector<AtomicityViolation> check(const Trace &T);

private:
  const AccessPointProvider *providerFor(ObjectId Obj) const;

  std::unordered_map<ObjectId, const AccessPointProvider *> Providers;
  const AccessPointProvider *DefaultProvider = nullptr;
  bool IncludeMemoryConflicts = false;
};

std::ostream &operator<<(std::ostream &OS, const AtomicityViolation &V);

} // namespace crd

#endif // CRD_DETECT_ATOMICITYCHECKER_H
