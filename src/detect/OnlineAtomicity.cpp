//===- detect/OnlineAtomicity.cpp - streaming atomicity checking ---------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "detect/OnlineAtomicity.h"

#include <cassert>

using namespace crd;

void OnlineAtomicityChecker::bind(ObjectId Obj,
                                  const AccessPointProvider *Provider) {
  assert(Provider && "null provider");
  Providers[Obj] = Provider;
}

const AccessPointProvider *
OnlineAtomicityChecker::providerFor(ObjectId Obj) const {
  auto It = Providers.find(Obj);
  if (It != Providers.end())
    return It->second;
  assert(DefaultProvider && "object has no bound access point provider");
  return DefaultProvider;
}

OnlineAtomicityChecker::ThreadState &
OnlineAtomicityChecker::stateOf(ThreadId Thread) {
  return Threads[Thread.index()];
}

uint32_t OnlineAtomicityChecker::makeNode(ThreadId Thread, bool Atomic) {
  uint32_t Node = Graph.addNode();
  assert(Node == Nodes.size() && "graph/node table out of sync");
  Nodes.push_back({Thread, Atomic, EventIndex, EventIndex});

  ThreadState &State = stateOf(Thread);
  if (State.LastNode >= 0)
    addEdgeChecked(static_cast<uint32_t>(State.LastNode), Node);
  for (uint32_t Source : State.PendingIncoming)
    addEdgeChecked(Source, Node);
  State.PendingIncoming.clear();
  State.LastNode = Node;
  return Node;
}

uint32_t OnlineAtomicityChecker::nodeForWork(ThreadId Thread) {
  ThreadState &State = stateOf(Thread);
  if (State.OpenBlock >= 0) {
    uint32_t Node = static_cast<uint32_t>(State.OpenBlock);
    Nodes[Node].EndEvent = EventIndex;
    return Node;
  }
  return makeNode(Thread, /*Atomic=*/false);
}

void OnlineAtomicityChecker::edgeIntoThread(int64_t Source, ThreadId Thread) {
  if (Source < 0)
    return;
  ThreadState &State = stateOf(Thread);
  if (State.OpenBlock >= 0) {
    addEdgeChecked(static_cast<uint32_t>(Source),
                   static_cast<uint32_t>(State.OpenBlock));
    return;
  }
  State.PendingIncoming.push_back(static_cast<uint32_t>(Source));
}

void OnlineAtomicityChecker::addEdgeChecked(uint32_t From, uint32_t To) {
  if (From == To)
    return;
  DynamicTopoGraph::InsertResult Result = Graph.addEdge(From, To);
  if (Result.Inserted)
    return;
  // The edge would close a cycle To -> ... -> From (-> To). Report every
  // atomic block on it, once per block, and drop the edge (as a monitor
  // aborting the offending transaction would).
  for (uint32_t Node : Result.CyclePath) {
    if (!Nodes[Node].Atomic || !FlaggedBlocks.insert(Node).second)
      continue;
    AtomicityViolation V;
    V.Thread = Nodes[Node].Thread;
    V.BeginEvent = Nodes[Node].BeginEvent;
    V.EndEvent = Nodes[Node].EndEvent;
    for (uint32_t P : Result.CyclePath)
      V.CycleEvents.push_back(Nodes[P].BeginEvent);
    Violations.push_back(std::move(V));
  }
}

void OnlineAtomicityChecker::handleInvoke(const Event &E) {
  const Action &A = E.action();
  const AccessPointProvider &Provider = *providerFor(A.object());
  uint32_t Node = nodeForWork(E.thread());

  Scratch.clear();
  Provider.touches(A, Scratch);
  auto &ObjectTouchers = Touchers[A.object()];

  // Conflict edges from every prior toucher of a conflicting point.
  for (const AccessPoint &Pt : Scratch) {
    bool PtSelfConflicts = false;
    {
      const std::vector<uint32_t> &Own = Provider.conflictsOf(Pt.ClassId);
      PtSelfConflicts =
          std::find(Own.begin(), Own.end(), Pt.ClassId) != Own.end();
    }
    for (uint32_t Partner : Provider.conflictsOf(Pt.ClassId)) {
      AccessPoint Key = Provider.classCarriesValue(Partner)
                            ? AccessPoint::withValue(Partner, Pt.Val)
                            : AccessPoint::plain(Partner);
      auto It = ObjectTouchers.find(Key);
      if (It == ObjectTouchers.end())
        continue;
      for (uint32_t Prior : It->second)
        addEdgeChecked(Prior, Node);
      // Velodrome-style consumption (the read-set clearing rule): once
      // every toucher of Key is ordered before this node, the list may be
      // dropped iff (a) this node's class is Key's only conflict partner,
      // so future conflicts with Key's class route through nodes of this
      // class, and (b) this class self-conflicts, so those future nodes
      // are reachable from this one through the conflict chain.
      const std::vector<uint32_t> &PartnerRow = Provider.conflictsOf(Partner);
      if (PtSelfConflicts && PartnerRow.size() == 1 &&
          PartnerRow[0] == Pt.ClassId)
        It->second.clear();
    }
  }

  // Record this node as a toucher of every point. Self-conflicting
  // classes keep only the latest toucher (the chain of conflict edges
  // makes earlier ones transitive).
  for (const AccessPoint &Pt : Scratch) {
    std::vector<uint32_t> &List = ObjectTouchers[Pt];
    const std::vector<uint32_t> &Partners = Provider.conflictsOf(Pt.ClassId);
    bool SelfConflicting =
        std::find(Partners.begin(), Partners.end(), Pt.ClassId) !=
        Partners.end();
    if (SelfConflicting)
      List.assign(1, Node);
    else if (List.empty() || List.back() != Node)
      List.push_back(Node);
  }
}

void OnlineAtomicityChecker::process(const Event &E) {
  switch (E.kind()) {
  case EventKind::TxBegin: {
    ThreadState &State = stateOf(E.thread());
    assert(State.OpenBlock < 0 && "nested atomic block");
    State.OpenBlock = makeNode(E.thread(), /*Atomic=*/true);
    break;
  }
  case EventKind::TxEnd: {
    ThreadState &State = stateOf(E.thread());
    assert(State.OpenBlock >= 0 && "txend without open block");
    Nodes[static_cast<uint32_t>(State.OpenBlock)].EndEvent = EventIndex;
    State.OpenBlock = -1;
    break;
  }
  case EventKind::Fork: {
    // The parent's most recent node precedes everything the child does.
    ThreadState &Parent = stateOf(E.thread());
    if (Parent.LastNode >= 0)
      edgeIntoThread(Parent.LastNode, E.other());
    break;
  }
  case EventKind::Join: {
    ThreadState &Child = stateOf(E.other());
    edgeIntoThread(Child.LastNode, E.thread());
    break;
  }
  case EventKind::Acquire: {
    auto It = LastReleaseNode.find(E.lock().index());
    if (It != LastReleaseNode.end())
      edgeIntoThread(It->second, E.thread());
    break;
  }
  case EventKind::Release: {
    LastReleaseNode[E.lock().index()] = stateOf(E.thread()).LastNode;
    break;
  }
  case EventKind::Invoke:
    handleInvoke(E);
    break;
  case EventKind::Read:
  case EventKind::Write:
    break;
  }
  ++EventIndex;
}

void OnlineAtomicityChecker::processTrace(const Trace &T) {
  for (const Event &E : T)
    process(E);
}
