//===- spec/SpecParser.cpp - ECL specification language parser --------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "spec/SpecParser.h"

#include "support/CharCursor.h"

#include <cassert>
#include <cctype>
#include <charconv>
#include <map>

using namespace crd;

namespace {

enum class TokKind {
  Eof,
  Ident,
  Integer,
  String,
  // Keywords.
  KwObject,
  KwMethod,
  KwCommute,
  KwTrue,
  KwFalse,
  KwNil,
  // Punctuation and operators.
  LBrace,
  RBrace,
  LParen,
  RParen,
  Comma,
  Colon,
  Semi,
  Slash,
  Bang,
  AmpAmp,
  PipePipe,
  EqEq,
  BangEq,
  Lt,
  Le,
  Gt,
  Ge,
  Underscore,
  Error,
};

const char *tokName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Ident:
    return "identifier";
  case TokKind::Integer:
    return "integer";
  case TokKind::String:
    return "string";
  case TokKind::KwObject:
    return "'object'";
  case TokKind::KwMethod:
    return "'method'";
  case TokKind::KwCommute:
    return "'commute'";
  case TokKind::KwTrue:
    return "'true'";
  case TokKind::KwFalse:
    return "'false'";
  case TokKind::KwNil:
    return "'nil'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::Comma:
    return "','";
  case TokKind::Colon:
    return "':'";
  case TokKind::Semi:
    return "';'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::PipePipe:
    return "'||'";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::BangEq:
    return "'!='";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Ge:
    return "'>='";
  case TokKind::Underscore:
    return "'_'";
  case TokKind::Error:
    return "invalid token";
  }
  return "token";
}

struct Token {
  TokKind Kind = TokKind::Eof;
  SourceLocation Loc;
  std::string_view Text;
  int64_t IntValue = 0;
  std::string StrValue;
};

class SpecLexer {
public:
  SpecLexer(std::string_view Text, DiagnosticEngine &Diags)
      : Cursor(Text), Diags(Diags) {}

  Token next() {
    skipSpaceAndComments();
    Token Tok;
    Tok.Loc = Cursor.location();
    if (Cursor.atEnd())
      return Tok;

    char C = Cursor.peek();
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
      return lexIdentOrKeyword();
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '-' &&
         std::isdigit(static_cast<unsigned char>(Cursor.peekNext()))))
      return lexInteger();
    if (C == '"')
      return lexString();

    Cursor.advance();
    switch (C) {
    case '{':
      Tok.Kind = TokKind::LBrace;
      return Tok;
    case '}':
      Tok.Kind = TokKind::RBrace;
      return Tok;
    case '(':
      Tok.Kind = TokKind::LParen;
      return Tok;
    case ')':
      Tok.Kind = TokKind::RParen;
      return Tok;
    case ',':
      Tok.Kind = TokKind::Comma;
      return Tok;
    case ':':
      Tok.Kind = TokKind::Colon;
      return Tok;
    case ';':
      Tok.Kind = TokKind::Semi;
      return Tok;
    case '/':
      Tok.Kind = TokKind::Slash;
      return Tok;
    case '!':
      Tok.Kind = Cursor.consume('=') ? TokKind::BangEq : TokKind::Bang;
      return Tok;
    case '&':
      if (Cursor.consume('&')) {
        Tok.Kind = TokKind::AmpAmp;
        return Tok;
      }
      Diags.error(Tok.Loc, "expected '&&'");
      Tok.Kind = TokKind::Error;
      return Tok;
    case '|':
      if (Cursor.consume('|')) {
        Tok.Kind = TokKind::PipePipe;
        return Tok;
      }
      Diags.error(Tok.Loc, "expected '||'");
      Tok.Kind = TokKind::Error;
      return Tok;
    case '=':
      if (Cursor.consume('=')) {
        Tok.Kind = TokKind::EqEq;
        return Tok;
      }
      Diags.error(Tok.Loc, "expected '==' (the language has no assignment)");
      Tok.Kind = TokKind::Error;
      return Tok;
    case '<':
      Tok.Kind = Cursor.consume('=') ? TokKind::Le : TokKind::Lt;
      return Tok;
    case '>':
      Tok.Kind = Cursor.consume('=') ? TokKind::Ge : TokKind::Gt;
      return Tok;
    default:
      Diags.error(Tok.Loc, std::string("unexpected character '") + C + "'");
      Tok.Kind = TokKind::Error;
      return Tok;
    }
  }

private:
  void skipSpaceAndComments() {
    while (!Cursor.atEnd()) {
      char C = Cursor.peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        Cursor.advance();
        continue;
      }
      if (C == '#' || (C == '/' && Cursor.peekNext() == '/')) {
        while (!Cursor.atEnd() && Cursor.peek() != '\n')
          Cursor.advance();
        continue;
      }
      break;
    }
  }

  Token lexIdentOrKeyword() {
    Token Tok;
    Tok.Loc = Cursor.location();
    size_t Begin = Cursor.offset();
    while (!Cursor.atEnd()) {
      char C = Cursor.peek();
      if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_')
        break;
      Cursor.advance();
    }
    Tok.Text = Cursor.slice(Begin, Cursor.offset());
    if (Tok.Text == "object")
      Tok.Kind = TokKind::KwObject;
    else if (Tok.Text == "method")
      Tok.Kind = TokKind::KwMethod;
    else if (Tok.Text == "commute")
      Tok.Kind = TokKind::KwCommute;
    else if (Tok.Text == "true")
      Tok.Kind = TokKind::KwTrue;
    else if (Tok.Text == "false")
      Tok.Kind = TokKind::KwFalse;
    else if (Tok.Text == "nil")
      Tok.Kind = TokKind::KwNil;
    else if (Tok.Text == "_")
      Tok.Kind = TokKind::Underscore;
    else
      Tok.Kind = TokKind::Ident;
    return Tok;
  }

  Token lexInteger() {
    Token Tok;
    Tok.Loc = Cursor.location();
    size_t Begin = Cursor.offset();
    if (Cursor.peek() == '-')
      Cursor.advance();
    while (std::isdigit(static_cast<unsigned char>(Cursor.peek())))
      Cursor.advance();
    std::string_view Text = Cursor.slice(Begin, Cursor.offset());
    Tok.Kind = TokKind::Integer;
    auto [Ptr, Ec] =
        std::from_chars(Text.data(), Text.data() + Text.size(), Tok.IntValue);
    if (Ec != std::errc() || Ptr != Text.data() + Text.size()) {
      Diags.error(Tok.Loc, "integer literal out of range");
      Tok.Kind = TokKind::Error;
    }
    return Tok;
  }

  Token lexString() {
    Token Tok;
    Tok.Loc = Cursor.location();
    Cursor.advance(); // Opening quote.
    std::string Out;
    while (true) {
      if (Cursor.atEnd() || Cursor.peek() == '\n') {
        Diags.error(Tok.Loc, "unterminated string literal");
        Tok.Kind = TokKind::Error;
        return Tok;
      }
      char C = Cursor.advance();
      if (C == '"')
        break;
      if (C == '\\') {
        char Esc = Cursor.advance();
        switch (Esc) {
        case 'n':
          Out.push_back('\n');
          break;
        case 't':
          Out.push_back('\t');
          break;
        case '"':
        case '\\':
          Out.push_back(Esc);
          break;
        default:
          Diags.error(Cursor.location(),
                      std::string("unknown escape sequence '\\") + Esc + "'");
          break;
        }
        continue;
      }
      Out.push_back(C);
    }
    Tok.Kind = TokKind::String;
    Tok.StrValue = std::move(Out);
    return Tok;
  }

  CharCursor Cursor;
  DiagnosticEngine &Diags;
};

/// Variable environment of one commute clause: name -> (side, position).
struct VarEnv {
  std::map<std::string, std::pair<Side, uint32_t>, std::less<>> Vars;
};

class SpecParser {
public:
  SpecParser(std::string_view Text, DiagnosticEngine &Diags)
      : Lexer(Text, Diags), Diags(Diags) {
    Tok = Lexer.next();
  }

  std::vector<ObjectSpec> run() {
    std::vector<ObjectSpec> Objects;
    while (Tok.Kind != TokKind::Eof) {
      if (Tok.Kind != TokKind::KwObject) {
        Diags.error(Tok.Loc, std::string("expected 'object', found ") +
                                 tokName(Tok.Kind));
        skipPast(TokKind::RBrace);
        continue;
      }
      if (auto Obj = parseObject())
        Objects.push_back(std::move(*Obj));
    }
    return Objects;
  }

private:
  void consume() { Tok = Lexer.next(); }

  bool expect(TokKind Kind) {
    if (Tok.Kind == Kind) {
      consume();
      return true;
    }
    Diags.error(Tok.Loc, std::string("expected ") + tokName(Kind) +
                             ", found " + tokName(Tok.Kind));
    return false;
  }

  void skipPast(TokKind Kind) {
    while (Tok.Kind != TokKind::Eof) {
      bool Done = Tok.Kind == Kind;
      consume();
      if (Done)
        return;
    }
  }

  std::optional<ObjectSpec> parseObject() {
    assert(Tok.Kind == TokKind::KwObject);
    consume();
    if (Tok.Kind != TokKind::Ident) {
      Diags.error(Tok.Loc, "expected object name");
      skipPast(TokKind::RBrace);
      return std::nullopt;
    }
    ObjectSpec Spec(std::string(Tok.Text));
    consume();
    if (!expect(TokKind::LBrace)) {
      skipPast(TokKind::RBrace);
      return std::nullopt;
    }

    while (Tok.Kind != TokKind::RBrace && Tok.Kind != TokKind::Eof) {
      if (Tok.Kind == TokKind::KwMethod) {
        if (!parseMethod(Spec))
          skipPast(TokKind::Semi);
      } else if (Tok.Kind == TokKind::KwCommute) {
        if (!parseCommute(Spec))
          skipPast(TokKind::Semi);
      } else {
        Diags.error(Tok.Loc,
                    std::string("expected 'method' or 'commute', found ") +
                        tokName(Tok.Kind));
        skipPast(TokKind::Semi);
      }
    }
    expect(TokKind::RBrace);
    return Spec;
  }

  bool parseMethod(ObjectSpec &Spec) {
    assert(Tok.Kind == TokKind::KwMethod);
    consume();
    if (Tok.Kind != TokKind::Ident) {
      Diags.error(Tok.Loc, "expected method name");
      return false;
    }
    SourceLocation NameLoc = Tok.Loc;
    std::string Name(Tok.Text);
    consume();
    if (!expect(TokKind::LParen))
      return false;

    uint32_t NumArgs = 0;
    if (Tok.Kind != TokKind::RParen) {
      do {
        if (Tok.Kind != TokKind::Ident && Tok.Kind != TokKind::Underscore) {
          Diags.error(Tok.Loc, "expected parameter name");
          return false;
        }
        ++NumArgs;
        consume();
      } while (Tok.Kind == TokKind::Comma && (consume(), true));
    }
    if (!expect(TokKind::RParen))
      return false;

    uint32_t NumRets = 0;
    while (Tok.Kind == TokKind::Slash) {
      consume();
      if (Tok.Kind != TokKind::Ident && Tok.Kind != TokKind::Underscore) {
        Diags.error(Tok.Loc, "expected return value name after '/'");
        return false;
      }
      ++NumRets;
      consume();
    }
    if (!expect(TokKind::Semi))
      return false;

    if (Spec.methodIndex(symbol(Name))) {
      Diags.error(NameLoc, "method '" + Name + "' is declared twice");
      return false;
    }
    Spec.addMethod({symbol(Name), NumArgs, NumRets});
    return true;
  }

  /// Parses one invocation pattern `name(v1, v2)/r1`, binding its variable
  /// names into \p Env with the given \p S side. Returns the method index.
  std::optional<uint32_t> parseInvocationPattern(ObjectSpec &Spec, Side S,
                                                 VarEnv &Env) {
    if (Tok.Kind != TokKind::Ident) {
      Diags.error(Tok.Loc, "expected method name in commute clause");
      return std::nullopt;
    }
    SourceLocation NameLoc = Tok.Loc;
    std::string Name(Tok.Text);
    consume();
    auto MethodIdx = Spec.methodIndex(symbol(Name));
    if (!MethodIdx) {
      Diags.error(NameLoc, "unknown method '" + Name +
                               "'; declare it with 'method' first");
      return std::nullopt;
    }
    const MethodSig &Sig = Spec.method(*MethodIdx);

    if (!expect(TokKind::LParen))
      return std::nullopt;
    uint32_t Position = 0;
    if (Tok.Kind != TokKind::RParen) {
      do {
        if (!bindPatternVar(S, Position, Env))
          return std::nullopt;
        ++Position;
      } while (Tok.Kind == TokKind::Comma && (consume(), true));
    }
    if (Position != Sig.NumArgs) {
      Diags.error(NameLoc, "method '" + Name + "' takes " +
                               std::to_string(Sig.NumArgs) +
                               " argument(s) but the pattern names " +
                               std::to_string(Position));
      return std::nullopt;
    }
    if (!expect(TokKind::RParen))
      return std::nullopt;

    uint32_t Rets = 0;
    while (Tok.Kind == TokKind::Slash) {
      consume();
      if (!bindPatternVar(S, Position, Env))
        return std::nullopt;
      ++Position;
      ++Rets;
    }
    if (Rets != Sig.NumRets) {
      Diags.error(NameLoc, "method '" + Name + "' has " +
                               std::to_string(Sig.NumRets) +
                               " return value(s) but the pattern names " +
                               std::to_string(Rets));
      return std::nullopt;
    }
    return MethodIdx;
  }

  bool bindPatternVar(Side S, uint32_t Position, VarEnv &Env) {
    if (Tok.Kind == TokKind::Underscore) {
      consume();
      return true;
    }
    if (Tok.Kind != TokKind::Ident) {
      Diags.error(Tok.Loc, "expected variable name or '_'");
      return false;
    }
    std::string Name(Tok.Text);
    if (!Env.Vars.emplace(Name, std::make_pair(S, Position)).second) {
      Diags.error(Tok.Loc, "variable '" + Name +
                               "' is bound twice in this commute clause");
      return false;
    }
    consume();
    return true;
  }

  bool parseCommute(ObjectSpec &Spec) {
    assert(Tok.Kind == TokKind::KwCommute);
    SourceLocation ClauseLoc = Tok.Loc;
    consume();

    // `commute default : true|false;` sets the fallback for pairs without
    // an explicit clause.
    if (Tok.Kind == TokKind::Ident && Tok.Text == "default") {
      consume();
      if (!expect(TokKind::Colon))
        return false;
      bool Commutes;
      if (Tok.Kind == TokKind::KwTrue)
        Commutes = true;
      else if (Tok.Kind == TokKind::KwFalse)
        Commutes = false;
      else {
        Diags.error(Tok.Loc, "expected 'true' or 'false' after "
                             "'commute default :'");
        return false;
      }
      consume();
      if (!expect(TokKind::Semi))
        return false;
      if (Spec.defaultCommutes()) {
        Diags.error(ClauseLoc, "'commute default' is specified twice");
        return false;
      }
      Spec.setDefaultCommutes(Commutes);
      return true;
    }

    VarEnv Env;
    auto First = parseInvocationPattern(Spec, Side::First, Env);
    if (!First)
      return false;
    if (!expect(TokKind::Comma))
      return false;
    auto Second = parseInvocationPattern(Spec, Side::Second, Env);
    if (!Second)
      return false;
    if (!expect(TokKind::Colon))
      return false;

    FormulaPtr F = parseFormula(Env);
    if (!F)
      return false;
    if (!expect(TokKind::Semi))
      return false;

    if (Spec.commutesFormula(*First, *Second)) {
      Diags.error(ClauseLoc, "commutativity of this method pair is "
                             "specified twice");
      return false;
    }
    Spec.setCommutes(*First, *Second, std::move(F));
    return true;
  }

  // formula := conj ('||' conj)*
  FormulaPtr parseFormula(const VarEnv &Env) {
    FormulaPtr Lhs = parseConj(Env);
    if (!Lhs)
      return nullptr;
    while (Tok.Kind == TokKind::PipePipe) {
      consume();
      FormulaPtr Rhs = parseConj(Env);
      if (!Rhs)
        return nullptr;
      Lhs = Formula::orOf(std::move(Lhs), std::move(Rhs));
    }
    return Lhs;
  }

  // conj := unary ('&&' unary)*
  FormulaPtr parseConj(const VarEnv &Env) {
    FormulaPtr Lhs = parseUnary(Env);
    if (!Lhs)
      return nullptr;
    while (Tok.Kind == TokKind::AmpAmp) {
      consume();
      FormulaPtr Rhs = parseUnary(Env);
      if (!Rhs)
        return nullptr;
      Lhs = Formula::andOf(std::move(Lhs), std::move(Rhs));
    }
    return Lhs;
  }

  // unary := '!' unary | primary
  FormulaPtr parseUnary(const VarEnv &Env) {
    if (Tok.Kind == TokKind::Bang) {
      consume();
      FormulaPtr Inner = parseUnary(Env);
      if (!Inner)
        return nullptr;
      return Formula::notOf(std::move(Inner));
    }
    return parsePrimary(Env);
  }

  // primary := '(' formula ')' | term (relop term)?
  // A bare 'true'/'false' term is the constant formula.
  FormulaPtr parsePrimary(const VarEnv &Env) {
    if (Tok.Kind == TokKind::LParen) {
      consume();
      FormulaPtr Inner = parseFormula(Env);
      if (!Inner)
        return nullptr;
      if (!expect(TokKind::RParen))
        return nullptr;
      return Inner;
    }

    SourceLocation TermLoc = Tok.Loc;
    bool WasBoolKeyword =
        Tok.Kind == TokKind::KwTrue || Tok.Kind == TokKind::KwFalse;
    bool WasTrue = Tok.Kind == TokKind::KwTrue;
    auto Lhs = parseTerm(Env);
    if (!Lhs)
      return nullptr;

    std::optional<PredKind> Pred = parseRelop();
    if (!Pred) {
      if (WasBoolKeyword)
        return Formula::truth(WasTrue);
      Diags.error(TermLoc, "expected comparison operator after term");
      return nullptr;
    }
    auto Rhs = parseTerm(Env);
    if (!Rhs)
      return nullptr;
    return Formula::atom(*Pred, *Lhs, *Rhs);
  }

  std::optional<PredKind> parseRelop() {
    PredKind P;
    switch (Tok.Kind) {
    case TokKind::EqEq:
      P = PredKind::Eq;
      break;
    case TokKind::BangEq:
      P = PredKind::Ne;
      break;
    case TokKind::Lt:
      P = PredKind::Lt;
      break;
    case TokKind::Le:
      P = PredKind::Le;
      break;
    case TokKind::Gt:
      P = PredKind::Gt;
      break;
    case TokKind::Ge:
      P = PredKind::Ge;
      break;
    default:
      return std::nullopt;
    }
    consume();
    return P;
  }

  std::optional<Term> parseTerm(const VarEnv &Env) {
    switch (Tok.Kind) {
    case TokKind::Integer: {
      Term T = Term::constant(Value::integer(Tok.IntValue));
      consume();
      return T;
    }
    case TokKind::String: {
      Term T = Term::constant(Value::string(Tok.StrValue));
      consume();
      return T;
    }
    case TokKind::KwNil:
      consume();
      return Term::constant(Value::nil());
    case TokKind::KwTrue:
      consume();
      return Term::constant(Value::boolean(true));
    case TokKind::KwFalse:
      consume();
      return Term::constant(Value::boolean(false));
    case TokKind::Ident: {
      auto It = Env.Vars.find(Tok.Text);
      if (It == Env.Vars.end()) {
        Diags.error(Tok.Loc, "unknown variable '" + std::string(Tok.Text) +
                                 "'; variables must be named in the commute "
                                 "clause's invocation patterns");
        return std::nullopt;
      }
      Term T = Term::var(It->second.first, It->second.second);
      consume();
      return T;
    }
    default:
      Diags.error(Tok.Loc, std::string("expected term, found ") +
                               tokName(Tok.Kind));
      return std::nullopt;
    }
  }

  SpecLexer Lexer;
  DiagnosticEngine &Diags;
  Token Tok;
};

} // namespace

std::optional<std::vector<ObjectSpec>>
crd::parseSpecs(std::string_view Text, DiagnosticEngine &Diags) {
  SpecParser Parser(Text, Diags);
  std::vector<ObjectSpec> Objects = Parser.run();
  if (Diags.hasErrors())
    return std::nullopt;
  return Objects;
}

std::optional<ObjectSpec> crd::parseObjectSpec(std::string_view Text,
                                               DiagnosticEngine &Diags) {
  auto Objects = parseSpecs(Text, Diags);
  if (!Objects)
    return std::nullopt;
  if (Objects->size() != 1) {
    Diags.error({}, "expected exactly one object specification, found " +
                        std::to_string(Objects->size()));
    return std::nullopt;
  }
  return std::move(Objects->front());
}
