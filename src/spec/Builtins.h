//===- spec/Builtins.h - Builtin commutativity specifications ---*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ready-made ECL commutativity specifications for common abstract data
/// types. dictionarySpec() is exactly Fig 6 of the paper; the others follow
/// the same style (the paper names sets as a motivating example ECL covers
/// but SIMPLE does not).
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SPEC_BUILTINS_H
#define CRD_SPEC_BUILTINS_H

#include "spec/Spec.h"

namespace crd {

/// The dictionary (map) specification of paper Fig 6.
///
/// Methods (flattened variable positions in parentheses):
///   put(k, v)/p   (k=0, v=1, p=2)
///   get(k)/v      (k=0, v=1)
///   size()/r      (r=0)
///
/// Formulas:
///   ϕ(put,put)  = k1 ≠ k2 ∨ (v1 = p1 ∧ v2 = p2)
///   ϕ(put,get)  = k1 ≠ k2 ∨ v1 = p1
///   ϕ(put,size) = (v1 = nil ∧ p1 = nil) ∨ (v1 ≠ nil ∧ p1 ≠ nil)
///   ϕ(get,get) = ϕ(get,size) = ϕ(size,size) = true
const ObjectSpec &dictionarySpec();

/// A set with add(k)/changed, remove(k)/changed, contains(k)/present,
/// size()/n. The changed/present returns expose the hidden state needed to
/// phrase commutativity in ECL ("shadow return values", paper §4.1).
const ObjectSpec &setSpec();

/// A counter with inc(), dec() (no returns) and read()/v. Increments
/// commute with each other but not with reads.
const ObjectSpec &counterSpec();

/// A single-cell register with write(v)/prev and read()/v. Writes commute
/// only when both are no-ops (v = prev) — note "v1 = v2" would NOT be
/// expressible in ECL (cross-side equality), which is why the specification
/// uses the shadow return.
const ObjectSpec &registerSpec();

/// A FIFO queue with enq(v)/wasEmpty and deq()/v/ok (ok=false means the
/// queue was empty and v is nil). Two enqueues never commute (they fix the
/// order); dequeues commute only when both failed; an enqueue commutes
/// with a *successful* dequeue on a non-singleton queue — approximated
/// soundly in ECL by requiring the enqueue to have hit a non-empty queue
/// (wasEmpty = false) and the dequeue to have succeeded.
const ObjectSpec &queueSpec();

} // namespace crd

#endif // CRD_SPEC_BUILTINS_H
