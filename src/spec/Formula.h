//===- spec/Formula.h - Commutativity formulas (paper §4.1, §6.1) -*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The formula language in which commutativity conditions ϕ^m1_m2(~x1; ~x2)
/// are written. Formulas are immutable trees shared via FormulaPtr. Atomic
/// formulas compare two terms; a term is either a constant or a variable
/// reference (side, position), where side selects the first or second
/// invocation (the paper's variable supplies V1 and V2) and position indexes
/// the invocation's flattened argument/return tuple ~u~v.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SPEC_FORMULA_H
#define CRD_SPEC_FORMULA_H

#include "support/Value.h"

#include <cassert>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace crd {

/// Selects which invocation a variable belongs to (V1 or V2 of §6.1).
enum class Side : uint8_t { First, Second };

/// Flips First <-> Second.
inline Side flip(Side S) {
  return S == Side::First ? Side::Second : Side::First;
}

/// A term: a variable x_pos from one side, or a constant value.
class Term {
public:
  static Term var(Side S, uint32_t Position) {
    Term T;
    T.IsVar = true;
    T.TheSide = S;
    T.Position = Position;
    return T;
  }
  static Term constant(Value V) {
    Term T;
    T.IsVar = false;
    T.Const = V;
    return T;
  }

  bool isVar() const { return IsVar; }
  Side side() const {
    assert(IsVar && "constant term has no side");
    return TheSide;
  }
  uint32_t position() const {
    assert(IsVar && "constant term has no position");
    return Position;
  }
  const Value &constant() const {
    assert(!IsVar && "variable term has no constant value");
    return Const;
  }

  /// Evaluates against the flattened value tuples of both invocations.
  const Value &eval(std::span<const Value> First,
                    std::span<const Value> Second) const {
    if (!IsVar)
      return Const;
    std::span<const Value> Tuple = TheSide == Side::First ? First : Second;
    assert(Position < Tuple.size() && "variable position out of range");
    return Tuple[Position];
  }

  /// Returns the term with sides exchanged (constants unchanged).
  Term swapped() const {
    return IsVar ? var(flip(TheSide), Position) : *this;
  }

  friend bool operator==(const Term &A, const Term &B) {
    if (A.IsVar != B.IsVar)
      return false;
    if (A.IsVar)
      return A.TheSide == B.TheSide && A.Position == B.Position;
    return A.Const == B.Const;
  }
  friend bool operator!=(const Term &A, const Term &B) { return !(A == B); }

  /// Deterministic total order for canonicalization.
  friend bool operator<(const Term &A, const Term &B) {
    if (A.IsVar != B.IsVar)
      return A.IsVar < B.IsVar;
    if (A.IsVar) {
      if (A.TheSide != B.TheSide)
        return A.TheSide < B.TheSide;
      return A.Position < B.Position;
    }
    return A.Const < B.Const;
  }

private:
  Term() : IsVar(false) {}

  bool IsVar;
  Side TheSide = Side::First;
  uint32_t Position = 0;
  Value Const;
};

/// Binary comparison predicates available in atomic formulas.
///
/// Eq/Ne use structural value equality. The ordered predicates use the
/// deterministic total order on Value (by kind, then payload), which on
/// integers is numeric order; this keeps negation involutive.
enum class PredKind : uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

/// Negates a predicate (Eq<->Ne, Lt<->Ge, Le<->Gt).
PredKind negatePred(PredKind P);
/// Mirrors a predicate around swapped operands (Lt<->Gt, Le<->Ge).
PredKind mirrorPred(PredKind P);
/// Evaluates \p P on concrete values.
bool evalPred(PredKind P, const Value &A, const Value &B);
/// Renders "==", "!=", "<", ...
const char *predSpelling(PredKind P);

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

/// An immutable formula tree node.
class Formula : public std::enable_shared_from_this<Formula> {
public:
  enum class Kind : uint8_t { True, False, Atom, Not, And, Or };

  static FormulaPtr truth(bool B);
  static FormulaPtr atom(PredKind Pred, Term Lhs, Term Rhs);
  static FormulaPtr notOf(FormulaPtr F);
  static FormulaPtr andOf(FormulaPtr A, FormulaPtr B);
  static FormulaPtr orOf(FormulaPtr A, FormulaPtr B);

  /// n-ary conveniences; empty lists yield the neutral element.
  static FormulaPtr andOf(std::vector<FormulaPtr> Fs);
  static FormulaPtr orOf(std::vector<FormulaPtr> Fs);

  Kind kind() const { return TheKind; }
  bool isTrue() const { return TheKind == Kind::True; }
  bool isFalse() const { return TheKind == Kind::False; }
  bool isConst() const { return isTrue() || isFalse(); }

  // Atom accessors.
  PredKind pred() const {
    assert(TheKind == Kind::Atom && "not an atom");
    return Pred;
  }
  const Term &lhs() const {
    assert(TheKind == Kind::Atom && "not an atom");
    return Lhs;
  }
  const Term &rhs() const {
    assert(TheKind == Kind::Atom && "not an atom");
    return Rhs;
  }

  // Composite accessors: left()/right() for And/Or, operand() for Not.
  const FormulaPtr &left() const {
    assert((TheKind == Kind::And || TheKind == Kind::Or) && "not binary");
    return A;
  }
  const FormulaPtr &right() const {
    assert((TheKind == Kind::And || TheKind == Kind::Or) && "not binary");
    return B;
  }
  const FormulaPtr &operand() const {
    assert(TheKind == Kind::Not && "not a negation");
    return A;
  }

  /// Evaluates the formula on the flattened value tuples of two invocations
  /// (paper: ϕ(~u1~v1; ~u2~v2)).
  bool evaluate(std::span<const Value> First,
                std::span<const Value> Second) const;

  /// Returns the formula with V1 and V2 exchanged: ϕ(~x2; ~x1).
  FormulaPtr swapSides() const;

  /// True when this atom mentions a variable of side \p S (atoms only).
  bool atomMentionsSide(Side S) const {
    assert(TheKind == Kind::Atom && "not an atom");
    return (Lhs.isVar() && Lhs.side() == S) || (Rhs.isVar() && Rhs.side() == S);
  }

  /// Collects every atom (as FormulaPtr) in the tree, left to right.
  void collectAtoms(std::vector<FormulaPtr> &Out) const;

  /// Renders e.g. "x1 != y1 || (x2 == y3 && x3 == nil)" with First-side
  /// variables printed as x<pos+1> and Second-side as y<pos+1>.
  std::string toString() const;

private:
  Formula() = default;

  Kind TheKind = Kind::True;
  PredKind Pred = PredKind::Eq;
  Term Lhs = Term::constant(Value::nil());
  Term Rhs = Term::constant(Value::nil());
  FormulaPtr A;
  FormulaPtr B;
};

std::ostream &operator<<(std::ostream &OS, const Formula &F);

} // namespace crd

#endif // CRD_SPEC_FORMULA_H
