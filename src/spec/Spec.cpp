//===- spec/Spec.cpp - Object commutativity specifications ------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "spec/Spec.h"

#include "spec/Fragment.h"

#include <cassert>

using namespace crd;

uint32_t ObjectSpec::addMethod(MethodSig Sig) {
  assert(!MethodIndexByName.count(Sig.Name) && "duplicate method name");
  uint32_t Index = static_cast<uint32_t>(Methods.size());
  MethodIndexByName.emplace(Sig.Name, Index);
  Methods.push_back(Sig);
  return Index;
}

std::optional<uint32_t> ObjectSpec::methodIndex(Symbol Name) const {
  auto It = MethodIndexByName.find(Name);
  if (It == MethodIndexByName.end())
    return std::nullopt;
  return It->second;
}

void ObjectSpec::setCommutes(uint32_t I, uint32_t J, FormulaPtr F) {
  assert(I < Methods.size() && J < Methods.size() && "method out of range");
  assert(F && "null formula");
  if (I <= J) {
    Pairs[pairKey(I, J)] = std::move(F);
    return;
  }
  Pairs[pairKey(J, I)] = F->swapSides();
}

FormulaPtr ObjectSpec::commutesFormula(uint32_t I, uint32_t J) const {
  auto It = Pairs.find(I <= J ? pairKey(I, J) : pairKey(J, I));
  if (It == Pairs.end())
    return nullptr;
  return I <= J ? It->second : It->second->swapSides();
}

bool ObjectSpec::commute(const Action &A, const Action &B) const {
  auto I = methodIndex(A.method());
  auto J = methodIndex(B.method());
  assert(I && J && "action method not declared in this specification");
  FormulaPtr F = commutesFormula(*I, *J);
  if (!F)
    return DefaultCommutes.value_or(false);
  std::vector<Value> First = A.values();
  std::vector<Value> Second = B.values();
  return F->evaluate(First, Second);
}

/// Checks that every variable of \p F on side \p S has a position within
/// \p NumValues; reports into \p Diags naming \p MethodName.
static bool checkArity(const Formula &F, Side S, uint32_t NumValues,
                       const std::string &MethodName,
                       DiagnosticEngine &Diags) {
  std::vector<FormulaPtr> Atoms;
  F.collectAtoms(Atoms);
  bool Ok = true;
  for (const FormulaPtr &A : Atoms) {
    for (const Term *T : {&A->lhs(), &A->rhs()}) {
      if (!T->isVar() || T->side() != S)
        continue;
      if (T->position() >= NumValues) {
        Diags.error({}, "variable position " +
                            std::to_string(T->position() + 1) +
                            " exceeds the " + std::to_string(NumValues) +
                            " argument/return values of method '" +
                            MethodName + "'");
        Ok = false;
      }
    }
  }
  return Ok;
}

bool ObjectSpec::validate(DiagnosticEngine &Diags) const {
  for (uint32_t I = 0, E = static_cast<uint32_t>(Methods.size()); I != E; ++I) {
    for (uint32_t J = I; J != E; ++J) {
      FormulaPtr F = commutesFormula(I, J);
      std::string PairName = "phi[" + std::string(Methods[I].Name.str()) +
                             ", " + std::string(Methods[J].Name.str()) + "]";
      if (!F) {
        if (!DefaultCommutes)
          Diags.warning({}, "no commutativity formula for " + PairName +
                                "; the pair is treated as never commuting");
        continue;
      }
      checkArity(*F, Side::First, Methods[I].numValues(),
                 std::string(Methods[I].Name.str()), Diags);
      checkArity(*F, Side::Second, Methods[J].numValues(),
                 std::string(Methods[J].Name.str()), Diags);

      if (I == J) {
        std::optional<bool> Symmetric =
            equivalentUnderBooleanAbstraction(*F, *F->swapSides());
        if (!Symmetric)
          Diags.warning({}, "symmetry of " + PairName +
                                " could not be decided (too many atoms)");
        else if (!*Symmetric)
          Diags.error({}, PairName + " must be symmetric: '" + F->toString() +
                              "' differs from its side-swapped form '" +
                              F->swapSides()->toString() + "'");
      }

      if (!isECL(*F))
        Diags.note({}, PairName + " is outside ECL: " +
                           *explainNotECL(F) +
                           "; the constant-time translation of section 6.2 "
                           "does not apply");
    }
  }
  return !Diags.hasErrors();
}
