//===- spec/Fragment.h - LS / LB / ECL fragments (paper §6.1) ---*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classification of formulas into the paper's logical fragments:
///
///   LS  (SIMPLE, Def 6.1):  S ::= V1 ≠ V2 | S ∧ S | true | false
///   LB  (Def 6.2):          B ::= P_V1 | P_V2 | ¬B | B ∧ B | B ∨ B
///                                 | true | false
///   ECL (Def 6.3):          X ::= S | B | X ∧ X | X ∨ B
///
/// plus a boolean-abstraction equivalence check used to validate symmetry of
/// ϕ^m_m specifications and as a test oracle.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SPEC_FRAGMENT_H
#define CRD_SPEC_FRAGMENT_H

#include "spec/Formula.h"

#include <optional>
#include <string>

namespace crd {

/// How an atomic formula relates to the two variable supplies.
enum class AtomClass {
  LS,    ///< A disequality between a V1 variable and a V2 variable.
  LB,    ///< All variables from a single side (or no variables).
  Mixed, ///< Mentions both sides but is not an LS disequality; not in ECL.
};

/// Classifies one atom. \p F must be an Atom node.
AtomClass classifyAtom(const Formula &F);

/// S fragment membership (Def 6.1).
bool isLS(const Formula &F);

/// B fragment membership (Def 6.2).
bool isLB(const Formula &F);

/// ECL membership (Def 6.3). Note ECL contains both LS and LB.
bool isECL(const Formula &F);

/// When \p F is not in ECL, returns a human-readable reason naming the
/// offending subformula (for diagnostics); std::nullopt when F ∈ ECL.
std::optional<std::string> explainNotECL(const FormulaPtr &F);

/// An atom in canonical form: a base predicate (Eq or Lt) over
/// deterministically ordered terms, plus a negation flag such that the
/// original atom is equivalent to (Negated ? ¬base : base). Ne maps to
/// negated Eq; Le/Gt/Ge map onto Lt by mirroring/negating.
struct CanonAtom {
  PredKind Base = PredKind::Eq;
  Term Lhs = Term::constant(Value::nil());
  Term Rhs = Term::constant(Value::nil());
  bool Negated = false;

  /// Orders by (Base, Lhs, Rhs), ignoring polarity — atoms with the same
  /// base are the same propositional variable.
  friend bool operator<(const CanonAtom &A, const CanonAtom &B) {
    if (A.Base != B.Base)
      return A.Base < B.Base;
    if (A.Lhs != B.Lhs)
      return A.Lhs < B.Lhs;
    return A.Rhs < B.Rhs;
  }
  friend bool operator==(const CanonAtom &A, const CanonAtom &B) {
    return !(A < B) && !(B < A);
  }
};

/// Canonicalizes one atom. \p Atom must be an Atom node.
CanonAtom canonicalizeAtom(const Formula &Atom);

/// Checks propositional equivalence of two formulas under the boolean
/// abstraction that treats canonicalized atoms as independent propositional
/// variables (Eq(a,b)~Eq(b,a), Ne = ¬Eq, Gt(a,b) = Lt(b,a), Ge = ¬Lt, ...).
///
/// The check is sound for "equivalent": a true result implies logical
/// equivalence. A false result may be a false alarm when atoms are
/// semantically dependent (e.g. x == 5 and x == 6). The number of distinct
/// atoms is capped; returns std::nullopt when the cap (20) is exceeded.
std::optional<bool> equivalentUnderBooleanAbstraction(const Formula &A,
                                                      const Formula &B);

} // namespace crd

#endif // CRD_SPEC_FRAGMENT_H
