//===- spec/Formula.cpp - Commutativity formulas ----------------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "spec/Formula.h"

#include <ostream>
#include <sstream>

using namespace crd;

PredKind crd::negatePred(PredKind P) {
  switch (P) {
  case PredKind::Eq:
    return PredKind::Ne;
  case PredKind::Ne:
    return PredKind::Eq;
  case PredKind::Lt:
    return PredKind::Ge;
  case PredKind::Le:
    return PredKind::Gt;
  case PredKind::Gt:
    return PredKind::Le;
  case PredKind::Ge:
    return PredKind::Lt;
  }
  return P;
}

PredKind crd::mirrorPred(PredKind P) {
  switch (P) {
  case PredKind::Eq:
  case PredKind::Ne:
    return P;
  case PredKind::Lt:
    return PredKind::Gt;
  case PredKind::Le:
    return PredKind::Ge;
  case PredKind::Gt:
    return PredKind::Lt;
  case PredKind::Ge:
    return PredKind::Le;
  }
  return P;
}

bool crd::evalPred(PredKind P, const Value &A, const Value &B) {
  switch (P) {
  case PredKind::Eq:
    return A == B;
  case PredKind::Ne:
    return A != B;
  case PredKind::Lt:
    return A < B;
  case PredKind::Le:
    return !(B < A);
  case PredKind::Gt:
    return B < A;
  case PredKind::Ge:
    return !(A < B);
  }
  return false;
}

const char *crd::predSpelling(PredKind P) {
  switch (P) {
  case PredKind::Eq:
    return "==";
  case PredKind::Ne:
    return "!=";
  case PredKind::Lt:
    return "<";
  case PredKind::Le:
    return "<=";
  case PredKind::Gt:
    return ">";
  case PredKind::Ge:
    return ">=";
  }
  return "?";
}

namespace {
/// Shared constants for true/false.
struct Constants {
  FormulaPtr TrueF;
  FormulaPtr FalseF;
};
} // namespace

FormulaPtr Formula::truth(bool B) {
  static Constants Cs = [] {
    Constants C;
    auto *T = new Formula();
    T->TheKind = Kind::True;
    C.TrueF = FormulaPtr(T);
    auto *F = new Formula();
    F->TheKind = Kind::False;
    C.FalseF = FormulaPtr(F);
    return C;
  }();
  return B ? Cs.TrueF : Cs.FalseF;
}

FormulaPtr Formula::atom(PredKind Pred, Term Lhs, Term Rhs) {
  // Constant-fold atoms over two constants immediately.
  if (!Lhs.isVar() && !Rhs.isVar())
    return truth(evalPred(Pred, Lhs.constant(), Rhs.constant()));
  auto *F = new Formula();
  F->TheKind = Kind::Atom;
  F->Pred = Pred;
  F->Lhs = Lhs;
  F->Rhs = Rhs;
  return FormulaPtr(F);
}

FormulaPtr Formula::notOf(FormulaPtr Inner) {
  assert(Inner && "null operand");
  if (Inner->isTrue())
    return truth(false);
  if (Inner->isFalse())
    return truth(true);
  // Push negation into atoms so downstream passes never see Not-over-Atom.
  if (Inner->kind() == Kind::Atom)
    return atom(negatePred(Inner->pred()), Inner->lhs(), Inner->rhs());
  auto *F = new Formula();
  F->TheKind = Kind::Not;
  F->A = std::move(Inner);
  return FormulaPtr(F);
}

FormulaPtr Formula::andOf(FormulaPtr A, FormulaPtr B) {
  assert(A && B && "null operand");
  if (A->isFalse() || B->isFalse())
    return truth(false);
  if (A->isTrue())
    return B;
  if (B->isTrue())
    return A;
  auto *F = new Formula();
  F->TheKind = Kind::And;
  F->A = std::move(A);
  F->B = std::move(B);
  return FormulaPtr(F);
}

FormulaPtr Formula::orOf(FormulaPtr A, FormulaPtr B) {
  assert(A && B && "null operand");
  if (A->isTrue() || B->isTrue())
    return truth(true);
  if (A->isFalse())
    return B;
  if (B->isFalse())
    return A;
  auto *F = new Formula();
  F->TheKind = Kind::Or;
  F->A = std::move(A);
  F->B = std::move(B);
  return FormulaPtr(F);
}

FormulaPtr Formula::andOf(std::vector<FormulaPtr> Fs) {
  FormulaPtr Acc = truth(true);
  for (FormulaPtr &F : Fs)
    Acc = andOf(std::move(Acc), std::move(F));
  return Acc;
}

FormulaPtr Formula::orOf(std::vector<FormulaPtr> Fs) {
  FormulaPtr Acc = truth(false);
  for (FormulaPtr &F : Fs)
    Acc = orOf(std::move(Acc), std::move(F));
  return Acc;
}

bool Formula::evaluate(std::span<const Value> First,
                       std::span<const Value> Second) const {
  switch (TheKind) {
  case Kind::True:
    return true;
  case Kind::False:
    return false;
  case Kind::Atom:
    return evalPred(Pred, Lhs.eval(First, Second), Rhs.eval(First, Second));
  case Kind::Not:
    return !A->evaluate(First, Second);
  case Kind::And:
    return A->evaluate(First, Second) && B->evaluate(First, Second);
  case Kind::Or:
    return A->evaluate(First, Second) || B->evaluate(First, Second);
  }
  return false;
}

FormulaPtr Formula::swapSides() const {
  switch (TheKind) {
  case Kind::True:
  case Kind::False:
    return truth(isTrue());
  case Kind::Atom:
    return atom(Pred, Lhs.swapped(), Rhs.swapped());
  case Kind::Not:
    return notOf(A->swapSides());
  case Kind::And:
    return andOf(A->swapSides(), B->swapSides());
  case Kind::Or:
    return orOf(A->swapSides(), B->swapSides());
  }
  return truth(false);
}

void Formula::collectAtoms(std::vector<FormulaPtr> &Out) const {
  switch (TheKind) {
  case Kind::True:
  case Kind::False:
    return;
  case Kind::Atom:
    Out.push_back(shared_from_this());
    return;
  case Kind::Not:
    A->collectAtoms(Out);
    return;
  case Kind::And:
  case Kind::Or:
    A->collectAtoms(Out);
    B->collectAtoms(Out);
    return;
  }
}

static void printTerm(std::ostream &OS, const Term &T) {
  if (!T.isVar()) {
    OS << T.constant();
    return;
  }
  OS << (T.side() == Side::First ? 'x' : 'y') << (T.position() + 1);
}

static void printFormula(std::ostream &OS, const Formula &F, int ParentPrec) {
  // Precedence: Or = 1, And = 2, Not = 3, atoms/constants = 4.
  switch (F.kind()) {
  case Formula::Kind::True:
    OS << "true";
    return;
  case Formula::Kind::False:
    OS << "false";
    return;
  case Formula::Kind::Atom:
    printTerm(OS, F.lhs());
    OS << ' ' << predSpelling(F.pred()) << ' ';
    printTerm(OS, F.rhs());
    return;
  case Formula::Kind::Not:
    OS << '!';
    printFormula(OS, *F.operand(), 3);
    return;
  case Formula::Kind::And: {
    bool Paren = ParentPrec > 2;
    if (Paren)
      OS << '(';
    printFormula(OS, *F.left(), 2);
    OS << " && ";
    printFormula(OS, *F.right(), 2);
    if (Paren)
      OS << ')';
    return;
  }
  case Formula::Kind::Or: {
    bool Paren = ParentPrec > 1;
    if (Paren)
      OS << '(';
    printFormula(OS, *F.left(), 1);
    OS << " || ";
    printFormula(OS, *F.right(), 1);
    if (Paren)
      OS << ')';
    return;
  }
  }
}

std::string Formula::toString() const {
  std::ostringstream OS;
  OS << *this;
  return OS.str();
}

std::ostream &crd::operator<<(std::ostream &OS, const Formula &F) {
  printFormula(OS, F, 0);
  return OS;
}
