//===- spec/Builtins.cpp - Builtin commutativity specifications -------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "spec/Builtins.h"

using namespace crd;

namespace {

Term x(uint32_t Pos) { return Term::var(Side::First, Pos); }
Term y(uint32_t Pos) { return Term::var(Side::Second, Pos); }
Term nilConst() { return Term::constant(Value::nil()); }
Term falseConst() { return Term::constant(Value::boolean(false)); }

FormulaPtr eq(Term A, Term B) { return Formula::atom(PredKind::Eq, A, B); }
FormulaPtr ne(Term A, Term B) { return Formula::atom(PredKind::Ne, A, B); }

ObjectSpec buildDictionary() {
  ObjectSpec Spec("dictionary");
  uint32_t Put = Spec.addMethod({symbol("put"), 2, 1});  // put(k,v)/p
  uint32_t Get = Spec.addMethod({symbol("get"), 1, 1});  // get(k)/v
  uint32_t Size = Spec.addMethod({symbol("size"), 0, 1}); // size()/r

  // ϕ(put,put) = k1 ≠ k2 ∨ (v1 = p1 ∧ v2 = p2).
  Spec.setCommutes(Put, Put,
                   Formula::orOf(ne(x(0), y(0)),
                                 Formula::andOf(eq(x(1), x(2)),
                                                eq(y(1), y(2)))));
  // ϕ(put,get) = k1 ≠ k2 ∨ v1 = p1.
  Spec.setCommutes(Put, Get,
                   Formula::orOf(ne(x(0), y(0)), eq(x(1), x(2))));
  // ϕ(put,size) = (v1 = nil ∧ p1 = nil) ∨ (v1 ≠ nil ∧ p1 ≠ nil).
  Spec.setCommutes(
      Put, Size,
      Formula::orOf(
          Formula::andOf(eq(x(1), nilConst()), eq(x(2), nilConst())),
          Formula::andOf(ne(x(1), nilConst()), ne(x(2), nilConst()))));
  Spec.setCommutes(Get, Get, Formula::truth(true));
  Spec.setCommutes(Get, Size, Formula::truth(true));
  Spec.setCommutes(Size, Size, Formula::truth(true));
  return Spec;
}

ObjectSpec buildSet() {
  ObjectSpec Spec("set");
  uint32_t Add = Spec.addMethod({symbol("add"), 1, 1});       // add(k)/c
  uint32_t Remove = Spec.addMethod({symbol("remove"), 1, 1}); // remove(k)/c
  uint32_t Contains = Spec.addMethod({symbol("contains"), 1, 1});
  uint32_t Size = Spec.addMethod({symbol("size"), 0, 1});

  // Two mutators commute when they touch different keys or neither changed
  // the set.
  FormulaPtr MutMut =
      Formula::orOf(ne(x(0), y(0)),
                    Formula::andOf(eq(x(1), falseConst()),
                                   eq(y(1), falseConst())));
  Spec.setCommutes(Add, Add, MutMut);
  Spec.setCommutes(Add, Remove, MutMut);
  Spec.setCommutes(Remove, Remove, MutMut);

  // A mutator commutes with contains on another key, or when it did not
  // change the set.
  FormulaPtr MutObs =
      Formula::orOf(ne(x(0), y(0)), eq(x(1), falseConst()));
  Spec.setCommutes(Add, Contains, MutObs);
  Spec.setCommutes(Remove, Contains, MutObs);

  // A mutator commutes with size iff it did not change the set.
  Spec.setCommutes(Add, Size, eq(x(1), falseConst()));
  Spec.setCommutes(Remove, Size, eq(x(1), falseConst()));

  Spec.setCommutes(Contains, Contains, Formula::truth(true));
  Spec.setCommutes(Contains, Size, Formula::truth(true));
  Spec.setCommutes(Size, Size, Formula::truth(true));
  return Spec;
}

ObjectSpec buildCounter() {
  ObjectSpec Spec("counter");
  uint32_t Inc = Spec.addMethod({symbol("inc"), 0, 0});
  uint32_t Dec = Spec.addMethod({symbol("dec"), 0, 0});
  uint32_t Read = Spec.addMethod({symbol("read"), 0, 1});

  Spec.setCommutes(Inc, Inc, Formula::truth(true));
  Spec.setCommutes(Inc, Dec, Formula::truth(true));
  Spec.setCommutes(Dec, Dec, Formula::truth(true));
  Spec.setCommutes(Inc, Read, Formula::truth(false));
  Spec.setCommutes(Dec, Read, Formula::truth(false));
  Spec.setCommutes(Read, Read, Formula::truth(true));
  return Spec;
}

ObjectSpec buildRegister() {
  ObjectSpec Spec("register");
  uint32_t Write = Spec.addMethod({symbol("write"), 1, 1}); // write(v)/p
  uint32_t Read = Spec.addMethod({symbol("read"), 0, 1});   // read()/v

  // Both writes must be no-ops.
  Spec.setCommutes(Write, Write,
                   Formula::andOf(eq(x(0), x(1)), eq(y(0), y(1))));
  // The write must be a no-op.
  Spec.setCommutes(Write, Read, eq(x(0), x(1)));
  Spec.setCommutes(Read, Read, Formula::truth(true));
  return Spec;
}

ObjectSpec buildQueue() {
  ObjectSpec Spec("queue");
  uint32_t Enq = Spec.addMethod({symbol("enq"), 1, 1});  // enq(v)/wasEmpty
  uint32_t Deq = Spec.addMethod({symbol("deq"), 0, 2});  // deq()/v/ok
  uint32_t Peek = Spec.addMethod({symbol("peek"), 0, 2}); // peek()/v/ok

  // Two enqueues fix the FIFO order between their elements: never commute.
  Spec.setCommutes(Enq, Enq, Formula::truth(false));
  // enq/deq: with Definition 3.1's strict effect equality they only
  // commute vacuously — when the enqueue hit a non-empty queue and the
  // dequeue hit an empty one, the two composition orders are both
  // nowhere-defined. (The tempting "deq succeeded" condition is unsound
  // for singleton queues, where the dequeue drains what the enqueue saw.)
  Spec.setCommutes(Enq, Deq,
                   Formula::andOf(eq(x(1), falseConst()),
                                  eq(y(1), falseConst())));
  // enq/peek: peeking does not observe the tail, so an enqueue onto a
  // non-empty queue commutes with any peek (successful or vacuous).
  Spec.setCommutes(Enq, Peek, eq(x(1), falseConst()));
  // Two dequeues commute only when both failed (identity on the empty
  // queue); a failed dequeue also commutes with any peek vacuously.
  Spec.setCommutes(Deq, Deq,
                   Formula::andOf(eq(x(1), falseConst()),
                                  eq(y(1), falseConst())));
  Spec.setCommutes(Deq, Peek, eq(x(1), falseConst()));
  Spec.setCommutes(Peek, Peek, Formula::truth(true));
  return Spec;
}

} // namespace

const ObjectSpec &crd::dictionarySpec() {
  static const ObjectSpec Spec = buildDictionary();
  return Spec;
}

const ObjectSpec &crd::setSpec() {
  static const ObjectSpec Spec = buildSet();
  return Spec;
}

const ObjectSpec &crd::counterSpec() {
  static const ObjectSpec Spec = buildCounter();
  return Spec;
}

const ObjectSpec &crd::registerSpec() {
  static const ObjectSpec Spec = buildRegister();
  return Spec;
}

const ObjectSpec &crd::queueSpec() {
  static const ObjectSpec Spec = buildQueue();
  return Spec;
}
