//===- spec/Fragment.cpp - LS / LB / ECL fragments --------------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "spec/Fragment.h"

#include <cassert>
#include <map>
#include <vector>

using namespace crd;

AtomClass crd::classifyAtom(const Formula &F) {
  assert(F.kind() == Formula::Kind::Atom && "expected an atom");
  bool MentionsFirst = F.atomMentionsSide(Side::First);
  bool MentionsSecond = F.atomMentionsSide(Side::Second);
  if (MentionsFirst && MentionsSecond) {
    // The only cross-side atoms admitted by ECL are LS disequalities between
    // two variables.
    if (F.pred() == PredKind::Ne && F.lhs().isVar() && F.rhs().isVar())
      return AtomClass::LS;
    return AtomClass::Mixed;
  }
  return AtomClass::LB;
}

bool crd::isLS(const Formula &F) {
  switch (F.kind()) {
  case Formula::Kind::True:
  case Formula::Kind::False:
    return true;
  case Formula::Kind::Atom:
    return classifyAtom(F) == AtomClass::LS;
  case Formula::Kind::And:
    return isLS(*F.left()) && isLS(*F.right());
  case Formula::Kind::Not:
  case Formula::Kind::Or:
    return false;
  }
  return false;
}

bool crd::isLB(const Formula &F) {
  switch (F.kind()) {
  case Formula::Kind::True:
  case Formula::Kind::False:
    return true;
  case Formula::Kind::Atom:
    return classifyAtom(F) == AtomClass::LB;
  case Formula::Kind::Not:
    return isLB(*F.operand());
  case Formula::Kind::And:
  case Formula::Kind::Or:
    return isLB(*F.left()) && isLB(*F.right());
  }
  return false;
}

bool crd::isECL(const Formula &F) {
  // X ::= S | B | X ∧ X | X ∨ B. Disjunction is commutative, so we accept
  // B ∨ X as well.
  if (isLS(F) || isLB(F))
    return true;
  switch (F.kind()) {
  case Formula::Kind::And:
    return isECL(*F.left()) && isECL(*F.right());
  case Formula::Kind::Or:
    return (isECL(*F.left()) && isLB(*F.right())) ||
           (isLB(*F.left()) && isECL(*F.right()));
  default:
    return false;
  }
}

std::optional<std::string> crd::explainNotECL(const FormulaPtr &F) {
  if (isECL(*F))
    return std::nullopt;

  switch (F->kind()) {
  case Formula::Kind::Atom: {
    assert(classifyAtom(*F) == AtomClass::Mixed && "ECL atom rejected");
    return "atomic formula '" + F->toString() +
           "' mixes variables of both invocations and is not a disequality "
           "between two variables";
  }
  case Formula::Kind::Not: {
    if (auto Inner = explainNotECL(F->operand()))
      return Inner;
    return "negation '" + F->toString() +
           "' is only allowed around single-invocation (LB) subformulas";
  }
  case Formula::Kind::And: {
    if (auto L = explainNotECL(F->left()))
      return L;
    return explainNotECL(F->right());
  }
  case Formula::Kind::Or: {
    if (!isECL(*F->left()))
      return explainNotECL(F->left());
    if (!isECL(*F->right()))
      return explainNotECL(F->right());
    // Both operands are individually fine, so the problem is the shape:
    // X ∨ X with neither side in LB.
    return "disjunction '" + F->toString() +
           "' needs at least one operand restricted to a single invocation "
           "(the ECL grammar only admits X ∨ B)";
  }
  default:
    return "formula '" + F->toString() + "' is outside ECL";
  }
}

CanonAtom crd::canonicalizeAtom(const Formula &Atom) {
  assert(Atom.kind() == Formula::Kind::Atom && "expected an atom");
  PredKind P = Atom.pred();
  Term L = Atom.lhs(), R = Atom.rhs();
  bool Negated = false;

  // Reduce to {Eq, Lt, Le} first by extracting negation.
  if (P == PredKind::Ne || P == PredKind::Ge || P == PredKind::Gt) {
    P = negatePred(P); // Ne->Eq, Ge->Lt, Gt->Le.
    Negated = true;
  }
  // Now P ∈ {Eq, Lt, Le}. Le(a,b) = ¬Lt(b,a).
  if (P == PredKind::Le) {
    P = PredKind::Lt;
    std::swap(L, R);
    Negated = !Negated;
  }
  // Eq is symmetric: order operands deterministically.
  if (P == PredKind::Eq && R < L)
    std::swap(L, R);
  return CanonAtom{P, L, R, Negated};
}

namespace {

using AtomValuation = std::map<CanonAtom, bool>;

bool evalUnder(const Formula &F, const AtomValuation &Val) {
  switch (F.kind()) {
  case Formula::Kind::True:
    return true;
  case Formula::Kind::False:
    return false;
  case Formula::Kind::Atom: {
    CanonAtom Canon = canonicalizeAtom(F);
    auto It = Val.find(Canon);
    assert(It != Val.end() && "atom missing from valuation");
    return It->second != Canon.Negated;
  }
  case Formula::Kind::Not:
    return !evalUnder(*F.operand(), Val);
  case Formula::Kind::And:
    return evalUnder(*F.left(), Val) && evalUnder(*F.right(), Val);
  case Formula::Kind::Or:
    return evalUnder(*F.left(), Val) || evalUnder(*F.right(), Val);
  }
  return false;
}

void collectCanonicalAtoms(const Formula &F, std::map<CanonAtom, size_t> &Out) {
  std::vector<FormulaPtr> Atoms;
  F.collectAtoms(Atoms);
  for (const FormulaPtr &A : Atoms)
    Out.emplace(canonicalizeAtom(*A), Out.size());
}

} // namespace

std::optional<bool>
crd::equivalentUnderBooleanAbstraction(const Formula &A, const Formula &B) {
  std::map<CanonAtom, size_t> Atoms;
  collectCanonicalAtoms(A, Atoms);
  collectCanonicalAtoms(B, Atoms);

  constexpr size_t MaxAtoms = 20;
  if (Atoms.size() > MaxAtoms)
    return std::nullopt;

  for (uint64_t Bits = 0, E = uint64_t(1) << Atoms.size(); Bits != E; ++Bits) {
    AtomValuation Val;
    for (const auto &[Canon, Index] : Atoms)
      Val[Canon] = (Bits >> Index) & 1;
    if (evalUnder(A, Val) != evalUnder(B, Val))
      return false;
  }
  return true;
}
