//===- spec/Spec.h - Object commutativity specifications --------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Logical commutativity specifications Φ (paper Def 4.1): per object type,
/// a method table and one formula ϕ^m1_m2 per unordered method pair. The
/// stored orientation is always "lower method index = First side"; queries
/// for the opposite orientation transparently swap sides.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SPEC_SPEC_H
#define CRD_SPEC_SPEC_H

#include "spec/Formula.h"
#include "support/Diagnostics.h"
#include "support/Symbol.h"
#include "trace/Action.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace crd {

/// Signature of one object method: name and arity of arguments/returns.
struct MethodSig {
  Symbol Name;
  uint32_t NumArgs = 0;
  uint32_t NumRets = 0;

  /// Length of the flattened value tuple ~u~v.
  uint32_t numValues() const { return NumArgs + NumRets; }
};

/// A commutativity specification Φ for one object type.
class ObjectSpec {
public:
  explicit ObjectSpec(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  /// Registers a method; returns its index. Names must be unique.
  uint32_t addMethod(MethodSig Sig);

  size_t numMethods() const { return Methods.size(); }
  const MethodSig &method(uint32_t Index) const { return Methods[Index]; }
  std::optional<uint32_t> methodIndex(Symbol Name) const;

  /// Installs ϕ^mI_mJ given with First = method \p I, Second = method \p J.
  /// Either orientation may be passed; storage normalizes to I ≤ J.
  void setCommutes(uint32_t I, uint32_t J, FormulaPtr F);

  /// Returns the formula oriented (First = \p I, Second = \p J), or nullptr
  /// when the pair has no specification.
  FormulaPtr commutesFormula(uint32_t I, uint32_t J) const;

  /// Evaluates the specification on two concrete actions: true iff Φ says
  /// they commute. Pairs without a formula use the default (see
  /// setDefaultCommutes), which itself defaults to "never commute".
  /// Both actions must name methods of this spec.
  bool commute(const Action &A, const Action &B) const;

  /// Sets the fallback for method pairs without an explicit formula
  /// (the spec language's `commute default : true|false;`). Setting it
  /// suppresses the missing-pair validation warning.
  void setDefaultCommutes(bool Commutes) { DefaultCommutes = Commutes; }

  /// The explicit default, if one was set.
  std::optional<bool> defaultCommutes() const { return DefaultCommutes; }

  /// Checks the specification:
  ///   * every variable position is within the method's value tuple,
  ///   * ϕ^m_m is symmetric (Def 4.1 requirement) — checked under the
  ///     boolean abstraction; failure is an error, an inconclusive check
  ///     (too many atoms) is a warning,
  ///   * pairs without a formula produce a warning (treated as "never
  ///     commute"),
  ///   * formulas outside ECL produce a note (the detector still works, but
  ///     the Θ(1) translation of §6.2 does not apply).
  /// Returns true when no errors were found.
  bool validate(DiagnosticEngine &Diags) const;

private:
  static uint64_t pairKey(uint32_t I, uint32_t J) {
    return (uint64_t(I) << 32) | J;
  }

  std::string Name;
  std::vector<MethodSig> Methods;
  std::map<Symbol, uint32_t> MethodIndexByName;
  // Keyed by pairKey(I, J) with I <= J; formula oriented First = I.
  std::map<uint64_t, FormulaPtr> Pairs;
  std::optional<bool> DefaultCommutes;
};

} // namespace crd

#endif // CRD_SPEC_SPEC_H
