//===- spec/SpecParser.h - ECL specification language parser ----*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small declarative language for writing commutativity specifications,
/// so users can supply specs as text files rather than building formula
/// trees by hand:
///
/// \code
///   // Fig 6 of the paper.
///   object dictionary {
///     method put(k, v) / p;
///     method get(k) / v;
///     method size() / r;
///
///     commute put(k1, v1)/p1, put(k2, v2)/p2 :
///         k1 != k2 || (v1 == p1 && v2 == p2);
///     commute put(k1, v1)/p1, get(k2)/v2 : k1 != k2 || v1 == p1;
///     commute put(k1, v1)/p1, size()/r :
///         (v1 == nil && p1 == nil) || (v1 != nil && p1 != nil);
///     commute get(k1)/v1, get(k2)/v2 : true;
///     commute get(k1)/v1, size()/r : true;
///     commute size()/r1, size()/r2 : true;
///   }
/// \endcode
///
/// Variable names are declared by the two invocation patterns of a commute
/// clause and must be distinct across both; `_` declares an anonymous
/// variable. Literals: integers, strings, nil, true, false. Operators by
/// decreasing precedence: `!`, `&&`, `||`; comparisons `== != < <= > >=`.
/// Line comments start with `//` or `#`.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_SPEC_SPECPARSER_H
#define CRD_SPEC_SPECPARSER_H

#include "spec/Spec.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string_view>
#include <vector>

namespace crd {

/// Parses a specification file possibly containing several object blocks.
/// Returns std::nullopt when \p Diags received at least one error.
std::optional<std::vector<ObjectSpec>> parseSpecs(std::string_view Text,
                                                  DiagnosticEngine &Diags);

/// Convenience wrapper for inputs expected to define exactly one object.
std::optional<ObjectSpec> parseObjectSpec(std::string_view Text,
                                          DiagnosticEngine &Diags);

} // namespace crd

#endif // CRD_SPEC_SPECPARSER_H
