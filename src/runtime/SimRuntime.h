//===- runtime/SimRuntime.h - Deterministic concurrent runtime --*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seeded, cooperative multithreading simulator — the
/// substitute for real JVM threads in the paper's evaluation. Threads are
/// queues of steps; the scheduler repeatedly picks a runnable thread
/// (seeded PRNG) and executes its next step. A step runs atomically and may
/// perform any number of instrumented operations (which emit events into
/// the configured sink), defer continuations onto its own thread, fork new
/// threads, and join others.
///
/// \code
///   SimRuntime Rt(/*Seed=*/42);
///   ThreadId Main = Rt.addInitialThread();
///   Rt.schedule(Main, [&](SimThread &T) {
///     ThreadId W = T.fork([&](SimThread &T2) { Map.put(T2, K, V); });
///     T.defer([W](SimThread &T3) { T3.join(W); });
///   });
///   Rt.run(Sink);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CRD_RUNTIME_SIMRUNTIME_H
#define CRD_RUNTIME_SIMRUNTIME_H

#include "runtime/Sink.h"
#include "trace/Trace.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <random>
#include <vector>

namespace crd {

class SimRuntime;
class SimThread;

/// One atomic unit of thread work.
using SimStep = std::function<void(SimThread &)>;

/// Handle passed to executing steps; exposes the instrumented primitives.
class SimThread {
public:
  ThreadId id() const { return Self; }
  SimRuntime &runtime() { return RT; }

  // Instrumentation primitives (emit events when the sink is enabled).
  void read(VarId Var);
  void write(VarId Var);
  void acquire(LockId Lock);
  void release(LockId Lock);
  void invoke(Action A);

  /// Marks the start/end of an intended-atomic block (consumed by the
  /// atomicity checker; ignored by the race detectors).
  void txBegin();
  void txEnd();

  /// Forks a new thread whose program is the single step \p Body (which may
  /// defer more steps); emits a Fork event.
  ThreadId fork(SimStep Body);

  /// Blocks this thread until \p Other terminates; the Join event is
  /// emitted when the wait completes. Pending deferred steps run after.
  void join(ThreadId Other);

  /// Appends \p Continuation to run after the current step (in defer order,
  /// before any steps scheduled earlier from outside).
  void defer(SimStep Continuation);

  /// Deterministic per-runtime PRNG (draws are part of the schedule).
  uint64_t random(uint64_t Bound);

private:
  friend class SimRuntime;
  SimThread(SimRuntime &RT, ThreadId Self) : RT(RT), Self(Self) {}

  SimRuntime &RT;
  ThreadId Self;
  std::vector<SimStep> Deferred;
};

/// The simulator: thread table, scheduler and id allocators.
class SimRuntime {
public:
  explicit SimRuntime(uint64_t Seed) : Rng(Seed) {}

  /// Creates a thread that exists from the start (no Fork event). The first
  /// thread created is conventionally the main thread.
  ThreadId addInitialThread();

  /// Appends a step to a thread's program.
  void schedule(ThreadId Thread, SimStep Step);

  /// Runs until every thread's program is exhausted, emitting events into
  /// \p Sink. Returns the number of steps executed.
  size_t run(EventSink &Sink);

  // Deterministic resource allocators for instrumented data structures.
  ObjectId newObject() { return ObjectId(NextObject++); }
  VarId newVar() { return VarId(NextVar++); }
  LockId newLock() { return LockId(NextLock++); }

  /// Whether \p Thread has terminated (program exhausted). Threads never
  /// scheduled count as terminated.
  bool finished(ThreadId Thread) const;

private:
  friend class SimThread;

  struct ThreadState {
    std::deque<SimStep> Program;
    std::optional<ThreadId> WaitingOn;
    bool JoinEventPending = false;
    /// Whether the sink's onThreadExit() already fired for this thread.
    bool ExitNotified = false;
  };

  void emit(const Event &E);
  /// Fires the sink's onThreadExit() once when \p Thread has terminated
  /// (program empty, not waiting); no-op otherwise.
  void notifyExit(ThreadId Thread);
  ThreadId forkThread(ThreadId Parent, SimStep Body);
  uint64_t drawRandom(uint64_t Bound);

  std::vector<ThreadState> Threads;
  std::mt19937_64 Rng;
  EventSink *Sink = nullptr;
  uint32_t NextObject = 0;
  uint32_t NextVar = 0;
  uint32_t NextLock = 0;
};

} // namespace crd

#endif // CRD_RUNTIME_SIMRUNTIME_H
