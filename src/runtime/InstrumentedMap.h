//===- runtime/InstrumentedMap.h - Instrumented ConcurrentHashMap -*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simulated java.util.concurrent.ConcurrentHashMap with RoadRunner-style
/// instrumentation. Each operation emits:
///
///   * the low-level events its implementation performs — striped lock
///     acquire/release, reads/writes of bucket regions, and the unlocked
///     size-counter accesses that make get()/size() racy at the memory
///     level exactly like the real CHM (consumed by FastTrack);
///   * the high-level action event o.m(~u)/~v matching the dictionary
///     specification of paper Fig 5/6 (consumed by the commutativity race
///     detector).
///
/// The map is linearizable at the operation level (operations execute
/// atomically inside one scheduler step), which is the paper's §3.1
/// assumption: the object is implemented correctly; the question is whether
/// it is *used* correctly.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_RUNTIME_INSTRUMENTEDMAP_H
#define CRD_RUNTIME_INSTRUMENTEDMAP_H

#include "runtime/SimRuntime.h"
#include "support/Value.h"

#include <unordered_map>
#include <vector>

namespace crd {

/// Simulated, instrumented concurrent hash map: Value keys to Value values
/// with nil as the no-value (absent) marker.
class InstrumentedMap {
public:
  /// Allocates the map's object id, stripe locks and shadow memory
  /// locations from \p RT.
  explicit InstrumentedMap(SimRuntime &RT, unsigned NumStripes = 8);

  /// m.put(k, v)/p — associates \p Key with \p Val, returning the previous
  /// value (nil if absent). Storing nil removes the key.
  Value put(SimThread &T, const Value &Key, const Value &Val);

  /// m.get(k)/v — returns the associated value or nil. Lock-free: emits an
  /// unlocked read of the bucket region (as in the real CHM).
  Value get(SimThread &T, const Value &Key);

  /// m.size()/r — number of keys with non-nil values. Reads the size
  /// counter without locking (as in the real CHM).
  int64_t size(SimThread &T);

  /// m.putIfAbsent(k, v)/p — atomic check-then-act variant; returns the
  /// previous value (nil means v was stored). Emitted as a put action only
  /// when it stores (otherwise as a get), matching its dictionary effect.
  Value putIfAbsent(SimThread &T, const Value &Key, const Value &Val);

  ObjectId object() const { return Obj; }

  /// Direct (uninstrumented) view for assertions in tests.
  size_t uninstrumentedSize() const { return Data.size(); }
  Value uninstrumentedGet(const Value &Key) const;

private:
  unsigned stripeOf(const Value &Key) const;

  SimRuntime &RT;
  ObjectId Obj;
  std::vector<LockId> StripeLocks;
  std::vector<VarId> StripeVars;
  VarId SizeVar;
  std::unordered_map<Value, Value> Data;
  Symbol PutName;
  Symbol GetName;
  Symbol SizeName;
};

/// A plain shared field (an "application variable"): racy unless the caller
/// brackets accesses with a lock. Useful for modeling the application-level
/// counters and cached statistics where FastTrack finds its races.
class SharedField {
public:
  explicit SharedField(SimRuntime &RT, int64_t Initial = 0)
      : Var(RT.newVar()), Stored(Initial) {}

  int64_t load(SimThread &T) {
    T.read(Var);
    return Stored;
  }

  void store(SimThread &T, int64_t NewValue) {
    T.write(Var);
    Stored = NewValue;
  }

  VarId var() const { return Var; }

private:
  VarId Var;
  int64_t Stored;
};

} // namespace crd

#endif // CRD_RUNTIME_INSTRUMENTEDMAP_H
