//===- runtime/SimRuntime.cpp - Deterministic concurrent runtime -------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "runtime/SimRuntime.h"

#include <cassert>

using namespace crd;

EventSink::~EventSink() = default;

void SimThread::read(VarId Var) { RT.emit(Event::read(Self, Var)); }
void SimThread::write(VarId Var) { RT.emit(Event::write(Self, Var)); }
void SimThread::acquire(LockId Lock) { RT.emit(Event::acquire(Self, Lock)); }
void SimThread::release(LockId Lock) { RT.emit(Event::release(Self, Lock)); }
void SimThread::invoke(Action A) {
  RT.emit(Event::invoke(Self, std::move(A)));
}

void SimThread::txBegin() { RT.emit(Event::txBegin(Self)); }
void SimThread::txEnd() { RT.emit(Event::txEnd(Self)); }

ThreadId SimThread::fork(SimStep Body) {
  return RT.forkThread(Self, std::move(Body));
}

void SimThread::join(ThreadId Other) {
  assert(Other != Self && "thread cannot join itself");
  SimRuntime::ThreadState &State = RT.Threads[Self.index()];
  assert(!State.WaitingOn && "thread is already waiting");
  State.WaitingOn = Other;
  State.JoinEventPending = true;
}

void SimThread::defer(SimStep Continuation) {
  Deferred.push_back(std::move(Continuation));
}

uint64_t SimThread::random(uint64_t Bound) { return RT.drawRandom(Bound); }

ThreadId SimRuntime::addInitialThread() {
  ThreadId Id(static_cast<uint32_t>(Threads.size()));
  Threads.emplace_back();
  return Id;
}

void SimRuntime::schedule(ThreadId Thread, SimStep Step) {
  assert(Thread.index() < Threads.size() && "unknown thread");
  Threads[Thread.index()].Program.push_back(std::move(Step));
}

ThreadId SimRuntime::forkThread(ThreadId Parent, SimStep Body) {
  ThreadId Child(static_cast<uint32_t>(Threads.size()));
  Threads.emplace_back();
  Threads[Child.index()].Program.push_back(std::move(Body));
  emit(Event::fork(Parent, Child));
  return Child;
}

uint64_t SimRuntime::drawRandom(uint64_t Bound) {
  assert(Bound > 0 && "bound must be positive");
  return Rng() % Bound;
}

void SimRuntime::emit(const Event &E) {
  assert(Sink && "emit outside run()");
  if (Sink->enabled())
    Sink->onEvent(E);
}

void SimRuntime::notifyExit(ThreadId Thread) {
  ThreadState &State = Threads[Thread.index()];
  if (State.ExitNotified || !finished(Thread))
    return;
  State.ExitNotified = true;
  if (Sink->enabled())
    Sink->onThreadExit(Thread);
}

bool SimRuntime::finished(ThreadId Thread) const {
  if (Thread.index() >= Threads.size())
    return true;
  const ThreadState &State = Threads[Thread.index()];
  return State.Program.empty() && !State.WaitingOn;
}

size_t SimRuntime::run(EventSink &TheSink) {
  Sink = &TheSink;
  size_t StepsRun = 0;
  std::vector<uint32_t> Runnable;

  while (true) {
    Runnable.clear();
    for (uint32_t I = 0, E = static_cast<uint32_t>(Threads.size()); I != E;
         ++I) {
      ThreadState &State = Threads[I];
      if (State.WaitingOn) {
        if (!finished(*State.WaitingOn))
          continue;
        // The joined thread terminated: emit the deferred Join event and
        // unblock. (Unblocking is itself a schedulable step.)
        Runnable.push_back(I);
        continue;
      }
      if (!State.Program.empty())
        Runnable.push_back(I);
    }
    if (Runnable.empty())
      break;

    uint32_t Pick =
        Runnable[Runnable.size() == 1 ? 0 : drawRandom(Runnable.size())];
    ThreadState &State = Threads[Pick];
    ThreadId Self(Pick);

    if (State.WaitingOn) {
      ThreadId Target = *State.WaitingOn;
      State.WaitingOn.reset();
      if (State.JoinEventPending) {
        State.JoinEventPending = false;
        emit(Event::join(Self, Target));
      }
      ++StepsRun;
      notifyExit(Self);
      continue;
    }

    SimStep Step = std::move(State.Program.front());
    State.Program.pop_front();

    SimThread Handle(*this, Self);
    Step(Handle);
    ++StepsRun;

    // Deferred continuations run next, in defer order. Note: re-fetch the
    // state reference — the step may have forked threads, invalidating it.
    ThreadState &StateAfter = Threads[Pick];
    for (auto It = Handle.Deferred.rbegin(), E = Handle.Deferred.rend();
         It != E; ++It)
      StateAfter.Program.push_front(std::move(*It));

    // A thread whose last step just ran is gone mid-run, exactly like a
    // real producer exiting while others keep going.
    notifyExit(Self);
  }

  // Threads that never got a runnable step (empty initial programs)
  // still terminate; close them out before the sink goes away.
  for (uint32_t I = 0, E = static_cast<uint32_t>(Threads.size()); I != E; ++I)
    notifyExit(ThreadId(I));

#ifndef NDEBUG
  // Every thread must have terminated; a leftover waiter means a join cycle.
  for (uint32_t I = 0, E = static_cast<uint32_t>(Threads.size()); I != E; ++I)
    assert(finished(ThreadId(I)) && "join deadlock: thread never unblocked");
#endif
  Sink = nullptr;
  return StepsRun;
}
