//===- runtime/InstrumentedSet.h - Instrumented concurrent set --*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simulated concurrent set (the newSetFromMap/ConcurrentSkipListSet
/// style) with RoadRunner-like instrumentation, matching setSpec() and
/// AbstractSet: add(k)/changed, remove(k)/changed, contains(k)/present,
/// size()/n. Like InstrumentedMap, mutators lock a stripe while contains()
/// and size() read without synchronization.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_RUNTIME_INSTRUMENTEDSET_H
#define CRD_RUNTIME_INSTRUMENTEDSET_H

#include "runtime/SimRuntime.h"
#include "support/Value.h"

#include <unordered_set>
#include <vector>

namespace crd {

/// Simulated, instrumented concurrent set of Values.
class InstrumentedSet {
public:
  explicit InstrumentedSet(SimRuntime &RT, unsigned NumStripes = 8);

  /// s.add(k)/changed — true iff the key was newly inserted.
  bool add(SimThread &T, const Value &Key);

  /// s.remove(k)/changed — true iff the key was present and removed.
  bool remove(SimThread &T, const Value &Key);

  /// s.contains(k)/present — lock-free membership test.
  bool contains(SimThread &T, const Value &Key);

  /// s.size()/n — unlocked size-counter read.
  int64_t size(SimThread &T);

  ObjectId object() const { return Obj; }
  size_t uninstrumentedSize() const { return Data.size(); }

private:
  unsigned stripeOf(const Value &Key) const;

  SimRuntime &RT;
  ObjectId Obj;
  std::vector<LockId> StripeLocks;
  std::vector<VarId> StripeVars;
  VarId SizeVar;
  std::unordered_set<Value> Data;
  Symbol AddName;
  Symbol RemoveName;
  Symbol ContainsName;
  Symbol SizeName;
};

} // namespace crd

#endif // CRD_RUNTIME_INSTRUMENTEDSET_H
