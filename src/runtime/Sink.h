//===- runtime/Sink.h - Instrumentation event sinks -------------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Event sinks connect the simulated instrumented runtime (the RoadRunner
/// substitute) to the analyses. Every instrumented operation reports the
/// low-level reads/writes/lock operations it performs and the high-level
/// action it constitutes; a sink routes those events to a detector, a trace
/// recorder, or nowhere (the "uninstrumented" configuration — enabled()
/// returns false so instrumentation sites skip event materialization
/// entirely, mimicking running without the instrumenting framework).
///
//===----------------------------------------------------------------------===//

#ifndef CRD_RUNTIME_SINK_H
#define CRD_RUNTIME_SINK_H

#include "trace/Trace.h"

namespace crd {

/// Receives the event stream of a simulated execution.
class EventSink {
public:
  virtual ~EventSink();

  /// Whether instrumentation sites should materialize events at all.
  virtual bool enabled() const { return true; }

  virtual void onEvent(const Event &E) = 0;

  /// Lifecycle notification: thread \p T has run to completion and will
  /// emit no further events. Default no-op — only sinks that keep
  /// per-thread state care (the live-ingestion recorder closes that
  /// thread's ring so its stream ends mid-run instead of at teardown).
  virtual void onThreadExit(ThreadId T) { (void)T; }
};

/// Drops everything; models the uninstrumented run.
class NullSink : public EventSink {
public:
  bool enabled() const override { return false; }
  void onEvent(const Event &) override {}
};

/// Records the execution as a Trace (replayable through parseTrace/detectors).
class TraceRecorder : public EventSink {
public:
  void onEvent(const Event &E) override { Recorded.append(E); }

  const Trace &trace() const { return Recorded; }
  Trace take() { return std::move(Recorded); }

private:
  Trace Recorded;
};

/// Forwards events to any detector exposing process(const Event&).
template <typename DetectorT> class DetectorSink : public EventSink {
public:
  explicit DetectorSink(DetectorT &Detector) : Detector(Detector) {}

  void onEvent(const Event &E) override { Detector.process(E); }

private:
  DetectorT &Detector;
};

/// Fans one event stream out to several sinks (e.g. record + detect).
class TeeSink : public EventSink {
public:
  TeeSink(EventSink &A, EventSink &B) : A(A), B(B) {}

  bool enabled() const override { return A.enabled() || B.enabled(); }
  void onEvent(const Event &E) override {
    if (A.enabled())
      A.onEvent(E);
    if (B.enabled())
      B.onEvent(E);
  }
  void onThreadExit(ThreadId T) override {
    if (A.enabled())
      A.onThreadExit(T);
    if (B.enabled())
      B.onThreadExit(T);
  }

private:
  EventSink &A;
  EventSink &B;
};

} // namespace crd

#endif // CRD_RUNTIME_SINK_H
