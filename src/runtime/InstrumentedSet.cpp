//===- runtime/InstrumentedSet.cpp - Instrumented concurrent set --------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "runtime/InstrumentedSet.h"

using namespace crd;

InstrumentedSet::InstrumentedSet(SimRuntime &RT, unsigned NumStripes)
    : RT(RT), Obj(RT.newObject()), SizeVar(RT.newVar()),
      AddName(symbol("add")), RemoveName(symbol("remove")),
      ContainsName(symbol("contains")), SizeName(symbol("size")) {
  StripeLocks.reserve(NumStripes);
  StripeVars.reserve(NumStripes);
  for (unsigned I = 0; I != NumStripes; ++I) {
    StripeLocks.push_back(RT.newLock());
    StripeVars.push_back(RT.newVar());
  }
}

unsigned InstrumentedSet::stripeOf(const Value &Key) const {
  return static_cast<unsigned>(Key.hash() % StripeLocks.size());
}

bool InstrumentedSet::add(SimThread &T, const Value &Key) {
  unsigned Stripe = stripeOf(Key);
  T.acquire(StripeLocks[Stripe]);
  T.read(StripeVars[Stripe]);
  bool Changed = Data.insert(Key).second;
  if (Changed) {
    T.write(StripeVars[Stripe]);
    T.write(SizeVar);
  }
  T.release(StripeLocks[Stripe]);
  T.invoke(Action(Obj, AddName, {Key}, Value::boolean(Changed)));
  return Changed;
}

bool InstrumentedSet::remove(SimThread &T, const Value &Key) {
  unsigned Stripe = stripeOf(Key);
  T.acquire(StripeLocks[Stripe]);
  T.read(StripeVars[Stripe]);
  bool Changed = Data.erase(Key) != 0;
  if (Changed) {
    T.write(StripeVars[Stripe]);
    T.write(SizeVar);
  }
  T.release(StripeLocks[Stripe]);
  T.invoke(Action(Obj, RemoveName, {Key}, Value::boolean(Changed)));
  return Changed;
}

bool InstrumentedSet::contains(SimThread &T, const Value &Key) {
  T.read(StripeVars[stripeOf(Key)]);
  bool Present = Data.count(Key) != 0;
  T.invoke(Action(Obj, ContainsName, {Key}, Value::boolean(Present)));
  return Present;
}

int64_t InstrumentedSet::size(SimThread &T) {
  T.read(SizeVar);
  int64_t Result = static_cast<int64_t>(Data.size());
  T.invoke(Action(Obj, SizeName, {}, Value::integer(Result)));
  return Result;
}
