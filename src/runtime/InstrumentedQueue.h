//===- runtime/InstrumentedQueue.h - instrumented FIFO queue ----*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simulated concurrent FIFO queue (ConcurrentLinkedQueue-style) with
/// RoadRunner-like instrumentation, matching queueSpec() and
/// AbstractQueue: enq(v)/wasEmpty, deq()/v/ok, peek()/v/ok. Head and tail
/// are separate memory locations; mutators lock, peeks read lock-free.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_RUNTIME_INSTRUMENTEDQUEUE_H
#define CRD_RUNTIME_INSTRUMENTEDQUEUE_H

#include "runtime/SimRuntime.h"
#include "support/Value.h"

#include <deque>
#include <utility>

namespace crd {

/// Simulated, instrumented concurrent queue of Values.
class InstrumentedQueue {
public:
  explicit InstrumentedQueue(SimRuntime &RT)
      : RT(RT), Obj(RT.newObject()), Lock(RT.newLock()),
        HeadVar(RT.newVar()), TailVar(RT.newVar()), EnqName(symbol("enq")),
        DeqName(symbol("deq")), PeekName(symbol("peek")) {}

  /// q.enq(v)/wasEmpty.
  bool enq(SimThread &T, const Value &V) {
    T.acquire(Lock);
    T.read(TailVar);
    bool WasEmpty = Items.empty();
    Items.push_back(V);
    T.write(TailVar);
    if (WasEmpty)
      T.write(HeadVar); // First element also becomes the head.
    T.release(Lock);
    T.invoke(Action(Obj, EnqName, {V}, Value::boolean(WasEmpty)));
    return WasEmpty;
  }

  /// q.deq()/v/ok.
  std::pair<Value, bool> deq(SimThread &T) {
    T.acquire(Lock);
    T.read(HeadVar);
    Value Front = Items.empty() ? Value::nil() : Items.front();
    bool Ok = !Items.empty();
    if (Ok) {
      Items.pop_front();
      T.write(HeadVar);
    }
    T.release(Lock);
    T.invoke(Action(Obj, DeqName, {},
                    std::vector<Value>{Front, Value::boolean(Ok)}));
    return {Front, Ok};
  }

  /// q.peek()/v/ok — lock-free head read.
  std::pair<Value, bool> peek(SimThread &T) {
    T.read(HeadVar);
    Value Front = Items.empty() ? Value::nil() : Items.front();
    bool Ok = !Items.empty();
    T.invoke(Action(Obj, PeekName, {},
                    std::vector<Value>{Front, Value::boolean(Ok)}));
    return {Front, Ok};
  }

  ObjectId object() const { return Obj; }
  size_t uninstrumentedSize() const { return Items.size(); }

private:
  SimRuntime &RT;
  ObjectId Obj;
  LockId Lock;
  VarId HeadVar;
  VarId TailVar;
  std::deque<Value> Items;
  Symbol EnqName;
  Symbol DeqName;
  Symbol PeekName;
};

} // namespace crd

#endif // CRD_RUNTIME_INSTRUMENTEDQUEUE_H
