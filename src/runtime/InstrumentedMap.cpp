//===- runtime/InstrumentedMap.cpp - Instrumented ConcurrentHashMap ----------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "runtime/InstrumentedMap.h"

using namespace crd;

InstrumentedMap::InstrumentedMap(SimRuntime &RT, unsigned NumStripes)
    : RT(RT), Obj(RT.newObject()), SizeVar(RT.newVar()),
      PutName(symbol("put")), GetName(symbol("get")), SizeName(symbol("size")) {
  StripeLocks.reserve(NumStripes);
  StripeVars.reserve(NumStripes);
  for (unsigned I = 0; I != NumStripes; ++I) {
    StripeLocks.push_back(RT.newLock());
    StripeVars.push_back(RT.newVar());
  }
}

unsigned InstrumentedMap::stripeOf(const Value &Key) const {
  return static_cast<unsigned>(Key.hash() % StripeLocks.size());
}

Value InstrumentedMap::uninstrumentedGet(const Value &Key) const {
  auto It = Data.find(Key);
  return It == Data.end() ? Value::nil() : It->second;
}

Value InstrumentedMap::put(SimThread &T, const Value &Key, const Value &Val) {
  unsigned Stripe = stripeOf(Key);
  T.acquire(StripeLocks[Stripe]);
  T.read(StripeVars[Stripe]);

  Value Prev = uninstrumentedGet(Key);
  if (Val.isNil())
    Data.erase(Key);
  else
    Data[Key] = Val;

  T.write(StripeVars[Stripe]);
  if (Prev.isNil() != Val.isNil())
    T.write(SizeVar); // Size changed; counter updated under the stripe lock.
  T.release(StripeLocks[Stripe]);

  T.invoke(Action(Obj, PutName, {Key, Val}, Prev));
  return Prev;
}

Value InstrumentedMap::get(SimThread &T, const Value &Key) {
  // Lock-free read of the bucket region, as in the real CHM.
  T.read(StripeVars[stripeOf(Key)]);
  Value Result = uninstrumentedGet(Key);
  T.invoke(Action(Obj, GetName, {Key}, Result));
  return Result;
}

int64_t InstrumentedMap::size(SimThread &T) {
  // Unlocked size-counter read, as in the real CHM.
  T.read(SizeVar);
  int64_t Result = static_cast<int64_t>(Data.size());
  T.invoke(Action(Obj, SizeName, {}, Value::integer(Result)));
  return Result;
}

Value InstrumentedMap::putIfAbsent(SimThread &T, const Value &Key,
                                   const Value &Val) {
  unsigned Stripe = stripeOf(Key);
  T.acquire(StripeLocks[Stripe]);
  T.read(StripeVars[Stripe]);

  Value Prev = uninstrumentedGet(Key);
  bool Stores = Prev.isNil() && !Val.isNil();
  if (Stores) {
    Data[Key] = Val;
    T.write(StripeVars[Stripe]);
    T.write(SizeVar);
  }
  T.release(StripeLocks[Stripe]);

  // Abstract effect: a successful putIfAbsent is a put; a failed one only
  // observes the key, i.e. a get.
  if (Stores)
    T.invoke(Action(Obj, PutName, {Key, Val}, Prev));
  else
    T.invoke(Action(Obj, GetName, {Key}, Prev));
  return Prev;
}
