//===- runtime/InstrumentedScalar.h - counter & register objects -*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instrumented scalar shared objects matching counterSpec() and
/// registerSpec(): an atomic counter (inc/dec/read — think
/// java.util.concurrent.atomic.AtomicLong used as a statistics counter)
/// and a single-cell register (write/read). Like the map, each operation
/// emits its low-level memory events and its high-level action.
///
//===----------------------------------------------------------------------===//

#ifndef CRD_RUNTIME_INSTRUMENTEDSCALAR_H
#define CRD_RUNTIME_INSTRUMENTEDSCALAR_H

#include "runtime/SimRuntime.h"
#include "support/Value.h"

namespace crd {

/// Simulated atomic counter: inc(), dec(), read()/v.
class InstrumentedCounter {
public:
  explicit InstrumentedCounter(SimRuntime &RT, int64_t Initial = 0)
      : Obj(RT.newObject()), Cell(RT.newVar()), Count(Initial),
        IncName(symbol("inc")), DecName(symbol("dec")),
        ReadName(symbol("read")) {}

  void inc(SimThread &T) {
    T.write(Cell); // Atomic RMW: modeled as one write.
    ++Count;
    T.invoke(Action(Obj, IncName, {}, std::vector<Value>{}));
  }

  void dec(SimThread &T) {
    T.write(Cell);
    --Count;
    T.invoke(Action(Obj, DecName, {}, std::vector<Value>{}));
  }

  int64_t read(SimThread &T) {
    T.read(Cell);
    T.invoke(Action(Obj, ReadName, {}, Value::integer(Count)));
    return Count;
  }

  ObjectId object() const { return Obj; }
  int64_t uninstrumentedValue() const { return Count; }

private:
  ObjectId Obj;
  VarId Cell;
  int64_t Count;
  Symbol IncName;
  Symbol DecName;
  Symbol ReadName;
};

/// Simulated single-cell register: write(v)/prev, read()/v; initially nil.
class InstrumentedRegister {
public:
  explicit InstrumentedRegister(SimRuntime &RT)
      : Obj(RT.newObject()), Cell(RT.newVar()), Stored(Value::nil()),
        WriteName(symbol("write")), ReadName(symbol("read")) {}

  Value write(SimThread &T, const Value &V) {
    T.write(Cell);
    Value Prev = Stored;
    Stored = V;
    T.invoke(Action(Obj, WriteName, {V}, Prev));
    return Prev;
  }

  Value read(SimThread &T) {
    T.read(Cell);
    T.invoke(Action(Obj, ReadName, {}, Stored));
    return Stored;
  }

  ObjectId object() const { return Obj; }
  const Value &uninstrumentedValue() const { return Stored; }

private:
  ObjectId Obj;
  VarId Cell;
  Value Stored;
  Symbol WriteName;
  Symbol ReadName;
};

} // namespace crd

#endif // CRD_RUNTIME_INSTRUMENTEDSCALAR_H
