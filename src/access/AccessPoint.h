//===- access/AccessPoint.h - Access points (paper §4.2) --------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Access points: the "micro actions" a method invocation touches
/// (paper §4.2). A runtime access point is identified by its *class* within
/// a representation (e.g. Fig 7's o:w:k family is one class) together with
/// an optional carried value (the k in o:w:k). Two value-carrying points of
/// conflicting classes only conflict when their values are equal — this is
/// what makes the §6.2 translation's conflict sets finite (Theorem 6.6).
///
//===----------------------------------------------------------------------===//

#ifndef CRD_ACCESS_ACCESSPOINT_H
#define CRD_ACCESS_ACCESSPOINT_H

#include "support/Hashing.h"
#include "support/Value.h"

#include <cstdint>
#include <functional>

namespace crd {

/// One touched access point: class id plus optional carried value.
struct AccessPoint {
  uint32_t ClassId = 0;
  bool HasValue = false;
  Value Val;

  static AccessPoint plain(uint32_t ClassId) { return {ClassId, false, {}}; }
  static AccessPoint withValue(uint32_t ClassId, Value V) {
    return {ClassId, true, V};
  }

  friend bool operator==(const AccessPoint &A, const AccessPoint &B) {
    return A.ClassId == B.ClassId && A.HasValue == B.HasValue &&
           (!A.HasValue || A.Val == B.Val);
  }
  friend bool operator!=(const AccessPoint &A, const AccessPoint &B) {
    return !(A == B);
  }

  size_t hash() const {
    size_t H = hashCombine(ClassId, HasValue ? 1 : 0);
    return HasValue ? hashCombine(H, Val.hash()) : H;
  }
};

} // namespace crd

namespace std {
template <> struct hash<crd::AccessPoint> {
  size_t operator()(const crd::AccessPoint &P) const noexcept {
    return P.hash();
  }
};
} // namespace std

#endif // CRD_ACCESS_ACCESSPOINT_H
