//===- access/DictionaryRep.h - Fig 7 dictionary representation -*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hand-optimized access point representation of a dictionary from
/// paper Fig 7:
///
///   Xo = {o:r:k} ∪ {o:w:k} ∪ {o:size, o:resize}
///
///   ηo(put(k,v)/p) = {o:w:k, o:resize}  if v ≠ p and the size changed
///                    {o:w:k}            if v ≠ p and the size is unchanged
///                    {o:r:k}            if v = p
///   ηo(get(k)/v)   = {o:r:k}
///   ηo(size()/r)   = {o:size}
///
///   Co: w:k–w:l and w:k–r:l conflict iff k = l; size–resize conflict.
///
/// The translator applied to the Fig 6 specification must produce an
/// equivalent representation (tested via Def 4.5).
///
//===----------------------------------------------------------------------===//

#ifndef CRD_ACCESS_DICTIONARYREP_H
#define CRD_ACCESS_DICTIONARYREP_H

#include "access/Provider.h"

namespace crd {

/// Hand-written Fig 7 representation.
class DictionaryRep : public AccessPointProvider {
public:
  /// Class ids, fixed for easy assertions in tests.
  enum ClassId : uint32_t { Read = 0, Write = 1, Size = 2, Resize = 3 };

  DictionaryRep();

  size_t numClasses() const override { return 4; }
  bool classCarriesValue(uint32_t ClassId) const override {
    return ClassId == Read || ClassId == Write;
  }
  const std::vector<uint32_t> &conflictsOf(uint32_t ClassId) const override;
  void touches(const Action &A, std::vector<AccessPoint> &Out) const override;
  std::string_view className(uint32_t ClassId) const override;

private:
  std::vector<uint32_t> Conflicts[4];
  Symbol PutName;
  Symbol GetName;
  Symbol SizeName;
};

} // namespace crd

#endif // CRD_ACCESS_DICTIONARYREP_H
