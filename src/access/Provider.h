//===- access/Provider.h - Access point representations ---------*- C++ -*-===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The access point representation interface ⟨Xo, ηo, Co⟩ of paper Def 4.4,
/// phrased over access-point *classes*:
///
///   * ηo is touches(): the finite set of points touched by an action;
///   * Co is conflictsOf(): for every class, the (finite) list of partner
///     classes; two touched points conflict iff their classes are partners
///     and — when both classes carry values — the carried values are equal.
///
/// Implementations: DictionaryRep (hand-written Fig 7) and TranslatedRep
/// (generated from any ECL specification by the §6.2 translator).
///
//===----------------------------------------------------------------------===//

#ifndef CRD_ACCESS_PROVIDER_H
#define CRD_ACCESS_PROVIDER_H

#include "access/AccessPoint.h"
#include "trace/Action.h"

#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace crd {

/// Abstract access point representation for one object type.
class AccessPointProvider {
public:
  virtual ~AccessPointProvider();

  /// Number of access point classes.
  virtual size_t numClasses() const = 0;

  /// Whether points of \p ClassId carry a value (like the k of o:w:k).
  virtual bool classCarriesValue(uint32_t ClassId) const = 0;

  /// Co restricted to \p ClassId: ids of all classes conflicting with it.
  /// Value-carrying classes only ever conflict with value-carrying classes
  /// (and vice versa), so a conflict lookup is always a finite number of
  /// exact-key probes.
  virtual const std::vector<uint32_t> &conflictsOf(uint32_t ClassId) const = 0;

  /// ηo: appends the points touched by \p A to \p Out. \p Out is not
  /// cleared. Implementations must not emit duplicate points for one action.
  virtual void touches(const Action &A, std::vector<AccessPoint> &Out) const = 0;

  /// Debug name of a class, e.g. "o:w:k". Defaults to "class<N>". The
  /// returned view must stay valid for the provider's lifetime — race
  /// reports keep it as-is instead of copying (a 40+ character translated
  /// class name would otherwise cost one heap allocation per report).
  virtual std::string_view className(uint32_t ClassId) const;

private:
  /// Backing storage for the default className() (lazily materialized;
  /// the mutex makes concurrent shard workers safe — the fallback is
  /// debug-only and cold).
  mutable std::deque<std::string> FallbackNames;
  mutable std::mutex FallbackNamesMutex;
};

/// Whether two concrete points conflict under \p Provider.
bool pointsConflict(const AccessPointProvider &Provider, const AccessPoint &A,
                    const AccessPoint &B);

/// Whether ηo(A) × ηo(B) intersects Co — i.e. the representation says the
/// two actions do not commute (Def 4.5 reads: representation matches Φ iff
/// this is equivalent to ¬ϕ(A,B)).
bool actionsConflict(const AccessPointProvider &Provider, const Action &A,
                     const Action &B);

} // namespace crd

#endif // CRD_ACCESS_PROVIDER_H
