//===- access/DictionaryRep.cpp - Fig 7 dictionary representation -----------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "access/DictionaryRep.h"

#include <cassert>

using namespace crd;

DictionaryRep::DictionaryRep()
    : PutName(symbol("put")), GetName(symbol("get")), SizeName(symbol("size")) {
  Conflicts[Read] = {Write};
  Conflicts[Write] = {Read, Write};
  Conflicts[Size] = {Resize};
  Conflicts[Resize] = {Size};
}

const std::vector<uint32_t> &DictionaryRep::conflictsOf(uint32_t ClassId) const {
  assert(ClassId < 4 && "class id out of range");
  return Conflicts[ClassId];
}

void DictionaryRep::touches(const Action &A,
                            std::vector<AccessPoint> &Out) const {
  if (A.method() == PutName) {
    assert(A.args().size() == 2 && A.rets().size() == 1 &&
           "malformed put action");
    const Value &K = A.args()[0];
    const Value &V = A.args()[1];
    const Value &P = A.rets()[0];
    if (V == P) {
      Out.push_back(AccessPoint::withValue(Read, K));
      return;
    }
    Out.push_back(AccessPoint::withValue(Write, K));
    if (V.isNil() != P.isNil()) // Exactly one of v, p is nil: size changed.
      Out.push_back(AccessPoint::plain(Resize));
    return;
  }
  if (A.method() == GetName) {
    assert(A.args().size() == 1 && "malformed get action");
    Out.push_back(AccessPoint::withValue(Read, A.args()[0]));
    return;
  }
  if (A.method() == SizeName) {
    Out.push_back(AccessPoint::plain(Size));
    return;
  }
  assert(false && "action method is not a dictionary method");
}

std::string_view DictionaryRep::className(uint32_t ClassId) const {
  switch (ClassId) {
  case Read:
    return "o:r:k";
  case Write:
    return "o:w:k";
  case Size:
    return "o:size";
  case Resize:
    return "o:resize";
  default:
    return AccessPointProvider::className(ClassId);
  }
}
