//===- access/Provider.cpp - Access point representations -------------------===//
//
// Part of the CRD project (PLDI 2014 "Commutativity Race Detection" repro).
//
//===----------------------------------------------------------------------===//

#include "access/Provider.h"

#include <algorithm>

using namespace crd;

AccessPointProvider::~AccessPointProvider() = default;

std::string_view AccessPointProvider::className(uint32_t ClassId) const {
  std::lock_guard<std::mutex> Lock(FallbackNamesMutex);
  // A deque never relocates existing elements, so handed-out views stay
  // valid as the table grows.
  while (FallbackNames.size() <= ClassId)
    FallbackNames.push_back("class" + std::to_string(FallbackNames.size()));
  return FallbackNames[ClassId];
}

bool crd::pointsConflict(const AccessPointProvider &Provider,
                         const AccessPoint &A, const AccessPoint &B) {
  const std::vector<uint32_t> &Partners = Provider.conflictsOf(A.ClassId);
  if (std::find(Partners.begin(), Partners.end(), B.ClassId) == Partners.end())
    return false;
  if (A.HasValue && B.HasValue)
    return A.Val == B.Val;
  return true;
}

bool crd::actionsConflict(const AccessPointProvider &Provider, const Action &A,
                          const Action &B) {
  std::vector<AccessPoint> PointsA, PointsB;
  Provider.touches(A, PointsA);
  Provider.touches(B, PointsB);
  for (const AccessPoint &PA : PointsA)
    for (const AccessPoint &PB : PointsB)
      if (pointsConflict(Provider, PA, PB))
        return true;
  return false;
}
